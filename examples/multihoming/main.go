// Multihoming: Figure 1's laptop with simultaneous WiFi and 3G
// attachments, and named content with several replicas.
//
// One GUID maps to multiple network addresses; correspondents receive the
// full locator set and pick. When the WiFi interface detaches, a
// versioned update shrinks the set without ever touching the GUID.
//
// Run with: go run ./examples/multihoming
package main

import (
	"fmt"
	"log"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/store"
	"dmap/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const numAS = 400
	graph, err := topology.Generate(topology.SmallGenConfig(numAS, 3))
	if err != nil {
		return err
	}
	table, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: numAS, NumPrefixes: 5000, AnnouncedFraction: 0.52, Seed: 3,
	})
	if err != nil {
		return err
	}
	resolver, err := core.NewResolver(guid.MustHasher(5, 0), table, 0)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Resolver: resolver, NumAS: numAS, LocalReplica: true,
	})
	if err != nil {
		return err
	}
	cache, err := topology.NewDistCache(graph, 32)
	if err != nil {
		return err
	}

	// Figure 1's laptop: WiFi via AS 44's network, 3G via AS 101's.
	lap := guid.New("LapA")
	const wifiAS, cellAS = 44, 101
	lapEntry := store.Entry{
		GUID: lap,
		NAs: []store.NA{
			{AS: wifiAS, Addr: netaddr.AddrFromOctets(10, 44, 0, 7)},   // NA10
			{AS: cellAS, Addr: netaddr.AddrFromOctets(10, 101, 0, 12)}, // NA12
		},
		Version: 1,
	}
	if _, err := sys.Insert(lapEntry, wifiAS); err != nil {
		return err
	}

	// Figure 1's named content, replicated at two hosting networks.
	video := guid.New("VideoB")
	videoEntry := store.Entry{
		GUID: video,
		NAs: []store.NA{
			{AS: 20, Addr: netaddr.AddrFromOctets(10, 20, 0, 1)}, // NA20
			{AS: 99, Addr: netaddr.AddrFromOctets(10, 99, 0, 1)}, // NA99
		},
		Version: 1,
	}
	if _, err := sys.Insert(videoEntry, 20); err != nil {
		return err
	}

	show := func(name string, g guid.GUID, from int) error {
		e, outcome, err := sys.Lookup(g, from, cache, core.LookupOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("%s resolved from AS %d in %.1f ms → %d locator(s):\n",
			name, from, outcome.RTT.Millis(), len(e.NAs))
		for _, na := range e.NAs {
			fmt.Printf("    AS %-4d %v\n", na.AS, na.Addr)
		}
		return nil
	}

	fmt.Println("== multi-homed laptop (WiFi + 3G) ==")
	if err := show("LapA", lap, 250); err != nil {
		return err
	}

	fmt.Println("\n== replicated named content ==")
	if err := show("VideoB", video, 250); err != nil {
		return err
	}

	// The laptop leaves WiFi coverage: only the 3G locator remains. The
	// identifier — and every session bound to it — survives.
	fmt.Println("\n== WiFi detaches (version 2) ==")
	lapEntry.NAs = lapEntry.NAs[1:]
	lapEntry.Version = 2
	if _, err := sys.Update(lapEntry, cellAS); err != nil {
		return err
	}
	if err := show("LapA", lap, 250); err != nil {
		return err
	}

	// A correspondent inside the laptop's own 3G network benefits from
	// the §III-C local replica.
	fmt.Println("\n== lookup from the laptop's own AS (local replica) ==")
	e, outcome, err := sys.Lookup(lap, cellAS, cache, core.LookupOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("LapA resolved in %.2f ms (local replica: %v, served by AS %d)\n",
		outcome.RTT.Millis(), outcome.UsedLocal, outcome.ServedBy)
	_ = e
	return nil
}
