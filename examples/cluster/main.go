// Cluster: DMap over real TCP — three mapping nodes on loopback, a
// client that derives placements locally, and a node failure handled by
// replica fallback (§III-D3).
//
// This is the deployable path (internal/server + internal/client), the
// in-repo stand-in for the paper's GENI prototype.
//
// Run with: go run ./examples/cluster
package main

import (
	"fmt"
	"log"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const numAS = 6
	const k = 3

	// Every participant — nodes and clients — shares the same prefix
	// table and hash family; that shared view is what lets any client
	// compute placements with zero directory round trips.
	table, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: numAS, NumPrefixes: 64, AnnouncedFraction: 0.52, Seed: 11,
	})
	if err != nil {
		return err
	}
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), table, 0)
	if err != nil {
		return err
	}

	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := range nodes {
		nodes[as] = server.New(nil, nil)
		bound, err := nodes[as].Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[as] = bound
		defer nodes[as].Close()
		fmt.Printf("AS %d mapping node at %s\n", as, bound)
	}

	c, err := client.New(resolver, addrs, 0)
	if err != nil {
		return err
	}
	defer c.Close()

	// Register a service under a self-certifying name.
	svc := guid.New("service:video-transcoder")
	entry := store.Entry{
		GUID:    svc,
		NAs:     []store.NA{{AS: 2, Addr: netaddr.AddrFromOctets(192, 0, 2, 10)}},
		Version: 1,
	}
	acks, err := c.Insert(entry)
	if err != nil {
		return err
	}
	placements, err := resolver.Place(svc)
	if err != nil {
		return err
	}
	fmt.Printf("\ninserted %s… (%d/%d replicas acked) — replicas at ASs:", svc.Short(), acks, k)
	for _, p := range placements {
		fmt.Printf(" %d", p.AS)
	}
	fmt.Println()

	got, err := c.Lookup(svc)
	if err != nil {
		return err
	}
	fmt.Printf("lookup → AS %d / %v (version %d)\n", got.NAs[0].AS, got.NAs[0].Addr, got.Version)

	// Kill the first replica's node; the client falls through to the
	// next replica without any reconfiguration.
	victim := placements[0].AS
	fmt.Printf("\nkilling the node of AS %d (first replica)...\n", victim)
	nodes[victim].Close()

	got, err = c.Lookup(svc)
	if err != nil {
		return err
	}
	fmt.Printf("lookup still succeeds → AS %d / %v\n", got.NAs[0].AS, got.NAs[0].Addr)

	// Clean up the registration on the surviving replicas.
	removed, err := c.Delete(svc)
	if err != nil {
		return err
	}
	fmt.Printf("deleted from %d surviving replicas\n", removed)
	return nil
}
