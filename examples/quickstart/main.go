// Quickstart: the smallest useful DMap program.
//
// It builds a toy Internet (an AS topology plus a BGP prefix table),
// stands up a DMap system, inserts a GUID→NA mapping for a device, and
// resolves it from another AS — showing the K hosting ASs that the hash
// family derives and the round-trip latency of the closest replica.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/store"
	"dmap/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const numAS = 500
	const k = 5

	// 1. The substrate: an AS-level topology and an announced-prefix
	// table (in a real deployment these are the Internet itself and the
	// BGP DFZ table every border router already has).
	graph, err := topology.Generate(topology.SmallGenConfig(numAS, 42))
	if err != nil {
		return err
	}
	table, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: numAS, NumPrefixes: 6000, AnnouncedFraction: 0.52, Seed: 42,
	})
	if err != nil {
		return err
	}

	// 2. The DMap system: a shared hash family (agreed among all
	// routers), Algorithm 1 placement, and per-AS mapping stores.
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), table, 0)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Resolver: resolver, NumAS: numAS, LocalReplica: true,
	})
	if err != nil {
		return err
	}

	// 3. A phone attaches to AS 137 and registers its GUID→NA mapping.
	phone := guid.New("imsi-310-150-123456789")
	const phoneAS = 137
	entry := store.Entry{
		GUID:    phone,
		NAs:     []store.NA{{AS: phoneAS, Addr: netaddr.AddrFromOctets(10, 1, 2, 3)}},
		Version: 1,
	}
	placements, err := sys.Insert(entry, phoneAS)
	if err != nil {
		return err
	}
	fmt.Printf("GUID %s… hosted at %d ASs:\n", phone.Short(), len(placements))
	for _, p := range placements {
		fmt.Printf("  replica %d → AS %-5d (hashed address %v, %d rehashes)\n",
			p.Replica, p.AS, p.Addr, p.Rehashes)
	}

	// 4. A correspondent in AS 9 resolves the GUID: one overlay hop to
	// the closest replica.
	cache, err := topology.NewDistCache(graph, 16)
	if err != nil {
		return err
	}
	got, outcome, err := sys.Lookup(phone, 9, cache, core.LookupOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nlookup from AS 9: served by AS %d in %.1f ms (attempt %d)\n",
		outcome.ServedBy, outcome.RTT.Millis(), outcome.Attempts)
	fmt.Printf("locators: ")
	for _, na := range got.NAs {
		fmt.Printf("AS %d/%v ", na.AS, na.Addr)
	}
	fmt.Println()

	// 5. The phone moves to AS 260; version 2 supersedes everywhere.
	entry.NAs = []store.NA{{AS: 260, Addr: netaddr.AddrFromOctets(172, 16, 9, 1)}}
	entry.Version = 2
	if _, err := sys.Update(entry, 260); err != nil {
		return err
	}
	got, outcome, err = sys.Lookup(phone, 9, cache, core.LookupOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nafter handoff: locator AS %d, lookup %.1f ms\n",
		got.NAs[0].AS, outcome.RTT.Millis())
	return nil
}
