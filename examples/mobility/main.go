// Mobility: the paper's motivating scenario (§I) — a voice call to a
// vehicle that changes network attachment points mid-session.
//
// The example runs the event-driven deployment (internal/nodesim) so the
// race the paper discusses in §III-D2 is actually visible: a query issued
// microseconds after a handoff can return the previous locator; the
// caller detects the stale version and re-queries.
//
// Run with: go run ./examples/mobility
package main

import (
	"fmt"
	"log"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/nodesim"
	"dmap/internal/prefixtable"
	"dmap/internal/simnet"
	"dmap/internal/store"
	"dmap/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const numAS = 800
	const callerAS = 700

	graph, err := topology.Generate(topology.SmallGenConfig(numAS, 7))
	if err != nil {
		return err
	}
	table, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: numAS, NumPrefixes: 9000, AnnouncedFraction: 0.52, Seed: 7,
	})
	if err != nil {
		return err
	}
	resolver, err := core.NewResolver(guid.MustHasher(5, 0), table, 0)
	if err != nil {
		return err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Resolver: resolver, NumAS: numAS, LocalReplica: true,
	})
	if err != nil {
		return err
	}
	cache, err := topology.NewDistCache(graph, 128)
	if err != nil {
		return err
	}
	dep, err := nodesim.NewDeployment(sys, simnet.New(), cache, 0)
	if err != nil {
		return err
	}
	sim := dep.Sim()

	vehicle := guid.New("vehicle-7f3a")
	// The vehicle's drive: a new AS every 30 simulated seconds.
	route := []int{12, 145, 301, 478, 622}
	fmt.Println("vehicle route (AS, attach time):")
	for i, as := range route {
		at := simnet.Time(i) * 30_000_000 // 30 s apart
		version := uint64(i + 1)
		attachAS := as
		entry := store.Entry{
			GUID:    vehicle,
			NAs:     []store.NA{{AS: attachAS, Addr: netaddr.AddrFromOctets(10, byte(i), 0, 1)}},
			Version: version,
		}
		if err := sim.At(at, func() {
			err := dep.Insert(attachAS, entry, func(r nodesim.InsertResult) {
				fmt.Printf("  t=%8.1f ms  attached to AS %-4d (update latency %.1f ms, %d replicas)\n",
					float64(sim.Now())/1000, attachAS, float64(r.Latency)/1000, r.Acks)
			})
			if err != nil {
				log.Fatal(err)
			}
		}); err != nil {
			return err
		}
	}

	// The caller keeps the session alive by resolving the GUID every 10
	// seconds — including one query fired 2 ms after the third handoff,
	// deliberately racing the update.
	queryTimes := []simnet.Time{
		5_000_000, 35_000_000, 60_002_000, 60_100_000, 95_000_000, 125_000_000,
	}
	fmt.Println("\ncaller lookups (from AS 700):")
	for _, at := range queryTimes {
		at := at
		if err := sim.At(at, func() {
			err := dep.Lookup(callerAS, vehicle, func(r nodesim.LookupResult) {
				if !r.Found {
					fmt.Printf("  t=%8.1f ms  NOT FOUND\n", float64(sim.Now())/1000)
					return
				}
				fmt.Printf("  t=%8.1f ms  locator AS %-4d (version %d, %.1f ms, served by AS %d)\n",
					float64(sim.Now())/1000, r.Entry.NAs[0].AS, r.Entry.Version,
					float64(r.Latency)/1000, r.ServedBy)
			})
			if err != nil {
				log.Fatal(err)
			}
		}); err != nil {
			return err
		}
	}

	sim.Run(0)

	fmt.Println("\nnote: the t≈60002 ms lookup races the third handoff's update through")
	fmt.Println("the network — depending on which message reaches the replica first it")
	fmt.Println("returns the old or the new locator (§III-D2). The version number is")
	fmt.Println("how a caller detects a stale answer: it marks the mapping obsolete")
	fmt.Println("and re-queries, as the follow-up at t≈60100 ms does.")
	return nil
}
