// Partition-heal convergence sweep: the CI gate for anti-entropy.
//
// TestHealSweepCI partitions a simulated deployment, writes divergent
// versions on both sides, heals the cut and measures how long the
// gossip repair protocol (DESIGN.md §12) takes to restore §III-D2
// agreement across every replica, per gossip interval. It asserts the
// repair story holds end to end:
//
//   - the partition creates real divergence (post-heal probes see
//     stale versions before any gossip runs),
//   - every cell converges within the round budget and repairs a
//     nonzero number of entries,
//   - convergence time grows with the gossip interval (the knob works).
//
// Each sweep cell is emitted as a "HEALRECORD {json}" line that
// scripts/bench.sh heal harvests into BENCH_<date>.json, where
// cmd/benchcheck validates the heal record schema. Gated behind
// BENCH_HEAL=1: the sweep builds several full deployments, which is a
// bench posture, not a unit-test one.
package dmap_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"dmap/internal/experiments"
	"dmap/internal/simnet"
)

// healRecord is one HEALRECORD emission: the base benchmark-record
// fields (ns_per_op carries the cell's convergence time in nanoseconds)
// plus the heal extension cmd/benchcheck validates.
type healRecord struct {
	Date        string  `json:"date"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	Kind             string  `json:"kind"`
	GossipIntervalMs float64 `json:"gossip_interval_ms"`
	ConvergenceMs    float64 `json:"convergence_ms"`
	EntriesRepaired  float64 `json:"entries_repaired"`
	StaleRate        float64 `json:"stale_rate"`
}

func emitHealRecord(t *testing.T, date string, c experiments.HealCell) {
	t.Helper()
	b, err := json.Marshal(healRecord{
		Date: date, Name: "heal.cell", Kind: "heal",
		NsPerOp:          float64(c.ConvergenceTime) * 1e3, // sim µs -> ns
		GossipIntervalMs: float64(c.GossipInterval) / 1e3,
		ConvergenceMs:    float64(c.ConvergenceTime) / 1e3,
		EntriesRepaired:  float64(c.EntriesRepaired),
		StaleRate:        c.StaleRate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Printed raw (not t.Log) so scripts/bench.sh can harvest the lines
	// without stripping test-runner prefixes.
	fmt.Printf("HEALRECORD %s\n", b)
}

func TestHealSweepCI(t *testing.T) {
	if os.Getenv("BENCH_HEAL") == "" {
		t.Skip("set BENCH_HEAL=1 (scripts/bench.sh heal does) to run the partition-heal sweep")
	}
	date := os.Getenv("BENCH_DATE")
	if date == "" {
		date = time.Now().Format("20060102")
	}
	res, err := experiments.RunHeal(experiments.HealConfig{
		NumAS:        envInt("BENCH_HEAL_AS", 120),
		K:            3,
		LocalReplica: true,
		NumGUIDs:     envInt("BENCH_HEAL_GUIDS", 40),
		StaleProbes:  200,
		GossipIntervals: []simnet.Time{
			100_000, 500_000, 1_000_000, 5_000_000, // 100 ms .. 5 s
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)

	var prev simnet.Time
	for _, c := range res.Cells {
		if c.StaleReads == 0 {
			t.Errorf("interval %dms: post-heal probes saw no staleness; the partition created no divergence",
				c.GossipInterval/1000)
		}
		if c.EntriesRepaired == 0 {
			t.Errorf("interval %dms: gossip repaired nothing", c.GossipInterval/1000)
		}
		if c.ConvergenceTime < c.GossipInterval {
			t.Errorf("interval %dms: converged in %dµs, faster than one round",
				c.GossipInterval/1000, c.ConvergenceTime)
		}
		if c.ConvergenceTime < prev {
			t.Errorf("interval %dms: convergence %dµs not monotone in interval",
				c.GossipInterval/1000, c.ConvergenceTime)
		}
		prev = c.ConvergenceTime
		emitHealRecord(t, date, c)
	}
}
