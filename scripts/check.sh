#!/bin/sh
# Repository check: build every package (so compile errors in packages
# without tests fail the check), verify formatting, vet everything, then
# run the concurrency-sensitive packages under the race detector. The
# engine's determinism guarantee (internal/engine) only holds if these
# stay race-clean, and the networked stack (client failover, the v2
# multiplexed transport and its demux reader, server drain, the chaos
# test, the metrics registry) is only trustworthy under -race. Running
# the wire tests also replays the checked-in fuzz seed corpus
# (FuzzDecodeFrame, FuzzDecodeFrameV2 et al.).
set -eux

cd "$(dirname "$0")/.."

go build ./...

# gofmt -l lists unformatted files; any output is a failure.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go test -race ./internal/core/... ./internal/engine/... ./internal/topology/...
go test -race ./internal/wire/... ./internal/simnet/... ./internal/nodesim/...
go test -race ./internal/server/... ./internal/client/... ./internal/metrics/... ./internal/obs/...
go test -race ./internal/trace/... ./internal/store/... ./internal/load/...
go test -race ./internal/experiments/... -run 'BatchFrameModel|Determinism'
go test -race -run '^$' -bench '^BenchmarkLookup64ClientsV2$' -benchtime=10x .

# Crash-injection harness (DESIGN.md §10): a durable child node is
# SIGKILLed mid-write-burst at a seeded random point and restarted;
# every acknowledged write must be readable at its acked version. The
# WAL append, compactor and syncer all race the kill, so this runs
# under -race end to end.
go test -race ./internal/crashtest/

# Pool paths under load: the buffer-ownership refactor (DESIGN.md §9)
# recycles frame payloads, response slots and encode scratch through
# free lists, so a lifetime bug is a cross-goroutine race by
# construction. Hammer the mux and the coalescing writer under -race
# with buffer poisoning on, so a buffer released while still referenced
# is overwritten with a sentinel instead of silently surviving.
DMAP_POISON_BUFS=1 go test -race \
    -run 'TestMux|TestPlacementPool|TestWriter|TestBufPool|TestAppend|TestDecodedValuesSurvive|TestReadFrame' \
    ./internal/client/... ./internal/wire/...

# Fuzz smoke on the trace-context wire extension: ten seconds of live
# fuzzing over DecodeTraceContext (the seed corpus alone replays in the
# -race run above; this hunts new frames).
go test -run '^$' -fuzz '^FuzzDecodeTraceContext$' -fuzztime=10s ./internal/wire

# Fuzz smoke on the durability decoders: WAL record replay must treat
# any byte soup as (at worst) a torn tail, and snapshot decode must
# reject corruption without panicking. Seed corpora replay in the -race
# run above; these hunt new inputs.
go test -run '^$' -fuzz '^FuzzDecodeWALRecord$' -fuzztime=10s ./internal/store
go test -run '^$' -fuzz '^FuzzLoadSnapshot$' -fuzztime=10s ./internal/store

# Fuzz smoke on the anti-entropy repair frames (DESIGN.md §12): digest
# and diff payloads arrive from peers, so their decoders must reject
# any malformed page without panicking and round-trip canonically.
go test -run '^$' -fuzz '^FuzzDecodeRepairDigest$' -fuzztime=10s ./internal/wire
go test -run '^$' -fuzz '^FuzzDecodeRepairDiff$' -fuzztime=10s ./internal/wire

# Fuzz smoke on the fleet snapshot decoder (DESIGN.md §13): the
# collector feeds every scraped /debug/metrics body through
# DecodeSnapshot, so it must reject malformed telemetry without
# panicking and re-encode accepted input to a canonical fixed point.
go test -run '^$' -fuzz '^FuzzDecodeFleetSnapshot$' -fuzztime=10s ./internal/obs
