#!/bin/sh
# Repository check: vet everything, then run the concurrency-sensitive
# packages under the race detector. The engine's determinism guarantee
# (internal/engine) only holds if these stay race-clean, and the
# networked stack (client failover, server drain, the chaos test) is
# only trustworthy under -race. Running the wire tests also replays the
# checked-in fuzz seed corpus (FuzzDecodeFrame et al.).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/core/... ./internal/engine/... ./internal/topology/...
go test -race ./internal/wire/... ./internal/simnet/... ./internal/nodesim/...
go test -race ./internal/server/... ./internal/client/...
