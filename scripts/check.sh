#!/bin/sh
# Repository check: vet everything, then run the concurrency-sensitive
# packages under the race detector. The engine's determinism guarantee
# (internal/engine) only holds if these stay race-clean.
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go test -race ./internal/core/... ./internal/engine/... ./internal/topology/...
