#!/bin/sh
# Benchmark harness.
#
#   scripts/bench.sh           # micro-benchmarks -> BENCH_<date>.json
#   scripts/bench.sh smoke     # CI gate: metrics overhead budget
#   scripts/bench.sh pipelined # v1 vs v2 transport throughput gate
#
# Default mode runs the hot-path micro-benchmarks (hashing, prefix
# match, placement, wire codec, store ops, metrics primitives) with
# -benchmem and emits a JSON record per benchmark into BENCH_<date>.json
# for longitudinal tracking.
#
# Smoke mode asserts the observability overhead budget (DESIGN.md §6):
#   1. store path: BenchmarkStorePutGetInstrumented must be within
#      BENCH_TOLERANCE_PCT (default 5%) of BenchmarkStorePutGet.
#   2. wire path: BenchmarkMetricsRequestOverhead (everything the server
#      adds per served request: two clock reads, one histogram
#      observation, two counters) must be below BENCH_TOLERANCE_PCT of
#      BenchmarkTCPLookup, a real served wire round trip.
# Pipelined mode runs the 64-concurrent-client sustained-lookup
# benchmarks over the sequential v1 transport, the multiplexed v2
# transport and the v2 batched path, asserts that v2 (batched or
# pipelined) sustains at least BENCH_SPEEDUP_MIN (default 3) times the
# v1 throughput, and appends the measurements plus the speedup records
# to BENCH_<date>.json.
#
# Each benchmark runs -count times; the minimum ns/op is compared (the
# minimum is the least noisy location statistic for benchmarks).
set -eu

cd "$(dirname "$0")/.."

mode="${1:-micro}"
tolerance="${BENCH_TOLERANCE_PCT:-5}"
count="${BENCH_COUNT:-5}"
benchtime="${BENCH_TIME:-300ms}"

run_bench() {
    # $1 = anchored benchmark regex
    go test -run '^$' -bench "$1" -benchmem -count="$count" -benchtime="$benchtime" .
}

# min_ns <name> <file>: minimum ns/op over all runs of one benchmark.
min_ns() {
    awk -v name="$1" '
        $1 ~ "^"name"(-[0-9]+)?$" { if (min == "" || $3 < min) min = $3 }
        END { if (min == "") { exit 1 }; print min }
    ' "$2"
}

case "$mode" in
micro)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench 'BenchmarkHashGUID|BenchmarkLPMLookup|BenchmarkNearestPrefix|BenchmarkPlaceReplica|BenchmarkStorePutGet|BenchmarkWireEntryRoundTrip|BenchmarkPercentile|BenchmarkMetrics' \
        | tee "$raw"
    awk -v date="$date_tag" '
        BEGIN { print "[" }
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3; bytes = "null"; allocs = "null"
            for (i = 4; i <= NF; i++) {
                if ($i == "B/op") bytes = $(i-1)
                if ($i == "allocs/op") allocs = $(i-1)
            }
            if (seen++) printf ",\n"
            printf "  {\"date\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                date, name, ns, bytes, allocs
        }
        END { print "\n]" }
    ' "$raw" > "$out"
    echo "wrote $out"
    ;;

smoke)
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench '^(BenchmarkStorePutGet|BenchmarkStorePutGetInstrumented|BenchmarkMetricsRequestOverhead|BenchmarkTCPLookup)$' \
        | tee "$raw"

    store_base=$(min_ns BenchmarkStorePutGet "$raw")
    store_inst=$(min_ns BenchmarkStorePutGetInstrumented "$raw")
    req_over=$(min_ns BenchmarkMetricsRequestOverhead "$raw")
    tcp=$(min_ns BenchmarkTCPLookup "$raw")

    awk -v base="$store_base" -v inst="$store_inst" -v tol="$tolerance" '
        BEGIN {
            pct = (inst - base) / base * 100
            printf "store path: %.1f ns -> %.1f ns (%+.2f%%, budget %s%%)\n", base, inst, pct, tol
            exit (pct > tol) ? 1 : 0
        }' || { echo "FAIL: store instrumentation over budget" >&2; exit 1; }

    awk -v over="$req_over" -v tcp="$tcp" -v tol="$tolerance" '
        BEGIN {
            pct = over / tcp * 100
            printf "wire path: %.1f ns overhead on a %.1f ns served round trip (%.2f%%, budget %s%%)\n", over, tcp, pct, tol
            exit (pct > tol) ? 1 : 0
        }' || { echo "FAIL: wire-path instrumentation over budget" >&2; exit 1; }

    echo "metrics overhead within budget"
    ;;

pipelined)
    speedup_min="${BENCH_SPEEDUP_MIN:-3}"
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench '^BenchmarkLookup64Clients(V1|V2|V2Batch)$' | tee "$raw"

    v1=$(min_ns BenchmarkLookup64ClientsV1 "$raw")
    v2=$(min_ns BenchmarkLookup64ClientsV2 "$raw")
    v2b=$(min_ns BenchmarkLookup64ClientsV2Batch "$raw")

    records=$(awk -v date="$date_tag" -v v1="$v1" -v v2="$v2" -v v2b="$v2b" '
        BEGIN {
            printf "  {\"date\": \"%s\", \"name\": \"BenchmarkLookup64ClientsV1\", \"ns_per_op\": %s, \"bytes_per_op\": null, \"allocs_per_op\": null},\n", date, v1
            printf "  {\"date\": \"%s\", \"name\": \"BenchmarkLookup64ClientsV2\", \"ns_per_op\": %s, \"bytes_per_op\": null, \"allocs_per_op\": null},\n", date, v2
            printf "  {\"date\": \"%s\", \"name\": \"BenchmarkLookup64ClientsV2Batch\", \"ns_per_op\": %s, \"bytes_per_op\": null, \"allocs_per_op\": null},\n", date, v2b
            printf "  {\"date\": \"%s\", \"name\": \"speedup.v2_vs_v1\", \"ns_per_op\": %.2f, \"bytes_per_op\": null, \"allocs_per_op\": null},\n", date, v1 / v2
            printf "  {\"date\": \"%s\", \"name\": \"speedup.v2batch_vs_v1\", \"ns_per_op\": %.2f, \"bytes_per_op\": null, \"allocs_per_op\": null}", date, v1 / v2b
        }')
    if [ -s "$out" ]; then
        # Append to today's record set: drop the closing bracket, add rows.
        tmp=$(mktemp)
        sed '$d' "$out" > "$tmp"
        { cat "$tmp"; printf ",\n%s\n]\n" "$records"; } > "$out"
        rm -f "$tmp"
    else
        printf "[\n%s\n]\n" "$records" > "$out"
    fi
    echo "wrote $out"

    awk -v v1="$v1" -v v2="$v2" -v v2b="$v2b" -v minx="$speedup_min" '
        BEGIN {
            printf "64-client sustained lookups: v1 %.0f ns/op, v2 %.0f ns/op (%.1fx), v2 batched %.0f ns/op (%.1fx)\n", \
                v1, v2, v1 / v2, v2b, v1 / v2b
            best = v1 / v2; if (v1 / v2b > best) best = v1 / v2b
            exit (best >= minx) ? 0 : 1
        }' || { echo "FAIL: v2 transport under the ${speedup_min}x throughput target" >&2; exit 1; }

    echo "v2 transport meets the ${speedup_min}x throughput target"
    ;;

*)
    echo "usage: $0 [micro|smoke|pipelined]" >&2
    exit 2
    ;;
esac
