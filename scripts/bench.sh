#!/bin/sh
# Benchmark harness.
#
#   scripts/bench.sh           # micro-benchmarks -> BENCH_<date>.json
#   scripts/bench.sh smoke     # CI gate: metrics overhead budget
#   scripts/bench.sh pipelined # v1 vs v2 transport throughput gate
#   scripts/bench.sh trace     # tracing-off request overhead gate
#   scripts/bench.sh alloc     # single-op allocation budget gate
#   scripts/bench.sh recover   # WAL replay + restart time-to-serve
#   scripts/bench.sh soak      # >=1k-connection soak (informational)
#   scripts/bench.sh load      # open-loop overload sweep + knee gate
#   scripts/bench.sh heal      # partition-heal convergence sweep
#   scripts/bench.sh fleet     # telemetry-plane overhead + SLO gate
#   scripts/bench.sh validate  # parse every BENCH_*.json record file
#
# Default mode runs the hot-path micro-benchmarks (hashing, prefix
# match, placement, wire codec, store ops, metrics primitives) with
# -benchmem and emits a JSON record per benchmark into BENCH_<date>.json
# for longitudinal tracking.
#
# Smoke mode asserts the observability overhead budget (DESIGN.md §6):
#   1. store path: BenchmarkStorePutGetInstrumented must be within
#      BENCH_TOLERANCE_PCT (default 5%) of BenchmarkStorePutGet.
#   2. wire path: BenchmarkMetricsRequestOverhead (everything the server
#      adds per served request: two clock reads, one histogram
#      observation, two counters) must be below BENCH_TOLERANCE_PCT of
#      BenchmarkTCPLookup, a real served wire round trip.
#   3. codec pair: the absolute ns delta between
#      BenchmarkWireEntryRoundTripInstrumented and
#      BenchmarkWireEntryRoundTrip must be below BENCH_TOLERANCE_PCT of
#      BenchmarkTCPLookup. The pair is deliberately NOT compared
#      relatively: a ~100 ns encode/decode doubles under two clock reads
#      and a histogram observation, but what the budget protects is the
#      served request, and against a full round trip the same delta is
#      nearly invisible.
#
# Pipelined mode runs the concurrent-client sustained-lookup benchmarks
# (64 clients by default; override with BENCH_CLIENTS) over the
# sequential v1 transport, the multiplexed v2 transport and the v2
# batched path, asserts that v2 (batched or pipelined) sustains at least
# BENCH_SPEEDUP_MIN (default 3) times the v1 throughput, and appends the
# measurements plus the speedup records to BENCH_<date>.json.
#
# Trace mode runs the request-path tracing benchmarks
# (BenchmarkRequestTraceOff / BenchmarkRequestTraceOn) against the
# pre-tracing baseline (BenchmarkTCPLookup) and asserts that the
# trace-capable path with tracing DISABLED stays within
# BENCH_TOLERANCE_PCT (default 5%) of the baseline — the DESIGN.md §8
# tracing-off budget — then appends all three rows to BENCH_<date>.json.
# The fully-sampled cost (TraceOn vs TraceOff) is reported but not
# gated: 100% sampling is a debugging posture, not a production one.
#
# Alloc mode locks the explicit-buffer-ownership refactor in place
# (DESIGN.md §9-§10): the minimum-ns run of BenchmarkLookup64ClientsV2
# must stay at or under BENCH_MAX_ALLOCS allocs/op (default 1: the
# returned entry's NAs slice) and BENCH_MAX_BYTES B/op (default 64),
# and BenchmarkLookupInto64ClientsV2 — the caller-supplied entry buffer
# path — at or under BENCH_MAX_ALLOCS_INTO (default 0) and
# BENCH_MAX_BYTES_INTO (default 16). Any regression — a pool bypassed,
# a buffer escaping, a closure sneaking back into the demux path —
# fails CI the day it lands.
#
# Recover mode measures crash recovery: BenchmarkWALReplay (cold-start
# replay of BENCH_RECOVER_ENTRIES WAL records, default 50k; the
# entries/s metric is recorded as recover.replay_entries_per_s) and
# BenchmarkRecoverTimeToServe (durable Open + listener start + first
# answered lookup). Informational — both rows land in BENCH_<date>.json
# for longitudinal tracking.
#
# Soak mode drives BENCH_SOAK_CONNS (default 1024) concurrent
# multiplexed connections against one node (BenchmarkLookupSoakConns)
# and records the result; it is informational, not a gate — its job is
# flushing pool races and fd/goroutine leaks at a connection count the
# other modes never reach.
#
# Load mode runs TestLoadSweepCI (load_ci_test.go): an open-loop Poisson
# sweep through internal/load against real admission-limited TCP nodes.
# The test gates overload behavior itself — a throughput knee must
# exist, deep-overload goodput must hold >=40% of knee goodput, the
# servers must shed (not queue unboundedly) and the Zipf key skew must
# reach the hot-GUID trackers — and emits one LOADRECORD line per sweep
# point plus the detected knee and the deep-overload point. This mode
# harvests those lines into BENCH_<date>.json, where cmd/benchcheck
# validates the extended record schema. Worker count can be tuned with
# BENCH_LOAD_WORKERS (default 32).
#
# Heal mode runs TestHealSweepCI (heal_ci_test.go): a simulated
# partition-heal sweep through internal/experiments. The test gates the
# anti-entropy story itself — the partition must create measurable
# divergence, every gossip interval must converge and repair entries,
# and convergence time must be monotone in the interval — and emits one
# HEALRECORD line per sweep cell. This mode harvests those lines into
# BENCH_<date>.json, where cmd/benchcheck validates the heal record
# schema. Scale can be tuned with BENCH_HEAL_AS (default 120) and
# BENCH_HEAL_GUIDS (default 40).
#
# Fleet mode runs TestFleetTelemetryCI (fleet_ci_test.go): the full
# telemetry plane — metric collector, runtime bridge, black-box SLO
# prober — against a live 3-node cluster under foreground load. The
# test gates the plane's cost itself: foreground latency must stay
# within BENCH_FLEET_TOLERANCE_PCT (default 5%) of the idle loop, the
# single-op allocation budgets must hold with telemetry attached, and
# a healthy cluster must probe clean (no failures, no SLO burn). It
# emits one FLEETRECORD line that this mode harvests into
# BENCH_<date>.json, where cmd/benchcheck validates the fleet record
# schema.
#
# Validate mode builds cmd/benchcheck and parses every BENCH_*.json in
# the repository root, failing on any malformed record file. Every
# record-writing mode also validates the file it just wrote.
#
# Each benchmark runs -count times; the minimum ns/op is compared (the
# minimum is the least noisy location statistic for benchmarks).
set -eu

cd "$(dirname "$0")/.."

mode="${1:-micro}"
tolerance="${BENCH_TOLERANCE_PCT:-5}"
count="${BENCH_COUNT:-5}"
benchtime="${BENCH_TIME:-300ms}"

run_bench() {
    # $1 = anchored benchmark regex
    go test -run '^$' -bench "$1" -benchmem -count="$count" -benchtime="$benchtime" .
}

# min_ns <name> <file>: minimum ns/op over all runs of one benchmark.
min_ns() {
    awk -v name="$1" '
        $1 ~ "^"name"(-[0-9]+)?$" { if (min == "" || $3 < min) min = $3 }
        END { if (min == "") { exit 1 }; print min }
    ' "$2"
}

# min_bytes / min_allocs <name> <file>: B/op and allocs/op of the
# minimum-ns/op run of one benchmark (the run the gates compare).
min_bytes() {
    awk -v name="$1" -v want="B/op" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            if (min == "" || $3 < min) {
                min = $3; v = "null"
                for (i = 4; i <= NF; i++) if ($i == want) v = $(i-1)
            }
        }
        END { if (min == "") { exit 1 }; print v }
    ' "$2"
}
min_allocs() {
    awk -v name="$1" -v want="allocs/op" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            if (min == "" || $3 < min) {
                min = $3; v = "null"
                for (i = 4; i <= NF; i++) if ($i == want) v = $(i-1)
            }
        }
        END { if (min == "") { exit 1 }; print v }
    ' "$2"
}

# min_metric <name> <unit> <file>: a custom b.ReportMetric column (e.g.
# entries/s) from the minimum-ns/op run of one benchmark.
min_metric() {
    awk -v name="$1" -v want="$2" '
        $1 ~ "^"name"(-[0-9]+)?$" {
            if (min == "" || $3 < min) {
                min = $3; v = "null"
                for (i = 4; i <= NF; i++) if ($i == want) v = $(i-1)
            }
        }
        END { if (min == "") { exit 1 }; print v }
    ' "$3"
}

# bench_record <date> <name> <file>: one JSON record line for the
# minimum-ns run of a benchmark (no trailing comma or newline).
bench_record() {
    printf '  {"date": "%s", "name": "%s", "ns_per_op": %s, "bytes_per_op": %s, "allocs_per_op": %s}' \
        "$1" "$2" "$(min_ns "$2" "$3")" "$(min_bytes "$2" "$3")" "$(min_allocs "$2" "$3")"
}

# append_records <file> <records>: add JSON rows to today's record set,
# creating the file if it does not exist. The existing array is rebuilt
# by dropping everything from the closing bracket on (not just the last
# line, which silently corrupted files whose final line was not a lone
# "]"), and the result is validated before it replaces the original —
# a malformed emit fails loudly instead of poisoning the record file.
append_records() {
    tmp=$(mktemp)
    if [ -s "$1" ]; then
        awk '/^\]/{exit} {print}' "$1" > "$tmp"
        printf ",\n%s\n]\n" "$2" >> "$tmp"
    else
        printf "[\n%s\n]\n" "$2" > "$tmp"
    fi
    if ! go run ./cmd/benchcheck "$tmp" > /dev/null; then
        echo "FAIL: refusing to write malformed records to $1" >&2
        rm -f "$tmp"
        exit 1
    fi
    mv "$tmp" "$1"
}

case "$mode" in
micro)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench 'BenchmarkHashGUID|BenchmarkLPMLookup|BenchmarkNearestPrefix|BenchmarkPlaceReplica|BenchmarkStorePutGet|BenchmarkWireEntryRoundTrip|BenchmarkPercentile|BenchmarkMetrics' \
        | tee "$raw"
    records=$(awk -v date="$date_tag" '
        /^Benchmark/ {
            name = $1; sub(/-[0-9]+$/, "", name)
            ns = $3; bytes = "null"; allocs = "null"
            for (i = 4; i <= NF; i++) {
                if ($i == "B/op") bytes = $(i-1)
                if ($i == "allocs/op") allocs = $(i-1)
            }
            if (seen++) printf ",\n"
            printf "  {\"date\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
                date, name, ns, bytes, allocs
        }
    ' "$raw")
    append_records "$out" "$records"
    echo "wrote $out"
    ;;

smoke)
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench '^(BenchmarkStorePutGet|BenchmarkStorePutGetInstrumented|BenchmarkMetricsRequestOverhead|BenchmarkTCPLookup|BenchmarkWireEntryRoundTrip|BenchmarkWireEntryRoundTripInstrumented)$' \
        | tee "$raw"

    store_base=$(min_ns BenchmarkStorePutGet "$raw")
    store_inst=$(min_ns BenchmarkStorePutGetInstrumented "$raw")
    req_over=$(min_ns BenchmarkMetricsRequestOverhead "$raw")
    tcp=$(min_ns BenchmarkTCPLookup "$raw")
    wire_base=$(min_ns BenchmarkWireEntryRoundTrip "$raw")
    wire_inst=$(min_ns BenchmarkWireEntryRoundTripInstrumented "$raw")

    awk -v base="$store_base" -v inst="$store_inst" -v tol="$tolerance" '
        BEGIN {
            pct = (inst - base) / base * 100
            printf "store path: %.1f ns -> %.1f ns (%+.2f%%, budget %s%%)\n", base, inst, pct, tol
            exit (pct > tol) ? 1 : 0
        }' || { echo "FAIL: store instrumentation over budget" >&2; exit 1; }

    awk -v over="$req_over" -v tcp="$tcp" -v tol="$tolerance" '
        BEGIN {
            pct = over / tcp * 100
            printf "wire path: %.1f ns overhead on a %.1f ns served round trip (%.2f%%, budget %s%%)\n", over, tcp, pct, tol
            exit (pct > tol) ? 1 : 0
        }' || { echo "FAIL: wire-path instrumentation over budget" >&2; exit 1; }

    # The codec pair is gated on its ABSOLUTE delta against a served
    # round trip: relative to a ~100 ns encode/decode the clock reads
    # look enormous, but no request ever consists of a bare codec call.
    awk -v base="$wire_base" -v inst="$wire_inst" -v tcp="$tcp" -v tol="$tolerance" '
        BEGIN {
            delta = inst - base
            pct = delta / tcp * 100
            printf "codec pair: %.1f ns -> %.1f ns (+%.1f ns, %.2f%% of a served round trip, budget %s%%)\n", \
                base, inst, delta, pct, tol
            exit (pct > tol) ? 1 : 0
        }' || { echo "FAIL: instrumented codec delta over budget" >&2; exit 1; }

    echo "metrics overhead within budget"
    ;;

pipelined)
    speedup_min="${BENCH_SPEEDUP_MIN:-3}"
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench '^BenchmarkLookup64Clients(V1|V2|V2Batch)$' | tee "$raw"

    v1=$(min_ns BenchmarkLookup64ClientsV1 "$raw")
    v2=$(min_ns BenchmarkLookup64ClientsV2 "$raw")
    v2b=$(min_ns BenchmarkLookup64ClientsV2Batch "$raw")

    # -benchmem is always on, so B/op and allocs/op are real numbers
    # here, not nulls (taken from the same minimum-ns run the gate uses).
    records=$(
        bench_record "$date_tag" BenchmarkLookup64ClientsV1 "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkLookup64ClientsV2 "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkLookup64ClientsV2Batch "$raw"; printf ',\n'
        awk -v date="$date_tag" -v v1="$v1" -v v2="$v2" -v v2b="$v2b" '
        BEGIN {
            printf "  {\"date\": \"%s\", \"name\": \"speedup.v2_vs_v1\", \"ns_per_op\": %.2f, \"bytes_per_op\": 0, \"allocs_per_op\": 0},\n", date, v1 / v2
            printf "  {\"date\": \"%s\", \"name\": \"speedup.v2batch_vs_v1\", \"ns_per_op\": %.2f, \"bytes_per_op\": 0, \"allocs_per_op\": 0}", date, v1 / v2b
        }')
    append_records "$out" "$records"
    echo "wrote $out"

    awk -v v1="$v1" -v v2="$v2" -v v2b="$v2b" -v minx="$speedup_min" '
        BEGIN {
            printf "64-client sustained lookups: v1 %.0f ns/op, v2 %.0f ns/op (%.1fx), v2 batched %.0f ns/op (%.1fx)\n", \
                v1, v2, v1 / v2, v2b, v1 / v2b
            best = v1 / v2; if (v1 / v2b > best) best = v1 / v2b
            exit (best >= minx) ? 0 : 1
        }' || { echo "FAIL: v2 transport under the ${speedup_min}x throughput target" >&2; exit 1; }

    echo "v2 transport meets the ${speedup_min}x throughput target"
    ;;

trace)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench '^(BenchmarkTCPLookup|BenchmarkRequestTraceOff|BenchmarkRequestTraceOn)$' \
        | tee "$raw"

    base=$(min_ns BenchmarkTCPLookup "$raw")
    off=$(min_ns BenchmarkRequestTraceOff "$raw")
    on=$(min_ns BenchmarkRequestTraceOn "$raw")
    base_allocs=$(min_allocs BenchmarkTCPLookup "$raw")
    off_allocs=$(min_allocs BenchmarkRequestTraceOff "$raw")

    records=$(
        bench_record "$date_tag" BenchmarkTCPLookup "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkRequestTraceOff "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkRequestTraceOn "$raw")
    append_records "$out" "$records"
    echo "wrote $out"

    awk -v base="$base" -v off="$off" -v tol="$tolerance" '
        BEGIN {
            pct = (off - base) / base * 100
            printf "tracing off: %.1f ns -> %.1f ns (%+.2f%%, budget %s%%)\n", base, off, pct, tol
            exit (pct > tol) ? 1 : 0
        }' || { echo "FAIL: tracing-off request path over budget" >&2; exit 1; }

    if [ "$off_allocs" != "$base_allocs" ]; then
        echo "FAIL: tracing-off path allocates ($off_allocs allocs/op, baseline $base_allocs)" >&2
        exit 1
    fi

    awk -v off="$off" -v on="$on" '
        BEGIN { printf "tracing on (100%% sampled): %.1f ns -> %.1f ns (%+.2f%%, informational)\n", off, on, (on - off) / off * 100 }'
    echo "tracing-off request path within budget"
    ;;

alloc)
    max_allocs="${BENCH_MAX_ALLOCS:-1}"
    max_bytes="${BENCH_MAX_BYTES:-64}"
    max_allocs_into="${BENCH_MAX_ALLOCS_INTO:-0}"
    max_bytes_into="${BENCH_MAX_BYTES_INTO:-16}"
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    run_bench '^(BenchmarkLookup64ClientsV2|BenchmarkLookupInto64ClientsV2|BenchmarkTCPLookup)$' | tee "$raw"

    v2_allocs=$(min_allocs BenchmarkLookup64ClientsV2 "$raw")
    v2_bytes=$(min_bytes BenchmarkLookup64ClientsV2 "$raw")
    into_allocs=$(min_allocs BenchmarkLookupInto64ClientsV2 "$raw")
    into_bytes=$(min_bytes BenchmarkLookupInto64ClientsV2 "$raw")

    records=$(
        bench_record "$date_tag" BenchmarkLookup64ClientsV2 "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkLookupInto64ClientsV2 "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkTCPLookup "$raw")
    append_records "$out" "$records"
    echo "wrote $out"

    echo "single-op v2 lookup: ${v2_allocs} allocs/op (budget ${max_allocs}), ${v2_bytes} B/op (budget ${max_bytes})"
    echo "LookupInto v2 lookup: ${into_allocs} allocs/op (budget ${max_allocs_into}), ${into_bytes} B/op (budget ${max_bytes_into})"
    if [ "$v2_allocs" = "null" ] || [ "$v2_bytes" = "null" ] || [ "$into_allocs" = "null" ] || [ "$into_bytes" = "null" ]; then
        echo "FAIL: could not extract allocation figures" >&2
        exit 1
    fi
    if [ "$v2_allocs" -gt "$max_allocs" ]; then
        echo "FAIL: single-op path allocates $v2_allocs/op, budget $max_allocs (a pool was bypassed or a buffer escaped)" >&2
        exit 1
    fi
    if [ "$v2_bytes" -gt "$max_bytes" ]; then
        echo "FAIL: single-op path allocates $v2_bytes B/op, budget $max_bytes" >&2
        exit 1
    fi
    if [ "$into_allocs" -gt "$max_allocs_into" ]; then
        echo "FAIL: LookupInto path allocates $into_allocs/op, budget $max_allocs_into (the caller-supplied buffer is being bypassed)" >&2
        exit 1
    fi
    if [ "$into_bytes" -gt "$max_bytes_into" ]; then
        echo "FAIL: LookupInto path allocates $into_bytes B/op, budget $max_bytes_into" >&2
        exit 1
    fi
    echo "single-op allocation budgets held"
    ;;

recover)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    # Recovery iterations are whole Open cycles (tens of ms each):
    # -benchtime=5x keeps the mode fast while still taking a minimum.
    BENCH_RECOVER_ENTRIES="${BENCH_RECOVER_ENTRIES:-50000}" \
        go test -run '^$' -bench '^(BenchmarkWALReplay|BenchmarkRecoverTimeToServe)$' \
        -benchmem -count="$count" -benchtime="${BENCH_RECOVER_TIME:-5x}" . | tee "$raw"

    replay_rate=$(min_metric BenchmarkWALReplay entries/s "$raw")
    serve_ns=$(min_ns BenchmarkRecoverTimeToServe "$raw")

    records=$(
        bench_record "$date_tag" BenchmarkWALReplay "$raw"; printf ',\n'
        bench_record "$date_tag" BenchmarkRecoverTimeToServe "$raw"; printf ',\n'
        printf '  {"date": "%s", "name": "recover.replay_entries_per_s", "ns_per_op": %s, "bytes_per_op": 0, "allocs_per_op": 0}' \
            "$date_tag" "$replay_rate")
    append_records "$out" "$records"
    echo "wrote $out"

    awk -v rate="$replay_rate" -v serve="$serve_ns" 'BEGIN {
        printf "WAL replay: %.0f entries/s; restart time-to-serve: %.1f ms\n", rate, serve / 1e6
    }'
    ;;

soak)
    conns="${BENCH_SOAK_CONNS:-1024}"
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    BENCH_SOAK=1 BENCH_SOAK_CONNS="$conns" \
        go test -run '^$' -bench '^BenchmarkLookupSoakConns$' -benchmem \
        -benchtime="${BENCH_TIME:-2s}" . | tee "$raw"

    records=$(bench_record "$date_tag" BenchmarkLookupSoakConns "$raw")
    append_records "$out" "$records"
    echo "wrote $out"
    echo "soaked $conns concurrent connections"
    ;;

load)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    BENCH_LOAD=1 BENCH_DATE="$date_tag" \
        go test -run '^TestLoadSweepCI$' -v -timeout 10m . | tee "$raw"

    records=$(awk '/^LOADRECORD / { sub(/^LOADRECORD /, ""); if (seen++) printf ",\n"; printf "  %s", $0 }' "$raw")
    if [ -z "$records" ]; then
        echo "FAIL: load sweep emitted no LOADRECORD lines" >&2
        exit 1
    fi
    append_records "$out" "$records"
    echo "wrote $out"
    echo "overload sweep passed: knee detected, shedding engaged, goodput held"
    ;;

heal)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    BENCH_HEAL=1 BENCH_DATE="$date_tag" \
        go test -run '^TestHealSweepCI$' -v -timeout 10m . | tee "$raw"

    records=$(awk '/^HEALRECORD / { sub(/^HEALRECORD /, ""); if (seen++) printf ",\n"; printf "  %s", $0 }' "$raw")
    if [ -z "$records" ]; then
        echo "FAIL: heal sweep emitted no HEALRECORD lines" >&2
        exit 1
    fi
    append_records "$out" "$records"
    echo "wrote $out"
    echo "partition-heal sweep passed: divergence measured, every interval converged"
    ;;

fleet)
    date_tag=$(date +%Y%m%d)
    out="BENCH_${date_tag}.json"
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    BENCH_FLEET=1 BENCH_DATE="$date_tag" \
        go test -run '^TestFleetTelemetryCI$' -v -timeout 10m . | tee "$raw"

    records=$(awk '/^FLEETRECORD / { sub(/^FLEETRECORD /, ""); if (seen++) printf ",\n"; printf "  %s", $0 }' "$raw")
    if [ -z "$records" ]; then
        echo "FAIL: fleet gate emitted no FLEETRECORD lines" >&2
        exit 1
    fi
    append_records "$out" "$records"
    echo "wrote $out"
    echo "fleet telemetry gate passed: scrape overhead within budget, probes clean"
    ;;

validate)
    go run ./cmd/benchcheck
    ;;

*)
    echo "usage: $0 [micro|smoke|pipelined|trace|alloc|recover|soak|load|heal|fleet|validate]" >&2
    exit 2
    ;;
esac
