// Package dmap_test holds the repository benchmark harness: one
// testing.B benchmark per table and figure of the paper (run the full
// versions through cmd/dmapsim), plus micro-benchmarks for the hot
// paths: hashing, prefix matching, placement, routing and the wire
// protocol.
//
// Run with: go test -bench=. -benchmem
package dmap_test

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/dht"
	"dmap/internal/experiments"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
	"dmap/internal/nodesim"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/simnet"
	"dmap/internal/stats"
	"dmap/internal/store"
	"dmap/internal/topology"
	"dmap/internal/trace"
	"dmap/internal/wire"
)

// benchWorld memoizes one mid-sized world for all macro benchmarks so
// per-benchmark setup stays out of the measured loops.
var (
	benchOnce  sync.Once
	benchWorld *experiments.World
	benchErr   error
)

func world(b *testing.B) *experiments.World {
	b.Helper()
	benchOnce.Do(func() {
		benchWorld, benchErr = experiments.NewWorld(experiments.TestScale(2000, 1))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchWorld
}

// BenchmarkFig4QueryLatency regenerates Figure 4 (query response time CDF
// for K = 1, 3, 5) at benchmark scale.
func BenchmarkFig4QueryLatency(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLatency(w, experiments.LatencyConfig{
			Ks: []int{1, 3, 5}, NumGUIDs: 1000, NumLookups: 10000,
			LocalReplica: true, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.PerK[5].N() != 10000 {
			b.Fatal("short run")
		}
	}
}

// BenchmarkTable1LatencyStats regenerates Table I (mean/median/95th for
// K = 1 and K = 5).
func BenchmarkTable1LatencyStats(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLatency(w, experiments.LatencyConfig{
			Ks: []int{1, 5}, NumGUIDs: 1000, NumLookups: 10000,
			LocalReplica: true, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		rows := res.Table1()
		if len(rows) != 2 || !(rows[1].P95 < rows[0].P95) {
			b.Fatalf("Table I shape violated: %+v", rows)
		}
	}
}

// BenchmarkFig5ChurnLatency regenerates Figure 5 (response times under
// 5% BGP-churn lookup failures, K = 5).
func BenchmarkFig5ChurnLatency(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLatency(w, experiments.LatencyConfig{
			Ks: []int{5}, NumGUIDs: 1000, NumLookups: 10000,
			LocalReplica: true, MissRate: 0.05, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Retries[5] == 0 {
			b.Fatal("no retries under churn")
		}
	}
}

// BenchmarkFig6LoadDistribution regenerates Figure 6 (normalized load
// ratio distribution, K = 5).
func BenchmarkFig6LoadDistribution(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunLoad(w, experiments.LoadConfig{
			GUIDCounts: []int{50000}, K: 5,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.PerCount[50000].N() == 0 {
			b.Fatal("empty NLR")
		}
	}
}

// BenchmarkFig7AnalyticalBound regenerates Figure 7 (the §V analytical
// sweep over K = 1..20 for three Internet scenarios).
func BenchmarkFig7AnalyticalBound(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFig7(20)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 3 {
			b.Fatal("missing series")
		}
	}
}

// BenchmarkOverheadClosedForm regenerates the §IV-A storage/traffic
// arithmetic.
func BenchmarkOverheadClosedForm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunOverhead(26424, 5e9, 5, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHolesRehash regenerates the §III-B hole statistics.
func BenchmarkHolesRehash(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunHoles(w, 1, 10, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines regenerates the A4 scheme comparison (DMap vs
// Chord vs one-hop DHT vs home agent).
func BenchmarkBaselines(b *testing.B) {
	w := world(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBaselines(w, experiments.BaselinesConfig{
			K: 5, NumGUIDs: 200, NumLookups: 1000, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineWorkers sweeps the evaluation engine's worker count on
// the Fig. 4 workload. Results are bit-identical at every setting
// (internal/engine's determinism guarantee); only wall-clock differs.
// On a single-core host the sweep documents the engine's overhead
// neutrality instead of its speedup.
func BenchmarkEngineWorkers(b *testing.B) {
	w := world(b)
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunLatency(w, experiments.LatencyConfig{
					Ks: []int{1, 3, 5}, NumGUIDs: 1000, NumLookups: 10000,
					LocalReplica: true, Seed: int64(i), Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.PerK[5].N() != 10000 {
					b.Fatal("short run")
				}
			}
		})
	}
}

// ---- micro-benchmarks: the hot paths under the experiments ----

func benchResolver(b *testing.B) *core.Resolver {
	b.Helper()
	w := world(b)
	r, err := core.NewResolver(guid.MustHasher(5, 0), w.Table, 0)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkHashGUID measures one replica-hash evaluation.
func BenchmarkHashGUID(b *testing.B) {
	h := guid.MustHasher(5, 0)
	g := guid.New("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Hash(g, i%5)
	}
}

// BenchmarkLPMLookup measures longest-prefix matching against the
// generated DFZ (~24k prefixes at bench scale).
func BenchmarkLPMLookup(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Table.Lookup(netaddr.Addr(uint32(i) * 2654435761))
	}
}

// BenchmarkNearestPrefix measures the deputy-AS XOR-nearest search on
// addresses that are mostly holes.
func BenchmarkNearestPrefix(b *testing.B) {
	w := world(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Table.Nearest(netaddr.Addr(uint32(i)*2654435761 | 0xE0000000))
	}
}

// BenchmarkPlaceReplica measures one full Algorithm 1 placement
// (hash + LPM + rehashes).
func BenchmarkPlaceReplica(b *testing.B) {
	r := benchResolver(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.PlaceReplica(guid.FromUint64(uint64(i)+1), i%5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDijkstra measures one single-source shortest-path pass over
// the 2000-AS benchmark topology.
func BenchmarkDijkstra(b *testing.B) {
	w := world(b)
	dist := make([]topology.Micros, w.NumAS())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Graph.Dijkstra(i%w.NumAS(), dist)
	}
}

// BenchmarkChordLookupPath measures one multi-hop Chord route.
func BenchmarkChordLookupPath(b *testing.B) {
	c, err := dht.NewChord(2000, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.LookupPath(i%2000, guid.FromUint64(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePutGet measures the per-AS mapping store.
func BenchmarkStorePutGet(b *testing.B) {
	s := store.New()
	nas := []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := guid.FromUint64(uint64(i%1024) + 1)
		if _, err := s.Put(store.Entry{GUID: g, NAs: nas, Version: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Get(g); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkStorePutGetInstrumented is BenchmarkStorePutGet with the
// store's metrics instrumentation attached; scripts/bench.sh smoke
// asserts the pair stays within the observability overhead budget
// (<5%, DESIGN.md §6).
func BenchmarkStorePutGetInstrumented(b *testing.B) {
	s := store.New()
	s.Instrument(metrics.NewRegistry(), "store")
	nas := []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := guid.FromUint64(uint64(i%1024) + 1)
		if _, err := s.Put(store.Entry{GUID: g, NAs: nas, Version: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
		if _, ok := s.Get(g); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkWireEntryRoundTrip measures encode+decode of a 5-NA entry.
func BenchmarkWireEntryRoundTrip(b *testing.B) {
	e := store.Entry{GUID: guid.New("wire"), Version: 1}
	for i := 0; i < 5; i++ {
		e.NAs = append(e.NAs, store.NA{AS: i, Addr: netaddr.Addr(i)})
	}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc, err := wire.AppendEntry(buf[:0], e)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.DecodeEntry(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEntryRoundTripInstrumented adds exactly the per-op
// instrumentation the server wraps around the wire path — two clock
// reads and one histogram observation — so the smoke gate measures the
// true marginal cost of observing a request.
func BenchmarkWireEntryRoundTripInstrumented(b *testing.B) {
	e := store.Entry{GUID: guid.New("wire"), Version: 1}
	for i := 0; i < 5; i++ {
		e.NAs = append(e.NAs, store.NA{AS: i, Addr: netaddr.Addr(i)})
	}
	h := metrics.NewRegistry().Histogram("wire.roundtrip_us")
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		enc, err := wire.AppendEntry(buf[:0], e)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := wire.DecodeEntry(enc); err != nil {
			b.Fatal(err)
		}
		h.ObserveSince(start)
	}
}

// BenchmarkMetricsCounter measures one hot-path counter increment.
func BenchmarkMetricsCounter(b *testing.B) {
	c := metrics.NewRegistry().Counter("bench.ops")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	if c.Value() != int64(b.N) {
		b.Fatal("lost increments")
	}
}

// BenchmarkMetricsHistogramObserve measures one hot-path histogram
// observation (bucket search + atomics), the unit of cost every
// instrumented operation pays.
func BenchmarkMetricsHistogramObserve(b *testing.B) {
	h := metrics.NewRegistry().Histogram("bench.lat_us")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i & 0xffff))
	}
}

// BenchmarkMetricsRequestOverhead measures exactly what the server adds
// to one served request: two clock reads, one histogram observation and
// two counter increments. scripts/bench.sh smoke divides this by
// BenchmarkTCPLookup (a real served wire round trip) to assert the
// wire-path observability budget (<5%, DESIGN.md §6).
func BenchmarkMetricsRequestOverhead(b *testing.B) {
	reg := metrics.NewRegistry()
	lookups := reg.Counter("bench.lookups")
	hits := reg.Counter("bench.hits")
	h := reg.Histogram("bench.op_us")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		lookups.Inc()
		hits.Inc()
		h.ObserveSince(start)
	}
}

// BenchmarkPercentile measures the stats kernel used by every figure.
func BenchmarkPercentile(b *testing.B) {
	c := stats.NewCollector(100000)
	for i := 0; i < 100000; i++ {
		c.Add(float64(i%977) * 1.3)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Percentile(95)
	}
}

// BenchmarkGenerateDFZ measures synthetic prefix-table generation.
func BenchmarkGenerateDFZ(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prefixtable.Generate(prefixtable.GenConfig{
			NumAS: 500, NumPrefixes: 6000, AnnouncedFraction: 0.52, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerateTopology measures synthetic AS-graph generation.
func BenchmarkGenerateTopology(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := topology.Generate(topology.SmallGenConfig(1000, int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimnetEvents measures raw event-engine throughput.
func BenchmarkSimnetEvents(b *testing.B) {
	s := simnet.New()
	b.ReportAllocs()
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < b.N {
			_ = s.After(1, chain)
		}
	}
	_ = s.After(1, chain)
	b.ResetTimer()
	s.Run(0)
	if n != b.N {
		b.Fatalf("executed %d events, want %d", n, b.N)
	}
}

// BenchmarkNodesimLookup measures one full message-level DMap lookup
// (request, response, timers) in the event engine.
func BenchmarkNodesimLookup(b *testing.B) {
	w := world(b)
	resolver, err := core.NewResolver(guid.MustHasher(5, 0), w.Table, 0)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{Resolver: resolver, NumAS: w.NumAS()})
	if err != nil {
		b.Fatal(err)
	}
	cache, err := topology.NewDistCache(w.Graph, 256)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := nodesim.NewDeployment(sys, simnet.New(), cache, 0)
	if err != nil {
		b.Fatal(err)
	}
	e := store.Entry{
		GUID:    guid.New("bench"),
		NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 1,
	}
	if err := dep.Insert(1, e, func(nodesim.InsertResult) {}); err != nil {
		b.Fatal(err)
	}
	dep.Sim().Run(0)
	b.ReportAllocs()
	b.ResetTimer()
	found := 0
	for i := 0; i < b.N; i++ {
		if err := dep.Lookup(i%w.NumAS(), e.GUID, func(r nodesim.LookupResult) {
			if r.Found {
				found++
			}
		}); err != nil {
			b.Fatal(err)
		}
		dep.Sim().Run(0)
	}
	if found != b.N {
		b.Fatalf("found %d/%d", found, b.N)
	}
}

// BenchmarkTCPLookup measures a full client→server→client lookup over
// loopback TCP with the binary wire protocol.
func BenchmarkTCPLookup(b *testing.B) {
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil { // one AS owns everything
		b.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		b.Fatal(err)
	}
	node := server.New(nil, nil)
	addr, err := node.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	cl, err := client.New(resolver, map[int]string{0: addr}, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	e := store.Entry{
		GUID:    guid.New("tcp-bench"),
		NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 1,
	}
	if _, err := cl.Insert(e); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Lookup(e.GUID); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTraceCluster starts one trace-capable mapping node owning the
// whole address space (K=1) plus a cluster client with the given
// tracer, pre-loaded with one entry. It is the fixture for the
// request-tracing overhead benchmarks.
func benchTraceCluster(b *testing.B, clientTracer *trace.Tracer, opts server.Options) (*client.Cluster, guid.GUID) {
	b.Helper()
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil {
		b.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		b.Fatal(err)
	}
	node := server.NewWithOptions(nil, opts)
	addr, err := node.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { node.Close() })
	cl, err := client.NewWithConfig(resolver, map[int]string{0: addr}, client.Config{Tracer: clientTracer})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	e := store.Entry{
		GUID:    guid.New("trace-bench"),
		NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 1,
	}
	if _, err := cl.Insert(e); err != nil {
		b.Fatal(err)
	}
	return cl, e.GUID
}

// BenchmarkRequestTraceOff measures a served lookup through the
// trace-capable request path with tracing disabled — nil tracer on both
// sides, so every per-op trace hook is a nil check and no trace context
// reaches the wire. scripts/bench.sh trace compares this against
// BenchmarkTCPLookup (the pre-tracing baseline) to assert the
// tracing-off budget (<5%, DESIGN.md §8); allocs/op is reported so the
// allocation-free-when-off claim stays checkable.
func BenchmarkRequestTraceOff(b *testing.B) {
	cl, g := benchTraceCluster(b, nil, server.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Lookup(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequestTraceOn is the same served lookup with the full
// tracing stack engaged: the client samples every op (Sample=1), the
// trace context rides the v2 frame, and the server joins each frame as
// a child span, observes exemplars and feeds the hot-GUID tracker. The
// delta over BenchmarkRequestTraceOff is the worst-case (100% sampled)
// cost of a distributed trace.
func BenchmarkRequestTraceOn(b *testing.B) {
	cl, g := benchTraceCluster(b,
		trace.New(trace.Config{Sample: 1, Seed: 1}),
		server.Options{Tracer: trace.New(trace.Config{Seed: 2}), HotKeys: trace.NewHotKeys(32)})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Lookup(g); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLookupCluster starts one mapping node owning the whole address
// space (K=1, so every lookup is one wire round trip) plus a cluster
// client with the given transport config, pre-loaded with numGUIDs
// entries. It is the fixture for the sustained-throughput benchmarks
// comparing the sequential v1 transport against the multiplexed v2 one.
func benchLookupCluster(b *testing.B, cfg client.Config, numGUIDs int) (*client.Cluster, []guid.GUID) {
	b.Helper()
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil {
		b.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		b.Fatal(err)
	}
	node := server.New(nil, nil)
	addr, err := node.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { node.Close() })
	cl, err := client.NewWithConfig(resolver, map[int]string{0: addr}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { cl.Close() })
	gs := make([]guid.GUID, numGUIDs)
	entries := make([]store.Entry, numGUIDs)
	for i := range gs {
		gs[i] = guid.New(fmt.Sprintf("bench-%d", i))
		entries[i] = store.Entry{
			GUID:    gs[i],
			NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(10, 0, byte(i>>8), byte(i))}},
			Version: 1,
		}
	}
	if _, err := cl.InsertBatch(entries); err != nil {
		b.Fatal(err)
	}
	return cl, gs
}

// envInt reads a positive integer from the environment, falling back to
// def when unset or unparsable.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// benchConcurrentClients is the concurrent-client work dispenser size:
// each simulated client pulls lookup indices off a shared atomic counter
// until b.N operations have been issued, so the measured quantity is
// sustained cluster throughput, not per-caller latency. The historical
// default of 64 (the benchmark names keep it) can be overridden with
// BENCH_CLIENTS for sweeps without recompiling.
func benchConcurrentClients() int { return envInt("BENCH_CLIENTS", 64) }

func runConcurrentLookups(b *testing.B, do func(i int) error) {
	var next int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for c := 0; c < benchConcurrentClients(); c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= b.N {
					return
				}
				if err := do(i); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkLookup64ClientsV1 measures sustained lookups/sec with 64
// concurrent clients over the sequential v1 transport: the pool keeps
// one idle conn per address, so most concurrent callers pay a fresh TCP
// dial per request — the cost the v2 multiplexed transport removes.
func BenchmarkLookup64ClientsV1(b *testing.B) {
	cl, gs := benchLookupCluster(b, client.Config{ForceV1: true}, 1024)
	runConcurrentLookups(b, func(i int) error {
		_, err := cl.Lookup(gs[i%len(gs)])
		return err
	})
}

// BenchmarkLookup64ClientsV2 is the same workload over the multiplexed
// v2 transport: all 64 clients pipeline their requests on one shared
// connection, demultiplexed by request ID.
func BenchmarkLookup64ClientsV2(b *testing.B) {
	cl, gs := benchLookupCluster(b, client.Config{}, 1024)
	runConcurrentLookups(b, func(i int) error {
		_, err := cl.Lookup(gs[i%len(gs)])
		return err
	})
}

// BenchmarkLookup64ClientsV2Batch adds batching on top of multiplexing:
// each of the 64 clients resolves blocks of 64 GUIDs per LookupBatch
// call, so a whole block shares one wire frame. ns/op is still reported
// per individual GUID resolved.
func BenchmarkLookup64ClientsV2Batch(b *testing.B) {
	const block = 64
	cl, gs := benchLookupCluster(b, client.Config{}, 1024)
	var next int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for c := 0; c < benchConcurrentClients(); c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := make([]guid.GUID, 0, block)
			for {
				start := int(atomic.AddInt64(&next, block)) - block
				if start >= b.N {
					return
				}
				n := min(block, b.N-start)
				batch = batch[:0]
				for i := start; i < start+n; i++ {
					batch = append(batch, gs[i%len(gs)])
				}
				_, found, err := cl.LookupBatch(batch)
				if err != nil {
					b.Error(err)
					return
				}
				for _, ok := range found {
					if !ok {
						b.Error("batch lookup miss")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkLookupSoakConns soaks one node under BENCH_SOAK_CONNS
// (default 1024) concurrent v2 connections, each carrying its own
// pipelined lookup stream. A Cluster multiplexes everything to one
// address onto a single shared connection, so the fixture builds one
// Cluster per connection against a single node — the server sees ≥1k
// live multiplexed conns, each with its own reader, worker pool and
// coalescing writer drawing from the shared buffer pools. Gated behind
// BENCH_SOAK=1 (scripts/bench.sh soak sets it): the fixture dials
// thousands of sockets, which is soak territory, not a smoke gate.
func BenchmarkLookupSoakConns(b *testing.B) {
	if os.Getenv("BENCH_SOAK") == "" {
		b.Skip("set BENCH_SOAK=1 (and optionally BENCH_SOAK_CONNS) to run the high-connection soak")
	}
	conns := envInt("BENCH_SOAK_CONNS", 1024)
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil {
		b.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		b.Fatal(err)
	}
	node := server.New(nil, nil)
	addr, err := node.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { node.Close() })
	e := store.Entry{
		GUID:    guid.New("soak-bench"),
		NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 1,
	}
	clusters := make([]*client.Cluster, conns)
	for i := range clusters {
		cl, err := client.New(resolver, map[int]string{0: addr}, 0)
		if err != nil {
			b.Fatal(err)
		}
		clusters[i] = cl
		b.Cleanup(func() { cl.Close() })
	}
	if _, err := clusters[0].Insert(e); err != nil {
		b.Fatal(err)
	}
	// Warm every connection before the timer: the measured region is
	// steady-state soak, not dial/handshake throughput.
	for _, cl := range clusters {
		if _, err := cl.Lookup(e.GUID); err != nil {
			b.Fatal(err)
		}
	}
	var next int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for _, cl := range clusters {
		wg.Add(1)
		go func(cl *client.Cluster) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= b.N {
					return
				}
				if _, err := cl.Lookup(e.GUID); err != nil {
					b.Error(err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
}

// BenchmarkLookupInto64ClientsV2 is BenchmarkLookup64ClientsV2 with a
// caller-supplied entry buffer per simulated client: the full TCP round
// trip with zero heap allocations (the last alloc — the returned NAs
// slice — dies in the reused buffer). scripts/bench.sh alloc gates it
// at 0 allocs/op.
func BenchmarkLookupInto64ClientsV2(b *testing.B) {
	cl, gs := benchLookupCluster(b, client.Config{}, 1024)
	var next int64
	var wg sync.WaitGroup
	b.ReportAllocs()
	b.ResetTimer()
	for c := 0; c < benchConcurrentClients(); c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var e store.Entry
			e.NAs = make([]store.NA, 0, store.MaxNAs)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= b.N {
					return
				}
				if err := cl.LookupInto(gs[i%len(gs)], &e); err != nil {
					b.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// buildRecoveryDir writes a data dir whose whole population lives in
// the WALs (snapshots disabled), so recovery must replay every record.
func buildRecoveryDir(b *testing.B, entries int) string {
	b.Helper()
	dir := b.TempDir()
	st, err := store.Open(store.Options{Dir: dir, SnapshotBytes: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(i) + 1),
			NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(10, 0, byte(i>>8), byte(i))}},
			Version: 1,
		}
		if _, err := st.Put(e); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// BenchmarkWALReplay measures cold-start recovery throughput: Open
// replays BENCH_RECOVER_ENTRIES WAL records (default 50k) per
// iteration. The extra metric is replayed entries per second.
func BenchmarkWALReplay(b *testing.B) {
	entries := envInt("BENCH_RECOVER_ENTRIES", 50000)
	dir := buildRecoveryDir(b, entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(store.Options{Dir: dir, SnapshotBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != entries {
			b.Fatalf("recovered %d entries, want %d", st.Len(), entries)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(entries)*float64(b.N)/b.Elapsed().Seconds(), "entries/s")
}

// BenchmarkRecoverTimeToServe measures restart-to-first-answer: open
// the durable store (full WAL replay), start the TCP listener, and
// serve one lookup over a fresh connection. ns/op is the
// time-to-serve after a crash.
func BenchmarkRecoverTimeToServe(b *testing.B) {
	entries := envInt("BENCH_RECOVER_ENTRIES", 50000)
	dir := buildRecoveryDir(b, entries)
	payload := wire.AppendGUID(nil, guid.FromUint64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		node, err := server.Open(server.Options{DataDir: dir, SnapshotBytes: -1})
		if err != nil {
			b.Fatal(err)
		}
		addr, err := node.Start("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			b.Fatal(err)
		}
		if err := wire.WriteFrame(conn, wire.MsgLookup, payload); err != nil {
			b.Fatal(err)
		}
		typ, body, err := wire.ReadFrame(conn)
		if err != nil || typ != wire.MsgLookupResp {
			b.Fatalf("first lookup = (%v, %v)", typ, err)
		}
		resp, err := wire.DecodeLookupResp(body)
		if err != nil || !resp.Found {
			b.Fatalf("first lookup decode = (%+v, %v)", resp, err)
		}
		b.StopTimer()
		conn.Close()
		if err := node.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
