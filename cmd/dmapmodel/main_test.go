package main

import "testing"

func TestRunDefault(t *testing.T) {
	if err := run([]string{"-maxk", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomFractions(t *testing.T) {
	if err := run([]string{"-maxk", "3", "-fractions", "0.01,0.2,0.5,0.29"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-fractions", "abc"}); err == nil {
		t.Error("bad fractions should fail")
	}
	if err := run([]string{"-fractions", "-1,2"}); err == nil {
		t.Error("negative fraction should fail")
	}
}

func TestRunMeasuredTopology(t *testing.T) {
	if err := run([]string{"-maxk", "3", "-measured", "300"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Error("bad flag should fail")
	}
}
