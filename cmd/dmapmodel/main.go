// Command dmapmodel evaluates the §V analytical upper bound on DMap
// query response time (Figure 7) for the paper's three Internet-evolution
// scenarios, an optional custom layer-fraction vector, or the layer
// decomposition of a freshly generated topology.
//
// Usage:
//
//	dmapmodel [-maxk 20] [-fractions 0.01,0.2,0.5,0.29] [-measured 26424] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dmap/internal/analytical"
	"dmap/internal/experiments"
	"dmap/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dmapmodel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dmapmodel", flag.ContinueOnError)
	var (
		maxK      = fs.Int("maxk", 20, "largest replication factor to evaluate")
		fractions = fs.String("fractions", "", "comma-separated custom layer fractions r_0,r_1,...")
		measured  = fs.Int("measured", 0, "also decompose a generated topology of this many ASs")
		seed      = fs.Int64("seed", 1, "seed for -measured")
		c0        = fs.Float64("c0", analytical.DefaultC0, "ms per overlay hop")
		c1        = fs.Float64("c1", analytical.DefaultC1, "constant ms offset")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	res, err := experiments.RunFig7(*maxK)
	if err != nil {
		return err
	}
	fmt.Println("# Figure 7: analytical RTT upper bound vs number of replicas K")
	fmt.Print(res)

	if *fractions != "" {
		parts := strings.Split(*fractions, ",")
		rs := make([]float64, 0, len(parts))
		for _, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("bad fraction %q: %w", p, err)
			}
			rs = append(rs, v)
		}
		m, err := analytical.NewModel(rs, *c0, *c1)
		if err != nil {
			return err
		}
		fmt.Printf("\n# custom model (%d layers)\n", m.NumLayers())
		if err := printSweep(m, *maxK); err != nil {
			return err
		}
	}

	if *measured > 0 {
		g, err := topology.Generate(topology.SmallGenConfig(*measured, *seed))
		if err != nil {
			return err
		}
		jf := topology.DecomposeJellyfish(g)
		m, err := analytical.NewModel(jf.LayerFractions, *c0, *c1)
		if err != nil {
			return err
		}
		fmt.Printf("\n# generated topology: %d ASs, %d layers, core %d\n",
			g.NumAS(), jf.NumLayers(), len(jf.Core))
		fmt.Printf("layer fractions:")
		for _, r := range jf.LayerFractions {
			fmt.Printf(" %.4f", r)
		}
		fmt.Println()
		if err := printSweep(m, *maxK); err != nil {
			return err
		}
	}
	return nil
}

func printSweep(m *analytical.Model, maxK int) error {
	vals, err := m.Sweep(maxK)
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %12s\n", "K", "bound(ms)")
	for k, v := range vals {
		fmt.Printf("%-4d %12.1f\n", k+1, v)
	}
	return nil
}
