// Command dmapsim regenerates the paper's tables and figures (and the
// DESIGN.md ablations) from the DMap simulation.
//
// Usage:
//
//	dmapsim -experiment fig4 [-scale 26424] [-guids 100000] [-lookups 1000000] [-seed 1]
//
// Experiments: fig4, table1, fig5, fig6, fig7, overhead, holes,
// baselines, availability, ablation-selection, ablation-local,
// ablation-m, ablation-asnum, ablation-k.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/experiments"
	"dmap/internal/metrics"
	"dmap/internal/simnet"
	"dmap/internal/topology"
	"dmap/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dmapsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dmapsim", flag.ContinueOnError)
	var (
		experiment  = fs.String("experiment", "fig4", "which experiment to run")
		scale       = fs.Int("scale", 26424, "number of ASs (26424 = paper scale)")
		guids       = fs.Int("guids", 100000, "GUID population for latency experiments")
		lookups     = fs.Int("lookups", 1000000, "lookup count for latency experiments")
		seed        = fs.Int64("seed", 1, "PRNG seed")
		k           = fs.Int("k", 5, "replication factor for single-K experiments")
		workers     = fs.Int("workers", 0, "engine workers (0 = GOMAXPROCS, 1 = serial reference)")
		cdfPoints   = fs.Int("cdf", 0, "also print an n-point CDF per series")
		hist        = fs.Bool("hist", false, "also print an ASCII latency histogram per series")
		failFracs   = fs.String("failfracs", "0,0.05,0.10,0.20", "failed-node fractions for the availability sweep (comma-separated)")
		loss        = fs.Float64("loss", 0, "per-attempt message loss probability for the availability sweep")
		retries     = fs.Int("retries", 1, "same-replica retransmissions before failover (availability sweep)")
		timeoutMs   = fs.Int("attempt-timeout-ms", 2000, "per-attempt timeout charged for dead replicas and lost messages")
		batch       = fs.Int("batch", 1, "modeled v2 batch size for update/queryload wire-frame accounting (1 = sequential v1)")
		showMetrics = fs.Bool("metrics", false, "print a metrics snapshot (engine occupancy, unit latency, driver gauges) after the experiment")
		traceSample = fs.Int("trace-sample", 0, "sample 1 in N engine.Map calls into a trace (0 = off)")
		slowOpMs    = fs.Int("slow-op-ms", 0, "log engine work units slower than this many milliseconds (0 = off)")
		gossipMs    = fs.String("gossip-ms", "100,500,1000,5000", "gossip intervals in ms for the partition-heal sweep (comma-separated)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var tracer *trace.Tracer
	if *traceSample > 0 || *slowOpMs > 0 {
		tracer = trace.New(trace.Config{
			Sample: *traceSample,
			SlowOp: time.Duration(*slowOpMs) * time.Millisecond,
			Seed:   uint64(*seed),
		})
		engine.SetTracer(tracer)
	}
	// printSnap dumps the process-wide registry once the experiment has
	// finished populating it (the engine reports unit latency and
	// occupancy; some drivers add gauges of their own), followed by any
	// tracer captures (sampled engine.map traces, slow work units).
	printSnap := func() {
		if !*showMetrics {
			return
		}
		fmt.Println("\n# metrics (deterministic values only are stable across runs)")
		_ = metrics.Default.Snapshot().WriteText(os.Stdout)
	}
	printTraces := func() {
		if tracer == nil {
			return
		}
		st := tracer.Stats()
		fmt.Printf("\n# tracing: %d maps, %d sampled, %d slow units\n", st.Ops, st.Sampled, st.SlowOps)
		for _, v := range tracer.Traces() {
			fmt.Print(v.Tree(true))
		}
		for _, so := range tracer.SlowOps() {
			fmt.Printf("slow %s %s %dµs\n", so.Op, so.Detail, so.DurUs)
		}
	}

	// Experiments that need no world.
	switch *experiment {
	case "fig7":
		res, err := experiments.RunFig7(20)
		if err != nil {
			return err
		}
		fmt.Println("# Figure 7: analytical RTT upper bound vs replicas")
		fmt.Print(res)
		printSnap()
		printTraces()
		return nil
	case "overhead":
		res, err := experiments.RunOverhead(*scale, 5e9, *k, 100)
		if err != nil {
			return err
		}
		fmt.Println("# §IV-A storage and traffic overhead")
		fmt.Print(res)
		printSnap()
		printTraces()
		return nil
	case "heal":
		intervals, err := parseGossipMs(*gossipMs)
		if err != nil {
			return err
		}
		numAS := *scale
		if numAS > 1000 {
			numAS = 200 // event-driven sim; paper scale is not the point here
		}
		res, err := experiments.RunHeal(experiments.HealConfig{
			NumAS:           numAS,
			K:               *k,
			LocalReplica:    true,
			NumGUIDs:        *guids / 1000,
			GossipIntervals: intervals,
			Seed:            *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println("# partition-heal convergence vs gossip interval (DESIGN §12)")
		fmt.Print(res)
		printSnap()
		printTraces()
		return nil
	}

	cfg := experiments.FullScale(*seed)
	if *scale != 26424 {
		cfg = experiments.TestScale(*scale, *seed)
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "generating world: %d ASs, %d prefixes...\n", cfg.NumAS, cfg.NumPrefixes)
	w, err := experiments.NewWorld(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "world ready in %v (links=%d, announced=%.1f%%)\n",
		time.Since(start).Round(time.Millisecond), w.Graph.NumLinks(), 100*w.Table.AnnouncedFraction())

	printCDFs := func(res *experiments.LatencyResult, ks []int) {
		if *cdfPoints > 0 {
			for _, kk := range ks {
				fmt.Printf("\n# CDF K=%d (RTT ms, fraction)\n", kk)
				for _, p := range res.CDFSeries(kk, *cdfPoints) {
					fmt.Printf("%10.2f %8.4f\n", p.Value, p.Fraction)
				}
			}
		}
		if *hist {
			for _, kk := range ks {
				col, ok := res.PerK[kk]
				if !ok {
					continue
				}
				fmt.Printf("\n# histogram K=%d (RTT ms, clipped at p99)\n", kk)
				if h := col.Clip(99).NewHistogram(16); h != nil {
					fmt.Print(h.Render(48))
				}
			}
		}
	}

	switch *experiment {
	case "fig4", "table1":
		res, err := experiments.RunLatency(w, experiments.LatencyConfig{
			Ks: []int{1, 3, 5}, NumGUIDs: *guids, NumLookups: *lookups,
			LocalReplica: true, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Figure 4 / Table I: round-trip query response time")
		fmt.Print(res)
		printCDFs(res, []int{1, 3, 5})

	case "fig5":
		fmt.Println("# Figure 5: effect of BGP churn (K=5)")
		for _, rate := range []float64{0, 0.05, 0.10} {
			res, err := experiments.RunLatency(w, experiments.LatencyConfig{
				Ks: []int{*k}, NumGUIDs: *guids, NumLookups: *lookups,
				LocalReplica: true, MissRate: rate, Seed: *seed, Workers: *workers,
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n## %.0f%% lookup failures\n", 100*rate)
			fmt.Print(res)
			printCDFs(res, []int{*k})
		}

	case "fig6":
		counts := []int{100000, 1000000, 10000000}
		if *scale != 26424 {
			counts = []int{10000, 100000, 1000000}
		}
		res, err := experiments.RunLoad(w, experiments.LoadConfig{GUIDCounts: counts, K: *k})
		if err != nil {
			return err
		}
		fmt.Println("# Figure 6: normalized load ratio per AS")
		fmt.Print(res)

	case "update":
		res, err := experiments.RunUpdate(w, experiments.UpdateConfig{
			Ks: []int{1, 3, 5}, NumUpdates: *guids, Seed: *seed, Workers: *workers,
			Batch: *batch,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Update latency: max RTT over K parallel replica writes (§III-A)")
		fmt.Print(res)

	case "world":
		fmt.Println("# Generated-world statistics vs the DIMES/APNIC references")
		fmt.Print(topology.ComputeStats(w.Graph))
		fmt.Printf("prefixes: %d (paper: ~330000), announced: %.1f%% of IPv4 (paper: 52%%)\n",
			w.Table.Len(), 100*w.Table.AnnouncedFraction())

	case "queryload":
		res, err := experiments.RunQueryLoad(w, experiments.QueryLoadConfig{
			Ks: []int{1, 3, 5}, NumGUIDs: *guids, NumLookups: *lookups,
			Seed: *seed, Workers: *workers, Batch: *batch,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Query-serving load concentration (replication as hot-spot relief)")
		fmt.Print(res)

	case "churnsim":
		res, err := experiments.RunChurnSim(w, experiments.ChurnSimConfig{
			K: *k, NumGUIDs: *guids, NumLookups: *lookups,
			DurationSec:    600,
			WithdrawPerSec: 0.2,
			AnnouncePerSec: 0.2,
			Seed:           *seed,
			Workers:        *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Protocol-level BGP churn: live withdrawals/announcements with §III-D1 migration")
		fmt.Print(res)

	case "crossval":
		res, err := experiments.RunCrossVal(w, experiments.CrossValConfig{
			K: *k, NumGUIDs: *guids, NumLookups: *lookups, Seed: *seed,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Engine cross-validation: closed-form evaluator vs discrete-event simulator")
		fmt.Print(res)

	case "caching":
		res, err := experiments.RunCaching(w, experiments.CachingConfig{
			K: *k, NumGUIDs: *guids, NumLookups: *lookups,
			DurationSec:      3600,
			UpdateRatePerSec: 100.0 / 86400, // the §IV-A mobility rate
			TTLs: []topology.Micros{
				0, 1_000_000, 10_000_000, 60_000_000, 600_000_000,
			},
			Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("# §VII extension: per-AS query caching (latency vs staleness)")
		fmt.Print(res)
		for _, row := range res.Rows {
			name := fmt.Sprintf("caching.ttl_%gs", float64(row.TTL)/1e6)
			metrics.Default.Gauge(name + ".hit_rate").Set(row.HitRate)
			metrics.Default.Gauge(name + ".stale_rate").Set(row.StaleRate)
		}

	case "holes":
		res, err := experiments.RunHoles(w, 1, 10, *guids)
		if err != nil {
			return err
		}
		fmt.Println("# §III-B: IP-hole rehash statistics")
		fmt.Print(res)

	case "availability":
		fracs, err := parseFracs(*failFracs)
		if err != nil {
			return err
		}
		res, err := experiments.RunAvailability(w, experiments.AvailabilityConfig{
			Ks: []int{1, 3, 5}, FailFracs: fracs,
			NumGUIDs: *guids, NumLookups: *lookups,
			Timeout: topology.Micros(*timeoutMs) * 1000,
			Loss:    *loss, Retries: *retries,
			Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Availability under node failures: lookup success rate and added latency (§III-D3 failover)")
		fmt.Print(res)

	case "baselines":
		res, err := experiments.RunBaselines(w, experiments.BaselinesConfig{
			K: *k, NumGUIDs: *guids, NumLookups: *lookups,
			Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Println("# Ablation A4: DMap vs DHT and home-agent baselines")
		fmt.Print(res)

	case "ablation-selection":
		fmt.Println("# Ablation A1: replica selection policy (K=5)")
		for _, sel := range []struct {
			name string
			pol  core.SelectionPolicy
		}{{"lowest-RTT", core.SelectLowestRTT}, {"least-hops", core.SelectLeastHops}} {
			res, err := experiments.RunLatency(w, experiments.LatencyConfig{
				Ks: []int{*k}, NumGUIDs: *guids, NumLookups: *lookups,
				LocalReplica: true, Selection: sel.pol, Seed: *seed, Workers: *workers,
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n## %s\n", sel.name)
			fmt.Print(res)
		}

	case "ablation-local":
		fmt.Println("# Ablation A2: local replica on/off (K=5)")
		for _, local := range []bool{true, false} {
			res, err := experiments.RunLatency(w, experiments.LatencyConfig{
				Ks: []int{*k}, NumGUIDs: *guids, NumLookups: *lookups,
				LocalReplica: local, Seed: *seed, Workers: *workers,
			})
			if err != nil {
				return err
			}
			fmt.Printf("\n## local replica = %v\n", local)
			fmt.Print(res)
		}

	case "ablation-m":
		rows, err := experiments.RunMSweep(w, []int{1, 2, 4, 6, 10, 16}, *guids)
		if err != nil {
			return err
		}
		fmt.Println("# Ablation A3: rehash bound M")
		fmt.Printf("%-4s %14s %10s\n", "M", "fallbackRate", "NLR p99")
		for _, r := range rows {
			fmt.Printf("%-4d %13.4f%% %10.2f\n", r.M, 100*r.FallbackRate, r.NLRp99)
		}

	case "ablation-asnum":
		fmt.Println("# Ablation A5: hash-to-AS-number variant (K=5)")
		res, err := experiments.RunLatency(w, experiments.LatencyConfig{
			Ks: []int{*k}, NumGUIDs: *guids, NumLookups: *lookups,
			LocalReplica: true, HashToASNumbers: true, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		load, err := experiments.RunLoad(w, experiments.LoadConfig{
			GUIDCounts: []int{*guids}, K: *k, HashToASNumbers: true,
		})
		if err != nil {
			return err
		}
		fmt.Println("## load (NLR vs uniform share)")
		fmt.Print(load)

	case "ablation-k":
		fmt.Println("# Ablation A6: measured mean RTT vs K (cf. Figure 7)")
		ks := []int{1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20}
		res, err := experiments.RunLatency(w, experiments.LatencyConfig{
			Ks: ks, NumGUIDs: *guids, NumLookups: *lookups,
			LocalReplica: true, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			return err
		}
		fmt.Print(res)
		m, err := experiments.MeasuredJellyfishModel(w)
		if err != nil {
			return err
		}
		fmt.Println("\n## analytical bound on this generated topology")
		fmt.Printf("%-4s %12s\n", "K", "bound(ms)")
		for _, kk := range ks {
			v, err := m.ResponseTimeBoundMs(kk)
			if err != nil {
				return err
			}
			fmt.Printf("%-4d %12.1f\n", kk, v)
		}

	default:
		return fmt.Errorf("unknown experiment %q", *experiment)
	}
	printSnap()
	printTraces()

	fmt.Fprintf(os.Stderr, "total %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// parseFracs parses a comma-separated list of failure fractions.
// parseGossipMs parses the -gossip-ms list into simulated-time
// intervals (the sim clock ticks in microseconds).
func parseGossipMs(s string) ([]simnet.Time, error) {
	parts := strings.Split(s, ",")
	out := make([]simnet.Time, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		ms, err := strconv.Atoi(p)
		if err != nil || ms <= 0 {
			return nil, fmt.Errorf("bad gossip interval %q (want positive ms)", p)
		}
		out = append(out, simnet.Time(ms)*1000)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no gossip intervals in %q", s)
	}
	return out, nil
}

func parseFracs(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad failure fraction %q: %w", p, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no failure fractions in %q", s)
	}
	return out, nil
}
