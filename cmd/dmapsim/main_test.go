package main

import "testing"

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope", "-scale", "50"}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}

func TestRunFig7NoWorldNeeded(t *testing.T) {
	if err := run([]string{"-experiment", "fig7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOverhead(t *testing.T) {
	if err := run([]string{"-experiment", "overhead"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSmallWorldExperiments(t *testing.T) {
	// Exercise the world-building paths end to end at tiny scale.
	cases := [][]string{
		{"-experiment", "table1", "-scale", "300", "-guids", "200", "-lookups", "1000", "-cdf", "5", "-hist", "-metrics"},
		{"-experiment", "caching", "-scale", "300", "-guids", "100", "-lookups", "500", "-metrics"},
		{"-experiment", "holes", "-scale", "300", "-guids", "500"},
		{"-experiment", "update", "-scale", "300", "-guids", "300"},
		{"-experiment", "crossval", "-scale", "300", "-guids", "50", "-lookups", "100"},
		{"-experiment", "ablation-m", "-scale", "300", "-guids", "1000"},
	}
	for _, args := range cases {
		args := args
		t.Run(args[1], func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatalf("run(%v): %v", args, err)
			}
		})
	}
}
