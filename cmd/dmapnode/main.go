// Command dmapnode runs the networked DMap stack.
//
// Serve one mapping node (the per-AS role), optionally with a debug
// endpoint exposing live metrics (counters, p50/p95/p99 latency
// histograms) and pprof:
//
//	dmapnode serve -addr :4500 -debug-addr :6060
//	curl :6060/debug/metrics            # text
//	curl ':6060/debug/metrics?format=json'
//	go tool pprof http://:6060/debug/pprof/profile
//
// Or run a self-contained demo cluster: n nodes on loopback, a shared
// synthetic prefix table, inserts and lookups through the real TCP path:
//
//	dmapnode demo -nodes 8 -k 3 -objects 100 -metrics
//
// Watch a whole cluster: scrape every node's metrics into one merged
// view and black-box probe the serving addresses with sentinel GUIDs:
//
//	dmapnode fleet -scrape a=:6060,b=:6061 -probe a=:4500,b=:4501
//	dmapnode fleet -scrape a=:6060 -listen :7070   # serves /fleet
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
	"dmap/internal/obs"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
	"dmap/internal/trace"
)

// startDebugServer serves reg on /debug/metrics, the tracer on
// /debug/traces, the hot-GUID trackers on /debug/hotkeys and the pprof
// suite on addr, returning the bound address and a shutdown func. tr
// and hot may be nil (the handlers answer with an "off" notice).
func startDebugServer(addr string, reg *metrics.Registry, tr *trace.Tracer, hot *trace.HotKeys) (string, func() error, error) {
	mux := http.NewServeMux()
	mux.Handle("/debug/metrics", metrics.Handler(reg))
	mux.Handle("/debug/traces", trace.TracesHandler(tr))
	mux.Handle("/debug/hotkeys", trace.HotKeysHandler(hot))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dmapnode serve|demo|fleet [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "demo":
		err = demo(os.Args[2:])
	case "fleet":
		err = fleet(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmapnode:", err)
		os.Exit(1)
	}
}

// splitPeers parses the -gossip-peers list, dropping empty elements so
// trailing commas don't become dial targets.
func splitPeers(s string) []string {
	var peers []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peers = append(peers, p)
		}
	}
	return peers
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", ":4500", "listen address")
	debugAddr := fs.String("debug-addr", "", "debug HTTP address serving /debug/metrics, /debug/traces, /debug/hotkeys and /debug/pprof (empty = off)")
	logLevel := fs.String("log-level", "warn", "minimum log level: debug, info, warn, error or off")
	traceSample := fs.Int("trace-sample", 0, "join 1 in N traced requests into /debug/traces (0 = tracing off)")
	slowOpMs := fs.Int("slow-op-ms", 0, "log any request slower than this many milliseconds (0 = off)")
	hotKeys := fs.Int("hotkeys", 32, "track the hottest N GUIDs per class at /debug/hotkeys (0 = off)")
	dataDir := fs.String("data-dir", "", "durable store directory: WAL + snapshots, recovered on restart (empty = memory-only)")
	fsyncMode := fs.String("fsync", "os", "WAL flush policy: os (write-only, survives process crash), always (fsync per record), interval (periodic fsync)")
	shards := fs.Int("shards", 0, "store shard count, power of two (0 = default; must match an existing -data-dir)")
	snapshotMB := fs.Int("snapshot-mb", 0, "per-shard WAL growth in MiB before a background snapshot truncates it (0 = default 4, negative = disabled)")
	maxInflight := fs.Int("max-inflight", 0, "shed requests beyond this many in flight node-wide (0 = unbounded)")
	maxConnInflight := fs.Int("max-conn-inflight", 0, "shed requests beyond this many in flight per connection (0 = unbounded)")
	gossipPeers := fs.String("gossip-peers", "", "comma-separated replica addresses for background anti-entropy repair (empty = off)")
	gossipInterval := fs.Duration("gossip-interval", time.Second, "pause between anti-entropy sweeps (one peer per tick)")
	gossipRate := fs.Int("gossip-rate", 0, "cap repaired entries per second during a sweep (0 = unlimited)")
	gossipBatch := fs.Int("gossip-batch", 0, "digests per repair page (0 = wire maximum)")
	runtimeMetrics := fs.Bool("runtime-metrics", true, "bridge Go runtime telemetry (heap, goroutines, GC pauses, scheduler latency) into /debug/metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := trace.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	fsync, err := store.ParseFsyncMode(*fsyncMode)
	if err != nil {
		return err
	}
	var tracer *trace.Tracer
	if *traceSample > 0 || *slowOpMs > 0 {
		tracer = trace.New(trace.Config{
			Sample: *traceSample,
			SlowOp: time.Duration(*slowOpMs) * time.Millisecond,
		})
	}
	var hot *trace.HotKeys
	if *hotKeys > 0 {
		hot = trace.NewHotKeys(*hotKeys)
	}
	node, err := server.Open(server.Options{
		Logger:          trace.NewLogger(os.Stderr, level),
		Tracer:          tracer,
		HotKeys:         hot,
		DataDir:         *dataDir,
		Fsync:           fsync,
		Shards:          *shards,
		SnapshotBytes:   int64(*snapshotMB) << 20,
		MaxInflight:     *maxInflight,
		MaxConnInflight: *maxConnInflight,
		Gossip: server.GossipOptions{
			Peers:    splitPeers(*gossipPeers),
			Interval: *gossipInterval,
			Rate:     *gossipRate,
			Batch:    *gossipBatch,
		},
	})
	if err != nil {
		return err
	}
	if *runtimeMetrics {
		obs.RegisterRuntime(node.Metrics())
	}
	bound, err := node.Start(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("mapping node listening on %s\n", bound)
	if *dataDir != "" {
		rec := node.Store().Recovery()
		fmt.Printf("recovered %d mappings from %s (%d snapshot entries, %d WAL records replayed, %d torn bytes discarded) in %v\n",
			node.Store().Len(), *dataDir, rec.SnapshotEntries, rec.ReplayedRecords, rec.TornBytes, rec.Elapsed.Round(time.Millisecond))
	}
	if *debugAddr != "" {
		dbgBound, stop, err := startDebugServer(*debugAddr, node.Metrics(), tracer, hot)
		if err != nil {
			node.Close()
			return err
		}
		defer stop()
		fmt.Printf("debug endpoint on http://%s/debug/metrics\n", dbgBound)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	return node.Close()
}

func demo(args []string) error {
	fs := flag.NewFlagSet("demo", flag.ContinueOnError)
	var (
		nodes       = fs.Int("nodes", 8, "number of mapping nodes (ASs)")
		k           = fs.Int("k", 3, "replication factor")
		objects     = fs.Int("objects", 100, "objects to insert and look up")
		seed        = fs.Int64("seed", 1, "prefix table seed")
		batch       = fs.Int("batch", 1, "ops per wire frame: > 1 uses the v2 batched InsertBatch/LookupBatch path")
		v1          = fs.Bool("v1", false, "force the sequential v1 wire protocol (no multiplexing, no batching upgrade)")
		showMetrics = fs.Bool("metrics", false, "print client and server metrics snapshots after the run")
		traceSample = fs.Int("trace-sample", 0, "sample 1 in N client ops into a trace and print the last span tree (0 = off)")
		slowOpMs    = fs.Int("slow-op-ms", 0, "record ops slower than this many milliseconds in the slow-op log (0 = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *nodes < 2 || *k < 1 || *objects < 1 {
		return fmt.Errorf("need nodes >= 2, k >= 1, objects >= 1")
	}

	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             *nodes,
		NumPrefixes:       *nodes * 16,
		AnnouncedFraction: 0.52,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	resolver, err := core.NewResolver(guid.MustHasher(*k, 0), tbl, 0)
	if err != nil {
		return err
	}

	slowOp := time.Duration(*slowOpMs) * time.Millisecond
	var tracer *trace.Tracer
	if *traceSample > 0 || slowOp > 0 {
		tracer = trace.New(trace.Config{Sample: *traceSample, SlowOp: slowOp, Seed: uint64(*seed)})
	}

	srvs := make([]*server.Node, *nodes)
	addrs := make(map[int]string, *nodes)
	for as := range srvs {
		var opts server.Options
		if tracer != nil {
			// Server-side tracers join whatever sampled contexts arrive;
			// their own sampler is never consulted for joined spans.
			opts.Tracer = trace.New(trace.Config{SlowOp: slowOp, Seed: uint64(*seed)})
			opts.HotKeys = trace.NewHotKeys(16)
		}
		srvs[as] = server.NewWithOptions(nil, opts)
		bound, err := srvs[as].Start("127.0.0.1:0")
		if err != nil {
			return err
		}
		addrs[as] = bound
		defer srvs[as].Close()
	}
	fmt.Printf("started %d mapping nodes, K=%d, %d prefixes (%.0f%% of space announced)\n",
		*nodes, *k, tbl.Len(), 100*tbl.AnnouncedFraction())

	c, err := client.NewWithConfig(resolver, addrs, client.Config{ForceV1: *v1, Tracer: tracer})
	if err != nil {
		return err
	}
	defer c.Close()

	entries := make([]store.Entry, *objects)
	for i := range entries {
		entries[i] = store.Entry{
			GUID:    guid.New(fmt.Sprintf("object-%d", i)),
			NAs:     []store.NA{{AS: i % *nodes, Addr: netaddr.AddrFromOctets(10, 0, byte(i>>8), byte(i))}},
			Version: 1,
		}
	}

	start := time.Now()
	if *batch > 1 {
		acks, err := c.InsertBatch(entries)
		if err != nil {
			return fmt.Errorf("batch insert: %w", err)
		}
		for i, n := range acks {
			if n == 0 {
				return fmt.Errorf("insert %d: no replica stored it", i)
			}
		}
	} else {
		for i, e := range entries {
			if _, err := c.Insert(e); err != nil {
				return fmt.Errorf("insert %d: %w", i, err)
			}
		}
	}
	insertDur := time.Since(start)

	start = time.Now()
	if *batch > 1 {
		gs := make([]guid.GUID, *objects)
		for i := range gs {
			gs[i] = entries[i].GUID
		}
		got, found, err := c.LookupBatch(gs)
		if err != nil {
			return fmt.Errorf("batch lookup: %w", err)
		}
		for i := range gs {
			if !found[i] {
				return fmt.Errorf("object %d not found", i)
			}
			if want := i % *nodes; got[i].NAs[0].AS != want {
				return fmt.Errorf("object %d resolved to AS %d, want %d", i, got[i].NAs[0].AS, want)
			}
		}
	} else {
		for i := 0; i < *objects; i++ {
			e, err := c.Lookup(entries[i].GUID)
			if err != nil {
				return fmt.Errorf("lookup %d: %w", i, err)
			}
			if want := i % *nodes; e.NAs[0].AS != want {
				return fmt.Errorf("object %d resolved to AS %d, want %d", i, e.NAs[0].AS, want)
			}
		}
	}
	lookupDur := time.Since(start)

	fmt.Printf("%d inserts in %v (%.0f/s), %d lookups in %v (%.0f/s)\n",
		*objects, insertDur.Round(time.Millisecond), float64(*objects)/insertDur.Seconds(),
		*objects, lookupDur.Round(time.Millisecond), float64(*objects)/lookupDur.Seconds())

	fmt.Println("\nper-node load (mappings hosted):")
	for as, s := range srvs {
		st := s.Stats()
		fmt.Printf("  AS %2d @ %s: %4d mappings, %d lookups served (%d hits)\n",
			as, addrs[as], s.Store().Len(), st.Lookups, st.Hits)
	}
	if *showMetrics {
		fmt.Println("\n# client metrics")
		if err := c.Metrics().Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println("\n# AS 0 server metrics")
		if err := srvs[0].Metrics().Snapshot().WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if tracer != nil {
		st := tracer.Stats()
		fmt.Printf("\n# tracing: %d ops, %d sampled, %d slow\n", st.Ops, st.Sampled, st.SlowOps)
		if tvs := tracer.Traces(); len(tvs) > 0 {
			fmt.Println("last sampled client trace:")
			fmt.Print(tvs[len(tvs)-1].Tree(true))
		}
		joined := 0
		for _, s := range srvs {
			joined += len(s.Tracer().Traces())
		}
		fmt.Printf("server-side spans joined across nodes: %d\n", joined)
	}
	return nil
}
