package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"dmap/internal/metrics"
	"dmap/internal/obs"
)

// fleet aggregates a cluster: it scrapes every node's /debug/metrics
// endpoint into one merged view (exact global histograms, per-node rate
// windows, skew outliers) and black-box probes the serving addresses
// with sentinel writes/reads, tracking availability and staleness SLO
// burn. One round prints a table (or JSON); -listen serves the latest
// view on /fleet and the anomaly flight recorder on /fleet/flight.
func fleet(args []string) error {
	return fleetMain(args, os.Stdout, nil, nil)
}

// fleetMain is fleet with its wiring exposed for tests: out receives
// round output, stop ends the loop, ready (if non-nil) gets the bound
// -listen address once serving.
func fleetMain(args []string, out io.Writer, stop <-chan struct{}, ready func(addr string)) error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	scrape := fs.String("scrape", "", "comma-separated name=url list of node /debug/metrics endpoints to aggregate")
	probe := fs.String("probe", "", "comma-separated name=addr list of node serving addresses to black-box probe")
	interval := fs.Duration("interval", 5*time.Second, "pause between fleet rounds")
	once := fs.Bool("once", false, "run a single round, print it and exit")
	jsonOut := fs.Bool("json", false, "print rounds as JSON instead of a table")
	listen := fs.String("listen", "", "HTTP address serving /fleet and /fleet/flight (empty = off)")
	sentinels := fs.Int("sentinels", 3, "sentinel GUIDs written and read per probe round")
	maxLag := fs.Uint64("max-lag", 0, "acceptable version lag before a read counts as stale")
	objective := fs.Float64("objective", 0.999, "SLO objective for availability and staleness")
	flight := fs.Int("flight", 16, "flight recorder ring size in rounds (0 = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources, err := parseNamed(*scrape, "scrape")
	if err != nil {
		return err
	}
	targets, err := parseNamed(*probe, "probe")
	if err != nil {
		return err
	}
	if len(sources) == 0 && len(targets) == 0 {
		return fmt.Errorf("fleet needs -scrape and/or -probe endpoints")
	}

	var collector *obs.Collector
	if len(sources) > 0 {
		cfg := obs.CollectorConfig{}
		for _, s := range sources {
			url := s[1]
			if !strings.Contains(url, "://") {
				url = "http://" + url + "/debug/metrics"
			}
			cfg.Sources = append(cfg.Sources, obs.Source{Name: s[0], URL: url})
		}
		collector = obs.NewCollector(cfg)
	}
	var prober *obs.Prober
	if len(targets) > 0 {
		cfg := obs.ProberConfig{
			Sentinels:    *sentinels,
			MaxLag:       *maxLag,
			Availability: obs.SLOConfig{Objective: *objective},
			Staleness:    obs.SLOConfig{Objective: *objective},
			Registry:     metrics.NewRegistry(),
		}
		for _, t := range targets {
			cfg.Targets = append(cfg.Targets, obs.ProbeTarget{Name: t[0], Addr: t[1]})
		}
		prober = obs.NewProber(cfg)
		defer prober.Close()
	}
	var rec *obs.FlightRecorder
	if *flight > 0 {
		rec = obs.NewFlightRecorder(*flight)
	}

	var mu sync.Mutex
	var latest obs.FleetView
	var haveView bool
	round := func() obs.FleetView {
		var v obs.FleetView
		if collector != nil {
			v = collector.Collect()
		} else {
			v.When = time.Now()
		}
		if prober != nil {
			st := prober.Round()
			v.Probe = &st
		}
		if rec != nil {
			rec.Note(v)
			for _, reason := range flightReasons(v) {
				rec.Trigger(reason, v.When)
			}
		}
		mu.Lock()
		latest, haveView = v, true
		mu.Unlock()
		return v
	}
	print := func(v obs.FleetView) error {
		if *jsonOut {
			b, err := v.JSON()
			if err != nil {
				return err
			}
			_, err = fmt.Fprintf(out, "%s\n", b)
			return err
		}
		return v.WriteTable(out)
	}

	if err := print(round()); err != nil {
		return err
	}
	if *once {
		return nil
	}

	if *listen != "" {
		mux := http.NewServeMux()
		mux.Handle("/fleet", obs.FleetHandler(func() (obs.FleetView, bool) {
			mu.Lock()
			defer mu.Unlock()
			return latest, haveView
		}))
		mux.Handle("/fleet/flight", obs.FlightHandler(rec))
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			return fmt.Errorf("fleet listen %s: %w", *listen, err)
		}
		srv := &http.Server{Handler: mux}
		go srv.Serve(ln)
		defer srv.Close()
		fmt.Fprintf(out, "fleet endpoint on http://%s/fleet\n", ln.Addr())
		if ready != nil {
			ready(ln.Addr().String())
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			v := round()
			// In serving mode the view lives at /fleet; don't also spam
			// stdout with a table every interval.
			if *listen == "" {
				if err := print(v); err != nil {
					return err
				}
			}
		case <-sig:
			return nil
		case <-stop:
			return nil
		}
	}
}

// parseNamed parses a "name=value,name=value" flag list.
func parseNamed(list, kind string) ([][2]string, error) {
	var out [][2]string
	for _, item := range strings.Split(list, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		name, val, ok := strings.Cut(item, "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("-%s: %q is not name=value", kind, item)
		}
		out = append(out, [2]string{name, val})
	}
	return out, nil
}

// flightReasons lists the anomalies in v that should freeze the flight
// recorder: an SLO burn breach, any stale replica, or a shed-rate
// outlier (one node load-shedding far above the fleet median).
func flightReasons(v obs.FleetView) []string {
	var rs []string
	if v.Probe != nil {
		if v.Probe.Breaching() {
			rs = append(rs, "slo-breach")
		}
		for _, t := range v.Probe.Targets {
			if t.Stale {
				rs = append(rs, "staleness:"+t.Name)
			}
		}
	}
	for _, o := range v.Outliers {
		if strings.Contains(o.Metric, "sheds") {
			rs = append(rs, "shed-spike:"+o.Node)
		}
	}
	return rs
}
