package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmap/internal/metrics"
	"dmap/internal/obs"
	"dmap/internal/server"
)

// fleetCluster starts n live mapping nodes with debug metric servers,
// returning the -scrape and -probe flag values addressing them.
func fleetCluster(t *testing.T, n int) (scrape, probe string) {
	t.Helper()
	var scrapes, probes []string
	for i := 0; i < n; i++ {
		node := server.New(nil, nil)
		addr, err := node.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		dbg := httptest.NewServer(metrics.Handler(node.Metrics()))
		t.Cleanup(dbg.Close)
		scrapes = append(scrapes, fmt.Sprintf("n%d=%s", i, dbg.URL))
		probes = append(probes, fmt.Sprintf("n%d=%s", i, addr))
	}
	return strings.Join(scrapes, ","), strings.Join(probes, ",")
}

func TestFleetOnceJSON(t *testing.T) {
	scrape, probe := fleetCluster(t, 2)
	var out bytes.Buffer
	err := fleetMain([]string{"-scrape", scrape, "-probe", probe, "-once", "-json"}, &out, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var v obs.FleetView
	if err := json.Unmarshal(out.Bytes(), &v); err != nil {
		t.Fatalf("output is not a FleetView: %v\n%s", err, out.String())
	}
	if v.NodesUp != 2 {
		t.Fatalf("nodes up = %d, want 2: %+v", v.NodesUp, v.Nodes)
	}
	if v.Probe == nil || v.Probe.Rounds != 1 {
		t.Fatalf("probe status missing or wrong: %+v", v.Probe)
	}
	for _, ts := range v.Probe.Targets {
		if !ts.WriteOK || !ts.ReadOK {
			t.Errorf("healthy target failed probes: %+v", ts)
		}
	}
	// The sentinel writes the probe made must be visible in the scraped
	// metrics on a second round.
	out.Reset()
	if err := fleetMain([]string{"-scrape", scrape, "-once", "-json"}, &out, nil, nil); err != nil {
		t.Fatal(err)
	}
	var v2 obs.FleetView
	if err := json.Unmarshal(out.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if got := v2.Cluster.Counters["server.inserts"]; got < 3 {
		t.Errorf("cluster inserts = %d, want >= 3 sentinel writes per node", got)
	}
}

func TestFleetOnceTable(t *testing.T) {
	scrape, _ := fleetCluster(t, 2)
	var out bytes.Buffer
	if err := fleetMain([]string{"-scrape", scrape, "-once"}, &out, nil, nil); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"node", "n0", "n1", "nodes up 2/2"} {
		if !strings.Contains(text, want) {
			t.Errorf("table missing %q:\n%s", want, text)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"-scrape", "noequals"},
		{"-probe", "=bare"},
		{"-bogus"},
	} {
		if err := fleetMain(args, io.Discard, nil, nil); err == nil {
			t.Errorf("fleet(%v) should fail", args)
		}
	}
}

// syncBuffer guards the output buffer: the fleet loop writes from its
// own goroutine while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func TestFleetServesHTTP(t *testing.T) {
	scrape, probe := fleetCluster(t, 2)
	stop := make(chan struct{})
	bound := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- fleetMain(
			[]string{"-scrape", scrape, "-probe", probe, "-listen", "127.0.0.1:0", "-interval", "10ms"},
			&syncBuffer{}, stop, func(addr string) { bound <- addr },
		)
	}()
	var addr string
	select {
	case addr = <-bound:
	case err := <-errc:
		t.Fatalf("fleet exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("fleet never bound its listener")
	}

	resp, err := http.Get("http://" + addr + "/fleet?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type = %q", ct)
	}
	var v obs.FleetView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.NodesUp != 2 || v.Probe == nil {
		t.Fatalf("served view wrong: up=%d probe=%v", v.NodesUp, v.Probe)
	}

	resp2, err := http.Get("http://" + addr + "/fleet/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("flight endpoint status %d", resp2.StatusCode)
	}

	close(stop)
	if err := <-errc; err != nil {
		t.Fatalf("fleet returned error: %v", err)
	}
}

func TestFlightReasons(t *testing.T) {
	v := obs.FleetView{
		Outliers: []obs.Outlier{
			{Node: "n3", Metric: "rate:server.sheds_global", Value: 100, Median: 1},
			{Node: "n1", Metric: "rate:server.lookups", Value: 50, Median: 10},
		},
		Probe: &obs.ProbeStatus{
			SLOs:    []obs.SLOStatus{{Name: "availability", Breaching: true}},
			Targets: []obs.ProbeTargetStatus{{Name: "n2", Stale: true}},
		},
	}
	got := flightReasons(v)
	want := []string{"slo-breach", "staleness:n2", "shed-spike:n3"}
	if len(got) != len(want) {
		t.Fatalf("reasons = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("reason[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if rs := flightReasons(obs.FleetView{}); rs != nil {
		t.Errorf("healthy view has reasons: %v", rs)
	}
}

func TestParseNamed(t *testing.T) {
	got, err := parseNamed(" a=1, b=2,,", "scrape")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != [2]string{"a", "1"} || got[1] != [2]string{"b", "2"} {
		t.Fatalf("parseNamed = %v", got)
	}
	if out, err := parseNamed("", "scrape"); err != nil || out != nil {
		t.Errorf("empty list should parse to nil, got %v, %v", out, err)
	}
}
