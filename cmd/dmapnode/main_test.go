package main

import "testing"

func TestDemoRoundTrip(t *testing.T) {
	if err := demo([]string{"-nodes", "4", "-k", "2", "-objects", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestDemoValidation(t *testing.T) {
	cases := [][]string{
		{"-nodes", "1"},
		{"-k", "0"},
		{"-objects", "0"},
	}
	for _, args := range cases {
		if err := demo(args); err == nil {
			t.Errorf("demo(%v) should fail", args)
		}
	}
	if err := demo([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}
