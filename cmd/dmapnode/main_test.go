package main

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
)

func TestDemoRoundTrip(t *testing.T) {
	if err := demo([]string{"-nodes", "4", "-k", "2", "-objects", "20", "-metrics"}); err != nil {
		t.Fatal(err)
	}
}

func TestDemoValidation(t *testing.T) {
	cases := [][]string{
		{"-nodes", "1"},
		{"-k", "0"},
		{"-objects", "0"},
	}
	for _, args := range cases {
		if err := demo(args); err == nil {
			t.Errorf("demo(%v) should fail", args)
		}
	}
	if err := demo([]string{"-bogus"}); err == nil {
		t.Error("bad flag should fail")
	}
}

// TestDebugMetricsEndpoint drives a live mapping node over real TCP and
// then scrapes /debug/metrics, checking that the served text exposes
// the per-op counters and latency quantiles.
func TestDebugMetricsEndpoint(t *testing.T) {
	node := server.New(nil, nil)
	addr, err := node.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	dbgAddr, stop, err := startDebugServer("127.0.0.1:0", node.Metrics(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// One insert + two lookups through the real wire path.
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(resolver, map[int]string{0: addr}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	e := store.Entry{
		GUID:    guid.New("debug-metrics"),
		NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: 1,
	}
	if _, err := cl.Insert(e); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := cl.Lookup(e.GUID); err != nil {
			t.Fatal(err)
		}
	}

	resp, err := http.Get("http://" + dbgAddr + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"counter server.inserts 1",
		"counter server.lookups 2",
		"counter server.hits 2",
		"hist server.op.lookup_us count=2",
		"p50=", "p95=", "p99=", "p999=",
		"gauge store.size 1",
		"counter server.sheds_conn 0",
		"counter server.sheds_global 0",
		"gauge server.inflight 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/debug/metrics missing %q in:\n%s", want, text)
		}
	}

	// JSON view decodes into a snapshot with the same counters.
	resp2, err := http.Get("http://" + dbgAddr + "/debug/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap metrics.Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["server.lookups"] != 2 {
		t.Errorf("json server.lookups = %d, want 2", snap.Counters["server.lookups"])
	}
	if h := snap.Histograms["server.op.lookup_us"]; h.Count != 2 || h.Quantile(95) <= 0 {
		t.Errorf("json lookup histogram wrong: %+v", h)
	}
}
