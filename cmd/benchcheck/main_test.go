package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkJSON(t *testing.T, body string) error {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return checkFile(path)
}

func TestCheckFileClassicRecords(t *testing.T) {
	good := `[
  {"date": "20260807", "name": "BenchmarkHashGUID", "ns_per_op": 12.5, "bytes_per_op": 0, "allocs_per_op": 0},
  {"date": "20260807", "name": "BenchmarkLPMLookup", "ns_per_op": 40, "bytes_per_op": null, "allocs_per_op": null}
]`
	if err := checkJSON(t, good); err != nil {
		t.Errorf("valid classic records rejected: %v", err)
	}
	for name, body := range map[string]string{
		"missing ns_per_op": `[{"date": "20260807", "name": "x", "bytes_per_op": 0, "allocs_per_op": 0}]`,
		"missing date":      `[{"name": "x", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0}]`,
		"unknown field":     `[{"date": "20260807", "name": "x", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0, "bogus": 1}]`,
		"not an array":      `{"date": "20260807"}`,
		"trailing data":     "[]\n[]",
	} {
		if err := checkJSON(t, body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCheckFileLoadRecords(t *testing.T) {
	good := `[
  {"date": "20260807", "name": "load.point", "ns_per_op": 812000, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 50000, "completed_rps": 49500, "p50_us": 120, "p99_us": 812, "p999_us": 2400, "shed_rps": 0},
  {"date": "20260807", "name": "load.knee", "ns_per_op": 812000, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "knee", "offered_rps": 50000, "completed_rps": 49500, "p50_us": 120, "p99_us": 812, "p999_us": 2400, "shed_rps": 0},
  {"date": "20260807", "name": "load.overload", "ns_per_op": 9e6, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "overload", "offered_rps": 150000, "completed_rps": 48000, "p50_us": 4000, "p99_us": 9000, "p999_us": 15000, "shed_rps": 2000}
]`
	if err := checkJSON(t, good); err != nil {
		t.Errorf("valid load records rejected: %v", err)
	}

	row := func(mutation string) string {
		base := `{"date": "20260807", "name": "load.point", "ns_per_op": 812000, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 50000, "completed_rps": 49500, "p50_us": 120, "p99_us": 812, "p999_us": 2400, "shed_rps": 0}`
		return "[\n  " + strings.NewReplacer(mutation, "").Replace(base) + "\n]"
	}
	cases := map[string]string{
		// Dropping a required extension field must fail once any other
		// extension field marks the row as a load record.
		"missing offered_rps":   `"offered_rps": 50000, `,
		"missing completed_rps": `"completed_rps": 49500, `,
		"missing shed_rps":      `, "shed_rps": 0`,
		"missing p999_us":       `"p999_us": 2400, `,
		"missing kind":          `"kind": "point", `,
	}
	for name, cut := range cases {
		if err := checkJSON(t, row(cut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	bad := map[string]string{
		"unknown kind": `[{"date": "20260807", "name": "load.point", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "spike", "offered_rps": 1, "completed_rps": 1, "p50_us": 1, "p99_us": 1, "p999_us": 1, "shed_rps": 0}]`,
		"zero offered_rps": `[{"date": "20260807", "name": "load.point", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 0, "completed_rps": 1, "p50_us": 1, "p99_us": 1, "p999_us": 1, "shed_rps": 0}]`,
		"negative shed_rps": `[{"date": "20260807", "name": "load.point", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 1, "completed_rps": 1, "p50_us": 1, "p99_us": 1, "p999_us": 1, "shed_rps": -1}]`,
		"quantiles out of order": `[{"date": "20260807", "name": "load.point", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 1, "completed_rps": 1, "p50_us": 9, "p99_us": 1, "p999_us": 1, "shed_rps": 0}]`,
	}
	for name, body := range bad {
		if err := checkJSON(t, body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCheckFileHealRecords(t *testing.T) {
	good := `[
  {"date": "20260807", "name": "heal.cell", "ns_per_op": 3.498e8, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 100, "convergence_ms": 349.8, "entries_repaired": 82, "stale_rate": 0.705},
  {"date": "20260807", "name": "heal.cell", "ns_per_op": 1.2498e9, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 1000, "convergence_ms": 1249.8, "entries_repaired": 82, "stale_rate": 0.705}
]`
	if err := checkJSON(t, good); err != nil {
		t.Errorf("valid heal records rejected: %v", err)
	}

	row := func(mutation string) string {
		base := `{"date": "20260807", "name": "heal.cell", "ns_per_op": 3.498e8, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 100, "convergence_ms": 349.8, "entries_repaired": 82, "stale_rate": 0.705}`
		return "[\n  " + strings.NewReplacer(mutation, "").Replace(base) + "\n]"
	}
	for name, cut := range map[string]string{
		// As with load rows, heal extension fields are all-or-nothing.
		"missing gossip_interval_ms": `"gossip_interval_ms": 100, `,
		"missing convergence_ms":     `"convergence_ms": 349.8, `,
		"missing entries_repaired":   `"entries_repaired": 82, `,
		"missing stale_rate":         `, "stale_rate": 0.705`,
		"missing kind":               `"kind": "heal", `,
	} {
		if err := checkJSON(t, row(cut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	bad := map[string]string{
		"zero interval": `[{"date": "20260807", "name": "heal.cell", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 0, "convergence_ms": 1, "entries_repaired": 1, "stale_rate": 0}]`,
		"convergence faster than one interval": `[{"date": "20260807", "name": "heal.cell", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 100, "convergence_ms": 50, "entries_repaired": 1, "stale_rate": 0}]`,
		"fractional repair count": `[{"date": "20260807", "name": "heal.cell", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 100, "convergence_ms": 100, "entries_repaired": 1.5, "stale_rate": 0}]`,
		"stale_rate above one": `[{"date": "20260807", "name": "heal.cell", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 100, "convergence_ms": 100, "entries_repaired": 1, "stale_rate": 1.5}]`,
		"heal fields under a load kind": `[{"date": "20260807", "name": "heal.cell", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 1, "completed_rps": 1, "p50_us": 1, "p99_us": 1, "p999_us": 1, "shed_rps": 0, "stale_rate": 0.5}]`,
	}
	for name, body := range bad {
		if err := checkJSON(t, body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCheckFileFleetRecords(t *testing.T) {
	good := `[
  {"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 812000, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": 1.2, "probe_ops": 240, "probe_failures": 0, "merged_p99_us": 812},
  {"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 812000, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": -0.4, "probe_ops": 240, "probe_failures": 3, "merged_p99_us": 812}
]`
	if err := checkJSON(t, good); err != nil {
		t.Errorf("valid fleet records rejected: %v", err)
	}

	row := func(mutation string) string {
		base := `{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 812000, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": 1.2, "probe_ops": 240, "probe_failures": 0, "merged_p99_us": 812}`
		return "[\n  " + strings.NewReplacer(mutation, "").Replace(base) + "\n]"
	}
	for name, cut := range map[string]string{
		// Fleet extension fields are all-or-nothing, like load and heal.
		"missing scrape_overhead_pct": `"scrape_overhead_pct": 1.2, `,
		"missing probe_ops":           `"probe_ops": 240, `,
		"missing probe_failures":      `"probe_failures": 0, `,
		"missing merged_p99_us":       `, "merged_p99_us": 812`,
		"missing kind":                `"kind": "fleet", `,
	} {
		if err := checkJSON(t, row(cut)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	bad := map[string]string{
		"fractional probe_ops": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": 1, "probe_ops": 1.5, "probe_failures": 0, "merged_p99_us": 1}]`,
		"zero probe_ops": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": 1, "probe_ops": 0, "probe_failures": 0, "merged_p99_us": 1}]`,
		"failures exceed ops": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": 1, "probe_ops": 10, "probe_failures": 11, "merged_p99_us": 1}]`,
		"negative merged_p99_us": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": 1, "probe_ops": 10, "probe_failures": 0, "merged_p99_us": -1}]`,
		"overhead below -100": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "fleet", "scrape_overhead_pct": -120, "probe_ops": 10, "probe_failures": 0, "merged_p99_us": 1}]`,
		"fleet fields under a load kind": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "point", "offered_rps": 1, "completed_rps": 1, "p50_us": 1, "p99_us": 1, "p999_us": 1, "shed_rps": 0, "probe_ops": 10}]`,
		"fleet fields under a heal kind": `[{"date": "20260807", "name": "fleet.telemetry", "ns_per_op": 1, "bytes_per_op": 0, "allocs_per_op": 0,
   "kind": "heal", "gossip_interval_ms": 100, "convergence_ms": 100, "entries_repaired": 1, "stale_rate": 0, "merged_p99_us": 1}]`,
	}
	for name, body := range bad {
		if err := checkJSON(t, body); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
