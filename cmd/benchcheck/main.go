// Command benchcheck validates benchmark record files: every file named
// on the command line (or every BENCH_*.json in the current directory
// when none is) must be a well-formed JSON array of benchmark records.
// scripts/bench.sh runs it after every append and CI runs it over the
// whole set, so a malformed emit fails the build the day it happens
// instead of corrupting the longitudinal record silently.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// record is one benchmark measurement row. NsPerOp is required;
// BytesPerOp and AllocsPerOp are null for benchmarks run without
// -benchmem (and zero for derived rows like speedups).
type record struct {
	Date        string   `json:"date"`
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var records []record
	if err := dec.Decode(&records); err != nil {
		return fmt.Errorf("not a valid benchmark record array: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the record array")
	}
	for i, r := range records {
		if r.Date == "" {
			return fmt.Errorf("record %d: missing date", i)
		}
		if r.Name == "" {
			return fmt.Errorf("record %d: missing name", i)
		}
		if r.NsPerOp == nil {
			return fmt.Errorf("record %d (%s): missing ns_per_op", i, r.Name)
		}
	}
	fmt.Printf("%s: %d records ok\n", path, len(records))
	return nil
}

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	}
	if len(files) == 0 {
		fmt.Println("benchcheck: no BENCH_*.json files to validate")
		return
	}
	failed := false
	for _, f := range files {
		if err := checkFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", f, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
