// Command benchcheck validates benchmark record files: every file named
// on the command line (or every BENCH_*.json in the current directory
// when none is) must be a well-formed JSON array of benchmark records.
// scripts/bench.sh runs it after every append and CI runs it over the
// whole set, so a malformed emit fails the build the day it happens
// instead of corrupting the longitudinal record silently.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// record is one benchmark measurement row. NsPerOp is required;
// BytesPerOp and AllocsPerOp are null for benchmarks run without
// -benchmem (and zero for derived rows like speedups).
//
// Load-sweep rows (scripts/bench.sh load) carry the kind field plus
// offered/completed rates, latency quantiles and a shed rate; for them
// ns_per_op is the point's p99 in nanoseconds. Partition-heal rows
// (scripts/bench.sh heal) carry kind "heal" plus the gossip interval,
// convergence time, repaired-entry count and post-heal stale-read rate;
// for them ns_per_op is the convergence time in nanoseconds. Fleet rows
// (scripts/bench.sh fleet) carry kind "fleet" plus the foreground
// scrape overhead percentage, probe op/failure counts and the merged
// cluster p99; for them ns_per_op is the merged p99 in nanoseconds.
// Each extension is validated as a unit: a row has none of its fields
// or a complete, internally consistent record, and never fields from
// two families.
type record struct {
	Date        string   `json:"date"`
	Name        string   `json:"name"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`

	Kind         string   `json:"kind,omitempty"`
	OfferedRPS   *float64 `json:"offered_rps,omitempty"`
	CompletedRPS *float64 `json:"completed_rps,omitempty"`
	P50us        *float64 `json:"p50_us,omitempty"`
	P99us        *float64 `json:"p99_us,omitempty"`
	P999us       *float64 `json:"p999_us,omitempty"`
	ShedRPS      *float64 `json:"shed_rps,omitempty"`

	GossipIntervalMs *float64 `json:"gossip_interval_ms,omitempty"`
	ConvergenceMs    *float64 `json:"convergence_ms,omitempty"`
	EntriesRepaired  *float64 `json:"entries_repaired,omitempty"`
	StaleRate        *float64 `json:"stale_rate,omitempty"`

	ScrapeOverheadPct *float64 `json:"scrape_overhead_pct,omitempty"`
	ProbeOps          *float64 `json:"probe_ops,omitempty"`
	ProbeFailures     *float64 `json:"probe_failures,omitempty"`
	MergedP99us       *float64 `json:"merged_p99_us,omitempty"`
}

// isLoadRecord reports whether any load-sweep extension field is set.
func (r record) isLoadRecord() bool {
	return (r.Kind != "" && r.Kind != "heal" && r.Kind != "fleet") ||
		r.OfferedRPS != nil || r.CompletedRPS != nil || r.P50us != nil ||
		r.P99us != nil || r.P999us != nil || r.ShedRPS != nil
}

// isFleetRecord reports whether any fleet extension field is set.
func (r record) isFleetRecord() bool {
	return r.Kind == "fleet" || r.ScrapeOverheadPct != nil ||
		r.ProbeOps != nil || r.ProbeFailures != nil || r.MergedP99us != nil
}

// isHealRecord reports whether any partition-heal extension field is set.
func (r record) isHealRecord() bool {
	return r.Kind == "heal" || r.GossipIntervalMs != nil ||
		r.ConvergenceMs != nil || r.EntriesRepaired != nil || r.StaleRate != nil
}

// checkHealRecord validates one partition-heal row: every extension
// field present, a positive gossip interval, convergence no faster than
// one interval, a whole non-negative repair count and a stale rate that
// is a fraction.
func checkHealRecord(r record) error {
	if r.Kind != "heal" {
		return fmt.Errorf("heal fields present but kind is %q", r.Kind)
	}
	for name, f := range map[string]*float64{
		"gossip_interval_ms": r.GossipIntervalMs, "convergence_ms": r.ConvergenceMs,
		"entries_repaired": r.EntriesRepaired, "stale_rate": r.StaleRate,
	} {
		if f == nil {
			return fmt.Errorf("heal record missing %s", name)
		}
	}
	if *r.GossipIntervalMs <= 0 {
		return fmt.Errorf("gossip_interval_ms %g not positive", *r.GossipIntervalMs)
	}
	if *r.ConvergenceMs < *r.GossipIntervalMs {
		return fmt.Errorf("convergence_ms %g shorter than one gossip interval (%g ms)",
			*r.ConvergenceMs, *r.GossipIntervalMs)
	}
	if *r.EntriesRepaired < 0 || *r.EntriesRepaired != float64(int64(*r.EntriesRepaired)) {
		return fmt.Errorf("entries_repaired %g not a whole non-negative count", *r.EntriesRepaired)
	}
	if *r.StaleRate < 0 || *r.StaleRate > 1 {
		return fmt.Errorf("stale_rate %g outside [0, 1]", *r.StaleRate)
	}
	return nil
}

// checkFleetRecord validates one fleet row: every extension field
// present, whole non-negative probe counts with failures bounded by
// ops, and a non-negative merged p99. The overhead percentage may be
// slightly negative (benchmark noise) but never below -100.
func checkFleetRecord(r record) error {
	if r.Kind != "fleet" {
		return fmt.Errorf("fleet fields present but kind is %q", r.Kind)
	}
	for name, f := range map[string]*float64{
		"scrape_overhead_pct": r.ScrapeOverheadPct, "probe_ops": r.ProbeOps,
		"probe_failures": r.ProbeFailures, "merged_p99_us": r.MergedP99us,
	} {
		if f == nil {
			return fmt.Errorf("fleet record missing %s", name)
		}
	}
	if *r.ScrapeOverheadPct < -100 {
		return fmt.Errorf("scrape_overhead_pct %g below -100", *r.ScrapeOverheadPct)
	}
	if *r.ProbeOps <= 0 || *r.ProbeOps != float64(int64(*r.ProbeOps)) {
		return fmt.Errorf("probe_ops %g not a whole positive count", *r.ProbeOps)
	}
	if *r.ProbeFailures < 0 || *r.ProbeFailures != float64(int64(*r.ProbeFailures)) {
		return fmt.Errorf("probe_failures %g not a whole non-negative count", *r.ProbeFailures)
	}
	if *r.ProbeFailures > *r.ProbeOps {
		return fmt.Errorf("probe_failures %g exceeds probe_ops %g", *r.ProbeFailures, *r.ProbeOps)
	}
	if *r.MergedP99us < 0 {
		return fmt.Errorf("merged_p99_us %g negative", *r.MergedP99us)
	}
	return nil
}

// checkLoadRecord validates one load-sweep row: every extension field
// present, a known kind, positive offered load, non-negative goodput
// and shed rate, and ordered latency quantiles.
func checkLoadRecord(r record) error {
	switch r.Kind {
	case "point", "knee", "overload":
	case "":
		return fmt.Errorf("load fields present but kind missing")
	default:
		return fmt.Errorf("unknown load record kind %q", r.Kind)
	}
	for name, f := range map[string]*float64{
		"offered_rps": r.OfferedRPS, "completed_rps": r.CompletedRPS,
		"p50_us": r.P50us, "p99_us": r.P99us, "p999_us": r.P999us,
		"shed_rps": r.ShedRPS,
	} {
		if f == nil {
			return fmt.Errorf("load record missing %s", name)
		}
	}
	if *r.OfferedRPS <= 0 {
		return fmt.Errorf("offered_rps %g not positive", *r.OfferedRPS)
	}
	if *r.CompletedRPS < 0 {
		return fmt.Errorf("completed_rps %g negative", *r.CompletedRPS)
	}
	if *r.ShedRPS < 0 {
		return fmt.Errorf("shed_rps %g negative", *r.ShedRPS)
	}
	if *r.P50us < 0 || *r.P99us < *r.P50us || *r.P999us < *r.P99us {
		return fmt.Errorf("latency quantiles out of order: p50=%g p99=%g p999=%g",
			*r.P50us, *r.P99us, *r.P999us)
	}
	return nil
}

func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var records []record
	if err := dec.Decode(&records); err != nil {
		return fmt.Errorf("not a valid benchmark record array: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("trailing data after the record array")
	}
	for i, r := range records {
		if r.Date == "" {
			return fmt.Errorf("record %d: missing date", i)
		}
		if r.Name == "" {
			return fmt.Errorf("record %d: missing name", i)
		}
		if r.NsPerOp == nil {
			return fmt.Errorf("record %d (%s): missing ns_per_op", i, r.Name)
		}
		families := 0
		for _, is := range []bool{r.isHealRecord(), r.isLoadRecord(), r.isFleetRecord()} {
			if is {
				families++
			}
		}
		switch {
		case families > 1:
			return fmt.Errorf("record %d (%s): mixes extension fields from more than one record family", i, r.Name)
		case r.isHealRecord():
			if err := checkHealRecord(r); err != nil {
				return fmt.Errorf("record %d (%s): %w", i, r.Name, err)
			}
		case r.isLoadRecord():
			if err := checkLoadRecord(r); err != nil {
				return fmt.Errorf("record %d (%s): %w", i, r.Name, err)
			}
		case r.isFleetRecord():
			if err := checkFleetRecord(r); err != nil {
				return fmt.Errorf("record %d (%s): %w", i, r.Name, err)
			}
		}
	}
	fmt.Printf("%s: %d records ok\n", path, len(records))
	return nil
}

func main() {
	files := os.Args[1:]
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(1)
		}
	}
	if len(files) == 0 {
		fmt.Println("benchcheck: no BENCH_*.json files to validate")
		return
	}
	failed := false
	for _, f := range files {
		if err := checkFile(f); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %s: %v\n", f, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
