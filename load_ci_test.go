// Open-loop load sweep: the CI gate for overload behavior.
//
// TestLoadSweepCI calibrates the goodput of a small admission-limited
// cluster with a closed-loop burst, then replays an ascending sweep of
// open-loop Poisson offered rates through internal/load and asserts the
// paper-shaped overload story holds end to end:
//
//   - a throughput knee exists (light offered rates are fully served,
//     the heaviest are not),
//   - past the knee the servers shed instead of queueing without bound,
//   - goodput under deep overload stays at a healthy fraction of the
//     knee goodput (shedding degrades gracefully, it does not collapse),
//   - the Zipf-skewed key popularity reaches the hot-GUID trackers.
//
// Each sweep point is emitted as a "LOADRECORD {json}" line that
// scripts/bench.sh load harvests into BENCH_<date>.json, where
// cmd/benchcheck validates the knee/overload record schema. Gated
// behind BENCH_LOAD=1: the sweep holds a node at saturation for
// seconds, which is a bench posture, not a unit-test one.
package dmap_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/load"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
	"dmap/internal/trace"
)

// loadWorld starts numAS admission-limited nodes over a generated DFZ
// plus nClusters independent client stacks. Several clusters means
// several pooled mux conns per node, so the sweep exercises both the
// per-connection and the global admission limiters.
func loadWorld(t *testing.T, numAS, nClusters, nKeys int, opts server.Options) ([]*client.Cluster, []*server.Node, []guid.GUID) {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             numAS,
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.NewWithOptions(nil, opts)
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[as] = n
		addrs[as] = addr
		t.Cleanup(func() { n.Close() })
	}
	clusters := make([]*client.Cluster, nClusters)
	for i := range clusters {
		resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.NewWithConfig(resolver, addrs, client.Config{
			Timeout:    time.Second,
			OpDeadline: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clusters[i] = c
	}
	keys := make([]guid.GUID, nKeys)
	for i := range keys {
		keys[i] = guid.New(fmt.Sprintf("sweep-key-%d", i))
		e := store.Entry{
			GUID:    keys[i],
			NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(192, 0, 2, byte(i%250+1))}},
			Version: 1,
		}
		if _, err := clusters[0].Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	return clusters, nodes, keys
}

// closedLoopRate measures sustained goodput with the same worker count
// and the same clusters the open-loop sweep will use, so the calibrated
// capacity reflects the admission-limited regime the sweep runs in —
// not an idealized one the sweep could never reach.
func closedLoopRate(clusters []*client.Cluster, keys []guid.GUID, workers int, dur time.Duration) float64 {
	var stop atomic.Bool
	var done atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		c := clusters[w%len(clusters)]
		off := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			var e store.Entry
			for i := off; !stop.Load(); i++ {
				if err := c.LookupInto(keys[i%len(keys)], &e); err == nil {
					done.Add(1)
				}
			}
		}()
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	return float64(done.Load()) / time.Since(start).Seconds()
}

// loadRecord is one LOADRECORD emission: the base benchmark-record
// fields (ns_per_op carries the point's p99 in nanoseconds) plus the
// load-sweep extension cmd/benchcheck validates.
type loadRecord struct {
	Date         string  `json:"date"`
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	Kind         string  `json:"kind"`
	OfferedRPS   float64 `json:"offered_rps"`
	CompletedRPS float64 `json:"completed_rps"`
	P50us        float64 `json:"p50_us"`
	P99us        float64 `json:"p99_us"`
	P999us       float64 `json:"p999_us"`
	ShedRPS      float64 `json:"shed_rps"`
}

func emitLoadRecord(t *testing.T, date, name, kind string, p load.Point) {
	t.Helper()
	b, err := json.Marshal(loadRecord{
		Date: date, Name: name, NsPerOp: p.P99us * 1e3, Kind: kind,
		OfferedRPS: p.OfferedRPS, CompletedRPS: p.CompletedRPS,
		P50us: p.P50us, P99us: p.P99us, P999us: p.P999us, ShedRPS: p.ShedRPS,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Printed raw (not t.Log) so scripts/bench.sh can harvest the lines
	// without stripping test-runner prefixes.
	fmt.Printf("LOADRECORD %s\n", b)
}

func TestLoadSweepCI(t *testing.T) {
	if os.Getenv("BENCH_LOAD") == "" {
		t.Skip("set BENCH_LOAD=1 (scripts/bench.sh load does) to run the open-loop overload sweep")
	}
	date := os.Getenv("BENCH_DATE")
	if date == "" {
		date = time.Now().Format("20060102")
	}
	const (
		nClusters = 4
		perConn   = 6 // in-flight limit per conn, below workers/nClusters
	)
	workers := envInt("BENCH_LOAD_WORKERS", 32)
	hot := trace.NewHotKeys(32)
	clusters, nodes, keys := loadWorld(t, 2, nClusters, 128, server.Options{
		MaxConnInflight: perConn,
		MaxInflight:     perConn * nClusters * 2,
		HotKeys:         hot,
	})

	// Calibrate capacity at the sweep's own concurrency. The top
	// multipliers must land far past it even if the estimate is noisy.
	capacity := closedLoopRate(clusters, keys, workers, 300*time.Millisecond)
	if capacity <= 0 {
		t.Fatal("closed-loop calibration completed no lookups")
	}
	t.Logf("calibrated closed-loop goodput: %.0f lookups/s (%d workers, %d clusters)", capacity, workers, nClusters)

	mults := []float64{0.25, 0.5, 0.75, 1.5, 2.5}
	points := make([]load.Point, 0, len(mults))
	var shedsBefore, shedsDuringOverload int64
	for i, mult := range mults {
		if i == len(mults)-1 {
			for _, n := range nodes {
				shedsBefore += n.Stats().Sheds
			}
		}
		res, err := load.Run(load.Config{
			Clusters: clusters,
			Arrivals: load.NewPoisson(mult*capacity, int64(i+1)),
			Duration: 800 * time.Millisecond,
			Workers:  workers,
			Keys:     keys,
			ZipfS:    1.2,
			Seed:     int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		p := load.Point{
			OfferedRPS:   res.OfferedRate(),
			CompletedRPS: res.CompletedRate(),
			P50us:        res.P50us,
			P99us:        res.P99us,
			P999us:       res.P999us,
			ShedRPS:      float64(res.ClientSheds) / res.Elapsed.Seconds(),
		}
		points = append(points, p)
		t.Logf("sweep %.2fx: offered %.0f/s, completed %.0f/s, p50 %.0fµs p99 %.0fµs p999 %.0fµs, sheds %.0f/s, overflow %d",
			mult, p.OfferedRPS, p.CompletedRPS, p.P50us, p.P99us, p.P999us, p.ShedRPS, res.Overflow)
		emitLoadRecord(t, date, "load.point", "point", p)
		if i == len(mults)-1 {
			for _, n := range nodes {
				shedsDuringOverload += n.Stats().Sheds
			}
			shedsDuringOverload -= shedsBefore
		}
	}

	// Gate 1: the sweep brackets a knee — the light end keeps up, the
	// heavy end does not.
	knee := load.DetectKnee(points, 0)
	if knee < 0 {
		t.Fatalf("no knee: even the lightest point (%.0f/s offered) is overloaded", points[0].OfferedRPS)
	}
	if knee == len(points)-1 {
		t.Fatalf("no overload: the heaviest point (%.0f/s offered, %.0f/s completed) still keeps up — sweep did not pass the knee",
			points[knee].OfferedRPS, points[knee].CompletedRPS)
	}
	t.Logf("knee at sweep point %d: %.0f/s offered, %.0f/s completed", knee, points[knee].OfferedRPS, points[knee].CompletedRPS)
	emitLoadRecord(t, date, "load.knee", "knee", points[knee])

	// Gate 2: past the knee the system degrades, it does not collapse —
	// deep-overload goodput holds a healthy fraction of knee goodput.
	last := points[len(points)-1]
	if floor := 0.4 * points[knee].CompletedRPS; last.CompletedRPS < floor {
		t.Errorf("overload goodput collapsed: %.0f/s at %.0f/s offered, floor %.0f/s (40%% of knee goodput)",
			last.CompletedRPS, last.OfferedRPS, floor)
	}
	emitLoadRecord(t, date, "load.overload", "overload", last)

	// Gate 3: deep overload is handled by admission, not by unbounded
	// queues — the servers visibly shed during the heaviest point.
	if shedsDuringOverload == 0 {
		t.Error("servers shed nothing during the deep-overload point; admission control is not engaging")
	} else {
		t.Logf("servers shed %d requests during the deep-overload point", shedsDuringOverload)
	}

	// Gate 4: the Zipf-skewed stream reached the hot-GUID trackers.
	lookups, _ := hot.Totals()
	if lookups == 0 {
		t.Error("hot-GUID trackers saw no lookups")
	} else if top := hot.TopLookups(1); len(top) == 0 || top[0].Count == 0 {
		t.Error("hot-GUID trackers have no top key despite traffic")
	}
}
