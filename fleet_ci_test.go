// Fleet telemetry gate: the CI check that watching a cluster is free.
//
// TestFleetTelemetryCI runs the whole telemetry plane — the metric
// collector scraping every node's /debug/metrics, the runtime bridge
// feeding Go runtime telemetry into those registries, and the
// black-box SLO prober writing/reading sentinel GUIDs — against a live
// 3-node TCP cluster while a foreground client drives lookups, and
// asserts the plane is effectively invisible:
//
//   - foreground mean latency with the collector and prober running
//     stays within BENCH_FLEET_TOLERANCE_PCT (default 5%) of the same
//     loop with the plane idle,
//   - the foreground allocation budget is untouched: single-op Lookup
//     at or under 1 alloc/64 B, LookupInto at 0 allocs — the same
//     budgets scripts/bench.sh alloc enforces without telemetry,
//   - every node scrapes clean (3/3 up, exact merged histograms) and
//     every probe succeeds with no SLO burn.
//
// The run is summarized as one "FLEETRECORD {json}" line that
// scripts/bench.sh fleet harvests into BENCH_<date>.json, where
// cmd/benchcheck validates the fleet record schema. Gated behind
// BENCH_FLEET=1: latency comparisons need a quiet machine, which is a
// bench posture, not a unit-test one.
package dmap_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
	"dmap/internal/obs"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
)

// fleetRecord is one FLEETRECORD emission, matching the closed schema
// cmd/benchcheck enforces for kind "fleet".
type fleetRecord struct {
	Date        string  `json:"date"`
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`

	Kind              string  `json:"kind"`
	ScrapeOverheadPct float64 `json:"scrape_overhead_pct"`
	ProbeOps          float64 `json:"probe_ops"`
	ProbeFailures     float64 `json:"probe_failures"`
	MergedP99us       float64 `json:"merged_p99_us"`
}

func TestFleetTelemetryCI(t *testing.T) {
	if os.Getenv("BENCH_FLEET") == "" {
		t.Skip("set BENCH_FLEET=1 (scripts/bench.sh fleet does) to run the fleet telemetry gate")
	}
	date := os.Getenv("BENCH_DATE")
	if date == "" {
		date = time.Now().Format("20060102")
	}
	tolerance := 5.0
	if s := os.Getenv("BENCH_FLEET_TOLERANCE_PCT"); s != "" {
		fmt.Sscanf(s, "%f", &tolerance)
	}

	// A 3-node cluster with the full telemetry surface attached: runtime
	// metrics bridged into each node's registry, debug HTTP endpoints up.
	const numAS = 3
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             numAS,
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sources []obs.Source
	var targets []obs.ProbeTarget
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.New(nil, nil)
		obs.RegisterRuntime(n.Metrics())
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		dbg := httptest.NewServer(metrics.Handler(n.Metrics()))
		t.Cleanup(dbg.Close)
		name := fmt.Sprintf("n%d", as)
		addrs[as] = addr
		sources = append(sources, obs.Source{Name: name, URL: dbg.URL})
		targets = append(targets, obs.ProbeTarget{Name: name, Addr: addr})
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.NewWithConfig(resolver, addrs, client.Config{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const nKeys = 64
	keys := make([]guid.GUID, nKeys)
	for i := range keys {
		keys[i] = guid.New(fmt.Sprintf("fleet-key-%d", i))
		e := store.Entry{
			GUID:    keys[i],
			NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(192, 0, 2, byte(i+1))}},
			Version: 1,
		}
		if _, err := cl.Insert(e); err != nil {
			t.Fatal(err)
		}
	}

	// foregroundNs drives ops sequential lookups and returns the mean
	// latency; the minimum of reps passes is the gate's location
	// statistic, as everywhere else in the bench harness.
	foregroundNs := func(ops, reps int) float64 {
		best := 0.0
		var e store.Entry
		for r := 0; r < reps; r++ {
			start := time.Now()
			for i := 0; i < ops; i++ {
				if err := cl.LookupInto(keys[i%nKeys], &e); err != nil {
					t.Fatal(err)
				}
			}
			ns := float64(time.Since(start).Nanoseconds()) / float64(ops)
			if best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}

	const fgOps, fgReps = 20000, 3
	foregroundNs(fgOps, 1) // warm the conn pool and the path
	baseNs := foregroundNs(fgOps, fgReps)

	// Start the plane: the collector scrapes every node and the prober
	// rounds every target at 50 ms — an order of magnitude faster than
	// production cadence, so each foreground pass (~200 ms) overlaps
	// several scrapes and probe rounds.
	collector := obs.NewCollector(obs.CollectorConfig{Sources: sources})
	preg := metrics.NewRegistry()
	prober := obs.NewProber(obs.ProberConfig{Targets: targets, Registry: preg})
	defer prober.Close()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var lastView obs.FleetView
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				v := collector.Collect()
				mu.Lock()
				lastView = v
				mu.Unlock()
			}
		}
	}()
	go func() {
		defer wg.Done()
		prober.Run(stop, 50*time.Millisecond, nil)
	}()

	time.Sleep(120 * time.Millisecond) // let a few rounds land first
	onNs := foregroundNs(fgOps, fgReps)
	overheadPct := (onNs - baseNs) / baseNs * 100
	t.Logf("foreground: %.0f ns/op idle, %.0f ns/op under scrape+probe (%+.2f%%, budget %.0f%%)",
		baseNs, onNs, overheadPct, tolerance)
	if overheadPct > tolerance {
		t.Errorf("telemetry plane costs the foreground %.2f%%, budget %.0f%%", overheadPct, tolerance)
	}

	// Allocation budget with the plane attached. The collector is
	// concurrent with this measurement: AllocsPerRun reads global
	// counters, so scrape/probe allocations on other goroutines would be
	// misattributed to the foreground op — stop the plane but keep every
	// registration (runtime bridge, snapshot hooks, sentinels) in place.
	close(stop)
	wg.Wait()
	var e store.Entry
	g := keys[0]
	intoAllocs := testing.AllocsPerRun(2000, func() {
		if err := cl.LookupInto(g, &e); err != nil {
			t.Fatal(err)
		}
	})
	singleAllocs := testing.AllocsPerRun(2000, func() {
		if _, err := cl.Lookup(g); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("foreground allocs: Lookup %.1f/op (budget 1), LookupInto %.1f/op (budget 0)", singleAllocs, intoAllocs)
	if intoAllocs > 0 {
		t.Errorf("LookupInto allocates %.1f/op with telemetry attached, budget 0", intoAllocs)
	}
	if singleAllocs > 1 {
		t.Errorf("Lookup allocates %.1f/op with telemetry attached, budget 1", singleAllocs)
	}

	// The plane must have actually watched the cluster it was billed to.
	mu.Lock()
	view := lastView
	mu.Unlock()
	if view.NodesUp != numAS {
		t.Fatalf("collector saw %d/%d nodes up: %+v", view.NodesUp, numAS, view.Nodes)
	}
	h, ok := view.Cluster.Histograms["server.op.lookup_us"]
	if !ok || h.Count == 0 {
		t.Fatal("merged cluster view has no lookup histogram")
	}
	mergedP99us := h.Quantile(99)
	for _, name := range []string{obs.MetricHeapBytes, obs.MetricGoroutines} {
		found := false
		for _, n := range view.Nodes {
			if _, ok := n.Gauges[name]; ok {
				found = true
			}
		}
		if !found {
			t.Errorf("runtime metric %s missing from every scraped node", name)
		}
	}
	st := prober.Status()
	if st.Rounds == 0 {
		t.Fatal("prober never completed a round")
	}
	if st.Breaching() {
		t.Errorf("healthy cluster breaches SLO: %+v", st.SLOs)
	}
	for _, ts := range st.Targets {
		if !ts.WriteOK || !ts.ReadOK || ts.Stale {
			t.Errorf("healthy target failed probes: %+v", ts)
		}
	}
	probeOps := preg.Counter("probe.ops").Value()
	probeFailures := preg.Counter("probe.failures").Value()
	if probeOps == 0 {
		t.Fatal("prober registry recorded no ops")
	}
	if probeFailures != 0 {
		t.Errorf("%d probe failures against a healthy cluster", probeFailures)
	}

	rec := fleetRecord{
		Date: date, Name: "fleet.telemetry",
		NsPerOp: mergedP99us * 1000, Kind: "fleet",
		ScrapeOverheadPct: overheadPct,
		ProbeOps:          float64(probeOps),
		ProbeFailures:     float64(probeFailures),
		MergedP99us:       mergedP99us,
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("FLEETRECORD %s\n", b)
}
