// HTTP exposure: the /debug/metrics endpoint served by cmd/dmapnode.
package metrics

import (
	"net/http"
)

// Handler serves reg's snapshot: the text encoding by default,
// JSON with ?format=json (or an application/json Accept header).
func Handler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		wantJSON := r.URL.Query().Get("format") == "json" ||
			r.Header.Get("Accept") == "application/json"
		if wantJSON {
			b, err := snap.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = snap.WriteText(w)
	})
}
