// Streaming fixed-bucket histogram: the latency-distribution primitive
// behind the paper's Figures 4–7, reshaped for the live request path.
// Where internal/stats collects every sample and sorts (exact
// percentiles, O(n) memory), this histogram keeps one atomic counter
// per bucket (bounded memory, allocation-free Observe) and answers
// quantile queries by interpolating within the bucket that holds the
// target rank — the standard monitoring trade-off.
package metrics

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

func floatToBits(v float64) uint64   { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// DefaultLatencyEdges are the default bucket upper bounds in
// microseconds: powers of two from 1 µs to ~33.5 s (2^25 µs). The
// geometric layout keeps relative quantile error bounded (a value is
// located within a factor-2 bucket) across the six decades between an
// intra-AS cache hit and a timed-out WAN attempt.
var DefaultLatencyEdges = func() []float64 {
	edges := make([]float64, 26)
	for i := range edges {
		edges[i] = float64(uint64(1) << uint(i))
	}
	return edges
}()

// Histogram is a concurrent fixed-bucket histogram. Observe is
// lock-free and allocation-free; create via Registry.Histogram.
type Histogram struct {
	edges  []float64 // immutable upper bounds, strictly increasing
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	min    atomic.Uint64 // float64 bits; +Inf when empty
	max    atomic.Uint64 // float64 bits; -Inf when empty
	// exemplars holds the last sampled trace ID observed per bucket
	// (0 = none): the bridge from an aggregate tail bucket to the
	// concrete trace in /debug/traces that landed there.
	exemplars []atomic.Uint64
}

func newHistogram(edges []float64) *Histogram {
	if edges == nil {
		edges = DefaultLatencyEdges
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("metrics: histogram edges must be strictly increasing")
		}
	}
	h := &Histogram{
		edges:     edges,
		counts:    make([]atomic.Uint64, len(edges)+1), // +1 = overflow bucket
		exemplars: make([]atomic.Uint64, len(edges)+1),
	}
	h.resetExtrema()
	return h
}

func (h *Histogram) resetExtrema() {
	h.min.Store(posInfBits)
	h.max.Store(negInfBits)
}

const (
	posInfBits = 0x7FF0000000000000
	negInfBits = 0xFFF0000000000000
)

// Observe records one sample. Unit is whatever the histogram's edges
// are in (microseconds for the default layout).
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, 0) }

// ObserveDuration records d in microseconds (the default edge unit).
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d.Nanoseconds()) / 1e3)
}

// ObserveSince records the time elapsed since t0 in microseconds.
func (h *Histogram) ObserveSince(t0 time.Time) {
	h.ObserveDuration(time.Since(t0))
}

// ObserveExemplar records one sample and, when traceID is non-zero,
// remembers it as the bucket's exemplar — last writer wins, which for
// monitoring is exactly right: the freshest trace that landed in a
// bucket is the one worth opening.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	// Smallest i with edges[i] >= v; len(edges) = overflow.
	idx := sort.SearchFloat64s(h.edges, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	atomicAddFloat(&h.sum, v)
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
	if traceID != 0 {
		h.exemplars[idx].Store(traceID)
	}
}

// ObserveSinceExemplar records the elapsed microseconds since t0 with a
// trace-ID exemplar (0 = no exemplar, plain observation).
func (h *Histogram) ObserveSinceExemplar(t0 time.Time, traceID uint64) {
	h.ObserveExemplar(float64(time.Since(t0).Nanoseconds())/1e3, traceID)
}

// ObserveN records n identical samples of value v in one shot: one
// bucket add, one count add, one sum CAS — the bridge primitive for
// replaying pre-bucketed distributions (e.g. runtime/metrics histogram
// deltas in internal/obs) without n Observe calls. n = 0 is a no-op.
func (h *Histogram) ObserveN(v float64, n uint64) {
	if n == 0 {
		return
	}
	idx := sort.SearchFloat64s(h.edges, v)
	h.counts[idx].Add(n)
	h.count.Add(n)
	atomicAddFloat(&h.sum, v*float64(n))
	atomicMinFloat(&h.min, v)
	atomicMaxFloat(&h.max, v)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// reset zeroes the histogram (not atomic with concurrent Observe; see
// Registry.Reset).
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	for i := range h.exemplars {
		h.exemplars[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.resetExtrema()
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Edges:  h.edges, // immutable, shared
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	// Count is rebuilt from the buckets rather than read from h.count so
	// the snapshot is internally consistent (quantiles walk Counts).
	s.Sum = floatFromBits(h.sum.Load())
	if s.Count > 0 {
		s.Min = floatFromBits(h.min.Load())
		s.Max = floatFromBits(h.max.Load())
	}
	// Exemplars only when at least one exists: the field is omitted from
	// JSON otherwise and the text encoding never shows it, so histograms
	// observed without trace IDs snapshot exactly as before.
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != 0 {
			if s.Exemplars == nil {
				s.Exemplars = make([]uint64, len(h.counts))
			}
			s.Exemplars[i] = e
		}
	}
	return s
}

func atomicAddFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		next := floatToBits(floatFromBits(old) + d)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func atomicMinFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if floatFromBits(old) <= v {
			return
		}
		if bits.CompareAndSwap(old, floatToBits(v)) {
			return
		}
	}
}

func atomicMaxFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if floatFromBits(old) >= v {
			return
		}
		if bits.CompareAndSwap(old, floatToBits(v)) {
			return
		}
	}
}
