package metrics

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWriters proves counter/gauge/histogram correctness
// under parallel load: G goroutines × N events each must land exactly
// G×N increments, histogram samples and gauge adjustments. Run under
// -race by scripts/check.sh.
func TestConcurrentWriters(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 8
		perG       = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve handles concurrently too: lookup-or-create must be
			// safe and return the same metric to every goroutine.
			c := reg.Counter("test.ops")
			ga := reg.Gauge("test.level")
			h := reg.Histogram("test.lat_us")
			for i := 0; i < perG; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(g*perG+i) / 100)
			}
		}()
	}
	wg.Wait()

	snap := reg.Snapshot()
	total := int64(goroutines * perG)
	if got := snap.Counters["test.ops"]; got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := snap.Gauges["test.level"]; got != float64(total) {
		t.Errorf("gauge = %g, want %d", got, total)
	}
	h := snap.Histograms["test.lat_us"]
	if h.Count != uint64(total) {
		t.Errorf("hist count = %d, want %d", h.Count, total)
	}
	var bucketSum uint64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != h.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, h.Count)
	}
	// Sum of 0/100 .. (total-1)/100 = total*(total-1)/200; float CAS
	// accumulation must not lose updates (order varies, so allow tiny
	// rounding slack).
	wantSum := float64(total) * float64(total-1) / 200
	if math.Abs(h.Sum-wantSum) > wantSum*1e-9 {
		t.Errorf("hist sum = %g, want %g", h.Sum, wantSum)
	}
	if h.Min != 0 || h.Max != float64(total-1)/100 {
		t.Errorf("extrema = [%g, %g], want [0, %g]", h.Min, h.Max, float64(total-1)/100)
	}
}

// TestSnapshotDeterminism: equal metric state must produce byte-equal
// text and JSON encodings, and repeated snapshots of quiescent state
// must be identical.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("a.ops").Add(7)
		reg.Counter("b.ops").Add(3)
		reg.Gauge("z.level").Set(1.5)
		reg.GaugeFunc("y.size", func() float64 { return 42 })
		h := reg.Histogram("lat_us")
		for i := 0; i < 1000; i++ {
			h.Observe(float64(i % 257))
		}
		return reg
	}
	r1, r2 := build(), build()
	t1, t2 := r1.Snapshot().Text(), r2.Snapshot().Text()
	if t1 != t2 {
		t.Errorf("text encodings differ:\n%s\nvs\n%s", t1, t2)
	}
	if t1 != r1.Snapshot().Text() {
		t.Error("repeated snapshot of quiescent registry differs")
	}
	j1, err1 := r1.Snapshot().JSON()
	j2, err2 := r2.Snapshot().JSON()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if string(j1) != string(j2) {
		t.Error("JSON encodings differ")
	}
	// Text is sorted by name within each kind.
	lines := strings.Split(strings.TrimSpace(t1), "\n")
	if !strings.HasPrefix(lines[0], "counter a.ops 7") ||
		!strings.HasPrefix(lines[1], "counter b.ops 3") {
		t.Errorf("counters unsorted or wrong:\n%s", t1)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_us")
	// Uniform 1..10000 µs: p50 ≈ 5000, p99 ≈ 9900 — geometric buckets
	// locate ranks within a factor-2 bucket, interpolation does better.
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	s := reg.Snapshot().Histograms["q_us"]
	for _, tc := range []struct {
		p, want, tol float64
	}{
		{0, 1, 0}, {50, 5000, 1500}, {95, 9500, 1000}, {99, 9900, 700}, {100, 10000, 0},
	} {
		got := s.Quantile(tc.p)
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("p%g = %g, want %g ± %g", tc.p, got, tc.want, tc.tol)
		}
	}
	if m := s.Mean(); math.Abs(m-5000.5) > 1e-6 {
		t.Errorf("mean = %g, want 5000.5", m)
	}
	if s.Quantile(50) < s.Min || s.Quantile(50) > s.Max {
		t.Error("quantile outside observed extrema")
	}
}

func TestHistogramOverflowAndDurations(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("d_us")
	h.ObserveDuration(250 * time.Microsecond)
	h.Observe(1e12) // beyond the last edge → overflow bucket
	s := reg.Snapshot().Histograms["d_us"]
	if s.Count != 2 {
		t.Fatalf("count = %d, want 2", s.Count)
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Error("overflow sample not in overflow bucket")
	}
	if s.Max != 1e12 {
		t.Errorf("max = %g, want 1e12", s.Max)
	}
	if p100 := s.Quantile(100); p100 != 1e12 {
		t.Errorf("p100 = %g, want exact max", p100)
	}
}

func TestRegistryResetAndReuse(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	h := reg.Histogram("h_us")
	g := reg.Gauge("g")
	c.Add(5)
	h.Observe(3)
	g.Set(9)
	reg.Reset()
	snap := reg.Snapshot()
	if snap.Counters["x"] != 0 {
		t.Error("counter not reset")
	}
	if snap.Histograms["h_us"].Count != 0 {
		t.Error("histogram not reset")
	}
	if snap.Gauges["g"] != 9 {
		t.Error("gauge should survive reset (it is a level)")
	}
	// Same-name lookups return the same metric.
	if reg.Counter("x") != c || reg.Histogram("h_us") != h || reg.Gauge("g") != g {
		t.Error("re-lookup returned a different metric")
	}
	// Cross-kind collisions panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind registration should panic")
			}
		}()
		reg.Gauge("x")
	}()
}

func TestStatsRenderBridge(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("r_us")
	if reg.Snapshot().Histograms["r_us"].Stats() != nil {
		t.Error("empty histogram should render as nil")
	}
	for i := 0; i < 500; i++ {
		h.Observe(float64(10 + i%100))
	}
	sh := reg.Snapshot().Histograms["r_us"].Stats()
	if sh == nil {
		t.Fatal("nil stats histogram for non-empty data")
	}
	if out := sh.Render(30); !strings.Contains(out, "█") {
		t.Errorf("render produced no bars:\n%s", out)
	}
	total := 0
	for _, b := range sh.Buckets {
		total += b
	}
	if total != 500 {
		t.Errorf("render lost samples: %d/500", total)
	}
}

func TestHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("srv.ops").Add(11)
	reg.Histogram("srv.lat_us").Observe(128)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	get := func(url string) (string, string) {
		resp, err := srv.Client().Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b), resp.Header.Get("Content-Type")
	}

	text, ct := get(srv.URL)
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(text, "counter srv.ops 11") || !strings.Contains(text, "p95=") {
		t.Errorf("text body missing metrics:\n%s", text)
	}

	body, ct := get(srv.URL + "?format=json")
	if ct != "application/json" {
		t.Errorf("json content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if snap.Counters["srv.ops"] != 11 || snap.Histograms["srv.lat_us"].Count != 1 {
		t.Errorf("JSON snapshot wrong: %+v", snap)
	}
}
