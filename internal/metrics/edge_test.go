package metrics

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestEmptyHistogramQuantiles pins the empty-histogram contract: every
// quantile (and the mean) of a histogram with no samples is 0, as are
// the snapshot extrema — no NaN, no ±Inf leaking out of the unobserved
// min/max sentinels.
func TestEmptyHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("empty")
	snap := reg.Snapshot().Histograms["empty"]
	if snap.Count != 0 {
		t.Fatalf("count = %d, want 0", snap.Count)
	}
	for _, p := range []float64{0, 50, 95, 99, 100} {
		if q := snap.Quantile(p); q != 0 {
			t.Fatalf("empty Quantile(%g) = %g, want 0", p, q)
		}
	}
	if snap.Mean() != 0 || snap.Min != 0 || snap.Max != 0 || snap.Sum != 0 {
		t.Fatalf("empty snapshot = %+v, want all-zero summary", snap)
	}
	// Out-of-range p is also 0, empty or not.
	h.Observe(5)
	snap = reg.Snapshot().Histograms["empty"]
	if snap.Quantile(-1) != 0 || snap.Quantile(101) != 0 {
		t.Fatal("out-of-range quantile not 0")
	}
}

// TestSingleObservationHistogram pins the one-sample contract: every
// quantile collapses to the single observed value (the clamp to
// [Min, Max] must defeat in-bucket interpolation), and min = mean =
// max = sum = that value.
func TestSingleObservationHistogram(t *testing.T) {
	reg := NewRegistry()
	reg.Histogram("one").Observe(37)
	snap := reg.Snapshot().Histograms["one"]
	if snap.Count != 1 {
		t.Fatalf("count = %d, want 1", snap.Count)
	}
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if q := snap.Quantile(p); q != 37 {
			t.Fatalf("single-sample Quantile(%g) = %g, want 37", p, q)
		}
	}
	if snap.Min != 37 || snap.Max != 37 || snap.Sum != 37 || snap.Mean() != 37 {
		t.Fatalf("single-sample snapshot = %+v", snap)
	}
}

// TestSnapshotJSONRoundTrip is the /debug/metrics schema test: the JSON
// the handler serves must decode back into a Snapshot that is
// semantically identical to the source — names, values, bucket layout,
// exemplars — so external tooling can rely on the field names and
// shapes.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ops").Add(7)
	reg.Gauge("inflight").Set(3.5)
	h := reg.Histogram("lat_us")
	h.Observe(12)
	h.Observe(900)
	h.ObserveExemplar(3000, 0xABCDEF)

	rec := httptest.NewRecorder()
	Handler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics?format=json", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}

	var got Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("decode /debug/metrics JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Counters["ops"] != 7 {
		t.Fatalf("counters = %+v", got.Counters)
	}
	if got.Gauges["inflight"] != 3.5 {
		t.Fatalf("gauges = %+v", got.Gauges)
	}
	hs, ok := got.Histograms["lat_us"]
	if !ok {
		t.Fatalf("histograms = %+v", got.Histograms)
	}
	want := reg.Snapshot().Histograms["lat_us"]
	if hs.Count != want.Count || hs.Sum != want.Sum || hs.Min != want.Min || hs.Max != want.Max {
		t.Fatalf("summary round trip: got %+v, want %+v", hs, want)
	}
	if len(hs.Edges) != len(want.Edges) || len(hs.Counts) != len(want.Counts) {
		t.Fatalf("bucket layout: %d/%d edges, %d/%d counts",
			len(hs.Edges), len(want.Edges), len(hs.Counts), len(want.Counts))
	}
	for i := range hs.Counts {
		if hs.Counts[i] != want.Counts[i] {
			t.Fatalf("counts[%d] = %d, want %d", i, hs.Counts[i], want.Counts[i])
		}
	}
	if len(hs.Exemplars) != len(hs.Counts) {
		t.Fatalf("exemplars = %d entries, want %d", len(hs.Exemplars), len(hs.Counts))
	}
	found := false
	for _, e := range hs.Exemplars {
		if e == 0xABCDEF {
			found = true
		}
	}
	if !found {
		t.Fatalf("exemplar trace ID missing from round trip: %v", hs.Exemplars)
	}
	// Re-encoding the decoded snapshot must be byte-identical — the
	// encoding itself is deterministic, not just the semantics.
	b1, err := got.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := reg.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("re-encoded JSON differs:\n%s\nvs\n%s", b1, b2)
	}
}

// TestExemplars covers the exemplar contract: absent until a non-zero
// trace ID is observed (keeping old JSON output byte-stable), last
// writer wins per bucket, text encoding unaffected, reset clears them.
func TestExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("h")
	h.Observe(3)
	h.ObserveSinceExemplar(time.Now(), 0) // zero trace ID = no exemplar
	snap := reg.Snapshot().Histograms["h"]
	if snap.Exemplars != nil {
		t.Fatalf("exemplars = %v before any trace ID", snap.Exemplars)
	}
	if b, _ := json.Marshal(snap); bytes.Contains(b, []byte(`"exemplars"`)) {
		t.Fatalf("exemplars key present in JSON without exemplars: %s", b)
	}

	h.ObserveExemplar(3, 111)
	h.ObserveExemplar(3, 222) // same bucket: last writer wins
	h.ObserveSinceExemplar(time.Now().Add(-time.Millisecond), 333)
	snap = reg.Snapshot().Histograms["h"]
	if snap.Exemplars == nil {
		t.Fatal("exemplars missing after trace-ID observations")
	}
	var seen []uint64
	for _, e := range snap.Exemplars {
		if e != 0 {
			seen = append(seen, e)
		}
	}
	if len(seen) != 2 || seen[0] != 222 && seen[1] != 222 {
		t.Fatalf("exemplars = %v, want 222 (last-wins) and 333", seen)
	}
	text := reg.Snapshot().Text()
	if strings.Contains(text, "exemplar") {
		t.Fatalf("text encoding mentions exemplars:\n%s", text)
	}

	reg.Reset()
	h.Observe(1)
	if s := reg.Snapshot().Histograms["h"]; s.Exemplars != nil {
		t.Fatalf("exemplars survived reset: %v", s.Exemplars)
	}
}
