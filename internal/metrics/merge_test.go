package metrics

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestMergePropertyBitIdentical is the satellite property test: merging
// N per-shard/per-node histogram snapshots must be BIT-identical to
// observing every sample into one histogram — counts, sum, min, max and
// every quantile. Samples are whole microseconds (exactly representable
// floats whose partial sums stay far below 2^53), so float addition is
// exact and associative here and bit-identity is a fair demand.
func TestMergePropertyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nParts := 1 + rng.Intn(8)
		parts := make([]*Histogram, nParts)
		for i := range parts {
			parts[i] = newHistogram(nil)
		}
		whole := newHistogram(nil)

		nSamples := rng.Intn(400)
		for s := 0; s < nSamples; s++ {
			var v float64
			switch rng.Intn(10) {
			case 0:
				// Saturate the top (overflow) bucket: beyond the last
				// edge (2^25 µs), where bucketBounds clamps to Max.
				v = float64(1<<25) + float64(rng.Intn(1<<20))
			case 1:
				v = 0 // below the first edge
			default:
				v = float64(rng.Intn(1 << 20))
			}
			parts[rng.Intn(nParts)].Observe(v)
			whole.Observe(v)
		}
		// Some parts stay empty by chance; force one empty histogram
		// into every merge so the identity edge case is always covered.
		parts = append(parts, newHistogram(nil))

		merged := HistogramSnapshot{}
		var err error
		for _, p := range parts {
			merged, err = merged.Merge(p.snapshot())
			if err != nil {
				t.Fatalf("trial %d: merge: %v", trial, err)
			}
		}
		want := whole.snapshot()

		if nSamples == 0 {
			if merged.Count != 0 {
				t.Fatalf("trial %d: empty merge has count %d", trial, merged.Count)
			}
			continue
		}
		if merged.Count != want.Count {
			t.Fatalf("trial %d: count %d, want %d", trial, merged.Count, want.Count)
		}
		if merged.Sum != want.Sum {
			t.Fatalf("trial %d: sum %v, want %v (not bit-identical)", trial, merged.Sum, want.Sum)
		}
		if merged.Min != want.Min || merged.Max != want.Max {
			t.Fatalf("trial %d: extrema [%v,%v], want [%v,%v]", trial, merged.Min, merged.Max, want.Min, want.Max)
		}
		if !reflect.DeepEqual(merged.Counts, want.Counts) {
			t.Fatalf("trial %d: bucket counts diverge\n got %v\nwant %v", trial, merged.Counts, want.Counts)
		}
		for _, p := range []float64{0, 25, 50, 90, 95, 99, 99.9, 100} {
			if g, w := merged.Quantile(p), want.Quantile(p); g != w {
				t.Fatalf("trial %d: p%g = %v, want %v (not bit-identical)", trial, p, g, w)
			}
		}
	}
}

func TestMergeRejectsMismatchedEdges(t *testing.T) {
	a := newHistogram([]float64{1, 2, 4})
	b := newHistogram([]float64{1, 2, 8})
	c := newHistogram([]float64{1, 2})
	a.Observe(1)
	b.Observe(1)
	c.Observe(1)
	if _, err := a.snapshot().Merge(b.snapshot()); err == nil {
		t.Error("merge of differing edge values succeeded")
	}
	if _, err := a.snapshot().Merge(c.snapshot()); err == nil {
		t.Error("merge of differing edge counts succeeded")
	}
	// Empty operands are identities and must not consult edges at all.
	if _, err := a.snapshot().Merge(newHistogram([]float64{9}).snapshot()); err != nil {
		t.Errorf("merge with empty mismatched histogram: %v", err)
	}
	if _, err := (HistogramSnapshot{}).Merge(a.snapshot()); err != nil {
		t.Errorf("merge into zero-value snapshot: %v", err)
	}
}

func TestMergeDoesNotAliasOperands(t *testing.T) {
	h := newHistogram(nil)
	h.Observe(3)
	s := h.snapshot()
	m, err := (HistogramSnapshot{}).Merge(s)
	if err != nil {
		t.Fatal(err)
	}
	m.Counts[0] += 100
	if s.Counts[0] >= 100 {
		t.Error("merged snapshot aliases its operand's counts")
	}
}

func TestMergeSnapshotsCountersSumGaugesDropped(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Counter("ops").Add(3)
	b.Counter("ops").Add(4)
	b.Counter("only_b").Add(1)
	a.Gauge("inflight").Set(5)
	b.Gauge("inflight").Set(7)
	a.Histogram("lat_us").Observe(10)
	b.Histogram("lat_us").Observe(1 << 30) // overflow bucket

	m, err := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if m.Counters["ops"] != 7 || m.Counters["only_b"] != 1 {
		t.Errorf("counters = %v, want ops:7 only_b:1", m.Counters)
	}
	if len(m.Gauges) != 0 {
		t.Errorf("gauges %v survived the merge; levels must keep per-node identity", m.Gauges)
	}
	h := m.Histograms["lat_us"]
	if h.Count != 2 || h.Min != 10 || h.Max != float64(1<<30) {
		t.Errorf("merged histogram = count %d [%g,%g], want 2 [10,%g]", h.Count, h.Min, h.Max, float64(1<<30))
	}
}

// TestDeltaSinceWindow covers the documented counter-delta contract:
// live windows subtract, restarts clamp to zero (never negative), and
// the next window after a restart reads exactly again.
func TestDeltaSinceWindow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("server.lookups")
	g := r.Gauge("server.inflight")
	h := r.Histogram("server.op.lookup_us")

	c.Add(10)
	g.Set(3)
	h.Observe(5)
	h.Observe(7)
	prev := r.Snapshot()

	c.Add(4)
	g.Set(9)
	h.Observe(11)
	cur := r.Snapshot()

	d := cur.DeltaSince(prev)
	if d.Counters["server.lookups"] != 4 {
		t.Errorf("window delta = %d, want 4", d.Counters["server.lookups"])
	}
	if d.Gauges["server.inflight"] != 9 {
		t.Errorf("gauge passed through as %g, want current level 9", d.Gauges["server.inflight"])
	}
	hd := d.Histograms["server.op.lookup_us"]
	if hd.Count != 1 || hd.Sum != 11 {
		t.Errorf("histogram window = count %d sum %g, want 1/11", hd.Count, hd.Sum)
	}
}

func TestDeltaSinceRestartClampsToZero(t *testing.T) {
	// "prev" is the snapshot scraped before the node restarted.
	before := NewRegistry()
	before.Counter("server.lookups").Add(1000)
	before.Histogram("server.op.lookup_us").Observe(4)
	before.Histogram("server.op.lookup_us").Observe(4)
	prev := before.Snapshot()

	// The restarted node re-accrued fewer events than prev.
	after := NewRegistry()
	after.Counter("server.lookups").Add(12)
	after.Histogram("server.op.lookup_us").Observe(9)
	cur := after.Snapshot()

	d := cur.DeltaSince(prev)
	if got := d.Counters["server.lookups"]; got != 0 {
		t.Errorf("restart window delta = %d, want clamp to 0 (never negative)", got)
	}
	if hd := d.Histograms["server.op.lookup_us"]; hd.Count != 0 {
		t.Errorf("restart histogram window count = %d, want 0", hd.Count)
	}

	// The window after the restart is exact again.
	after.Counter("server.lookups").Add(5)
	next := after.Snapshot()
	if got := next.DeltaSince(cur).Counters["server.lookups"]; got != 5 {
		t.Errorf("post-restart window delta = %d, want 5", got)
	}
}

// A restart can also re-accrue PAST prev in one bucket while another
// bucket shrank; the bucket-level check must still spot it.
func TestDeltaSinceRestartDetectedPerBucket(t *testing.T) {
	before := NewRegistry()
	hb := before.Histogram("h")
	hb.Observe(2)       // bucket for ≤2
	hb.Observe(1 << 30) // overflow bucket
	prev := before.Snapshot()

	after := NewRegistry()
	ha := after.Histogram("h")
	ha.Observe(2)
	ha.Observe(2)
	ha.Observe(2) // total count 3 > prev's 2, but overflow bucket shrank
	cur := after.Snapshot()

	if d := cur.DeltaSince(prev).Histograms["h"]; d.Count != 0 {
		t.Errorf("per-bucket restart window count = %d, want 0", d.Count)
	}
}

func TestDeltaSinceNewMetric(t *testing.T) {
	r := NewRegistry()
	prev := r.Snapshot()
	r.Counter("fresh").Add(3)
	r.Histogram("fresh_us").Observe(1)
	d := r.Snapshot().DeltaSince(prev)
	if d.Counters["fresh"] != 3 {
		t.Errorf("new counter delta = %d, want 3", d.Counters["fresh"])
	}
	if d.Histograms["fresh_us"].Count != 1 {
		t.Errorf("new histogram delta count = %d, want 1", d.Histograms["fresh_us"].Count)
	}
}

func TestObserveN(t *testing.T) {
	a := newHistogram(nil)
	b := newHistogram(nil)
	for i := 0; i < 5; i++ {
		a.Observe(37)
	}
	b.ObserveN(37, 5)
	b.ObserveN(99, 0) // no-op: must not disturb extrema or counts
	sa, sb := a.snapshot(), b.snapshot()
	if !reflect.DeepEqual(sa.Counts, sb.Counts) || sa.Sum != sb.Sum ||
		sa.Min != sb.Min || sa.Max != sb.Max || sa.Count != sb.Count {
		t.Errorf("ObserveN(37,5) != 5×Observe(37): %+v vs %+v", sb, sa)
	}
}

func TestOnSnapshotHookRefreshes(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("pulled")
	n := 0
	r.OnSnapshot("bridge", func() { n++; g.Set(float64(n)) })
	r.OnSnapshot("bridge", func() { n++; g.Set(float64(n)) }) // replaces, not stacks
	if v := r.Snapshot().Gauges["pulled"]; v != 1 {
		t.Errorf("first snapshot saw %g, want 1 (hook stacked instead of replaced?)", v)
	}
	if v := r.Snapshot().Gauges["pulled"]; v != 2 {
		t.Errorf("second snapshot saw %g, want 2", v)
	}
}

func TestMergeQuantileFinite(t *testing.T) {
	// Overflow-only distributions must still answer finite quantiles
	// after a merge (bucketBounds clamps the top bucket to Max).
	h := newHistogram(nil)
	h.Observe(float64(1 << 26))
	m, err := (HistogramSnapshot{}).Merge(h.snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if q := m.Quantile(99); math.IsInf(q, 0) || math.IsNaN(q) || q != float64(1<<26) {
		t.Errorf("overflow-bucket p99 = %v, want %v", q, float64(1<<26))
	}
}
