// Cluster aggregation primitives: exact snapshot merging and windowed
// deltas. These are what turn per-node /debug/metrics dumps into fleet
// answers ("what is the cluster-wide p99?", "which replica is falling
// behind on repair?") in internal/obs.
//
// Merging is EXACT, not approximate: every histogram in this repository
// uses a fixed bucket layout, so merging N per-node (or per-shard)
// snapshots bucket-by-bucket observes the same distribution a single
// histogram would have seen — same counts, same sum, same min/max, and
// therefore bit-identical quantile answers (the property test in
// merge_test.go proves it, saturated overflow bucket included).
//
// Windowed counter-delta semantics (the contract internal/obs and any
// other scraper relies on):
//
//   - A counter delta between two scrapes of the same live process is
//     cur − prev: the events that happened in the window.
//   - A node RESTART resets cumulative counters to zero, so cur < prev.
//     DeltaSince clamps that window to ZERO — it must never go negative
//     and it must not guess. The events the node served between the
//     restart and the next scrape are forfeited from that one window;
//     every later window reads exactly again. (Reporting cur itself
//     would double-count when a counter legitimately re-accrues past
//     prev within one window; zero is the only always-safe answer.)
//   - A histogram behaves like a vector of counters: if ANY bucket
//     shrank, the node restarted and the whole histogram's window delta
//     is empty, for the same reason.
//   - Gauges are levels, not accumulators: a delta window carries the
//     current value unchanged, and cluster merges must NOT sum them —
//     each gauge keeps per-node identity (summing two nodes' "draining"
//     flags or shard counts is nonsense). MergeSnapshots therefore
//     drops gauges; fleet views report them per node.
package metrics

import "fmt"

// Merge returns the exact union of h and o: bucket counts, total count
// and sum add; min/max take the tighter extremum; quantiles of the
// result equal quantiles of a single histogram that observed both
// sample streams. An empty operand is an identity (its edges are not
// consulted, so a zero-value HistogramSnapshot merges cleanly);
// otherwise both snapshots must share the same bucket layout.
func (h HistogramSnapshot) Merge(o HistogramSnapshot) (HistogramSnapshot, error) {
	if o.Count == 0 {
		return h.clone(), nil
	}
	if h.Count == 0 {
		return o.clone(), nil
	}
	if len(h.Edges) != len(o.Edges) || len(h.Counts) != len(o.Counts) {
		return HistogramSnapshot{}, fmt.Errorf("metrics: merge: bucket layouts differ (%d/%d edges)", len(h.Edges), len(o.Edges))
	}
	for i := range h.Edges {
		if h.Edges[i] != o.Edges[i] {
			return HistogramSnapshot{}, fmt.Errorf("metrics: merge: edge %d differs (%g vs %g)", i, h.Edges[i], o.Edges[i])
		}
	}
	m := HistogramSnapshot{
		Edges:  h.Edges,
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count + o.Count,
		Sum:    h.Sum + o.Sum,
		Min:    h.Min,
		Max:    h.Max,
	}
	for i := range m.Counts {
		m.Counts[i] = h.Counts[i] + o.Counts[i]
	}
	if o.Min < m.Min {
		m.Min = o.Min
	}
	if o.Max > m.Max {
		m.Max = o.Max
	}
	m.Exemplars = mergeExemplars(h.Exemplars, o.Exemplars, len(m.Counts))
	return m, nil
}

// mergeExemplars keeps o's exemplar per bucket when set, else h's — the
// freshest-trace-wins convention ObserveExemplar already follows.
func mergeExemplars(h, o []uint64, n int) []uint64 {
	if h == nil && o == nil {
		return nil
	}
	out := make([]uint64, n)
	copy(out, h)
	for i, e := range o {
		if e != 0 {
			out[i] = e
		}
	}
	return out
}

// clone deep-copies the mutable slices so a merged snapshot never
// aliases its operands (Edges are immutable and stay shared).
func (h HistogramSnapshot) clone() HistogramSnapshot {
	c := h
	if h.Counts != nil {
		c.Counts = append([]uint64(nil), h.Counts...)
	}
	if h.Exemplars != nil {
		c.Exemplars = append([]uint64(nil), h.Exemplars...)
	}
	return c
}

// MergeSnapshots folds per-node snapshots into one cluster view:
// counters sum, histograms merge exactly, and gauges are dropped —
// gauges are levels with per-node identity (see the package comment on
// merge semantics); callers wanting them report them per node. An error
// means two nodes disagree on a histogram's bucket layout, which is a
// deployment skew worth failing loudly on.
func MergeSnapshots(snaps ...Snapshot) (Snapshot, error) {
	m := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			m.Counters[name] += v
		}
		for name, h := range s.Histograms {
			merged, err := m.Histograms[name].Merge(h)
			if err != nil {
				return Snapshot{}, fmt.Errorf("%s: %w", name, err)
			}
			m.Histograms[name] = merged
		}
	}
	return m, nil
}

// DeltaSince returns the window between prev and s (two snapshots of
// the SAME node, prev taken earlier): counters become window increments
// and histograms window histograms, both clamped to empty when the node
// restarted in between (see the package comment for the exact
// semantics); gauges pass through as current levels. Dividing a delta
// counter by the window duration yields the rate the fleet table shows.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, cur := range s.Counters {
		delta := cur - prev.Counters[name]
		if delta < 0 {
			delta = 0 // restart: forfeit the window, never go negative
		}
		d.Counters[name] = delta
	}
	for name, v := range s.Gauges {
		d.Gauges[name] = v
	}
	for name, cur := range s.Histograms {
		d.Histograms[name] = cur.deltaSince(prev.Histograms[name])
	}
	return d
}

// deltaSince subtracts prev's buckets from h's. A restart (any bucket
// or the total shrank, or the layout changed) yields an empty window.
func (h HistogramSnapshot) deltaSince(prev HistogramSnapshot) HistogramSnapshot {
	if prev.Count == 0 {
		return h.clone()
	}
	if len(prev.Counts) != len(h.Counts) || prev.Count > h.Count {
		return HistogramSnapshot{Edges: h.Edges, Counts: make([]uint64, len(h.Counts))}
	}
	d := HistogramSnapshot{
		Edges:  h.Edges,
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count - prev.Count,
		Sum:    h.Sum - prev.Sum,
		// Window extrema are unknowable from cumulative snapshots; the
		// cumulative ones are the tightest safe bounds for quantile
		// interpolation within the window.
		Min: h.Min,
		Max: h.Max,
	}
	for i := range h.Counts {
		if h.Counts[i] < prev.Counts[i] {
			return HistogramSnapshot{Edges: h.Edges, Counts: make([]uint64, len(h.Counts))}
		}
		d.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	if d.Count == 0 {
		return HistogramSnapshot{Edges: h.Edges, Counts: d.Counts}
	}
	return d
}
