// Package metrics is the repository's observability kernel: a
// stdlib-only registry of named counters, gauges and fixed-bucket
// latency histograms, designed so that the instrumented hot paths
// (store puts, wire round trips, engine work units) pay only a handful
// of uncontended atomic operations per event and zero allocations.
//
// The registry is the single source of truth for operational numbers:
// server.Stats() and client.Stats() read the same counters that
// cmd/dmapnode serves on /debug/metrics and cmd/dmapsim prints with
// -metrics, so tests, simulations and live deployments observe one set
// of books.
//
// Concurrency model: metric handles (*Counter, *Gauge, *Histogram) are
// resolved once — typically at construction time of the instrumented
// component — and then used lock-free. Registry lookups take a mutex
// and must stay off hot paths. Snapshot() is safe at any time; it reads
// each atomic individually, so a snapshot is per-metric consistent but
// not a global instant (fine for monitoring).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use, but counters should normally be obtained from a Registry so
// they appear in snapshots.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a float64 level (a value that can go up and down: pool
// sizes, occupancy, configuration). The zero value reads 0.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d (lock-free CAS loop).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry holds named metrics. Names are flat dotted paths
// ("server.op.lookup_us"); a name identifies exactly one metric of
// exactly one kind — re-registering the same name and kind returns the
// existing metric, registering it as a different kind panics (a
// programming error worth failing loudly on).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]func() float64
	hists      map[string]*Histogram
	// hooks run at the start of every Snapshot, keyed by name so
	// re-registration replaces instead of stacking. They refresh
	// metrics whose source is pulled rather than pushed (e.g. the
	// runtime/metrics bridge in internal/obs).
	hooks map[string]func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]func() float64),
		hists:      make(map[string]*Histogram),
		hooks:      make(map[string]func()),
	}
}

// Default is the process-wide registry used by components without a
// natural owner (the evaluation engine, cmd/dmapsim drivers).
var Default = NewRegistry()

func (r *Registry) checkFree(name, kind string) {
	if name == "" {
		panic("metrics: empty metric name")
	}
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as gauge", name))
	}
	if _, ok := r.gaugeFuncs[name]; ok && kind != "gaugefunc" {
		panic(fmt.Sprintf("metrics: %q already registered as gauge func", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as histogram", name))
	}
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers fn as a gauge evaluated at snapshot time (e.g. a
// store's current size). fn must be safe to call from any goroutine.
// Re-registering a name replaces the previous function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkFree(name, "gaugefunc")
	r.gaugeFuncs[name] = fn
}

// OnSnapshot registers fn to run at the start of every Snapshot, before
// any metric is read — the refresh point for metrics whose source must
// be pulled (the runtime/metrics bridge reads the runtime once per
// snapshot here instead of once per gauge). Re-registering a name
// replaces the previous hook, so bridges are idempotent to set up.
//
// fn runs with the registry's lock held: it must only touch
// already-resolved metric handles (Counter.Add, Gauge.Set,
// Histogram.ObserveN — all atomics) and must NOT call back into the
// registry, which would deadlock.
func (r *Registry) OnSnapshot(name string, fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks[name] = fn
}

// Histogram returns the histogram registered under name with the
// default latency buckets (microseconds, see DefaultLatencyEdges),
// creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith is Histogram with explicit bucket upper bounds (strictly
// increasing; nil selects DefaultLatencyEdges). If name already exists
// its edges are kept and edges is ignored.
func (r *Registry) HistogramWith(name string, edges []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h := newHistogram(edges)
	r.hists[name] = h
	return h
}

// Reset zeroes every counter and histogram (gauges are levels and keep
// their last value). Reset is not atomic with respect to concurrent
// writers: events landing during the reset may survive it.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Snapshot captures every metric's current value. Maps are keyed by
// metric name; encoding/json marshals them in sorted order, and
// WriteText sorts explicitly, so two snapshots of identical state
// encode identically.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, fn := range r.hooks {
		fn()
	}
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// sortedKeys returns m's keys in sorted order (text-encoding helper).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
