package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// The /debug/metrics handler contract scrapers rely on: 200, an
// explicit Content-Type per encoding, and a JSON body that round-trips
// back into a Snapshot identical to the source registry's.
func TestHandlerText(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.lookups").Add(3)
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("Content-Type %q, want text/plain; charset=utf-8", ct)
	}
	if !strings.Contains(rec.Body.String(), "counter server.lookups 3") {
		t.Errorf("text body missing counter line:\n%s", rec.Body.String())
	}
}

func TestHandlerJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.lookups").Add(7)
	r.Gauge("server.inflight").Set(2)
	r.Histogram("server.op.lookup_us").Observe(42)

	for _, req := range []*httptest.ResponseRecorder{
		serveJSON(t, r, "/debug/metrics?format=json", ""),
		serveJSON(t, r, "/debug/metrics", "application/json"),
	} {
		if ct := req.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type %q, want application/json", ct)
		}
		var snap Snapshot
		if err := json.Unmarshal(req.Body.Bytes(), &snap); err != nil {
			t.Fatalf("JSON body does not decode as a Snapshot: %v", err)
		}
		if snap.Counters["server.lookups"] != 7 {
			t.Errorf("round-tripped counter = %d, want 7", snap.Counters["server.lookups"])
		}
		if snap.Gauges["server.inflight"] != 2 {
			t.Errorf("round-tripped gauge = %g, want 2", snap.Gauges["server.inflight"])
		}
		if h := snap.Histograms["server.op.lookup_us"]; h.Count != 1 || h.Min != 42 {
			t.Errorf("round-tripped histogram = count %d min %g, want 1/42", h.Count, h.Min)
		}
	}
}

func serveJSON(t *testing.T, r *Registry, url, accept string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	return rec
}
