// Snapshot types and the two stable encodings: a line-oriented text
// format (what /debug/metrics and dmapsim -metrics print) and JSON
// (what tooling consumes). Both are deterministic — names sorted, fixed
// float formatting — so snapshot equality is textual equality.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"dmap/internal/stats"
)

// Snapshot is a point-in-time copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// HistogramSnapshot is a point-in-time copy of one histogram.
type HistogramSnapshot struct {
	// Count is the total number of samples (sum over Counts).
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum float64 `json:"sum"`
	// Min and Max are the exact observed extrema (0 when empty).
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Edges are the bucket upper bounds; Counts has len(Edges)+1
	// entries, the last being the overflow bucket (> Edges[last]).
	Edges  []float64 `json:"edges"`
	Counts []uint64  `json:"counts"`
	// Exemplars, when present, has one entry per bucket: the last trace
	// ID observed into that bucket (0 = none). JSON-only; the text
	// encoding is unchanged by exemplars.
	Exemplars []uint64 `json:"exemplars,omitempty"`
}

// Mean returns Sum/Count, or 0 when empty.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the p-th percentile (p in [0,100]) by locating the
// bucket holding the target rank and interpolating linearly inside it,
// clamped to the exact observed [Min, Max]. Returns 0 when empty.
func (h HistogramSnapshot) Quantile(p float64) float64 {
	if h.Count == 0 || p < 0 || p > 100 {
		return 0
	}
	rank := p / 100 * float64(h.Count)
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo, hi := h.bucketBounds(i)
			frac := (rank - cum) / float64(c)
			v := lo + frac*(hi-lo)
			return clamp(v, h.Min, h.Max)
		}
		cum = next
	}
	return h.Max
}

// bucketBounds returns bucket i's [lower, upper) interval, tightened by
// the observed extrema at the ends (the overflow bucket has no upper
// edge, the first bucket no lower edge).
func (h HistogramSnapshot) bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		lo = h.Min
	} else {
		lo = h.Edges[i-1]
	}
	if i < len(h.Edges) {
		hi = h.Edges[i]
	} else {
		hi = h.Max
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Stats converts the non-empty buckets into a stats.Histogram so the
// simulator's existing ASCII renderer (internal/stats) can draw live
// metrics the same way it draws the paper's CDF figures. Returns nil
// when empty.
func (h HistogramSnapshot) Stats() *stats.Histogram {
	if h.Count == 0 {
		return nil
	}
	// Trim leading/trailing empty buckets so the render spans only the
	// observed range.
	first, last := -1, -1
	for i, c := range h.Counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	edges := make([]float64, 0, last-first+2)
	counts := make([]int, 0, last-first+1)
	// Outer bounds must keep the edge sequence strictly increasing even
	// when Min/Max coincide with a bucket edge.
	var lower float64
	if first == 0 {
		lower = math.Min(h.Min, h.Edges[0])
		if lower >= h.Edges[0] {
			lower = h.Edges[0] - 1
		}
	} else {
		lower = h.Edges[first-1]
	}
	edges = append(edges, lower)
	for i := first; i <= last; i++ {
		var hi float64
		if i < len(h.Edges) {
			hi = h.Edges[i]
		} else {
			hi = math.Max(h.Max, h.Edges[len(h.Edges)-1]+1)
		}
		edges = append(edges, hi)
		counts = append(counts, int(h.Counts[i]))
	}
	sh, err := stats.NewHistogramFromBuckets(edges, counts)
	if err != nil {
		return nil
	}
	return sh
}

// WriteText writes the deterministic line encoding:
//
//	counter <name> <value>
//	gauge <name> <value>
//	hist <name> count=<n> sum=<s> min=<m> mean=<m> p50=<v> p95=<v> p99=<v> p999=<v> max=<m>
//
// Lines are grouped by kind and sorted by name.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		if _, err := fmt.Fprintf(w, "counter %s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		if _, err := fmt.Fprintf(w, "gauge %s %g\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w,
			"hist %s count=%d sum=%g min=%g mean=%g p50=%g p95=%g p99=%g p999=%g max=%g\n",
			name, h.Count, h.Sum, h.Min, h.Mean(),
			h.Quantile(50), h.Quantile(95), h.Quantile(99), h.Quantile(99.9), h.Max); err != nil {
			return err
		}
	}
	return nil
}

// Text returns the WriteText encoding as a string.
func (s Snapshot) Text() string {
	var sb strings.Builder
	_ = s.WriteText(&sb)
	return sb.String()
}

// JSON returns the snapshot as indented JSON (map keys sorted by
// encoding/json, so the output is deterministic).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
