package analytical

import (
	"math"
	"testing"
)

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil, 0, 0); err == nil {
		t.Error("empty fractions should fail")
	}
	if _, err := NewModel([]float64{0, 0}, 0, 0); err == nil {
		t.Error("all-zero fractions should fail")
	}
	if _, err := NewModel([]float64{0.5, -0.1}, 0, 0); err == nil {
		t.Error("negative fraction should fail")
	}
	if _, err := NewModel([]float64{math.NaN()}, 0, 0); err == nil {
		t.Error("NaN fraction should fail")
	}
}

func TestNewModelNormalizes(t *testing.T) {
	m, err := NewModel([]float64{2, 2}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fractions[0] != 0.5 || m.Fractions[1] != 0.5 {
		t.Errorf("fractions = %v", m.Fractions)
	}
	if m.C0 != DefaultC0 || m.C1 != DefaultC1 {
		t.Errorf("defaults not applied: c0=%v c1=%v", m.C0, m.C1)
	}
}

func TestExpectedMinDistanceSingleLayer(t *testing.T) {
	// Everything in layer 0 (a clique): d(s,t) ≤ 1 always, and the bound
	// gives E ≤ Σ_l (1 − q_l) with q_1 = 1 (p_{0,1} = 0 since r has no
	// mass at index ≥ 1): E < 1.
	m, err := NewModel([]float64{1}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	e, err := m.ExpectedMinDistance(1)
	if err != nil {
		t.Fatal(err)
	}
	if e > 1 {
		t.Errorf("clique bound = %v, want ≤ 1", e)
	}
}

func TestExpectedMinDistanceDecreasesInK(t *testing.T) {
	m, err := ScenarioModel(PresentInternet)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for k := 1; k <= 20; k++ {
		e, err := m.ExpectedMinDistance(k)
		if err != nil {
			t.Fatal(err)
		}
		if e > prev+1e-12 {
			t.Fatalf("bound increased at K=%d: %v > %v", k, e, prev)
		}
		prev = e
	}
}

func TestDiminishingReturns(t *testing.T) {
	// Figure 7's second observation: the marginal gain of extra replicas
	// shrinks.
	m, err := ScenarioModel(PresentInternet)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := m.Sweep(20)
	if err != nil {
		t.Fatal(err)
	}
	gain12 := vals[0] - vals[1]
	gain1920 := vals[18] - vals[19]
	if gain1920 > gain12/4 {
		t.Errorf("no diminishing returns: Δ(1→2)=%v, Δ(19→20)=%v", gain12, gain1920)
	}
}

func TestTopologyEvolutionLowersBound(t *testing.T) {
	// Figure 7's first observation: flatter future topologies give lower
	// response-time bounds at every K.
	present, _ := ScenarioModel(PresentInternet)
	medium, _ := ScenarioModel(MediumTermInternet)
	long, _ := ScenarioModel(LongTermInternet)
	for k := 1; k <= 20; k++ {
		p, _ := present.ResponseTimeBoundMs(k)
		m, _ := medium.ResponseTimeBoundMs(k)
		l, _ := long.ResponseTimeBoundMs(k)
		if !(l < m && m < p) {
			t.Fatalf("K=%d: want long(%v) < medium(%v) < present(%v)", k, l, m, p)
		}
	}
}

func TestBoundMagnitudeMatchesFigure7(t *testing.T) {
	// The paper's Figure 7 y-axis spans ≈50–100 ms across scenarios and K.
	for _, s := range []Scenario{PresentInternet, MediumTermInternet, LongTermInternet} {
		m, err := ScenarioModel(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5, 20} {
			v, err := m.ResponseTimeBoundMs(k)
			if err != nil {
				t.Fatal(err)
			}
			if v < 30 || v > 130 {
				t.Errorf("%v K=%d bound = %.1f ms, outside Figure 7's plausible range", s, k, v)
			}
		}
	}
}

func TestSweepAndValidation(t *testing.T) {
	m, _ := ScenarioModel(LongTermInternet)
	if _, err := m.Sweep(0); err == nil {
		t.Error("maxK=0 should fail")
	}
	if _, err := m.ExpectedMinDistance(0); err == nil {
		t.Error("K=0 should fail")
	}
	vals, err := m.Sweep(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 5 {
		t.Errorf("Sweep length = %d", len(vals))
	}
}

func TestScenarioString(t *testing.T) {
	if PresentInternet.String() == "" || Scenario(99).String() == "" {
		t.Error("scenario names")
	}
	if _, err := ScenarioModel(Scenario(99)); err == nil {
		t.Error("unknown scenario should fail")
	}
}

func TestPjlProperties(t *testing.T) {
	m, _ := ScenarioModel(PresentInternet)
	n := m.NumLayers()
	for j := 0; j < n; j++ {
		prev := 2.0
		for l := 1; l <= 2*n-1; l++ {
			p := m.pjl(j, l)
			if p < 0 || p > 1 {
				t.Fatalf("p[%d,%d] = %v out of [0,1]", j, l, p)
			}
			if p > prev+1e-12 {
				t.Fatalf("p[%d,%d] increased in l", j, l)
			}
			prev = p
		}
	}
}
