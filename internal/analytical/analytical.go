// Package analytical implements the §V upper bound on DMap query response
// time over the Jellyfish model of the Internet.
//
// The Internet PoP topology is summarized by its layer fractions r_j
// (Layer(j) = Shell-j ∪ Hang-(j−1)); a query source s and the K hashed
// destinations t_1..t_K are placed in layers at random with those
// probabilities. With no peer links inside layers, d(s,t) ≤ j_s + j_t + 1,
// which yields (Eq. 2–3):
//
//	P(d(s,t_i) > l | s ∈ Layer(j)) ≤ p_{j,l} = r_{l−j} + r_{l+1−j} + …
//	q_l = Σ_j r_j (1 − p_{j,l}^K)
//	E[min_i d(s,t_i)] < Σ_{l=1}^{2N−1} (1 − q_l)
//	E[τ(s,G)] < c0 · E[min_i d(s,t_i)] + c1
//
// with the least-squares constants c0 = 10.6, c1 = 8.3 measured in the
// paper.
package analytical

import (
	"fmt"
	"math"
)

// Paper's measured linear-fit constants (ms per hop, ms).
const (
	DefaultC0 = 10.6
	DefaultC1 = 8.3
)

// Model is a Jellyfish layer-fraction summary of an internetwork.
type Model struct {
	// Fractions[j] is r_j; they must be non-negative and sum to 1.
	Fractions []float64
	// C0, C1 translate expected hop distance to milliseconds.
	C0, C1 float64
}

// NewModel validates and normalizes layer fractions. c0/c1 ≤ 0 select the
// paper defaults.
func NewModel(fractions []float64, c0, c1 float64) (*Model, error) {
	if len(fractions) == 0 {
		return nil, fmt.Errorf("analytical: no layers")
	}
	var sum float64
	for j, r := range fractions {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("analytical: bad fraction %g at layer %d", r, j)
		}
		sum += r
	}
	if sum <= 0 {
		return nil, fmt.Errorf("analytical: all fractions zero")
	}
	norm := make([]float64, len(fractions))
	for j, r := range fractions {
		norm[j] = r / sum
	}
	if c0 <= 0 {
		c0 = DefaultC0
	}
	if c1 <= 0 {
		c1 = DefaultC1
	}
	return &Model{Fractions: norm, C0: c0, C1: c1}, nil
}

// NumLayers returns N.
func (m *Model) NumLayers() int { return len(m.Fractions) }

// pjl computes p_{j,l} = Σ_{i ≥ l−j} r_i (zero outside the layer range),
// capped at 1 (it is a probability bound).
func (m *Model) pjl(j, l int) float64 {
	start := l - j
	if start < 0 {
		start = 0
	}
	var p float64
	for i := start; i < len(m.Fractions); i++ {
		p += m.Fractions[i]
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ql computes q_l = Σ_j r_j (1 − p_{j,l}^K), the lower bound on
// P(min_i d(s,t_i) ≤ l).
func (m *Model) ql(l, k int) float64 {
	var q float64
	for j, r := range m.Fractions {
		q += r * (1 - math.Pow(m.pjl(j, l), float64(k)))
	}
	return q
}

// ExpectedMinDistance bounds E[min_{1≤i≤K} d(s, t_i)] from above
// (Eq. 3's inner sum). k must be positive.
func (m *Model) ExpectedMinDistance(k int) (float64, error) {
	if k <= 0 {
		return 0, fmt.Errorf("analytical: K must be positive, got %d", k)
	}
	n := len(m.Fractions)
	var e float64
	for l := 1; l <= 2*n-1; l++ {
		e += 1 - m.ql(l, k)
	}
	return e, nil
}

// ResponseTimeBoundMs bounds the mean round-trip query response time in
// milliseconds: c0·E[min d] + c1.
func (m *Model) ResponseTimeBoundMs(k int) (float64, error) {
	e, err := m.ExpectedMinDistance(k)
	if err != nil {
		return 0, err
	}
	return m.C0*e + m.C1, nil
}

// Sweep evaluates the bound for K = 1..maxK (Figure 7's x-axis).
func (m *Model) Sweep(maxK int) ([]float64, error) {
	if maxK <= 0 {
		return nil, fmt.Errorf("analytical: maxK must be positive, got %d", maxK)
	}
	out := make([]float64, maxK)
	for k := 1; k <= maxK; k++ {
		v, err := m.ResponseTimeBoundMs(k)
		if err != nil {
			return nil, err
		}
		out[k-1] = v
	}
	return out, nil
}

// Scenario names one of the paper's three Internet-evolution models.
type Scenario int

// Figure 7's scenarios.
const (
	// PresentInternet reflects the iPlane measurement: 193,376 PoPs in 8
	// layers with over 60% of nodes in layers 3 and 4.
	PresentInternet Scenario = iota + 1
	// MediumTermInternet extrapolates 5–10 years: 20% more nodes in 6
	// layers (the Internet grows and flattens, per CAIDA trends).
	MediumTermInternet
	// LongTermInternet extrapolates 25–30 years: double the nodes in 4
	// layers.
	LongTermInternet
)

// String names the scenario.
func (s Scenario) String() string {
	switch s {
	case PresentInternet:
		return "present-day Internet"
	case MediumTermInternet:
		return "medium-term future Internet"
	case LongTermInternet:
		return "long-term future Internet"
	default:
		return fmt.Sprintf("Scenario(%d)", int(s))
	}
}

// ScenarioModel returns the layer fractions for a Figure 7 scenario with
// the paper's c0, c1. The present-day fractions follow the iPlane shape
// (layers 3–4 hold >60% of nodes); the future models redistribute mass
// into fewer layers as the topology flattens.
func ScenarioModel(s Scenario) (*Model, error) {
	switch s {
	case PresentInternet:
		return NewModel([]float64{0.0001, 0.008, 0.115, 0.33, 0.31, 0.165, 0.06, 0.012}, 0, 0)
	case MediumTermInternet:
		return NewModel([]float64{0.0001, 0.012, 0.21, 0.42, 0.27, 0.088}, 0, 0)
	case LongTermInternet:
		return NewModel([]float64{0.0002, 0.06, 0.56, 0.38}, 0, 0)
	default:
		return nil, fmt.Errorf("analytical: unknown scenario %d", s)
	}
}
