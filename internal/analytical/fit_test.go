package analytical

import (
	"math"
	"testing"
)

func TestFitConstantsExactLine(t *testing.T) {
	// y = 10.6 x + 8.3 exactly.
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 10.6*x + 8.3
	}
	c0, c1, err := FitConstants(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c0-10.6) > 1e-9 || math.Abs(c1-8.3) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (10.6, 8.3)", c0, c1)
	}
}

func TestFitConstantsNoisy(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6}
	ys := []float64{18.5, 29.7, 40.0, 50.9, 61.2, 72.1} // ≈ 10.7x + 8
	c0, c1, err := FitConstants(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if c0 < 10 || c0 > 11.5 {
		t.Errorf("c0 = %v", c0)
	}
	if c1 < 6 || c1 > 10 {
		t.Errorf("c1 = %v", c1)
	}
}

func TestFitConstantsValidation(t *testing.T) {
	if _, _, err := FitConstants([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample should fail")
	}
	if _, _, err := FitConstants([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, _, err := FitConstants([]float64{3, 3}, []float64{1, 2}); err == nil {
		t.Error("degenerate x should fail")
	}
}

func TestFitFromSweepRecoversConstants(t *testing.T) {
	// Generate "measurements" from the model itself with known c0, c1;
	// the fit must recover them exactly (the bound is linear in E[min d]).
	m, err := ScenarioModel(PresentInternet)
	if err != nil {
		t.Fatal(err)
	}
	measured := make([]float64, 10)
	for k := 1; k <= 10; k++ {
		v, err := m.ResponseTimeBoundMs(k)
		if err != nil {
			t.Fatal(err)
		}
		measured[k-1] = v
	}
	c0, c1, err := m.FitFromSweep(measured)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c0-DefaultC0) > 1e-6 || math.Abs(c1-DefaultC1) > 1e-6 {
		t.Errorf("recovered (%v, %v), want (%v, %v)", c0, c1, DefaultC0, DefaultC1)
	}
	if _, _, err := m.FitFromSweep([]float64{1}); err == nil {
		t.Error("single point should fail")
	}
}
