package analytical

import "fmt"

// FitConstants recovers (c0, c1) by ordinary least squares from measured
// (expected-min-hop-distance, round-trip-latency-ms) pairs, the procedure
// the paper used to obtain its c0 = 10.6, c1 = 8.3 ("the measured least
// squared error values"). It lets a deployment recalibrate the §V bound
// against its own topology.
func FitConstants(distances, latenciesMs []float64) (c0, c1 float64, err error) {
	n := len(distances)
	if n != len(latenciesMs) {
		return 0, 0, fmt.Errorf("analytical: length mismatch %d vs %d", n, len(latenciesMs))
	}
	if n < 2 {
		return 0, 0, fmt.Errorf("analytical: need at least 2 samples, got %d", n)
	}
	var sx, sy, sxx, sxy float64
	for i := 0; i < n; i++ {
		x, y := distances[i], latenciesMs[i]
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := float64(n)*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("analytical: degenerate fit (all distances equal)")
	}
	c0 = (float64(n)*sxy - sx*sy) / den
	c1 = (sy - c0*sx) / float64(n)
	return c0, c1, nil
}

// FitFromSweep fits (c0, c1) by pairing the model's expected minimum
// distances for K = 1..len(measuredMs) with measured mean RTTs: the
// self-calibration loop closed by cmd/dmapsim's ablation-k experiment.
func (m *Model) FitFromSweep(measuredMs []float64) (c0, c1 float64, err error) {
	if len(measuredMs) < 2 {
		return 0, 0, fmt.Errorf("analytical: need at least 2 measured points")
	}
	dists := make([]float64, len(measuredMs))
	for k := 1; k <= len(measuredMs); k++ {
		d, err := m.ExpectedMinDistance(k)
		if err != nil {
			return 0, 0, err
		}
		dists[k-1] = d
	}
	return FitConstants(dists, measuredMs)
}
