package obs

import (
	"net"
	"testing"
	"time"

	"dmap/internal/metrics"
	"dmap/internal/server"
	"dmap/internal/store"
	"dmap/internal/wire"
)

func startProbeNode(t *testing.T) (*server.Node, string) {
	t.Helper()
	n := server.New(nil, nil)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n, addr
}

func TestProberHealthyCluster(t *testing.T) {
	_, a := startProbeNode(t)
	_, b := startProbeNode(t)
	reg := metrics.NewRegistry()
	p := NewProber(ProberConfig{
		Targets:     []ProbeTarget{{Name: "a", Addr: a}, {Name: "b", Addr: b}},
		Sentinels:   2,
		Timeout:     2 * time.Second,
		BaseVersion: 100,
		Registry:    reg,
	})
	defer p.Close()

	var st ProbeStatus
	for i := 0; i < 3; i++ {
		st = p.Round()
	}
	if st.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", st.Rounds)
	}
	for _, ts := range st.Targets {
		if !ts.WriteOK || !ts.ReadOK || ts.Stale || ts.Lag != 0 {
			t.Errorf("healthy target status %+v", ts)
		}
	}
	for _, slo := range st.SLOs {
		if slo.Bad != 0 || slo.Breaching {
			t.Errorf("healthy cluster SLO %+v", slo)
		}
	}
	if st.Breaching() {
		t.Error("healthy cluster breaching")
	}
	snap := reg.Snapshot()
	// 2 targets × 2 sentinels × (write+read) × 3 rounds = 24 ops.
	if snap.Counters["probe.ops"] != 24 {
		t.Errorf("probe.ops = %d, want 24", snap.Counters["probe.ops"])
	}
	if snap.Counters["probe.failures"] != 0 {
		t.Errorf("probe.failures = %d, want 0", snap.Counters["probe.failures"])
	}
	if snap.Histograms["probe.op_us"].Count == 0 {
		t.Error("probe latency histogram empty")
	}
}

func TestProberDetectsDownNode(t *testing.T) {
	na, a := startProbeNode(t)
	_, b := startProbeNode(t)
	p := NewProber(ProberConfig{
		Targets:      []ProbeTarget{{Name: "a", Addr: a}, {Name: "b", Addr: b}},
		Sentinels:    1,
		Timeout:      500 * time.Millisecond,
		BaseVersion:  100,
		Availability: SLOConfig{Objective: 0.9, Window: 8, ShortWindow: 2, FastBurn: 2, SlowBurn: 2},
	})
	defer p.Close()

	p.Round()
	na.Close() // node a goes dark
	st := p.Round()

	var down, up *ProbeTargetStatus
	for i := range st.Targets {
		switch st.Targets[i].Name {
		case "a":
			down = &st.Targets[i]
		case "b":
			up = &st.Targets[i]
		}
	}
	if down.WriteOK && down.ReadOK {
		t.Fatalf("dead node probed OK: %+v", down)
	}
	if down.Err == "" {
		t.Error("dead node has no error")
	}
	if !up.WriteOK || !up.ReadOK {
		t.Errorf("live node affected by dead peer: %+v", up)
	}
	if !st.Breaching() {
		t.Error("availability breach not flagged with half the fleet dark")
	}
}

// TestProberSeesRepair verifies the convergence signal: a sentinel
// version the prober never wrote to a target shows up there (here
// injected directly, standing in for anti-entropy delivery) and the
// prober reports it as repaired rather than as its own write.
func TestProberSeesRepair(t *testing.T) {
	_, a := startProbeNode(t)
	nb, b := startProbeNode(t)
	p := NewProber(ProberConfig{
		Targets:     []ProbeTarget{{Name: "a", Addr: a}, {Name: "b", Addr: b}},
		Sentinels:   1,
		Timeout:     2 * time.Second,
		BaseVersion: 100,
	})
	defer p.Close()
	p.Round()

	// Deliver a NEWER sentinel version to b out of band.
	e := p.sentinelEntry(p.sentinels[0])
	e.Version = p.version + 50
	if _, err := nb.Store().Put(e); err != nil {
		t.Fatal(err)
	}

	st := p.Round()
	var bs *ProbeTargetStatus
	for i := range st.Targets {
		if st.Targets[i].Name == "b" {
			bs = &st.Targets[i]
		}
	}
	if !bs.Repaired {
		t.Fatalf("out-of-band version not reported as repaired: %+v", bs)
	}
	if st.Repaired == 0 {
		t.Error("repair counter not incremented")
	}
	// The newer version is FRESHER than the prober's own writes, so it
	// must not count as staleness.
	if bs.Stale {
		t.Errorf("fresher-than-acked read flagged stale: %+v", bs)
	}
}

// TestProberStaleRead verifies staleness accounting: a target answering
// with an old sentinel version breaches the freshness objective.
func TestProberStaleRead(t *testing.T) {
	_, a := startProbeNode(t)
	p := NewProber(ProberConfig{
		Targets:     []ProbeTarget{{Name: "a", Addr: a}},
		Sentinels:   1,
		Timeout:     2 * time.Second,
		BaseVersion: 100,
		Staleness:   SLOConfig{Objective: 0.9, Window: 8, ShortWindow: 1, FastBurn: 2, SlowBurn: 2},
	})
	defer p.Close()
	p.Round()

	// Simulate a partition-and-heal history: the prober believes a
	// newer version was acked somewhere, but the target still answers
	// the old one.
	p.maxAcked[0] = p.version + 10

	st := p.Round()
	ts := st.Targets[0]
	// The write pass of this round re-acks version+1 < maxAcked, so the
	// read observes a lag of maxAcked − observed.
	if !ts.Stale || ts.Lag == 0 {
		t.Fatalf("stale read not flagged: %+v", ts)
	}
	for _, slo := range st.SLOs {
		if slo.Name == "staleness" && slo.Bad == 0 {
			t.Errorf("staleness SLO saw no bad probes: %+v", slo)
		}
	}
}

// TestProberTalksV1 pins the prober to the plain v1 framing a minimal
// node understands — no hello, no feature negotiation.
func TestProberTalksV1(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		st := store.New()
		for {
			mt, payload, err := wire.ReadFrame(conn)
			if err != nil {
				return
			}
			switch mt {
			case wire.MsgInsert:
				e, _, _ := wire.DecodeEntry(payload)
				st.Put(e)
				wire.WriteFrame(conn, wire.MsgInsertAck, nil)
			case wire.MsgLookup:
				g, _, _ := wire.DecodeGUID(payload)
				e, ok := st.Get(g)
				resp, _ := wire.AppendLookupResp(nil, wire.LookupResp{Found: ok, Entry: e})
				wire.WriteFrame(conn, wire.MsgLookupResp, resp)
			default:
				wire.WriteFrame(conn, wire.MsgError, wire.AppendError(nil, "unexpected"))
				return
			}
		}
	}()

	p := NewProber(ProberConfig{
		Targets:     []ProbeTarget{{Name: "v1", Addr: ln.Addr().String()}},
		Sentinels:   1,
		Timeout:     2 * time.Second,
		BaseVersion: 7,
	})
	st := p.Round()
	p.Close()
	if ts := st.Targets[0]; !ts.WriteOK || !ts.ReadOK || ts.Stale {
		t.Fatalf("v1-only node not probed cleanly: %+v", ts)
	}
	<-done
}
