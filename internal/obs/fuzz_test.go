package obs

import (
	"bytes"
	"testing"

	"dmap/internal/metrics"
)

// FuzzDecodeFleetSnapshot hammers the collector's trust boundary: the
// strict snapshot decoder must never panic on hostile bytes, and every
// accepted input must reach the canonical-encoding fixed point —
// decode → encode → decode → encode yields byte-identical output, and
// the re-decoded snapshot merges cleanly (the invariants the validator
// promises are exactly the ones Merge relies on).
func FuzzDecodeFleetSnapshot(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"counters":{"server.lookups":3},"gauges":{"x":1.5},"histograms":{}}`))
	f.Add([]byte(`{"counters":{},"gauges":{},"histograms":{"h":{"count":2,"sum":8,"min":3,"max":5,"edges":[4],"counts":[1,1]}}}`))
	f.Add([]byte(`{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":2,"min":2,"max":2,"edges":[1,2,4],"counts":[0,1,0,0],"exemplars":[0,7,0,0]}}}`))
	r := metrics.NewRegistry()
	r.Counter("c").Add(9)
	r.Histogram("h").Observe(17)
	if seed, err := r.Snapshot().JSON(); err == nil {
		f.Add(seed)
	}
	f.Add([]byte(`{"histograms":{"h":{"count":5,"sum":1,"edges":[1],"counts":[1,1]}}}`))
	f.Add([]byte(`{"unknown":true}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		enc1, err := EncodeSnapshot(s)
		if err != nil {
			t.Fatalf("accepted snapshot does not encode: %v", err)
		}
		s2, err := DecodeSnapshot(enc1)
		if err != nil {
			t.Fatalf("canonical encoding rejected by own decoder: %v\n%s", err, enc1)
		}
		enc2, err := EncodeSnapshot(s2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical re-encode not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
		// A validated snapshot must be mergeable with itself: merging
		// doubles every counter and histogram without error.
		m, err := metrics.MergeSnapshots(s2, s2)
		if err != nil {
			t.Fatalf("validated snapshot fails to merge with itself: %v", err)
		}
		for name, h := range s2.Histograms {
			if m.Histograms[name].Count != 2*h.Count {
				t.Fatalf("self-merge of %q: count %d, want %d", name, m.Histograms[name].Count, 2*h.Count)
			}
		}
	})
}
