// Package obs is the fleet telemetry plane on top of internal/metrics:
// a collector that scrapes every node's /debug/metrics JSON and folds
// the per-node snapshots into exact cluster views (internal/metrics
// merging), a bridge that surfaces Go runtime health in the same
// registry as the serving metrics, and a black-box SLO prober that
// measures what a client would actually see — availability,
// staleness-after-write (the paper's §III-D version lag) and repair
// convergence — from outside the node processes.
//
// Everything here is deliberately scraper-shaped rather than
// push-shaped: nodes stay passive (they already serve /debug/metrics),
// and the fleet plane owns all cross-node state, so it can run beside
// the cluster, in a test, or inside the deterministic simulator without
// the nodes knowing.
package obs

import "fmt"

// SLOConfig parameterizes one service-level objective tracked over a
// sliding window of probe rounds. Windows are counted in ROUNDS, not
// wall time, so the same tracker is exact under the real prober (one
// round per interval tick) and under simulated virtual time.
type SLOConfig struct {
	// Name labels the objective in reports ("availability",
	// "staleness").
	Name string
	// Objective is the target good fraction in (0,1), e.g. 0.999. The
	// error budget is 1−Objective.
	Objective float64
	// Window is the long-window length in rounds (≥1). Burn rates are
	// measured against this window and the short window below.
	Window int
	// ShortWindow is the fast-burn window in rounds (≥1, ≤ Window). A
	// fresh outage shows up here first.
	ShortWindow int
	// FastBurn and SlowBurn are the burn-rate thresholds over the short
	// and long windows; the SLO is breaching when EITHER window burns
	// faster than its threshold. The classic multiwindow values are
	// 14.4 (fast) and 6 (slow) for a 99.9% objective.
	FastBurn float64
	SlowBurn float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Objective <= 0 || c.Objective >= 1 {
		c.Objective = 0.999
	}
	if c.Window <= 0 {
		c.Window = 60
	}
	if c.ShortWindow <= 0 {
		c.ShortWindow = 5
	}
	if c.ShortWindow > c.Window {
		c.ShortWindow = c.Window
	}
	if c.FastBurn <= 0 {
		c.FastBurn = 14.4
	}
	if c.SlowBurn <= 0 {
		c.SlowBurn = 6
	}
	return c
}

// SLOTracker accumulates good/bad probe outcomes into per-round ring
// buckets and answers burn-rate questions over the configured windows.
// It is deterministic — rounds advance only via Advance(), never via
// the clock — and not safe for concurrent use (the prober owns it).
type SLOTracker struct {
	cfg  SLOConfig
	good []uint64
	bad  []uint64
	cur  int    // index of the current (open) round bucket
	n    uint64 // rounds ever opened (min 1 after construction)
}

// NewSLOTracker returns a tracker with one open round bucket.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	return &SLOTracker{
		cfg:  cfg,
		good: make([]uint64, cfg.Window),
		bad:  make([]uint64, cfg.Window),
		n:    1,
	}
}

// Config returns the tracker's (defaulted) configuration.
func (t *SLOTracker) Config() SLOConfig { return t.cfg }

// Observe records one probe outcome into the current round.
func (t *SLOTracker) Observe(ok bool) {
	if ok {
		t.good[t.cur]++
	} else {
		t.bad[t.cur]++
	}
}

// Advance closes the current round and opens the next. Call once per
// probe round, after its observations.
func (t *SLOTracker) Advance() {
	t.cur = (t.cur + 1) % len(t.good)
	t.good[t.cur] = 0
	t.bad[t.cur] = 0
	t.n++
}

// Totals returns the good/bad counts over the last window rounds
// (including the current one), clamped to the rounds that exist.
func (t *SLOTracker) Totals(window int) (good, bad uint64) {
	if window <= 0 || uint64(window) > t.n {
		window = int(min64(uint64(len(t.good)), t.n))
	}
	if window > len(t.good) {
		window = len(t.good)
	}
	for i := 0; i < window; i++ {
		idx := (t.cur - i + len(t.good)) % len(t.good)
		good += t.good[idx]
		bad += t.bad[idx]
	}
	return good, bad
}

// BurnRate returns the error-budget burn rate over the last window
// rounds: (bad / total) / (1 − Objective). 1.0 means the budget is
// being consumed exactly at the rate that exhausts it over the SLO
// period; higher is faster. Returns 0 when the window saw no probes.
func (t *SLOTracker) BurnRate(window int) float64 {
	good, bad := t.Totals(window)
	total := good + bad
	if total == 0 {
		return 0
	}
	errRate := float64(bad) / float64(total)
	budget := 1 - t.cfg.Objective
	return errRate / budget
}

// Breaching reports whether either burn window is above its threshold.
func (t *SLOTracker) Breaching() bool {
	return t.BurnRate(t.cfg.ShortWindow) >= t.cfg.FastBurn ||
		t.BurnRate(t.cfg.Window) >= t.cfg.SlowBurn
}

// Status summarizes the tracker for reports.
func (t *SLOTracker) Status() SLOStatus {
	good, bad := t.Totals(t.cfg.Window)
	return SLOStatus{
		Name:      t.cfg.Name,
		Objective: t.cfg.Objective,
		Good:      good,
		Bad:       bad,
		FastBurn:  t.BurnRate(t.cfg.ShortWindow),
		SlowBurn:  t.BurnRate(t.cfg.Window),
		Breaching: t.Breaching(),
	}
}

// SLOStatus is the JSON-facing summary of one objective.
type SLOStatus struct {
	Name      string  `json:"name"`
	Objective float64 `json:"objective"`
	Good      uint64  `json:"good"`
	Bad       uint64  `json:"bad"`
	FastBurn  float64 `json:"fast_burn"`
	SlowBurn  float64 `json:"slow_burn"`
	Breaching bool    `json:"breaching"`
}

func (s SLOStatus) String() string {
	state := "ok"
	if s.Breaching {
		state = "BREACH"
	}
	return fmt.Sprintf("%s %s good=%d bad=%d fast=%.2fx slow=%.2fx",
		s.Name, state, s.Good, s.Bad, s.FastBurn, s.SlowBurn)
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
