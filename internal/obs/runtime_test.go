package obs

import (
	"runtime"
	"testing"

	"dmap/internal/metrics"
)

func TestRegisterRuntime(t *testing.T) {
	reg := metrics.NewRegistry()
	RegisterRuntime(reg)
	RegisterRuntime(reg) // idempotent: hook replaces, metrics reuse

	runtime.GC() // guarantee at least one GC cycle and pause after priming
	s := reg.Snapshot()

	if v := s.Gauges[MetricHeapBytes]; v <= 0 {
		t.Errorf("%s = %g, want > 0", MetricHeapBytes, v)
	}
	if v := s.Gauges[MetricGoroutines]; v < 1 {
		t.Errorf("%s = %g, want ≥ 1", MetricGoroutines, v)
	}
	if v := s.Counters[MetricGCCycles]; v < 1 {
		t.Errorf("%s = %d, want ≥ 1 after runtime.GC", MetricGCCycles, v)
	}
	pause := s.Histograms[MetricGCPauseUs]
	if pause.Count < 1 {
		t.Errorf("%s empty after runtime.GC", MetricGCPauseUs)
	}
	if pause.Count > 0 && (pause.Min < 0 || pause.Max > 60e6) {
		t.Errorf("GC pause extrema [%g,%g]µs implausible", pause.Min, pause.Max)
	}
	if _, ok := s.Histograms[MetricSchedLatUs]; !ok {
		t.Errorf("%s not registered", MetricSchedLatUs)
	}

	// The bridge must be cumulative: a second snapshot only adds new
	// events, it does not replay history.
	c1 := s.Histograms[MetricGCPauseUs].Count
	runtime.GC()
	s2 := reg.Snapshot()
	c2 := s2.Histograms[MetricGCPauseUs].Count
	if c2 < c1 {
		t.Errorf("pause count went backwards: %d → %d", c1, c2)
	}
	if d := s2.DeltaSince(s); d.Histograms[MetricGCPauseUs].Count > c2 {
		t.Errorf("window delta exceeds cumulative count")
	}
}
