// Collector: scrapes every node's /debug/metrics JSON on demand and
// folds the results into a FleetView — per-node windowed rates (exact
// counter deltas, restart-clamped), current levels, windowed histogram
// tails, the exact merged cluster snapshot, and a skew report flagging
// replicas that stand apart from the fleet median.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"dmap/internal/metrics"
)

// Source names one scrape target: URL is the node's /debug/metrics
// endpoint (the collector asks for JSON via the Accept header).
type Source struct {
	Name string
	URL  string
}

// maxScrapeBody bounds one scrape response; a debug endpoint returning
// more than this is broken and must fail the scrape, not OOM the plane.
const maxScrapeBody = 16 << 20

// CollectorConfig configures a Collector. Zero values pick defaults.
type CollectorConfig struct {
	Sources []Source
	// Timeout bounds one scrape round trip (default 2s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests); Timeout is applied to
	// the default client only.
	Client *http.Client
	// OutlierFactor is the skew threshold: a node is flagged when its
	// windowed value exceeds Factor × fleet median (default 4).
	OutlierFactor float64
	// OutlierMin is the absolute floor below which values are never
	// flagged, silencing noise on idle clusters (default 1).
	OutlierMin float64
	// Now overrides the clock (tests). Defaults to time.Now.
	Now func() time.Time
}

// Collector scrapes the configured sources and remembers each node's
// previous snapshot so every Collect call yields one delta window per
// node. Safe for use from one goroutine at a time.
type Collector struct {
	cfg    CollectorConfig
	client *http.Client
	now    func() time.Time

	mu   sync.Mutex
	prev map[string]scrapeState
}

type scrapeState struct {
	snap metrics.Snapshot
	when time.Time
}

// NewCollector returns a collector over cfg.Sources.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.OutlierFactor <= 1 {
		cfg.OutlierFactor = 4
	}
	if cfg.OutlierMin <= 0 {
		cfg.OutlierMin = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Collector{cfg: cfg, client: client, now: now, prev: make(map[string]scrapeState)}
}

// Collect scrapes every source concurrently and returns this round's
// FleetView. A node that fails to scrape or fails snapshot validation
// is reported down for the round (its window state is kept, so one
// missed scrape just widens the next window).
func (c *Collector) Collect() FleetView {
	type result struct {
		snap metrics.Snapshot
		err  error
	}
	results := make([]result, len(c.cfg.Sources))
	var wg sync.WaitGroup
	for i, src := range c.cfg.Sources {
		wg.Add(1)
		go func(i int, src Source) {
			defer wg.Done()
			snap, err := c.scrape(src.URL)
			results[i] = result{snap: snap, err: err}
		}(i, src)
	}
	wg.Wait()
	when := c.now()

	view := FleetView{
		When:  when,
		Nodes: make([]NodeView, len(c.cfg.Sources)),
	}
	cluster := metrics.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]metrics.HistogramSnapshot{},
	}

	c.mu.Lock()
	for i, src := range c.cfg.Sources {
		nv := NodeView{Name: src.Name, URL: src.URL}
		if err := results[i].err; err != nil {
			nv.Err = err.Error()
			view.Nodes[i] = nv
			continue
		}
		snap := results[i].snap
		nv.Up = true
		view.NodesUp++
		nv.Gauges = snap.Gauges

		if prev, ok := c.prev[src.Name]; ok {
			window := when.Sub(prev.when).Seconds()
			nv.WindowS = window
			if window > 0 {
				delta := snap.DeltaSince(prev.snap)
				nv.Rates = make(map[string]float64, len(delta.Counters))
				for name, d := range delta.Counters {
					nv.Rates[name] = float64(d) / window
				}
				nv.P99 = make(map[string]float64, len(delta.Histograms))
				for name, h := range delta.Histograms {
					if h.Count > 0 {
						nv.P99[name] = h.Quantile(99)
					}
				}
			}
		}
		c.prev[src.Name] = scrapeState{snap: snap, when: when}

		// Merge this node into the cluster snapshot one at a time so a
		// layout-skewed node poisons only itself, not the whole view.
		merged, err := metrics.MergeSnapshots(cluster, snap)
		if err != nil {
			nv.Err = fmt.Sprintf("excluded from cluster view: %v", err)
		} else {
			cluster = merged
		}
		view.Nodes[i] = nv
	}
	c.mu.Unlock()

	view.Cluster = cluster
	view.Outliers = findOutliers(view.Nodes, c.cfg.OutlierFactor, c.cfg.OutlierMin)
	return view
}

// scrape fetches and strictly decodes one node's snapshot.
func (c *Collector) scrape(url string) (metrics.Snapshot, error) {
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return metrics.Snapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return metrics.Snapshot{}, fmt.Errorf("scrape: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxScrapeBody+1))
	if err != nil {
		return metrics.Snapshot{}, err
	}
	if len(body) > maxScrapeBody {
		return metrics.Snapshot{}, fmt.Errorf("scrape: body exceeds %d bytes", maxScrapeBody)
	}
	return DecodeSnapshot(body)
}

// findOutliers builds the skew report: for every windowed rate and p99
// present on at least three up nodes, a node whose value exceeds
// factor × fleet median (and the absolute floor) is flagged. Medians
// need ≥3 nodes to mean anything; smaller fleets report no outliers.
func findOutliers(nodes []NodeView, factor, minAbs float64) []Outlier {
	var out []Outlier
	out = append(out, skewOver(nodes, "rate", func(n NodeView) map[string]float64 { return n.Rates }, factor, minAbs)...)
	out = append(out, skewOver(nodes, "p99", func(n NodeView) map[string]float64 { return n.P99 }, factor, minAbs)...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Node < out[j].Node
	})
	return out
}

func skewOver(nodes []NodeView, kind string, get func(NodeView) map[string]float64, factor, minAbs float64) []Outlier {
	byMetric := map[string][]float64{}
	for _, n := range nodes {
		if !n.Up {
			continue
		}
		for name, v := range get(n) {
			byMetric[name] = append(byMetric[name], v)
		}
	}
	var out []Outlier
	for name, vs := range byMetric {
		if len(vs) < 3 {
			continue
		}
		med := medianOf(vs)
		for _, n := range nodes {
			if !n.Up {
				continue
			}
			v, ok := get(n)[name]
			if !ok || v < minAbs || v <= med*factor {
				continue
			}
			f := v / minAbs
			if med > 0 {
				f = v / med
			}
			out = append(out, Outlier{Node: n.Name, Metric: kind + ":" + name, Value: v, Median: med, Factor: f})
		}
	}
	return out
}
