// Fleet view types and the strict snapshot codec. FleetView is the one
// JSON document the telemetry plane produces: per-node window rates and
// levels, the exact merged cluster snapshot, outlier flags and prober
// SLO status, rendered either as JSON (machines) or a text table
// (humans, WriteTable).
package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"dmap/internal/metrics"
)

// NodeView is one node's slice of a FleetView round.
type NodeView struct {
	Name string `json:"name"`
	// URL is the scrape endpoint the collector read.
	URL string `json:"url"`
	// Up reports whether the scrape succeeded; Err carries the failure.
	Up  bool   `json:"up"`
	Err string `json:"err,omitempty"`
	// WindowS is the wall-clock seconds this node's window covers (0 on
	// the first scrape, when there is no previous snapshot to diff).
	WindowS float64 `json:"window_s"`
	// Rates are windowed counter rates in events/second, keyed by
	// counter name, restart-clamped per the internal/metrics delta
	// contract. Empty until the second scrape.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Gauges are current levels. Gauges keep per-node identity — they
	// are reported here and never merged into the cluster snapshot.
	Gauges map[string]float64 `json:"gauges,omitempty"`
	// P99 holds this node's windowed p99 per histogram, microseconds.
	P99 map[string]float64 `json:"p99_us,omitempty"`
}

// Outlier flags one node whose windowed value stands apart from the
// fleet median for a metric — the skew report that points at a replica
// falling behind (repair backlog, shed spike, latency tail).
type Outlier struct {
	Node   string  `json:"node"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
	Median float64 `json:"median"`
	// Factor is Value/Median (capped for display when Median is 0).
	Factor float64 `json:"factor"`
}

// FleetView is one collection round over the whole fleet.
type FleetView struct {
	When    time.Time  `json:"when"`
	NodesUp int        `json:"nodes_up"`
	Nodes   []NodeView `json:"nodes"`
	// Cluster is the exact merge of every up node's CUMULATIVE
	// snapshot: counters sum, histograms merge bucket-by-bucket (so
	// cluster quantiles are exactly what one global histogram would
	// answer), gauges dropped (per-node identity).
	Cluster metrics.Snapshot `json:"cluster"`
	// Outliers is the skew report for this round.
	Outliers []Outlier `json:"outliers,omitempty"`
	// Probe is the SLO prober's status, when a prober is attached.
	Probe *ProbeStatus `json:"probe,omitempty"`
}

// DecodeSnapshot strictly decodes one node's /debug/metrics JSON into a
// metrics.Snapshot: unknown fields are rejected and every histogram
// must satisfy the invariants the merge/delta code relies on (bucket
// layout shape, counts summing to the total, ordered finite edges,
// coherent extrema). This is the collector's trust boundary — a
// corrupted or version-skewed node must fail its scrape loudly rather
// than poison the merged cluster view.
func DecodeSnapshot(b []byte) (metrics.Snapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s metrics.Snapshot
	if err := dec.Decode(&s); err != nil {
		return metrics.Snapshot{}, fmt.Errorf("obs: decode snapshot: %w", err)
	}
	// Exactly one JSON value: trailing garbage is a framing bug.
	if dec.More() {
		return metrics.Snapshot{}, fmt.Errorf("obs: decode snapshot: trailing data after JSON value")
	}
	for name, g := range s.Gauges {
		if math.IsNaN(g) || math.IsInf(g, 0) {
			return metrics.Snapshot{}, fmt.Errorf("obs: gauge %q is not finite", name)
		}
	}
	for name, h := range s.Histograms {
		if err := validateHistogram(h); err != nil {
			return metrics.Snapshot{}, fmt.Errorf("obs: histogram %q: %w", name, err)
		}
	}
	return s, nil
}

// validateHistogram enforces the shape invariants a registry snapshot
// always has, so downstream merge/quantile code never sees a histogram
// it could misinterpret.
func validateHistogram(h metrics.HistogramSnapshot) error {
	if len(h.Edges) == 0 {
		// The zero snapshot (merge identity) is the only edgeless form.
		if h.Count != 0 || len(h.Counts) != 0 || len(h.Exemplars) != 0 {
			return fmt.Errorf("no edges but %d counts / count %d", len(h.Counts), h.Count)
		}
		if h.Sum != 0 || h.Min != 0 || h.Max != 0 {
			return fmt.Errorf("no edges but non-zero sum or extrema")
		}
		return nil
	}
	if len(h.Counts) != len(h.Edges)+1 {
		return fmt.Errorf("%d counts for %d edges, want %d", len(h.Counts), len(h.Edges), len(h.Edges)+1)
	}
	if len(h.Exemplars) != 0 && len(h.Exemplars) != len(h.Counts) {
		return fmt.Errorf("%d exemplars for %d buckets", len(h.Exemplars), len(h.Counts))
	}
	prev := math.Inf(-1)
	for i, e := range h.Edges {
		if math.IsNaN(e) || math.IsInf(e, 0) || e <= prev {
			return fmt.Errorf("edge %d (%g) not finite and strictly increasing", i, e)
		}
		prev = e
	}
	var total uint64
	for _, c := range h.Counts {
		if c > math.MaxUint64-total {
			return fmt.Errorf("bucket counts overflow")
		}
		total += c
	}
	if total != h.Count {
		return fmt.Errorf("count %d but buckets sum to %d", h.Count, total)
	}
	if math.IsNaN(h.Sum) || math.IsInf(h.Sum, 0) {
		return fmt.Errorf("sum not finite")
	}
	if math.IsNaN(h.Min) || math.IsInf(h.Min, 0) || math.IsNaN(h.Max) || math.IsInf(h.Max, 0) {
		return fmt.Errorf("extrema not finite")
	}
	if h.Count == 0 {
		if h.Sum != 0 || h.Min != 0 || h.Max != 0 {
			return fmt.Errorf("empty histogram with non-zero sum or extrema")
		}
	} else if h.Min > h.Max {
		return fmt.Errorf("min %g > max %g", h.Min, h.Max)
	}
	return nil
}

// EncodeSnapshot is the canonical encoding DecodeSnapshot round-trips
// through: encoding/json with sorted map keys and no indentation, so
// two equal snapshots encode byte-identically (the fuzz target's
// re-encode fixed point).
func EncodeSnapshot(s metrics.Snapshot) ([]byte, error) {
	return json.Marshal(s)
}

// JSON renders the fleet view as indented JSON.
func (v FleetView) JSON() ([]byte, error) {
	return json.MarshalIndent(v, "", "  ")
}

// Table column order for per-node rates and p99 histograms; only
// metrics present on some node are shown.
var tableRateCols = []string{
	"server.lookups", "server.inserts",
	"server.sheds_global", "server.sheds_conn",
	"server.repair.pushed", "server.repair.pulled",
}

var tableGaugeCols = []string{"server.inflight", "server.conns"}

var tableP99Cols = []string{"server.op.lookup_us", "server.op.insert_us"}

// WriteTable renders the live text table `dmapnode fleet` shows: one
// row per node, the merged cluster tail, outliers and SLO status.
func (v FleetView) WriteTable(w io.Writer) error {
	bw := &errWriter{w: w}
	fmt.Fprintf(bw, "fleet @ %s  nodes up %d/%d\n",
		v.When.Format("15:04:05"), v.NodesUp, len(v.Nodes))

	rates := activeCols(tableRateCols, v.Nodes, func(n NodeView) map[string]float64 { return n.Rates })
	gauges := activeCols(tableGaugeCols, v.Nodes, func(n NodeView) map[string]float64 { return n.Gauges })
	p99s := activeCols(tableP99Cols, v.Nodes, func(n NodeView) map[string]float64 { return n.P99 })

	fmt.Fprintf(bw, "%-12s %-5s", "node", "up")
	for _, c := range rates {
		fmt.Fprintf(bw, " %14s", shortCol(c)+"/s")
	}
	for _, c := range gauges {
		fmt.Fprintf(bw, " %10s", shortCol(c))
	}
	for _, c := range p99s {
		fmt.Fprintf(bw, " %12s", shortCol(c)+" p99")
	}
	fmt.Fprintln(bw)
	for _, n := range v.Nodes {
		up := "yes"
		if !n.Up {
			up = "NO"
		}
		fmt.Fprintf(bw, "%-12s %-5s", n.Name, up)
		for _, c := range rates {
			fmt.Fprintf(bw, " %14.1f", n.Rates[c])
		}
		for _, c := range gauges {
			fmt.Fprintf(bw, " %10.0f", n.Gauges[c])
		}
		for _, c := range p99s {
			fmt.Fprintf(bw, " %12.0f", n.P99[c])
		}
		if !n.Up && n.Err != "" {
			fmt.Fprintf(bw, "  (%s)", n.Err)
		}
		fmt.Fprintln(bw)
	}

	if h, ok := v.Cluster.Histograms["server.op.lookup_us"]; ok && h.Count > 0 {
		fmt.Fprintf(bw, "cluster lookup: n=%d p50=%.0fµs p99=%.0fµs p999=%.0fµs max=%.0fµs\n",
			h.Count, h.Quantile(50), h.Quantile(99), h.Quantile(99.9), h.Max)
	}
	for _, o := range v.Outliers {
		fmt.Fprintf(bw, "outlier: %s %s = %.1f (median %.1f, %.1fx)\n",
			o.Node, o.Metric, o.Value, o.Median, o.Factor)
	}
	if v.Probe != nil {
		for _, s := range v.Probe.SLOs {
			fmt.Fprintf(bw, "slo: %s\n", s)
		}
	}
	return bw.err
}

// Table returns the WriteTable rendering as a string.
func (v FleetView) Table() string {
	var sb bytes.Buffer
	_ = v.WriteTable(&sb)
	return sb.String()
}

// activeCols filters the preferred column list down to metrics at least
// one node actually has, preserving order.
func activeCols(prefer []string, nodes []NodeView, get func(NodeView) map[string]float64) []string {
	var out []string
	for _, c := range prefer {
		for _, n := range nodes {
			if _, ok := get(n)[c]; ok {
				out = append(out, c)
				break
			}
		}
	}
	return out
}

// shortCol trims the shared "server." prefix for column headers.
func shortCol(name string) string {
	const p = "server."
	if len(name) > len(p) && name[:len(p)] == p {
		return name[len(p):]
	}
	return name
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// medianOf returns the median of vs (not mutating the input).
func medianOf(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}
