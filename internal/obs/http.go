// HTTP surface of the fleet plane: /fleet (latest view, text table or
// JSON) and /fleet/flight (flight-recorder dumps). Both set explicit
// Content-Type headers — scrapers and humans must never have to sniff.
package obs

import (
	"net/http"
	"strings"
)

// FleetHandler serves the latest fleet view from latest(): a text table
// by default, JSON with ?format=json or Accept: application/json.
// latest returning false means no round has completed yet (503).
func FleetHandler(latest func() (FleetView, bool)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		view, ok := latest()
		if !ok {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			http.Error(w, "no fleet view collected yet", http.StatusServiceUnavailable)
			return
		}
		if wantsJSON(r) {
			b, err := view.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			w.Write([]byte("\n"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = view.WriteTable(w)
	})
}

// FlightHandler serves the recorder's dumps as JSON.
func FlightHandler(rec *FlightRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, err := rec.JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		w.Write([]byte("\n"))
	})
}

func wantsJSON(r *http.Request) bool {
	if r.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/json")
}
