// Anomaly flight recorder: a bounded ring of recent fleet views that is
// frozen into a dump when something anomalous is seen (shed spike,
// staleness, SLO breach). The point is hindsight — by the time a human
// looks, the ring already holds the rounds BEFORE the anomaly, which
// are usually the interesting ones.
package obs

import (
	"encoding/json"
	"sync"
	"time"
)

// FlightDump is one frozen anomaly: the trigger and the ring contents
// (oldest first) at the moment it fired.
type FlightDump struct {
	Seq    uint64      `json:"seq"`
	When   time.Time   `json:"when"`
	Reason string      `json:"reason"`
	Views  []FleetView `json:"views"`
}

// FlightRecorder keeps the last N fleet views and the most recent
// dumps. Safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	ring  []FleetView
	next  int
	full  bool
	seq   uint64
	dumps []FlightDump // most recent last, bounded
	// cooldownRounds suppresses re-triggering while one anomaly is
	// ongoing: after a dump, Note must run this many times before the
	// next Trigger fires.
	cooldownRounds int
	cooldown       int
}

const maxDumps = 8

// NewFlightRecorder returns a recorder holding the last n views
// (n < 2 defaults to 16) with a re-trigger cooldown of n/2 rounds.
func NewFlightRecorder(n int) *FlightRecorder {
	if n < 2 {
		n = 16
	}
	return &FlightRecorder{ring: make([]FleetView, n), cooldownRounds: n / 2}
}

// Note records one fleet view into the ring.
func (r *FlightRecorder) Note(v FleetView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ring[r.next] = v
	r.next = (r.next + 1) % len(r.ring)
	if r.next == 0 {
		r.full = true
	}
	if r.cooldown > 0 {
		r.cooldown--
	}
}

// Trigger freezes the current ring into a dump labelled reason.
// Returns false while a previous trigger's cooldown is still running
// (one ongoing anomaly produces one dump, not one per round).
func (r *FlightRecorder) Trigger(reason string, when time.Time) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cooldown > 0 {
		return false
	}
	r.cooldown = r.cooldownRounds
	r.seq++
	d := FlightDump{Seq: r.seq, When: when, Reason: reason, Views: r.viewsLocked()}
	r.dumps = append(r.dumps, d)
	if len(r.dumps) > maxDumps {
		r.dumps = r.dumps[len(r.dumps)-maxDumps:]
	}
	return true
}

// viewsLocked returns the ring contents oldest-first.
func (r *FlightRecorder) viewsLocked() []FleetView {
	var out []FleetView
	if r.full {
		out = append(out, r.ring[r.next:]...)
	}
	out = append(out, r.ring[:r.next]...)
	// Drop zero entries from a ring that never filled.
	views := make([]FleetView, 0, len(out))
	for _, v := range out {
		if !v.When.IsZero() {
			views = append(views, v)
		}
	}
	return views
}

// Dumps returns the recorded dumps, oldest first.
func (r *FlightRecorder) Dumps() []FlightDump {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FlightDump(nil), r.dumps...)
}

// JSON renders the dumps for the /fleet/flight endpoint.
func (r *FlightRecorder) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Dumps(), "", "  ")
}
