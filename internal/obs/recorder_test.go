package obs

import (
	"testing"
	"time"
)

func viewAt(sec int) FleetView {
	return FleetView{When: time.Date(2026, 8, 7, 10, 0, sec, 0, time.UTC)}
}

func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Note(viewAt(i))
	}
	if !r.Trigger("overflowed", time.Now()) {
		t.Fatal("trigger refused")
	}
	dumps := r.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("%d dumps, want 1", len(dumps))
	}
	views := dumps[0].Views
	if len(views) != 3 {
		t.Fatalf("%d views in dump, want ring size 3", len(views))
	}
	// Oldest first: seconds 3, 4, 5.
	for i, want := range []int{3, 4, 5} {
		if views[i].When.Second() != want {
			t.Errorf("view %d at second %d, want %d", i, views[i].When.Second(), want)
		}
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	r := NewFlightRecorder(8)
	r.Note(viewAt(1))
	r.Note(viewAt(2))
	r.Trigger("early", time.Now())
	if got := len(r.Dumps()[0].Views); got != 2 {
		t.Errorf("partial ring dumped %d views, want 2", got)
	}
}

func TestFlightRecorderCooldown(t *testing.T) {
	r := NewFlightRecorder(4) // cooldown = 2 rounds
	r.Note(viewAt(1))
	if !r.Trigger("first", time.Now()) {
		t.Fatal("first trigger refused")
	}
	if r.Trigger("ongoing", time.Now()) {
		t.Fatal("re-trigger during cooldown succeeded")
	}
	r.Note(viewAt(2))
	r.Note(viewAt(3))
	if !r.Trigger("second", time.Now()) {
		t.Fatal("trigger after cooldown refused")
	}
	if got := len(r.Dumps()); got != 2 {
		t.Errorf("%d dumps, want 2", got)
	}
}

func TestFlightRecorderDumpBound(t *testing.T) {
	r := NewFlightRecorder(2) // cooldown = 1 round
	for i := 0; i < maxDumps+5; i++ {
		r.Note(viewAt(i % 60))
		r.Trigger("spam", time.Now())
	}
	if got := len(r.Dumps()); got != maxDumps {
		t.Errorf("%d dumps retained, want cap %d", got, maxDumps)
	}
}
