package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dmap/internal/metrics"
)

func registryJSON(t *testing.T) []byte {
	t.Helper()
	r := metrics.NewRegistry()
	r.Counter("server.lookups").Add(41)
	r.Gauge("server.inflight").Set(2)
	h := r.Histogram("server.op.lookup_us")
	h.Observe(3)
	h.Observe(1 << 30) // overflow bucket
	b, err := r.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestDecodeSnapshotAcceptsRegistryOutput(t *testing.T) {
	s, err := DecodeSnapshot(registryJSON(t))
	if err != nil {
		t.Fatalf("decode of genuine registry JSON failed: %v", err)
	}
	if s.Counters["server.lookups"] != 41 {
		t.Errorf("counter = %d, want 41", s.Counters["server.lookups"])
	}
	if s.Histograms["server.op.lookup_us"].Count != 2 {
		t.Errorf("histogram count = %d, want 2", s.Histograms["server.op.lookup_us"].Count)
	}
}

func TestDecodeSnapshotRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"counters":{},"gauges":{},"histograms":{},"extra":1}`,
		"trailing data":   `{"counters":{},"gauges":{},"histograms":{}} {"x":1}`,
		"count mismatch":  `{"counters":{},"gauges":{},"histograms":{"h":{"count":5,"sum":1,"min":1,"max":1,"edges":[1],"counts":[1,1]}}}`,
		"short counts":    `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"min":1,"max":1,"edges":[1,2],"counts":[1,0]}}}`,
		"unsorted edges":  `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"min":1,"max":1,"edges":[2,1,3],"counts":[0,1,0,0]}}}`,
		"min above max":   `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"min":9,"max":1,"edges":[1],"counts":[1,0]}}}`,
		"edgeless counts": `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"min":1,"max":1,"edges":[],"counts":[1]}}}`,
		"bad exemplars":   `{"counters":{},"gauges":{},"histograms":{"h":{"count":1,"sum":1,"min":1,"max":1,"edges":[1],"counts":[1,0],"exemplars":[7]}}}`,
		"not json":        `counter server.lookups 3`,
	}
	for name, body := range cases {
		if _, err := DecodeSnapshot([]byte(body)); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

func TestEncodeSnapshotCanonical(t *testing.T) {
	s, err := DecodeSnapshot(registryJSON(t))
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := EncodeSnapshot(s)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := DecodeSnapshot(enc1)
	if err != nil {
		t.Fatalf("canonical encoding does not decode: %v", err)
	}
	enc2, err := EncodeSnapshot(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("canonical re-encode not a fixed point:\n%s\nvs\n%s", enc1, enc2)
	}
}

func TestWriteTable(t *testing.T) {
	v := FleetView{
		When:    time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC),
		NodesUp: 1,
		Nodes: []NodeView{
			{Name: "as0", Up: true, WindowS: 1,
				Rates:  map[string]float64{"server.lookups": 120.5},
				Gauges: map[string]float64{"server.inflight": 3},
				P99:    map[string]float64{"server.op.lookup_us": 250}},
			{Name: "as1", Up: false, Err: "connection refused"},
		},
		Outliers: []Outlier{{Node: "as0", Metric: "rate:server.sheds_global", Value: 50, Median: 2, Factor: 25}},
	}
	var sb strings.Builder
	if err := v.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"nodes up 1/2", "as0", "120.5", "NO", "connection refused", "outlier: as0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
