package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func httpHandlerFunc(body string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, body)
	})
}

func testView() FleetView {
	return FleetView{
		When:    time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC),
		NodesUp: 1,
		Nodes:   []NodeView{{Name: "as0", Up: true}},
	}
}

func TestFleetHandlerContentTypes(t *testing.T) {
	h := FleetHandler(func() (FleetView, bool) { return testView(), true })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; charset=utf-8" {
		t.Errorf("text Content-Type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "as0") {
		t.Errorf("table missing node row:\n%s", rec.Body.String())
	}

	for _, mk := range []func() *http.Request{
		func() *http.Request { return httptest.NewRequest("GET", "/fleet?format=json", nil) },
		func() *http.Request {
			r := httptest.NewRequest("GET", "/fleet", nil)
			r.Header.Set("Accept", "application/json")
			return r
		},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, mk())
		if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
			t.Errorf("json Content-Type %q", ct)
		}
		var v FleetView
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("fleet JSON does not round-trip: %v", err)
		}
		if v.NodesUp != 1 || len(v.Nodes) != 1 || v.Nodes[0].Name != "as0" {
			t.Errorf("round-tripped view = %+v", v)
		}
	}
}

func TestFleetHandlerNoViewYet(t *testing.T) {
	h := FleetHandler(func() (FleetView, bool) { return FleetView{}, false })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/fleet", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("503 Content-Type %q", ct)
	}
}

func TestFlightHandler(t *testing.T) {
	rec := NewFlightRecorder(4)
	rec.Note(testView())
	rec.Trigger("test anomaly", time.Now())
	w := httptest.NewRecorder()
	FlightHandler(rec).ServeHTTP(w, httptest.NewRequest("GET", "/fleet/flight", nil))
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	var dumps []FlightDump
	if err := json.Unmarshal(w.Body.Bytes(), &dumps); err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 || dumps[0].Reason != "test anomaly" || len(dumps[0].Views) != 1 {
		t.Errorf("dumps = %+v", dumps)
	}
}
