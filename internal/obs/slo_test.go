package obs

import (
	"math"
	"strings"
	"testing"
)

func TestSLOBurnRate(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Name: "avail", Objective: 0.9, Window: 10, ShortWindow: 2})
	// 1 bad in 10 probes = 10% error rate = exactly 1x burn at 90%.
	for i := 0; i < 9; i++ {
		tr.Observe(true)
	}
	tr.Observe(false)
	if br := tr.BurnRate(10); math.Abs(br-1) > 1e-9 {
		t.Errorf("burn rate = %g, want 1", br)
	}
	if tr.Breaching() {
		t.Error("breaching at exactly 1x burn")
	}
	// All-bad round: error rate 1.0 → 10x burn.
	tr.Advance()
	for i := 0; i < 5; i++ {
		tr.Observe(false)
	}
	if br := tr.BurnRate(1); math.Abs(br-10) > 1e-8 {
		t.Errorf("burn rate = %g, want 10", br)
	}
}

func TestSLOBreachAndRecovery(t *testing.T) {
	cfg := SLOConfig{Objective: 0.9, Window: 8, ShortWindow: 2, FastBurn: 5, SlowBurn: 3}
	tr := NewSLOTracker(cfg)
	for i := 0; i < 4; i++ {
		tr.Observe(true)
	}
	if tr.Breaching() {
		t.Fatal("healthy tracker breaching")
	}
	// An outage round trips the fast window immediately.
	tr.Advance()
	for i := 0; i < 4; i++ {
		tr.Observe(false)
	}
	if !tr.Breaching() {
		t.Fatal("fast-burn outage not flagged")
	}
	// Enough healthy rounds push the bad bucket out of both windows.
	for i := 0; i < cfg.Window+1; i++ {
		tr.Advance()
		for j := 0; j < 4; j++ {
			tr.Observe(true)
		}
	}
	if tr.Breaching() {
		st := tr.Status()
		t.Fatalf("recovered tracker still breaching: %+v", st)
	}
}

func TestSLOWindowSlides(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Objective: 0.5, Window: 3, ShortWindow: 1})
	tr.Observe(false)
	tr.Advance()
	tr.Observe(true)
	tr.Advance()
	tr.Observe(true)
	if good, bad := tr.Totals(3); good != 2 || bad != 1 {
		t.Errorf("window totals = %d/%d, want 2 good 1 bad", good, bad)
	}
	// Advancing once more slides the bad round out of the window.
	tr.Advance()
	tr.Observe(true)
	if good, bad := tr.Totals(3); good != 3 || bad != 0 {
		t.Errorf("slid totals = %d/%d, want 3 good 0 bad", good, bad)
	}
}

func TestSLOEmptyWindow(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{})
	if br := tr.BurnRate(5); br != 0 {
		t.Errorf("empty tracker burn = %g, want 0", br)
	}
	if tr.Breaching() {
		t.Error("empty tracker breaching")
	}
}

func TestSLOStatusString(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Name: "staleness"})
	tr.Observe(true)
	s := tr.Status().String()
	if !strings.Contains(s, "staleness") || !strings.Contains(s, "good=1") {
		t.Errorf("status string %q missing fields", s)
	}
}
