package obs

import (
	"net/http/httptest"
	"testing"
	"time"

	"dmap/internal/metrics"
)

// fakeClock steps time manually so window math is exact in tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time       { return c.t }
func (c *fakeClock) step(d time.Duration) { c.t = c.t.Add(d) }

func newTestCollector(t *testing.T, regs map[string]*metrics.Registry) (*Collector, *fakeClock) {
	t.Helper()
	clock := &fakeClock{t: time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)}
	var sources []Source
	for name, reg := range regs {
		srv := httptest.NewServer(metrics.Handler(reg))
		t.Cleanup(srv.Close)
		sources = append(sources, Source{Name: name, URL: srv.URL})
	}
	return NewCollector(CollectorConfig{Sources: sources, Now: clock.now}), clock
}

func TestCollectorWindowsAndClusterMerge(t *testing.T) {
	a := metrics.NewRegistry()
	b := metrics.NewRegistry()
	a.Counter("server.lookups").Add(100)
	b.Counter("server.lookups").Add(50)
	a.Histogram("server.op.lookup_us").Observe(10)
	b.Histogram("server.op.lookup_us").Observe(1000)
	a.Gauge("server.inflight").Set(4)

	c, clock := newTestCollector(t, map[string]*metrics.Registry{"a": a, "b": b})

	v1 := c.Collect()
	if v1.NodesUp != 2 {
		t.Fatalf("nodes up = %d, want 2: %+v", v1.NodesUp, v1.Nodes)
	}
	// First round: levels and cluster, but no windows yet.
	if v1.Cluster.Counters["server.lookups"] != 150 {
		t.Errorf("cluster counter = %d, want 150", v1.Cluster.Counters["server.lookups"])
	}
	h := v1.Cluster.Histograms["server.op.lookup_us"]
	if h.Count != 2 || h.Min != 10 || h.Max != 1000 {
		t.Errorf("cluster histogram = count %d [%g,%g], want 2 [10,1000]", h.Count, h.Min, h.Max)
	}
	if len(v1.Cluster.Gauges) != 0 {
		t.Errorf("cluster gauges %v present; gauges must stay per-node", v1.Cluster.Gauges)
	}
	for _, n := range v1.Nodes {
		if n.Rates != nil {
			t.Errorf("node %s has rates on the first scrape", n.Name)
		}
		if n.Name == "a" && n.Gauges["server.inflight"] != 4 {
			t.Errorf("node a inflight = %g, want 4", n.Gauges["server.inflight"])
		}
	}

	// Second round, 10s later: a served 20 more lookups → 2/s.
	a.Counter("server.lookups").Add(20)
	clock.step(10 * time.Second)
	v2 := c.Collect()
	for _, n := range v2.Nodes {
		if n.Name != "a" {
			continue
		}
		if n.WindowS != 10 {
			t.Errorf("window = %gs, want 10", n.WindowS)
		}
		if got := n.Rates["server.lookups"]; got != 2 {
			t.Errorf("rate = %g/s, want 2", got)
		}
	}
}

func TestCollectorDownNode(t *testing.T) {
	a := metrics.NewRegistry()
	a.Counter("server.lookups").Add(1)
	c, clock := newTestCollector(t, map[string]*metrics.Registry{"a": a})
	c.cfg.Sources = append(c.cfg.Sources, Source{Name: "dead", URL: "http://127.0.0.1:1/debug/metrics"})

	v := c.Collect()
	if v.NodesUp != 1 {
		t.Fatalf("nodes up = %d, want 1", v.NodesUp)
	}
	var dead *NodeView
	for i := range v.Nodes {
		if v.Nodes[i].Name == "dead" {
			dead = &v.Nodes[i]
		}
	}
	if dead == nil || dead.Up || dead.Err == "" {
		t.Fatalf("dead node not reported down with error: %+v", dead)
	}
	// The cluster view is the up nodes only.
	if v.Cluster.Counters["server.lookups"] != 1 {
		t.Errorf("cluster counter = %d, want 1", v.Cluster.Counters["server.lookups"])
	}

	// A down round keeps the window anchored: when the node is scraped
	// again the delta spans both intervals.
	a.Counter("server.lookups").Add(6)
	clock.step(2 * time.Second)
	v2 := c.Collect()
	for _, n := range v2.Nodes {
		if n.Name == "a" && n.Rates["server.lookups"] != 3 {
			t.Errorf("rate = %g/s, want 3 (6 events over 2s)", n.Rates["server.lookups"])
		}
	}
}

func TestCollectorOutliers(t *testing.T) {
	regs := map[string]*metrics.Registry{
		"n0": metrics.NewRegistry(),
		"n1": metrics.NewRegistry(),
		"n2": metrics.NewRegistry(),
	}
	for _, r := range regs {
		r.Counter("server.sheds_global")
	}
	c, clock := newTestCollector(t, regs)
	c.Collect()
	// n2 sheds 100/s while the others shed ~1/s.
	regs["n0"].Counter("server.sheds_global").Add(1)
	regs["n1"].Counter("server.sheds_global").Add(1)
	regs["n2"].Counter("server.sheds_global").Add(100)
	clock.step(time.Second)
	v := c.Collect()
	found := false
	for _, o := range v.Outliers {
		if o.Node == "n2" && o.Metric == "rate:server.sheds_global" {
			found = true
			if o.Median != 1 || o.Value != 100 {
				t.Errorf("outlier = %+v, want value 100 median 1", o)
			}
		}
	}
	if !found {
		t.Fatalf("shedding outlier not flagged: %+v", v.Outliers)
	}
}

func TestCollectorRejectsInvalidBody(t *testing.T) {
	srv := httptest.NewServer(httpHandlerFunc(`{"counters":{},"gauges":{},"histograms":{},"bogus":1}`))
	defer srv.Close()
	c := NewCollector(CollectorConfig{Sources: []Source{{Name: "bad", URL: srv.URL}}})
	v := c.Collect()
	if v.NodesUp != 0 || v.Nodes[0].Err == "" {
		t.Fatalf("invalid snapshot body not rejected: %+v", v.Nodes[0])
	}
}
