// Black-box SLO prober: synthetic canary traffic against every node,
// speaking the same wire protocol a real client does, measuring what
// the cluster promises from OUTSIDE the node processes —
//
//   - availability: did the node answer the canary write and read at
//     all (sheds, drains, partitions and crashes all land here);
//   - staleness-after-write: the paper's §III-D2 version lag — how far
//     behind the newest acknowledged version a node's answer is;
//   - repair convergence: a node answering with a version the prober
//     never directly wrote to it proves anti-entropy delivered it.
//
// The prober writes versioned sentinel entries under its own GUIDs to
// every target (DMap nodes deliberately store whatever they are sent,
// so every target acts as a replica of the sentinels), then reads them
// back from every target and folds the outcomes into two SLOTrackers
// with multiwindow burn-rate alerting.
package obs

import (
	"fmt"
	"net"
	"sync"
	"time"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
	"dmap/internal/store"
	"dmap/internal/wire"
)

// ProbeTarget is one node the prober exercises: Addr is the node's
// serving TCP address (not the debug HTTP one).
type ProbeTarget struct {
	Name string
	Addr string
}

// ProberConfig configures a Prober. Zero values pick defaults.
type ProberConfig struct {
	Targets []ProbeTarget
	// Sentinels is the number of sentinel GUIDs probed per round
	// (default 3). More sentinels smooth the signal; each costs one
	// write and one read per target per round.
	Sentinels int
	// Timeout bounds one probe operation (default 2s).
	Timeout time.Duration
	// MaxLag is the acceptable staleness in versions: a read observing
	// a version more than MaxLag behind the newest acknowledged write
	// of that sentinel is a staleness failure (default 0 — reads must
	// be fresh).
	MaxLag uint64
	// Availability and Staleness configure the two objectives; names
	// default to "availability" and "staleness".
	Availability SLOConfig
	Staleness    SLOConfig
	// BaseVersion seeds the sentinel version counter. Defaults to the
	// current time in milliseconds so a restarted prober's writes still
	// supersede its previous incarnation's.
	BaseVersion uint64
	// Registry, when set, receives the prober's own metrics
	// (probe.op_us, probe.ops, probe.failures, probe.stale,
	// probe.repaired).
	Registry *metrics.Registry
	// Now overrides the clock (tests).
	Now func() time.Time
}

// ProbeTargetStatus is one target's outcome in the latest round.
type ProbeTargetStatus struct {
	Name    string `json:"name"`
	WriteOK bool   `json:"write_ok"`
	ReadOK  bool   `json:"read_ok"`
	// Lag is the worst version lag observed across sentinels this
	// round (meaningful when ReadOK).
	Lag uint64 `json:"lag"`
	// Stale reports whether any sentinel read breached MaxLag.
	Stale bool `json:"stale"`
	// Repaired reports whether this round observed a version at this
	// target that the prober never directly wrote to it — proof that
	// anti-entropy (not the prober) delivered it.
	Repaired bool   `json:"repaired"`
	LatUs    uint64 `json:"lat_us"`
	Err      string `json:"err,omitempty"`
}

// ProbeStatus summarizes the prober for fleet views and JSON.
type ProbeStatus struct {
	Rounds    uint64              `json:"rounds"`
	Sentinels int                 `json:"sentinels"`
	SLOs      []SLOStatus         `json:"slos"`
	Targets   []ProbeTargetStatus `json:"targets"`
	// Repaired counts convergence events observed over the prober's
	// lifetime (see ProbeTargetStatus.Repaired).
	Repaired uint64 `json:"repaired"`
}

// Breaching reports whether any objective is currently breaching.
func (s ProbeStatus) Breaching() bool {
	for _, slo := range s.SLOs {
		if slo.Breaching {
			return true
		}
	}
	return false
}

// Prober drives probe rounds against the configured targets. Round is
// not safe for concurrent use with itself; Status may be called from
// any goroutine.
type Prober struct {
	cfg       ProberConfig
	sentinels []guid.GUID
	version   uint64
	rounds    uint64
	repaired  uint64

	availability *SLOTracker
	staleness    *SLOTracker

	conns []net.Conn // per target, nil when down
	// acked[t][s] is the newest version target t directly acknowledged
	// for sentinel s; maxAcked[s] is the newest version ANY target
	// acknowledged — the freshness reference for staleness.
	acked    [][]uint64
	maxAcked []uint64

	opBuf []byte // reused request/scratch buffer

	hOp       *metrics.Histogram
	cOps      *metrics.Counter
	cFailures *metrics.Counter
	cStale    *metrics.Counter
	cRepaired *metrics.Counter

	mu     sync.Mutex
	status ProbeStatus
}

// NewProber returns a prober over cfg.Targets. Sentinel GUIDs are
// deterministic (guid.New over a fixed naming scheme), so independent
// prober runs against the same cluster probe the same keys.
func NewProber(cfg ProberConfig) *Prober {
	if cfg.Sentinels <= 0 {
		cfg.Sentinels = 3
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Availability.Name == "" {
		cfg.Availability.Name = "availability"
	}
	if cfg.Staleness.Name == "" {
		cfg.Staleness.Name = "staleness"
	}
	if cfg.BaseVersion == 0 {
		cfg.BaseVersion = uint64(cfg.Now().UnixMilli())
	}
	p := &Prober{
		cfg:          cfg,
		version:      cfg.BaseVersion,
		availability: NewSLOTracker(cfg.Availability),
		staleness:    NewSLOTracker(cfg.Staleness),
		conns:        make([]net.Conn, len(cfg.Targets)),
		acked:        make([][]uint64, len(cfg.Targets)),
		maxAcked:     make([]uint64, cfg.Sentinels),
	}
	for i := 0; i < cfg.Sentinels; i++ {
		p.sentinels = append(p.sentinels, guid.New(fmt.Sprintf("dmap.obs.sentinel.%d", i)))
	}
	for i := range p.acked {
		p.acked[i] = make([]uint64, cfg.Sentinels)
	}
	if reg := cfg.Registry; reg != nil {
		p.hOp = reg.Histogram("probe.op_us")
		p.cOps = reg.Counter("probe.ops")
		p.cFailures = reg.Counter("probe.failures")
		p.cStale = reg.Counter("probe.stale")
		p.cRepaired = reg.Counter("probe.repaired")
	}
	return p
}

// Round runs one probe round: a write pass then a read pass over every
// target × sentinel, then advances both SLO windows. Returns the
// round's status.
func (p *Prober) Round() ProbeStatus {
	p.version++
	targets := make([]ProbeTargetStatus, len(p.cfg.Targets))
	for t := range p.cfg.Targets {
		targets[t] = p.probeTarget(t)
	}
	p.rounds++
	// Snapshot status BEFORE advancing: Advance opens an empty round,
	// and the fast burn window must cover the round just probed.
	st := ProbeStatus{
		Rounds:    p.rounds,
		Sentinels: p.cfg.Sentinels,
		SLOs:      []SLOStatus{p.availability.Status(), p.staleness.Status()},
		Targets:   targets,
		Repaired:  p.repaired,
	}
	p.availability.Advance()
	p.staleness.Advance()
	p.mu.Lock()
	p.status = st
	p.mu.Unlock()
	return st
}

// Status returns the latest round's status (zero before any round).
func (p *Prober) Status() ProbeStatus {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

// Close drops the prober's connections.
func (p *Prober) Close() {
	for i, c := range p.conns {
		if c != nil {
			c.Close()
			p.conns[i] = nil
		}
	}
}

// Run probes every interval until stop closes, then closes the
// connections. onRound, when non-nil, sees every round's status.
func (p *Prober) Run(stop <-chan struct{}, interval time.Duration, onRound func(ProbeStatus)) {
	if interval <= 0 {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	defer p.Close()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			st := p.Round()
			if onRound != nil {
				onRound(st)
			}
		}
	}
}

// probeTarget runs the write and read pass for one target.
func (p *Prober) probeTarget(t int) ProbeTargetStatus {
	st := ProbeTargetStatus{Name: p.cfg.Targets[t].Name, WriteOK: true, ReadOK: true}
	start := p.cfg.Now()

	for s, g := range p.sentinels {
		err := p.insert(t, g)
		p.countOp(err)
		p.availability.Observe(err == nil)
		if err != nil {
			st.WriteOK = false
			st.Err = err.Error()
			continue
		}
		// Grow-only: an ack means the node has AT LEAST this version
		// (a node already holding a newer one acks the stale write too),
		// so a repair-observed higher version must not be overwritten.
		if p.version > p.acked[t][s] {
			p.acked[t][s] = p.version
		}
		if p.version > p.maxAcked[s] {
			p.maxAcked[s] = p.version
		}
	}

	for s, g := range p.sentinels {
		v, found, err := p.lookup(t, g)
		p.countOp(err)
		p.availability.Observe(err == nil)
		if err != nil {
			st.ReadOK = false
			st.Err = err.Error()
			continue
		}
		// Staleness: compare against the newest version ANY node
		// acknowledged. A missing sentinel counts as infinitely stale
		// once one has been acked somewhere.
		ref := p.maxAcked[s]
		if ref == 0 {
			continue // nothing acked yet; nothing to compare
		}
		var lag uint64
		if !found || v < ref {
			if found {
				lag = ref - v
			} else {
				lag = ref
			}
		}
		fresh := lag <= p.cfg.MaxLag
		p.staleness.Observe(fresh)
		if !fresh {
			st.Stale = true
			if p.cStale != nil {
				p.cStale.Inc()
			}
		}
		if lag > st.Lag {
			st.Lag = lag
		}
		// Convergence: the target answered with a version newer than
		// anything the prober directly wrote to it — anti-entropy
		// delivered it.
		if found && v > p.acked[t][s] {
			st.Repaired = true
			p.repaired++
			if p.cRepaired != nil {
				p.cRepaired.Inc()
			}
			p.acked[t][s] = v
		}
	}

	st.LatUs = uint64(p.cfg.Now().Sub(start).Microseconds())
	return st
}

// countOp books one wire operation (a probe write or read) into the
// prober's own metrics; SLO observations are tracked separately so one
// read feeding both availability and staleness still counts as one op.
func (p *Prober) countOp(err error) {
	if p.cOps != nil {
		p.cOps.Inc()
	}
	if err != nil && p.cFailures != nil {
		p.cFailures.Inc()
	}
}

// sentinelEntry builds the canary entry written each round. The NA is a
// fixed loopback locator: sentinels are never routed to, only versioned.
func (p *Prober) sentinelEntry(g guid.GUID) store.Entry {
	return store.Entry{
		GUID:    g,
		NAs:     []store.NA{{AS: 0, Addr: netaddr.AddrFromOctets(127, 0, 0, 1)}},
		Version: p.version,
	}
}

func (p *Prober) insert(t int, g guid.GUID) error {
	payload, err := wire.AppendEntry(p.opBuf[:0], p.sentinelEntry(g))
	if err != nil {
		return err
	}
	p.opBuf = payload
	rt, resp, err := p.roundTrip(t, wire.MsgInsert, payload)
	if err != nil {
		return err
	}
	if rt != wire.MsgInsertAck {
		return respError(rt, resp)
	}
	return nil
}

func (p *Prober) lookup(t int, g guid.GUID) (version uint64, found bool, err error) {
	p.opBuf = wire.AppendGUID(p.opBuf[:0], g)
	rt, resp, err := p.roundTrip(t, wire.MsgLookup, p.opBuf)
	if err != nil {
		return 0, false, err
	}
	if rt != wire.MsgLookupResp {
		return 0, false, respError(rt, resp)
	}
	lr, err := wire.DecodeLookupResp(resp)
	if err != nil {
		return 0, false, err
	}
	return lr.Entry.Version, lr.Found, nil
}

func respError(t wire.MsgType, payload []byte) error {
	if t == wire.MsgError {
		if kind, reason, err := wire.DecodeErrorKind(payload); err == nil {
			return fmt.Errorf("probe: node error (%s): %s", kind, reason)
		}
	}
	return fmt.Errorf("probe: unexpected %s response", t)
}

// roundTrip sends one v1 frame on the target's persistent connection
// (redialing when needed) and reads the reply. Timed probe latency is
// recorded into probe.op_us. Any error tears the connection down so the
// next round redials — a prober must never wedge on a sick peer.
func (p *Prober) roundTrip(t int, mt wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	conn := p.conns[t]
	if conn == nil {
		c, err := net.DialTimeout("tcp", p.cfg.Targets[t].Addr, p.cfg.Timeout)
		if err != nil {
			return 0, nil, err
		}
		conn = c
		p.conns[t] = c
	}
	start := time.Now()
	fail := func(err error) (wire.MsgType, []byte, error) {
		conn.Close()
		p.conns[t] = nil
		return 0, nil, err
	}
	if err := conn.SetDeadline(time.Now().Add(p.cfg.Timeout)); err != nil {
		return fail(err)
	}
	if err := wire.WriteFrame(conn, mt, payload); err != nil {
		return fail(err)
	}
	rt, resp, err := wire.ReadFrame(conn)
	if err != nil {
		return fail(err)
	}
	if p.hOp != nil {
		p.hOp.ObserveSince(start)
	}
	return rt, resp, nil
}
