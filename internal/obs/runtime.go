// Runtime bridge: surfaces Go runtime health (heap, goroutines, GC
// pauses, scheduler latency) in the same metrics.Registry as the
// serving metrics, so one /debug/metrics scrape answers both "is the
// store slow?" and "is the runtime the reason?".
//
// The bridge is pull-shaped: a single runtime/metrics.Read per registry
// Snapshot (via Registry.OnSnapshot), refreshing level gauges directly
// and replaying each runtime histogram's NEW bucket counts into a
// registry histogram with ObserveN at the bucket midpoint. Runtime
// histograms are cumulative, so the bridge keeps the previous bucket
// vector and feeds only the per-bucket deltas — the registry histogram
// then behaves like every other cumulative histogram in the registry
// (merge, windowed deltas, quantiles all apply).
package obs

import (
	"math"
	"runtime/metrics"

	m "dmap/internal/metrics"
)

// Runtime metric names as they appear in the registry.
const (
	MetricHeapBytes  = "runtime.heap_bytes"
	MetricStackBytes = "runtime.stack_bytes"
	MetricGoroutines = "runtime.goroutines"
	MetricGCCycles   = "runtime.gc_cycles"
	MetricGCPauseUs  = "runtime.gc_pause_us"
	MetricSchedLatUs = "runtime.sched_latency_us"
)

// runtime/metrics sample names the bridge reads.
const (
	rmHeap       = "/memory/classes/heap/objects:bytes"
	rmStack      = "/memory/classes/heap/stacks:bytes"
	rmGoroutines = "/sched/goroutines:goroutines"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPause    = "/gc/pauses:seconds"
	rmSchedLat   = "/sched/latencies:seconds"
)

type runtimeBridge struct {
	samples []metrics.Sample

	heap       *m.Gauge
	stack      *m.Gauge
	goroutines *m.Gauge
	gcCycles   *m.Counter
	gcPause    *histBridge
	schedLat   *histBridge

	lastGCCycles uint64
}

// histBridge replays one cumulative runtime Float64Histogram into a
// registry histogram, tracking the previously seen bucket counts.
type histBridge struct {
	dst  *m.Histogram
	prev []uint64
}

// RegisterRuntime wires the Go runtime into reg: gauges for heap and
// stack bytes and goroutine count, a counter for completed GC cycles,
// and microsecond histograms for GC pause time and scheduler latency.
// The bridge refreshes once per reg.Snapshot(). Registration is
// idempotent (the snapshot hook replaces by name), and because the
// runtime is process-global the bridge should be registered on exactly
// one registry per process — in cmd/dmapnode that is the serving node's
// registry.
func RegisterRuntime(reg *m.Registry) {
	b := &runtimeBridge{
		samples: []metrics.Sample{
			{Name: rmHeap},
			{Name: rmStack},
			{Name: rmGoroutines},
			{Name: rmGCCycles},
			{Name: rmGCPause},
			{Name: rmSchedLat},
		},
		heap:       reg.Gauge(MetricHeapBytes),
		stack:      reg.Gauge(MetricStackBytes),
		goroutines: reg.Gauge(MetricGoroutines),
		gcCycles:   reg.Counter(MetricGCCycles),
		gcPause:    &histBridge{dst: reg.Histogram(MetricGCPauseUs)},
		schedLat:   &histBridge{dst: reg.Histogram(MetricSchedLatUs)},
	}
	// Prime the cumulative sources so the first snapshot reports only
	// what happens after registration, not process history.
	metrics.Read(b.samples)
	b.prime()
	reg.OnSnapshot("obs.runtime", b.refresh)
}

func (b *runtimeBridge) prime() {
	for _, s := range b.samples {
		switch s.Name {
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				b.lastGCCycles = s.Value.Uint64()
			}
		case rmGCPause:
			b.gcPause.prime(s.Value)
		case rmSchedLat:
			b.schedLat.prime(s.Value)
		}
	}
}

// refresh runs as a snapshot hook: registry lock held, so it touches
// only the resolved handles above (all atomics) and never the registry.
func (b *runtimeBridge) refresh() {
	metrics.Read(b.samples)
	for _, s := range b.samples {
		switch s.Name {
		case rmHeap:
			setGaugeUint(b.heap, s.Value)
		case rmStack:
			setGaugeUint(b.stack, s.Value)
		case rmGoroutines:
			setGaugeUint(b.goroutines, s.Value)
		case rmGCCycles:
			if s.Value.Kind() == metrics.KindUint64 {
				cur := s.Value.Uint64()
				if cur > b.lastGCCycles {
					b.gcCycles.Add(int64(cur - b.lastGCCycles))
				}
				b.lastGCCycles = cur
			}
		case rmGCPause:
			b.gcPause.replay(s.Value)
		case rmSchedLat:
			b.schedLat.replay(s.Value)
		}
	}
}

func setGaugeUint(g *m.Gauge, v metrics.Value) {
	if v.Kind() == metrics.KindUint64 {
		g.Set(float64(v.Uint64()))
	}
}

func (hb *histBridge) prime(v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	hb.prev = append(hb.prev[:0], h.Counts...)
}

// replay feeds the delta between the runtime histogram's current and
// previous bucket counts into the destination, one ObserveN per grown
// bucket at the bucket midpoint converted from seconds to microseconds.
func (hb *histBridge) replay(v metrics.Value) {
	if v.Kind() != metrics.KindFloat64Histogram {
		return
	}
	h := v.Float64Histogram()
	if len(hb.prev) != len(h.Counts) {
		// Layout changed (only possible across runtime versions inside
		// one process — effectively never): resynchronize.
		hb.prev = append(hb.prev[:0], h.Counts...)
		return
	}
	for i, c := range h.Counts {
		if c > hb.prev[i] {
			hb.dst.ObserveN(bucketMidUs(h.Buckets, i), c-hb.prev[i])
		}
		hb.prev[i] = c
	}
}

// bucketMidUs returns the midpoint of runtime bucket i in microseconds.
// Runtime bucket boundaries may be ±Inf at the ends; the midpoint falls
// back to the finite side there.
func bucketMidUs(bounds []float64, i int) float64 {
	lo, hi := bounds[i], bounds[i+1]
	var mid float64
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		mid = 0
	case math.IsInf(lo, -1):
		mid = hi
	case math.IsInf(hi, 1):
		mid = lo
	default:
		mid = lo + (hi-lo)/2
	}
	if mid < 0 {
		mid = 0
	}
	return mid * 1e6
}
