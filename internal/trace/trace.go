// Package trace is the repository's request-tracing layer: a
// stdlib-only, deterministic, sampling distributed tracer for the
// networked DMap stack, plus the two aggregate profilers the paper's
// evaluation calls for — a slow-op log (tail-latency capture, §IV-B)
// and a Space-Saving top-K hot-GUID tracker (storage/query load
// balance, §IV-C).
//
// The paper's single-overlay-hop claim lives or dies on per-request
// latency decomposition: when a lookup takes 80 ms instead of the
// hop-count-predicted 20 ms, aggregate histograms (internal/metrics)
// cannot say whether the time went into the dial, a retry backoff, a
// replica failover or the store itself. A sampled trace can. The
// design constraints, in order:
//
//  1. The hot path must stay allocation-free when sampling is off.
//     Every public entry point is nil-receiver safe: a nil *Tracer and
//     a nil *Span no-op, so instrumented code calls unconditionally
//     and disabled tracing costs a nil check.
//  2. Determinism. Sampling decisions and trace IDs derive from a
//     seeded counter (splitmix64), never from wall-clock or math/rand:
//     two runs with the same seed and the same operation order sample
//     the same ops and assign the same IDs, so span trees are
//     comparable across runs (and testable for equality).
//  3. Bounded memory. Completed traces and slow ops land in fixed-size
//     lock-free ring buffers; the hot-GUID trackers hold exactly K
//     monitored keys (Space-Saving, Metwally et al.).
//
// Trace context (trace ID, parent span ID, sampled flag) propagates on
// the wire via the v2 frame extension in internal/wire, negotiated per
// connection in MsgHello; v1 peers and v2 peers without the extension
// are untouched.
package trace

import "time"

// TraceID identifies one end-to-end operation across processes. Zero
// means "no trace".
type TraceID uint64

// SpanID identifies one span within a trace. Zero means "no span".
type SpanID uint64

// Context is the wire-propagated trace context: it rides on v2 frames
// (see wire.AppendTraceContext) so the server can parent its spans
// under the client attempt that sent the request.
type Context struct {
	// Trace is the trace the request belongs to.
	Trace TraceID
	// Span is the sender's span for this request (the remote parent of
	// whatever spans the receiver opens).
	Span SpanID
	// Sampled reports whether the trace is being recorded; receivers
	// skip span bookkeeping for unsampled requests.
	Sampled bool
}

// splitmix64 is the mixing function behind every derived ID: a
// bijective 64-bit finalizer (Steele et al.) with full avalanche, so
// sequential inputs yield well-spread IDs deterministically.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// NewTraceID derives the trace ID for the n-th sampled operation under
// seed. The derivation is deterministic and collision-free per seed
// (splitmix64 is bijective).
func NewTraceID(seed, n uint64) TraceID {
	id := TraceID(splitmix64(seed ^ (n + 1)))
	if id == 0 {
		id = 1
	}
	return id
}

// FromRequestID derives a trace ID from a v2 wire request ID. Servers
// use it to stamp slow-op log entries for requests that arrived
// without trace context (unsampled, or the peer never negotiated the
// extension), so a slow frame is still correlatable with the client's
// connection logs by request ID.
func FromRequestID(id uint64) TraceID {
	t := TraceID(splitmix64(id))
	if t == 0 {
		t = 1
	}
	return t
}

// sinceUs returns the elapsed microseconds from t0 to t, never
// negative and never zero for a completed interval (sub-microsecond
// work rounds up to 1µs so "finished" and "still open" stay
// distinguishable in span records).
func sinceUs(t0, t time.Time) int64 {
	us := t.Sub(t0).Microseconds()
	if us <= 0 {
		return 1
	}
	return us
}
