package trace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmap/internal/guid"
)

// TestNilSafety exercises every public entry point on nil receivers:
// the tracing-off hot path must be inert, not panicky.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartOp("op")
	if sp != nil {
		t.Fatalf("nil tracer StartOp = %v, want nil", sp)
	}
	sp.Eventf("should not evaluate %d", 1)
	if c := sp.Context(); c != (Context{}) {
		t.Fatalf("nil span Context = %+v, want zero", c)
	}
	if id := sp.TraceID(); id != 0 {
		t.Fatalf("nil span TraceID = %d, want 0", id)
	}
	if ch := sp.NewChild("x"); ch != nil {
		t.Fatalf("nil span NewChild = %v, want nil", ch)
	}
	sp.End()
	tr.FinishOp(nil, "op", guid.GUID{}, time.Now(), nil)
	tr.ObserveServerOp("op", 1, Context{}, time.Now())
	tr.ObserveSlow("op", "d", time.Now())
	if tr.SlowEnabled() {
		t.Fatal("nil tracer SlowEnabled = true")
	}
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces = %v", got)
	}
	if got := tr.SlowOps(); got != nil {
		t.Fatalf("nil tracer SlowOps = %v", got)
	}
	if st := tr.Stats(); st != (Stats{}) {
		t.Fatalf("nil tracer Stats = %+v", st)
	}

	var hk *HotKeys
	hk.ObserveLookup(guid.GUID{})
	hk.ObserveInsert(guid.GUID{})
	if got := hk.TopLookups(5); got != nil {
		t.Fatalf("nil hotkeys TopLookups = %v", got)
	}

	var lg *Logger
	lg.Debug("x")
	lg.Info("x", "k", "v")
	lg.Warn("x")
	lg.Error("x")
	lg.SetLevel(LevelDebug)
	if lg.Enabled(LevelError) {
		t.Fatal("nil logger Enabled = true")
	}
}

func TestNewTraceIDDeterministic(t *testing.T) {
	a := NewTraceID(42, 7)
	b := NewTraceID(42, 7)
	if a != b {
		t.Fatalf("NewTraceID not deterministic: %x vs %x", a, b)
	}
	if a == NewTraceID(42, 8) {
		t.Fatal("distinct ops produced equal trace IDs")
	}
	if a == NewTraceID(43, 7) {
		t.Fatal("distinct seeds produced equal trace IDs")
	}
	if NewTraceID(0, 0) == 0 || FromRequestID(0) == 0 {
		t.Fatal("derived trace ID must never be zero")
	}
}

// TestSamplingRatio checks the 1-in-N deterministic sampler: with
// Sample=4, exactly ops 0, 4, 8, ... open spans.
func TestSamplingRatio(t *testing.T) {
	tr := New(Config{Sample: 4})
	var sampled []int
	for i := 0; i < 16; i++ {
		sp := tr.StartOp("op")
		if sp != nil {
			sampled = append(sampled, i)
			sp.End()
		}
	}
	want := []int{0, 4, 8, 12}
	if fmt.Sprint(sampled) != fmt.Sprint(want) {
		t.Fatalf("sampled ops = %v, want %v", sampled, want)
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("published traces = %d, want 4", got)
	}
	st := tr.Stats()
	if st.Ops != 16 || st.Sampled != 4 {
		t.Fatalf("stats = %+v, want Ops=16 Sampled=4", st)
	}
}

// runCanonicalOps drives one tracer through a fixed sequence of ops
// with child spans and events, returning the rendered (timeless) trees.
func runCanonicalOps(tr *Tracer) []string {
	for i := 0; i < 6; i++ {
		sp := tr.StartOp("client.lookup")
		att := sp.NewChild("attempt")
		att.Eventf("as=%d attempt=%d", 100+i, 0)
		if i%2 == 0 {
			att.Eventf("retry: timeout")
			att2 := sp.NewChild("attempt")
			att2.Eventf("as=%d attempt=%d", 200+i, 1)
			att2.End()
		}
		att.End()
		sp.End()
	}
	var trees []string
	for _, v := range tr.Traces() {
		trees = append(trees, v.Tree(false))
	}
	return trees
}

// TestDeterministicSpanTrees is the acceptance-criteria test: identical
// seeds and identical op sequences yield byte-identical span trees
// (IDs, structure, names, events).
func TestDeterministicSpanTrees(t *testing.T) {
	a := runCanonicalOps(New(Config{Sample: 2, Seed: 99}))
	b := runCanonicalOps(New(Config{Sample: 2, Seed: 99}))
	if len(a) == 0 {
		t.Fatal("no traces produced")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("identical seeds produced different span trees:\n--- run A ---\n%s\n--- run B ---\n%s",
			strings.Join(a, "\n"), strings.Join(b, "\n"))
	}
	c := runCanonicalOps(New(Config{Sample: 2, Seed: 100}))
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Fatal("different seeds produced identical trace IDs")
	}
}

func TestSpanTreeRendering(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 1})
	sp := tr.StartOp("root")
	ch := sp.NewChild("child")
	ch.Eventf("hello %s", "world")
	gr := ch.NewChild("grandchild")
	gr.End()
	ch.End()
	open := sp.NewChild("abandoned")
	_ = open
	sp.End()

	views := tr.Traces()
	if len(views) != 1 {
		t.Fatalf("traces = %d, want 1", len(views))
	}
	v := views[0]
	tree := v.Tree(false)
	// Tree(false) renders siblings in canonical (sorted) order, so
	// "abandoned" precedes "child" regardless of creation order.
	want := fmt.Sprintf("trace %016x spans=4\n- root\n  - abandoned\n  - child\n    · hello world\n    - grandchild\n", uint64(v.Trace))
	if tree != want {
		t.Fatalf("tree mismatch:\ngot:\n%s\nwant:\n%s", tree, want)
	}
	// The abandoned span stays open (DurUs == 0) in the published view,
	// and its later End must not mutate the view.
	if v.Spans[3].Name != "abandoned" || v.Spans[3].DurUs != 0 {
		t.Fatalf("abandoned span = %+v, want open", v.Spans[3])
	}
	open.End()
	if v.Spans[3].DurUs != 0 {
		t.Fatal("End after publish mutated the published view")
	}
	timed := v.Tree(true)
	if !strings.Contains(timed, "(open)") {
		t.Fatalf("timed tree should mark open spans:\n%s", timed)
	}
}

// TestRemoteParent checks server-side root spans joined to a client
// trace: same trace ID, remote parent rendered as such.
func TestRemoteParent(t *testing.T) {
	client := New(Config{Sample: 1, Seed: 7})
	server := New(Config{Sample: 1, Seed: 8})

	sp := client.StartOp("client.lookup")
	att := sp.NewChild("attempt")
	tc := att.Context()
	if !tc.Sampled || tc.Trace == 0 || tc.Span == 0 {
		t.Fatalf("attempt context = %+v", tc)
	}

	ssp := server.StartSpanFromContext("server.frame", tc)
	h := ssp.NewChild("server.handle")
	h.End()
	ssp.End()
	att.End()
	sp.End()

	sViews := server.Traces()
	if len(sViews) != 1 {
		t.Fatalf("server traces = %d, want 1", len(sViews))
	}
	sv := sViews[0]
	if sv.Trace != tc.Trace {
		t.Fatalf("server trace ID %x, want client's %x", sv.Trace, tc.Trace)
	}
	if sv.Spans[0].Remote != tc.Span || sv.Spans[0].Parent != 0 {
		t.Fatalf("server root remote parent %x (parent %x), want remote %x parent 0",
			sv.Spans[0].Remote, sv.Spans[0].Parent, tc.Span)
	}
	if tree := sv.Tree(false); !strings.Contains(tree, "remote parent span") {
		t.Fatalf("server tree should note the remote parent:\n%s", tree)
	}
	// Unsampled or empty contexts must not open spans.
	if s := server.StartSpanFromContext("x", Context{Trace: 5, Sampled: false}); s != nil {
		t.Fatal("unsampled context opened a span")
	}
	if s := server.StartSpanFromContext("x", Context{Sampled: true}); s != nil {
		t.Fatal("zero-trace context opened a span")
	}
}

// TestSlowOpCapture: slow ops land in the log even when unsampled, and
// fast ops do not.
func TestSlowOpCapture(t *testing.T) {
	tr := New(Config{Sample: 0, SlowOp: time.Microsecond})
	if !tr.SlowEnabled() {
		t.Fatal("SlowEnabled = false with threshold set")
	}
	g := guid.FromUint64(0xDEAD)
	start := time.Now().Add(-time.Millisecond)
	tr.FinishOp(nil, "lookup", g, start, fmt.Errorf("not found"))
	tr.ObserveServerOp("server.lookup", 17, Context{}, start)
	tr.ObserveSlow("engine.unit", "unit=3", start)

	slow := tr.SlowOps()
	if len(slow) != 3 {
		t.Fatalf("slow ops = %d, want 3", len(slow))
	}
	cli := slow[0]
	if cli.Op != "lookup" || cli.GUID != g.String() || cli.Err != "not found" || cli.Sampled {
		t.Fatalf("client slow op = %+v", cli)
	}
	if cli.DurUs < 900 {
		t.Fatalf("client slow op dur = %dµs, want ≈1000", cli.DurUs)
	}
	srv := slow[1]
	if srv.Trace != FromRequestID(17) {
		t.Fatalf("server slow op trace = %x, want FromRequestID(17) = %x", srv.Trace, FromRequestID(17))
	}
	eng := slow[2]
	if eng.Detail != "unit=3" || eng.Op != "engine.unit" {
		t.Fatalf("engine slow op = %+v", eng)
	}

	// Fast ops stay out of the log.
	fast := New(Config{SlowOp: time.Hour})
	fast.FinishOp(nil, "lookup", g, time.Now(), nil)
	fast.ObserveServerOp("x", 1, Context{}, time.Now())
	fast.ObserveSlow("x", "", time.Now())
	if got := len(fast.SlowOps()); got != 0 {
		t.Fatalf("fast ops recorded as slow: %d", got)
	}

	// A sampled slow op carries its real trace ID.
	both := New(Config{Sample: 1, SlowOp: time.Microsecond, Seed: 3})
	sp := both.StartOp("lookup")
	both.FinishOp(sp, "lookup", g, time.Now().Add(-time.Millisecond), nil)
	bs := both.SlowOps()
	if len(bs) != 1 || !bs[0].Sampled {
		t.Fatalf("sampled slow ops = %+v", bs)
	}
	if bs[0].Trace != both.Traces()[0].Trace {
		t.Fatalf("sampled slow op trace = %x, want %x", bs[0].Trace, both.Traces()[0].Trace)
	}
}

func TestRingWraparound(t *testing.T) {
	r := newRing[int](4)
	for i := 0; i < 10; i++ {
		v := i
		r.put(&v)
	}
	if r.total() != 10 {
		t.Fatalf("total = %d, want 10", r.total())
	}
	snap := r.snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(snap))
	}
	for i, p := range snap {
		if *p != 6+i {
			t.Fatalf("snapshot[%d] = %d, want %d (oldest-first retention)", i, *p, 6+i)
		}
	}
	// Partial fill: oldest-first from slot 0.
	r2 := newRing[int](8)
	for i := 0; i < 3; i++ {
		v := i * 10
		r2.put(&v)
	}
	snap2 := r2.snapshot()
	if len(snap2) != 3 || *snap2[0] != 0 || *snap2[2] != 20 {
		t.Fatalf("partial snapshot = %v", snap2)
	}
}

// TestRingConcurrent hammers the ring from many goroutines under -race:
// no torn entries, every retained pointer valid.
func TestRingConcurrent(t *testing.T) {
	r := newRing[uint64](32)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v := uint64(w*per + i)
				r.put(&v)
				if i%17 == 0 {
					for _, p := range r.snapshot() {
						if p == nil {
							t.Error("nil entry in snapshot")
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if r.total() != writers*per {
		t.Fatalf("total = %d, want %d", r.total(), writers*per)
	}
	if got := len(r.snapshot()); got != 32 {
		t.Fatalf("retained = %d, want 32", got)
	}
}

// TestSpaceSaving checks the top-K guarantee on a skewed stream: keys
// with true frequency above N/K are monitored, counts overestimate by
// at most Err, and Count-Err lower-bounds the true frequency.
func TestSpaceSaving(t *testing.T) {
	s := NewSpaceSaving(8)
	truth := map[uint64]uint64{}
	// Zipf-ish: key i appears 2^(12-i) times, plus a tail of singletons.
	var stream []uint64
	for i := uint64(1); i <= 6; i++ {
		n := uint64(1) << (12 - i)
		truth[i] = n
		for j := uint64(0); j < n; j++ {
			stream = append(stream, i)
		}
	}
	for i := uint64(1000); i < 1200; i++ {
		truth[i] = 1
		stream = append(stream, i)
	}
	// Deterministic interleave so hot keys are spread through the tail.
	for i, j := 0, len(stream)-1; i < j; i, j = i+3, j-1 {
		stream[i], stream[j] = stream[j], stream[i]
	}
	var total uint64
	for _, k := range stream {
		s.Observe(guid.FromUint64(k))
		total++
	}
	if s.Total() != total {
		t.Fatalf("Total = %d, want %d", s.Total(), total)
	}
	top := s.Top(0)
	if len(top) != 8 {
		t.Fatalf("monitored = %d, want 8", len(top))
	}
	byGUID := map[string]HotKey{}
	for _, k := range top {
		byGUID[k.GUID.String()] = k
		if k.Err > k.Count {
			t.Fatalf("entry %+v has Err > Count", k)
		}
	}
	for i := uint64(1); i <= 6; i++ {
		g := guid.FromUint64(i)
		k, ok := byGUID[g.String()]
		if !ok {
			t.Fatalf("hot key %d (freq %d > N/K=%d) not monitored", i, truth[i], total/8)
		}
		if k.Count < truth[i] {
			t.Fatalf("key %d count %d underestimates truth %d", i, k.Count, truth[i])
		}
		if k.Count-k.Err > truth[i] {
			t.Fatalf("key %d guaranteed count %d exceeds truth %d", i, k.Count-k.Err, truth[i])
		}
	}
	// Top is sorted hottest-first.
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatalf("Top not sorted: %d before %d", top[i-1].Count, top[i].Count)
		}
	}
	if got := len(s.Top(3)); got != 3 {
		t.Fatalf("Top(3) = %d entries", got)
	}
}

func TestHotKeysClasses(t *testing.T) {
	hk := NewHotKeys(4)
	a, b := guid.FromUint64(1), guid.FromUint64(2)
	for i := 0; i < 5; i++ {
		hk.ObserveLookup(a)
	}
	hk.ObserveInsert(b)
	lk, ins := hk.TopLookups(10), hk.TopInserts(10)
	if len(lk) != 1 || lk[0].GUID != a || lk[0].Count != 5 {
		t.Fatalf("TopLookups = %+v", lk)
	}
	if len(ins) != 1 || ins[0].GUID != b || ins[0].Count != 1 {
		t.Fatalf("TopInserts = %+v", ins)
	}
}

func TestLogger(t *testing.T) {
	var sb strings.Builder
	lg := NewLogger(&sb, LevelInfo)
	lg.now = func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
	lg.Debug("dropped")
	lg.Info("plain")
	lg.Warn("bad insert", "remote", "1.2.3.4:5", "err", fmt.Errorf("wire: truncated message"))
	lg.Error("odd args", "dangling")
	got := sb.String()
	want := "" +
		"ts=2026-08-06T12:00:00.000Z level=info msg=plain\n" +
		"ts=2026-08-06T12:00:00.000Z level=warn msg=\"bad insert\" remote=1.2.3.4:5 err=\"wire: truncated message\"\n" +
		"ts=2026-08-06T12:00:00.000Z level=error msg=\"odd args\" arg=dangling\n"
	if got != want {
		t.Fatalf("log output:\ngot:\n%s\nwant:\n%s", got, want)
	}

	sb.Reset()
	lg.SetLevel(LevelError)
	lg.Warn("dropped after SetLevel")
	lg.Error("kept")
	if !strings.Contains(sb.String(), "kept") || strings.Contains(sb.String(), "dropped") {
		t.Fatalf("SetLevel not honored: %q", sb.String())
	}

	for _, tc := range []struct {
		in   string
		want Level
		err  bool
	}{
		{"debug", LevelDebug, false}, {"INFO", LevelInfo, false},
		{"warn", LevelWarn, false}, {"warning", LevelWarn, false},
		{"error", LevelError, false}, {"off", LevelOff, false},
		{"bogus", 0, true},
	} {
		got, err := ParseLevel(tc.in)
		if (err != nil) != tc.err {
			t.Fatalf("ParseLevel(%q) err = %v", tc.in, err)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ParseLevel(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
	if LevelWarn.String() != "warn" || Level(99).String() != "Level(99)" {
		t.Fatal("Level.String misbehaved")
	}
}

func TestTracesHandler(t *testing.T) {
	tr := New(Config{Sample: 1, SlowOp: time.Microsecond, Seed: 5})
	sp := tr.StartOp("client.lookup")
	sp.NewChild("attempt").End()
	tr.FinishOp(sp, "lookup", guid.FromUint64(9), time.Now().Add(-time.Millisecond), nil)

	rec := httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "client.lookup") || !strings.Contains(body, "attempt") {
		t.Fatalf("text body missing span tree:\n%s", body)
	}
	if !strings.Contains(body, "op=lookup") {
		t.Fatalf("text body missing slow-op line:\n%s", body)
	}

	rec = httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=json", nil))
	var doc struct {
		Stats   Stats        `json:"stats"`
		Traces  []*TraceView `json:"traces"`
		SlowOps []*SlowOp    `json:"slow_ops"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("json decode: %v\n%s", err, rec.Body.String())
	}
	if len(doc.Traces) != 1 || len(doc.Traces[0].Spans) != 2 || len(doc.SlowOps) != 1 {
		t.Fatalf("json doc = %+v", doc)
	}
	if doc.Stats.Sampled != 1 {
		t.Fatalf("json stats = %+v", doc.Stats)
	}

	// n= limits to most recent.
	for i := 0; i < 4; i++ {
		s := tr.StartOp("extra")
		tr.FinishOp(s, "extra", guid.GUID{}, time.Now(), nil)
	}
	rec = httptest.NewRecorder()
	TracesHandler(tr).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=json&n=2", nil))
	doc.Traces = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Traces) != 2 {
		t.Fatalf("n=2 returned %d traces", len(doc.Traces))
	}

	// Nil tracer serves an empty document rather than panicking.
	rec = httptest.NewRecorder()
	TracesHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("nil tracer handler status = %d", rec.Code)
	}
}

func TestHotKeysHandler(t *testing.T) {
	hk := NewHotKeys(4)
	g := guid.FromUint64(0xBEEF)
	for i := 0; i < 3; i++ {
		hk.ObserveLookup(g)
	}
	hk.ObserveInsert(g)

	rec := httptest.NewRecorder()
	HotKeysHandler(hk).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hotkeys", nil))
	body := rec.Body.String()
	if !strings.Contains(body, "# lookups: total=3") || !strings.Contains(body, "# inserts: total=1") {
		t.Fatalf("text body:\n%s", body)
	}
	if !strings.Contains(body, g.String()) {
		t.Fatalf("text body missing GUID:\n%s", body)
	}

	rec = httptest.NewRecorder()
	HotKeysHandler(hk).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hotkeys?format=json&n=1", nil))
	var doc hotKeysJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("json decode: %v\n%s", err, rec.Body.String())
	}
	if doc.Lookups.Total != 3 || len(doc.Lookups.Top) != 1 || doc.Lookups.Top[0].Count != 3 {
		t.Fatalf("json lookups = %+v", doc.Lookups)
	}
	if doc.Inserts.Total != 1 {
		t.Fatalf("json inserts = %+v", doc.Inserts)
	}

	rec = httptest.NewRecorder()
	HotKeysHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/hotkeys?format=json", nil))
	if rec.Code != 200 {
		t.Fatalf("nil hotkeys handler status = %d", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("nil hotkeys json: %v", err)
	}
}

// TestConcurrentSpans exercises span creation/events/end from many
// goroutines against one trace under -race.
func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{Sample: 1, Seed: 2})
	sp := tr.StartOp("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ch := sp.NewChild(fmt.Sprintf("worker-%d", i))
			ch.Eventf("step %d", i)
			ch.End()
		}(i)
	}
	wg.Wait()
	sp.End()
	views := tr.Traces()
	if len(views) != 1 || len(views[0].Spans) != 9 {
		t.Fatalf("views = %d spans = %d", len(views), len(views[0].Spans))
	}
}
