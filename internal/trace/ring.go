// Lock-free fixed-size ring buffer: the bounded-memory sink for
// completed traces and slow-op records. Writers claim a slot with one
// atomic increment and publish with one atomic pointer store; readers
// never block writers. Entries are immutable once published (the
// tracer deep-copies span data before putting), so a snapshot is a
// plain pointer copy.
package trace

import "sync/atomic"

type ring[T any] struct {
	slots []atomic.Pointer[T]
	next  atomic.Uint64 // total puts; next slot = next % len(slots)
}

func newRing[T any](size int) *ring[T] {
	return &ring[T]{slots: make([]atomic.Pointer[T], size)}
}

// put publishes v, overwriting the oldest entry once the ring is full.
func (r *ring[T]) put(v *T) {
	i := r.next.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(v)
}

// total returns the number of puts ever made (≥ the retained count).
func (r *ring[T]) total() uint64 { return r.next.Load() }

// snapshot returns the retained entries, oldest first. Entries being
// overwritten concurrently may be skipped or appear at either end —
// the usual monitoring trade-off; no entry is ever returned torn.
func (r *ring[T]) snapshot() []*T {
	n := r.next.Load()
	size := uint64(len(r.slots))
	start := uint64(0)
	if n > size {
		start = n - size
	}
	out := make([]*T, 0, n-start)
	for i := start; i < n; i++ {
		if v := r.slots[i%size].Load(); v != nil {
			out = append(out, v)
		}
	}
	return out
}
