// Debug HTTP handlers: /debug/traces (completed span trees + slow-op
// log) and /debug/hotkeys (Space-Saving top-K per op class). Both
// default to a human-readable text rendering and switch to JSON with
// ?format=json, mirroring the /debug/metrics convention.
package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// TracesHandler serves the tracer's retained traces and slow ops.
// Query parameters: format=json for machine output, n=<count> to limit
// to the most recent n traces.
func TracesHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		traces := t.Traces()
		slow := t.SlowOps()
		if n, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && n >= 0 && n < len(traces) {
			traces = traces[len(traces)-n:]
		}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(struct {
				Stats   Stats        `json:"stats"`
				Traces  []*TraceView `json:"traces"`
				SlowOps []*SlowOp    `json:"slow_ops"`
			}{t.Stats(), traces, slow})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		st := t.Stats()
		fmt.Fprintf(w, "# tracer: ops=%d sampled=%d slow=%d\n", st.Ops, st.Sampled, st.SlowOps)
		fmt.Fprintf(w, "# traces retained: %d\n\n", len(traces))
		for _, v := range traces {
			fmt.Fprintf(w, "%s\n", v.Tree(true))
		}
		fmt.Fprintf(w, "# slow ops retained: %d\n", len(slow))
		for _, so := range slow {
			fmt.Fprintf(w, "%s op=%s", so.Time.UTC().Format("15:04:05.000"), so.Op)
			if so.GUID != "" {
				fmt.Fprintf(w, " guid=%s", so.GUID)
			}
			if so.Detail != "" {
				fmt.Fprintf(w, " detail=%q", so.Detail)
			}
			fmt.Fprintf(w, " dur=%dµs trace=%016x sampled=%v", so.DurUs, uint64(so.Trace), so.Sampled)
			if so.Err != "" {
				fmt.Fprintf(w, " err=%q", so.Err)
			}
			fmt.Fprintln(w)
		}
	})
}

// hotKeysJSON is the /debug/hotkeys JSON document.
type hotKeysJSON struct {
	Lookups hotClassJSON `json:"lookups"`
	Inserts hotClassJSON `json:"inserts"`
}

type hotClassJSON struct {
	Total uint64       `json:"total"`
	Top   []hotKeyJSON `json:"top"`
}

type hotKeyJSON struct {
	GUID  string `json:"guid"`
	Count uint64 `json:"count"`
	// Err is the Space-Saving overestimation bound: true frequency is in
	// [count-err, count].
	Err uint64 `json:"err"`
}

func hotClass(s *SpaceSaving, n int) hotClassJSON {
	if s == nil {
		return hotClassJSON{Top: []hotKeyJSON{}}
	}
	top := s.Top(n)
	out := hotClassJSON{Total: s.Total(), Top: make([]hotKeyJSON, 0, len(top))}
	for _, k := range top {
		out.Top = append(out.Top, hotKeyJSON{GUID: k.GUID.String(), Count: k.Count, Err: k.Err})
	}
	return out
}

// HotKeysHandler serves the node's hot-GUID trackers. Query
// parameters: format=json, n=<count> to limit each class (default 20).
func HotKeysHandler(h *HotKeys) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 20
		if v, err := strconv.Atoi(r.URL.Query().Get("n")); err == nil && v > 0 {
			n = v
		}
		var lookups, inserts *SpaceSaving
		if h != nil {
			lookups, inserts = h.lookups, h.inserts
		}
		doc := hotKeysJSON{Lookups: hotClass(lookups, n), Inserts: hotClass(inserts, n)}
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(doc)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeHotClass(w, "lookups", doc.Lookups)
		writeHotClass(w, "inserts", doc.Inserts)
	})
}

func writeHotClass(w http.ResponseWriter, name string, c hotClassJSON) {
	fmt.Fprintf(w, "# %s: total=%d monitored=%d\n", name, c.Total, len(c.Top))
	for i, k := range c.Top {
		fmt.Fprintf(w, "%3d. %s count=%d err=%d\n", i+1, k.GUID, k.Count, k.Err)
	}
	fmt.Fprintln(w)
}
