// The Tracer: sampling decisions, trace assembly entry points, the
// completed-trace ring and the slow-op log.
package trace

import (
	"sync/atomic"
	"time"

	"dmap/internal/guid"
)

// Default ring capacities.
const (
	DefaultRingSize    = 256
	DefaultSlowLogSize = 256
)

// Config tunes a Tracer. The zero value records nothing (no sampling,
// no slow-op capture) but still hands out a usable Tracer, which is
// occasionally convenient in tests; a nil *Tracer is the normal
// "tracing off" form.
type Config struct {
	// Sample is the sampling ratio: 1 in Sample operations opens a
	// recorded trace (1 = every op, 0 or negative = none). The decision
	// is a deterministic function of the op counter, not a coin flip.
	Sample int
	// SlowOp is the slow-operation threshold: any finished op at or
	// above it lands in the slow-op log even when unsampled. 0 disables
	// slow-op capture.
	SlowOp time.Duration
	// RingSize bounds the completed-trace ring (0 = DefaultRingSize).
	RingSize int
	// SlowLogSize bounds the slow-op log (0 = DefaultSlowLogSize).
	SlowLogSize int
	// Seed parameterizes trace-ID derivation; runs with equal seeds and
	// equal op orders assign equal IDs.
	Seed uint64
}

// Tracer samples operations into traces and captures slow operations.
// All methods are safe for concurrent use and safe on a nil receiver
// (where they no-op).
type Tracer struct {
	cfg  Config
	ops  atomic.Uint64 // operation counter: sampling + ID derivation
	ring *ring[TraceView]
	slow *ring[SlowOp]

	sampled  atomic.Uint64 // traces published
	slowSeen atomic.Uint64 // slow ops recorded
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SlowLogSize <= 0 {
		cfg.SlowLogSize = DefaultSlowLogSize
	}
	return &Tracer{
		cfg:  cfg,
		ring: newRing[TraceView](cfg.RingSize),
		slow: newRing[SlowOp](cfg.SlowLogSize),
	}
}

// SlowThreshold returns the configured slow-op threshold (0 when
// disabled or the tracer is nil).
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowOp
}

// StartOp opens the root span of a new operation trace, or returns nil
// when the op is not sampled (or the tracer is nil / sampling is off).
func (t *Tracer) StartOp(name string) *Span {
	if t == nil || t.cfg.Sample <= 0 {
		return nil
	}
	n := t.ops.Add(1) - 1
	if n%uint64(t.cfg.Sample) != 0 {
		return nil
	}
	return t.newRoot(name, NewTraceID(t.cfg.Seed, n), 0)
}

// StartSpanFromContext opens a root span joined to a remote trace (the
// server side of a traced request): same trace ID, parented under the
// sender's span. Returns nil for unsampled or empty contexts.
func (t *Tracer) StartSpanFromContext(name string, tc Context) *Span {
	if t == nil || !tc.Sampled || tc.Trace == 0 {
		return nil
	}
	return t.newRoot(name, tc.Trace, tc.Span)
}

func (t *Tracer) newRoot(name string, id TraceID, remote SpanID) *Span {
	now := time.Now()
	td := &TraceData{tracer: t, id: id, start: now}
	td.spans = append(td.spans, SpanRecord{ID: 1, Remote: remote, Name: name})
	return &Span{td: td, idx: 0, id: 1, start: now}
}

func (t *Tracer) publish(v *TraceView) {
	t.ring.put(v)
	t.sampled.Add(1)
}

// FinishOp completes an operation: it ends the op's span (sp may be
// nil for unsampled ops), and records a slow-op entry when the op's
// duration reaches the configured threshold — sampled or not. g and
// err annotate the slow entry (zero/nil are fine).
func (t *Tracer) FinishOp(sp *Span, op string, g guid.GUID, start time.Time, err error) {
	if t == nil {
		return
	}
	if err != nil {
		sp.Eventf("error: %v", err)
	}
	sp.End()
	if t.cfg.SlowOp <= 0 {
		return
	}
	d := time.Since(start)
	if d < t.cfg.SlowOp {
		return
	}
	so := SlowOp{
		Time:    start,
		Op:      op,
		Trace:   TraceID(sp.TraceID()),
		DurUs:   d.Microseconds(),
		Sampled: sp != nil,
	}
	if !g.IsZero() {
		so.GUID = g.String()
	}
	if err != nil {
		so.Err = err.Error()
	}
	t.recordSlow(&so)
}

// ObserveServerOp feeds the slow-op log from the server's frame loop.
// Requests that arrived without trace context get a trace ID derived
// from the v2 wire request ID, so a slow frame remains correlatable
// even when the trace was unsampled.
func (t *Tracer) ObserveServerOp(op string, reqID uint64, tc Context, start time.Time) {
	if t == nil || t.cfg.SlowOp <= 0 {
		return
	}
	d := time.Since(start)
	if d < t.cfg.SlowOp {
		return
	}
	id := tc.Trace
	if id == 0 {
		id = FromRequestID(reqID)
	}
	t.recordSlow(&SlowOp{
		Time:    start,
		Op:      op,
		Trace:   id,
		DurUs:   d.Microseconds(),
		Sampled: tc.Sampled,
	})
}

// ObserveSlow records an arbitrary slow operation (e.g. an engine work
// unit) when its duration reaches the threshold. detail is free-form
// and only evaluated by the caller on the slow path.
func (t *Tracer) ObserveSlow(op, detail string, start time.Time) {
	if t == nil || t.cfg.SlowOp <= 0 {
		return
	}
	d := time.Since(start)
	if d < t.cfg.SlowOp {
		return
	}
	t.recordSlow(&SlowOp{Time: start, Op: op, Detail: detail, DurUs: d.Microseconds()})
}

// SlowEnabled reports whether slow-op capture is on — the guard for
// callers that want to skip building detail strings eagerly.
func (t *Tracer) SlowEnabled() bool { return t != nil && t.cfg.SlowOp > 0 }

func (t *Tracer) recordSlow(so *SlowOp) {
	t.slow.put(so)
	t.slowSeen.Add(1)
}

// Traces returns the retained completed traces, oldest first.
func (t *Tracer) Traces() []*TraceView {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// SlowOps returns the retained slow-op records, oldest first.
func (t *Tracer) SlowOps() []*SlowOp {
	if t == nil {
		return nil
	}
	return t.slow.snapshot()
}

// Stats is a point-in-time summary of the tracer's activity.
type Stats struct {
	// Ops is the number of operations that consulted the sampler.
	Ops uint64
	// Sampled is the number of completed traces published to the ring.
	Sampled uint64
	// SlowOps is the number of slow operations recorded.
	SlowOps uint64
}

// Stats returns the tracer's activity counters (zero for nil).
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	return Stats{Ops: t.ops.Load(), Sampled: t.sampled.Load(), SlowOps: t.slowSeen.Load()}
}

// SlowOp is one slow-op log entry.
type SlowOp struct {
	Time time.Time `json:"time"`
	// Op names the operation ("lookup", "server.batch_insert",
	// "engine.unit", ...).
	Op string `json:"op"`
	// GUID is the operation's subject mapping, hex-encoded (empty when
	// not applicable, e.g. batch ops).
	GUID string `json:"guid,omitempty"`
	// Detail is free-form context (engine unit index, batch size...).
	Detail string `json:"detail,omitempty"`
	// Trace correlates with the sampled trace ring when Sampled, or is
	// derived (wire request ID) / zero when not.
	Trace   TraceID `json:"trace"`
	DurUs   int64   `json:"dur_us"`
	Err     string  `json:"err,omitempty"`
	Sampled bool    `json:"sampled"`
}
