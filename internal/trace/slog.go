// A small leveled key=value structured logger, replacing the server's
// discard-by-default *log.Logger. One line per record:
//
//	ts=2026-08-06T12:00:00.000Z level=warn msg="bad insert" remote=1.2.3.4:5 err="wire: truncated message"
//
// Values print with %v and are quoted when they contain spaces, quotes
// or '=' — mechanically parseable without a framework. A nil *Logger
// discards everything (the default-quiet posture), and level checks
// are one atomic load, so disabled levels cost nothing measurable.
package trace

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Levels, least to most severe. LevelOff disables all output.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("Level(%d)", int32(l))
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error",
// "off").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelOff, fmt.Errorf("trace: unknown log level %q", s)
	}
}

// Logger is a leveled key=value line logger. Nil-receiver safe: a nil
// *Logger discards everything.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
	// now is stubbed in tests for stable timestamps.
	now func() time.Time
}

// NewLogger writes records at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	l := &Logger{w: w, now: time.Now}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.min.Store(int32(min))
}

// Enabled reports whether records at lv would be emitted.
func (l *Logger) Enabled(lv Level) bool {
	return l != nil && lv >= Level(l.min.Load())
}

// Debug, Info, Warn and Error emit one record with alternating
// key/value pairs after the message.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if !l.Enabled(lv) {
		return
	}
	var sb strings.Builder
	sb.Grow(64)
	sb.WriteString("ts=")
	sb.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	sb.WriteString(" level=")
	sb.WriteString(lv.String())
	sb.WriteString(" msg=")
	sb.WriteString(quoteVal(msg))
	for i := 0; i+1 < len(kv); i += 2 {
		sb.WriteByte(' ')
		sb.WriteString(fmt.Sprintf("%v", kv[i]))
		sb.WriteByte('=')
		sb.WriteString(quoteVal(fmt.Sprintf("%v", kv[i+1])))
	}
	if len(kv)%2 == 1 {
		sb.WriteString(" arg=")
		sb.WriteString(quoteVal(fmt.Sprintf("%v", kv[len(kv)-1])))
	}
	sb.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, sb.String())
}

// quoteVal quotes a value when the bare form would be ambiguous.
func quoteVal(s string) string {
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return fmt.Sprintf("%q", s)
	}
	return s
}
