// Hot-GUID profiling: a Space-Saving top-K tracker (Metwally, Agrawal,
// El Abbadi: "Efficient computation of frequent and top-k elements in
// data streams") per node, kept separately for lookups and inserts.
//
// This instruments the paper's §IV-C load-balance analysis directly:
// DMap's uniform hash family balances *keys* across ASes, but a skewed
// request stream (one viral GUID, one chatty mobile host) can still
// overload a single replica set. Space-Saving bounds memory at exactly
// K monitored keys while guaranteeing that any GUID with true
// frequency above N/K is monitored, and reports a per-key
// overestimation bound (Err) so consumers can tell a certain hot key
// from a possibly-inflated one.
package trace

import (
	"sort"
	"sync"

	"dmap/internal/guid"
)

// HotKey is one monitored key: Count overestimates the true frequency
// by at most Err (Count - Err is a guaranteed lower bound).
type HotKey struct {
	GUID  guid.GUID
	Count uint64
	Err   uint64
}

// SpaceSaving is a fixed-capacity top-K frequency tracker. Safe for
// concurrent use; Observe on a monitored key is a map hit and an
// increment under a mutex, eviction is a linear min-scan over K
// entries (K is small: tens).
type SpaceSaving struct {
	mu      sync.Mutex
	cap     int
	index   map[guid.GUID]int // GUID → entries slot
	entries []HotKey
	total   uint64
}

// NewSpaceSaving builds a tracker monitoring up to k keys (k < 1 is
// clamped to 1).
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{cap: k, index: make(map[guid.GUID]int, k)}
}

// Observe counts one occurrence of g.
func (s *SpaceSaving) Observe(g guid.GUID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if i, ok := s.index[g]; ok {
		s.entries[i].Count++
		return
	}
	if len(s.entries) < s.cap {
		s.index[g] = len(s.entries)
		s.entries = append(s.entries, HotKey{GUID: g, Count: 1})
		return
	}
	// Evict the minimum-count key: the newcomer inherits min+1 with
	// error bound min — the Space-Saving replacement rule.
	mi := 0
	for i := 1; i < len(s.entries); i++ {
		if s.entries[i].Count < s.entries[mi].Count {
			mi = i
		}
	}
	e := &s.entries[mi]
	delete(s.index, e.GUID)
	s.index[g] = mi
	e.Err = e.Count
	e.Count++
	e.GUID = g
}

// Top returns up to n monitored keys, hottest first (ties broken by
// GUID for determinism). n <= 0 returns all monitored keys.
func (s *SpaceSaving) Top(n int) []HotKey {
	s.mu.Lock()
	out := append([]HotKey(nil), s.entries...)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].GUID.String() < out[j].GUID.String()
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Total returns the number of observations seen.
func (s *SpaceSaving) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// HotKeys bundles the per-node trackers: lookup load and insert/update
// load are separate distributions in §IV-C (query load vs storage
// churn), so they are tracked separately. Nil-receiver safe.
type HotKeys struct {
	lookups *SpaceSaving
	inserts *SpaceSaving
}

// NewHotKeys builds lookup and insert trackers of capacity k each.
func NewHotKeys(k int) *HotKeys {
	return &HotKeys{lookups: NewSpaceSaving(k), inserts: NewSpaceSaving(k)}
}

// ObserveLookup counts one lookup of g. No-op on nil.
func (h *HotKeys) ObserveLookup(g guid.GUID) {
	if h == nil {
		return
	}
	h.lookups.Observe(g)
}

// ObserveInsert counts one insert/update of g. No-op on nil.
func (h *HotKeys) ObserveInsert(g guid.GUID) {
	if h == nil {
		return
	}
	h.inserts.Observe(g)
}

// TopLookups returns the hottest lookup keys (nil-safe).
func (h *HotKeys) TopLookups(n int) []HotKey {
	if h == nil {
		return nil
	}
	return h.lookups.Top(n)
}

// Totals returns the observed lookup and insert counts (0, 0 on nil).
func (h *HotKeys) Totals() (lookups, inserts uint64) {
	if h == nil {
		return 0, 0
	}
	return h.lookups.Total(), h.inserts.Total()
}

// TopInserts returns the hottest insert keys (nil-safe).
func (h *HotKeys) TopInserts(n int) []HotKey {
	if h == nil {
		return nil
	}
	return h.inserts.Top(n)
}
