// Span assembly and rendering. A trace is assembled in one TraceData
// value shared by all of its spans; when the root span ends, the
// assembly is frozen into an immutable TraceView and published to the
// tracer's ring. Span IDs are sequential within a trace (1 = root), so
// identically-ordered runs produce identical trees — the determinism
// the engine's bit-identical-results guarantee extends to traces.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Event is one timestamped annotation on a span (a retry, a failover,
// a redial, an error).
type Event struct {
	// AtUs is the event's offset from the trace start in microseconds.
	AtUs int64  `json:"at_us"`
	Msg  string `json:"msg"`
}

// SpanRecord is one completed (or still-open) span in a TraceView.
type SpanRecord struct {
	ID SpanID `json:"id"`
	// Parent is the parent span ID within this trace view (0 for the
	// root). Span IDs are only unique per process, so a remote parent
	// carried in the wire context is kept in Remote, not here — it could
	// collide with a local ID.
	Parent SpanID `json:"parent"`
	// Remote is the remote parent span ID from the wire context, set
	// only on a server-side root span joined to a client trace.
	Remote SpanID `json:"remote_parent,omitempty"`
	Name   string `json:"name"`
	// StartUs is the span's start offset from the trace start (µs).
	StartUs int64 `json:"start_us"`
	// DurUs is the span's duration (µs); 0 marks a span that was still
	// open when the root ended (e.g. a hedged lookup attempt abandoned
	// after the freshness grace).
	DurUs  int64   `json:"dur_us"`
	Events []Event `json:"events,omitempty"`
}

// TraceData is the mutable assembly for one in-flight trace.
type TraceData struct {
	tracer *Tracer
	id     TraceID
	start  time.Time

	mu    sync.Mutex
	spans []SpanRecord
}

// Span is a handle on one span of an in-flight trace. A nil *Span is
// valid and inert: every method no-ops, which is how unsampled
// operations stay allocation-free.
type Span struct {
	td    *TraceData
	idx   int // index into td.spans
	id    SpanID
	start time.Time
}

// TraceID returns the span's trace ID as a raw uint64, 0 for a nil
// span — the form histogram exemplars and slow-op records want.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return uint64(s.td.id)
}

// Context returns the wire context identifying this span as the remote
// parent of whatever the receiver opens. Zero for a nil span.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{Trace: s.td.id, Span: s.id, Sampled: true}
}

// NewChild opens a child span. Returns nil on a nil receiver.
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	td := s.td
	td.mu.Lock()
	id := SpanID(len(td.spans) + 1)
	td.spans = append(td.spans, SpanRecord{
		ID:      id,
		Parent:  s.id,
		Name:    name,
		StartUs: now.Sub(td.start).Microseconds(),
	})
	idx := len(td.spans) - 1
	td.mu.Unlock()
	return &Span{td: td, idx: idx, id: id, start: now}
}

// Eventf annotates the span. On a nil span the format arguments are
// never evaluated by fmt, keeping the disabled path cheap.
func (s *Span) Eventf(format string, args ...any) {
	if s == nil {
		return
	}
	msg := fmt.Sprintf(format, args...)
	at := time.Since(s.td.start).Microseconds()
	s.td.mu.Lock()
	r := &s.td.spans[s.idx]
	r.Events = append(r.Events, Event{AtUs: at, Msg: msg})
	s.td.mu.Unlock()
}

// End completes the span. Ending the root span freezes the whole trace
// into an immutable view and publishes it to the tracer's ring; spans
// still open at that point keep DurUs == 0 in the published view (and
// their own later End is a no-op against the published copy).
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	td := s.td
	td.mu.Lock()
	r := &td.spans[s.idx]
	if r.DurUs == 0 {
		r.DurUs = sinceUs(s.start, now)
	}
	if s.idx != 0 {
		td.mu.Unlock()
		return
	}
	view := &TraceView{
		Trace: td.id,
		Start: td.start,
		DurUs: r.DurUs,
		Spans: append([]SpanRecord(nil), td.spans...),
	}
	for i := range view.Spans {
		view.Spans[i].Events = append([]Event(nil), view.Spans[i].Events...)
	}
	td.mu.Unlock()
	td.tracer.publish(view)
}

// TraceView is an immutable, completed trace: what the ring retains,
// /debug/traces serves and tests compare.
type TraceView struct {
	Trace TraceID      `json:"trace"`
	Start time.Time    `json:"start"`
	DurUs int64        `json:"dur_us"`
	Spans []SpanRecord `json:"spans"`
}

// Tree renders the trace as an indented span tree. withTimes selects
// whether durations and offsets are included. Without them the
// rendering depends only on structure, names and event messages, and
// sibling subtrees are rendered in canonical (sorted) order — parallel
// fan-out (a K-replica insert, a hedged lookup, a batched chunk spread)
// appends children in scheduler order, so creation order is the one
// thing about a trace that is NOT deterministic; canonical ordering
// makes identically-seeded runs render byte-identical trees anyway.
// With times, chronological record order is kept (the operator view).
func (v *TraceView) Tree(withTimes bool) string {
	var sb strings.Builder
	if withTimes {
		fmt.Fprintf(&sb, "trace %016x dur=%dµs spans=%d\n", uint64(v.Trace), v.DurUs, len(v.Spans))
	} else {
		fmt.Fprintf(&sb, "trace %016x spans=%d\n", uint64(v.Trace), len(v.Spans))
	}
	children := make(map[SpanID][]int, len(v.Spans))
	var roots []int
	for i, r := range v.Spans {
		if r.Parent != 0 {
			children[r.Parent] = append(children[r.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var render func(i int, depth int) string
	render = func(i int, depth int) string {
		var b strings.Builder
		r := v.Spans[i]
		indent := strings.Repeat("  ", depth)
		if withTimes {
			if r.DurUs == 0 {
				fmt.Fprintf(&b, "%s- %s @+%dµs (open)\n", indent, r.Name, r.StartUs)
			} else {
				fmt.Fprintf(&b, "%s- %s @+%dµs %dµs\n", indent, r.Name, r.StartUs, r.DurUs)
			}
		} else {
			fmt.Fprintf(&b, "%s- %s\n", indent, r.Name)
		}
		for _, e := range r.Events {
			if withTimes {
				fmt.Fprintf(&b, "%s  · @+%dµs %s\n", indent, e.AtUs, e.Msg)
			} else {
				fmt.Fprintf(&b, "%s  · %s\n", indent, e.Msg)
			}
		}
		subs := make([]string, 0, len(children[r.ID]))
		for _, c := range children[r.ID] {
			subs = append(subs, render(c, depth+1))
		}
		if !withTimes {
			sort.Strings(subs)
		}
		for _, s := range subs {
			b.WriteString(s)
		}
		return b.String()
	}
	for _, i := range roots {
		if r := v.Spans[i].Remote; r != 0 {
			fmt.Fprintf(&sb, "(remote parent span %016x)\n", uint64(r))
		}
		sb.WriteString(render(i, 0))
	}
	return sb.String()
}
