package bucket

import (
	"testing"

	"dmap/internal/guid"
)

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(0); err == nil {
		t.Error("0 buckets should fail")
	}
	if _, err := NewIndex(-5); err == nil {
		t.Error("negative buckets should fail")
	}
}

func TestAddRemove(t *testing.T) {
	ix, err := NewIndex(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(Segment{ID: 1, AS: 10}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(Segment{ID: 2, AS: 11}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(Segment{ID: 1, AS: 12}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := ix.Add(Segment{ID: 3, AS: -1}); err == nil {
		t.Error("negative AS should fail")
	}
	if ix.Len() != 2 {
		t.Errorf("Len = %d, want 2", ix.Len())
	}
	if !ix.Remove(1) {
		t.Error("Remove(1) should succeed")
	}
	if ix.Remove(1) {
		t.Error("double Remove should fail")
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
}

func TestResolveEmpty(t *testing.T) {
	ix, _ := NewIndex(8)
	h := guid.MustHasher(2, 0)
	if _, ok := ix.Resolve(guid.New("g"), h, 0); ok {
		t.Error("empty index must not resolve")
	}
	if got := ix.ResolveAll(guid.New("g"), h); len(got) != 0 {
		t.Errorf("ResolveAll on empty = %v", got)
	}
}

func TestResolveDeterministicAndValid(t *testing.T) {
	ix, _ := NewIndex(64)
	for i := 0; i < 100; i++ {
		if err := ix.Add(Segment{ID: uint64(i), AS: i}); err != nil {
			t.Fatal(err)
		}
	}
	h := guid.MustHasher(3, 0)
	for i := 0; i < 200; i++ {
		g := guid.FromUint64(uint64(i))
		segs := ix.ResolveAll(g, h)
		if len(segs) != 3 {
			t.Fatalf("ResolveAll returned %d segments", len(segs))
		}
		again := ix.ResolveAll(g, h)
		for k := range segs {
			if segs[k] != again[k] {
				t.Fatal("Resolve must be deterministic")
			}
		}
	}
}

func TestResolveProbesEmptyBuckets(t *testing.T) {
	// With far more buckets than segments, most buckets are empty; every
	// GUID must still resolve via probing.
	ix, _ := NewIndex(4096)
	if err := ix.Add(Segment{ID: 7, AS: 1}); err != nil {
		t.Fatal(err)
	}
	h := guid.MustHasher(1, 0)
	for i := 0; i < 50; i++ {
		seg, ok := ix.Resolve(guid.FromUint64(uint64(i)), h, 0)
		if !ok || seg.AS != 1 {
			t.Fatalf("Resolve with single segment = (%+v, %v)", seg, ok)
		}
	}
}

func TestResolveBalance(t *testing.T) {
	// Sparse-space goal: per-AS load spreads evenly when each AS
	// announces many segments (the operative regime: N buckets sized so
	// occupancy S stays small but positive).
	const numAS = 10
	const segsPerAS = 50
	ix, _ := NewIndex(64)
	for i := 0; i < numAS*segsPerAS; i++ {
		if err := ix.Add(Segment{ID: uint64(i * 977), AS: i % numAS}); err != nil {
			t.Fatal(err)
		}
	}
	h := guid.MustHasher(1, 0)
	counts := make([]int, numAS)
	const draws = 50000
	for i := 0; i < draws; i++ {
		seg, ok := ix.Resolve(guid.FromUint64(uint64(i)), h, 0)
		if !ok {
			t.Fatal("resolve failed")
		}
		counts[seg.AS]++
	}
	avg := draws / numAS
	for as, c := range counts {
		if c < avg*7/10 || c > avg*13/10 {
			t.Errorf("AS %d load %d, want within 30%% of %d", as, c, avg)
		}
	}
}

func TestMaxOccupancySmallWithLargeN(t *testing.T) {
	// §III-B: "We make N large so that S can be kept small."
	ix, _ := NewIndex(10000)
	for i := 0; i < 1000; i++ {
		if err := ix.Add(Segment{ID: uint64(i), AS: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.MaxOccupancy(); got > 5 {
		t.Errorf("MaxOccupancy = %d, want small (≤5) with N=10×segments", got)
	}
}

func TestReplicasDiversify(t *testing.T) {
	ix, _ := NewIndex(256)
	for i := 0; i < 100; i++ {
		if err := ix.Add(Segment{ID: uint64(i), AS: i}); err != nil {
			t.Fatal(err)
		}
	}
	h := guid.MustHasher(5, 0)
	distinct := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		segs := ix.ResolveAll(guid.FromUint64(uint64(i)), h)
		seen := make(map[int]bool)
		for _, s := range segs {
			seen[s.AS] = true
		}
		if len(seen) >= 4 {
			distinct++
		}
	}
	if distinct < trials*8/10 {
		t.Errorf("only %d/%d GUIDs got ≥4 distinct replica segments", distinct, trials)
	}
}

func TestFromTable(t *testing.T) {
	entries := []TableEntry{
		{Addr: 0x0A000000, Bits: 8, AS: 1},
		{Addr: 0x0A000000, Bits: 16, AS: 2}, // same addr, different length: distinct segment
		{Addr: 0xC0A80000, Bits: 16, AS: 3},
	}
	ix, err := FromTable(entries, 64)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ix.Len())
	}
	// Segment IDs must be unique per (addr, bits) pair.
	if entries[0].SegmentID() == entries[1].SegmentID() {
		t.Error("distinct prefixes share a segment ID")
	}
	// Every GUID resolves to one of the three ASs, deterministically.
	h := guid.MustHasher(2, 0)
	for i := 0; i < 50; i++ {
		seg, ok := ix.Resolve(guid.FromUint64(uint64(i)), h, 0)
		if !ok || seg.AS < 1 || seg.AS > 3 {
			t.Fatalf("Resolve = (%+v, %v)", seg, ok)
		}
	}
	// Duplicate rows are rejected.
	if _, err := FromTable(append(entries, entries[0]), 64); err == nil {
		t.Error("duplicate table entry should fail")
	}
}
