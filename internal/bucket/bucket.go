// Package bucket implements the two-level indexing scheme of §III-B
// (Figure 3) for extending DMap to sparse address spaces such as IPv6,
// where unannounced holes vastly outnumber announced segments and
// rehash-until-hit would be hopeless.
//
// Every announced address segment is indexed by a (bucket ID, segment ID)
// pair: N buckets, each holding at most S segments, with N large so S
// stays small. Resolving a GUID runs two hash functions — the first picks
// the bucket, the second the segment within it — so any router can derive
// the hosting segment locally, exactly as in the dense IPv4 scheme.
package bucket

import (
	"fmt"

	"dmap/internal/guid"
)

// Segment is one announced address segment of the sparse space: an opaque
// segment identifier plus the AS announcing it.
type Segment struct {
	// ID identifies the segment (e.g. a hash of the IPv6 prefix).
	ID uint64
	// AS is the announcing autonomous system index.
	AS int
}

// Index is the two-level bucket directory. It is not safe for concurrent
// mutation; build it once from the routing table, then share read-only.
type Index struct {
	buckets [][]Segment
	size    int
}

// NewIndex creates an index with n buckets. n must be positive; the paper
// recommends making it large so per-bucket occupancy stays small.
func NewIndex(n int) (*Index, error) {
	if n <= 0 {
		return nil, fmt.Errorf("bucket: bucket count must be positive, got %d", n)
	}
	return &Index{buckets: make([][]Segment, n)}, nil
}

// NumBuckets returns N.
func (ix *Index) NumBuckets() int { return len(ix.buckets) }

// Len returns the total number of indexed segments.
func (ix *Index) Len() int { return ix.size }

// bucketOf spreads segments across buckets by their ID (multiplicative
// hashing keeps sequential IDs from clustering).
func (ix *Index) bucketOf(id uint64) int {
	const goldenGamma = 0x9E3779B97F4A7C15
	h := id * goldenGamma
	h ^= h >> 32
	return int(h % uint64(len(ix.buckets)))
}

// Add indexes a segment. Duplicate IDs in the same bucket are rejected.
func (ix *Index) Add(seg Segment) error {
	if seg.AS < 0 {
		return fmt.Errorf("bucket: segment %#x has negative AS index", seg.ID)
	}
	b := ix.bucketOf(seg.ID)
	for _, s := range ix.buckets[b] {
		if s.ID == seg.ID {
			return fmt.Errorf("bucket: duplicate segment %#x", seg.ID)
		}
	}
	ix.buckets[b] = append(ix.buckets[b], seg)
	ix.size++
	return nil
}

// Remove deletes the segment with the given ID, reporting whether it was
// present (segment withdrawal under churn).
func (ix *Index) Remove(id uint64) bool {
	b := ix.bucketOf(id)
	for i, s := range ix.buckets[b] {
		if s.ID == id {
			last := len(ix.buckets[b]) - 1
			ix.buckets[b][i] = ix.buckets[b][last]
			ix.buckets[b] = ix.buckets[b][:last]
			ix.size--
			return true
		}
	}
	return false
}

// MaxOccupancy returns S_max, the largest per-bucket segment count — the
// quantity the scheme keeps small by choosing N large.
func (ix *Index) MaxOccupancy() int {
	max := 0
	for _, b := range ix.buckets {
		if len(b) > max {
			max = len(b)
		}
	}
	return max
}

// Resolve maps (g, replica) to a hosting segment using the two-level
// consistent hashing of Figure 3: hash once to a bucket ID, once more to a
// segment ID within the bucket. Empty buckets are handled like IP holes:
// linear probing to the next non-empty bucket, which every router derives
// identically. It returns ok=false only when the index is empty.
func (ix *Index) Resolve(g guid.GUID, h *guid.Hasher, replica int) (Segment, bool) {
	if ix.size == 0 {
		return Segment{}, false
	}
	n := len(ix.buckets)
	b := h.HashToRange(g, replica, n)
	for probe := 0; probe < n; probe++ {
		slot := (b + probe) % n
		if len(ix.buckets[slot]) == 0 {
			continue
		}
		seg := ix.buckets[slot][int(h.Hash(g, replica))%len(ix.buckets[slot])]
		return seg, true
	}
	return Segment{}, false
}

// ResolveAll returns the K hosting segments for g, one per replica hash.
func (ix *Index) ResolveAll(g guid.GUID, h *guid.Hasher) []Segment {
	out := make([]Segment, 0, h.K())
	for i := 0; i < h.K(); i++ {
		if seg, ok := ix.Resolve(g, h, i); ok {
			out = append(out, seg)
		}
	}
	return out
}

// FromTable indexes every announced prefix of a routing table, deriving
// segment IDs from the prefixes themselves so that all participants build
// the identical index from their (identical) routing view — the property
// that keeps resolution a purely local computation when the dense-space
// rehashing of Algorithm 1 is replaced by bucketing.
func FromTable(entries []TableEntry, numBuckets int) (*Index, error) {
	ix, err := NewIndex(numBuckets)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if err := ix.Add(Segment{ID: e.SegmentID(), AS: e.AS}); err != nil {
			return nil, err
		}
	}
	return ix, nil
}

// TableEntry is the minimal routing-table row FromTable consumes
// (prefixtable.Entry maps onto it without importing that package, which
// keeps bucket free of IPv4 assumptions).
type TableEntry struct {
	// Addr and Bits identify the announced segment.
	Addr uint64
	Bits int
	// AS announces it.
	AS int
}

// SegmentID derives a unique segment identifier from the prefix.
func (e TableEntry) SegmentID() uint64 {
	return e.Addr<<6 | uint64(e.Bits&63)
}
