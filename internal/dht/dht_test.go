package dht

import (
	"math"
	"testing"

	"dmap/internal/guid"
)

func TestNewChordValidation(t *testing.T) {
	if _, err := NewChord(1, 0); err == nil {
		t.Error("1 node should fail")
	}
	if _, err := NewChord(0, 0); err == nil {
		t.Error("0 nodes should fail")
	}
}

func TestChordPlaceDeterministicAndBalanced(t *testing.T) {
	c, err := NewChord(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[int]int)
	for i := 0; i < 20000; i++ {
		g := guid.FromUint64(uint64(i))
		as := c.Place(g)
		if as != c.Place(g) {
			t.Fatal("Place not deterministic")
		}
		if as < 0 || as >= 128 {
			t.Fatalf("AS %d out of range", as)
		}
		counts[as]++
	}
	// Single-token consistent hashing is uneven but every node should be
	// hit with 128 nodes and 20k draws is not guaranteed — check bulk.
	if len(counts) < 100 {
		t.Errorf("only %d/128 nodes received keys", len(counts))
	}
}

func TestChordLookupPathReachesOwner(t *testing.T) {
	c, err := NewChord(500, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		g := guid.FromUint64(uint64(i))
		src := i % 500
		path, err := c.LookupPath(src, g)
		if err != nil {
			t.Fatal(err)
		}
		if path[0] != src {
			t.Fatalf("path starts at %d, want %d", path[0], src)
		}
		if path[len(path)-1] != c.Place(g) {
			t.Fatalf("path ends at %d, owner is %d", path[len(path)-1], c.Place(g))
		}
	}
}

func TestChordLookupLogarithmicHops(t *testing.T) {
	c, err := NewChord(4096, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxHops, totalHops, n := 0, 0, 0
	for i := 0; i < 2000; i++ {
		path, err := c.LookupPath(i%4096, guid.FromUint64(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		hops := len(path) - 1
		totalHops += hops
		n++
		if hops > maxHops {
			maxHops = hops
		}
	}
	logN := math.Log2(4096)
	avg := float64(totalHops) / float64(n)
	// Chord averages ≈ ½·log2(N) hops; allow generous slack.
	if avg < logN/4 || avg > logN {
		t.Errorf("average hops = %.2f, want ≈ %.2f/2", avg, logN)
	}
	if maxHops > 2*int(logN)+4 {
		t.Errorf("max hops = %d, want O(log N) = %d", maxHops, int(logN))
	}
}

func TestChordSrcValidation(t *testing.T) {
	c, _ := NewChord(10, 0)
	if _, err := c.LookupPath(-1, guid.New("g")); err == nil {
		t.Error("negative src should fail")
	}
	if _, err := c.LookupPath(10, guid.New("g")); err == nil {
		t.Error("out-of-range src should fail")
	}
}

func TestOneHop(t *testing.T) {
	o, err := NewOneHop(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	g := guid.New("content")
	owner := o.Place(g)
	path, err := o.LookupPath(3, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) > 2 {
		t.Fatalf("one-hop path has %d nodes", len(path))
	}
	if path[len(path)-1] != owner {
		t.Errorf("path ends at %d, owner %d", path[len(path)-1], owner)
	}
	// Lookup from the owner itself is 0 hops.
	self, err := o.LookupPath(owner, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 1 {
		t.Errorf("self lookup path = %v", self)
	}
	if _, err := o.LookupPath(-1, g); err == nil {
		t.Error("bad src should fail")
	}
	if got := o.MaintenanceMessages(10); got != 1000 {
		t.Errorf("MaintenanceMessages = %d, want 10×100", got)
	}
}

func TestHomeAgent(t *testing.T) {
	h := NewHomeAgent()
	g := guid.New("mobile")
	if _, err := h.LookupPath(0, g); err == nil {
		t.Error("unregistered GUID should fail")
	}
	h.Register(g, 7)
	h.Register(g, 9) // homes are permanent; ignored
	path, err := h.LookupPath(3, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 || path[1] != 7 {
		t.Errorf("path = %v, want [3 7]", path)
	}
	self, err := h.LookupPath(7, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(self) != 1 {
		t.Errorf("home-local path = %v", self)
	}
}

func TestMaintenanceCosts(t *testing.T) {
	c, err := NewChord(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	o, err := NewOneHop(1024, 0)
	if err != nil {
		t.Fatal(err)
	}
	// log2(1024) = 10 → 100 messages per event for Chord; 1024 for
	// one-hop; DMap: 0 (BGP already carries the state).
	if got := c.MaintenanceMessages(1); got != 100 {
		t.Errorf("Chord maintenance = %d, want 100", got)
	}
	if got := o.MaintenanceMessages(1); got != 1024 {
		t.Errorf("one-hop maintenance = %d, want 1024", got)
	}
	if c.MaintenanceMessages(7) != 700 {
		t.Error("linear in events")
	}
}
