// Package dht implements the comparison points the paper positions DMap
// against (§II-B, §VI):
//
//   - Chord: a classic multi-hop DHT over the same AS population. Lookups
//     take O(log N) overlay hops, each a real inter-AS traversal — the
//     latency/maintenance trade-off of DHT-MAP-style schemes ("up to 8
//     logical hops … about 900 ms").
//   - OneHop: a full-membership one-hop DHT (D1HT [17] / Gupta et al.
//     [18]): single-hop lookups like DMap, but every node must track every
//     membership change — the table-maintenance overhead DMap avoids by
//     reusing BGP state.
//   - HomeAgent: MobileIP-style resolution at a fixed home AS regardless
//     of requester locality, with no replication to exploit.
//
// All three produce lookup paths over AS indices; experiments turn paths
// into latencies with the shared topology.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"dmap/internal/guid"
)

// hashToRing maps an arbitrary byte string to a point on the 64-bit ring.
func hashToRing(b []byte) uint64 {
	sum := sha256.Sum256(b)
	return binary.BigEndian.Uint64(sum[:8])
}

// Chord is a Chord ring over a dense AS index space with full finger
// tables. It is immutable after construction.
type Chord struct {
	// ids[i] is the ring position of ring rank i; asOf[i] the AS there.
	ids  []uint64
	asOf []int
	// rankOf[as] is the ring rank of an AS.
	rankOf []int
	// fingers[rank][k] is the ring rank of successor(ids[rank] + 2^k).
	fingers [][]int
	// maxHops guards against routing loops.
	maxHops int
}

// NewChord builds a ring over numAS nodes. salt perturbs node placement.
func NewChord(numAS int, salt uint64) (*Chord, error) {
	if numAS < 2 {
		return nil, fmt.Errorf("dht: Chord needs at least 2 nodes, got %d", numAS)
	}
	type pair struct {
		id uint64
		as int
	}
	pairs := make([]pair, numAS)
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], salt)
	for as := 0; as < numAS; as++ {
		binary.BigEndian.PutUint64(buf[8:], uint64(as))
		pairs[as] = pair{id: hashToRing(buf[:]), as: as}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].id < pairs[j].id })

	c := &Chord{
		ids:     make([]uint64, numAS),
		asOf:    make([]int, numAS),
		rankOf:  make([]int, numAS),
		maxHops: 4 * 64,
	}
	for rank, p := range pairs {
		c.ids[rank] = p.id
		c.asOf[rank] = p.as
		c.rankOf[p.as] = rank
	}
	c.fingers = make([][]int, numAS)
	for rank := 0; rank < numAS; rank++ {
		f := make([]int, 64)
		for k := 0; k < 64; k++ {
			f[k] = c.successorRank(c.ids[rank] + (uint64(1) << k))
		}
		c.fingers[rank] = f
	}
	return c, nil
}

// successorRank returns the rank of the first node at or after point
// (with wraparound).
func (c *Chord) successorRank(point uint64) int {
	i := sort.Search(len(c.ids), func(i int) bool { return c.ids[i] >= point })
	if i == len(c.ids) {
		return 0
	}
	return i
}

// Place returns the AS responsible for g (the successor of its ring
// point).
func (c *Chord) Place(g guid.GUID) int {
	return c.asOf[c.successorRank(hashToRing(g[:]))]
}

// inOpen reports whether x ∈ (a, b) on the ring.
func inOpen(x, a, b uint64) bool {
	if a < b {
		return x > a && x < b
	}
	return x > a || x < b // wrapped interval
}

// LookupPath returns the overlay route a Chord lookup takes from srcAS to
// the AS responsible for g, inclusive of both endpoints. The recursive
// query visits every AS on the path; the reply returns directly.
func (c *Chord) LookupPath(srcAS int, g guid.GUID) ([]int, error) {
	if srcAS < 0 || srcAS >= len(c.rankOf) {
		return nil, fmt.Errorf("dht: srcAS %d out of range", srcAS)
	}
	target := hashToRing(g[:])
	cur := c.rankOf[srcAS]
	path := []int{srcAS}
	for hop := 0; ; hop++ {
		if hop > c.maxHops {
			return nil, fmt.Errorf("dht: routing loop from AS %d", srcAS)
		}
		succ := (cur + 1) % len(c.ids)
		// Done when target ∈ (cur, successor]: the successor owns it.
		if target == c.ids[succ] || inOpen(target, c.ids[cur], c.ids[succ]) || c.ids[cur] == target {
			if c.ids[cur] == target {
				return path, nil
			}
			path = append(path, c.asOf[succ])
			return path, nil
		}
		// Closest preceding finger strictly inside (cur, target).
		next := succ
		for k := 63; k >= 0; k-- {
			f := c.fingers[cur][k]
			if f != cur && inOpen(c.ids[f], c.ids[cur], target) {
				next = f
				break
			}
		}
		cur = next
		path = append(path, c.asOf[cur])
	}
}

// NumNodes returns the ring size.
func (c *Chord) NumNodes() int { return len(c.ids) }

// OneHop is a full-membership one-hop DHT: every node knows the whole
// ring, so lookups go directly to the responsible node. The price is
// maintenance: every join/leave must reach every node.
type OneHop struct {
	ring *Chord
}

// NewOneHop builds a one-hop DHT over numAS nodes.
func NewOneHop(numAS int, salt uint64) (*OneHop, error) {
	ring, err := NewChord(numAS, salt)
	if err != nil {
		return nil, err
	}
	return &OneHop{ring: ring}, nil
}

// Place returns the AS responsible for g.
func (o *OneHop) Place(g guid.GUID) int { return o.ring.Place(g) }

// LookupPath is always src → owner.
func (o *OneHop) LookupPath(srcAS int, g guid.GUID) ([]int, error) {
	if srcAS < 0 || srcAS >= o.ring.NumNodes() {
		return nil, fmt.Errorf("dht: srcAS %d out of range", srcAS)
	}
	owner := o.Place(g)
	if owner == srcAS {
		return []int{srcAS}, nil
	}
	return []int{srcAS, owner}, nil
}

// MaintenanceMessages returns the total membership-update messages needed
// for the given number of join/leave events: each event must be learned
// by all n nodes (the overhead DMap sidesteps by reusing BGP
// reachability, which routers maintain anyway).
func (o *OneHop) MaintenanceMessages(churnEvents int) int64 {
	return int64(churnEvents) * int64(o.ring.NumNodes())
}

// MaintenanceMessages estimates Chord's stabilization cost for the given
// number of join/leave events: each event triggers O(log² N) messages to
// repair finger tables (the classic Chord bound) — smaller than one-hop's
// O(N) but still state DMap maintains for free via BGP.
func (c *Chord) MaintenanceMessages(churnEvents int) int64 {
	logN := 0
	for n := len(c.ids); n > 1; n >>= 1 {
		logN++
	}
	return int64(churnEvents) * int64(logN) * int64(logN)
}

// HomeAgent resolves every GUID at its fixed home AS, like MobileIP. The
// home never moves even when the host does — exactly the indirection cost
// the identifier/locator split removes.
type HomeAgent struct {
	homes map[guid.GUID]int
}

// NewHomeAgent returns an empty registry.
func NewHomeAgent() *HomeAgent {
	return &HomeAgent{homes: make(map[guid.GUID]int)}
}

// Register fixes g's home AS (first attachment). Re-registration is
// ignored: homes are permanent.
func (h *HomeAgent) Register(g guid.GUID, homeAS int) {
	if _, ok := h.homes[g]; !ok {
		h.homes[g] = homeAS
	}
}

// LookupPath is src → home → src; unknown GUIDs fail.
func (h *HomeAgent) LookupPath(srcAS int, g guid.GUID) ([]int, error) {
	home, ok := h.homes[g]
	if !ok {
		return nil, fmt.Errorf("dht: GUID %s has no home agent", g.Short())
	}
	if home == srcAS {
		return []int{srcAS}, nil
	}
	return []int{srcAS, home}, nil
}
