package load

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dmap/internal/client"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/store"
)

// Config drives one open-loop run.
type Config struct {
	// Clusters are the client stacks to multiplex over, each owning one
	// pooled v2 mux connection per node. Workers round-robin across
	// them, so several clusters = several TCP conns per node — the way
	// to put more than one conn's worth of in-flight load on a server.
	Clusters []*client.Cluster
	// Arrivals is the arrival schedule; it is consumed by a single
	// pacer goroutine. Required.
	Arrivals ArrivalProcess
	// Duration bounds arrival generation (completions may land a little
	// after). Required.
	Duration time.Duration
	// Workers is the number of simulated clients draining the arrival
	// queue (default 64). Each holds one lookup in flight at a time;
	// in-flight concurrency per cluster is Workers/len(Clusters).
	Workers int
	// Queue bounds the arrival queue (default 4×Workers). An arrival
	// finding the queue full is dropped and counted as Overflow — the
	// load driver itself refusing work, distinct from a server shed.
	Queue int
	// Keys is the GUID population to look up. Required.
	Keys []guid.GUID
	// ZipfS skews key popularity with a Zipf(s) distribution (s > 1);
	// 0 selects uniform popularity.
	ZipfS float64
	// Seed feeds key selection. The arrival process carries its own.
	Seed int64
}

// SecondSample is one second of offered vs completed accounting.
// Offered is bucketed by scheduled arrival time, Completed/Failed by
// completion time — under overload the completions visibly lag.
type SecondSample struct {
	Offered   int64 `json:"offered"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
}

// Result summarizes one run.
type Result struct {
	// Offered counts scheduled arrivals, including overflowed ones.
	Offered int64
	// Completed counts lookups that returned without error.
	Completed int64
	// Failed counts lookups that returned an error (deadline, overload
	// exhaustion, …).
	Failed int64
	// Overflow counts arrivals dropped at the full queue.
	Overflow int64
	// ClientSheds is the shed replies observed across the clusters
	// during the run (server said ErrKindShed; the client backed off).
	ClientSheds int64
	// Seconds is the per-second offered/completed record.
	Seconds []SecondSample
	// P50us/P99us/P999us are open-loop latency quantiles in µs,
	// measured from the scheduled arrival instant: queue wait counts.
	P50us, P99us, P999us float64
	// Elapsed is wall time from first arrival to last completion.
	Elapsed time.Duration
}

// OfferedRate returns scheduled arrivals per second.
func (r Result) OfferedRate() float64 { return rate(r.Offered, r.Elapsed) }

// CompletedRate returns successful completions per second (goodput).
func (r Result) CompletedRate() float64 { return rate(r.Completed, r.Elapsed) }

func rate(n int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// job is one scheduled arrival. It travels by value through the queue,
// so pacing a request allocates nothing.
type job struct {
	g   guid.GUID
	due time.Time
}

// Run executes one open-loop run: a pacer goroutine emits arrivals on
// the configured schedule (sleeping only when ahead of it — when the
// system falls behind, arrivals keep coming, which is the whole point),
// workers drain them through the clusters, and latency is recorded
// against the scheduled arrival instant.
func Run(cfg Config) (Result, error) {
	if len(cfg.Clusters) == 0 {
		return Result{}, errors.New("load: no clusters")
	}
	if cfg.Arrivals == nil {
		return Result{}, errors.New("load: no arrival process")
	}
	if cfg.Duration <= 0 {
		return Result{}, errors.New("load: non-positive duration")
	}
	if len(cfg.Keys) == 0 {
		return Result{}, errors.New("load: no keys")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 64
	}
	queue := cfg.Queue
	if queue <= 0 {
		queue = 4 * workers
	}

	pick, err := keyPicker(cfg)
	if err != nil {
		return Result{}, err
	}

	var shedsBefore int64
	for _, c := range cfg.Clusters {
		shedsBefore += c.Stats().Sheds
	}

	// Per-second buckets, indexed by whole seconds since start; one
	// spare bucket catches completions that straggle past Duration.
	nsec := int(cfg.Duration/time.Second) + 2
	offeredBy := make([]atomic.Int64, nsec)
	completedBy := make([]atomic.Int64, nsec)
	failedBy := make([]atomic.Int64, nsec)

	reg := metrics.NewRegistry()
	lat := reg.Histogram("load.latency_us")

	var offered, completed, failed, overflow atomic.Int64
	jobs := make(chan job, queue)
	start := time.Now()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		c := cfg.Clusters[w%len(cfg.Clusters)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			var e store.Entry // reused across lookups: LookupInto is 0-alloc
			for jb := range jobs {
				err := c.LookupInto(jb.g, &e)
				done := time.Now()
				lat.Observe(float64(done.Sub(jb.due)) / float64(time.Microsecond))
				if sec := int(done.Sub(start) / time.Second); sec >= 0 {
					if sec >= nsec {
						sec = nsec - 1
					}
					if err != nil {
						failedBy[sec].Add(1)
					} else {
						completedBy[sec].Add(1)
					}
				}
				if err != nil {
					failed.Add(1)
				} else {
					completed.Add(1)
				}
			}
		}()
	}

	// The pacer: arrival times come from the process alone. Sleeping
	// happens only when the schedule is ahead of the wall clock; once
	// behind, arrivals are emitted back to back at their scheduled
	// timestamps, so latency measured from jb.due includes the backlog.
	due := start
	for {
		due = due.Add(cfg.Arrivals.Next())
		if due.Sub(start) >= cfg.Duration {
			break
		}
		if ahead := time.Until(due); ahead > 0 {
			time.Sleep(ahead)
		}
		offered.Add(1)
		if sec := int(due.Sub(start) / time.Second); sec >= 0 && sec < nsec {
			offeredBy[sec].Add(1)
		}
		select {
		case jobs <- job{g: pick(), due: due}:
		default:
			overflow.Add(1)
		}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var shedsAfter int64
	for _, c := range cfg.Clusters {
		shedsAfter += c.Stats().Sheds
	}

	h := reg.Snapshot().Histograms["load.latency_us"]
	res := Result{
		Offered:     offered.Load(),
		Completed:   completed.Load(),
		Failed:      failed.Load(),
		Overflow:    overflow.Load(),
		ClientSheds: shedsAfter - shedsBefore,
		Seconds:     make([]SecondSample, nsec),
		P50us:       h.Quantile(50),
		P99us:       h.Quantile(99),
		P999us:      h.Quantile(99.9),
		Elapsed:     elapsed,
	}
	for i := range res.Seconds {
		res.Seconds[i] = SecondSample{
			Offered:   offeredBy[i].Load(),
			Completed: completedBy[i].Load(),
			Failed:    failedBy[i].Load(),
		}
	}
	return res, nil
}

// keyPicker builds the popularity distribution over cfg.Keys: Zipf(s)
// when ZipfS > 1 — rank-1 keys dominating, exactly the skew the PR-5
// hot-GUID trackers exist to surface — or uniform otherwise. The picker
// is called by the pacer goroutine only.
func keyPicker(cfg Config) (func() guid.GUID, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.ZipfS == 0 {
		return func() guid.GUID { return cfg.Keys[rng.Intn(len(cfg.Keys))] }, nil
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("load: ZipfS must be > 1 (or 0 for uniform), got %g", cfg.ZipfS)
	}
	z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Keys)-1))
	if z == nil {
		return nil, fmt.Errorf("load: bad Zipf parameters (s=%g, n=%d)", cfg.ZipfS, len(cfg.Keys))
	}
	return func() guid.GUID { return cfg.Keys[z.Uint64()] }, nil
}
