package load

import (
	"math"
	"testing"
	"time"
)

func TestPoissonMeanRate(t *testing.T) {
	const rate = 5000.0
	p := NewPoisson(rate, 42)
	const n = 200000
	var total time.Duration
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	got := float64(n) / total.Seconds()
	if got < rate*0.95 || got > rate*1.05 {
		t.Errorf("empirical rate %.0f/s, want %.0f/s ±5%%", got, rate)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := NewPoisson(100, 7), NewPoisson(100, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewPoisson(100, 8)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestMMPPMeanRateBetweenStates(t *testing.T) {
	quiet, burst := 1000.0, 8000.0
	m := NewMMPP(quiet, burst, 50*time.Millisecond, 50*time.Millisecond, 11)
	if mr := m.MeanRate(); mr != (quiet+burst)/2 {
		t.Errorf("MeanRate = %g, want %g", mr, (quiet+burst)/2)
	}
	const n = 400000
	var total time.Duration
	for i := 0; i < n; i++ {
		total += m.Next()
	}
	got := float64(n) / total.Seconds()
	if got <= quiet || got >= burst {
		t.Errorf("empirical rate %.0f/s not strictly between states (%.0f, %.0f)", got, quiet, burst)
	}
	// Equal dwells: the long-run rate should sit near the midpoint.
	want := m.MeanRate()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("empirical rate %.0f/s, want %.0f/s ±10%%", got, want)
	}
}

// TestMMPPBurstiness: an MMPP with a hot burst state must show more
// short-gap clustering than a Poisson stream of the same mean rate —
// the variance of per-window counts is strictly larger (index of
// dispersion > 1 is the defining property of MMPP over Poisson).
func TestMMPPBurstiness(t *testing.T) {
	m := NewMMPP(500, 9500, 20*time.Millisecond, 20*time.Millisecond, 3)
	p := NewPoisson(m.MeanRate(), 3)

	disp := func(next func() time.Duration) float64 {
		const window = 10 * time.Millisecond
		counts := make([]float64, 0, 4096)
		var tAbs time.Duration
		cur, n := 0, 0.0
		for i := 0; i < 300000; i++ {
			tAbs += next()
			for int(tAbs/window) > cur {
				counts = append(counts, n)
				n = 0
				cur++
			}
			n++
		}
		var mean, v float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		v /= float64(len(counts))
		return v / mean
	}

	dm, dp := disp(m.Next), disp(p.Next)
	if dm <= dp {
		t.Errorf("MMPP dispersion %.2f not above Poisson %.2f — no burstiness", dm, dp)
	}
	if dm < 2 {
		t.Errorf("MMPP index of dispersion %.2f, want ≥2 for a 19x burst ratio", dm)
	}
}

func TestDetectKnee(t *testing.T) {
	pts := []Point{
		{OfferedRPS: 100, CompletedRPS: 100},
		{OfferedRPS: 200, CompletedRPS: 198},
		{OfferedRPS: 400, CompletedRPS: 390},
		{OfferedRPS: 800, CompletedRPS: 430}, // overload: goodput flattens
		{OfferedRPS: 1600, CompletedRPS: 440},
	}
	if k := DetectKnee(pts, 0.9); k != 2 {
		t.Errorf("knee = %d, want 2", k)
	}
	// Default fraction applies when 0 is passed.
	if k := DetectKnee(pts, 0); k != 2 {
		t.Errorf("knee with default frac = %d, want 2", k)
	}
	// All overloaded → -1.
	if k := DetectKnee(pts[3:], 0.9); k != -1 {
		t.Errorf("knee of all-overloaded sweep = %d, want -1", k)
	}
	if k := DetectKnee(nil, 0.9); k != -1 {
		t.Errorf("knee of empty sweep = %d, want -1", k)
	}
}

// TestDetectKneeNonMonotoneSweep pins the contiguous-run rule: goodput
// near saturation is noisy, so a sweep can fail the keep-up fraction at
// one offered rate and clear it again at a heavier one. The knee is the
// end of the FIRST passing run — a later lucky point is deep in
// overload territory, and reporting it as the knee once inflated the
// measured capacity past the real saturation point.
func TestDetectKneeNonMonotoneSweep(t *testing.T) {
	pts := []Point{
		{OfferedRPS: 100, CompletedRPS: 100},
		{OfferedRPS: 200, CompletedRPS: 199},
		{OfferedRPS: 400, CompletedRPS: 320},  // first overload: run ends here
		{OfferedRPS: 800, CompletedRPS: 790},  // noisy recovery past the knee
		{OfferedRPS: 1600, CompletedRPS: 500}, // overload again
	}
	if k := DetectKnee(pts, 0.9); k != 1 {
		t.Errorf("knee = %d, want 1 (last point of the first passing run, not the lucky recovery at 3)", k)
	}
	// A lucky first point followed by nothing passing still reports it.
	if k := DetectKnee(pts[3:], 0.9); k != 0 {
		t.Errorf("knee = %d, want 0", k)
	}
	// Degenerate zero-offered points are skipped, not treated as
	// overload: the run continues across them.
	gaps := []Point{
		{OfferedRPS: 100, CompletedRPS: 100},
		{OfferedRPS: 0, CompletedRPS: 0},
		{OfferedRPS: 200, CompletedRPS: 199},
		{OfferedRPS: 400, CompletedRPS: 100},
	}
	if k := DetectKnee(gaps, 0.9); k != 2 {
		t.Errorf("knee with degenerate point = %d, want 2", k)
	}
}

// mustPanic asserts fn panics; the arrival constructors turn invalid
// configuration into a loud failure instead of a silently broken pacer.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestArrivalConstructorsRejectInvalidRates(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	mustPanic(t, "Poisson rate 0", func() { NewPoisson(0, 1) })
	mustPanic(t, "Poisson negative rate", func() { NewPoisson(-5, 1) })
	// NaN passes a plain rate <= 0 check (all NaN comparisons are
	// false) and would make every gap NaN; Inf would make every gap
	// zero — a spin-loop pacer.
	mustPanic(t, "Poisson NaN rate", func() { NewPoisson(nan, 1) })
	mustPanic(t, "Poisson +Inf rate", func() { NewPoisson(inf, 1) })

	mustPanic(t, "MMPP zero quiet rate", func() { NewMMPP(0, 100, time.Millisecond, time.Millisecond, 1) })
	mustPanic(t, "MMPP NaN quiet rate", func() { NewMMPP(nan, 100, time.Millisecond, time.Millisecond, 1) })
	mustPanic(t, "MMPP Inf burst rate", func() { NewMMPP(100, inf, time.Millisecond, time.Millisecond, 1) })
	mustPanic(t, "MMPP zero quiet dwell", func() { NewMMPP(100, 200, 0, time.Millisecond, 1) })
	mustPanic(t, "MMPP negative burst dwell", func() { NewMMPP(100, 200, time.Millisecond, -time.Millisecond, 1) })

	// Valid configuration still constructs.
	if p := NewPoisson(100, 1); p == nil {
		t.Error("valid Poisson rejected")
	}
	if m := NewMMPP(100, 200, time.Millisecond, time.Millisecond, 1); m == nil {
		t.Error("valid MMPP rejected")
	}
}
