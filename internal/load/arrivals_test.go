package load

import (
	"testing"
	"time"
)

func TestPoissonMeanRate(t *testing.T) {
	const rate = 5000.0
	p := NewPoisson(rate, 42)
	const n = 200000
	var total time.Duration
	for i := 0; i < n; i++ {
		g := p.Next()
		if g < 0 {
			t.Fatalf("negative gap %v", g)
		}
		total += g
	}
	got := float64(n) / total.Seconds()
	if got < rate*0.95 || got > rate*1.05 {
		t.Errorf("empirical rate %.0f/s, want %.0f/s ±5%%", got, rate)
	}
}

func TestPoissonDeterministic(t *testing.T) {
	a, b := NewPoisson(100, 7), NewPoisson(100, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewPoisson(100, 8)
	same := true
	for i := 0; i < 100; i++ {
		if a.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestMMPPMeanRateBetweenStates(t *testing.T) {
	quiet, burst := 1000.0, 8000.0
	m := NewMMPP(quiet, burst, 50*time.Millisecond, 50*time.Millisecond, 11)
	if mr := m.MeanRate(); mr != (quiet+burst)/2 {
		t.Errorf("MeanRate = %g, want %g", mr, (quiet+burst)/2)
	}
	const n = 400000
	var total time.Duration
	for i := 0; i < n; i++ {
		total += m.Next()
	}
	got := float64(n) / total.Seconds()
	if got <= quiet || got >= burst {
		t.Errorf("empirical rate %.0f/s not strictly between states (%.0f, %.0f)", got, quiet, burst)
	}
	// Equal dwells: the long-run rate should sit near the midpoint.
	want := m.MeanRate()
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("empirical rate %.0f/s, want %.0f/s ±10%%", got, want)
	}
}

// TestMMPPBurstiness: an MMPP with a hot burst state must show more
// short-gap clustering than a Poisson stream of the same mean rate —
// the variance of per-window counts is strictly larger (index of
// dispersion > 1 is the defining property of MMPP over Poisson).
func TestMMPPBurstiness(t *testing.T) {
	m := NewMMPP(500, 9500, 20*time.Millisecond, 20*time.Millisecond, 3)
	p := NewPoisson(m.MeanRate(), 3)

	disp := func(next func() time.Duration) float64 {
		const window = 10 * time.Millisecond
		counts := make([]float64, 0, 4096)
		var tAbs time.Duration
		cur, n := 0, 0.0
		for i := 0; i < 300000; i++ {
			tAbs += next()
			for int(tAbs/window) > cur {
				counts = append(counts, n)
				n = 0
				cur++
			}
			n++
		}
		var mean, v float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		v /= float64(len(counts))
		return v / mean
	}

	dm, dp := disp(m.Next), disp(p.Next)
	if dm <= dp {
		t.Errorf("MMPP dispersion %.2f not above Poisson %.2f — no burstiness", dm, dp)
	}
	if dm < 2 {
		t.Errorf("MMPP index of dispersion %.2f, want ≥2 for a 19x burst ratio", dm)
	}
}

func TestDetectKnee(t *testing.T) {
	pts := []Point{
		{OfferedRPS: 100, CompletedRPS: 100},
		{OfferedRPS: 200, CompletedRPS: 198},
		{OfferedRPS: 400, CompletedRPS: 390},
		{OfferedRPS: 800, CompletedRPS: 430}, // overload: goodput flattens
		{OfferedRPS: 1600, CompletedRPS: 440},
	}
	if k := DetectKnee(pts, 0.9); k != 2 {
		t.Errorf("knee = %d, want 2", k)
	}
	// Default fraction applies when 0 is passed.
	if k := DetectKnee(pts, 0); k != 2 {
		t.Errorf("knee with default frac = %d, want 2", k)
	}
	// All overloaded → -1.
	if k := DetectKnee(pts[3:], 0.9); k != -1 {
		t.Errorf("knee of all-overloaded sweep = %d, want -1", k)
	}
	if k := DetectKnee(nil, 0.9); k != -1 {
		t.Errorf("knee of empty sweep = %d, want -1", k)
	}
}
