package load

// Point is one sweep measurement: a run at a fixed offered rate.
type Point struct {
	OfferedRPS   float64 `json:"offered_rps"`
	CompletedRPS float64 `json:"completed_rps"`
	P50us        float64 `json:"p50_us"`
	P99us        float64 `json:"p99_us"`
	P999us       float64 `json:"p999_us"`
	// ShedRPS is server-refused work per second observed by clients.
	ShedRPS float64 `json:"shed_rps"`
}

// DetectKnee locates the throughput knee in a sweep ordered by
// ascending offered rate: the last point of the first contiguous run
// whose goodput keeps up with its offered load (completed ≥ frac ×
// offered, default frac 0.9). Past the knee the system is in overload —
// goodput flattens or sags while latency and sheds climb. The scan
// stops at the first overloaded point: a heavier point that happens to
// clear the fraction again (goodput is noisy near saturation, and
// shed-heavy regimes can briefly complete more than they admit steadily)
// is past the knee, not a second one. Returns -1 when even the lightest
// point is already overloaded.
func DetectKnee(points []Point, frac float64) int {
	if frac <= 0 {
		frac = 0.9
	}
	knee := -1
	for i, p := range points {
		if p.OfferedRPS <= 0 {
			continue
		}
		if p.CompletedRPS < frac*p.OfferedRPS {
			break
		}
		knee = i
	}
	return knee
}
