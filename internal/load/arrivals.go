// Package load is an open-loop load driver for real DMap TCP nodes.
//
// Closed-loop benchmarks (testing.B, the bench_test.go fixtures) measure
// service time with a fixed worker count: when the server slows down,
// the workers slow down with it, and offered load gracefully tracks
// capacity. Real Internet query streams do not behave that way — DNS-ish
// lookup traffic arrives on its own schedule whether or not the server
// is keeping up, which is what makes overload a distinct regime with its
// own failure modes (queues growing without bound, latency exploding at
// the knee). This package generates that schedule: Poisson or bursty
// MMPP arrivals, Zipf GUID popularity, thousands of simulated clients
// multiplexed over pooled v2 connections, and per-second accounting of
// offered vs completed rate with p50/p99/p999 latency measured from the
// scheduled arrival instant (queue wait included — the open-loop rule).
package load

import (
	"math"
	"math/rand"
	"time"
)

// ArrivalProcess produces inter-arrival gaps. Implementations are
// deterministic for a given seed and are not safe for concurrent use —
// one pacer goroutine owns the process.
type ArrivalProcess interface {
	// Next returns the gap between the previous arrival and the next.
	Next() time.Duration
}

// Poisson is a homogeneous Poisson arrival process: exponential
// inter-arrival gaps with the given mean rate (arrivals/second) — the
// classic model for aggregate request streams from many independent
// clients.
type Poisson struct {
	rng  *rand.Rand
	mean float64 // mean gap in seconds (1/rate)
}

// validRate reports whether r is a positive, finite rate or dwell. The
// finiteness check matters because NaN slips through a plain r <= 0
// comparison (every NaN comparison is false) and would silently produce
// NaN gaps, and +Inf would produce zero gaps — an accidental
// infinite-rate pacer instead of a loud configuration error.
func validRate(r float64) bool {
	return r > 0 && !math.IsInf(r, 1) && !math.IsNaN(r)
}

// NewPoisson returns a Poisson process at rate arrivals/second.
func NewPoisson(rate float64, seed int64) *Poisson {
	if !validRate(rate) {
		panic("load: Poisson rate must be positive and finite")
	}
	return &Poisson{rng: rand.New(rand.NewSource(seed)), mean: 1 / rate}
}

// Next draws one exponential inter-arrival gap.
func (p *Poisson) Next() time.Duration {
	return time.Duration(p.rng.ExpFloat64() * p.mean * float64(time.Second))
}

// MMPP is a two-state Markov-modulated Poisson process: a quiet state
// and a burst state, each a Poisson stream at its own rate, with
// exponentially distributed sojourn times. It models the on/off
// burstiness of real query traffic (flash crowds, synchronized mobile
// wake-ups) that a plain Poisson stream averages away — the p999 and
// the admission limiter care about the bursts, not the mean.
type MMPP struct {
	rng     *rand.Rand
	rate    [2]float64 // arrivals/second per state
	sojourn [2]float64 // mean state dwell in seconds
	state   int
	left    float64 // seconds remaining in the current state
}

// NewMMPP returns a two-state MMPP alternating between quietRate and
// burstRate arrivals/second, dwelling a mean of quietDwell/burstDwell
// in each state. The long-run mean rate is the dwell-weighted average.
func NewMMPP(quietRate, burstRate float64, quietDwell, burstDwell time.Duration, seed int64) *MMPP {
	if !validRate(quietRate) || !validRate(burstRate) || quietDwell <= 0 || burstDwell <= 0 {
		panic("load: MMPP rates and dwells must be positive and finite")
	}
	m := &MMPP{
		rng:     rand.New(rand.NewSource(seed)),
		rate:    [2]float64{quietRate, burstRate},
		sojourn: [2]float64{quietDwell.Seconds(), burstDwell.Seconds()},
	}
	m.left = m.rng.ExpFloat64() * m.sojourn[0]
	return m
}

// MeanRate returns the long-run arrival rate (arrivals/second).
func (m *MMPP) MeanRate() float64 {
	w0, w1 := m.sojourn[0], m.sojourn[1]
	return (m.rate[0]*w0 + m.rate[1]*w1) / (w0 + w1)
}

// Next draws the gap to the next arrival, crossing state boundaries as
// needed: if the candidate gap outlives the current state's remaining
// dwell, time advances to the boundary, the state flips, and a fresh
// gap is drawn at the new rate (the memoryless property makes the
// redraw exact, not an approximation).
func (m *MMPP) Next() time.Duration {
	var total float64
	for {
		gap := m.rng.ExpFloat64() / m.rate[m.state]
		if gap < m.left {
			m.left -= gap
			total += gap
			return time.Duration(total * float64(time.Second))
		}
		total += m.left
		m.state = 1 - m.state
		m.left = m.rng.ExpFloat64() * m.sojourn[m.state]
	}
}
