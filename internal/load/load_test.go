package load

import (
	"fmt"
	"testing"
	"time"

	"dmap/internal/client"
	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
	"dmap/internal/trace"
)

// testWorld spins up real TCP nodes over a generated DFZ and returns
// nClusters independent client stacks (one pooled mux conn per node
// each) plus the nodes, with keys pre-inserted.
func testWorld(t *testing.T, numAS, nClusters, nKeys int, opts server.Options) ([]*client.Cluster, []*server.Node, []guid.GUID) {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             numAS,
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.NewWithOptions(nil, opts)
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[as] = n
		addrs[as] = addr
		t.Cleanup(func() { n.Close() })
	}
	clusters := make([]*client.Cluster, nClusters)
	for i := range clusters {
		resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := client.NewWithConfig(resolver, addrs, client.Config{
			Timeout:    time.Second,
			OpDeadline: 2 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clusters[i] = c
	}
	keys := make([]guid.GUID, nKeys)
	for i := range keys {
		keys[i] = guid.New(fmt.Sprintf("load-key-%d", i))
		e := store.Entry{
			GUID:    keys[i],
			NAs:     []store.NA{{AS: 1, Addr: netaddr.AddrFromOctets(192, 0, 2, byte(i%250+1))}},
			Version: 1,
		}
		if _, err := clusters[0].Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	return clusters, nodes, keys
}

func TestRunOpenLoopAccounting(t *testing.T) {
	clusters, _, keys := testWorld(t, 2, 2, 32, server.Options{})
	res, err := Run(Config{
		Clusters: clusters,
		Arrivals: NewPoisson(3000, 1),
		Duration: 400 * time.Millisecond,
		Workers:  16,
		Keys:     keys,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 || res.Completed == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	// Every offered arrival was either queued (and then completed or
	// failed — the queue drains before Run returns) or overflowed.
	if got := res.Completed + res.Failed + res.Overflow; got != res.Offered {
		t.Errorf("completed+failed+overflow = %d, offered = %d", got, res.Offered)
	}
	var secOffered, secDone, secFailed int64
	for _, s := range res.Seconds {
		secOffered += s.Offered
		secDone += s.Completed
		secFailed += s.Failed
	}
	if secOffered != res.Offered {
		t.Errorf("per-second offered sums to %d, want %d", secOffered, res.Offered)
	}
	if secDone != res.Completed || secFailed != res.Failed {
		t.Errorf("per-second done/failed = %d/%d, want %d/%d", secDone, secFailed, res.Completed, res.Failed)
	}
	if res.P50us <= 0 || res.P99us < res.P50us || res.P999us < res.P99us {
		t.Errorf("quantiles out of order: p50=%g p99=%g p999=%g", res.P50us, res.P99us, res.P999us)
	}
	if res.OfferedRate() <= 0 || res.CompletedRate() <= 0 {
		t.Errorf("rates = %g / %g", res.OfferedRate(), res.CompletedRate())
	}
}

// TestRunShedsUnderTightAdmission: with a per-conn in-flight limit far
// below the pipelined worker count, the servers must shed, the clients
// must observe those sheds (and keep some goodput via backoff-retry),
// and the run must still account for every arrival.
func TestRunShedsUnderTightAdmission(t *testing.T) {
	clusters, nodes, keys := testWorld(t, 2, 1, 32, server.Options{MaxConnInflight: 1})
	res, err := Run(Config{
		Clusters: clusters,
		Arrivals: NewPoisson(4000, 2),
		Duration: 400 * time.Millisecond,
		Workers:  32,
		Keys:     keys,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var serverSheds int64
	for _, n := range nodes {
		serverSheds += n.Stats().Sheds
	}
	if serverSheds == 0 {
		t.Error("no server sheds despite MaxConnInflight=1 under 32 pipelined workers")
	}
	if res.ClientSheds == 0 {
		t.Error("clients observed no sheds")
	}
	if res.Completed == 0 {
		t.Error("no goodput at all under shedding; backoff-retry should recover some")
	}
	if got := res.Completed + res.Failed + res.Overflow; got != res.Offered {
		t.Errorf("accounting broke under shedding: %d vs offered %d", got, res.Offered)
	}
}

// TestRunZipfFeedsHotKeys: Zipf popularity must reach the server-side
// hot-GUID trackers with rank-1 dominance a uniform stream cannot show.
func TestRunZipfFeedsHotKeys(t *testing.T) {
	hot := trace.NewHotKeys(8)
	clusters, _, keys := testWorld(t, 1, 1, 64, server.Options{HotKeys: hot})
	res, err := Run(Config{
		Clusters: clusters,
		Arrivals: NewPoisson(3000, 3),
		Duration: 400 * time.Millisecond,
		Workers:  8,
		Keys:     keys,
		ZipfS:    1.3,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lookups, _ := hot.Totals()
	if lookups == 0 {
		t.Fatal("hot-key tracker saw no lookups")
	}
	top := hot.TopLookups(1)
	if len(top) == 0 {
		t.Fatal("no top lookup key")
	}
	// Uniform would give ~1/64 ≈ 1.6% per key; Zipf(1.3) concentrates a
	// large share on rank 1. 10% is a conservative floor.
	if share := float64(top[0].Count) / float64(lookups); share < 0.10 {
		t.Errorf("top key share = %.1f%% of %d lookups; Zipf skew not reaching the tracker", share*100, lookups)
	}
	if res.Completed == 0 {
		t.Error("no completions")
	}
}

func TestRunConfigValidation(t *testing.T) {
	clusters, _, keys := testWorld(t, 1, 1, 4, server.Options{})
	base := Config{
		Clusters: clusters,
		Arrivals: NewPoisson(100, 1),
		Duration: 50 * time.Millisecond,
		Keys:     keys,
	}
	bad := []Config{
		{Arrivals: base.Arrivals, Duration: base.Duration, Keys: keys},       // no clusters
		{Clusters: clusters, Duration: base.Duration, Keys: keys},            // no arrivals
		{Clusters: clusters, Arrivals: base.Arrivals, Keys: keys},            // no duration
		{Clusters: clusters, Arrivals: base.Arrivals, Duration: time.Second}, // no keys
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := base
	cfg.ZipfS = 0.5 // not > 1 and not uniform
	if _, err := Run(cfg); err == nil {
		t.Error("ZipfS=0.5 accepted")
	}
}
