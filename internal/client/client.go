// Package client implements the querier side of networked DMap: it
// derives each GUID's K hosting ASs locally (exactly as a border gateway
// would, from the shared hash family and prefix table) and talks to the
// corresponding mapping nodes over TCP.
//
// Robustness follows §III-D3 of the paper: every operation runs under a
// per-operation deadline; each replica is tried with bounded,
// backoff-paced retries; and on timeout, connection error or an explicit
// node rejection the operation fails over to the next replica in
// Algorithm 1's rehash order (the K-th placement may itself be the
// nearest-deputy fallback — the walk covers it like any other replica).
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/store"
	"dmap/internal/wire"
)

// DefaultTimeout bounds each network attempt.
const DefaultTimeout = 2 * time.Second

// Config tunes the cluster client. The zero value selects every
// default.
type Config struct {
	// Timeout bounds one network attempt (dial + request + response).
	// ≤ 0 selects DefaultTimeout.
	Timeout time.Duration
	// OpDeadline bounds a whole operation across all replicas, retries
	// and backoffs. ≤ 0 selects 4 × Timeout.
	OpDeadline time.Duration
	// Retry is the per-replica retry policy (zero value = defaults).
	Retry RetryPolicy
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.OpDeadline <= 0 {
		c.OpDeadline = 4 * c.Timeout
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Cluster resolves GUIDs against a set of networked mapping nodes. It is
// safe for concurrent use.
type Cluster struct {
	resolver *core.Resolver
	cfg      Config

	mu    sync.RWMutex
	addrs map[int]string // AS index → node address

	pool connPool
	m    clusterMetrics
}

// clusterMetrics holds the client's resolved metric handles. The
// counters double as the Stats() snapshot source, so the failure-path
// numbers in tests, dmapnode demo output and /debug/metrics are one
// set of books (no bespoke atomics on the side).
type clusterMetrics struct {
	reg       *metrics.Registry
	dials     *metrics.Counter
	redials   *metrics.Counter
	retries   *metrics.Counter
	failovers *metrics.Counter
	rejects   *metrics.Counter
	timeouts  *metrics.Counter
	deadlines *metrics.Counter
	// attempt is the per-attempt round-trip latency (µs), including
	// timed-out and failed attempts — the distribution §III-D3's
	// failover math is about.
	attempt *metrics.Histogram
	// Per-operation end-to-end latency (µs) across all replicas,
	// retries and backoffs, successful or not.
	opInsert *metrics.Histogram
	opLookup *metrics.Histogram
	opDelete *metrics.Histogram
}

func newClusterMetrics() clusterMetrics {
	reg := metrics.NewRegistry()
	return clusterMetrics{
		reg:       reg,
		dials:     reg.Counter("client.dials"),
		redials:   reg.Counter("client.redials"),
		retries:   reg.Counter("client.retries"),
		failovers: reg.Counter("client.failovers"),
		rejects:   reg.Counter("client.rejects"),
		timeouts:  reg.Counter("client.timeouts"),
		deadlines: reg.Counter("client.deadlines"),
		attempt:   reg.Histogram("client.attempt_us"),
		opInsert:  reg.Histogram("client.op.insert_us"),
		opLookup:  reg.Histogram("client.op.lookup_us"),
		opDelete:  reg.Histogram("client.op.delete_us"),
	}
}

// New builds a cluster client with default robustness settings. addrs
// maps AS indices to node "host:port" addresses; ASs without nodes are
// treated as unreachable. timeout ≤ 0 selects DefaultTimeout.
func New(resolver *core.Resolver, addrs map[int]string, timeout time.Duration) (*Cluster, error) {
	return NewWithConfig(resolver, addrs, Config{Timeout: timeout})
}

// NewWithConfig builds a cluster client with explicit timeout, deadline
// and retry configuration.
func NewWithConfig(resolver *core.Resolver, addrs map[int]string, cfg Config) (*Cluster, error) {
	if resolver == nil {
		return nil, errors.New("client: nil resolver")
	}
	m := make(map[int]string, len(addrs))
	for as, a := range addrs {
		m[as] = a
	}
	c := &Cluster{resolver: resolver, cfg: cfg.withDefaults(), addrs: m, m: newClusterMetrics()}
	c.m.reg.GaugeFunc("client.pool.idle", func() float64 { return float64(c.pool.idleLen()) })
	return c, nil
}

// SetNode adds or replaces the node address of an AS (e.g. after a
// crashed node is revived elsewhere).
func (c *Cluster) SetNode(as int, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[as] = addr
}

// Stats returns a snapshot of the failure-path counters (the same
// counters Metrics exposes).
func (c *Cluster) Stats() Stats {
	return Stats{
		Dials:     c.m.dials.Value(),
		Redials:   c.m.redials.Value(),
		Retries:   c.m.retries.Value(),
		Failovers: c.m.failovers.Value(),
		Rejects:   c.m.rejects.Value(),
		Timeouts:  c.m.timeouts.Value(),
		Deadlines: c.m.deadlines.Value(),
	}
}

// Metrics returns the cluster's registry: failure-path counters,
// per-attempt and per-operation latency histograms, and pool gauges.
func (c *Cluster) Metrics() *metrics.Registry { return c.m.reg }

// Close releases pooled connections.
func (c *Cluster) Close() {
	c.pool.closeAll()
}

// Operation errors.
var (
	// ErrNotFound reports that no reachable replica had the mapping.
	ErrNotFound = errors.New("client: GUID not found")
	// ErrDeadline reports that the per-operation deadline expired before
	// the operation could complete.
	ErrDeadline = errors.New("client: operation deadline exceeded")
	// ErrRejected reports an explicit MsgError refusal from a node
	// (e.g. a draining store). Rejections fail over immediately: the
	// node answered, so retrying it is pointless.
	ErrRejected = errors.New("client: request rejected by node")
)

// errStaleConn marks a pooled connection that died before carrying any
// response byte: the server closed it while idle. The retry loop
// replaces it without consuming a policy attempt — the request never
// reached a live server.
var errStaleConn = errors.New("client: stale pooled connection")

// Insert stores e at all K replicas in parallel and waits for every
// reachable replica's ack, returning how many acknowledged. An error is
// returned only when no replica could be reached (partial success is the
// protocol's normal churn-tolerant mode).
func (c *Cluster) Insert(e store.Entry) (int, error) {
	placements, err := c.resolver.Place(e.GUID)
	if err != nil {
		return 0, err
	}
	payload, err := wire.AppendEntry(nil, e)
	if err != nil {
		return 0, err
	}
	opStart := time.Now()
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer c.m.opInsert.ObserveSince(opStart)

	var wg sync.WaitGroup
	acks := make([]bool, len(placements))
	for i, p := range placements {
		i, as := i, p.AS
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, _, err := c.call(as, wire.MsgInsert, payload, opDeadline)
			acks[i] = err == nil && t == wire.MsgInsertAck
		}()
	}
	wg.Wait()
	n := 0
	for _, ok := range acks {
		if ok {
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("client: insert %s: no replica reachable", e.GUID.Short())
	}
	return n, nil
}

// Update is Insert with a higher version (freshest-wins at each node).
func (c *Cluster) Update(e store.Entry) (int, error) { return c.Insert(e) }

// Lookup resolves g, walking replicas in Algorithm 1's placement order:
// a miss reply, timeout, connection error or rejection moves to the next
// replica until the per-operation deadline expires (§III-D3).
func (c *Cluster) Lookup(g guid.GUID) (store.Entry, error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return store.Entry{}, err
	}
	payload := wire.AppendGUID(nil, g)
	opStart := time.Now()
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer c.m.opLookup.ObserveSince(opStart)
	var lastErr error
	for i, p := range placements {
		t, body, err := c.call(p.AS, wire.MsgLookup, payload, opDeadline)
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrDeadline) {
				break // out of budget: later replicas cannot be tried either
			}
			if i < len(placements)-1 {
				c.m.failovers.Inc()
			}
			continue
		}
		if t != wire.MsgLookupResp {
			lastErr = fmt.Errorf("client: unexpected frame %v", t)
			continue
		}
		resp, err := wire.DecodeLookupResp(body)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Found {
			return resp.Entry, nil
		}
	}
	if lastErr != nil {
		if errors.Is(lastErr, ErrDeadline) {
			return store.Entry{}, lastErr
		}
		return store.Entry{}, fmt.Errorf("%w (last error: %v)", ErrNotFound, lastErr)
	}
	return store.Entry{}, ErrNotFound
}

// LookupFastest queries all K replicas in parallel and returns the first
// positive answer — the latency-optimal strategy when the client cannot
// estimate per-replica RTTs (cf. §III-C's simultaneous local+global
// lookup). It costs K network round trips of load instead of one.
func (c *Cluster) LookupFastest(g guid.GUID) (store.Entry, error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return store.Entry{}, err
	}
	payload := wire.AppendGUID(nil, g)
	opStart := time.Now()
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer c.m.opLookup.ObserveSince(opStart)

	type answer struct {
		entry store.Entry
		found bool
		err   error
	}
	results := make(chan answer, len(placements))
	for _, p := range placements {
		as := p.AS
		go func() {
			t, body, err := c.call(as, wire.MsgLookup, payload, opDeadline)
			if err != nil {
				results <- answer{err: err}
				return
			}
			if t != wire.MsgLookupResp {
				results <- answer{err: fmt.Errorf("client: unexpected frame %v", t)}
				return
			}
			resp, err := wire.DecodeLookupResp(body)
			if err != nil {
				results <- answer{err: err}
				return
			}
			results <- answer{entry: resp.Entry, found: resp.Found}
		}()
	}
	var lastErr error
	for range placements {
		a := <-results
		if a.found {
			return a.entry, nil
		}
		if a.err != nil {
			lastErr = a.err
		}
	}
	if lastErr != nil {
		return store.Entry{}, fmt.Errorf("%w (last error: %v)", ErrNotFound, lastErr)
	}
	return store.Entry{}, ErrNotFound
}

// Delete removes g from all replicas, returning how many held it.
func (c *Cluster) Delete(g guid.GUID) (int, error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return 0, err
	}
	payload := wire.AppendGUID(nil, g)
	opStart := time.Now()
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer c.m.opDelete.ObserveSince(opStart)
	removed := 0
	for _, p := range placements {
		t, body, err := c.call(p.AS, wire.MsgDelete, payload, opDeadline)
		if err != nil || t != wire.MsgDeleteAck || len(body) < 1 {
			if errors.Is(err, ErrDeadline) {
				break
			}
			continue
		}
		if body[0] == 1 {
			removed++
		}
	}
	return removed, nil
}

// Ping checks liveness of the node serving an AS.
func (c *Cluster) Ping(as int) error {
	t, _, err := c.call(as, wire.MsgPing, nil, time.Now().Add(c.cfg.OpDeadline))
	if err != nil {
		return err
	}
	if t != wire.MsgPong {
		return fmt.Errorf("client: unexpected frame %v", t)
	}
	return nil
}

// call runs the retry policy for one replica: up to MaxAttempts
// round trips with exponential backoff and deterministic jitter, all
// inside the operation deadline. A stale pooled connection is replaced
// without consuming an attempt (once per call); a MsgError reply aborts
// the retries — the node answered and said no.
func (c *Cluster) call(as int, t wire.MsgType, payload []byte, opDeadline time.Time) (wire.MsgType, []byte, error) {
	c.mu.RLock()
	addr, ok := c.addrs[as]
	c.mu.RUnlock()
	if !ok {
		return 0, nil, fmt.Errorf("client: no node for AS %d", as)
	}

	pol := c.cfg.Retry
	redialed := false
	var lastErr error
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			pause := pol.Backoff(as, attempt)
			if remaining := time.Until(opDeadline); pause > remaining {
				pause = remaining
			}
			if pause > 0 {
				time.Sleep(pause)
			}
			c.m.retries.Inc()
		}
		remaining := time.Until(opDeadline)
		if remaining <= 0 {
			c.m.deadlines.Inc()
			if lastErr == nil {
				return 0, nil, ErrDeadline
			}
			return 0, nil, fmt.Errorf("%w (last error: %v)", ErrDeadline, lastErr)
		}
		timeout := c.cfg.Timeout
		if timeout > remaining {
			timeout = remaining
		}

		attemptStart := time.Now()
		rt, body, err := c.roundTrip(addr, t, payload, timeout)
		c.m.attempt.ObserveSince(attemptStart)
		if errors.Is(err, errStaleConn) && !redialed {
			// Observable replacement of a server-closed idle connection;
			// does not consume a policy attempt.
			redialed = true
			c.m.redials.Inc()
			attempt--
			continue
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				c.m.timeouts.Inc()
			}
			lastErr = err
			continue
		}
		if rt == wire.MsgError {
			c.m.rejects.Inc()
			reason, derr := wire.DecodeError(body)
			if derr != nil {
				reason = "unreadable reason"
			}
			return 0, nil, fmt.Errorf("%w: %s", ErrRejected, reason)
		}
		return rt, body, nil
	}
	return 0, nil, lastErr
}

// roundTrip performs exactly one request/response against addr, using a
// pooled connection when available. A pooled connection failing before
// any response byte yields errStaleConn so the caller can replace it.
func (c *Cluster) roundTrip(addr string, t wire.MsgType, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
	conn, fresh, err := c.pool.get(addr, timeout)
	if err != nil {
		return 0, nil, err
	}
	if fresh {
		c.m.dials.Inc()
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, t, payload); err != nil {
		conn.Close()
		if !fresh {
			return 0, nil, fmt.Errorf("%w: %v", errStaleConn, err)
		}
		return 0, nil, err
	}
	rt, body, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		if !fresh {
			return 0, nil, fmt.Errorf("%w: %v", errStaleConn, err)
		}
		return 0, nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	c.pool.put(addr, conn)
	return rt, body, nil
}

// connPool keeps one idle connection per address — enough to amortize
// dials for the sequential request/response protocol while staying
// trivially correct.
type connPool struct {
	mu   sync.Mutex
	idle map[string]net.Conn
}

// get returns a pooled connection or dials a fresh one; fresh reports
// which.
func (p *connPool) get(addr string, timeout time.Duration) (conn net.Conn, fresh bool, err error) {
	p.mu.Lock()
	if c, ok := p.idle[addr]; ok {
		delete(p.idle, addr)
		p.mu.Unlock()
		return c, false, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, true, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return c, true, nil
}

func (p *connPool) put(addr string, conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle == nil {
		p.idle = make(map[string]net.Conn)
	}
	if _, ok := p.idle[addr]; ok {
		conn.Close() // already one idle; drop the extra
		return
	}
	p.idle[addr] = conn
}

// idleLen reports the number of idle pooled connections.
func (p *connPool) idleLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
}
