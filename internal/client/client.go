// Package client implements the querier side of networked DMap: it
// derives each GUID's K hosting ASs locally (exactly as a border gateway
// would, from the shared hash family and prefix table) and talks to the
// corresponding mapping nodes over TCP.
//
// Robustness follows §III-D3 of the paper: every operation runs under a
// per-operation deadline; each replica is tried with bounded,
// backoff-paced retries; and on timeout, connection error or an explicit
// node rejection the operation fails over to the next replica in
// Algorithm 1's rehash order (the K-th placement may itself be the
// nearest-deputy fallback — the walk covers it like any other replica).
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/store"
	"dmap/internal/trace"
	"dmap/internal/wire"
)

// DefaultTimeout bounds each network attempt.
const DefaultTimeout = 2 * time.Second

// DefaultFreshnessWait is how long LookupFastest keeps collecting
// answers after the first positive reply to prefer the freshest
// Version — the stale-read window after a partial Update.
const DefaultFreshnessWait = 2 * time.Millisecond

// Config tunes the cluster client. The zero value selects every
// default.
type Config struct {
	// Timeout bounds one network attempt (dial + request + response).
	// ≤ 0 selects DefaultTimeout.
	Timeout time.Duration
	// OpDeadline bounds a whole operation across all replicas, retries
	// and backoffs. ≤ 0 selects 4 × Timeout.
	OpDeadline time.Duration
	// Retry is the per-replica retry policy (zero value = defaults).
	Retry RetryPolicy
	// ForceV1 disables the multiplexed v2 transport: every request uses
	// a sequential v1 connection. For benchmarking the old path and for
	// talking to pre-v2 deployments without paying the hello probe.
	ForceV1 bool
	// FreshnessWait is LookupFastest's grace window: after the first
	// positive reply it keeps collecting answers for this long (or until
	// every replica answered) and returns the highest Version seen.
	// 0 selects DefaultFreshnessWait; negative disables the grace
	// (first positive answer wins, which may return a stale read after
	// a partial Update).
	FreshnessWait time.Duration
	// Tracer samples operations into traces and captures slow ops. Nil
	// (the default) disables tracing entirely: the request path takes a
	// nil-check and nothing else. When set, sampled requests carry their
	// trace context to trace-capable servers (negotiated in the hello).
	Tracer *trace.Tracer
	// Logger receives structured client logs (redials, failovers at warn
	// and debug level). Nil discards.
	Logger *trace.Logger
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.OpDeadline <= 0 {
		c.OpDeadline = 4 * c.Timeout
	}
	if c.FreshnessWait == 0 {
		c.FreshnessWait = DefaultFreshnessWait
	}
	c.Retry = c.Retry.withDefaults()
	return c
}

// Cluster resolves GUIDs against a set of networked mapping nodes. It is
// safe for concurrent use.
type Cluster struct {
	resolver *core.Resolver
	cfg      Config

	mu    sync.RWMutex
	addrs map[int]string // AS index → node address

	pool connPool // v1 transport: one idle sequential conn per addr
	mux  muxTable // v2 transport: one shared pipelined conn per addr
	m    clusterMetrics

	// tracer and logger mirror cfg.Tracer/cfg.Logger; both are nil-safe.
	tracer *trace.Tracer
	logger *trace.Logger

	// transport performs one request/response attempt, propagating the
	// attempt's trace context (zero when unsampled) to trace-capable v2
	// peers. It defaults to (*Cluster).roundTrip and exists so tests can
	// script per-attempt outcomes (e.g. a stale conn on the second
	// attempt) that are impractical to stage over a real socket.
	// Buffer contract (DESIGN.md §9): the payload is only valid for the
	// duration of the call — implementations must not retain it — and
	// the returned body may be pool-owned; the op layer releases it with
	// putBody once decoded, so implementations must return bodies they
	// own (fresh or pooled, never a shared buffer they reuse).
	transport func(addr string, t wire.MsgType, tc trace.Context, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error)
}

// clusterMetrics holds the client's resolved metric handles. The
// counters double as the Stats() snapshot source, so the failure-path
// numbers in tests, dmapnode demo output and /debug/metrics are one
// set of books (no bespoke atomics on the side).
type clusterMetrics struct {
	reg       *metrics.Registry
	dials     *metrics.Counter
	redials   *metrics.Counter
	retries   *metrics.Counter
	failovers *metrics.Counter
	rejects   *metrics.Counter
	sheds     *metrics.Counter
	timeouts  *metrics.Counter
	deadlines *metrics.Counter
	// attempt is the per-attempt round-trip latency (µs), including
	// timed-out and failed attempts — the distribution §III-D3's
	// failover math is about.
	attempt *metrics.Histogram
	// Per-operation end-to-end latency (µs) across all replicas,
	// retries and backoffs, successful or not.
	opInsert *metrics.Histogram
	opLookup *metrics.Histogram
	opDelete *metrics.Histogram
	// v2 pipelined-path instrumentation: requests in flight on shared
	// connections, entries/GUIDs per batch frame, end-to-end batch op
	// latency.
	inflight   *metrics.Gauge
	batchSize  *metrics.Histogram
	opBatchIns *metrics.Histogram
	opBatchLkp *metrics.Histogram
}

func newClusterMetrics() clusterMetrics {
	reg := metrics.NewRegistry()
	return clusterMetrics{
		reg:       reg,
		dials:     reg.Counter("client.dials"),
		redials:   reg.Counter("client.redials"),
		retries:   reg.Counter("client.retries"),
		failovers: reg.Counter("client.failovers"),
		rejects:   reg.Counter("client.rejects"),
		sheds:     reg.Counter("client.sheds"),
		timeouts:  reg.Counter("client.timeouts"),
		deadlines: reg.Counter("client.deadlines"),
		attempt:   reg.Histogram("client.attempt_us"),
		opInsert:  reg.Histogram("client.op.insert_us"),
		opLookup:  reg.Histogram("client.op.lookup_us"),
		opDelete:  reg.Histogram("client.op.delete_us"),

		inflight:   reg.Gauge("client.inflight"),
		batchSize:  reg.Histogram("client.batch_size"),
		opBatchIns: reg.Histogram("client.op.batch_insert_us"),
		opBatchLkp: reg.Histogram("client.op.batch_lookup_us"),
	}
}

// New builds a cluster client with default robustness settings. addrs
// maps AS indices to node "host:port" addresses; ASs without nodes are
// treated as unreachable. timeout ≤ 0 selects DefaultTimeout.
func New(resolver *core.Resolver, addrs map[int]string, timeout time.Duration) (*Cluster, error) {
	return NewWithConfig(resolver, addrs, Config{Timeout: timeout})
}

// NewWithConfig builds a cluster client with explicit timeout, deadline
// and retry configuration.
func NewWithConfig(resolver *core.Resolver, addrs map[int]string, cfg Config) (*Cluster, error) {
	if resolver == nil {
		return nil, errors.New("client: nil resolver")
	}
	m := make(map[int]string, len(addrs))
	for as, a := range addrs {
		m[as] = a
	}
	c := &Cluster{resolver: resolver, cfg: cfg.withDefaults(), addrs: m, m: newClusterMetrics()}
	c.tracer = c.cfg.Tracer
	c.logger = c.cfg.Logger
	c.transport = c.roundTrip
	c.m.reg.GaugeFunc("client.pool.idle", func() float64 { return float64(c.pool.idleLen()) })
	c.m.reg.GaugeFunc("client.mux.conns", func() float64 { return float64(c.mux.liveConns()) })
	return c, nil
}

// SetNode adds or replaces the node address of an AS (e.g. after a
// crashed node is revived elsewhere).
func (c *Cluster) SetNode(as int, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[as] = addr
}

// Stats returns a snapshot of the failure-path counters (the same
// counters Metrics exposes).
func (c *Cluster) Stats() Stats {
	return Stats{
		Dials:     c.m.dials.Value(),
		Redials:   c.m.redials.Value(),
		Retries:   c.m.retries.Value(),
		Failovers: c.m.failovers.Value(),
		Rejects:   c.m.rejects.Value(),
		Sheds:     c.m.sheds.Value(),
		Timeouts:  c.m.timeouts.Value(),
		Deadlines: c.m.deadlines.Value(),
	}
}

// Metrics returns the cluster's registry: failure-path counters,
// per-attempt and per-operation latency histograms, and pool gauges.
func (c *Cluster) Metrics() *metrics.Registry { return c.m.reg }

// Tracer returns the cluster's tracer (nil when tracing is off).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// Close releases pooled and shared connections.
func (c *Cluster) Close() {
	c.pool.closeAll()
	c.mux.closeAll()
}

// Operation errors.
var (
	// ErrNotFound reports that no reachable replica had the mapping.
	ErrNotFound = errors.New("client: GUID not found")
	// ErrDeadline reports that the per-operation deadline expired before
	// the operation could complete.
	ErrDeadline = errors.New("client: operation deadline exceeded")
	// ErrOverload reports a load-shed refusal (wire.ErrKindShed): the
	// node is healthy but at its in-flight limit. The retry loop backs
	// off and retries the same replica rather than failing over.
	ErrOverload = errors.New("client: node overloaded")
	// ErrRejected reports an explicit MsgError refusal from a node
	// (e.g. a draining store). Rejections fail over immediately: the
	// node answered, so retrying it is pointless.
	ErrRejected = errors.New("client: request rejected by node")
)

// errStaleConn marks a pooled connection that died before carrying any
// response byte: the server closed it while idle. The retry loop
// replaces it without consuming a policy attempt — the request never
// reached a live server.
var errStaleConn = errors.New("client: stale pooled connection")

// Insert stores e at all K replicas in parallel and waits for every
// reachable replica's ack, returning how many acknowledged. An error is
// returned only when no replica could be reached (partial success is the
// protocol's normal churn-tolerant mode).
func (c *Cluster) Insert(e store.Entry) (acked int, err error) {
	placements, err := c.resolver.Place(e.GUID)
	if err != nil {
		return 0, err
	}
	payload, err := wire.AppendEntry(payloadBufs.Get(128), e)
	if err != nil {
		return 0, err
	}
	// Every goroutine below is joined by wg.Wait before the payload is
	// released — the pool never sees a buffer with readers in flight.
	defer payloadBufs.Put(payload)
	opStart := time.Now()
	sp := c.tracer.StartOp("client.insert")
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer func() {
		c.m.opInsert.ObserveSinceExemplar(opStart, sp.TraceID())
		c.tracer.FinishOp(sp, "insert", e.GUID, opStart, err)
	}()

	var wg sync.WaitGroup
	acks := make([]bool, len(placements))
	errs := make([]error, len(placements))
	for i, p := range placements {
		i, as := i, p.AS
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, body, err := c.call(sp, as, wire.MsgInsert, payload, opDeadline)
			putBody(body) // an insert ack carries no payload worth keeping
			switch {
			case err != nil:
				errs[i] = fmt.Errorf("AS %d: %w", as, err)
			case t != wire.MsgInsertAck:
				errs[i] = fmt.Errorf("AS %d: unexpected frame %v", as, t)
			default:
				acks[i] = true
			}
		}()
	}
	wg.Wait()
	n := 0
	for _, ok := range acks {
		if ok {
			n++
		}
	}
	if n == 0 {
		return 0, insertFailure(e.GUID, errs)
	}
	return n, nil
}

// insertFailure explains a total insert failure. "Every replica
// rejected the write" (a cluster-wide drain) and "no replica reachable"
// (an outage) are different operator stories; the error distinguishes
// them and carries the last per-replica cause instead of a generic
// "no replica reachable".
func insertFailure(g guid.GUID, errs []error) error {
	rejected, unreachable := 0, 0
	var last error
	for _, err := range errs {
		if err == nil {
			continue
		}
		last = err
		if errors.Is(err, ErrRejected) {
			rejected++
		} else {
			unreachable++
		}
	}
	switch {
	case last == nil:
		return fmt.Errorf("client: insert %s: no replica acknowledged", g.Short())
	case unreachable == 0:
		return fmt.Errorf("client: insert %s: all %d replicas rejected the write (%w; last: %v)", g.Short(), rejected, ErrRejected, last)
	case rejected == 0:
		return fmt.Errorf("client: insert %s: no replica reachable (%d unreachable; last: %v)", g.Short(), unreachable, last)
	default:
		return fmt.Errorf("client: insert %s: no replica stored it (%d rejected, %d unreachable; last: %v)", g.Short(), rejected, unreachable, last)
	}
}

// Update is Insert with a higher version (freshest-wins at each node).
func (c *Cluster) Update(e store.Entry) (int, error) { return c.Insert(e) }

// Lookup resolves g, walking replicas in Algorithm 1's placement order:
// a miss reply, timeout, connection error or rejection moves to the next
// replica until the per-operation deadline expires (§III-D3).
func (c *Cluster) Lookup(g guid.GUID) (store.Entry, error) {
	var e store.Entry
	if err := c.LookupInto(g, &e); err != nil {
		return store.Entry{}, err
	}
	return e, nil
}

// LookupInto is Lookup with a caller-supplied result buffer: the found
// entry is decoded into e, reusing its NAs capacity, so a caller that
// keeps one entry per goroutine (cap(NAs) >= store.MaxNAs) resolves
// GUIDs with zero heap allocations. On a miss or error e's contents are
// unspecified.
func (c *Cluster) LookupInto(g guid.GUID, e *store.Entry) (err error) {
	placements, perr := c.resolver.PlaceInto(g, getPlacements())
	defer putPlacements(placements) // the replica walk below is sequential
	if perr != nil {
		return perr
	}
	payload := wire.AppendGUID(payloadBufs.Get(32), g)
	defer payloadBufs.Put(payload) // the replica walk below is sequential
	opStart := time.Now()
	sp := c.tracer.StartOp("client.lookup")
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer func() {
		c.m.opLookup.ObserveSinceExemplar(opStart, sp.TraceID())
		c.tracer.FinishOp(sp, "lookup", g, opStart, err)
	}()
	var lastErr error
	for i, p := range placements {
		t, body, err := c.call(sp, p.AS, wire.MsgLookup, payload, opDeadline)
		if err != nil {
			lastErr = err
			if errors.Is(err, ErrDeadline) {
				break // out of budget: later replicas cannot be tried either
			}
			if i < len(placements)-1 {
				c.m.failovers.Inc()
				sp.Eventf("failover: AS %d failed: %v", p.AS, err)
				c.logger.Debug("lookup failover", "guid", g.Short(), "as", p.AS, "err", err)
			}
			continue
		}
		if t != wire.MsgLookupResp {
			putBody(body)
			lastErr = fmt.Errorf("client: unexpected frame %v", t)
			continue
		}
		found, derr := wire.DecodeLookupRespInto(e, body)
		putBody(body) // DecodeLookupRespInto copied everything it kept
		if derr != nil {
			lastErr = derr
			continue
		}
		if found {
			return nil
		}
	}
	if lastErr != nil {
		if errors.Is(lastErr, ErrDeadline) {
			return lastErr
		}
		return fmt.Errorf("%w (last error: %v)", ErrNotFound, lastErr)
	}
	return ErrNotFound
}

// LookupFastest queries all K replicas in parallel — the latency-optimal
// strategy when the client cannot estimate per-replica RTTs (cf.
// §III-C's simultaneous local+global lookup). It costs K network round
// trips of load instead of one.
//
// After the first positive reply it keeps collecting answers for the
// configured FreshnessWait grace (or until every replica has answered)
// and returns the highest Version seen: after a partial Update (n < K
// acks) the fastest replica may well be a stale one, and first-answer-
// wins would serve the old mapping indefinitely. Replicas that had to
// be looked past because they failed count as read-path failovers.
func (c *Cluster) LookupFastest(g guid.GUID) (entry store.Entry, err error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return store.Entry{}, err
	}
	// Deliberately not pooled: the grace window lets LookupFastest
	// return while slow replicas' goroutines still hold the payload, so
	// recycling it here would hand the pool a buffer with live readers.
	payload := wire.AppendGUID(nil, g)
	opStart := time.Now()
	sp := c.tracer.StartOp("client.lookup_fastest")
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer func() {
		c.m.opLookup.ObserveSinceExemplar(opStart, sp.TraceID())
		c.tracer.FinishOp(sp, "lookup_fastest", g, opStart, err)
	}()

	type answer struct {
		entry store.Entry
		found bool
		err   error
	}
	results := make(chan answer, len(placements))
	for _, p := range placements {
		as := p.AS
		go func() {
			t, body, err := c.call(sp, as, wire.MsgLookup, payload, opDeadline)
			if err != nil {
				results <- answer{err: err}
				return
			}
			if t != wire.MsgLookupResp {
				putBody(body)
				results <- answer{err: fmt.Errorf("client: unexpected frame %v", t)}
				return
			}
			resp, err := wire.DecodeLookupResp(body)
			putBody(body)
			if err != nil {
				results <- answer{err: err}
				return
			}
			results <- answer{entry: resp.Entry, found: resp.Found}
		}()
	}

	grace := c.cfg.FreshnessWait
	if grace < 0 {
		grace = 0
	}
	var (
		best     store.Entry
		found    bool
		errCount int
		lastErr  error
		timer    *time.Timer
		graceC   <-chan time.Time
	)
collect:
	for answered := 0; answered < len(placements); {
		select {
		case a := <-results:
			answered++
			if a.err != nil {
				errCount++
				lastErr = a.err
				continue
			}
			if !a.found {
				continue
			}
			if !found || a.entry.Version > best.Version {
				best, found = a.entry, true
			}
			if grace == 0 {
				break collect
			}
			if timer == nil {
				timer = time.NewTimer(grace)
				graceC = timer.C
			}
		case <-graceC:
			break collect
		}
	}
	if timer != nil {
		timer.Stop()
	}
	if found {
		// Every failed replica whose answer we had to replace with
		// another's is a read-path failover, same as the sequential walk.
		c.m.failovers.Add(int64(errCount))
		return best, nil
	}
	if errCount > 1 {
		// Mirrors Lookup: a failure on the last-resort replica is not a
		// failover, there was nowhere further to go.
		c.m.failovers.Add(int64(errCount - 1))
	}
	if lastErr != nil {
		return store.Entry{}, fmt.Errorf("%w (last error: %v)", ErrNotFound, lastErr)
	}
	return store.Entry{}, ErrNotFound
}

// Delete removes g from all replicas, returning how many held it.
func (c *Cluster) Delete(g guid.GUID) (removedCount int, err error) {
	placements, perr := c.resolver.PlaceInto(g, getPlacements())
	defer putPlacements(placements) // the replica walk below is sequential
	if perr != nil {
		return 0, perr
	}
	payload := wire.AppendGUID(payloadBufs.Get(32), g)
	defer payloadBufs.Put(payload) // the replica walk below is sequential
	opStart := time.Now()
	sp := c.tracer.StartOp("client.delete")
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer func() {
		c.m.opDelete.ObserveSinceExemplar(opStart, sp.TraceID())
		c.tracer.FinishOp(sp, "delete", g, opStart, err)
	}()
	removed := 0
	for _, p := range placements {
		t, body, err := c.call(sp, p.AS, wire.MsgDelete, payload, opDeadline)
		existed := err == nil && t == wire.MsgDeleteAck && len(body) >= 1 && body[0] == 1
		putBody(body)
		if err != nil && errors.Is(err, ErrDeadline) {
			break
		}
		if existed {
			removed++
		}
	}
	return removed, nil
}

// Ping checks liveness of the node serving an AS.
func (c *Cluster) Ping(as int) error {
	t, body, err := c.call(nil, as, wire.MsgPing, nil, time.Now().Add(c.cfg.OpDeadline))
	putBody(body)
	if err != nil {
		return err
	}
	if t != wire.MsgPong {
		return fmt.Errorf("client: unexpected frame %v", t)
	}
	return nil
}

// call runs the retry policy for one replica: up to MaxAttempts
// round trips with exponential backoff and deterministic jitter, all
// inside the operation deadline. A stale shared/pooled connection is
// replaced without consuming an attempt (once per call) — and without
// sleeping a backoff or ticking the retries counter, since no logical
// retry happened. A MsgError reply aborts the retries — the node
// answered and said no — except for ErrKindShed, which means "too busy
// right now": that consumes an attempt and backs off on the same
// replica instead of failing over.
//
// sp is the operation's span (nil when unsampled): each round trip
// opens a child attempt span carrying the AS, attempt number and
// outcome (redial, timeout, rejection), and the attempt's context is
// what propagates to the server.
func (c *Cluster) call(sp *trace.Span, as int, t wire.MsgType, payload []byte, opDeadline time.Time) (wire.MsgType, []byte, error) {
	c.mu.RLock()
	addr, ok := c.addrs[as]
	c.mu.RUnlock()
	if !ok {
		return 0, nil, fmt.Errorf("client: no node for AS %d", as)
	}

	pol := c.cfg.Retry
	redialed := false
	var lastErr error
	attempt := 1
	for {
		remaining := time.Until(opDeadline)
		if remaining <= 0 {
			c.m.deadlines.Inc()
			sp.Eventf("deadline exceeded at AS %d", as)
			if lastErr == nil {
				return 0, nil, ErrDeadline
			}
			return 0, nil, fmt.Errorf("%w (last error: %v)", ErrDeadline, lastErr)
		}
		timeout := c.cfg.Timeout
		if timeout > remaining {
			timeout = remaining
		}

		att := sp.NewChild("attempt")
		if att != nil { // skip the arg boxing entirely when unsampled
			att.Eventf("as=%d addr=%s attempt=%d %v", as, addr, attempt, t)
		}
		attemptStart := time.Now()
		rt, body, err := c.transport(addr, t, att.Context(), payload, timeout)
		c.m.attempt.ObserveSinceExemplar(attemptStart, att.TraceID())
		if errors.Is(err, errStaleConn) && !redialed {
			// Observable replacement of a server-closed idle connection.
			// The request never reached a live server, so this consumes
			// no policy attempt, pays no backoff and counts no retry.
			redialed = true
			c.m.redials.Inc()
			att.Eventf("redial: stale connection replaced")
			att.End()
			c.logger.Debug("redial", "addr", addr, "as", as)
			continue
		}
		if err == nil {
			if rt != wire.MsgError {
				att.End()
				return rt, body, nil
			}
			kind, reason, derr := wire.DecodeErrorKind(body)
			putBody(body) // DecodeErrorKind copied the reason string
			if derr != nil {
				reason = "unreadable reason"
			}
			if kind != wire.ErrKindShed {
				// The node answered and said no for a condition that won't
				// clear by itself (draining, malformed request): abort the
				// retries so the caller fails over immediately.
				c.m.rejects.Inc()
				att.Eventf("rejected: %s", reason)
				att.End()
				return 0, nil, fmt.Errorf("%w: %s", ErrRejected, reason)
			}
			// Admission shed: the replica is healthy but saturated, and
			// unlike a drain reject the condition clears on its own.
			// Consume an attempt and back off on this replica instead of
			// failing over, which would stampede the load onto the next
			// replica and take it down too.
			c.m.sheds.Inc()
			att.Eventf("shed: %s", reason)
			err = fmt.Errorf("%w: %s", ErrOverload, reason)
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			c.m.timeouts.Inc()
			att.Eventf("timeout: %v", err)
		} else if !errors.Is(err, ErrOverload) {
			att.Eventf("error: %v", err)
		}
		att.End()
		lastErr = err
		attempt++
		if attempt > pol.MaxAttempts {
			return 0, nil, lastErr
		}
		c.m.retries.Inc()
		pause := pol.Backoff(as, attempt)
		if remaining := time.Until(opDeadline); pause > remaining {
			pause = remaining
		}
		sp.Eventf("retry %d at AS %d after %v backoff", attempt, as, pause)
		if pause > 0 {
			time.Sleep(pause)
		}
	}
}

// roundTrip performs exactly one request/response attempt against addr.
// It prefers the multiplexed v2 transport — one shared pipelined
// connection per address — and falls back to the sequential v1 pool for
// peers that only speak v1 (or when ForceV1 is set). Either transport
// reports a reused connection dying underneath the request as
// errStaleConn so call can replace it without consuming an attempt.
// tc, when sampled, rides to trace-capable v2 peers; v1 peers never
// see it (the extension is v2-only by design).
func (c *Cluster) roundTrip(addr string, t wire.MsgType, tc trace.Context, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
	if !c.cfg.ForceV1 {
		mc, fresh, err := c.muxGet(addr, timeout)
		switch {
		case err == nil:
			if fresh {
				c.m.dials.Inc()
			}
			c.m.inflight.Add(1)
			rt, body, derr := mc.do(t, tc, payload, timeout)
			c.m.inflight.Add(-1)
			if derr != nil && errors.Is(derr, errConnDead) && !fresh {
				// The shared conn died with this request in flight; it
				// never got an answer from a live server.
				return 0, nil, fmt.Errorf("%w: %v", errStaleConn, derr)
			}
			return rt, body, derr
		case errors.Is(err, errUseV1):
			// Peer speaks v1; fall through to the sequential transport.
		default:
			return 0, nil, err
		}
	}
	return c.roundTripV1(addr, t, payload, timeout)
}

// roundTripV1 performs exactly one request/response against addr over
// the sequential v1 protocol, using a pooled connection when available.
// A pooled connection failing before any response byte yields
// errStaleConn so the caller can replace it.
func (c *Cluster) roundTripV1(addr string, t wire.MsgType, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
	conn, fresh, err := c.pool.get(addr, timeout)
	if err != nil {
		return 0, nil, err
	}
	if fresh {
		c.m.dials.Inc()
	}
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, t, payload); err != nil {
		conn.Close()
		if !fresh {
			return 0, nil, fmt.Errorf("%w: %v", errStaleConn, err)
		}
		return 0, nil, err
	}
	rt, body, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		if !fresh {
			return 0, nil, fmt.Errorf("%w: %v", errStaleConn, err)
		}
		return 0, nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	c.pool.put(addr, conn)
	return rt, body, nil
}

// connPool keeps one idle connection per address — enough to amortize
// dials for the sequential request/response protocol while staying
// trivially correct.
type connPool struct {
	mu   sync.Mutex
	idle map[string]net.Conn
}

// get returns a pooled connection or dials a fresh one; fresh reports
// which.
func (p *connPool) get(addr string, timeout time.Duration) (conn net.Conn, fresh bool, err error) {
	p.mu.Lock()
	if c, ok := p.idle[addr]; ok {
		delete(p.idle, addr)
		p.mu.Unlock()
		return c, false, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, true, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return c, true, nil
}

func (p *connPool) put(addr string, conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle == nil {
		p.idle = make(map[string]net.Conn)
	}
	if _, ok := p.idle[addr]; ok {
		conn.Close() // already one idle; drop the extra
		return
	}
	p.idle[addr] = conn
}

// idleLen reports the number of idle pooled connections.
func (p *connPool) idleLen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
}
