// Package client implements the querier side of networked DMap: it
// derives each GUID's K hosting ASs locally (exactly as a border gateway
// would, from the shared hash family and prefix table) and talks to the
// corresponding mapping nodes over TCP.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/store"
	"dmap/internal/wire"
)

// Cluster resolves GUIDs against a set of networked mapping nodes. It is
// safe for concurrent use.
type Cluster struct {
	resolver *core.Resolver
	timeout  time.Duration

	mu    sync.RWMutex
	addrs map[int]string // AS index → node address

	pool connPool
}

// DefaultTimeout bounds each network operation.
const DefaultTimeout = 2 * time.Second

// New builds a cluster client. addrs maps AS indices to node "host:port"
// addresses; ASs without nodes are treated as unreachable. timeout ≤ 0
// selects DefaultTimeout.
func New(resolver *core.Resolver, addrs map[int]string, timeout time.Duration) (*Cluster, error) {
	if resolver == nil {
		return nil, errors.New("client: nil resolver")
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	m := make(map[int]string, len(addrs))
	for as, a := range addrs {
		m[as] = a
	}
	return &Cluster{resolver: resolver, timeout: timeout, addrs: m}, nil
}

// SetNode adds or replaces the node address of an AS.
func (c *Cluster) SetNode(as int, addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addrs[as] = addr
}

// Close releases pooled connections.
func (c *Cluster) Close() {
	c.pool.closeAll()
}

// ErrNotFound reports that no reachable replica had the mapping.
var ErrNotFound = errors.New("client: GUID not found")

// Insert stores e at all K replicas in parallel and waits for every
// reachable replica's ack, returning how many acknowledged. An error is
// returned only when no replica could be reached (partial success is the
// protocol's normal churn-tolerant mode).
func (c *Cluster) Insert(e store.Entry) (int, error) {
	placements, err := c.resolver.Place(e.GUID)
	if err != nil {
		return 0, err
	}
	payload, err := wire.AppendEntry(nil, e)
	if err != nil {
		return 0, err
	}

	var wg sync.WaitGroup
	acks := make([]bool, len(placements))
	for i, p := range placements {
		i, as := i, p.AS
		wg.Add(1)
		go func() {
			defer wg.Done()
			t, _, err := c.roundTrip(as, wire.MsgInsert, payload)
			acks[i] = err == nil && t == wire.MsgInsertAck
		}()
	}
	wg.Wait()
	n := 0
	for _, ok := range acks {
		if ok {
			n++
		}
	}
	if n == 0 {
		return 0, fmt.Errorf("client: insert %s: no replica reachable", e.GUID.Short())
	}
	return n, nil
}

// Update is Insert with a higher version (freshest-wins at each node).
func (c *Cluster) Update(e store.Entry) (int, error) { return c.Insert(e) }

// Lookup resolves g, trying replicas in placement order and skipping
// unreachable or missing ones (§III-D3's retry, with the network's
// timeout standing in for the router-failure timeout).
func (c *Cluster) Lookup(g guid.GUID) (store.Entry, error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return store.Entry{}, err
	}
	payload := wire.AppendGUID(nil, g)
	var lastErr error
	for _, p := range placements {
		t, body, err := c.roundTrip(p.AS, wire.MsgLookup, payload)
		if err != nil {
			lastErr = err
			continue
		}
		if t != wire.MsgLookupResp {
			lastErr = fmt.Errorf("client: unexpected frame %v", t)
			continue
		}
		resp, err := wire.DecodeLookupResp(body)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.Found {
			return resp.Entry, nil
		}
	}
	if lastErr != nil {
		return store.Entry{}, fmt.Errorf("%w (last error: %v)", ErrNotFound, lastErr)
	}
	return store.Entry{}, ErrNotFound
}

// LookupFastest queries all K replicas in parallel and returns the first
// positive answer — the latency-optimal strategy when the client cannot
// estimate per-replica RTTs (cf. §III-C's simultaneous local+global
// lookup). It costs K network round trips of load instead of one.
func (c *Cluster) LookupFastest(g guid.GUID) (store.Entry, error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return store.Entry{}, err
	}
	payload := wire.AppendGUID(nil, g)

	type answer struct {
		entry store.Entry
		found bool
		err   error
	}
	results := make(chan answer, len(placements))
	for _, p := range placements {
		as := p.AS
		go func() {
			t, body, err := c.roundTrip(as, wire.MsgLookup, payload)
			if err != nil {
				results <- answer{err: err}
				return
			}
			if t != wire.MsgLookupResp {
				results <- answer{err: fmt.Errorf("client: unexpected frame %v", t)}
				return
			}
			resp, err := wire.DecodeLookupResp(body)
			if err != nil {
				results <- answer{err: err}
				return
			}
			results <- answer{entry: resp.Entry, found: resp.Found}
		}()
	}
	var lastErr error
	for range placements {
		a := <-results
		if a.found {
			return a.entry, nil
		}
		if a.err != nil {
			lastErr = a.err
		}
	}
	if lastErr != nil {
		return store.Entry{}, fmt.Errorf("%w (last error: %v)", ErrNotFound, lastErr)
	}
	return store.Entry{}, ErrNotFound
}

// Delete removes g from all replicas, returning how many held it.
func (c *Cluster) Delete(g guid.GUID) (int, error) {
	placements, err := c.resolver.Place(g)
	if err != nil {
		return 0, err
	}
	payload := wire.AppendGUID(nil, g)
	removed := 0
	for _, p := range placements {
		t, body, err := c.roundTrip(p.AS, wire.MsgDelete, payload)
		if err != nil || t != wire.MsgDeleteAck || len(body) < 1 {
			continue
		}
		if body[0] == 1 {
			removed++
		}
	}
	return removed, nil
}

// Ping checks liveness of the node serving an AS.
func (c *Cluster) Ping(as int) error {
	t, _, err := c.roundTrip(as, wire.MsgPing, nil)
	if err != nil {
		return err
	}
	if t != wire.MsgPong {
		return fmt.Errorf("client: unexpected frame %v", t)
	}
	return nil
}

// roundTrip performs one request/response against the node of as, using
// a pooled connection when available.
func (c *Cluster) roundTrip(as int, t wire.MsgType, payload []byte) (wire.MsgType, []byte, error) {
	c.mu.RLock()
	addr, ok := c.addrs[as]
	c.mu.RUnlock()
	if !ok {
		return 0, nil, fmt.Errorf("client: no node for AS %d", as)
	}

	// One retry with a fresh connection covers pooled connections that
	// the server closed while idle.
	for attempt := 0; ; attempt++ {
		conn, fresh, err := c.pool.get(addr, c.timeout)
		if err != nil {
			return 0, nil, err
		}
		deadline := time.Now().Add(c.timeout)
		_ = conn.SetDeadline(deadline)
		if err := wire.WriteFrame(conn, t, payload); err == nil {
			if rt, body, err := wire.ReadFrame(conn); err == nil {
				_ = conn.SetDeadline(time.Time{})
				c.pool.put(addr, conn)
				return rt, body, nil
			} else if fresh || attempt > 0 {
				conn.Close()
				return 0, nil, err
			}
		} else if fresh || attempt > 0 {
			conn.Close()
			return 0, nil, err
		}
		conn.Close() // stale pooled conn: retry once with a fresh dial
	}
}

// connPool keeps one idle connection per address — enough to amortize
// dials for the sequential request/response protocol while staying
// trivially correct.
type connPool struct {
	mu   sync.Mutex
	idle map[string]net.Conn
}

// get returns a pooled connection or dials a fresh one; fresh reports
// which.
func (p *connPool) get(addr string, timeout time.Duration) (conn net.Conn, fresh bool, err error) {
	p.mu.Lock()
	if c, ok := p.idle[addr]; ok {
		delete(p.idle, addr)
		p.mu.Unlock()
		return c, false, nil
	}
	p.mu.Unlock()
	c, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, true, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return c, true, nil
}

func (p *connPool) put(addr string, conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idle == nil {
		p.idle = make(map[string]net.Conn)
	}
	if _, ok := p.idle[addr]; ok {
		conn.Close() // already one idle; drop the extra
		return
	}
	p.idle[addr] = conn
}

func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
}
