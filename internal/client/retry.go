// Retry policy and failure accounting for the cluster client. The
// policy mirrors §III-D3 of the paper at the transport layer: a replica
// that times out or refuses a connection is retried a bounded number of
// times with exponential backoff, then the operation fails over to the
// next hashed replica in Algorithm 1 order.
//
// Backoff jitter is deterministic — derived by hashing (seed, replica,
// attempt) rather than drawn from a shared PRNG — so tests and replayed
// traces see identical pause schedules.
package client

import (
	"time"
)

// RetryPolicy bounds per-replica persistence. The zero value selects
// the defaults below.
type RetryPolicy struct {
	// MaxAttempts is the total tries per replica per operation,
	// including the first (≥ 1). Default 2.
	MaxAttempts int
	// BaseBackoff is the pause before the second attempt; it doubles
	// every further attempt. Default 10 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the grown backoff. Default 500 ms.
	MaxBackoff time.Duration
	// JitterSeed feeds the deterministic jitter hash. Two clients with
	// equal seeds pause identically.
	JitterSeed int64
}

// Retry defaults.
const (
	DefaultMaxAttempts = 2
	DefaultBaseBackoff = 10 * time.Millisecond
	DefaultMaxBackoff  = 500 * time.Millisecond
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	return p
}

// Backoff returns the pause before attempt (2, 3, …) against replica
// AS as: exponential growth capped at MaxBackoff, then scaled into
// [50%, 100%] by a hash of (JitterSeed, as, attempt) — the "equal
// jitter" scheme, decorrelating replicas without a PRNG stream.
func (p RetryPolicy) Backoff(as, attempt int) time.Duration {
	if attempt <= 1 {
		return 0
	}
	d := p.BaseBackoff << (attempt - 2)
	if d <= 0 || d > p.MaxBackoff { // <= 0 catches shift overflow
		d = p.MaxBackoff
	}
	h := mix64(uint64(p.JitterSeed) ^ uint64(as)*0x9e3779b97f4a7c15 ^ uint64(attempt)<<32)
	frac := float64(h>>11) / float64(1<<53) // uniform [0, 1)
	return d/2 + time.Duration(float64(d/2)*frac)
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash for jitter derivation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Stats is a snapshot of the client's failure-path counters. All
// counters are cumulative since the cluster was created.
type Stats struct {
	// Dials counts fresh TCP connections.
	Dials int64
	// Redials counts stale-pool redials: a pooled connection found dead
	// on first use and replaced. (Previously an invisible internal
	// retry; now accounted and bounded by the retry policy loop.)
	Redials int64
	// Retries counts same-replica attempts beyond the first.
	Retries int64
	// Failovers counts replica-to-replica moves after a transport
	// failure or rejection (§III-D3's "try the next hashed replica").
	Failovers int64
	// Rejects counts MsgError refusals from nodes (e.g. draining).
	// Load-shed refusals are counted separately under Sheds.
	Rejects int64
	// Sheds counts ErrKindShed refusals: the node was at an in-flight
	// admission limit. Each one is retried on the same replica after a
	// backoff rather than failed over.
	Sheds int64
	// Timeouts counts attempts that died on the per-attempt deadline.
	Timeouts int64
	// Deadlines counts operations aborted by the per-operation budget.
	Deadlines int64
}
