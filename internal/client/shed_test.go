// Shed-vs-drain retry semantics: an ErrKindShed refusal means "healthy
// but saturated", so the client backs off and retries the same replica;
// every other MsgError kind means "retrying is pointless", so the
// client aborts toward failover. These tests drive the retry loop with
// a scripted v1 server so each refusal flavor is exact and repeatable.
package client

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/prefixtable"
	"dmap/internal/wire"
)

// scriptedServer is a v1-only fake node: each received request frame is
// answered by script(reqNum, type, payload), where reqNum counts
// requests across all connections starting at 1.
func scriptedServer(t *testing.T, script func(req int64, typ wire.MsgType, payload []byte) (wire.MsgType, []byte)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var reqs atomic.Int64
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					typ, payload, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					rt, body := script(reqs.Add(1), typ, payload)
					if err := wire.WriteFrame(conn, rt, body); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// scriptedCluster wires a single-replica client (K=1, so there is no
// replica to fail over to — any recovery must come from retrying) to a
// scripted server, forcing the v1 transport the fake speaks.
func scriptedCluster(t *testing.T, addr string, retry RetryPolicy) *Cluster {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             2,
		NumPrefixes:       24,
		AnnouncedFraction: 0.52,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithConfig(resolver, map[int]string{0: addr, 1: addr}, Config{
		Timeout:    time.Second,
		OpDeadline: 5 * time.Second,
		Retry:      retry,
		ForceV1:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func lookupRespBody(t *testing.T, found bool) []byte {
	t.Helper()
	var body []byte
	var err error
	if found {
		body, err = wire.AppendLookupResp(nil, wire.LookupResp{Found: true, Entry: clusterEntry("shed", 1)})
	} else {
		body, err = wire.AppendLookupResp(nil, wire.LookupResp{})
	}
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestShedBacksOffAndRetriesSameReplica: a shed first attempt must be
// retried on the same replica after a backoff — and succeed — rather
// than aborting like a drain reject would. With K=1 there is nowhere to
// fail over, so success here proves the retry happened.
func TestShedBacksOffAndRetriesSameReplica(t *testing.T) {
	addr := scriptedServer(t, func(req int64, typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
		if req == 1 {
			return wire.MsgError, wire.AppendErrorKind(nil, wire.ErrKindShed, "overloaded")
		}
		return wire.MsgLookupResp, lookupRespBody(t, true)
	})
	c := scriptedCluster(t, addr, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	start := time.Now()
	if _, err := c.Lookup(guid.New("shed-once")); err != nil {
		t.Fatalf("lookup after one shed failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Microsecond {
		t.Errorf("retry came back in %v; expected at least the jittered backoff (≥0.5ms)", elapsed)
	}
	st := c.Stats()
	if st.Sheds != 1 {
		t.Errorf("Sheds = %d, want 1", st.Sheds)
	}
	if st.Retries != 1 {
		t.Errorf("Retries = %d, want 1 (the shed must consume a policy attempt)", st.Retries)
	}
	if st.Rejects != 0 {
		t.Errorf("Rejects = %d, want 0 (sheds must not count as rejects)", st.Rejects)
	}
	if st.Failovers != 0 {
		t.Errorf("Failovers = %d, want 0", st.Failovers)
	}
}

// TestShedExhaustionReturnsErrOverload: a replica that sheds every
// attempt exhausts the policy and surfaces ErrOverload, not ErrRejected.
func TestShedExhaustionReturnsErrOverload(t *testing.T) {
	addr := scriptedServer(t, func(int64, wire.MsgType, []byte) (wire.MsgType, []byte) {
		return wire.MsgError, wire.AppendErrorKind(nil, wire.ErrKindShed, "overloaded")
	})
	c := scriptedCluster(t, addr, RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	// Drive the retry loop directly: Lookup folds the cause into
	// ErrNotFound text, but call's own error is the contract.
	_, _, err := c.call(nil, 0, wire.MsgLookup, wire.AppendGUID(nil, guid.New("shed-always")), time.Now().Add(5*time.Second))
	if err == nil {
		t.Fatal("lookup against an always-shedding replica succeeded")
	}
	if !errors.Is(err, ErrOverload) {
		t.Errorf("error %v does not wrap ErrOverload", err)
	}
	if errors.Is(err, ErrRejected) {
		t.Errorf("error %v wraps ErrRejected; shed exhaustion must stay distinct", err)
	}
	st := c.Stats()
	if st.Sheds != 2 {
		t.Errorf("Sheds = %d, want 2 (one per attempt)", st.Sheds)
	}
}

// TestDrainAbortsRetriesImmediately: the pre-existing contract stays —
// a non-shed MsgError (draining) burns no retries on that replica.
func TestDrainAbortsRetriesImmediately(t *testing.T) {
	var served atomic.Int64
	addr := scriptedServer(t, func(req int64, typ wire.MsgType, payload []byte) (wire.MsgType, []byte) {
		served.Store(req)
		return wire.MsgError, wire.AppendErrorKind(nil, wire.ErrKindDraining, "draining: writes refused")
	})
	c := scriptedCluster(t, addr, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})

	_, _, err := c.call(nil, 0, wire.MsgLookup, wire.AppendGUID(nil, guid.New("drained")), time.Now().Add(5*time.Second))
	if err == nil {
		t.Fatal("lookup against a refusing replica succeeded")
	}
	if !errors.Is(err, ErrRejected) {
		t.Errorf("error %v does not wrap ErrRejected", err)
	}
	if got := served.Load(); got != 1 {
		t.Errorf("server saw %d attempts, want 1 (drain must abort the retry loop)", got)
	}
	st := c.Stats()
	if st.Rejects != 1 || st.Sheds != 0 || st.Retries != 0 {
		t.Errorf("stats = %+v, want Rejects=1 Sheds=0 Retries=0", st)
	}
}

// TestLegacyGenericErrorStillRejects: a bare-reason error from an old
// peer (kind byte = generic) keeps the abort-and-fail-over behavior.
func TestLegacyGenericErrorStillRejects(t *testing.T) {
	addr := scriptedServer(t, func(int64, wire.MsgType, []byte) (wire.MsgType, []byte) {
		return wire.MsgError, wire.AppendError(nil, "no")
	})
	c := scriptedCluster(t, addr, RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, _, err := c.call(nil, 0, wire.MsgLookup, wire.AppendGUID(nil, guid.New("legacy")), time.Now().Add(5*time.Second))
	if !errors.Is(err, ErrRejected) {
		t.Errorf("legacy generic error = %v, want ErrRejected", err)
	}
	if st := c.Stats(); st.Sheds != 0 {
		t.Errorf("Sheds = %d, want 0", st.Sheds)
	}
}
