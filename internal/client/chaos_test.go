package client

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
)

// Chaos test: concurrent Insert/Lookup/Delete traffic through a live
// cluster while a killer goroutine crashes and revives nodes. Stores
// persist across restarts (a revived node keeps its data, like a real
// DMap node rejoining), so the invariant under test is §III-D3's: no
// deadlocks, and no acknowledged write is ever lost. Run under -race via
// scripts/check.sh.

// chaosCluster is a testCluster variant whose per-AS stores outlive node
// restarts.
type chaosCluster struct {
	c      *Cluster
	stores []*store.Store

	mu    sync.Mutex
	nodes []*server.Node
}

func newChaosCluster(t *testing.T, numAS, k int) *chaosCluster {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             numAS,
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc := &chaosCluster{
		stores: make([]*store.Store, numAS),
		nodes:  make([]*server.Node, numAS),
	}
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		cc.stores[as] = store.New()
		n := server.New(cc.stores[as], nil)
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cc.nodes[as] = n
		addrs[as] = addr
	}
	t.Cleanup(func() {
		cc.mu.Lock()
		defer cc.mu.Unlock()
		for _, n := range cc.nodes {
			n.Close()
		}
	})
	cc.c, err = NewWithConfig(resolver, addrs, Config{
		Timeout:    300 * time.Millisecond,
		OpDeadline: 3 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 2, BaseBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cc.c.Close)
	return cc
}

// kill crashes the node for as; in-flight and future requests to it fail
// until revive.
func (cc *chaosCluster) kill(as int) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.nodes[as].Close()
}

// revive restarts as's node on a fresh port with the surviving store and
// repoints the client at it.
func (cc *chaosCluster) revive(t *testing.T, as int) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := server.New(cc.stores[as], nil)
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		t.Errorf("revive AS %d: %v", as, err)
		return
	}
	cc.nodes[as] = n
	cc.c.SetNode(as, addr)
}

func TestChaosNoLostAcknowledgedWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test is slow")
	}
	const (
		numAS    = 16
		k        = 3
		writers  = 3
		readers  = 2
		deleters = 1
		duration = 2 * time.Second
	)
	cc := newChaosCluster(t, numAS, k)

	type acked struct {
		name    string
		version uint64
	}
	var (
		ackedMu  sync.Mutex
		survived []acked // acked inserts never targeted by a delete
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writers: disjoint keyspaces (prefix w<id>-), record every
	// acknowledged insert.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("w%d-%d", id, i)
				e := clusterEntry(name, uint64(i)+1)
				e.GUID = guid.New(name)
				if acks, err := cc.c.Insert(e); err == nil && acks > 0 {
					ackedMu.Lock()
					survived = append(survived, acked{name, e.Version})
					ackedMu.Unlock()
				}
			}
		}(w)
	}

	// Deleters: their own keyspace (d<id>-); insert then delete, so
	// deletes never race the writers' records.
	for d := 0; d < deleters; d++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("d%d-%d", id, i)
				e := clusterEntry(name, 1)
				e.GUID = guid.New(name)
				if acks, err := cc.c.Insert(e); err == nil && acks > 0 {
					_, _ = cc.c.Delete(e.GUID)
				}
			}
		}(d)
	}

	// Readers: hammer lookups of recent acked keys; during chaos a
	// lookup may fail, but it must never hang past the op deadline.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				ackedMu.Lock()
				var name string
				if len(survived) > 0 {
					name = survived[rng.Intn(len(survived))].name
				}
				ackedMu.Unlock()
				if name == "" {
					time.Sleep(time.Millisecond)
					continue
				}
				start := time.Now()
				_, err := cc.c.Lookup(guid.New(name))
				if el := time.Since(start); el > 5*time.Second {
					t.Errorf("lookup blocked %v (err=%v)", el, err)
				}
			}
		}(r)
	}

	// The killer: crash a random node, let traffic fail over, revive it.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(2))
		for {
			select {
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
			}
			as := rng.Intn(numAS)
			cc.kill(as)
			time.Sleep(30 * time.Millisecond)
			cc.revive(t, as)
		}
	}()

	time.Sleep(duration)
	close(stop)
	wg.Wait()

	// Heal: every node alive at its current address.
	// (revive already repointed the client; nothing else to do.)

	// No acknowledged write may be lost: with persistent stores, an ack
	// means at least one replica durably holds the entry, and the healed
	// cluster must serve it.
	ackedMu.Lock()
	checks := append([]acked(nil), survived...)
	ackedMu.Unlock()
	if len(checks) == 0 {
		t.Fatal("chaos produced no acknowledged writes; cluster was never available")
	}
	lost := 0
	for _, a := range checks {
		e, err := cc.c.Lookup(guid.New(a.name))
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				lost++
				t.Errorf("acknowledged write %q lost", a.name)
				continue
			}
			t.Fatalf("healed-cluster lookup %q: %v", a.name, err)
		}
		if e.Version < a.version {
			t.Errorf("%q regressed to version %d < %d", a.name, e.Version, a.version)
		}
	}
	t.Logf("chaos: %d acknowledged writes, %d lost, client stats %+v",
		len(checks), lost, cc.c.Stats())
}
