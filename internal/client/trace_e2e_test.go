// End-to-end tests for the distributed-tracing extension: trace
// contexts crossing the real wire path, slow-op capture on both sides,
// interop with peers that never negotiated the extension, and the
// determinism guarantee for identically-seeded runs.
package client

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/trace"
)

// startTracingNodes starts numAS nodes, each with its own tracer (to
// join incoming contexts) and hot-key trackers.
func startTracingNodes(t *testing.T, numAS int, slowOp time.Duration) ([]*server.Node, map[int]string) {
	t.Helper()
	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.NewWithOptions(nil, server.Options{
			Tracer:  trace.New(trace.Config{SlowOp: slowOp}),
			HotKeys: trace.NewHotKeys(8),
		})
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[as] = n
		addrs[as] = addr
		t.Cleanup(func() { n.Close() })
	}
	return nodes, addrs
}

func tracingClient(t *testing.T, numAS, k int, addrs map[int]string, cfg Config) *Cluster {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: numAS, NumPrefixes: numAS * 12, AnnouncedFraction: 0.52, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = time.Second
	}
	c, err := NewWithConfig(resolver, addrs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

// TestTraceEndToEnd drives a sampled lookup through real TCP and checks
// the two halves of the distributed trace: the client ring holds the op
// trace with its attempt span, and exactly the replica that served the
// request holds a joined server span under the SAME trace ID, parented
// (via the remote span ID) at the client's attempt span.
func TestTraceEndToEnd(t *testing.T) {
	nodes, addrs := startTracingNodes(t, 8, 0)
	tr := trace.New(trace.Config{Sample: 1, Seed: 7})
	c := tracingClient(t, 8, 1, addrs, Config{Tracer: tr})

	e := clusterEntry("traced-object", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(e.GUID); err != nil {
		t.Fatal(err)
	}

	views := tr.Traces()
	if len(views) != 2 {
		t.Fatalf("client traces = %d, want 2 (insert + lookup)", len(views))
	}
	lkp := views[1]
	tree := lkp.Tree(false)
	if !strings.Contains(tree, "- client.lookup") || !strings.Contains(tree, "- attempt") {
		t.Fatalf("client lookup tree missing op/attempt spans:\n%s", tree)
	}

	// Exactly the serving replicas hold joined spans; every joined span
	// shares the client's trace ID and names a remote parent.
	joined := 0
	for as, n := range nodes {
		for _, sv := range n.Tracer().Traces() {
			joined++
			if sv.Trace != lkp.Trace && sv.Trace != views[0].Trace {
				t.Errorf("AS %d joined trace %016x, not a client trace ID", as, uint64(sv.Trace))
			}
			if sv.Spans[0].Remote == 0 {
				t.Errorf("AS %d server root span has no remote parent", as)
			}
			st := sv.Tree(false)
			if !strings.Contains(st, "remote parent span") {
				t.Errorf("server tree does not note the remote parent:\n%s", st)
			}
			if !strings.Contains(st, "- server.") || !strings.Contains(st, "- store.") {
				t.Errorf("server tree missing server/store spans:\n%s", st)
			}
		}
	}
	if joined != 2 {
		t.Errorf("server-side joined traces = %d, want 2 (one per client op, K=1)", joined)
	}

	// The hot-key profile saw the lookup and the insert.
	lookupSeen, insertSeen := false, false
	for _, n := range nodes {
		for _, hk := range n.HotKeys().TopLookups(0) {
			if hk.GUID == e.GUID {
				lookupSeen = true
			}
		}
		for _, hk := range n.HotKeys().TopInserts(0) {
			if hk.GUID == e.GUID {
				insertSeen = true
			}
		}
	}
	if !lookupSeen || !insertSeen {
		t.Errorf("hot-key trackers: lookup seen=%t insert seen=%t, want both", lookupSeen, insertSeen)
	}
}

// TestTraceSlowOpEndToEnd sets a zero-distance slow threshold on both
// sides so every op is "slow": the client logs its op (even though
// sampling is off — sp is nil throughout), and the server logs the
// frame with a trace ID derived from the wire request ID, keeping slow
// frames correlatable without sampling.
func TestTraceSlowOpEndToEnd(t *testing.T) {
	nodes, addrs := startTracingNodes(t, 4, time.Nanosecond)
	tr := trace.New(trace.Config{Sample: 0, SlowOp: time.Nanosecond})
	c := tracingClient(t, 4, 1, addrs, Config{Tracer: tr})

	e := clusterEntry("slow-object", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(e.GUID); err != nil {
		t.Fatal(err)
	}

	slow := tr.SlowOps()
	if len(slow) < 2 {
		t.Fatalf("client slow ops = %d, want >= 2", len(slow))
	}
	ops := make(map[string]bool)
	for _, so := range slow {
		ops[so.Op] = true
		if so.Sampled {
			t.Errorf("slow op %q marked sampled with sampling off", so.Op)
		}
	}
	if !ops["insert"] || !ops["lookup"] {
		t.Errorf("client slow ops = %v, want insert and lookup", ops)
	}

	serverSlow := 0
	for as, n := range nodes {
		for _, so := range n.Tracer().SlowOps() {
			serverSlow++
			if !strings.HasPrefix(so.Op, "server.") {
				t.Errorf("AS %d slow op %q lacks server. prefix", as, so.Op)
			}
			if so.Trace == 0 {
				t.Errorf("AS %d slow op has zero trace ID; want one derived from the request ID", as)
			}
		}
	}
	if serverSlow == 0 {
		t.Error("no server recorded a slow op")
	}
}

// TestTraceV1Interop pins the compatibility floor: a tracing client
// forced onto the v1 wire protocol still works — trace contexts simply
// never reach the wire (v1 framing has no extension), while client-side
// spans keep recording.
func TestTraceV1Interop(t *testing.T) {
	_, addrs := startTracingNodes(t, 8, 0)
	tr := trace.New(trace.Config{Sample: 1})
	c := tracingClient(t, 8, 3, addrs, Config{ForceV1: true, Tracer: tr})

	e := clusterEntry("v1-traced", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(e.GUID)
	if err != nil || got.GUID != e.GUID {
		t.Fatalf("v1 lookup = %+v, %v", got, err)
	}
	if views := tr.Traces(); len(views) != 2 {
		t.Errorf("client traces over v1 = %d, want 2", len(views))
	}
}

// TestTraceNonTracingServerInterop is the v2-peer-without-the-extension
// interop test: a plain server.New node never grants FeatTrace, so the
// tracing client keeps its frames unprefixed and everything round-trips;
// the client still records its own spans.
func TestTraceNonTracingServerInterop(t *testing.T) {
	nodes, addrs := startNodes(t, 8)
	tr := trace.New(trace.Config{Sample: 1})
	c := tracingClient(t, 8, 3, addrs, Config{Tracer: tr})

	e := clusterEntry("plain-server-traced", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(e.GUID)
	if err != nil || got.GUID != e.GUID {
		t.Fatalf("lookup = %+v, %v", got, err)
	}
	if views := tr.Traces(); len(views) != 2 {
		t.Errorf("client traces = %d, want 2", len(views))
	}
	for as, n := range nodes {
		if n.Tracer() != nil {
			t.Errorf("AS %d: plain node unexpectedly has a tracer", as)
		}
	}
	// And the reverse asymmetry: a non-tracing client against tracing
	// servers never asks for the extension, so no server joins anything.
	c2 := tracingClient(t, 8, 3, addrs, Config{})
	if _, err := c2.Lookup(e.GUID); err != nil {
		t.Fatal(err)
	}
}

// TestTraceDeterministicAcrossRuns is the acceptance criterion: two
// identically-seeded tracers driving the identical sequential workload
// against the same cluster render byte-identical span trees (times
// excluded — offsets are wall-clock, structure is not).
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	_, addrs := startTracingNodes(t, 8, 0)

	run := func(seed uint64) string {
		tr := trace.New(trace.Config{Sample: 1, Seed: seed})
		c := tracingClient(t, 8, 2, addrs, Config{Tracer: tr})
		for i := 0; i < 5; i++ {
			e := clusterEntry(fmt.Sprintf("det-%d", i), 1)
			if _, err := c.Insert(e); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Lookup(e.GUID); err != nil {
				t.Fatal(err)
			}
		}
		var sb strings.Builder
		for _, v := range tr.Traces() {
			sb.WriteString(v.Tree(false))
		}
		c.Close()
		return sb.String()
	}

	a, b := run(42), run(42)
	if a != b {
		t.Errorf("identically-seeded runs rendered different span trees:\n--- run A\n%s--- run B\n%s", a, b)
	}
	if other := run(43); other == a {
		t.Error("differently-seeded runs rendered identical trace IDs")
	}
}
