// Package client's tests double as the integration suite for the
// networked stack: real TCP nodes (internal/server), real placements
// (internal/core over a generated DFZ), real wire frames.
package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
)

// testCluster spins up one TCP node per AS of a small generated world and
// returns a connected client. Nodes are shut down via t.Cleanup.
func testCluster(t *testing.T, numAS, k int) (*Cluster, []*server.Node) {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             numAS,
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.New(nil, nil)
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[as] = n
		addrs[as] = addr
		t.Cleanup(func() { n.Close() })
	}
	c, err := New(resolver, addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, nodes
}

func clusterEntry(name string, version uint64) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: 3, Addr: netaddr.AddrFromOctets(192, 0, 2, 1)}},
		Version: version,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("nil resolver should fail")
	}
}

func TestInsertLookupDeleteOverTCP(t *testing.T) {
	c, nodes := testCluster(t, 24, 5)
	e := clusterEntry("laptop", 1)

	acks, err := c.Insert(e)
	if err != nil {
		t.Fatal(err)
	}
	if acks != 5 {
		t.Errorf("acks = %d, want 5", acks)
	}
	// The replicas really hold it.
	holding := 0
	for _, n := range nodes {
		if _, ok := n.Store().Get(e.GUID); ok {
			holding++
		}
	}
	if holding == 0 || holding > 5 {
		t.Errorf("%d nodes hold the entry", holding)
	}

	got, err := c.Lookup(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GUID != e.GUID || got.NAs[0].AS != 3 {
		t.Errorf("lookup = %+v", got)
	}

	removed, err := c.Delete(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if removed != holding {
		t.Errorf("removed %d, want %d", removed, holding)
	}
	if _, err := c.Lookup(e.GUID); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-delete lookup err = %v", err)
	}
}

func TestLookupUnknownGUID(t *testing.T) {
	c, _ := testCluster(t, 12, 3)
	if _, err := c.Lookup(guid.New("ghost")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestLookupInto(t *testing.T) {
	c, _ := testCluster(t, 12, 3)
	e := clusterEntry("laptop", 7)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	var got store.Entry
	got.NAs = make([]store.NA, 0, store.MaxNAs)
	if err := c.LookupInto(e.GUID, &got); err != nil {
		t.Fatal(err)
	}
	if got.GUID != e.GUID || got.Version != 7 || got.NAs[0].AS != 3 {
		t.Fatalf("LookupInto = %+v", got)
	}
	if err := c.LookupInto(guid.New("ghost"), &got); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss err = %v, want ErrNotFound", err)
	}
}

// LookupInto with a reused entry buffer is the ROADMAP's "last alloc"
// kill: the full TCP round trip must not touch the heap.
func TestLookupIntoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; the alloc budget is asserted in non-race builds and by scripts/bench.sh alloc")
	}
	c, _ := testCluster(t, 4, 1)
	e := clusterEntry("hot", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	var got store.Entry
	got.NAs = make([]store.NA, 0, store.MaxNAs)
	// Warm the connection, pools and reply slots.
	for i := 0; i < 16; i++ {
		if err := c.LookupInto(e.GUID, &got); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.LookupInto(e.GUID, &got); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("LookupInto allocs/op = %v, want 0", allocs)
	}
}

func TestUpdateMovesMapping(t *testing.T) {
	c, _ := testCluster(t, 16, 3)
	if _, err := c.Insert(clusterEntry("phone", 1)); err != nil {
		t.Fatal(err)
	}
	e2 := clusterEntry("phone", 2)
	e2.NAs[0].AS = 9
	if _, err := c.Update(e2); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(e2.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.NAs[0].AS != 9 {
		t.Errorf("after update: %+v", got)
	}
	// Stale update is ignored by every node.
	stale := clusterEntry("phone", 1)
	if _, err := c.Update(stale); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Lookup(e2.GUID)
	if got.Version != 2 {
		t.Errorf("stale update rolled back to %d", got.Version)
	}
}

func TestReplicaFailureFallback(t *testing.T) {
	c, nodes := testCluster(t, 20, 5)
	e := clusterEntry("resilient", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	// Kill the first three replica nodes; lookups must still succeed via
	// the survivors (§III-D3).
	placements, err := cResolver(c).Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placements[:3] {
		nodes[p.AS].Close()
	}
	got, err := c.Lookup(e.GUID)
	if err != nil {
		t.Fatalf("lookup with 3 dead replicas: %v", err)
	}
	if got.GUID != e.GUID {
		t.Error("wrong entry")
	}
}

// cResolver exposes the resolver for test introspection.
func cResolver(c *Cluster) *core.Resolver { return c.resolver }

func TestInsertAllNodesDown(t *testing.T) {
	c, nodes := testCluster(t, 8, 2)
	for _, n := range nodes {
		n.Close()
	}
	if _, err := c.Insert(clusterEntry("doomed", 1)); err == nil {
		t.Error("insert with all nodes down should fail")
	}
}

func TestPing(t *testing.T) {
	c, nodes := testCluster(t, 4, 1)
	if err := c.Ping(0); err != nil {
		t.Fatal(err)
	}
	nodes[1].Close()
	if err := c.Ping(1); err == nil {
		t.Error("ping of dead node should fail")
	}
	if err := c.Ping(99); err == nil {
		t.Error("ping of unknown AS should fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _ := testCluster(t, 24, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("obj-%d-%d", w, i)
				e := clusterEntry(name, 1)
				if _, err := c.Insert(e); err != nil {
					errs <- err
					return
				}
				got, err := c.Lookup(e.GUID)
				if err != nil {
					errs <- err
					return
				}
				if got.GUID != e.GUID {
					errs <- fmt.Errorf("wrong entry for %s", name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPooledConnectionReuse(t *testing.T) {
	c, nodes := testCluster(t, 2, 1)
	e := clusterEntry("pooled", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	// Repeated lookups reuse the pooled connection.
	for i := 0; i < 10; i++ {
		if _, err := c.Lookup(e.GUID); err != nil {
			t.Fatal(err)
		}
	}
	st := nodes[0].Stats()
	st2 := nodes[1].Stats()
	if st.Lookups+st2.Lookups != 10 {
		t.Errorf("lookups served = %d, want 10", st.Lookups+st2.Lookups)
	}
}

func TestServerStats(t *testing.T) {
	c, nodes := testCluster(t, 2, 2)
	e := clusterEntry("counted", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(e.GUID); err != nil {
		t.Fatal(err)
	}
	var total server.Stats
	for _, n := range nodes {
		s := n.Stats()
		total.Inserts += s.Inserts
		total.Lookups += s.Lookups
		total.Hits += s.Hits
	}
	if total.Inserts != 2 {
		t.Errorf("inserts = %d, want K=2", total.Inserts)
	}
	if total.Hits < 1 {
		t.Errorf("hits = %d", total.Hits)
	}
}

func TestLookupFastest(t *testing.T) {
	c, nodes := testCluster(t, 20, 5)
	e := clusterEntry("parallel", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, err := c.LookupFastest(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GUID != e.GUID {
		t.Error("wrong entry")
	}
	// Still works with most replicas dead.
	placements, err := cResolver(c).Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placements[:4] {
		nodes[p.AS].Close()
	}
	if _, err := c.LookupFastest(e.GUID); err != nil {
		t.Fatalf("parallel lookup with 4 dead replicas: %v", err)
	}
	// Unknown GUID reports ErrNotFound.
	if _, err := c.LookupFastest(guid.New("nobody")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond,
		MaxBackoff: 80 * time.Millisecond, JitterSeed: 99}.withDefaults()
	if p.Backoff(3, 1) != 0 {
		t.Error("first attempt must not pause")
	}
	for attempt := 2; attempt <= 8; attempt++ {
		a := p.Backoff(3, attempt)
		b := p.Backoff(3, attempt)
		if a != b {
			t.Fatalf("attempt %d: jitter not deterministic (%v vs %v)", attempt, a, b)
		}
		grown := p.BaseBackoff << (attempt - 2)
		if grown <= 0 || grown > p.MaxBackoff {
			grown = p.MaxBackoff
		}
		if a < grown/2 || a > grown {
			t.Errorf("attempt %d: backoff %v outside [%v, %v]", attempt, a, grown/2, grown)
		}
	}
	// Different seeds decorrelate.
	q := p
	q.JitterSeed = 100
	same := 0
	for attempt := 2; attempt <= 10; attempt++ {
		if p.Backoff(1, attempt) == q.Backoff(1, attempt) {
			same++
		}
	}
	if same > 4 {
		t.Errorf("seeds 99 and 100 agreed on %d/9 backoffs", same)
	}
}

func TestStaleRedialIsObservableAndRecovers(t *testing.T) {
	c, nodes := testCluster(t, 2, 1)
	e := clusterEntry("stale", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	// Find the replica node and its address, then bounce it: the pooled
	// connection dies but a fresh node accepts on the same address.
	placements, err := cResolver(c).Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	as := placements[0].AS
	old := nodes[as]
	st := old.Store()
	c.mu.RLock()
	addr := c.addrs[as]
	c.mu.RUnlock()
	if err := old.Close(); err != nil {
		t.Fatal(err)
	}
	fresh := server.New(st, nil)
	if _, err := fresh.Start(addr); err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { fresh.Close() })

	got, err := c.Lookup(e.GUID)
	if err != nil {
		t.Fatalf("lookup across node bounce: %v", err)
	}
	if got.GUID != e.GUID {
		t.Error("wrong entry")
	}
	if s := c.Stats(); s.Redials != 1 {
		t.Errorf("redials = %d, want 1 (stale pooled conn replaced, observably)", s.Redials)
	}
}

func TestRetryPolicyCountsRetries(t *testing.T) {
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: 4, NumPrefixes: 48, AnnouncedFraction: 0.52, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	// No node listening anywhere: every attempt is refused instantly.
	addrs := map[int]string{}
	for as := 0; as < 4; as++ {
		addrs[as] = "127.0.0.1:1" // reserved port, connection refused
	}
	c, err := NewWithConfig(resolver, addrs, Config{
		Timeout:    200 * time.Millisecond,
		OpDeadline: 2 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.Lookup(guid.New("nobody-home")); err == nil {
		t.Fatal("lookup against dead cluster should fail")
	}
	if s := c.Stats(); s.Retries != 2 {
		t.Errorf("retries = %d, want MaxAttempts-1 = 2", s.Retries)
	}
}

func TestDrainingNodeRejectsAndClientFailsOver(t *testing.T) {
	c, nodes := testCluster(t, 20, 3)
	e := clusterEntry("drained", 1)
	placements, err := cResolver(c).Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the first replica: inserts there are refused with MsgError,
	// the other two replicas still ack.
	nodes[placements[0].AS].Drain()
	acks, err := c.Insert(e)
	if err != nil {
		t.Fatal(err)
	}
	// Replicas can collide on an AS; the drained AS may host several.
	if acks == 0 || acks >= 3 {
		t.Errorf("acks = %d, want in [1, 2]", acks)
	}
	if s := c.Stats(); s.Rejects == 0 {
		t.Error("drain rejection not counted")
	}
	// Reads are unaffected; the entry resolves via the live replicas.
	if _, err := c.Lookup(e.GUID); err != nil {
		t.Fatalf("lookup with drained replica: %v", err)
	}
	// After resuming, writes reach the first replica again.
	nodes[placements[0].AS].Resume()
	if _, err := c.Update(clusterEntry("drained", 2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := nodes[placements[0].AS].Store().Get(e.GUID); !ok {
		t.Error("resumed node missed the update")
	}
}

func TestOperationDeadline(t *testing.T) {
	c, _ := testCluster(t, 8, 3)
	// An already-expired budget: the first call aborts before any
	// network attempt.
	c.cfg.OpDeadline = -time.Second
	_, err := c.Lookup(guid.New("no-time"))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if s := c.Stats(); s.Deadlines == 0 {
		t.Error("deadline abort not counted")
	}
}
