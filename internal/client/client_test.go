// Package client's tests double as the integration suite for the
// networked stack: real TCP nodes (internal/server), real placements
// (internal/core over a generated DFZ), real wire frames.
package client

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
)

// testCluster spins up one TCP node per AS of a small generated world and
// returns a connected client. Nodes are shut down via t.Cleanup.
func testCluster(t *testing.T, numAS, k int) (*Cluster, []*server.Node) {
	t.Helper()
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             numAS,
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.New(nil, nil)
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[as] = n
		addrs[as] = addr
		t.Cleanup(func() { n.Close() })
	}
	c, err := New(resolver, addrs, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c, nodes
}

func clusterEntry(name string, version uint64) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: 3, Addr: netaddr.AddrFromOctets(192, 0, 2, 1)}},
		Version: version,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("nil resolver should fail")
	}
}

func TestInsertLookupDeleteOverTCP(t *testing.T) {
	c, nodes := testCluster(t, 24, 5)
	e := clusterEntry("laptop", 1)

	acks, err := c.Insert(e)
	if err != nil {
		t.Fatal(err)
	}
	if acks != 5 {
		t.Errorf("acks = %d, want 5", acks)
	}
	// The replicas really hold it.
	holding := 0
	for _, n := range nodes {
		if _, ok := n.Store().Get(e.GUID); ok {
			holding++
		}
	}
	if holding == 0 || holding > 5 {
		t.Errorf("%d nodes hold the entry", holding)
	}

	got, err := c.Lookup(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GUID != e.GUID || got.NAs[0].AS != 3 {
		t.Errorf("lookup = %+v", got)
	}

	removed, err := c.Delete(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if removed != holding {
		t.Errorf("removed %d, want %d", removed, holding)
	}
	if _, err := c.Lookup(e.GUID); !errors.Is(err, ErrNotFound) {
		t.Errorf("post-delete lookup err = %v", err)
	}
}

func TestLookupUnknownGUID(t *testing.T) {
	c, _ := testCluster(t, 12, 3)
	if _, err := c.Lookup(guid.New("ghost")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestUpdateMovesMapping(t *testing.T) {
	c, _ := testCluster(t, 16, 3)
	if _, err := c.Insert(clusterEntry("phone", 1)); err != nil {
		t.Fatal(err)
	}
	e2 := clusterEntry("phone", 2)
	e2.NAs[0].AS = 9
	if _, err := c.Update(e2); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(e2.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 || got.NAs[0].AS != 9 {
		t.Errorf("after update: %+v", got)
	}
	// Stale update is ignored by every node.
	stale := clusterEntry("phone", 1)
	if _, err := c.Update(stale); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Lookup(e2.GUID)
	if got.Version != 2 {
		t.Errorf("stale update rolled back to %d", got.Version)
	}
}

func TestReplicaFailureFallback(t *testing.T) {
	c, nodes := testCluster(t, 20, 5)
	e := clusterEntry("resilient", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	// Kill the first three replica nodes; lookups must still succeed via
	// the survivors (§III-D3).
	placements, err := cResolver(c).Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placements[:3] {
		nodes[p.AS].Close()
	}
	got, err := c.Lookup(e.GUID)
	if err != nil {
		t.Fatalf("lookup with 3 dead replicas: %v", err)
	}
	if got.GUID != e.GUID {
		t.Error("wrong entry")
	}
}

// cResolver exposes the resolver for test introspection.
func cResolver(c *Cluster) *core.Resolver { return c.resolver }

func TestInsertAllNodesDown(t *testing.T) {
	c, nodes := testCluster(t, 8, 2)
	for _, n := range nodes {
		n.Close()
	}
	if _, err := c.Insert(clusterEntry("doomed", 1)); err == nil {
		t.Error("insert with all nodes down should fail")
	}
}

func TestPing(t *testing.T) {
	c, nodes := testCluster(t, 4, 1)
	if err := c.Ping(0); err != nil {
		t.Fatal(err)
	}
	nodes[1].Close()
	if err := c.Ping(1); err == nil {
		t.Error("ping of dead node should fail")
	}
	if err := c.Ping(99); err == nil {
		t.Error("ping of unknown AS should fail")
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _ := testCluster(t, 24, 3)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := fmt.Sprintf("obj-%d-%d", w, i)
				e := clusterEntry(name, 1)
				if _, err := c.Insert(e); err != nil {
					errs <- err
					return
				}
				got, err := c.Lookup(e.GUID)
				if err != nil {
					errs <- err
					return
				}
				if got.GUID != e.GUID {
					errs <- fmt.Errorf("wrong entry for %s", name)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPooledConnectionReuse(t *testing.T) {
	c, nodes := testCluster(t, 2, 1)
	e := clusterEntry("pooled", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	// Repeated lookups reuse the pooled connection.
	for i := 0; i < 10; i++ {
		if _, err := c.Lookup(e.GUID); err != nil {
			t.Fatal(err)
		}
	}
	st := nodes[0].Stats()
	st2 := nodes[1].Stats()
	if st.Lookups+st2.Lookups != 10 {
		t.Errorf("lookups served = %d, want 10", st.Lookups+st2.Lookups)
	}
}

func TestServerStats(t *testing.T) {
	c, nodes := testCluster(t, 2, 2)
	e := clusterEntry("counted", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(e.GUID); err != nil {
		t.Fatal(err)
	}
	var total server.Stats
	for _, n := range nodes {
		s := n.Stats()
		total.Inserts += s.Inserts
		total.Lookups += s.Lookups
		total.Hits += s.Hits
	}
	if total.Inserts != 2 {
		t.Errorf("inserts = %d, want K=2", total.Inserts)
	}
	if total.Hits < 1 {
		t.Errorf("hits = %d", total.Hits)
	}
}

func TestLookupFastest(t *testing.T) {
	c, nodes := testCluster(t, 20, 5)
	e := clusterEntry("parallel", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, err := c.LookupFastest(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.GUID != e.GUID {
		t.Error("wrong entry")
	}
	// Still works with most replicas dead.
	placements, err := cResolver(c).Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range placements[:4] {
		nodes[p.AS].Close()
	}
	if _, err := c.LookupFastest(e.GUID); err != nil {
		t.Fatalf("parallel lookup with 4 dead replicas: %v", err)
	}
	// Unknown GUID reports ErrNotFound.
	if _, err := c.LookupFastest(guid.New("nobody")); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}
