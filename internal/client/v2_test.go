// Tests for the v2 multiplexed transport, the batch cluster APIs and
// the PR's client bugfixes (redial double-backoff, insert error
// surfacing, stale reads after partial updates).
package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"
	"dmap/internal/trace"
	"dmap/internal/wire"
)

// TestStaleRedialSkipsBackoffAndRetryCount is the regression test for
// the double-backoff bug: a stale-conn redial on attempt ≥ 2 used to
// re-enter the backoff branch, sleeping the same backoff twice and
// double-counting retries for one logical retry. The transport seam
// scripts the sequence that is impractical to stage over a real socket:
// attempt 1 fails, the retry hits a stale conn, the redial succeeds.
func TestStaleRedialSkipsBackoffAndRetryCount(t *testing.T) {
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: 4, NumPrefixes: 48, AnnouncedFraction: 0.52, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithConfig(resolver, map[int]string{0: "unused:0"}, Config{
		Timeout:    time.Second,
		OpDeadline: 5 * time.Second,
		Retry:      RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	var calls int32
	c.transport = func(addr string, mt wire.MsgType, tc trace.Context, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
		switch atomic.AddInt32(&calls, 1) {
		case 1:
			return 0, nil, errors.New("connection reset")
		case 2:
			return 0, nil, errStaleConn
		default:
			return wire.MsgPong, nil, nil
		}
	}
	rt, _, err := c.call(nil, 0, wire.MsgPing, nil, time.Now().Add(5*time.Second))
	if err != nil || rt != wire.MsgPong {
		t.Fatalf("call = %v, %v; want pong", rt, err)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Errorf("transport invoked %d times, want 3", got)
	}
	s := c.Stats()
	if s.Retries != 1 {
		t.Errorf("retries = %d, want 1 (one logical retry; the redial must not double-count)", s.Retries)
	}
	if s.Redials != 1 {
		t.Errorf("redials = %d, want 1", s.Redials)
	}
}

// TestInsertSurfacesRejection: when every replica answers with a drain
// rejection, the error must say so — "no replica reachable" is the
// wrong diagnosis when every replica was reachable and said no.
func TestInsertSurfacesRejection(t *testing.T) {
	c, nodes := testCluster(t, 8, 2)
	for _, n := range nodes {
		n.Drain()
	}
	_, err := c.Insert(clusterEntry("refused-everywhere", 1))
	if err == nil {
		t.Fatal("insert into a fully draining cluster should fail")
	}
	if !errors.Is(err, ErrRejected) {
		t.Errorf("err = %v, want errors.Is(_, ErrRejected)", err)
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Errorf("err = %q, want the rejection surfaced, not a reachability claim", err)
	}
	if strings.Contains(err.Error(), "no replica reachable") {
		t.Errorf("err = %q misreports reachable-but-rejecting replicas as unreachable", err)
	}
}

// TestLookupFastestPrefersFreshest is the stale-read regression test:
// after a partial Update (only a subset of replicas has the new
// version), LookupFastest must return the highest Version among the
// answers it collects, not whichever replica answered first.
func TestLookupFastestPrefersFreshest(t *testing.T) {
	c, nodes := testCluster(t, 20, 3)
	c.cfg.FreshnessWait = time.Second // ample grace: every replica answers in time

	e1 := clusterEntry("stale-read", 1)
	if _, err := c.Insert(e1); err != nil {
		t.Fatal(err)
	}
	placements, err := cResolver(c).Place(e1.GUID)
	if err != nil {
		t.Fatal(err)
	}
	distinct := make([]int, 0, len(placements))
	seen := make(map[int]bool)
	for _, p := range placements {
		if !seen[p.AS] {
			seen[p.AS] = true
			distinct = append(distinct, p.AS)
		}
	}
	if len(distinct) < 2 {
		t.Skip("replicas collided on one AS; no partial update possible")
	}
	// Partial update: the new version lands everywhere EXCEPT the first
	// placement — the replica a sequential walk would consult first and
	// a fastest-first race can easily hear from first.
	e2 := clusterEntry("stale-read", 2)
	for _, as := range distinct[1:] {
		if _, err := nodes[as].Store().Put(e2); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.LookupFastest(e1.GUID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 2 {
		t.Errorf("LookupFastest returned Version %d, want 2 (stale read from the non-updated replica)", got.Version)
	}
}

// TestLookupFastestCountsFailovers: replicas that fail while another
// answers are read-path failovers and must be counted (the counter
// never moved on this path before).
func TestLookupFastestCountsFailovers(t *testing.T) {
	c, nodes := testCluster(t, 20, 3)
	c.cfg.Retry = RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}.withDefaults()

	// Pick a GUID whose three replicas land on three distinct ASs, so
	// "two dead replicas" is exactly two dead nodes.
	var (
		e          store.Entry
		placements []core.Placement
	)
	for i := 0; i < 200; i++ {
		cand := clusterEntry(fmt.Sprintf("failover-read-%d", i), 1)
		p, err := cResolver(c).Place(cand.GUID)
		if err != nil {
			t.Fatal(err)
		}
		if p[0].AS != p[1].AS && p[1].AS != p[2].AS && p[0].AS != p[2].AS {
			e, placements = cand, p
			break
		}
	}
	if placements == nil {
		t.Skip("no GUID with three distinct replica ASs in 200 tries")
	}
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	// Kill the first two replicas; the third still answers.
	for _, p := range placements[:2] {
		if err := nodes[p.AS].Close(); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.LookupFastest(e.GUID)
	if err != nil {
		t.Fatalf("lookup with one live replica: %v", err)
	}
	if got.GUID != e.GUID {
		t.Error("wrong entry")
	}
	if s := c.Stats(); s.Failovers != 2 {
		t.Errorf("failovers = %d, want 2 (two dead replicas looked past)", s.Failovers)
	}
}

// TestMuxHammer drives one address from many goroutines through the
// shared multiplexed connection (run under -race by scripts/check.sh).
// Exactly one dial must serve all of it — pool drops and per-caller
// dials are impossible by construction on the v2 path.
func TestMuxHammer(t *testing.T) {
	c, _ := testCluster(t, 1, 1) // single-AS world: every GUID lands on one node
	const (
		goroutines = 32
		perG       = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				e := clusterEntry(fmt.Sprintf("hammer-%d-%d", g, i), uint64(i+1))
				if _, err := c.Insert(e); err != nil {
					errs <- fmt.Errorf("insert %d/%d: %w", g, i, err)
					return
				}
				got, err := c.Lookup(e.GUID)
				if err != nil {
					errs <- fmt.Errorf("lookup %d/%d: %w", g, i, err)
					return
				}
				if got.GUID != e.GUID {
					errs <- fmt.Errorf("lookup %d/%d returned wrong entry", g, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if s := c.Stats(); s.Dials != 1 {
		t.Errorf("dials = %d, want 1 (one shared conn for %d goroutines)", s.Dials, goroutines)
	}
}

// TestForceV1Interop pins the client to the sequential v1 protocol
// against a v2 server: the upgrade must be opt-in on the wire, so old
// clients keep working unchanged.
func TestForceV1Interop(t *testing.T) {
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS: 8, NumPrefixes: 96, AnnouncedFraction: 0.52, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(3, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	nodes, addrs := startNodes(t, 8)
	c, err := NewWithConfig(resolver, addrs, Config{Timeout: time.Second, ForceV1: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)

	e := clusterEntry("v1-peer", 1)
	if _, err := c.Insert(e); err != nil {
		t.Fatal(err)
	}
	got, err := c.Lookup(e.GUID)
	if err != nil || got.GUID != e.GUID {
		t.Fatalf("v1 lookup = %+v, %v", got, err)
	}
	// The batch API still works for a v1-pinned client: batch frames are
	// legal in sequential framing too (one at a time).
	entries := []store.Entry{clusterEntry("v1-batch-a", 1), clusterEntry("v1-batch-b", 1)}
	acks, err := c.InsertBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range acks {
		if n == 0 {
			t.Errorf("batch entry %d got no acks over v1", i)
		}
	}
	held := 0
	for _, n := range nodes {
		if _, ok := n.Store().Get(entries[0].GUID); ok {
			held++
		}
	}
	if held == 0 {
		t.Error("no node holds the batch-inserted entry")
	}
}

func startNodes(t *testing.T, numAS int) ([]*server.Node, map[int]string) {
	t.Helper()
	nodes := make([]*server.Node, numAS)
	addrs := make(map[int]string, numAS)
	for as := 0; as < numAS; as++ {
		n := server.New(nil, nil)
		addr, err := n.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[as] = n
		addrs[as] = addr
		t.Cleanup(func() { n.Close() })
	}
	return nodes, addrs
}

// TestInsertBatchLookupBatch exercises the batched fan-out end to end:
// per-replica grouping, per-entry ack counts, round-based lookup with
// misses rolling to later replicas.
func TestInsertBatchLookupBatch(t *testing.T) {
	c, nodes := testCluster(t, 24, 5)
	const n = 40
	entries := make([]store.Entry, n)
	for i := range entries {
		entries[i] = clusterEntry(fmt.Sprintf("batch-%d", i), uint64(i+1))
	}
	acks, err := c.InsertBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	if len(acks) != n {
		t.Fatalf("acks for %d entries, want %d", len(acks), n)
	}
	for i, a := range acks {
		if a < 1 || a > 5 {
			t.Errorf("entry %d acked by %d replicas, want 1..5", i, a)
		}
	}
	// Every entry is really on some node.
	for i := range entries {
		held := 0
		for _, nd := range nodes {
			if got, ok := nd.Store().Get(entries[i].GUID); ok && got.Version == entries[i].Version {
				held++
			}
		}
		if held == 0 {
			t.Errorf("entry %d not held by any node", i)
		}
	}

	gs := make([]guid.GUID, 0, n+5)
	for i := range entries {
		gs = append(gs, entries[i].GUID)
	}
	for i := 0; i < 5; i++ {
		gs = append(gs, guid.New(fmt.Sprintf("nobody-%d", i)))
	}
	got, found, err := c.LookupBatch(gs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if !found[i] {
			t.Errorf("GUID %d not found", i)
			continue
		}
		if got[i].GUID != gs[i] || got[i].Version != entries[i].Version {
			t.Errorf("GUID %d resolved to %+v", i, got[i])
		}
	}
	for i := n; i < n+5; i++ {
		if found[i] {
			t.Errorf("unknown GUID %d reported found", i)
		}
	}
}

// TestBatchChunking pushes one replica past wire.MaxBatch so the chunker
// must split the fan-out into multiple frames.
func TestBatchChunking(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c, nodes := testCluster(t, 1, 1)
	n := wire.MaxBatch + 88
	entries := make([]store.Entry, n)
	for i := range entries {
		entries[i] = clusterEntry(fmt.Sprintf("chunk-%d", i), 1)
	}
	acks, err := c.InsertBatch(entries)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range acks {
		if a != 1 {
			t.Fatalf("entry %d acked %d times, want 1", i, a)
		}
	}
	if got := nodes[0].Stats().Inserts; got != int64(n) {
		t.Errorf("node served %d inserts, want %d", got, n)
	}
	gs := make([]guid.GUID, n)
	for i := range gs {
		gs[i] = entries[i].GUID
	}
	_, found, err := c.LookupBatch(gs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range found {
		if !found[i] {
			t.Fatalf("GUID %d missing after chunked insert", i)
		}
	}
}
