// Multiplexed (v2) transport: one shared connection per node address,
// pipelined identified frames, a demux reader goroutine per connection.
// Concurrent callers to the same AS no longer race for the single pooled
// connection or pay a fresh TCP dial each — they enqueue on the shared
// conn and pool drops are impossible by construction.
//
// The request path is allocation-free in steady state (DESIGN.md §9):
// reply slots in the in-flight table, response payload buffers and the
// per-request timer are all recycled through pools, frames are encoded
// straight into the connection's coalescing writer (wire.Writer), and
// concurrent senders' frames ride out in shared syscalls.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmap/internal/core"
	"dmap/internal/trace"
	"dmap/internal/wire"
)

// errUseV1 routes an address to the sequential v1 transport: its server
// answered the hello with MsgError (a true v1 peer) or negotiated v1.
var errUseV1 = errors.New("client: peer speaks v1")

// errConnDead reports that the shared connection failed while the
// request was in flight or queued. The caller maps it to errStaleConn
// when the connection was not freshly dialed for this request.
var errConnDead = errors.New("client: multiplexed connection failed")

// timeoutError is the net.Error returned when a request's reply timer
// expires while the shared connection stays healthy.
type timeoutError struct{}

func (timeoutError) Error() string   { return "client: request timed out on multiplexed connection" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// replyBufs recycles response payload buffers between the demux readers
// (producers) and the operations that decode the responses (consumers).
// Ops hand bodies back through putBody once decoding is done.
var replyBufs = wire.NewBufPool(256)

// payloadBufs recycles request payload buffers for the op layer.
var payloadBufs = wire.NewBufPool(256)

// putBody releases a response body obtained from a transport round
// trip. Nil and foreign buffers (v1 reads, test transports) are
// accepted, so ops can release unconditionally. The caller must be
// completely done with the body — decoding copies, so nothing decoded
// from it is at risk.
func putBody(b []byte) { replyBufs.Put(b) }

// placementBufs recycles the per-op []core.Placement scratch the
// sequential request paths (Lookup, Delete) resolve into. A channel
// free list for the same reason as wire.BufPool: slice headers move
// without boxing, so Get and Put never allocate.
var placementBufs = make(chan []core.Placement, 64)

// getPlacements returns a zero-length placement scratch slice.
func getPlacements() []core.Placement {
	select {
	case p := <-placementBufs:
		return p[:0]
	default:
		return make([]core.Placement, 0, 8)
	}
}

// putPlacements releases a placement scratch. The caller must be done
// iterating: the backing array is handed to the next getPlacements.
func putPlacements(p []core.Placement) {
	if cap(p) == 0 {
		return
	}
	select {
	case placementBufs <- p:
	default: // free list full; let the GC have it
	}
}

// timerPool recycles the per-request reply timers. A timer is returned
// only after Stop with its channel drained, so Reset on the next Get is
// race-free.
var timerPool = sync.Pool{
	New: func() any {
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		return t
	},
}

func getTimer(d time.Duration) *time.Timer {
	t := timerPool.Get().(*time.Timer)
	t.Reset(d)
	return t
}

func putTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
	timerPool.Put(t)
}

// muxReply is one demuxed response. A non-nil body is pool-owned and
// must be released with putBody by whoever consumes the reply.
type muxReply struct {
	t    wire.MsgType
	body []byte
	err  error
}

// muxSlot is one reusable in-flight table slot: the rendezvous between
// a waiting requester and the demux reader. Slots are pooled — the
// buffered channel is created once per slot and reused for the slot's
// whole lifetime, replacing the per-request channel allocation the
// in-flight table used to pay.
type muxSlot struct {
	ch chan muxReply
}

var slotPool = sync.Pool{
	New: func() any { return &muxSlot{ch: make(chan muxReply, 1)} },
}

// muxConn is one shared v2 connection: writes are coalesced through w,
// responses are matched to callers through the in-flight table by the
// reader goroutine.
type muxConn struct {
	conn net.Conn
	// w coalesces concurrent frame writes into shared syscalls; its
	// onFail hook kills the connection on the first write error.
	w *wire.Writer
	// feat holds the hello-negotiated feature flags; FeatTrace set means
	// the server accepts trace-prefixed frames on this connection.
	feat byte

	mu       sync.Mutex
	nextID   uint64
	inflight map[uint64]*muxSlot
	closed   bool
	err      error // first connection-level failure
}

func newMuxConn(conn net.Conn, feat byte) *muxConn {
	m := &muxConn{conn: conn, feat: feat, inflight: make(map[uint64]*muxSlot)}
	m.w = wire.NewWriter(conn, m.fail)
	return m
}

// register allocates a request ID and claims a pooled reply slot.
func (m *muxConn) register() (uint64, *muxSlot, error) {
	m.mu.Lock()
	if m.closed {
		err := m.err
		m.mu.Unlock()
		return 0, nil, fmt.Errorf("%w: %v", errConnDead, err)
	}
	m.nextID++
	id := m.nextID
	s := slotPool.Get().(*muxSlot)
	m.inflight[id] = s
	m.mu.Unlock()
	return id, s, nil
}

// deregister abandons a request. It reports whether the slot was still
// in the table: false means the reader (or fail) has already claimed it
// and a reply send is guaranteed — the caller must drain the slot's
// channel before recycling it.
func (m *muxConn) deregister(id uint64) bool {
	m.mu.Lock()
	_, ok := m.inflight[id]
	delete(m.inflight, id)
	m.mu.Unlock()
	return ok
}

// dead reports whether the connection has failed.
func (m *muxConn) dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// fail marks the connection dead and fails every in-flight request; the
// first error wins. Safe to call from the reader, from writers and from
// the coalescing writer's onFail hook.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	pending := m.inflight
	m.inflight = nil
	m.mu.Unlock()
	m.conn.Close()
	for _, s := range pending {
		s.ch <- muxReply{err: fmt.Errorf("%w: %v", errConnDead, err)}
	}
}

// readLoop demuxes responses until the connection fails. Each payload
// lands in a pooled buffer that travels with the reply; the consuming
// op releases it after decoding.
func (m *muxConn) readLoop() {
	for {
		buf := replyBufs.Get(0)
		t, id, body, err := wire.ReadFrameIDInto(m.conn, buf[:cap(buf)])
		if err != nil {
			replyBufs.Put(buf)
			m.fail(err)
			return
		}
		if cap(body) != cap(buf) {
			// The payload outgrew the pooled buffer; recycle the original
			// (the grown one travels with the reply instead).
			replyBufs.Put(buf)
		}
		m.mu.Lock()
		s := m.inflight[id]
		delete(m.inflight, id)
		m.mu.Unlock()
		if s == nil {
			// A reply nobody waits for belonged to a timed-out request.
			replyBufs.Put(body)
			continue
		}
		s.ch <- muxReply{t: t, body: body}
	}
}

// do runs one pipelined request/response with a per-request reply timer.
// A sampled trace context is prefixed onto the frame when the server
// negotiated FeatTrace; otherwise the context is dropped silently (the
// client's own span still records the attempt). The returned body, when
// non-nil, is pool-owned: the caller must release it with putBody after
// decoding.
func (m *muxConn) do(t wire.MsgType, tc trace.Context, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
	id, s, err := m.register()
	if err != nil {
		return 0, nil, err
	}
	m.w.SetTimeout(timeout)
	var werr error
	if tc.Sampled && m.feat&wire.FeatTrace != 0 {
		werr = m.w.WriteFrameIDTrace(t, id, tc, payload)
	} else {
		werr = m.w.WriteFrameID(t, id, payload)
	}
	if werr != nil {
		// A failed or partial write desynchronizes the stream for every
		// user of the connection, not just this request. The writer's
		// onFail hook has already killed the connection; claim the slot
		// back (draining the error reply if fail got there first).
		m.fail(werr)
		if !m.deregister(id) {
			r := <-s.ch
			putBody(r.body)
		}
		slotPool.Put(s)
		return 0, nil, fmt.Errorf("%w: %v", errConnDead, werr)
	}
	timer := getTimer(timeout)
	select {
	case r := <-s.ch:
		putTimer(timer)
		slotPool.Put(s)
		return r.t, r.body, r.err
	case <-timer.C:
		putTimer(timer)
		if m.deregister(id) {
			// Removed from the table: no reply will ever be sent, the
			// slot is clean and reusable.
			slotPool.Put(s)
			return 0, nil, timeoutError{}
		}
		// The reader (or fail) claimed the slot concurrently — the reply
		// raced the timer and its send is guaranteed. Take it: a real
		// answer beats reporting a timeout that lost the race.
		r := <-s.ch
		slotPool.Put(s)
		return r.t, r.body, r.err
	}
}

// muxEntry is the per-address slot: at most one live muxConn, with the
// entry mutex single-flighting the dial+handshake so a burst of callers
// against a cold address performs one handshake, not N.
type muxEntry struct {
	mu   sync.Mutex
	conn *muxConn
}

// muxTable routes addresses to shared connections, remembering which
// addresses negotiated down to v1.
type muxTable struct {
	mu      sync.Mutex
	entries map[string]*muxEntry
	v1      map[string]bool
}

func (tb *muxTable) entry(addr string) (*muxEntry, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.v1[addr] {
		return nil, false
	}
	if tb.entries == nil {
		tb.entries = make(map[string]*muxEntry)
	}
	e, ok := tb.entries[addr]
	if !ok {
		e = &muxEntry{}
		tb.entries[addr] = e
	}
	return e, true
}

// markV1 pins addr to the v1 transport for the lifetime of the client.
func (tb *muxTable) markV1(addr string) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.v1 == nil {
		tb.v1 = make(map[string]bool)
	}
	tb.v1[addr] = true
	delete(tb.entries, addr)
}

func (tb *muxTable) closeAll() {
	tb.mu.Lock()
	entries := tb.entries
	tb.entries = nil
	tb.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.conn != nil {
			e.conn.fail(net.ErrClosed)
			e.conn = nil
		}
		e.mu.Unlock()
	}
}

// liveConns counts healthy shared connections (for the pool gauge).
func (tb *muxTable) liveConns() int {
	tb.mu.Lock()
	entries := make([]*muxEntry, 0, len(tb.entries))
	for _, e := range tb.entries {
		entries = append(entries, e)
	}
	tb.mu.Unlock()
	n := 0
	for _, e := range entries {
		e.mu.Lock()
		if e.conn != nil && !e.conn.dead() {
			n++
		}
		e.mu.Unlock()
	}
	return n
}

// muxGet returns the live shared connection for addr, dialing and
// handshaking one if needed. fresh reports a new dial. A previously
// live connection found dead is cleared and reported as errStaleConn so
// the retry loop replaces it observably — the same contract the v1 pool
// had. errUseV1 reports a peer that only speaks v1.
func (c *Cluster) muxGet(addr string, timeout time.Duration) (mc *muxConn, fresh bool, err error) {
	e, ok := c.mux.entry(addr)
	if !ok {
		return nil, false, errUseV1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn != nil {
		if !e.conn.dead() {
			return e.conn, false, nil
		}
		e.conn = nil
		return nil, false, fmt.Errorf("%w: shared connection died idle", errStaleConn)
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, true, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	// Only a tracing client asks for the trace extension; the server
	// grants the intersection.
	var wantFeat byte
	if c.tracer != nil {
		wantFeat = wire.FeatTrace
	}
	version, feat, err := helloExchange(conn, timeout, wantFeat)
	if err != nil {
		conn.Close()
		if errors.Is(err, errUseV1) {
			// True v1 peer: it answered MsgError and closed. Remember and
			// fall back; we never hello this address again.
			c.mux.markV1(addr)
			return nil, true, errUseV1
		}
		return nil, true, err
	}
	if version < wire.Version2 {
		c.mux.markV1(addr)
		conn.Close()
		return nil, true, errUseV1
	}
	mc = newMuxConn(conn, feat&wantFeat)
	e.conn = mc
	go mc.readLoop()
	return mc, true, nil
}

// helloExchange negotiates the protocol version (and feature flags) on
// a fresh connection using v1 framing, per DESIGN §7.
func helloExchange(conn net.Conn, timeout time.Duration, feat byte) (byte, byte, error) {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.AppendHelloFeat(nil, wire.Version2, feat)); err != nil {
		return 0, 0, fmt.Errorf("client: hello write: %w", err)
	}
	t, body, err := wire.ReadFrame(conn)
	if err != nil {
		return 0, 0, fmt.Errorf("client: hello read: %w", err)
	}
	switch t {
	case wire.MsgHelloAck:
		v, ackFeat, err := wire.DecodeHelloAck(body)
		if err != nil {
			return 0, 0, fmt.Errorf("client: %w", err)
		}
		return v, ackFeat, nil
	case wire.MsgError:
		// A v1 server rejects the unknown MsgHello frame — that IS the
		// negotiation result.
		return 0, 0, errUseV1
	default:
		return 0, 0, fmt.Errorf("client: unexpected hello reply %v", t)
	}
}
