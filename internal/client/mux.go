// Multiplexed (v2) transport: one shared connection per node address,
// pipelined identified frames, a demux reader goroutine per connection.
// Concurrent callers to the same AS no longer race for the single pooled
// connection or pay a fresh TCP dial each — they enqueue on the shared
// conn and pool drops are impossible by construction.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"dmap/internal/trace"
	"dmap/internal/wire"
)

// errUseV1 routes an address to the sequential v1 transport: its server
// answered the hello with MsgError (a true v1 peer) or negotiated v1.
var errUseV1 = errors.New("client: peer speaks v1")

// errConnDead reports that the shared connection failed while the
// request was in flight or queued. The caller maps it to errStaleConn
// when the connection was not freshly dialed for this request.
var errConnDead = errors.New("client: multiplexed connection failed")

// timeoutError is the net.Error returned when a request's reply timer
// expires while the shared connection stays healthy.
type timeoutError struct{}

func (timeoutError) Error() string   { return "client: request timed out on multiplexed connection" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// muxReply is one demuxed response.
type muxReply struct {
	t    wire.MsgType
	body []byte
	err  error
}

// muxConn is one shared v2 connection: writes are serialized under wmu,
// responses are matched to callers through the in-flight table by the
// reader goroutine.
type muxConn struct {
	conn net.Conn
	// feat holds the hello-negotiated feature flags; FeatTrace set means
	// the server accepts trace-prefixed frames on this connection.
	feat byte

	wmu sync.Mutex // serializes frame writes

	mu       sync.Mutex
	nextID   uint64
	inflight map[uint64]chan muxReply
	closed   bool
	err      error // first connection-level failure
}

// register allocates a request ID and its reply channel.
func (m *muxConn) register() (uint64, chan muxReply, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return 0, nil, fmt.Errorf("%w: %v", errConnDead, m.err)
	}
	m.nextID++
	id := m.nextID
	ch := make(chan muxReply, 1)
	m.inflight[id] = ch
	return id, ch, nil
}

// deregister abandons a request (timeout); the late reply, if any, is
// dropped by the reader.
func (m *muxConn) deregister(id uint64) {
	m.mu.Lock()
	delete(m.inflight, id)
	m.mu.Unlock()
}

// dead reports whether the connection has failed.
func (m *muxConn) dead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// fail marks the connection dead and fails every in-flight request; the
// first error wins. Safe to call from the reader and from writers.
func (m *muxConn) fail(err error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	pending := m.inflight
	m.inflight = nil
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range pending {
		ch <- muxReply{err: fmt.Errorf("%w: %v", errConnDead, err)}
	}
}

// readLoop demuxes responses until the connection fails.
func (m *muxConn) readLoop() {
	for {
		t, id, body, err := wire.ReadFrameID(m.conn)
		if err != nil {
			m.fail(err)
			return
		}
		m.mu.Lock()
		ch := m.inflight[id]
		delete(m.inflight, id)
		m.mu.Unlock()
		if ch != nil {
			ch <- muxReply{t: t, body: body}
		}
		// A reply nobody waits for belonged to a timed-out request.
	}
}

// do runs one pipelined request/response with a per-request reply timer.
// A sampled trace context is prefixed onto the frame when the server
// negotiated FeatTrace; otherwise the context is dropped silently (the
// client's own span still records the attempt).
func (m *muxConn) do(t wire.MsgType, tc trace.Context, payload []byte, timeout time.Duration) (wire.MsgType, []byte, error) {
	id, ch, err := m.register()
	if err != nil {
		return 0, nil, err
	}
	m.wmu.Lock()
	_ = m.conn.SetWriteDeadline(time.Now().Add(timeout))
	var werr error
	if tc.Sampled && m.feat&wire.FeatTrace != 0 {
		werr = wire.WriteFrameIDTrace(m.conn, t, id, tc, payload)
	} else {
		werr = wire.WriteFrameID(m.conn, t, id, payload)
	}
	m.wmu.Unlock()
	if werr != nil {
		// A failed or partial write desynchronizes the stream for every
		// user of the connection, not just this request.
		m.fail(werr)
		m.deregister(id)
		return 0, nil, fmt.Errorf("%w: %v", errConnDead, werr)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.t, r.body, r.err
	case <-timer.C:
		m.deregister(id)
		return 0, nil, timeoutError{}
	}
}

// muxEntry is the per-address slot: at most one live muxConn, with the
// entry mutex single-flighting the dial+handshake so a burst of callers
// against a cold address performs one handshake, not N.
type muxEntry struct {
	mu   sync.Mutex
	conn *muxConn
}

// muxTable routes addresses to shared connections, remembering which
// addresses negotiated down to v1.
type muxTable struct {
	mu      sync.Mutex
	entries map[string]*muxEntry
	v1      map[string]bool
}

func (tb *muxTable) entry(addr string) (*muxEntry, bool) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.v1[addr] {
		return nil, false
	}
	if tb.entries == nil {
		tb.entries = make(map[string]*muxEntry)
	}
	e, ok := tb.entries[addr]
	if !ok {
		e = &muxEntry{}
		tb.entries[addr] = e
	}
	return e, true
}

// markV1 pins addr to the v1 transport for the lifetime of the client.
func (tb *muxTable) markV1(addr string) {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	if tb.v1 == nil {
		tb.v1 = make(map[string]bool)
	}
	tb.v1[addr] = true
	delete(tb.entries, addr)
}

func (tb *muxTable) closeAll() {
	tb.mu.Lock()
	entries := tb.entries
	tb.entries = nil
	tb.mu.Unlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.conn != nil {
			e.conn.fail(net.ErrClosed)
			e.conn = nil
		}
		e.mu.Unlock()
	}
}

// liveConns counts healthy shared connections (for the pool gauge).
func (tb *muxTable) liveConns() int {
	tb.mu.Lock()
	entries := make([]*muxEntry, 0, len(tb.entries))
	for _, e := range tb.entries {
		entries = append(entries, e)
	}
	tb.mu.Unlock()
	n := 0
	for _, e := range entries {
		e.mu.Lock()
		if e.conn != nil && !e.conn.dead() {
			n++
		}
		e.mu.Unlock()
	}
	return n
}

// muxGet returns the live shared connection for addr, dialing and
// handshaking one if needed. fresh reports a new dial. A previously
// live connection found dead is cleared and reported as errStaleConn so
// the retry loop replaces it observably — the same contract the v1 pool
// had. errUseV1 reports a peer that only speaks v1.
func (c *Cluster) muxGet(addr string, timeout time.Duration) (mc *muxConn, fresh bool, err error) {
	e, ok := c.mux.entry(addr)
	if !ok {
		return nil, false, errUseV1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.conn != nil {
		if !e.conn.dead() {
			return e.conn, false, nil
		}
		e.conn = nil
		return nil, false, fmt.Errorf("%w: shared connection died idle", errStaleConn)
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, true, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	// Only a tracing client asks for the trace extension; the server
	// grants the intersection.
	var wantFeat byte
	if c.tracer != nil {
		wantFeat = wire.FeatTrace
	}
	version, feat, err := helloExchange(conn, timeout, wantFeat)
	if err != nil {
		conn.Close()
		if errors.Is(err, errUseV1) {
			// True v1 peer: it answered MsgError and closed. Remember and
			// fall back; we never hello this address again.
			c.mux.markV1(addr)
			return nil, true, errUseV1
		}
		return nil, true, err
	}
	if version < wire.Version2 {
		c.mux.markV1(addr)
		conn.Close()
		return nil, true, errUseV1
	}
	mc = &muxConn{conn: conn, feat: feat & wantFeat, inflight: make(map[uint64]chan muxReply)}
	e.conn = mc
	go mc.readLoop()
	return mc, true, nil
}

// helloExchange negotiates the protocol version (and feature flags) on
// a fresh connection using v1 framing, per DESIGN §7.
func helloExchange(conn net.Conn, timeout time.Duration, feat byte) (byte, byte, error) {
	_ = conn.SetDeadline(time.Now().Add(timeout))
	defer conn.SetDeadline(time.Time{})
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.AppendHelloFeat(nil, wire.Version2, feat)); err != nil {
		return 0, 0, fmt.Errorf("client: hello write: %w", err)
	}
	t, body, err := wire.ReadFrame(conn)
	if err != nil {
		return 0, 0, fmt.Errorf("client: hello read: %w", err)
	}
	switch t {
	case wire.MsgHelloAck:
		v, ackFeat, err := wire.DecodeHelloAck(body)
		if err != nil {
			return 0, 0, fmt.Errorf("client: %w", err)
		}
		return v, ackFeat, nil
	case wire.MsgError:
		// A v1 server rejects the unknown MsgHello frame — that IS the
		// negotiation result.
		return 0, 0, errUseV1
	default:
		return 0, 0, fmt.Errorf("client: unexpected hello reply %v", t)
	}
}
