// Batched cluster operations: many GUIDs per wire frame instead of one
// round trip per (GUID, replica). This is the client half of the §VI
// story — millions of mobile-host updates per second are affordable
// only when the per-message overhead is amortized across a batch (cf.
// Chung's batch identifier updates, arXiv:0706.0580).
package client

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/store"
	"dmap/internal/trace"
	"dmap/internal/wire"
)

// InsertBatch stores every entry at its K replicas using batched
// frames: entries are grouped per replica AS (deduplicating replicas
// that collide on one AS for the same entry), chunked to wire.MaxBatch
// and sent in parallel — one frame per (replica AS, chunk) instead of
// one round trip per (entry, replica). It returns per-entry ack counts:
// acks[i] is how many replicas stored entries[i]. An error is returned
// only when nothing was stored anywhere.
//
// Against a peer that rejects batch frames as unknown (a pre-v2 node),
// the chunk transparently degrades to per-entry inserts.
func (c *Cluster) InsertBatch(entries []store.Entry) (ackCounts []int, err error) {
	if len(entries) == 0 {
		return nil, nil
	}
	opStart := time.Now()
	sp := c.tracer.StartOp("client.insert_batch")
	sp.Eventf("entries=%d", len(entries))
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer func() {
		c.m.opBatchIns.ObserveSinceExemplar(opStart, sp.TraceID())
		c.tracer.FinishOp(sp, "insert_batch", guid.GUID{}, opStart, err)
	}()

	groups := make(map[int][]int) // replica AS → entry indices
	for i, e := range entries {
		placements, err := c.resolver.Place(e.GUID)
		if err != nil {
			return nil, err
		}
		seen := make(map[int]bool, len(placements))
		for _, p := range placements {
			if seen[p.AS] {
				continue
			}
			seen[p.AS] = true
			groups[p.AS] = append(groups[p.AS], i)
		}
	}

	acks := make([]int32, len(entries))
	var (
		wg      sync.WaitGroup
		errMu   sync.Mutex
		lastErr error
	)
	for as, idxs := range groups {
		for start := 0; start < len(idxs); start += wire.MaxBatch {
			chunk := idxs[start:min(start+wire.MaxBatch, len(idxs))]
			wg.Add(1)
			go func(as int, chunk []int) {
				defer wg.Done()
				got, err := c.insertChunk(sp, as, entries, chunk, opDeadline)
				if err != nil {
					errMu.Lock()
					lastErr = fmt.Errorf("AS %d: %w", as, err)
					errMu.Unlock()
					return
				}
				for j, ok := range got {
					if ok {
						atomic.AddInt32(&acks[chunk[j]], 1)
					}
				}
			}(as, chunk)
		}
	}
	wg.Wait()

	out := make([]int, len(entries))
	total := 0
	for i := range acks {
		out[i] = int(acks[i])
		total += out[i]
	}
	if total == 0 {
		if lastErr != nil {
			return out, fmt.Errorf("client: batch insert: no entry stored anywhere (last: %v)", lastErr)
		}
		return out, errors.New("client: batch insert: no entry stored anywhere")
	}
	return out, nil
}

// insertChunk sends one batch-insert frame to one replica AS and
// returns the per-entry acked flags, degrading to per-entry inserts
// against peers that do not know the batch frame type.
func (c *Cluster) insertChunk(sp *trace.Span, as int, entries []store.Entry, idxs []int, opDeadline time.Time) ([]bool, error) {
	batch := make([]store.Entry, len(idxs))
	for j, i := range idxs {
		batch[j] = entries[i]
	}
	payload, err := wire.AppendBatchInsert(payloadBufs.Get(256), batch)
	if err != nil {
		return nil, err
	}
	defer payloadBufs.Put(payload) // c.call is synchronous
	c.m.batchSize.Observe(float64(len(batch)))
	ch := sp.NewChild("chunk")
	ch.Eventf("as=%d entries=%d", as, len(batch))
	defer ch.End()
	t, body, err := c.call(ch, as, wire.MsgBatchInsert, payload, opDeadline)
	if err != nil {
		if isUnknownFrameReject(err) {
			ch.Eventf("degrading to per-entry inserts: peer rejects batch frames")
			return c.insertChunkPerItem(ch, as, batch, opDeadline)
		}
		return nil, err
	}
	if t != wire.MsgBatchInsertAck {
		putBody(body)
		return nil, fmt.Errorf("client: unexpected frame %v", t)
	}
	got, err := wire.DecodeBatchInsertAck(body)
	putBody(body) // DecodeBatchInsertAck copied the flags
	if err != nil {
		return nil, err
	}
	if len(got) != len(batch) {
		return nil, fmt.Errorf("client: batch ack carries %d flags for %d entries", len(got), len(batch))
	}
	return got, nil
}

// insertChunkPerItem is the compatibility path for pre-v2 peers.
func (c *Cluster) insertChunkPerItem(sp *trace.Span, as int, batch []store.Entry, opDeadline time.Time) ([]bool, error) {
	acked := make([]bool, len(batch))
	for i, e := range batch {
		payload, err := wire.AppendEntry(payloadBufs.Get(128), e)
		if err != nil {
			return nil, err
		}
		t, body, err := c.call(sp, as, wire.MsgInsert, payload, opDeadline)
		payloadBufs.Put(payload)
		putBody(body)
		acked[i] = err == nil && t == wire.MsgInsertAck
	}
	return acked, nil
}

// LookupBatch resolves many GUIDs with batched frames, walking
// Algorithm 1's placement order in rounds: round r groups the
// still-unresolved GUIDs by their r-th replica AS and asks each AS with
// at most wire.MaxBatch GUIDs per frame. Misses and failed replicas
// roll into the next round (§III-D3 failover, amortized). It returns
// the resolved entries and per-GUID found flags; GUIDs no reachable
// replica had stay false without failing the call.
func (c *Cluster) LookupBatch(gs []guid.GUID) (resolved []store.Entry, hits []bool, err error) {
	if len(gs) == 0 {
		return nil, nil, nil
	}
	opStart := time.Now()
	sp := c.tracer.StartOp("client.lookup_batch")
	sp.Eventf("guids=%d", len(gs))
	opDeadline := opStart.Add(c.cfg.OpDeadline)
	defer func() {
		c.m.opBatchLkp.ObserveSinceExemplar(opStart, sp.TraceID())
		c.tracer.FinishOp(sp, "lookup_batch", guid.GUID{}, opStart, err)
	}()

	placements := make([][]core.Placement, len(gs))
	rounds := 0
	for i, g := range gs {
		p, err := c.resolver.Place(g)
		if err != nil {
			return nil, nil, err
		}
		placements[i] = p
		rounds = max(rounds, len(p))
	}

	entries := make([]store.Entry, len(gs))
	found := make([]bool, len(gs))
	pending := make([]int, len(gs))
	for i := range pending {
		pending[i] = i
	}
	for r := 0; r < rounds && len(pending) > 0; r++ {
		groups := make(map[int][]int) // replica AS → GUID indices
		for _, i := range pending {
			if r < len(placements[i]) {
				as := placements[i][r].AS
				groups[as] = append(groups[as], i)
			}
		}
		if len(groups) == 0 {
			break
		}
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			next []int
		)
		for as, idxs := range groups {
			for start := 0; start < len(idxs); start += wire.MaxBatch {
				chunk := idxs[start:min(start+wire.MaxBatch, len(idxs))]
				wg.Add(1)
				go func(as int, chunk []int) {
					defer wg.Done()
					rs, err := c.lookupChunk(sp, as, gs, chunk, opDeadline)
					if err != nil {
						// The whole chunk fails over to its next replica
						// round, exactly like the sequential walk.
						if r < rounds-1 {
							c.m.failovers.Add(int64(len(chunk)))
							sp.Eventf("failover round=%d as=%d guids=%d: %v", r, as, len(chunk), err)
						}
						mu.Lock()
						next = append(next, chunk...)
						mu.Unlock()
						return
					}
					var misses []int
					for j, resp := range rs {
						if resp.Found {
							mu.Lock()
							i := chunk[j]
							if !found[i] || resp.Entry.Version > entries[i].Version {
								entries[i], found[i] = resp.Entry, true
							}
							mu.Unlock()
						} else {
							misses = append(misses, chunk[j])
						}
					}
					mu.Lock()
					next = append(next, misses...)
					mu.Unlock()
				}(as, chunk)
			}
		}
		wg.Wait()
		pending = next
	}
	return entries, found, nil
}

// lookupChunk sends one batch-lookup frame to one replica AS, degrading
// to per-GUID lookups against peers that do not know the batch frame.
func (c *Cluster) lookupChunk(sp *trace.Span, as int, gs []guid.GUID, idxs []int, opDeadline time.Time) ([]wire.LookupResp, error) {
	batch := make([]guid.GUID, len(idxs))
	for j, i := range idxs {
		batch[j] = gs[i]
	}
	payload, err := wire.AppendBatchLookup(payloadBufs.Get(256), batch)
	if err != nil {
		return nil, err
	}
	defer payloadBufs.Put(payload) // c.call is synchronous
	c.m.batchSize.Observe(float64(len(batch)))
	ch := sp.NewChild("chunk")
	ch.Eventf("as=%d guids=%d", as, len(batch))
	defer ch.End()
	t, body, err := c.call(ch, as, wire.MsgBatchLookup, payload, opDeadline)
	if err != nil {
		if isUnknownFrameReject(err) {
			ch.Eventf("degrading to per-GUID lookups: peer rejects batch frames")
			return c.lookupChunkPerItem(ch, as, batch, opDeadline)
		}
		return nil, err
	}
	if t != wire.MsgBatchLookupResp {
		putBody(body)
		return nil, fmt.Errorf("client: unexpected frame %v", t)
	}
	rs, err := wire.DecodeBatchLookupResp(body)
	putBody(body) // DecodeBatchLookupResp copied every entry
	if err != nil {
		return nil, err
	}
	if len(rs) != len(batch) {
		return nil, fmt.Errorf("client: batch resp carries %d answers for %d GUIDs", len(rs), len(batch))
	}
	return rs, nil
}

// lookupChunkPerItem is the compatibility path for pre-v2 peers.
func (c *Cluster) lookupChunkPerItem(sp *trace.Span, as int, batch []guid.GUID, opDeadline time.Time) ([]wire.LookupResp, error) {
	rs := make([]wire.LookupResp, len(batch))
	for i, g := range batch {
		payload := wire.AppendGUID(payloadBufs.Get(32), g)
		t, body, err := c.call(sp, as, wire.MsgLookup, payload, opDeadline)
		payloadBufs.Put(payload)
		if err != nil || t != wire.MsgLookupResp {
			putBody(body)
			continue // counts as a miss at this replica
		}
		resp, derr := wire.DecodeLookupResp(body)
		putBody(body)
		if derr == nil {
			rs[i] = resp
		}
	}
	return rs, nil
}

// isUnknownFrameReject reports a MsgError refusal caused by the peer
// not understanding the frame type — the pre-v2 compatibility signal.
func isUnknownFrameReject(err error) bool {
	return errors.Is(err, ErrRejected) && strings.Contains(err.Error(), "unknown frame")
}
