//go:build race

package client

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates on its own, so exact allocs/op is only
// meaningful in non-race builds (scripts/bench.sh alloc is the gate).
const raceEnabled = true
