// White-box tests for the mux pools: reply slots, response buffers and
// timers are recycled across requests, so the dangerous interleavings
// are timeout-vs-reply races — a slot or buffer recycled while the
// demux reader still holds a reference would cross-wire two requests.
package client

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/trace"
	"dmap/internal/wire"
)

// TestMain lets scripts/check.sh run this package with buffer poisoning
// on (DMAP_POISON_BUFS=1): released pooled buffers are scribbled over,
// so a response body used after putBody corrupts visibly under -race
// load instead of silently.
func TestMain(m *testing.M) {
	if os.Getenv("DMAP_POISON_BUFS") == "1" {
		wire.Poison = true
	}
	os.Exit(m.Run())
}

// TestMuxSlotRecycleUnderTimeoutRaces drives one muxConn with request
// timeouts tuned to straddle the server's reply delays, so the three
// do() outcomes — clean reply, clean timeout, and reply-beats-timer
// race — all occur while slots, timers and body buffers recycle. Every
// reply is the request's own payload echoed back; any slot cross-wiring
// or premature buffer recycle surfaces as a payload mismatch.
func TestMuxSlotRecycleUnderTimeoutRaces(t *testing.T) {
	// A real TCP loopback pair, not net.Pipe: the request timeout doubles
	// as the coalescing writer's deadline, and an unbuffered pipe would
	// turn any scheduler hiccup on the echo server into a write timeout
	// that kills the shared connection and the test with it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sc := <-accepted
	defer sc.Close()

	m := newMuxConn(cc, 0)
	go m.readLoop()
	defer m.fail(net.ErrClosed)

	// Echo server: replies carry the request's payload back under its
	// ID. Delays straddle the client's reply timer — id%3 picks an
	// instant reply (clean success), a reply at about the timeout (the
	// reply-beats-timer race) or one well past it (clean timeout).
	const timeout = 10 * time.Millisecond
	sw := wire.NewWriter(sc, nil)
	var pending sync.WaitGroup
	go func() {
		for {
			_, id, payload, err := wire.ReadFrameID(sc)
			if err != nil {
				return
			}
			body := append([]byte(nil), payload...)
			pending.Add(1)
			go func() {
				defer pending.Done()
				time.Sleep(time.Duration(id%3) * timeout)
				_ = sw.WriteFrameID(wire.MsgLookupResp, id, body)
			}()
		}
	}()

	const goroutines, perG = 8, 50
	var ok, timeouts atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				want := []byte(fmt.Sprintf("req-%d-%d", g, i))
				typ, body, err := m.do(wire.MsgLookup, trace.Context{}, want, timeout)
				switch {
				case err == nil:
					if typ != wire.MsgLookupResp || !bytes.Equal(body, want) {
						t.Errorf("reply cross-wired: sent %q, got type %v body %q", want, typ, body)
					}
					putBody(body)
					ok.Add(1)
				case errors.Is(err, timeoutError{}):
					timeouts.Add(1)
				default:
					t.Errorf("do(%q): %v", want, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if ok.Load() == 0 {
		t.Fatal("no request ever succeeded; timeout too aggressive for the harness")
	}
	if timeouts.Load() == 0 {
		t.Log("no request timed out this run; the race path went unexercised")
	}
	t.Logf("%d replies, %d timeouts", ok.Load(), timeouts.Load())
	m.fail(net.ErrClosed) // stop the reader before the echo writer dies
	pending.Wait()
}

// TestMuxFailDrainsInflight kills a connection with requests parked in
// the in-flight table and checks every waiter is failed with
// errConnDead rather than left blocked (or handed a recycled slot).
func TestMuxFailDrainsInflight(t *testing.T) {
	cc, sc := net.Pipe()
	m := newMuxConn(cc, 0)
	go m.readLoop()
	defer sc.Close()

	const waiters = 16
	errs := make(chan error, waiters)
	var started sync.WaitGroup
	for i := 0; i < waiters; i++ {
		started.Add(1)
		go func(i int) {
			started.Done()
			_, body, err := m.do(wire.MsgLookup, trace.Context{}, []byte{byte(i)}, time.Minute)
			putBody(body)
			errs <- err
		}(i)
	}
	started.Wait()
	// Consume the frames so the writers get past their flush, then kill.
	go func() {
		for i := 0; i < waiters; i++ {
			if _, _, _, err := wire.ReadFrameID(sc); err != nil {
				return
			}
		}
		m.fail(errors.New("injected failure"))
	}()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, errConnDead) {
			t.Fatalf("waiter %d err = %v, want errConnDead", i, err)
		}
	}
	if _, _, err := m.register(); !errors.Is(err, errConnDead) {
		t.Fatalf("register after fail = %v, want errConnDead", err)
	}
}

// TestPlacementPoolRoundTrip pins the placement scratch free list:
// recycled slices come back empty, and a Put never blocks even when
// the free list is full.
func TestPlacementPoolRoundTrip(t *testing.T) {
	p := getPlacements()
	if len(p) != 0 {
		t.Fatalf("getPlacements len %d, want 0", len(p))
	}
	for i := 0; i < 200; i++ { // overfill the free list; must not block
		putPlacements(getPlacements())
	}
	putPlacements(nil) // nil must be accepted
	if q := getPlacements(); len(q) != 0 {
		t.Fatalf("recycled placements len %d, want 0", len(q))
	}
}
