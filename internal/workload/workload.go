// Package workload generates the traffic that drives the evaluation:
// Mandelbrot-Zipf GUID popularity (Eq. 1 of the paper, following [26],
// [27]) and end-node-weighted source-AS selection, so that "more lookup
// requests are generated from more densely populated areas" (§VI).
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// MandelbrotZipf samples object ranks with probability
//
//	p(k) = H / (k + q)^α,  H = 1 / Σ_{k=1..N} 1/(k+q)^α
//
// with α controlling skewness and q flattening the head (paper values
// α = 1.02, q = 100).
type MandelbrotZipf struct {
	n     int
	alpha float64
	q     float64
	cdf   []float64
}

// Paper parameter values (§IV-B1, following Saleh & Hefeeda [27]).
const (
	DefaultAlpha = 1.02
	DefaultQ     = 100.0
)

// NewMandelbrotZipf builds a sampler over ranks [0, n).
func NewMandelbrotZipf(n int, alpha, q float64) (*MandelbrotZipf, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: population size must be positive, got %d", n)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("workload: alpha must be positive, got %g", alpha)
	}
	if q < 0 {
		return nil, fmt.Errorf("workload: q must be non-negative, got %g", q)
	}
	z := &MandelbrotZipf{n: n, alpha: alpha, q: q, cdf: make([]float64, n)}
	var sum float64
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1)+q, alpha)
		z.cdf[k] = sum
	}
	for k := range z.cdf {
		z.cdf[k] /= sum
	}
	z.cdf[n-1] = 1
	return z, nil
}

// N returns the population size.
func (z *MandelbrotZipf) N() int { return z.n }

// Prob returns p(k) for 0-based rank k.
func (z *MandelbrotZipf) Prob(k int) float64 {
	if k < 0 || k >= z.n {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Sample draws a 0-based rank.
func (z *MandelbrotZipf) Sample(rng *rand.Rand) int {
	return sort.SearchFloat64s(z.cdf, rng.Float64())
}

// WeightedSampler draws indices proportionally to fixed non-negative
// weights (used for end-node-weighted source ASs).
type WeightedSampler struct {
	cdf []float64
}

// NewWeightedSampler builds a sampler over len(weights) indices. At least
// one weight must be positive and none may be negative or non-finite.
func NewWeightedSampler(weights []float64) (*WeightedSampler, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("workload: no weights")
	}
	cdf := make([]float64, len(weights))
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("workload: bad weight %g at index %d", w, i)
		}
		sum += w
		cdf[i] = sum
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: all weights are zero")
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[len(cdf)-1] = 1
	return &WeightedSampler{cdf: cdf}, nil
}

// Sample draws an index.
func (s *WeightedSampler) Sample(rng *rand.Rand) int {
	return sort.SearchFloat64s(s.cdf, rng.Float64())
}

// Len returns the number of indices.
func (s *WeightedSampler) Len() int { return len(s.cdf) }

// EventKind labels a trace event (§IV-B1: "three types of events: GUID
// inserts, GUID updates and GUID lookups").
type EventKind int

// Event kinds.
const (
	Insert EventKind = iota + 1
	Update
	Lookup
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Update:
		return "update"
	case Lookup:
		return "lookup"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one workload element: at Time (abstract units), SrcAS performs
// Kind on the GUID with index GUIDIndex.
type Event struct {
	Time      float64
	Kind      EventKind
	GUIDIndex int
	SrcAS     int
}

// TraceConfig parameterizes Generate.
type TraceConfig struct {
	// NumGUIDs is the GUID population; each is inserted once from a
	// weighted-random home AS.
	NumGUIDs int
	// NumLookups queries drawn from the Mandelbrot-Zipf popularity.
	NumLookups int
	// UpdatesPerGUID appends that many re-attachment updates per GUID
	// (0 for the pure lookup experiments of Figures 4–6).
	UpdatesPerGUID int
	// Alpha, Q are the Mandelbrot-Zipf parameters; zero values select the
	// paper defaults.
	Alpha, Q float64
	// SourceWeights are the per-AS end-node weights.
	SourceWeights []float64
	// Seed fixes the PRNG.
	Seed int64
}

// Trace is a generated workload: Inserts (and updates) define mapping
// state; Lookups measure it. HomeAS[i] is the AS where GUID i was last
// attached.
type Trace struct {
	Inserts []Event
	Lookups []Event
	HomeAS  []int
}

// Generate builds a reproducible trace per cfg. Lookup sources and GUID
// homes are both drawn from SourceWeights; lookup targets follow the
// popularity law over GUID indices (rank == index: GUID 0 is the most
// popular).
func Generate(cfg TraceConfig) (*Trace, error) {
	if cfg.NumGUIDs <= 0 {
		return nil, fmt.Errorf("workload: NumGUIDs must be positive, got %d", cfg.NumGUIDs)
	}
	if cfg.NumLookups < 0 || cfg.UpdatesPerGUID < 0 {
		return nil, fmt.Errorf("workload: negative event counts")
	}
	alpha, q := cfg.Alpha, cfg.Q
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if q == 0 {
		q = DefaultQ
	}
	src, err := NewWeightedSampler(cfg.SourceWeights)
	if err != nil {
		return nil, err
	}
	pop, err := NewMandelbrotZipf(cfg.NumGUIDs, alpha, q)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	tr := &Trace{
		Inserts: make([]Event, 0, cfg.NumGUIDs*(1+cfg.UpdatesPerGUID)),
		Lookups: make([]Event, 0, cfg.NumLookups),
		HomeAS:  make([]int, cfg.NumGUIDs),
	}
	now := 0.0
	for i := 0; i < cfg.NumGUIDs; i++ {
		home := src.Sample(rng)
		tr.HomeAS[i] = home
		tr.Inserts = append(tr.Inserts, Event{Time: now, Kind: Insert, GUIDIndex: i, SrcAS: home})
		now++
		for u := 0; u < cfg.UpdatesPerGUID; u++ {
			home = src.Sample(rng)
			tr.HomeAS[i] = home
			tr.Inserts = append(tr.Inserts, Event{Time: now, Kind: Update, GUIDIndex: i, SrcAS: home})
			now++
		}
	}
	for i := 0; i < cfg.NumLookups; i++ {
		tr.Lookups = append(tr.Lookups, Event{
			Time:      now,
			Kind:      Lookup,
			GUIDIndex: pop.Sample(rng),
			SrcAS:     src.Sample(rng),
		})
		now++
	}
	return tr, nil
}
