package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestMandelbrotZipfValidation(t *testing.T) {
	if _, err := NewMandelbrotZipf(0, 1, 1); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := NewMandelbrotZipf(10, 0, 1); err == nil {
		t.Error("alpha=0 should fail")
	}
	if _, err := NewMandelbrotZipf(10, 1, -1); err == nil {
		t.Error("q<0 should fail")
	}
}

func TestMandelbrotZipfProbabilities(t *testing.T) {
	z, err := NewMandelbrotZipf(1000, DefaultAlpha, DefaultQ)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for k := 0; k < z.N(); k++ {
		p := z.Prob(k)
		if p <= 0 {
			t.Fatalf("Prob(%d) = %v", k, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	// Monotone decreasing in rank.
	for k := 1; k < z.N(); k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-15 {
			t.Fatalf("Prob not monotone at %d", k)
		}
	}
	// The q-flattened head: p(0)/p(1) must equal ((2+q)/(1+q))^α, close
	// to 1 for q=100 (the "flatness" of the peak).
	want := math.Pow((2+DefaultQ)/(1+DefaultQ), DefaultAlpha)
	if got := z.Prob(0) / z.Prob(1); math.Abs(got-want) > 1e-9 {
		t.Errorf("head ratio = %v, want %v", got, want)
	}
	if z.Prob(-1) != 0 || z.Prob(z.N()) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
}

func TestMandelbrotZipfSampleMatchesProb(t *testing.T) {
	z, err := NewMandelbrotZipf(50, 1.02, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 200000
	counts := make([]int, z.N())
	for i := 0; i < draws; i++ {
		counts[z.Sample(rng)]++
	}
	for k := 0; k < z.N(); k++ {
		got := float64(counts[k]) / draws
		want := z.Prob(k)
		if math.Abs(got-want) > 0.005+0.2*want {
			t.Errorf("rank %d: empirical %v, want %v", k, got, want)
		}
	}
}

func TestWeightedSamplerValidation(t *testing.T) {
	bad := [][]float64{
		nil,
		{},
		{0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	}
	for i, w := range bad {
		if _, err := NewWeightedSampler(w); err == nil {
			t.Errorf("weights %d should be rejected", i)
		}
	}
}

func TestWeightedSamplerDistribution(t *testing.T) {
	s, err := NewWeightedSampler([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	rng := rand.New(rand.NewSource(2))
	const draws = 100000
	counts := make([]int, 3)
	for i := 0; i < draws; i++ {
		counts[s.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	if got := float64(counts[0]) / draws; math.Abs(got-0.25) > 0.01 {
		t.Errorf("index 0 frequency = %v, want 0.25", got)
	}
}

func TestGenerateValidation(t *testing.T) {
	weights := []float64{1, 1}
	bad := []TraceConfig{
		{NumGUIDs: 0, SourceWeights: weights},
		{NumGUIDs: 1, NumLookups: -1, SourceWeights: weights},
		{NumGUIDs: 1, UpdatesPerGUID: -1, SourceWeights: weights},
		{NumGUIDs: 1, SourceWeights: nil},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := TraceConfig{
		NumGUIDs:       100,
		NumLookups:     1000,
		UpdatesPerGUID: 2,
		SourceWeights:  []float64{1, 2, 3, 4},
		Seed:           3,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Inserts) != 100*3 {
		t.Errorf("inserts+updates = %d, want 300", len(tr.Inserts))
	}
	if len(tr.Lookups) != 1000 {
		t.Errorf("lookups = %d", len(tr.Lookups))
	}
	if len(tr.HomeAS) != 100 {
		t.Errorf("HomeAS length = %d", len(tr.HomeAS))
	}

	// Kinds ordered per GUID: first Insert, then Updates; times increase.
	inserts, updates := 0, 0
	prev := -1.0
	for _, e := range tr.Inserts {
		switch e.Kind {
		case Insert:
			inserts++
		case Update:
			updates++
		default:
			t.Fatalf("unexpected kind %v", e.Kind)
		}
		if e.Time <= prev {
			t.Fatal("times must increase")
		}
		prev = e.Time
		if e.SrcAS < 0 || e.SrcAS >= 4 {
			t.Fatalf("SrcAS %d out of range", e.SrcAS)
		}
	}
	if inserts != 100 || updates != 200 {
		t.Errorf("inserts=%d updates=%d", inserts, updates)
	}

	// HomeAS reflects the LAST attachment event of each GUID.
	last := make(map[int]int)
	for _, e := range tr.Inserts {
		last[e.GUIDIndex] = e.SrcAS
	}
	for i, home := range tr.HomeAS {
		if home != last[i] {
			t.Fatalf("HomeAS[%d] = %d, want last attachment %d", i, home, last[i])
		}
	}

	for _, e := range tr.Lookups {
		if e.Kind != Lookup {
			t.Fatal("lookup kind")
		}
		if e.GUIDIndex < 0 || e.GUIDIndex >= 100 {
			t.Fatalf("GUIDIndex %d out of range", e.GUIDIndex)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TraceConfig{NumGUIDs: 50, NumLookups: 200, SourceWeights: []float64{1, 1, 1}, Seed: 9}
	t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range t1.Lookups {
		if t1.Lookups[i] != t2.Lookups[i] {
			t.Fatalf("lookup %d differs", i)
		}
	}
	cfg.Seed = 10
	t3, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1.Lookups {
		if t1.Lookups[i] != t3.Lookups[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical traces")
	}
}

func TestGeneratePopularitySkew(t *testing.T) {
	cfg := TraceConfig{
		NumGUIDs:      1000,
		NumLookups:    50000,
		SourceWeights: []float64{1},
		Seed:          4,
	}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, cfg.NumGUIDs)
	for _, e := range tr.Lookups {
		counts[e.GUIDIndex]++
	}
	// Top decile of ranks must take the majority of lookups under the
	// paper's α=1.02, q=100.
	var top int
	for _, c := range counts[:100] {
		top += c
	}
	// Uniform would give 0.10; with q=100 flattening the head, the
	// Mandelbrot-Zipf law concentrates ≈0.29 here.
	if frac := float64(top) / float64(len(tr.Lookups)); frac < 0.25 {
		t.Errorf("top-100 ranks took %.2f of lookups, want > 0.25", frac)
	}
}

func TestEventKindString(t *testing.T) {
	if Insert.String() != "insert" || Update.String() != "update" || Lookup.String() != "lookup" {
		t.Error("kind names")
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should still format")
	}
}
