// Package engine is the concurrent evaluation engine behind the
// figure-scale experiment drivers: a worker pool that spreads
// grouped-by-source work units (one Dijkstra plus its lookups per source
// AS) across GOMAXPROCS workers and reassembles per-unit results in
// input order.
//
// Determinism is the design constraint. Parallel runs must be
// bit-identical to serial runs despite seeded PRNG workloads, so the
// engine imposes three rules on its callers:
//
//  1. Units are independent: a unit may read shared immutable state (the
//     topology, the trace, placements) and mutate only its own scratch
//     and result.
//  2. Randomness is seeded per unit, never drawn from a stream shared
//     across units — worker interleaving must not reorder PRNG draws.
//  3. Results are merged in unit-index order by the caller, so
//     float-summation order (and therefore every reported statistic) is
//     independent of the worker count.
//
// Under these rules Map(workers=1, ...) is the reference oracle and
// Map(workers=N, ...) reproduces it exactly.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ResolveWorkers maps a Workers configuration value to an actual worker
// count: n <= 0 selects GOMAXPROCS, anything else is used as given.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map evaluates units [0, n) and returns their results indexed by unit.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 runs inline on the
// calling goroutine (the serial reference path, no goroutines spawned).
// Each worker owns one scratch value from newScratch, reused across all
// units that worker processes — put distance vectors and candidate
// buffers there to keep the hot loop allocation-free. eval must follow
// the package-level determinism rules.
//
// If any unit fails, Map stops handing out new units and returns the
// error of the lowest-numbered unit that failed before the engine
// stopped. Drivers validate configuration up front, so in practice a
// unit error is a programming bug, not a data-dependent path.
func Map[S, R any](workers, n int, newScratch func() S, eval func(unit int, scratch S) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	results := make([]R, n)

	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			r, err := eval(i, scratch)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // next unit to hand out
		failed  atomic.Bool  // short-circuits remaining units
		errMu   sync.Mutex
		errUnit = n // lowest failing unit seen
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := eval(i, scratch)
				if err != nil {
					errMu.Lock()
					if i < errUnit {
						errUnit, firstEr = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}

// MapNoScratch is Map for units that need no per-worker state.
func MapNoScratch[R any](workers, n int, eval func(unit int) (R, error)) ([]R, error) {
	return Map(workers, n, func() struct{} { return struct{}{} },
		func(unit int, _ struct{}) (R, error) { return eval(unit) })
}
