// Package engine is the concurrent evaluation engine behind the
// figure-scale experiment drivers: a worker pool that spreads
// grouped-by-source work units (one Dijkstra plus its lookups per source
// AS) across GOMAXPROCS workers and reassembles per-unit results in
// input order.
//
// Determinism is the design constraint. Parallel runs must be
// bit-identical to serial runs despite seeded PRNG workloads, so the
// engine imposes three rules on its callers:
//
//  1. Units are independent: a unit may read shared immutable state (the
//     topology, the trace, placements) and mutate only its own scratch
//     and result.
//  2. Randomness is seeded per unit, never drawn from a stream shared
//     across units — worker interleaving must not reorder PRNG draws.
//  3. Results are merged in unit-index order by the caller, so
//     float-summation order (and therefore every reported statistic) is
//     independent of the worker count.
//
// Under these rules Map(workers=1, ...) is the reference oracle and
// Map(workers=N, ...) reproduces it exactly.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/trace"
)

// Engine metrics live on metrics.Default (the engine has no natural
// owner object): unit-latency histogram, busy/wall time counters and a
// derived occupancy gauge. Instrumentation never touches results —
// determinism is about outputs, and these are observations.
var (
	engOnce    sync.Once
	engMaps    *metrics.Counter
	engUnits   *metrics.Counter
	engBusyUs  *metrics.Counter
	engWallUs  *metrics.Counter
	engWorkers *metrics.Gauge
	engUnitUs  *metrics.Histogram
)

func engMetrics() {
	engOnce.Do(func() {
		reg := metrics.Default
		engMaps = reg.Counter("engine.maps")
		engUnits = reg.Counter("engine.units")
		engBusyUs = reg.Counter("engine.busy_us")
		engWallUs = reg.Counter("engine.wall_us")
		engWorkers = reg.Gauge("engine.workers")
		engUnitUs = reg.Histogram("engine.unit_us")
		// Occupancy = fraction of worker-time spent evaluating units,
		// cumulative over all Map calls: busy / (wall × workers).
		reg.GaugeFunc("engine.occupancy", func() float64 {
			wall := float64(engWallUs.Value()) * engWorkers.Value()
			if wall <= 0 {
				return 0
			}
			occ := float64(engBusyUs.Value()) / wall
			if occ > 1 {
				occ = 1
			}
			return occ
		})
	})
}

// engTracer, when set, samples Map calls into "engine.map" traces and
// feeds slow work units into the slow-op log. Swappable at runtime
// (dmapsim sets it from -trace-sample/-slow-op-ms before driving
// experiments); a nil tracer keeps the hot loop untouched.
var engTracer atomic.Pointer[trace.Tracer]

// SetTracer attaches t to all subsequent Map calls (nil detaches).
func SetTracer(t *trace.Tracer) { engTracer.Store(t) }

// Tracer returns the engine's current tracer (nil when unset).
func Tracer() *trace.Tracer { return engTracer.Load() }

// ResolveWorkers maps a Workers configuration value to an actual worker
// count: n <= 0 selects GOMAXPROCS, anything else is used as given.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map evaluates units [0, n) and returns their results indexed by unit.
//
// workers <= 0 selects GOMAXPROCS; workers == 1 runs inline on the
// calling goroutine (the serial reference path, no goroutines spawned).
// Each worker owns one scratch value from newScratch, reused across all
// units that worker processes — put distance vectors and candidate
// buffers there to keep the hot loop allocation-free. eval must follow
// the package-level determinism rules.
//
// If any unit fails, Map stops handing out new units and returns the
// error of the lowest-numbered unit that failed before the engine
// stopped. Drivers validate configuration up front, so in practice a
// unit error is a programming bug, not a data-dependent path.
func Map[S, R any](workers, n int, newScratch func() S, eval func(unit int, scratch S) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	workers = ResolveWorkers(workers)
	if workers > n {
		workers = n
	}
	results := make([]R, n)

	engMetrics()
	engMaps.Inc()
	engWorkers.Set(float64(workers))
	tr := engTracer.Load()
	sp := tr.StartOp("engine.map")
	if sp != nil {
		sp.Eventf("units=%d workers=%d", n, workers)
	}
	mapStart := time.Now()
	defer func() {
		engWallUs.Add(time.Since(mapStart).Microseconds())
		tr.FinishOp(sp, "engine.map", guid.GUID{}, mapStart, nil)
	}()
	// timedEval wraps eval with per-unit latency accounting; it is the
	// only difference between the instrumented and bare hot loops. Spans
	// are never opened per unit — worker interleaving would make the
	// recorded tree depend on the worker count, which the determinism
	// guarantee forbids — but units over the slow threshold land in the
	// slow-op log (an unordered set, so concurrency-safe to observe).
	timedEval := func(i int, scratch S) (R, error) {
		t0 := time.Now()
		r, err := eval(i, scratch)
		d := time.Since(t0)
		engUnits.Inc()
		engBusyUs.Add(d.Microseconds())
		engUnitUs.ObserveDuration(d)
		if tr.SlowEnabled() && d >= tr.SlowThreshold() {
			tr.ObserveSlow("engine.unit", fmt.Sprintf("unit=%d of %d", i, n), t0)
		}
		return r, err
	}

	if workers == 1 {
		scratch := newScratch()
		for i := 0; i < n; i++ {
			r, err := timedEval(i, scratch)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next    atomic.Int64 // next unit to hand out
		failed  atomic.Bool  // short-circuits remaining units
		errMu   sync.Mutex
		errUnit = n // lowest failing unit seen
		firstEr error
		wg      sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := newScratch()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := timedEval(i, scratch)
				if err != nil {
					errMu.Lock()
					if i < errUnit {
						errUnit, firstEr = i, err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return results, nil
}

// MapNoScratch is Map for units that need no per-worker state.
func MapNoScratch[R any](workers, n int, eval func(unit int) (R, error)) ([]R, error) {
	return Map(workers, n, func() struct{} { return struct{}{} },
		func(unit int, _ struct{}) (R, error) { return eval(unit) })
}
