package engine

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/trace"
)

func TestMapOrdersResultsByUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		got, err := Map(workers, 100, func() int { return 0 },
			func(unit int, _ int) (int, error) { return unit * unit, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func() int { return 0 },
		func(int, int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty Map = (%v, %v)", got, err)
	}
}

func TestMapScratchPerWorker(t *testing.T) {
	// Each worker must get exactly one scratch, reused across its units.
	var created atomic.Int64
	type scratch struct{ uses int }
	workers := 3
	_, err := Map(workers, 64, func() *scratch {
		created.Add(1)
		return &scratch{}
	}, func(unit int, s *scratch) (int, error) {
		s.uses++
		return s.uses, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := created.Load(); n < 1 || n > int64(workers) {
		t.Errorf("created %d scratches, want 1..%d", n, workers)
	}
}

func TestMapErrorStopsEngine(t *testing.T) {
	// Unit 0 is handed out first, so its error lands before the pool can
	// drain the other 99999 units.
	var evaluated atomic.Int64
	_, err := Map(4, 100_000, func() int { return 0 },
		func(unit int, _ int) (int, error) {
			evaluated.Add(1)
			if unit == 0 {
				return 0, fmt.Errorf("unit %d boom", unit)
			}
			return unit, nil
		})
	if err == nil {
		t.Fatal("want error")
	}
	if evaluated.Load() == 100_000 {
		t.Error("error did not short-circuit the remaining units")
	}
}

func TestMapSerialError(t *testing.T) {
	_, err := Map(1, 10, func() int { return 0 },
		func(unit int, _ int) (int, error) {
			if unit == 3 {
				return 0, fmt.Errorf("boom")
			}
			return unit, nil
		})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

// TestMapDeterministicWithPerUnitSeeds is the engine's contract in
// miniature: per-unit-seeded PRNG work gives bit-identical output at
// every worker count.
func TestMapDeterministicWithPerUnitSeeds(t *testing.T) {
	run := func(workers int) []float64 {
		res, err := Map(workers, 200, func() []float64 { return make([]float64, 0, 64) },
			func(unit int, _ []float64) (float64, error) {
				rng := rand.New(rand.NewSource(int64(unit)*7919 + 1))
				var sum float64
				for i := 0; i < 50; i++ {
					sum += rng.Float64()
				}
				return sum, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(1)
	for _, workers := range []int{2, 4, 16} {
		got := run(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: unit %d = %v, want %v (bit-identical)", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMapNoScratch(t *testing.T) {
	got, err := MapNoScratch(4, 10, func(unit int) (int, error) { return unit + 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestResolveWorkers(t *testing.T) {
	if ResolveWorkers(0) < 1 {
		t.Error("ResolveWorkers(0) must be positive")
	}
	if ResolveWorkers(-3) < 1 {
		t.Error("ResolveWorkers(-3) must be positive")
	}
	if ResolveWorkers(5) != 5 {
		t.Error("explicit worker count must be respected")
	}
}

// TestMapTracing: with a sampling tracer attached, every Map publishes
// an "engine.map" trace and slow units land in the slow-op log; a
// detached tracer restores the bare path.
func TestMapTracing(t *testing.T) {
	tr := trace.New(trace.Config{Sample: 1, SlowOp: time.Nanosecond})
	SetTracer(tr)
	defer SetTracer(nil)

	if _, err := MapNoScratch(2, 4, func(unit int) (int, error) { return unit, nil }); err != nil {
		t.Fatal(err)
	}
	views := tr.Traces()
	if len(views) != 1 {
		t.Fatalf("traces = %d, want 1", len(views))
	}
	if got := views[0].Spans[0].Name; got != "engine.map" {
		t.Errorf("root span = %q, want engine.map", got)
	}
	units, maps := 0, 0
	for _, so := range tr.SlowOps() {
		switch so.Op {
		case "engine.unit":
			units++
			if so.Detail == "" {
				t.Errorf("slow unit without detail: %+v", so)
			}
		case "engine.map":
			maps++
		default:
			t.Errorf("unexpected slow op %+v", so)
		}
	}
	if units != 4 || maps != 1 {
		t.Errorf("slow ops = %d units + %d maps, want 4 + 1 (1ns threshold catches all)", units, maps)
	}

	SetTracer(nil)
	if _, err := MapNoScratch(1, 2, func(unit int) (int, error) { return unit, nil }); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Traces()); got != 1 {
		t.Errorf("detached tracer still recorded: %d traces", got)
	}
}
