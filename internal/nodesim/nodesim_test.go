package nodesim

import (
	"testing"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/simnet"
	"dmap/internal/store"
	"dmap/internal/topology"
)

// testDeployment builds a small generated world: topology, DFZ, resolver,
// system, event-driven deployment.
func testDeployment(t *testing.T, k int, local bool) (*Deployment, *topology.Graph) {
	t.Helper()
	g, err := topology.Generate(topology.SmallGenConfig(200, 21))
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             g.NumAS(),
		NumPrefixes:       3000,
		AnnouncedFraction: 0.52,
		Seed:              21,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewResolver(guid.MustHasher(k, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(core.SystemConfig{Resolver: res, NumAS: g.NumAS(), LocalReplica: local})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := topology.NewDistCache(g, 64)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDeployment(sys, simnet.New(), cache, 0)
	if err != nil {
		t.Fatal(err)
	}
	return d, g
}

func entryFor(name string, version uint64, as int) store.Entry {
	return store.Entry{
		GUID:    guid.New(name),
		NAs:     []store.NA{{AS: as, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: version,
	}
}

func TestInsertThenLookup(t *testing.T) {
	d, _ := testDeployment(t, 5, false)
	e := entryFor("laptop", 1, 42)

	var ins *InsertResult
	if err := d.Insert(42, e, func(r InsertResult) { ins = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if ins == nil {
		t.Fatal("insert never completed")
	}
	if ins.Acks != 5 {
		t.Errorf("acks = %d, want 5", ins.Acks)
	}
	if ins.Latency <= 0 {
		t.Error("insert latency must be positive")
	}

	var res *LookupResult
	if err := d.Lookup(17, e.GUID, func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil || !res.Found {
		t.Fatalf("lookup result = %+v", res)
	}
	if res.Entry.NAs[0].AS != 42 {
		t.Errorf("entry = %+v", res.Entry)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d", res.Attempts)
	}
	if res.Latency <= 0 {
		t.Error("lookup latency must be positive")
	}
}

func TestLookupMissingGUID(t *testing.T) {
	d, _ := testDeployment(t, 3, false)
	var res *LookupResult
	if err := d.Lookup(0, guid.New("ghost"), func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil {
		t.Fatal("lookup never completed")
	}
	if res.Found {
		t.Error("found a never-inserted GUID")
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want K=3", res.Attempts)
	}
}

func TestUpdateLatencyIsMaxOverReplicas(t *testing.T) {
	d, g := testDeployment(t, 5, false)
	e := entryFor("upd", 1, 3)
	placements, err := d.System().Resolver().Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := topology.NewDistCache(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	var want simnet.Time
	for _, p := range placements {
		if rtt := cache.RTT(3, p.AS); rtt > want {
			want = rtt
		}
	}
	var ins *InsertResult
	if err := d.Insert(3, e, func(r InsertResult) { ins = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if ins == nil {
		t.Fatal("no result")
	}
	if ins.Latency != want {
		t.Errorf("insert latency = %v, want max replica RTT %v", ins.Latency, want)
	}
}

func TestLocalReplicaWinsAtHome(t *testing.T) {
	d, g := testDeployment(t, 5, true)
	const home = 50
	e := entryFor("homebody", 1, home)
	if err := d.Insert(home, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)

	var res *LookupResult
	if err := d.Lookup(home, e.GUID, func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil || !res.Found {
		t.Fatalf("result = %+v", res)
	}
	if !res.UsedLocal {
		// A global replica can only beat the local copy if co-located.
		if res.ServedBy != home {
			t.Errorf("expected local win, got %+v", res)
		}
	}
	if want := 2 * g.Intra(home); res.Latency > want {
		t.Errorf("latency = %v, want ≤ local RTT %v", res.Latency, want)
	}
}

func TestCrashedReplicaCostsTimeout(t *testing.T) {
	d, _ := testDeployment(t, 2, false)
	e := entryFor("crashy", 1, 7)
	if err := d.Insert(7, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)

	// Determine the querier's replica order and crash the first.
	placements, err := d.System().Resolver().Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	const src = 99
	first := placements[0].AS
	if d.rtt(src, placements[1].AS) < d.rtt(src, first) {
		first = placements[1].AS
	}
	d.Crash(first)

	start := d.Sim().Now()
	var res *LookupResult
	if err := d.Lookup(src, e.GUID, func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil || !res.Found {
		t.Fatalf("result = %+v", res)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	if res.Latency < DefaultTimeout {
		t.Errorf("latency %v should include the %v timeout", res.Latency, DefaultTimeout)
	}
	if res.ServedBy == first {
		t.Error("served by the crashed replica")
	}
	_ = start
}

func TestMobilityRaceObservesOldThenNew(t *testing.T) {
	// §III-D2: a query issued right after a move can return the old
	// mapping; the querier marks it obsolete and re-checks.
	d, _ := testDeployment(t, 3, false)
	e1 := entryFor("vehicle", 1, 10)
	if err := d.Insert(10, e1, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)

	// The vehicle moves to AS 20 (version 2) at t0; a distant node
	// queries at t0+1µs, racing the update's propagation.
	e2 := entryFor("vehicle", 2, 20)
	if err := d.Insert(20, e2, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	var raced *LookupResult
	if err := d.Sim().After(1, func() {
		if err := d.Lookup(150, e1.GUID, func(r LookupResult) { raced = &r }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if raced == nil || !raced.Found {
		t.Fatalf("raced result = %+v", raced)
	}
	// Either version may win the race, but a version-1 answer must be
	// recognizably stale; re-querying afterwards must see version 2.
	var settled *LookupResult
	if err := d.Lookup(150, e1.GUID, func(r LookupResult) { settled = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if settled == nil || !settled.Found {
		t.Fatal("settled lookup failed")
	}
	if settled.Entry.Version != 2 || settled.Entry.NAs[0].AS != 20 {
		t.Errorf("settled entry = %+v, want version 2 at AS 20", settled.Entry)
	}
}

func TestStaleUpdateNeverRollsBack(t *testing.T) {
	d, _ := testDeployment(t, 3, false)
	eNew := entryFor("rollback", 5, 30)
	eOld := entryFor("rollback", 4, 10)
	if err := d.Insert(30, eNew, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if err := d.Insert(10, eOld, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	var res *LookupResult
	if err := d.Lookup(0, eNew.GUID, func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil || !res.Found || res.Entry.Version != 5 {
		t.Fatalf("result = %+v, want version 5 preserved", res)
	}
}

func TestRestore(t *testing.T) {
	d, _ := testDeployment(t, 1, false)
	e := entryFor("backup", 1, 5)
	if err := d.Insert(5, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	placements, _ := d.System().Resolver().Place(e.GUID)
	d.Crash(placements[0].AS)

	var down *LookupResult
	if err := d.Lookup(0, e.GUID, func(r LookupResult) { down = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if down == nil || down.Found {
		t.Fatalf("lookup against crashed sole replica = %+v, want not found", down)
	}

	d.Restore(placements[0].AS)
	var up *LookupResult
	if err := d.Lookup(0, e.GUID, func(r LookupResult) { up = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if up == nil || !up.Found {
		t.Fatalf("lookup after restore = %+v", up)
	}
}

func TestChurnWithdrawDuringLiveTraffic(t *testing.T) {
	// §III-D1 end to end in the event engine: insert a population, start
	// a steady lookup stream, withdraw a replica-hosting prefix (with
	// migration) mid-stream, and require every lookup to succeed.
	d, _ := testDeployment(t, 3, false)
	sys := d.System()

	entries := make([]store.Entry, 0, 30)
	for i := 1; i <= 30; i++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(i)),
			NAs:     []store.NA{{AS: i % 50}},
			Version: 1,
		}
		entries = append(entries, e)
		if err := d.Insert(i%50, e, func(InsertResult) {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Sim().Run(0)

	// Pick a victim prefix: the one hosting entry 7's replica 1.
	pl, err := sys.Resolver().PlaceReplica(entries[7].GUID, 1)
	if err != nil {
		t.Fatal(err)
	}
	pfx, ok := sys.Resolver().Table().Lookup(pl.Addr)
	if !ok {
		t.Fatal("placement prefix missing")
	}

	failures := 0
	completed := 0
	// Schedule lookups before, during and after the withdrawal (the
	// clock already advanced past the inserts).
	base := d.Sim().Now()
	for i, e := range entries {
		e := e
		at := base + simnet.Time(i)*1_000_000
		if err := d.Sim().At(at, func() {
			err := d.Lookup(90, e.GUID, func(r LookupResult) {
				completed++
				if !r.Found {
					failures++
				}
			})
			if err != nil {
				t.Error(err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The withdrawal (with §III-D1 migration) fires mid-stream.
	if err := d.Sim().At(base+15_000_000, func() {
		if _, err := sys.WithdrawPrefix(pfx.Prefix, pfx.AS); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)

	if completed != len(entries) {
		t.Fatalf("completed %d/%d lookups", completed, len(entries))
	}
	if failures != 0 {
		t.Fatalf("%d lookups failed across the withdrawal", failures)
	}
}

// TestHotKeysProfiling: with profiling enabled, the simulated nodes that
// served traffic report the driven GUID in their lookup and insert
// profiles, and nodes that served nothing report nothing.
func TestHotKeysProfiling(t *testing.T) {
	d, _ := testDeployment(t, 3, false)
	d.EnableHotKeys(8)
	e := entryFor("hot-object", 1, 7)
	if err := d.Insert(7, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	for i := 0; i < 5; i++ {
		if err := d.Lookup(11, e.GUID, func(LookupResult) {}); err != nil {
			t.Fatal(err)
		}
		d.Sim().Run(0)
	}
	lookupHits, insertHits := 0, 0
	for as := 0; as < d.System().NumAS(); as++ {
		for _, hk := range d.HotKeys(as).TopLookups(0) {
			if hk.GUID == e.GUID {
				lookupHits += int(hk.Count)
			}
		}
		for _, hk := range d.HotKeys(as).TopInserts(0) {
			if hk.GUID == e.GUID {
				insertHits += int(hk.Count)
			}
		}
	}
	if lookupHits != 5 {
		t.Errorf("lookup observations = %d, want 5 (sequential lookups hit one replica each)", lookupHits)
	}
	if insertHits != 3 {
		t.Errorf("insert observations = %d, want 3 (K replicas)", insertHits)
	}
	// Disabled profiling stays inert.
	d2, _ := testDeployment(t, 3, false)
	if hk := d2.HotKeys(0); hk != nil {
		t.Errorf("HotKeys without EnableHotKeys = %v, want nil", hk)
	}
}
