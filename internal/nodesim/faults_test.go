package nodesim

import (
	"fmt"
	"testing"

	"dmap/internal/simnet"
)

// These tests drive simnet's fault plan through the full protocol stack:
// a crash window at the network layer must look exactly like a crashed
// mapping server to the querier (§III-D3), and a lossy plan must leave
// the discrete-event run bit-reproducible.

func TestFaultPlanCrashLooksLikeDeadReplica(t *testing.T) {
	d, _ := testDeployment(t, 2, false)
	e := entryFor("netcrash", 1, 7)
	if err := d.Insert(7, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)

	// The querier tries replicas in RTT order; crash the nearer one at
	// the network layer (not via d.Crash — the node code is healthy, the
	// network just eats everything addressed to it).
	placements, err := d.System().Resolver().Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	const src = 99
	first := placements[0].AS
	if d.rtt(src, placements[1].AS) < d.rtt(src, first) {
		first = placements[1].AS
	}
	if err := d.Network().SetFaults(&simnet.FaultPlan{
		Crashes: []simnet.CrashWindow{{Node: first}}, // Until ≤ From: down forever
	}); err != nil {
		t.Fatal(err)
	}

	var res *LookupResult
	if err := d.Lookup(src, e.GUID, func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil || !res.Found {
		t.Fatalf("result = %+v", res)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (timeout then failover)", res.Attempts)
	}
	if res.Latency < DefaultTimeout {
		t.Errorf("latency %v should include the %v timeout", res.Latency, DefaultTimeout)
	}
	if res.ServedBy == first {
		t.Error("served by the crashed replica")
	}
	if d.Network().FaultStats().CrashDrops == 0 {
		t.Error("no crash drops recorded")
	}

	// Healing the network restores single-attempt lookups.
	if err := d.Network().SetFaults(nil); err != nil {
		t.Fatal(err)
	}
	res = nil
	if err := d.Lookup(src, e.GUID, func(r LookupResult) { res = &r }); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if res == nil || !res.Found || res.Attempts != 1 {
		t.Fatalf("post-heal result = %+v, want 1-attempt hit", res)
	}
}

// runLossyWorkload inserts a population and runs lookups under a lossy
// fault plan, returning a printable transcript of every outcome.
func runLossyWorkload(t *testing.T) (string, simnet.FaultStats) {
	t.Helper()
	d, _ := testDeployment(t, 3, false)
	for i := 0; i < 20; i++ {
		e := entryFor(fmt.Sprintf("g%d", i), 1, i)
		if err := d.Insert(i, e, func(InsertResult) {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Sim().Run(0)

	if err := d.Network().SetFaults(&simnet.FaultPlan{
		Seed: 12345,
		Loss: 0.25,
		Crashes: []simnet.CrashWindow{
			{Node: 3, From: d.Sim().Now(), Until: d.Sim().Now() + 10_000_000},
		},
	}); err != nil {
		t.Fatal(err)
	}

	transcript := ""
	for i := 0; i < 20; i++ {
		i := i
		if err := d.Lookup((i*7)%d.System().NumAS(), entryFor(fmt.Sprintf("g%d", i), 1, i).GUID,
			func(r LookupResult) {
				transcript += fmt.Sprintf("%d: found=%v attempts=%d servedBy=%d lat=%d\n",
					i, r.Found, r.Attempts, r.ServedBy, r.Latency)
			}); err != nil {
			t.Fatal(err)
		}
	}
	d.Sim().Run(0)
	return transcript, d.Network().FaultStats()
}

func TestFaultPlanDeterministicThroughProtocol(t *testing.T) {
	t1, s1 := runLossyWorkload(t)
	t2, s2 := runLossyWorkload(t)
	if t1 != t2 {
		t.Errorf("lossy runs diverged:\n--- run 1\n%s--- run 2\n%s", t1, t2)
	}
	if s1 != s2 {
		t.Errorf("fault stats diverged: %+v vs %+v", s1, s2)
	}
	if s1.Lost == 0 {
		t.Error("loss plan dropped nothing; workload too small?")
	}
}
