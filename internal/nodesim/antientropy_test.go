package nodesim

import (
	"fmt"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/simnet"
	"dmap/internal/store"
)

// replicasOf returns every AS that should hold e: the K placements plus
// (with local replicas on) the entry's attachment ASes.
func replicasOf(t *testing.T, d *Deployment, e store.Entry) []int {
	t.Helper()
	placements, err := d.System().Resolver().Place(e.GUID)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var out []int
	for _, p := range placements {
		if !seen[p.AS] {
			seen[p.AS] = true
			out = append(out, p.AS)
		}
	}
	if d.System().LocalReplicaEnabled() {
		for _, na := range e.NAs {
			if !seen[na.AS] {
				seen[na.AS] = true
				out = append(out, na.AS)
			}
		}
	}
	return out
}

// versionAt reads the stored version of g at as (0 when absent).
func versionAt(t *testing.T, d *Deployment, as int, g guid.GUID) uint64 {
	t.Helper()
	st, err := d.System().Store(as)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := st.Version(g)
	return v
}

func TestGossipSweepConvergesBothDirections(t *testing.T) {
	d, _ := testDeployment(t, 3, false)
	e := entryFor("pair", 1, 5)
	if err := d.Insert(5, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)

	// Diverge the replicas behind the protocol's back: the first holds
	// v3, the second v2, the third loses the entry entirely.
	reps := replicasOf(t, d, e)
	if len(reps) != 3 {
		t.Fatalf("replicas = %v, want 3", reps)
	}
	for i, as := range reps {
		st, err := d.System().Store(as)
		if err != nil {
			t.Fatal(err)
		}
		switch i {
		case 0:
			up := e
			up.Version = 3
			if _, err := st.Put(up); err != nil {
				t.Fatal(err)
			}
		case 1:
			up := e
			up.Version = 2
			if _, err := st.Put(up); err != nil {
				t.Fatal(err)
			}
		case 2:
			st.Delete(e.GUID)
		}
	}

	// One sweep from the stale middle replica must pull v3 from the
	// first (its copy is fresher) and push to the third (missing) — no:
	// the third is missing the GUID, so the sweeper's digest covers it
	// and the third pulls it via the want list.
	if err := d.GossipSweep(reps[1]); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if v := versionAt(t, d, reps[1], e.GUID); v != 3 {
		t.Fatalf("sweeper version = %d, want 3 (pulled from fresher peer)", v)
	}
	if v := versionAt(t, d, reps[2], e.GUID); v < 2 {
		t.Fatalf("lost replica version = %d, want the sweeper's copy pushed back", v)
	}
	st := d.GossipStats()
	if st.Sweeps != 1 || st.DigestsSent == 0 || st.EntriesPulled == 0 || st.EntriesPushed == 0 {
		t.Fatalf("gossip stats = %+v", st)
	}

	// A full round settles the stragglers at the max version.
	if err := d.GossipRound(); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	for _, as := range reps {
		if v := versionAt(t, d, as, e.GUID); v != 3 {
			t.Fatalf("replica %d version = %d, want 3", as, v)
		}
	}
}

// TestGossipHealsPartitionDivergence is the chaos test for the repair
// protocol: partition the network, write divergent versions on both
// sides, heal, gossip — every replica (global placements and §III-C
// local copies alike) must converge to the §III-D2 max version within a
// bounded number of rounds.
func TestGossipHealsPartitionDivergence(t *testing.T) {
	d, _ := testDeployment(t, 3, true)
	numAS := d.System().NumAS()

	// Seed a population at v1 while the network is whole.
	const n = 25
	entries := make([]store.Entry, n)
	for i := range entries {
		src := (i * 13) % numAS
		entries[i] = entryFor(fmt.Sprintf("heal-%d", i), 1, src)
		if err := d.Insert(src, entries[i], func(InsertResult) {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Sim().Run(0)

	// Split the world in half. Until ≤ From: never heals on its own.
	group := make([]int, 0, numAS/2)
	for as := 0; as < numAS/2; as++ {
		group = append(group, as)
	}
	if err := d.Network().SetFaults(&simnet.FaultPlan{
		Partitions: []simnet.Partition{{From: d.Sim().Now(), Group: group}},
	}); err != nil {
		t.Fatal(err)
	}

	// Divergent writes: v2 from a source inside the group, then v3 from
	// one outside. Each write reaches only the replicas on its side, so
	// the two halves disagree about every entry until repair runs.
	for i := range entries {
		v2 := entries[i]
		v2.Version = 2
		if err := d.Insert(0, v2, func(InsertResult) {}); err != nil {
			t.Fatal(err)
		}
		v3 := entries[i]
		v3.Version = 3
		if err := d.Insert(numAS-1, v3, func(InsertResult) {}); err != nil {
			t.Fatal(err)
		}
	}
	d.Sim().Run(0)
	if d.Network().FaultStats().PartitionDrops == 0 {
		t.Fatal("partition dropped nothing; the divergence setup is broken")
	}

	// Heal. Before any gossip the divergence must still be visible:
	// some replica of some entry is below the max version.
	if err := d.Network().SetFaults(nil); err != nil {
		t.Fatal(err)
	}
	const maxVersion = 3
	stale := func() int {
		c := 0
		for _, e := range entries {
			for _, as := range replicasOf(t, d, e) {
				if versionAt(t, d, as, e.GUID) != maxVersion {
					c++
				}
			}
		}
		return c
	}
	if stale() == 0 {
		t.Fatal("replicas converged without gossip; the partition did not bite")
	}

	// Bounded gossip rounds to convergence. One round reconciles every
	// pair that shares a GUID, so a handful is ample slack.
	const maxRounds = 4
	rounds := 0
	for stale() > 0 {
		if rounds++; rounds > maxRounds {
			t.Fatalf("still %d stale replica copies after %d gossip rounds", stale(), maxRounds)
		}
		if err := d.GossipRound(); err != nil {
			t.Fatal(err)
		}
		d.Sim().Run(0)
	}

	gs := d.GossipStats()
	if gs.EntriesPulled+gs.EntriesPushed == 0 {
		t.Fatal("convergence without any repaired entries; stats are lying or the setup was degenerate")
	}
	t.Logf("converged in %d round(s): %+v", rounds, gs)
}

// TestGossipDeterministic pins bit-reproducibility: two identical
// partition-heal-gossip runs must produce identical gossip stats.
func TestGossipDeterministic(t *testing.T) {
	run := func() GossipStats {
		d, _ := testDeployment(t, 2, false)
		for i := 0; i < 12; i++ {
			e := entryFor(fmt.Sprintf("det-%d", i), 1, i)
			if err := d.Insert(i, e, func(InsertResult) {}); err != nil {
				t.Fatal(err)
			}
		}
		d.Sim().Run(0)
		group := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		if err := d.Network().SetFaults(&simnet.FaultPlan{
			Seed:       7,
			Partitions: []simnet.Partition{{From: d.Sim().Now(), Group: group}},
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			e := entryFor(fmt.Sprintf("det-%d", i), 2, i)
			if err := d.Insert((i*3)%d.System().NumAS(), e, func(InsertResult) {}); err != nil {
				t.Fatal(err)
			}
		}
		d.Sim().Run(0)
		if err := d.Network().SetFaults(nil); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 2; r++ {
			if err := d.GossipRound(); err != nil {
				t.Fatal(err)
			}
			d.Sim().Run(0)
		}
		return d.GossipStats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("gossip runs diverged: %+v vs %+v", a, b)
	}
}

func TestGossipSkipsCrashedNodes(t *testing.T) {
	d, _ := testDeployment(t, 2, false)
	e := entryFor("crashed-sweep", 1, 3)
	if err := d.Insert(3, e, func(InsertResult) {}); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	reps := replicasOf(t, d, e)

	// Diverge, then crash the stale replica: its sweep is a no-op and
	// pushes to it are dropped at the node layer.
	up := e
	up.Version = 2
	st, err := d.System().Store(reps[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put(up); err != nil {
		t.Fatal(err)
	}
	d.Crash(reps[1])
	if err := d.GossipSweep(reps[1]); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if d.GossipStats().Sweeps != 0 {
		t.Fatal("crashed node swept")
	}
	if v := versionAt(t, d, reps[1], e.GUID); v != 1 {
		t.Fatalf("crashed replica advanced to %d", v)
	}

	// Restore: the next full round repairs it.
	d.Restore(reps[1])
	if err := d.GossipRound(); err != nil {
		t.Fatal(err)
	}
	d.Sim().Run(0)
	if v := versionAt(t, d, reps[1], e.GUID); v != 2 {
		t.Fatalf("restored replica version = %d, want 2", v)
	}
}
