// Package nodesim runs DMap as an event-driven protocol over simnet: one
// node per AS border gateway, real insert/update/lookup messages with
// topology latencies, querier-side timeouts and retries. Where
// core.System evaluates latencies in closed form, nodesim exercises the
// interleavings: a lookup racing a mobility update observes the old
// mapping (§III-D2), a crashed replica costs a timeout before the next
// replica is tried (§III-D3).
package nodesim

import (
	"fmt"
	"sort"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/simnet"
	"dmap/internal/store"
	"dmap/internal/trace"
)

// message payloads
type (
	insertReq struct {
		entry store.Entry
		reqID uint64
	}
	insertAck struct {
		reqID uint64
	}
	lookupReq struct {
		guid  guid.GUID
		reqID uint64
	}
	lookupResp struct {
		reqID uint64
		entry store.Entry
		found bool
	}
)

// InsertResult reports a completed insert/update: Latency is the time
// until the last replica acknowledged (the paper's max-over-K update
// cost).
type InsertResult struct {
	Latency simnet.Time
	Acks    int
}

// LookupResult reports a completed lookup.
type LookupResult struct {
	Entry     store.Entry
	Found     bool
	Latency   simnet.Time
	Attempts  int
	ServedBy  int
	UsedLocal bool
}

// DefaultTimeout is the querier's per-attempt timeout.
const DefaultTimeout = simnet.Time(2_000_000) // 2 s

// Deployment is an event-driven DMap network.
type Deployment struct {
	sys     *core.System
	net     *simnet.Network
	oracle  simnet.LatencyOracle
	timeout simnet.Time

	nextReq uint64
	inserts map[uint64]*insertOp
	lookups map[uint64]*lookupOp
	crashed []bool
	gossip  GossipStats

	// hot, when enabled, profiles each simulated node's request stream
	// with Space-Saving top-K trackers — the simulated counterpart of a
	// live node's /debug/hotkeys, for studying §IV-C load skew under
	// synthetic workloads.
	hot []*trace.HotKeys
}

type insertOp struct {
	start   simnet.Time
	pending int
	acks    int
	done    func(InsertResult)
}

type lookupOp struct {
	g         guid.GUID
	src       int
	start     simnet.Time
	order     []int // replica ASs in selection order
	next      int   // next index in order to try
	attempts  int
	answered  bool
	localHit  bool
	localTime simnet.Time
	local     store.Entry
	done      func(LookupResult)
}

// NewDeployment binds one DMap node per AS onto the network. timeout ≤ 0
// selects DefaultTimeout.
func NewDeployment(sys *core.System, sim *simnet.Sim, oracle simnet.LatencyOracle, timeout simnet.Time) (*Deployment, error) {
	if sys == nil {
		return nil, fmt.Errorf("nodesim: nil system")
	}
	net, err := simnet.NewNetwork(sim, oracle, sys.NumAS())
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	d := &Deployment{
		sys:     sys,
		net:     net,
		oracle:  oracle,
		timeout: timeout,
		inserts: make(map[uint64]*insertOp),
		lookups: make(map[uint64]*lookupOp),
		crashed: make([]bool, sys.NumAS()),
	}
	for as := 0; as < sys.NumAS(); as++ {
		as := as
		if err := net.Bind(as, simnet.HandlerFunc(func(n *simnet.Network, msg simnet.Message) {
			d.handle(as, msg)
		})); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// Sim returns the underlying scheduler.
func (d *Deployment) Sim() *simnet.Sim { return d.net.Sim() }

// Network returns the underlying simnet, e.g. to install a
// simnet.FaultPlan (loss, delay, crash windows, partitions) under the
// deployment's protocol traffic.
func (d *Deployment) Network() *simnet.Network { return d.net }

// System returns the underlying DMap system.
func (d *Deployment) System() *core.System { return d.sys }

// EnableHotKeys attaches a lookup/insert hot-GUID tracker pair of
// capacity k to every simulated node. Call before driving traffic.
func (d *Deployment) EnableHotKeys(k int) {
	d.hot = make([]*trace.HotKeys, d.sys.NumAS())
	for i := range d.hot {
		d.hot[i] = trace.NewHotKeys(k)
	}
}

// HotKeys returns AS as's trackers (nil when profiling is not enabled).
func (d *Deployment) HotKeys(as int) *trace.HotKeys {
	if as < 0 || as >= len(d.hot) {
		return nil
	}
	return d.hot[as]
}

// Crash marks an AS's mapping server as dead: requests to it are consumed
// without reply, so queriers hit their timeout (§III-D3).
func (d *Deployment) Crash(as int) { d.crashed[as] = true }

// Restore brings a crashed AS back (its store contents survive; a real
// deployment would resynchronize, which the paper leaves to replication).
func (d *Deployment) Restore(as int) { d.crashed[as] = false }

// handle dispatches a message arriving at AS self.
func (d *Deployment) handle(self int, msg simnet.Message) {
	if d.handleGossip(self, msg) {
		return
	}
	switch p := msg.Payload.(type) {
	case insertReq:
		if d.crashed[self] {
			return
		}
		st, err := d.sys.Store(self)
		if err != nil {
			return
		}
		d.HotKeys(self).ObserveInsert(p.entry.GUID)
		// Put may reject stale versions; the ack is sent either way (the
		// protocol acknowledges receipt, not freshness).
		_, _ = st.Put(p.entry)
		_ = d.net.Send(self, msg.From, insertAck{reqID: p.reqID})
	case insertAck:
		op, ok := d.inserts[p.reqID]
		if !ok {
			return
		}
		op.acks++
		op.pending--
		if op.pending == 0 {
			delete(d.inserts, p.reqID)
			op.done(InsertResult{Latency: d.Sim().Now() - op.start, Acks: op.acks})
		}
	case lookupReq:
		if d.crashed[self] {
			return // no reply: querier times out
		}
		st, err := d.sys.Store(self)
		if err != nil {
			return
		}
		d.HotKeys(self).ObserveLookup(p.guid)
		e, ok := st.Get(p.guid)
		_ = d.net.Send(self, msg.From, lookupResp{reqID: p.reqID, entry: e, found: ok})
	case lookupResp:
		d.handleLookupResp(msg.From, p)
	}
}

// Insert stores e at its K replicas (plus the local copy) from srcAS,
// invoking done when every replica acknowledged. Update is the same
// operation with a higher version.
func (d *Deployment) Insert(srcAS int, e store.Entry, done func(InsertResult)) error {
	placements, err := d.sys.Resolver().Place(e.GUID)
	if err != nil {
		return err
	}
	if d.sys.LocalReplicaEnabled() {
		st, err := d.sys.Store(srcAS)
		if err != nil {
			return err
		}
		if _, err := st.Put(e); err != nil {
			return err
		}
	}
	d.nextReq++
	op := &insertOp{start: d.Sim().Now(), pending: len(placements), done: done}
	d.inserts[d.nextReq] = op
	for _, p := range placements {
		if err := d.net.Send(srcAS, p.AS, insertReq{entry: e, reqID: d.nextReq}); err != nil {
			return err
		}
	}
	return nil
}

// Lookup resolves g from srcAS: the closest replica (by the oracle's RTT
// estimate) is tried first, with a parallel local check, falling to the
// next replica on a miss reply or timeout. done fires exactly once.
func (d *Deployment) Lookup(srcAS int, g guid.GUID, done func(LookupResult)) error {
	placements, err := d.sys.Resolver().Place(g)
	if err != nil {
		return err
	}
	order := make([]int, len(placements))
	for i, p := range placements {
		order[i] = p.AS
	}
	sort.Slice(order, func(i, j int) bool {
		ri, rj := d.rtt(srcAS, order[i]), d.rtt(srcAS, order[j])
		if ri != rj {
			return ri < rj
		}
		return order[i] < order[j]
	})

	d.nextReq++
	op := &lookupOp{
		g:     g,
		src:   srcAS,
		start: d.Sim().Now(),
		order: order,
		done:  done,
	}
	reqID := d.nextReq
	d.lookups[reqID] = op

	// Parallel local lookup (§III-C): modeled as an intra-AS round trip.
	if d.sys.LocalReplicaEnabled() && !d.crashed[srcAS] {
		st, err := d.sys.Store(srcAS)
		if err != nil {
			return err
		}
		if e, ok := st.Get(g); ok {
			localRTT := 2 * d.oracle.OneWay(srcAS, srcAS)
			op.localHit = true
			op.localTime = d.Sim().Now() + localRTT
			op.local = e
			if err := d.Sim().After(localRTT, func() {
				d.maybeAnswerLocal(reqID)
			}); err != nil {
				return err
			}
		}
	}
	return d.tryNext(reqID)
}

func (d *Deployment) rtt(a, b int) simnet.Time {
	return d.oracle.OneWay(a, b) + d.oracle.OneWay(b, a)
}

// maybeAnswerLocal completes the lookup from the local copy if no global
// replica has answered yet.
func (d *Deployment) maybeAnswerLocal(reqID uint64) {
	op, ok := d.lookups[reqID]
	if !ok || op.answered {
		return
	}
	op.answered = true
	delete(d.lookups, reqID)
	op.done(LookupResult{
		Entry:     op.local,
		Found:     true,
		Latency:   d.Sim().Now() - op.start,
		Attempts:  op.attempts,
		ServedBy:  op.src,
		UsedLocal: true,
	})
}

// tryNext contacts the next replica in order, arming a timeout.
func (d *Deployment) tryNext(reqID uint64) error {
	op, ok := d.lookups[reqID]
	if !ok || op.answered {
		return nil
	}
	if op.next >= len(op.order) {
		// All replicas exhausted; if a local answer is in flight it will
		// still fire. Otherwise the lookup fails now.
		if op.localHit {
			return nil
		}
		op.answered = true
		delete(d.lookups, reqID)
		op.done(LookupResult{
			Found:    false,
			Latency:  d.Sim().Now() - op.start,
			Attempts: op.attempts,
		})
		return nil
	}
	target := op.order[op.next]
	op.next++
	op.attempts++
	attemptIdx := op.next // value after increment identifies this attempt
	if err := d.net.Send(op.src, target, lookupReq{guid: op.g, reqID: reqID}); err != nil {
		return err
	}
	return d.Sim().After(d.timeout, func() {
		cur, ok := d.lookups[reqID]
		if !ok || cur.answered {
			return
		}
		// Fire only if no later attempt superseded this one.
		if cur.next == attemptIdx {
			_ = d.tryNext(reqID)
		}
	})
}

func (d *Deployment) handleLookupResp(from int, p lookupResp) {
	op, ok := d.lookups[p.reqID]
	if !ok || op.answered {
		return
	}
	if !p.found {
		// "GUID missing" (churn inconsistency): move on immediately.
		_ = d.tryNext(p.reqID)
		return
	}
	op.answered = true
	delete(d.lookups, p.reqID)
	op.done(LookupResult{
		Entry:    p.entry,
		Found:    true,
		Latency:  d.Sim().Now() - op.start,
		Attempts: op.attempts,
		ServedBy: from,
	})
}
