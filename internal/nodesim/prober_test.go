package nodesim

import (
	"reflect"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/obs"
	"dmap/internal/simnet"
)

// proberWorld builds a deployment plus a prober whose targets are the
// sentinel's actual replica set — the ASs anti-entropy reconciles — so
// gossip repair is observable from the outside.
func proberWorld(t *testing.T, sentinels int, slo obs.SLOConfig) (*Prober, *Deployment, []int) {
	t.Helper()
	d, _ := testDeployment(t, 3, false)

	// All sentinels must share a replica set for every target to be a
	// replica of every sentinel; with one sentinel that is trivially so.
	if sentinels != 1 {
		t.Fatalf("proberWorld supports exactly one sentinel, got %d", sentinels)
	}
	g := guid.New("dmap.obs.sentinel.0")
	placements, err := d.System().Resolver().Place(g)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	var targets []int
	for _, p := range placements {
		if !seen[p.AS] {
			seen[p.AS] = true
			targets = append(targets, p.AS)
		}
	}
	if len(targets) < 3 {
		t.Fatalf("sentinel has %d distinct replicas, want ≥ 3", len(targets))
	}
	src := 0
	for seen[src] {
		src++
	}
	p, err := NewProber(d, ProberConfig{
		Src:          src,
		Targets:      targets,
		Sentinels:    1,
		Availability: slo,
		Staleness:    slo,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p, d, targets
}

var chaosSLO = obs.SLOConfig{Objective: 0.9, Window: 6, ShortWindow: 1, FastBurn: 2, SlowBurn: 2}

func TestProberHealthyRounds(t *testing.T) {
	p, _, targets := proberWorld(t, 1, chaosSLO)
	var st obs.ProbeStatus
	for i := 0; i < 3; i++ {
		st = p.Round()
	}
	if st.Rounds != 3 || st.Breaching() {
		t.Fatalf("healthy world: %+v", st)
	}
	if len(st.Targets) != len(targets) {
		t.Fatalf("%d target statuses, want %d", len(st.Targets), len(targets))
	}
	for _, ts := range st.Targets {
		if !ts.WriteOK || !ts.ReadOK || ts.Stale || ts.Lag != 0 || ts.Repaired {
			t.Errorf("healthy target: %+v", ts)
		}
	}
	for _, slo := range st.SLOs {
		if slo.Bad != 0 {
			t.Errorf("healthy SLO has bad probes: %+v", slo)
		}
	}
}

func TestProberFlagsCrashedTarget(t *testing.T) {
	p, d, targets := proberWorld(t, 1, chaosSLO)
	p.Round()
	d.Crash(targets[1])
	st := p.Round()
	ts := st.Targets[1]
	if ts.WriteOK || ts.ReadOK || ts.Err == "" {
		t.Fatalf("crashed target probed OK: %+v", ts)
	}
	if !st.Breaching() {
		t.Fatal("availability breach not flagged for crashed replica")
	}
	d.Restore(targets[1])
}

// TestProberDetectsPartitionBeforeGossipHeals is the acceptance-path
// chaos scenario: an injected partition must be FLAGGED by the
// black-box prober (availability breach while cut off, staleness
// breach once healed but unrepaired) strictly before anti-entropy
// converges the divergence, and the breach must clear after gossip
// delivers the missed version.
func TestProberDetectsPartitionBeforeGossipHeals(t *testing.T) {
	p, d, targets := proberWorld(t, 1, chaosSLO)
	g := guid.New("dmap.obs.sentinel.0")
	cut := targets[0]

	// Two healthy seeding rounds: every replica acks versions 1 and 2.
	p.Round()
	if st := p.Round(); st.Breaching() {
		t.Fatalf("healthy world breaching: %+v", st)
	}

	// Cut one replica off. Its writes and reads now time out.
	if err := d.Network().SetFaults(&simnet.FaultPlan{
		Partitions: []simnet.Partition{{From: d.Sim().Now(), Group: []int{cut}}},
	}); err != nil {
		t.Fatal(err)
	}
	st := p.Round() // writes version 3 everywhere except the cut replica
	if ts := st.Targets[0]; ts.WriteOK || ts.ReadOK {
		t.Fatalf("partitioned replica probed OK: %+v", ts)
	}
	if !st.Breaching() || !st.SLOs[0].Breaching {
		t.Fatalf("availability breach not flagged during partition: %+v", st.SLOs)
	}
	if got := versionAt(t, d, cut, g); got != 2 {
		t.Fatalf("cut replica at version %d, want stuck at 2", got)
	}

	// Heal the network. BEFORE any gossip runs, a read-only round must
	// observe the divergence as staleness: the cut replica answers, but
	// one version behind the newest acknowledged write.
	if err := d.Network().SetFaults(nil); err != nil {
		t.Fatal(err)
	}
	if d.GossipStats().Sweeps != 0 {
		t.Fatal("gossip ran before the prober's staleness check")
	}
	st = p.ReadRound()
	ts := st.Targets[0]
	if !ts.ReadOK || !ts.Stale || ts.Lag != 1 {
		t.Fatalf("healed-but-unrepaired replica not flagged stale: %+v", ts)
	}
	if !st.Breaching() || !st.SLOs[1].Breaching {
		t.Fatalf("staleness breach not flagged before gossip: %+v", st.SLOs)
	}
	if ts.Repaired || st.Repaired != 0 {
		t.Fatalf("repair claimed before gossip ran: %+v", ts)
	}

	// Anti-entropy converges the replica…
	rounds := 0
	for ; rounds < 4 && versionAt(t, d, cut, g) != 3; rounds++ {
		if err := d.GossipRound(); err != nil {
			t.Fatal(err)
		}
		d.Sim().Run(0)
	}
	if got := versionAt(t, d, cut, g); got != 3 {
		t.Fatalf("gossip did not converge the cut replica: version %d after %d rounds", got, rounds)
	}

	// …and the prober observes the convergence from outside: the cut
	// replica now answers a version the prober never wrote to it.
	st = p.ReadRound()
	ts = st.Targets[0]
	if !ts.Repaired || ts.Stale || ts.Lag != 0 {
		t.Fatalf("repair not observed: %+v", ts)
	}
	if st.Repaired == 0 {
		t.Fatal("convergence event not counted")
	}

	// Healthy probing resumes and the breach clears as the bad rounds
	// slide out of both burn windows.
	for i := 0; i < chaosSLO.Window+1; i++ {
		st = p.Round()
	}
	if st.Breaching() {
		t.Fatalf("SLOs still breaching %d healthy rounds after repair: %+v", chaosSLO.Window+1, st.SLOs)
	}
	for _, ts := range st.Targets {
		if !ts.WriteOK || !ts.ReadOK || ts.Stale {
			t.Errorf("post-recovery target: %+v", ts)
		}
	}
}

// TestProberDeterministic pins the twin to virtual time: two identical
// scenarios produce identical probe statuses, byte for byte.
func TestProberDeterministic(t *testing.T) {
	run := func() []obs.ProbeStatus {
		p, d, targets := proberWorld(t, 1, chaosSLO)
		var out []obs.ProbeStatus
		out = append(out, p.Round())
		d.Crash(targets[2])
		out = append(out, p.Round())
		d.Restore(targets[2])
		out = append(out, p.ReadRound(), p.Round())
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical scenarios diverged:\n%+v\nvs\n%+v", a, b)
	}
}
