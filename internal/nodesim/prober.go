// Deterministic twin of the live black-box prober (internal/obs): the
// same sentinel-write/read rounds, staleness accounting and SLO burn
// windows, driven through the simulated network instead of TCP. Probe
// requests are ordinary insertReq/lookupReq messages with self-armed
// timeouts, so partitions, crashes, loss and delay faults hit the
// prober exactly as they hit protocol traffic — which is the point:
// the chaos suite can assert that an injected partition is VISIBLE to
// the prober before anti-entropy repairs the divergence.
package nodesim

import (
	"fmt"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/obs"
	"dmap/internal/simnet"
	"dmap/internal/store"
)

// ProberConfig configures a simulated prober.
type ProberConfig struct {
	// Src is the AS the prober runs from (its vantage point).
	Src int
	// Targets are the ASs probed each round. Every target acts as a
	// replica of the sentinel GUIDs — nodes store whatever they are
	// sent, exactly like the live deployment.
	Targets []int
	// Sentinels is the number of sentinel GUIDs (default 2).
	Sentinels int
	// Timeout is the per-operation timeout (≤0 selects the
	// deployment's lookup timeout).
	Timeout simnet.Time
	// MaxLag is the acceptable version lag for freshness (default 0).
	MaxLag uint64
	// BaseVersion seeds the sentinel version counter (default 0; the
	// first round writes version 1 — the simulator starts from a clean
	// world, so no restart-supersession concern exists here).
	BaseVersion uint64
	// Availability and Staleness configure the SLO trackers, sharing
	// the live prober's defaults.
	Availability obs.SLOConfig
	Staleness    obs.SLOConfig
}

// Prober drives probe rounds through the deployment's simulated
// network. Round and ReadRound advance virtual time (they drain the
// event queue); interleave them with traffic and GossipRound calls as
// the scenario requires.
type Prober struct {
	d   *Deployment
	cfg ProberConfig

	sentinels []guid.GUID
	version   uint64
	rounds    uint64
	repaired  uint64

	availability *obs.SLOTracker
	staleness    *obs.SLOTracker

	// acked[t][s] is the newest version target t acknowledged for
	// sentinel s (grow-only, repair observations included); maxAcked[s]
	// is the newest version acked anywhere — the freshness reference.
	acked    [][]uint64
	maxAcked []uint64

	status obs.ProbeStatus
}

// NewProber attaches a prober to d.
func NewProber(d *Deployment, cfg ProberConfig) (*Prober, error) {
	if cfg.Src < 0 || cfg.Src >= d.sys.NumAS() {
		return nil, fmt.Errorf("nodesim: prober src AS %d out of range", cfg.Src)
	}
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("nodesim: prober needs at least one target")
	}
	for _, t := range cfg.Targets {
		if t < 0 || t >= d.sys.NumAS() {
			return nil, fmt.Errorf("nodesim: prober target AS %d out of range", t)
		}
	}
	if cfg.Sentinels <= 0 {
		cfg.Sentinels = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = d.timeout
	}
	if cfg.Availability.Name == "" {
		cfg.Availability.Name = "availability"
	}
	if cfg.Staleness.Name == "" {
		cfg.Staleness.Name = "staleness"
	}
	p := &Prober{
		d:            d,
		cfg:          cfg,
		version:      cfg.BaseVersion,
		availability: obs.NewSLOTracker(cfg.Availability),
		staleness:    obs.NewSLOTracker(cfg.Staleness),
		acked:        make([][]uint64, len(cfg.Targets)),
		maxAcked:     make([]uint64, cfg.Sentinels),
	}
	for i := 0; i < cfg.Sentinels; i++ {
		p.sentinels = append(p.sentinels, guid.New(fmt.Sprintf("dmap.obs.sentinel.%d", i)))
	}
	for i := range p.acked {
		p.acked[i] = make([]uint64, cfg.Sentinels)
	}
	return p, nil
}

// Status returns the latest round's status.
func (p *Prober) Status() obs.ProbeStatus { return p.status }

// Round runs one full probe round — a write pass, then a read pass —
// draining the simulator between passes so reads observe the round's
// acknowledged writes.
func (p *Prober) Round() obs.ProbeStatus {
	p.version++
	targets := p.freshTargetStatus()
	p.writePass(targets)
	p.d.Sim().Run(0)
	p.readPass(targets)
	p.d.Sim().Run(0)
	return p.finishRound(targets)
}

// ReadRound runs a read-only probe round: no sentinel writes, so a
// stale replica stays observably stale. This is the pass a chaos
// scenario uses right after a partition heals — the prober must see
// the divergence BEFORE anti-entropy repairs it.
func (p *Prober) ReadRound() obs.ProbeStatus {
	targets := p.freshTargetStatus()
	p.readPass(targets)
	p.d.Sim().Run(0)
	return p.finishRound(targets)
}

func (p *Prober) freshTargetStatus() []obs.ProbeTargetStatus {
	targets := make([]obs.ProbeTargetStatus, len(p.cfg.Targets))
	for i, as := range p.cfg.Targets {
		targets[i] = obs.ProbeTargetStatus{Name: fmt.Sprintf("as%d", as), WriteOK: true, ReadOK: true}
	}
	return targets
}

func (p *Prober) writePass(targets []obs.ProbeTargetStatus) {
	v := p.version
	for ti, as := range p.cfg.Targets {
		for si, g := range p.sentinels {
			ti, si := ti, si
			p.insertAt(as, g, func(acked bool) {
				p.availability.Observe(acked)
				if !acked {
					targets[ti].WriteOK = false
					targets[ti].Err = "insert timed out"
					return
				}
				if v > p.acked[ti][si] {
					p.acked[ti][si] = v
				}
				if v > p.maxAcked[si] {
					p.maxAcked[si] = v
				}
			})
		}
	}
}

func (p *Prober) readPass(targets []obs.ProbeTargetStatus) {
	for ti := range p.cfg.Targets {
		for si, g := range p.sentinels {
			ti, si := ti, si
			start := p.d.Sim().Now()
			p.lookupAt(p.cfg.Targets[ti], g, func(responded, found bool, e store.Entry) {
				p.availability.Observe(responded)
				if !responded {
					targets[ti].ReadOK = false
					targets[ti].Err = "lookup timed out"
					return
				}
				if lat := uint64(p.d.Sim().Now() - start); lat > targets[ti].LatUs {
					targets[ti].LatUs = lat
				}
				ref := p.maxAcked[si]
				if ref == 0 {
					return // nothing acked anywhere yet
				}
				var lag uint64
				switch {
				case !found:
					lag = ref
				case e.Version < ref:
					lag = ref - e.Version
				}
				fresh := lag <= p.cfg.MaxLag
				p.staleness.Observe(fresh)
				if !fresh {
					targets[ti].Stale = true
				}
				if lag > targets[ti].Lag {
					targets[ti].Lag = lag
				}
				// Convergence: a version this prober never wrote to the
				// target arrived there — anti-entropy delivered it.
				if found && e.Version > p.acked[ti][si] {
					targets[ti].Repaired = true
					p.repaired++
					p.acked[ti][si] = e.Version
				}
			})
		}
	}
}

func (p *Prober) finishRound(targets []obs.ProbeTargetStatus) obs.ProbeStatus {
	p.rounds++
	// Snapshot status BEFORE advancing: Advance opens an empty round,
	// and the fast burn window must cover the round just probed.
	p.status = obs.ProbeStatus{
		Rounds:    p.rounds,
		Sentinels: p.cfg.Sentinels,
		SLOs:      []obs.SLOStatus{p.availability.Status(), p.staleness.Status()},
		Targets:   targets,
		Repaired:  p.repaired,
	}
	p.availability.Advance()
	p.staleness.Advance()
	return p.status
}

// sentinelEntry builds the canary entry for the current version.
func (p *Prober) sentinelEntry(g guid.GUID) store.Entry {
	return store.Entry{
		GUID:    g,
		NAs:     []store.NA{{AS: p.cfg.Src, Addr: netaddr.AddrFromOctets(127, 0, 0, 1)}},
		Version: p.version,
	}
}

// insertAt sends one direct insert to target with a self-armed timeout.
// done fires exactly once: acked=true on the node's ack, false on
// timeout. (Deployment.Insert offers no timeout — a dropped insertReq
// would leave the op pending forever, which a prober cannot afford.)
func (p *Prober) insertAt(target int, g guid.GUID, done func(acked bool)) {
	d := p.d
	d.nextReq++
	reqID := d.nextReq
	d.inserts[reqID] = &insertOp{
		start:   d.Sim().Now(),
		pending: 1,
		done:    func(InsertResult) { done(true) },
	}
	if err := d.net.Send(p.cfg.Src, target, insertReq{entry: p.sentinelEntry(g), reqID: reqID}); err != nil {
		delete(d.inserts, reqID)
		done(false)
		return
	}
	_ = d.Sim().After(p.cfg.Timeout, func() {
		if _, ok := d.inserts[reqID]; ok {
			delete(d.inserts, reqID)
			done(false)
		}
	})
}

// lookupAt sends one direct lookup to target with a self-armed timeout.
// done fires exactly once: responded=false means timeout, otherwise
// found/e carry the node's answer (found=false = the node answered
// "not here", which is an AVAILABLE but possibly stale answer).
func (p *Prober) lookupAt(target int, g guid.GUID, done func(responded, found bool, e store.Entry)) {
	d := p.d
	d.nextReq++
	reqID := d.nextReq
	// order is already exhausted (next=1 of 1): a miss reply answers
	// immediately instead of retrying elsewhere — the prober wants this
	// target's own answer, not the cluster's best.
	d.lookups[reqID] = &lookupOp{
		g:        g,
		src:      p.cfg.Src,
		start:    d.Sim().Now(),
		order:    []int{target},
		next:     1,
		attempts: 1,
		done:     func(r LookupResult) { done(true, r.Found, r.Entry) },
	}
	if err := d.net.Send(p.cfg.Src, target, lookupReq{guid: g, reqID: reqID}); err != nil {
		delete(d.lookups, reqID)
		done(false, false, store.Entry{})
		return
	}
	_ = d.Sim().After(p.cfg.Timeout, func() {
		op, ok := d.lookups[reqID]
		if !ok || op.answered {
			return
		}
		op.answered = true
		delete(d.lookups, reqID)
		done(false, false, store.Entry{})
	})
}
