// Anti-entropy gossip over simnet: the event-driven counterpart of the
// server's background repair sweeps (DESIGN.md §12). Each sweep sends
// every replica peer a *filtered* digest — fingerprints of the GUIDs the
// sweeper believes both sides replicate — and the peer answers with its
// fresher copies plus the GUIDs it wants pushed. All traffic rides
// net.Send, so fault plans (partitions, crashes, loss) apply: a healed
// partition converges through ordinary gossip rounds, which is exactly
// what the chaos tests exercise.
package nodesim

import (
	"sort"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/simnet"
	"dmap/internal/store"
)

// gossip message payloads
type (
	digestReq struct {
		page  []store.Digest // shared-GUID fingerprints, keyspace order
		reqID uint64
	}
	digestResp struct {
		reqID uint64
		newer []store.Entry // peer's fresher copies: sweeper pulls
		want  []guid.GUID   // sweeper's fresher copies: peer asks for a push
	}
	repairPush struct {
		entries []store.Entry
	}
)

// GossipStats counts cumulative anti-entropy activity.
type GossipStats struct {
	// Sweeps counts GossipSweep calls that ran (crashed sweepers skip).
	Sweeps int
	// DigestsSent counts digest pages sent to peers.
	DigestsSent int
	// EntriesPulled counts entries a sweeper applied from peer replies.
	EntriesPulled int
	// EntriesPushed counts entries peers applied from sweeper pushes.
	EntriesPushed int
}

// GossipStats returns the cumulative gossip counters.
func (d *Deployment) GossipStats() GossipStats { return d.gossip }

// replicaPeers returns the ASes besides as that replicate e: the K
// placement ASes plus — with §III-C local replicas on — the entry's
// attachment ASes.
func (d *Deployment) replicaPeers(as int, e store.Entry) ([]int, error) {
	placements, err := d.sys.Resolver().Place(e.GUID)
	if err != nil {
		return nil, err
	}
	peers := make([]int, 0, len(placements)+len(e.NAs))
	for _, p := range placements {
		if p.AS != as {
			peers = append(peers, p.AS)
		}
	}
	if d.sys.LocalReplicaEnabled() {
		for _, na := range e.NAs {
			if na.AS != as {
				peers = append(peers, na.AS)
			}
		}
	}
	return peers, nil
}

// GossipSweep runs one anti-entropy sweep from as: it fingerprints every
// mapping it stores, groups the digests by replica peer, and sends each
// peer its page. Replies pull the peer's fresher copies and push back
// the sweeper's — one sweep reconciles both directions for every GUID
// the sweeper holds; GUIDs it is missing entirely arrive when the peers
// holding them sweep. Crashed sweepers do nothing.
func (d *Deployment) GossipSweep(as int) error {
	if d.crashed[as] {
		return nil
	}
	st, err := d.sys.Store(as)
	if err != nil {
		return err
	}
	pages := make(map[int][]store.Digest)
	var rangeErr error
	st.Range(func(e store.Entry) bool {
		peers, err := d.replicaPeers(as, e)
		if err != nil {
			rangeErr = err
			return false
		}
		for _, p := range peers {
			pages[p] = append(pages[p], store.Digest{GUID: e.GUID, Version: e.Version})
		}
		return true
	})
	if rangeErr != nil {
		return rangeErr
	}
	// Deterministic send order: peers ascending, digests in keyspace
	// order (Range iterates maps, so sort both).
	peers := make([]int, 0, len(pages))
	for p := range pages {
		peers = append(peers, p)
	}
	sort.Ints(peers)
	d.gossip.Sweeps++
	for _, p := range peers {
		page := pages[p]
		sort.Slice(page, func(i, j int) bool {
			return guid.Compare(page[i].GUID, page[j].GUID) < 0
		})
		d.nextReq++
		d.gossip.DigestsSent++
		if err := d.net.Send(as, p, digestReq{page: page, reqID: d.nextReq}); err != nil {
			return err
		}
	}
	return nil
}

// GossipRound sweeps every AS once, in AS order. Driving the simulator
// afterwards (Sim().Run or RunUntil) delivers the whole exchange.
func (d *Deployment) GossipRound() error {
	for as := 0; as < d.sys.NumAS(); as++ {
		if err := d.GossipSweep(as); err != nil {
			return err
		}
	}
	return nil
}

// handleGossip dispatches the anti-entropy payloads; it returns false if
// the message was not a gossip message.
func (d *Deployment) handleGossip(self int, msg simnet.Message) bool {
	switch p := msg.Payload.(type) {
	case digestReq:
		if d.crashed[self] {
			return true
		}
		st, err := d.sys.Store(self)
		if err != nil {
			return true
		}
		newer, want := core.DiffDigests(st, p.page, true)
		_ = d.net.Send(self, msg.From, digestResp{reqID: p.reqID, newer: newer, want: want})
	case digestResp:
		if d.crashed[self] {
			return true
		}
		st, err := d.sys.Store(self)
		if err != nil {
			return true
		}
		n, _ := core.ApplyEntries(st, p.newer)
		d.gossip.EntriesPulled += n
		if len(p.want) > 0 {
			entries := make([]store.Entry, 0, len(p.want))
			for _, g := range p.want {
				if e, ok := st.Get(g); ok {
					entries = append(entries, e)
				}
			}
			if len(entries) > 0 {
				_ = d.net.Send(self, msg.From, repairPush{entries: entries})
			}
		}
	case repairPush:
		if d.crashed[self] {
			return true
		}
		st, err := d.sys.Store(self)
		if err != nil {
			return true
		}
		n, _ := core.ApplyEntries(st, p.entries)
		d.gossip.EntriesPushed += n
	default:
		return false
	}
	return true
}
