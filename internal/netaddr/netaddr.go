// Package netaddr provides IPv4 network addresses, prefixes, and the
// XOR-weighted "IP distance" metric used by DMap's deputy-AS selection.
//
// DMap hashes GUIDs directly into the 32-bit IPv4 address space and stores
// each mapping at the autonomous system announcing the hashed address.
// This package supplies the address arithmetic that the prefix table and
// the hole-handling protocol (Algorithm 1 of the paper) are built on.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is a 32-bit IPv4 address. The zero value is 0.0.0.0.
type Addr uint32

// AddrFromOctets assembles an address from its four dotted-quad octets.
func AddrFromOctets(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.1".
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: parse %q: want 4 octets, got %d", s, len(parts))
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("netaddr: parse %q: bad octet %q", s, p)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (o0, o1, o2, o3 byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String formats a in dotted-quad notation.
func (a Addr) String() string {
	o0, o1, o2, o3 := a.Octets()
	var b strings.Builder
	b.Grow(15)
	b.WriteString(strconv.Itoa(int(o0)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o1)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o2)))
	b.WriteByte('.')
	b.WriteString(strconv.Itoa(int(o3)))
	return b.String()
}

// Distance returns the IP distance between a and b as defined in §III-B of
// the paper:
//
//	distance(A, B) = Σ_{i=0}^{31} |A_i − B_i| · 2^i
//
// where A_i is the i-th bit of A. Since |A_i − B_i| = A_i XOR B_i, this is
// exactly the XOR metric: distance(A, B) = A ^ B interpreted as an integer.
func (a Addr) Distance(b Addr) uint32 {
	return uint32(a ^ b)
}

// Prefix is an IPv4 CIDR block: the Bits leading bits of Addr identify the
// block and the remaining bits are free. The zero value is 0.0.0.0/0,
// covering the whole address space.
type Prefix struct {
	addr Addr
	bits int
}

// ErrBadPrefix reports an out-of-range prefix length.
var ErrBadPrefix = errors.New("netaddr: prefix length out of range [0,32]")

// NewPrefix builds the prefix addr/bits, masking addr down to its network
// address. It returns ErrBadPrefix if bits is outside [0, 32].
func NewPrefix(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: %d", ErrBadPrefix, bits)
	}
	return Prefix{addr: addr & Addr(maskFor(bits)), bits: bits}, nil
}

// MustPrefix is NewPrefix for statically known-good inputs; it panics on
// error and is intended for tests and package-level tables.
func MustPrefix(addr Addr, bits int) Prefix {
	p, err := NewPrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses CIDR notation such as "10.0.0.0/8".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("netaddr: parse %q: missing '/'", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("netaddr: parse %q: bad length", s)
	}
	return NewPrefix(addr, bits)
}

func maskFor(bits int) uint32 {
	if bits == 0 {
		return 0
	}
	return ^uint32(0) << (32 - bits)
}

// Addr returns the network (first) address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the prefix length of p.
func (p Prefix) Bits() int { return p.bits }

// Size returns the number of addresses covered by p (2^(32-bits)).
func (p Prefix) Size() uint64 { return 1 << (32 - p.bits) }

// Last returns the last (highest) address in p.
func (p Prefix) Last() Addr { return p.addr | Addr(^maskFor(p.bits)) }

// Contains reports whether a falls inside p.
func (p Prefix) Contains(a Addr) bool {
	return a&Addr(maskFor(p.bits)) == p.addr
}

// Overlaps reports whether p and q share at least one address, i.e. whether
// one contains the other's network address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Contains(q.addr) || q.Contains(p.addr)
}

// String formats p in CIDR notation.
func (p Prefix) String() string {
	return p.addr.String() + "/" + strconv.Itoa(p.bits)
}

// DistanceTo returns the minimum IP distance from a to any address inside
// p, per §III-B: "the IP distance between an address and an address block
// is the minimum IP distance between that address and all addresses in the
// block". Under the XOR metric the minimizing member shares a's low bits,
// so the minimum is the XOR of the prefix-masked high bits.
func (p Prefix) DistanceTo(a Addr) uint32 {
	mask := maskFor(p.bits)
	return uint32((a & Addr(mask)) ^ p.addr)
}

// ClosestAddr returns the address inside p with minimum IP distance to a:
// the member of the block whose free (host) bits equal a's.
func (p Prefix) ClosestAddr(a Addr) Addr {
	mask := maskFor(p.bits)
	return p.addr | (a &^ Addr(mask))
}

// FractionOfSpace returns the share of the 2^32 IPv4 space covered by p.
func (p Prefix) FractionOfSpace() float64 {
	return float64(p.Size()) / float64(1<<32)
}
