package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	tests := []struct {
		in      string
		want    Addr
		wantErr bool
	}{
		{"0.0.0.0", 0, false},
		{"255.255.255.255", 0xFFFFFFFF, false},
		{"192.0.2.1", AddrFromOctets(192, 0, 2, 1), false},
		{"10.0.0.1", 0x0A000001, false},
		{"1.2.3", 0, true},
		{"1.2.3.4.5", 0, true},
		{"256.0.0.1", 0, true},
		{"-1.0.0.1", 0, true},
		{"a.b.c.d", 0, true},
		{"", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseAddr(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseAddr(%q) err=%v, wantErr=%v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceIsXORMetric(t *testing.T) {
	// The paper's Σ|Ai−Bi|·2^i metric must coincide with XOR.
	f := func(a, b uint32) bool {
		var manual uint32
		for i := 0; i < 32; i++ {
			ai := (a >> i) & 1
			bi := (b >> i) & 1
			if ai != bi {
				manual += 1 << i
			}
		}
		return Addr(a).Distance(Addr(b)) == manual
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	f := func(a, b uint32) bool {
		da := Addr(a).Distance(Addr(b))
		db := Addr(b).Distance(Addr(a))
		if da != db { // symmetry
			return false
		}
		if a == b && da != 0 { // identity
			return false
		}
		if a != b && da == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPrefixMasksHostBits(t *testing.T) {
	p, err := NewPrefix(AddrFromOctets(10, 1, 2, 3), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.Addr(), AddrFromOctets(10, 0, 0, 0); got != want {
		t.Errorf("Addr() = %v, want %v", got, want)
	}
	if p.Bits() != 8 {
		t.Errorf("Bits() = %d, want 8", p.Bits())
	}
}

func TestNewPrefixRange(t *testing.T) {
	if _, err := NewPrefix(0, -1); err == nil {
		t.Error("NewPrefix(-1) should fail")
	}
	if _, err := NewPrefix(0, 33); err == nil {
		t.Error("NewPrefix(33) should fail")
	}
	for _, bits := range []int{0, 1, 16, 31, 32} {
		if _, err := NewPrefix(0, bits); err != nil {
			t.Errorf("NewPrefix(%d): %v", bits, err)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"10.0.0.0/8", "10.0.0.0/8", false},
		{"10.9.9.9/8", "10.0.0.0/8", false}, // host bits masked
		{"0.0.0.0/0", "0.0.0.0/0", false},
		{"1.2.3.4/32", "1.2.3.4/32", false},
		{"1.2.3.4/33", "", true},
		{"1.2.3.4", "", true},
		{"x/8", "", true},
	}
	for _, tt := range tests {
		got, err := ParsePrefix(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParsePrefix(%q) err=%v, wantErr=%v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got.String() != tt.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustPrefix(AddrFromOctets(192, 168, 0, 0), 16)
	if !p.Contains(AddrFromOctets(192, 168, 42, 1)) {
		t.Error("should contain inner address")
	}
	if p.Contains(AddrFromOctets(192, 169, 0, 0)) {
		t.Error("should not contain outside address")
	}
	if !p.Contains(p.Addr()) || !p.Contains(p.Last()) {
		t.Error("should contain both endpoints")
	}
}

func TestPrefixSizeAndLast(t *testing.T) {
	tests := []struct {
		pfx  string
		size uint64
		last string
	}{
		{"0.0.0.0/0", 1 << 32, "255.255.255.255"},
		{"10.0.0.0/8", 1 << 24, "10.255.255.255"},
		{"192.168.1.0/24", 256, "192.168.1.255"},
		{"1.2.3.4/32", 1, "1.2.3.4"},
	}
	for _, tt := range tests {
		p, err := ParsePrefix(tt.pfx)
		if err != nil {
			t.Fatal(err)
		}
		if p.Size() != tt.size {
			t.Errorf("%s Size() = %d, want %d", tt.pfx, p.Size(), tt.size)
		}
		if p.Last().String() != tt.last {
			t.Errorf("%s Last() = %v, want %v", tt.pfx, p.Last(), tt.last)
		}
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustPrefix(AddrFromOctets(10, 0, 0, 0), 8)
	b := MustPrefix(AddrFromOctets(10, 1, 0, 0), 16)
	c := MustPrefix(AddrFromOctets(11, 0, 0, 0), 8)
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix overlaps itself")
	}
}

func TestDistanceToZeroInside(t *testing.T) {
	f := func(base, probe uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := MustPrefix(Addr(base), bits)
		inside := p.ClosestAddr(Addr(probe))
		// Closest address must be inside the block...
		if !p.Contains(inside) {
			return false
		}
		// ...and the block distance must equal the point distance to it.
		if p.DistanceTo(Addr(probe)) != Addr(probe).Distance(inside) {
			return false
		}
		// If the probe is inside the block, distance must be zero.
		if p.Contains(Addr(probe)) && p.DistanceTo(Addr(probe)) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceToIsMinOverBlock(t *testing.T) {
	// Brute-force check on small blocks: DistanceTo must equal the true
	// minimum XOR distance over every member address.
	p := MustPrefix(AddrFromOctets(203, 0, 113, 0), 24)
	probes := []Addr{0, 0xFFFFFFFF, AddrFromOctets(203, 0, 113, 77), AddrFromOctets(8, 8, 8, 8)}
	for _, probe := range probes {
		min := uint32(0xFFFFFFFF)
		for a := p.Addr(); ; a++ {
			if d := probe.Distance(a); d < min {
				min = d
			}
			if a == p.Last() {
				break
			}
		}
		if got := p.DistanceTo(probe); got != min {
			t.Errorf("DistanceTo(%v) = %d, want brute-force %d", probe, got, min)
		}
	}
}

func TestFractionOfSpace(t *testing.T) {
	if got := MustPrefix(0, 0).FractionOfSpace(); got != 1.0 {
		t.Errorf("/0 fraction = %v, want 1", got)
	}
	if got := MustPrefix(AddrFromOctets(8, 0, 0, 0), 8).FractionOfSpace(); got != 1.0/256 {
		t.Errorf("/8 fraction = %v, want 1/256", got)
	}
}
