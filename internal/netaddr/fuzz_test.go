package netaddr

import "testing"

// FuzzParsePrefix must never panic, and every accepted prefix must
// round-trip through its canonical string form.
func FuzzParsePrefix(f *testing.F) {
	f.Add("10.0.0.0/8")
	f.Add("255.255.255.255/32")
	f.Add("/")
	f.Add("1.2.3.4/-1")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePrefix(s)
		if err != nil {
			return
		}
		back, err := ParsePrefix(p.String())
		if err != nil {
			t.Fatalf("canonical form %q does not re-parse: %v", p, err)
		}
		if back != p {
			t.Fatalf("round trip changed %v to %v", p, back)
		}
	})
}
