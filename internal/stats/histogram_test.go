package stats

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	c := collectorOf(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	h := c.NewHistogram(5)
	if h == nil {
		t.Fatal("nil histogram")
	}
	if len(h.Buckets) != 5 || len(h.Edges) != 6 {
		t.Fatalf("shape: %d buckets, %d edges", len(h.Buckets), len(h.Edges))
	}
	total := 0
	for _, b := range h.Buckets {
		total += b
	}
	if total != 10 {
		t.Errorf("binned %d samples, want 10", total)
	}
	// Equal-width bins over 0..9: [0,1.8) gets 0 and 1, etc. The last
	// bucket must include the max.
	if h.Buckets[4] == 0 {
		t.Error("max sample must land in the last bucket")
	}
	if h.Edges[0] != 0 || h.Edges[5] != 9 {
		t.Errorf("edges = %v", h.Edges)
	}
}

func TestHistogramEmptyAndDegenerate(t *testing.T) {
	if (&Collector{}).NewHistogram(5) != nil {
		t.Error("empty collector should give nil")
	}
	c := collectorOf(1, 2, 3)
	if c.NewHistogram(0) != nil {
		t.Error("n=0 should give nil")
	}
	// All-equal samples must not divide by zero.
	same := collectorOf(7, 7, 7)
	h := same.NewHistogram(4)
	if h == nil {
		t.Fatal("nil histogram for constant samples")
	}
	total := 0
	for _, b := range h.Buckets {
		total += b
	}
	if total != 3 {
		t.Errorf("binned %d, want 3", total)
	}
}

func TestHistogramRender(t *testing.T) {
	c := collectorOf(1, 1, 1, 1, 5, 9)
	h := c.NewHistogram(3)
	out := h.Render(20)
	if !strings.Contains(out, "█") {
		t.Error("render should draw bars")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("rendered %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[2], "100.0%") {
		t.Errorf("last line should reach 100%%: %q", lines[2])
	}
	if h.Render(0) == "" {
		t.Error("width 0 should use a default, not return empty")
	}
}

func TestNewHistogramFromBuckets(t *testing.T) {
	h, err := NewHistogramFromBuckets([]float64{0, 10, 20, 40}, []int{5, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Render(10); !strings.Contains(got, "█") {
		t.Errorf("render: %q", got)
	}
	// Inputs are copied, not aliased.
	h.Buckets[0] = 99
	h2, _ := NewHistogramFromBuckets([]float64{0, 10, 20, 40}, []int{5, 0, 3})
	if h2.Buckets[0] != 5 {
		t.Error("constructor aliased caller slice")
	}
	for _, tc := range []struct {
		edges  []float64
		counts []int
	}{
		{nil, nil},
		{[]float64{0, 1}, []int{1, 2}},    // length mismatch
		{[]float64{0, 0, 1}, []int{1, 1}}, // non-increasing
		{[]float64{0, 1, 2}, []int{1, -1}},
	} {
		if _, err := NewHistogramFromBuckets(tc.edges, tc.counts); err == nil {
			t.Errorf("NewHistogramFromBuckets(%v, %v) should fail", tc.edges, tc.counts)
		}
	}
}
