package stats

import (
	"math"
	"math/rand"
	"testing"
)

func collectorOf(vals ...float64) *Collector {
	c := NewCollector(len(vals))
	for _, v := range vals {
		c.Add(v)
	}
	return c
}

func TestEmptyCollector(t *testing.T) {
	c := NewCollector(0)
	if c.N() != 0 {
		t.Errorf("N = %d", c.N())
	}
	for name, v := range map[string]float64{
		"Mean":      c.Mean(),
		"Median":    c.Median(),
		"P95":       c.Percentile(95),
		"Min":       c.Min(),
		"Max":       c.Max(),
		"StdDev":    c.StdDev(),
		"FracBelow": c.FractionBelow(1),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s on empty = %v, want NaN", name, v)
		}
	}
	if c.CDF(10) != nil {
		t.Error("CDF on empty should be nil")
	}
}

func TestMeanMedian(t *testing.T) {
	c := collectorOf(1, 2, 3, 4, 100)
	if got := c.Mean(); got != 22 {
		t.Errorf("Mean = %v, want 22", got)
	}
	if got := c.Median(); got != 3 {
		t.Errorf("Median = %v, want 3", got)
	}
	even := collectorOf(1, 2, 3, 4)
	if got := even.Median(); got != 2.5 {
		t.Errorf("even Median = %v, want 2.5", got)
	}
}

func TestPercentile(t *testing.T) {
	c := NewCollector(100)
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 100}, {50, 50.5}, {95, 95.05},
	}
	for _, tt := range cases {
		if got := c.Percentile(tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(c.Percentile(-1)) || !math.IsNaN(c.Percentile(101)) {
		t.Error("out-of-range percentile should be NaN")
	}
}

func TestPercentileSingle(t *testing.T) {
	c := collectorOf(42)
	for _, p := range []float64{0, 50, 95, 100} {
		if got := c.Percentile(p); got != 42 {
			t.Errorf("Percentile(%v) = %v, want 42", p, got)
		}
	}
}

func TestAddAfterQueryResorts(t *testing.T) {
	c := collectorOf(5, 1)
	if c.Min() != 1 {
		t.Fatal("Min before add")
	}
	c.Add(0)
	if c.Min() != 0 {
		t.Error("Min after add must see new sample")
	}
}

func TestStdDev(t *testing.T) {
	c := collectorOf(2, 4, 4, 4, 5, 5, 7, 9)
	if got := c.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestFractionBelow(t *testing.T) {
	c := collectorOf(10, 20, 30, 40)
	cases := []struct{ x, want float64 }{
		{5, 0}, {10, 0.25}, {25, 0.5}, {40, 1}, {100, 1},
	}
	for _, tt := range cases {
		if got := c.FractionBelow(tt.x); got != tt.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDF(t *testing.T) {
	c := NewCollector(1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		c.Add(rng.Float64())
	}
	pts := c.CDF(20)
	if len(pts) != 20 {
		t.Fatalf("CDF length %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Value < pts[i-1].Value {
			t.Fatal("CDF values must be non-decreasing")
		}
		if pts[i].Fraction <= pts[i-1].Fraction {
			t.Fatal("CDF fractions must increase")
		}
	}
	if pts[len(pts)-1].Fraction != 1 {
		t.Error("last fraction must be 1")
	}
	// Uniform samples: value at fraction f must be ≈ f.
	for _, p := range pts {
		if math.Abs(p.Value-p.Fraction) > 0.06 {
			t.Errorf("uniform CDF off at %+v", p)
		}
	}
}

func TestMerge(t *testing.T) {
	a := collectorOf(1, 2)
	b := collectorOf(3, 4)
	a.Merge(b)
	if a.N() != 4 || a.Mean() != 2.5 {
		t.Errorf("after merge: n=%d mean=%v", a.N(), a.Mean())
	}
}

func TestSummarize(t *testing.T) {
	c := collectorOf(10, 20, 30)
	s := c.Summarize()
	if s.N != 3 || s.Mean != 20 || s.Median != 20 || s.Min != 10 || s.Max != 30 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("String should format")
	}
}

func TestNormalizedLoadRatios(t *testing.T) {
	// Two ASs: AS 0 owns 25% of announced space and hosts 50% of GUIDs →
	// NLR 2; AS 1 owns 75% and hosts 50% → NLR 2/3.
	hosted := map[int]int{0: 50, 1: 50}
	shares := map[int]float64{0: 0.25, 1: 0.75}
	c := NormalizedLoadRatios(hosted, shares)
	if c.N() != 2 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Max(); math.Abs(got-2) > 1e-9 {
		t.Errorf("max NLR = %v, want 2", got)
	}
	if got := c.Min(); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("min NLR = %v, want 2/3", got)
	}
}

func TestNormalizedLoadRatiosEdge(t *testing.T) {
	if c := NormalizedLoadRatios(map[int]int{}, map[int]float64{0: 1}); c.N() != 0 {
		t.Error("no hosted GUIDs should give empty collector")
	}
	// AS with share but no hosted GUIDs appears with NLR 0.
	c := NormalizedLoadRatios(map[int]int{0: 10}, map[int]float64{0: 0.5, 1: 0.5})
	if c.N() != 2 || c.Min() != 0 {
		t.Errorf("NLR with idle AS: n=%d min=%v", c.N(), c.Min())
	}
	// Non-positive shares are skipped.
	c = NormalizedLoadRatios(map[int]int{0: 10}, map[int]float64{0: 1, 2: 0})
	if c.N() != 1 {
		t.Errorf("zero-share AS must be skipped: n=%d", c.N())
	}
}

func TestClip(t *testing.T) {
	c := NewCollector(100)
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	clipped := c.Clip(90)
	if clipped.N() < 88 || clipped.N() > 92 {
		t.Errorf("Clip(90) kept %d samples", clipped.N())
	}
	if clipped.Max() > c.Percentile(90)+1e-9 {
		t.Errorf("Clip kept %v above p90 %v", clipped.Max(), c.Percentile(90))
	}
	// Original collector is untouched.
	if c.N() != 100 {
		t.Errorf("Clip mutated the source: N=%d", c.N())
	}
}
