// Package stats provides the small statistical toolkit behind the paper's
// evaluation: percentile summaries (Table I), cumulative distribution
// functions (Figures 4–6), and normalized load ratios (§IV-B2c).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Collector accumulates float64 samples and answers order-statistics
// queries. It is not safe for concurrent use; shard and Merge instead.
type Collector struct {
	vals   []float64
	sorted bool
}

// NewCollector returns a collector with capacity preallocated for n
// samples.
func NewCollector(n int) *Collector {
	return &Collector{vals: make([]float64, 0, n)}
}

// Add appends a sample.
func (c *Collector) Add(v float64) {
	c.vals = append(c.vals, v)
	c.sorted = false
}

// Merge appends every sample of other.
func (c *Collector) Merge(other *Collector) {
	c.vals = append(c.vals, other.vals...)
	c.sorted = false
}

// N returns the number of samples.
func (c *Collector) N() int { return len(c.vals) }

func (c *Collector) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.vals)
		c.sorted = true
	}
}

// Mean returns the arithmetic mean, or NaN when empty.
func (c *Collector) Mean() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range c.vals {
		sum += v
	}
	return sum / float64(len(c.vals))
}

// StdDev returns the population standard deviation, or NaN when empty.
func (c *Collector) StdDev() float64 {
	n := len(c.vals)
	if n == 0 {
		return math.NaN()
	}
	mean := c.Mean()
	var ss float64
	for _, v := range c.vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Percentile returns the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks, or NaN when empty.
func (c *Collector) Percentile(p float64) float64 {
	if len(c.vals) == 0 || math.IsNaN(p) || p < 0 || p > 100 {
		return math.NaN()
	}
	c.ensureSorted()
	if len(c.vals) == 1 {
		return c.vals[0]
	}
	rank := p / 100 * float64(len(c.vals)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c.vals[lo]
	}
	frac := rank - float64(lo)
	return c.vals[lo]*(1-frac) + c.vals[hi]*frac
}

// Median returns the 50th percentile.
func (c *Collector) Median() float64 { return c.Percentile(50) }

// Min returns the smallest sample, or NaN when empty.
func (c *Collector) Min() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.vals[0]
}

// Max returns the largest sample, or NaN when empty.
func (c *Collector) Max() float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return c.vals[len(c.vals)-1]
}

// FractionBelow returns the empirical CDF value at x: the fraction of
// samples ≤ x.
func (c *Collector) FractionBelow(x float64) float64 {
	if len(c.vals) == 0 {
		return math.NaN()
	}
	c.ensureSorted()
	return float64(sort.SearchFloat64s(c.vals, math.Nextafter(x, math.Inf(1)))) / float64(len(c.vals))
}

// Clip returns a new collector holding only the samples at or below the
// p-th percentile — useful for rendering histograms whose extreme tail
// (the paper's multi-second stub ASs) would otherwise flatten every
// bucket.
func (c *Collector) Clip(p float64) *Collector {
	cut := c.Percentile(p)
	out := NewCollector(len(c.vals))
	for _, v := range c.vals {
		if v <= cut {
			out.Add(v)
		}
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value    float64
	Fraction float64
}

// CDF returns the empirical CDF sampled at n evenly spaced fractions
// (1/n, 2/n, …, 1). n must be positive.
func (c *Collector) CDF(n int) []CDFPoint {
	if n <= 0 || len(c.vals) == 0 {
		return nil
	}
	c.ensureSorted()
	out := make([]CDFPoint, n)
	for i := 1; i <= n; i++ {
		frac := float64(i) / float64(n)
		idx := int(math.Ceil(frac*float64(len(c.vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		out[i-1] = CDFPoint{Value: c.vals[idx], Fraction: frac}
	}
	return out
}

// Summary is a compact distribution digest, in the units of the samples.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	P95    float64
	Min    float64
	Max    float64
}

// Summarize computes the digest reported throughout EXPERIMENTS.md.
func (c *Collector) Summarize() Summary {
	return Summary{
		N:      c.N(),
		Mean:   c.Mean(),
		Median: c.Median(),
		P95:    c.Percentile(95),
		Min:    c.Min(),
		Max:    c.Max(),
	}
}

// String formats the summary as a one-line report.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f median=%.1f p95=%.1f min=%.1f max=%.1f",
		s.N, s.Mean, s.Median, s.P95, s.Min, s.Max)
}

// NormalizedLoadRatios computes the paper's NLR metric: for each AS with a
// positive announced share, the percentage of GUIDs it hosts divided by
// the percentage of announced address space it owns. hosted maps AS index
// to hosted-mapping count; shares maps AS index to its fraction of the
// announced space (which must sum to ≈1 across announcing ASs — pass
// shares already normalized to announced space, not total space).
func NormalizedLoadRatios(hosted map[int]int, shares map[int]float64) *Collector {
	var totalHosted int64
	for _, h := range hosted {
		totalHosted += int64(h)
	}
	c := NewCollector(len(shares))
	if totalHosted == 0 {
		return c
	}
	for as, share := range shares {
		if share <= 0 {
			continue
		}
		frac := float64(hosted[as]) / float64(totalHosted)
		c.Add(frac / share)
	}
	return c
}
