package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram renders a collector as a fixed-width ASCII bar chart of its
// distribution, used by cmd/dmapsim to sketch the paper's CDF figures in
// a terminal.
type Histogram struct {
	// Buckets holds the per-bucket counts.
	Buckets []int
	// Edges holds len(Buckets)+1 bucket boundaries.
	Edges []float64
}

// NewHistogram bins the collector's samples into n equal-width buckets
// between min and max. Returns nil for empty collectors or n <= 0.
func (c *Collector) NewHistogram(n int) *Histogram {
	if n <= 0 || len(c.vals) == 0 {
		return nil
	}
	lo, hi := c.Min(), c.Max()
	if lo == hi {
		hi = lo + 1
	}
	h := &Histogram{
		Buckets: make([]int, n),
		Edges:   make([]float64, n+1),
	}
	width := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		h.Edges[i] = lo + float64(i)*width
	}
	for _, v := range c.vals {
		idx := int((v - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		h.Buckets[idx]++
	}
	return h
}

// NewHistogramFromBuckets builds a Histogram from pre-binned data:
// len(edges) must be len(counts)+1 with strictly increasing edges. It
// lets stream-binned sources (internal/metrics) reuse Render, so live
// /debug/metrics distributions draw exactly like the simulator's CDFs.
func NewHistogramFromBuckets(edges []float64, counts []int) (*Histogram, error) {
	if len(counts) == 0 || len(edges) != len(counts)+1 {
		return nil, fmt.Errorf("stats: need len(edges) == len(counts)+1 > 1, got %d edges, %d counts",
			len(edges), len(counts))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			return nil, fmt.Errorf("stats: edges must be strictly increasing at %d", i)
		}
	}
	for i, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("stats: negative count at bucket %d", i)
		}
	}
	h := &Histogram{
		Buckets: make([]int, len(counts)),
		Edges:   make([]float64, len(edges)),
	}
	copy(h.Buckets, counts)
	copy(h.Edges, edges)
	return h, nil
}

// Render draws the histogram with bars up to width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	max := 0
	total := 0
	for _, b := range h.Buckets {
		if b > max {
			max = b
		}
		total += b
	}
	if max == 0 {
		return ""
	}
	var sb strings.Builder
	cum := 0
	for i, b := range h.Buckets {
		cum += b
		bar := strings.Repeat("█", int(math.Round(float64(b)/float64(max)*float64(width))))
		fmt.Fprintf(&sb, "%10.1f–%-10.1f %7d %6.1f%% |%s\n",
			h.Edges[i], h.Edges[i+1], b, 100*float64(cum)/float64(total), bar)
	}
	return sb.String()
}
