// Package crashtest proves the store's durability claim end to end: a
// real dmap node (child process, real TCP, durable store) is SIGKILLed
// mid-write-burst at a randomized point, restarted, and every
// acknowledged insert/update must be readable at (at least) its acked
// version. The kill point is seeded and logged so a failure reproduces
// with DMAP_CRASH_SEED.
//
// The ack-durability contract under test: the server writes the WAL
// record (a completed write(2), which survives SIGKILL under any fsync
// policy) before it acknowledges, so an ack the client observed implies
// the write is recoverable.
package crashtest

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
	"dmap/internal/server"
	"dmap/internal/store"

	"dmap/internal/client"
)

func TestMain(m *testing.M) {
	if os.Getenv("DMAP_CRASH_CHILD") == "1" {
		runChild()
		return
	}
	os.Exit(m.Run())
}

// runChild is the process under test: a durable node serving real
// traffic until the parent SIGKILLs it. It prints its bound address and
// then blocks forever — the only way out is the kill.
func runChild() {
	n, err := server.Open(server.Options{
		DataDir: os.Getenv("DMAP_CRASH_DIR"),
		// Small snapshot threshold so the burst also exercises
		// compaction (snapshot + WAL truncation) racing the kill.
		SnapshotBytes: 32 << 10,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	addr, err := n.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "child:", err)
		os.Exit(1)
	}
	rec := n.Store().Recovery()
	fmt.Printf("ADDR %s replayed=%d snapshot=%d torn=%d\n",
		addr, rec.ReplayedRecords, rec.SnapshotEntries, rec.TornBytes)
	select {}
}

type child struct {
	cmd  *exec.Cmd
	addr string
	torn int64
}

func startChild(t *testing.T, dir string) *child {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DMAP_CRASH_CHILD=1", "DMAP_CRASH_DIR="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("child produced no address line: %v", sc.Err())
	}
	line := sc.Text()
	fields := strings.Fields(line)
	if len(fields) < 2 || fields[0] != "ADDR" {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("unexpected child line %q", line)
	}
	c := &child{cmd: cmd, addr: fields[1]}
	for _, f := range fields[2:] {
		if v, ok := strings.CutPrefix(f, "torn="); ok {
			c.torn, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	t.Logf("child up at %s (%s)", c.addr, strings.Join(fields[2:], " "))
	t.Cleanup(func() { c.kill() })
	return c
}

func (c *child) kill() {
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
	c.cmd.Wait()
}

// newClient returns a cluster client for the single-AS world the child
// serves (AS 0 owns the whole address space, K=1).
func newClient(t *testing.T, addr string) *client.Cluster {
	t.Helper()
	tbl := prefixtable.New()
	p, err := netaddr.NewPrefix(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 0); err != nil {
		t.Fatal(err)
	}
	resolver, err := core.NewResolver(guid.MustHasher(1, 0), tbl, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := client.New(resolver, map[int]string{0: addr}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

const (
	crashGUIDs   = 256
	crashWriters = 4
)

func crashGUID(i int) guid.GUID { return guid.FromUint64(uint64(i + 1)) }

// TestCrashRecovery is the harness: several rounds of (restart child →
// verify every previously acked write → concurrent write burst →
// SIGKILL at a random acked-op count), then a final restart + verify.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	seed := time.Now().UnixNano()
	if env := os.Getenv("DMAP_CRASH_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("DMAP_CRASH_SEED: %v", err)
		}
		seed = v
	}
	t.Logf("seed %d (set DMAP_CRASH_SEED=%d to reproduce)", seed, seed)
	rng := rand.New(rand.NewSource(seed))

	dir := t.TempDir()
	var (
		mu    sync.Mutex
		acked = make(map[guid.GUID]uint64) // max acked version per GUID
	)
	// Version numbers are issued per GUID, strictly increasing across
	// rounds (§III-D2: freshest wins).
	var versions [crashGUIDs]atomic.Uint64

	tornSeen := false
	const rounds = 3
	for round := 0; round < rounds; round++ {
		c := startChild(t, dir)
		if c.torn > 0 {
			tornSeen = true
		}
		cl := newClient(t, c.addr)
		verifyAcked(t, cl, acked, fmt.Sprintf("round %d pre-burst", round))

		killAfter := 100 + rng.Intn(400)
		t.Logf("round %d: killing after %d acked ops", round, killAfter)

		var (
			ackedOps atomic.Int64
			stop     atomic.Bool
			wg       sync.WaitGroup
		)
		for w := 0; w < crashWriters; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				wrng := rand.New(rand.NewSource(seed + int64(w) + 1))
				for !stop.Load() {
					i := wrng.Intn(crashGUIDs)
					g := crashGUID(i)
					v := versions[i].Add(1)
					e := store.Entry{
						GUID:    g,
						NAs:     []store.NA{{AS: 0, Addr: netaddr.Addr(uint32(v))}},
						Version: v,
						Meta:    uint32(w),
					}
					acks, err := cl.Insert(e)
					if err != nil || acks < 1 {
						continue // unacked: no durability promise
					}
					mu.Lock()
					if v > acked[g] {
						acked[g] = v
					}
					mu.Unlock()
					ackedOps.Add(1)
				}
			}(w)
		}
		for ackedOps.Load() < int64(killAfter) {
			time.Sleep(time.Millisecond)
		}
		c.kill() // SIGKILL mid-burst: in-flight writes may tear the WAL
		stop.Store(true)
		wg.Wait()
		t.Logf("round %d: killed after %d acked ops", round, ackedOps.Load())
	}

	c := startChild(t, dir)
	if c.torn > 0 {
		tornSeen = true
	}
	cl := newClient(t, c.addr)
	verifyAcked(t, cl, acked, "final")
	if !tornSeen {
		t.Log("note: no torn WAL tail observed this run (kill landed between appends every time)")
	}
}

// verifyAcked asserts every acknowledged write is readable at (at
// least) its acked version — the §III-D2 guarantee a restarted replica
// must uphold before rejoining.
func verifyAcked(t *testing.T, cl *client.Cluster, acked map[guid.GUID]uint64, phase string) {
	t.Helper()
	var e store.Entry
	e.NAs = make([]store.NA, 0, store.MaxNAs)
	missing, stale := 0, 0
	for g, v := range acked {
		if err := cl.LookupInto(g, &e); err != nil {
			missing++
			t.Errorf("%s: acked GUID %s unreadable: %v", phase, g.Short(), err)
			continue
		}
		if e.Version < v {
			stale++
			t.Errorf("%s: GUID %s served at v%d, acked v%d", phase, g.Short(), e.Version, v)
		}
	}
	if missing > 0 || stale > 0 {
		t.Fatalf("%s: %d acked writes missing, %d stale of %d", phase, missing, stale, len(acked))
	}
	t.Logf("%s: %d acked writes verified", phase, len(acked))
}
