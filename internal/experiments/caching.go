package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"dmap/internal/cache"
	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/store"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// CachingConfig drives the §VII in-network caching extension experiment:
// each source AS caches resolved mappings with a TTL, trading lookup
// latency against bounded staleness under host mobility.
type CachingConfig struct {
	// K is the replication factor of the underlying DMap.
	K int
	// NumGUIDs / NumLookups size the workload.
	NumGUIDs   int
	NumLookups int
	// DurationSec is the simulated wall span the lookups spread over.
	DurationSec float64
	// UpdateRatePerSec is each GUID's mobility rate (the paper's
	// ~100 updates/day ≈ 0.00116/s).
	UpdateRatePerSec float64
	// TTLs lists cache TTLs to evaluate (0 in the list means "no cache",
	// the baseline row).
	TTLs []topology.Micros
	// CacheCapacity bounds each AS's cache.
	CacheCapacity int
	// Seed fixes workloads and staleness sampling.
	Seed int64
	// Workers bounds the evaluation parallelism (0 = GOMAXPROCS, 1 =
	// serial reference); results are identical for every setting.
	Workers int
}

// CachingRow is one TTL's outcome.
type CachingRow struct {
	TTL       topology.Micros
	Latency   stats.Summary // ms
	HitRate   float64
	StaleRate float64 // fraction of all lookups answered with a stale mapping
}

// CachingResult holds one row per TTL.
type CachingResult struct {
	Rows []CachingRow
}

// RunCaching evaluates per-AS query caching on top of DMap. A cache hit
// answers at intra-AS latency; the mapping is stale if its GUID moved
// after the cache fill, which happens with probability
// 1 − exp(−rate·age) under Poisson mobility. Caches are per source AS,
// so each source is an independent engine work unit with its own
// staleness-sampling seed.
func RunCaching(w *World, cfg CachingConfig) (*CachingResult, error) {
	if cfg.K <= 0 || cfg.NumGUIDs <= 0 || cfg.NumLookups <= 0 {
		return nil, fmt.Errorf("experiments: invalid caching workload")
	}
	if cfg.DurationSec <= 0 || cfg.UpdateRatePerSec < 0 {
		return nil, fmt.Errorf("experiments: invalid caching time parameters")
	}
	if len(cfg.TTLs) == 0 {
		return nil, fmt.Errorf("experiments: no TTLs")
	}
	capacity := cfg.CacheCapacity
	if capacity <= 0 {
		capacity = 1024
	}

	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	resolver, err := core.NewResolver(guid.MustHasher(cfg.K, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	placements := make([][]int32, cfg.NumGUIDs)
	for gi := 0; gi < cfg.NumGUIDs; gi++ {
		g := guid.FromUint64(uint64(gi) + 1)
		ass := make([]int32, cfg.K)
		for r := 0; r < cfg.K; r++ {
			p, err := resolver.PlaceReplica(g, r)
			if err != nil {
				return nil, err
			}
			ass[r] = int32(p.AS)
		}
		placements[gi] = ass
	}

	// Assign each lookup a uniform time in the window, then group by
	// source AS and sort each group by time (caches are per source, so
	// per-source time order is all TTL semantics need).
	rng := rand.New(rand.NewSource(cfg.Seed + 101))
	times := make([]topology.Micros, len(trace.Lookups))
	for i := range times {
		times[i] = topology.Micros(rng.Float64() * cfg.DurationSec * 1e6)
	}
	bySrc := make(map[int][]int)
	for i, ev := range trace.Lookups {
		bySrc[ev.SrcAS] = append(bySrc[ev.SrcAS], i)
	}
	sources := make([]int, 0, len(bySrc))
	for src := range bySrc {
		idx := bySrc[src]
		sort.Slice(idx, func(a, b int) bool { return times[idx[a]] < times[idx[b]] })
		sources = append(sources, src)
	}
	sort.Ints(sources)

	res := &CachingResult{Rows: make([]CachingRow, 0, len(cfg.TTLs))}

	type cachingUnit struct {
		col         *stats.Collector
		hits, stale int64
	}
	for _, ttl := range cfg.TTLs {
		ttl := ttl
		units, err := engine.Map(cfg.Workers, len(sources),
			func() []topology.Micros { return make([]topology.Micros, w.NumAS()) },
			func(u int, dist []topology.Micros) (cachingUnit, error) {
				src := sources[u]
				lookups := bySrc[src]
				w.Graph.Dijkstra(src, dist)
				unit := cachingUnit{col: stats.NewCollector(len(lookups))}
				staleRng := rand.New(rand.NewSource(cfg.Seed + int64(ttl)%7919 + 5 + int64(src)*104729))
				var cc *cache.Cache
				if ttl > 0 {
					var err error
					cc, err = cache.New(capacity, ttl)
					if err != nil {
						return cachingUnit{}, err
					}
				}
				for _, li := range lookups {
					ev := trace.Lookups[li]
					now := times[li]
					g := guid.FromUint64(uint64(ev.GUIDIndex) + 1)

					if cc != nil {
						if _, cachedAt, ok := cc.Get(g, now); ok {
							unit.hits++
							unit.col.Add((2 * w.Graph.Intra(src)).Millis())
							// Poisson mobility: stale with p = 1 − e^(−λ·age).
							age := float64(now-cachedAt) / 1e6
							if staleRng.Float64() < 1-math.Exp(-cfg.UpdateRatePerSec*age) {
								unit.stale++
							}
							continue
						}
					}
					best := topology.InfMicros
					for _, as := range placements[ev.GUIDIndex] {
						if rtt := w.Graph.RTT(src, int(as), dist); rtt < best {
							best = rtt
						}
					}
					unit.col.Add(best.Millis())
					if cc != nil {
						// The experiment measures latency and staleness, not
						// payloads; an empty entry keeps the cache cheap.
						cc.Put(g, store.Entry{}, now)
					}
				}
				return unit, nil
			})
		if err != nil {
			return nil, err
		}

		col := stats.NewCollector(cfg.NumLookups)
		var hits, stale int64
		for _, u := range units {
			col.Merge(u.col)
			hits += u.hits
			stale += u.stale
		}
		res.Rows = append(res.Rows, CachingRow{
			TTL:       ttl,
			Latency:   col.Summarize(),
			HitRate:   float64(hits) / float64(cfg.NumLookups),
			StaleRate: float64(stale) / float64(cfg.NumLookups),
		})
	}
	return res, nil
}

// String renders the caching trade-off table.
func (r *CachingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %8s %8s\n", "TTL", "mean(ms)", "median", "p95", "hit%", "stale%")
	for _, row := range r.Rows {
		name := "off"
		if row.TTL > 0 {
			name = fmt.Sprintf("%.0fs", float64(row.TTL)/1e6)
		}
		fmt.Fprintf(&b, "%-10s %10.1f %10.1f %10.1f %7.1f%% %7.2f%%\n",
			name, row.Latency.Mean, row.Latency.Median, row.Latency.P95,
			100*row.HitRate, 100*row.StaleRate)
	}
	return b.String()
}
