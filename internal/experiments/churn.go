package experiments

import (
	"fmt"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/nodesim"
	"dmap/internal/prefixtable"
	"dmap/internal/simnet"
	"dmap/internal/stats"
	"dmap/internal/store"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// ChurnSimConfig drives the protocol-level churn experiment: real timed
// BGP withdrawals and announcements applied to a live event-driven
// deployment while a lookup stream runs — the end-to-end version of
// Fig. 5's abstracted miss-rate model, exercising the §III-D1 migration
// protocol itself.
type ChurnSimConfig struct {
	K          int
	NumGUIDs   int
	NumLookups int
	// DurationSec is the simulated window; lookups spread uniformly and
	// churn follows the configured rates.
	DurationSec float64
	// WithdrawPerSec / AnnouncePerSec are BGP churn rates (§III-D1).
	WithdrawPerSec float64
	AnnouncePerSec float64
	Seed           int64
	// Workers bounds the parallelism of the post-run announce-repair
	// sweep (0 = GOMAXPROCS, 1 = serial reference). The timed simulation
	// itself is inherently serial — event interleaving is the experiment
	// — so only the sweep parallelizes; results are identical for every
	// setting.
	Workers int
}

// ChurnSimResult reports protocol behaviour under live churn.
type ChurnSimResult struct {
	Latency stats.Summary // ms, successful lookups
	// Lookups / Failures count the stream; with K replicas and migration
	// the protocol should keep Failures at zero.
	Lookups  int
	Failures int
	// Migrated counts mappings re-homed by withdrawals.
	Migrated int
	// Withdrawals / Announcements applied.
	Withdrawals   int
	Announcements int
	// Repaired counts orphan mappings pulled back by the §III-D1 lazy
	// announce-repair (RepairMiss) once traffic settles.
	Repaired int
	// Retried counts lookups that needed more than one replica attempt.
	Retried int
	// Consistency is the post-run audit of the deployment's invariants
	// (core.System.VerifyConsistency): after churn settles there must be
	// no missing replicas, version skews or stray entries.
	Consistency core.ConsistencyReport
}

// RunChurnSim executes the experiment at protocol level (moderate world
// sizes; every message is simulated).
func RunChurnSim(w *World, cfg ChurnSimConfig) (*ChurnSimResult, error) {
	if cfg.K <= 0 || cfg.NumGUIDs <= 0 || cfg.NumLookups <= 0 || cfg.DurationSec <= 0 {
		return nil, fmt.Errorf("experiments: invalid churn-sim config")
	}
	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	resolver, err := core.NewResolver(guid.MustHasher(cfg.K, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Resolver: resolver, NumAS: w.NumAS(), LocalReplica: false,
	})
	if err != nil {
		return nil, err
	}
	cache, err := topology.NewDistCache(w.Graph, 512)
	if err != nil {
		return nil, err
	}
	dep, err := nodesim.NewDeployment(sys, simnet.New(), cache, 0)
	if err != nil {
		return nil, err
	}

	// Populate synchronously (state setup, not measured).
	for gi := 0; gi < cfg.NumGUIDs; gi++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(gi) + 1),
			NAs:     []store.NA{{AS: trace.HomeAS[gi], Addr: netaddr.Addr(gi)}},
			Version: 1,
		}
		if _, err := sys.Insert(e, trace.HomeAS[gi]); err != nil {
			return nil, err
		}
	}

	churn, err := prefixtable.GenerateChurn(w.Table, prefixtable.ChurnConfig{
		WithdrawPerSec: cfg.WithdrawPerSec,
		AnnouncePerSec: cfg.AnnouncePerSec,
		DurationSec:    cfg.DurationSec,
		Seed:           cfg.Seed + 3,
	})
	if err != nil {
		return nil, err
	}

	res := &ChurnSimResult{Lookups: cfg.NumLookups}
	col := stats.NewCollector(cfg.NumLookups)
	sim := dep.Sim()

	for _, ev := range churn {
		ev := ev
		at := simnet.Time(ev.AtSec * 1e6)
		if err := sim.At(at, func() {
			switch ev.Kind {
			case prefixtable.ChurnWithdraw:
				n, err := sys.WithdrawPrefix(ev.Prefix.Prefix, ev.Prefix.AS)
				if err != nil {
					return // already withdrawn by an overlapping event
				}
				res.Migrated += n
				res.Withdrawals++
			case prefixtable.ChurnAnnounce:
				if err := sys.AnnouncePrefix(ev.Prefix.Prefix, ev.Prefix.AS); err == nil {
					res.Announcements++
				}
			}
		}); err != nil {
			return nil, err
		}
	}

	rngStep := cfg.DurationSec * 1e6 / float64(cfg.NumLookups)
	for i, ev := range trace.Lookups {
		ev := ev
		at := simnet.Time(float64(i) * rngStep)
		g := guid.FromUint64(uint64(ev.GUIDIndex) + 1)
		if err := sim.At(at, func() {
			err := dep.Lookup(ev.SrcAS, g, func(r nodesim.LookupResult) {
				if !r.Found {
					res.Failures++
					return
				}
				if r.Attempts > 1 {
					res.Retried++
				}
				col.Add(float64(r.Latency) / 1000)
			})
			if err != nil {
				res.Failures++
			}
		}); err != nil {
			return nil, err
		}
	}

	sim.Run(0)
	res.Latency = col.Summarize()

	// Settle the lazy announce-repair: in production each orphan is
	// pulled on its first post-announcement query (§III-D1); here we
	// sweep so the post-run audit reflects the repaired steady state.
	// Within one announce event the sweep fans out over GUIDs on the
	// engine: RepairMiss touches only its own GUID's placement, the
	// store layer is concurrency-safe, and whether a given GUID repairs
	// does not depend on any other GUID, so the summed count is exact at
	// every worker count. Events themselves stay ordered — a later
	// announcement can re-home mappings the earlier one repaired.
	for _, ev := range churn {
		if ev.Kind != prefixtable.ChurnAnnounce {
			continue
		}
		repaired, err := engine.MapNoScratch(cfg.Workers, cfg.NumGUIDs,
			func(gi int) (bool, error) {
				g := guid.FromUint64(uint64(gi) + 1)
				return sys.RepairMiss(g, ev.Prefix.Prefix, ev.Prefix.AS)
			})
		if err != nil {
			return nil, err
		}
		for _, r := range repaired {
			if r {
				res.Repaired++
			}
		}
	}

	rep, err := sys.VerifyConsistency()
	if err != nil {
		return nil, err
	}
	res.Consistency = rep
	return res, nil
}

// String renders the churn-sim report.
func (r *ChurnSimResult) String() string {
	return fmt.Sprintf(
		"lookups: %d (failures %d, retried %d)\nwithdrawals: %d (migrated %d mappings), announcements: %d (repaired %d)\nlatency: %v\nconsistency audit: %v\n",
		r.Lookups, r.Failures, r.Retried, r.Withdrawals, r.Migrated, r.Announcements, r.Repaired, r.Latency, r.Consistency)
}
