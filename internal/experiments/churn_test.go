package experiments

import (
	"strings"
	"testing"
)

func TestChurnSimValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := RunChurnSim(w, ChurnSimConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestChurnSimNoLostLookups(t *testing.T) {
	w := testWorld(t)
	res, err := RunChurnSim(w, ChurnSimConfig{
		K:              5,
		NumGUIDs:       300,
		NumLookups:     2000,
		DurationSec:    120,
		WithdrawPerSec: 0.5, // ~60 withdrawals across the window
		AnnouncePerSec: 0.5,
		Seed:           12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Withdrawals == 0 {
		t.Fatal("no withdrawals applied; churn not exercised")
	}
	// K=5 replication plus §III-D1 migration must keep every mapping
	// resolvable through live churn.
	if res.Failures != 0 {
		t.Errorf("%d/%d lookups failed under churn", res.Failures, res.Lookups)
	}
	if res.Latency.N != res.Lookups {
		t.Errorf("latency samples = %d, want %d", res.Latency.N, res.Lookups)
	}
	if res.Latency.Mean <= 0 {
		t.Error("latency must be positive")
	}
	if !strings.Contains(res.String(), "withdrawals") {
		t.Error("String output")
	}
}

func TestChurnSimK1StillResolvesWithMigration(t *testing.T) {
	// Even without replica redundancy the migration protocol alone must
	// preserve resolvability: the withdrawn replica's mappings move to
	// the deputy that rehashing reaches.
	w := testWorld(t)
	res, err := RunChurnSim(w, ChurnSimConfig{
		K:              1,
		NumGUIDs:       200,
		NumLookups:     1000,
		DurationSec:    60,
		WithdrawPerSec: 0.5,
		AnnouncePerSec: 0,
		Seed:           13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Withdrawals == 0 {
		t.Fatal("no withdrawals")
	}
	if res.Failures != 0 {
		t.Errorf("%d lookups failed with K=1 + migration", res.Failures)
	}
}

func TestChurnSimConsistentAfterRepair(t *testing.T) {
	w := testWorld(t)
	res, err := RunChurnSim(w, ChurnSimConfig{
		K:              3,
		NumGUIDs:       200,
		NumLookups:     500,
		DurationSec:    60,
		WithdrawPerSec: 0.3,
		AnnouncePerSec: 0.3,
		Seed:           15,
	})
	if err != nil {
		t.Fatal(err)
	}
	// After withdrawal migration and the announce-repair sweep, the
	// deployment must satisfy every placement invariant.
	if res.Consistency.MissingReplicas != 0 {
		t.Errorf("missing replicas after churn settles: %v", res.Consistency)
	}
	if res.Consistency.VersionSkews != 0 {
		t.Errorf("version skews after churn: %v", res.Consistency)
	}
}
