package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// UpdateConfig drives the update-latency experiment: §III-A observes
// that "the update latency becomes the largest among the K ASs" because
// replicas are written in parallel, and §IV-B's handoff discussion
// requires updates to finish well inside typical 0.5–1 s WiFi/IP handoff
// times.
type UpdateConfig struct {
	// Ks lists replication factors to evaluate.
	Ks []int
	// NumUpdates is the number of (GUID, source AS) update events.
	NumUpdates int
	// Seed fixes the workload.
	Seed int64
	// Workers bounds the evaluation parallelism (0 = GOMAXPROCS, 1 =
	// serial reference); results are identical for every setting.
	Workers int
}

// UpdateResult holds the per-K update-latency distributions (ms) and the
// per-K fraction of updates completing within the 500 ms handoff budget.
type UpdateResult struct {
	PerK         map[int]*stats.Collector
	WithinBudget map[int]float64
}

// HandoffBudgetMs is the conservative end of the paper's cited handoff
// latencies ("often on the order of 0.5–1 second", §IV-B2a).
const HandoffBudgetMs = 500.0

// RunUpdate measures insert/update completion latency: the maximum RTT
// over the K replicas of each GUID, evaluated grouped by source AS on
// the parallel engine (one Dijkstra per distinct source per unit).
func RunUpdate(w *World, cfg UpdateConfig) (*UpdateResult, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: no K values")
	}
	if cfg.NumUpdates <= 0 {
		return nil, fmt.Errorf("experiments: NumUpdates must be positive")
	}
	maxK := 0
	for _, k := range cfg.Ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: K must be positive, got %d", k)
		}
		if k > maxK {
			maxK = k
		}
	}
	resolver, err := core.NewResolver(guid.MustHasher(maxK, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	src, err := workload.NewWeightedSampler(w.Graph.EndNodeWeights())
	if err != nil {
		return nil, err
	}

	// Each update i touches GUID i from a weighted-random source AS.
	// Group events by source — the engine's work units — preserving
	// GUID order within each group.
	rng := rand.New(rand.NewSource(cfg.Seed))
	bySrc := make(map[int][]int) // src → guid indices (1-based)
	for i := 0; i < cfg.NumUpdates; i++ {
		s := src.Sample(rng)
		bySrc[s] = append(bySrc[s], i+1)
	}
	sources := make([]int, 0, len(bySrc))
	for s := range bySrc {
		sources = append(sources, s)
	}
	sort.Ints(sources)

	type updateScratch struct {
		dist      []topology.Micros
		replicaAS []int
	}
	units, err := engine.Map(cfg.Workers, len(sources),
		func() *updateScratch {
			return &updateScratch{
				dist:      make([]topology.Micros, w.NumAS()),
				replicaAS: make([]int, maxK),
			}
		},
		func(u int, sc *updateScratch) ([]*stats.Collector, error) {
			s := sources[u]
			guids := bySrc[s]
			w.Graph.Dijkstra(s, sc.dist)
			cols := make([]*stats.Collector, len(cfg.Ks))
			for i := range cols {
				cols[i] = stats.NewCollector(len(guids))
			}
			for _, gi := range guids {
				g := guid.FromUint64(uint64(gi))
				for r := 0; r < maxK; r++ {
					p, err := resolver.PlaceReplica(g, r)
					if err != nil {
						return nil, err
					}
					sc.replicaAS[r] = p.AS
				}
				for i, k := range cfg.Ks {
					var max topology.Micros
					for r := 0; r < k; r++ {
						if rtt := w.Graph.RTT(s, sc.replicaAS[r], sc.dist); rtt > max {
							max = rtt
						}
					}
					cols[i].Add(max.Millis())
				}
			}
			return cols, nil
		})
	if err != nil {
		return nil, err
	}

	res := &UpdateResult{
		PerK:         make(map[int]*stats.Collector, len(cfg.Ks)),
		WithinBudget: make(map[int]float64, len(cfg.Ks)),
	}
	for i, k := range cfg.Ks {
		col := stats.NewCollector(cfg.NumUpdates)
		for _, u := range units {
			col.Merge(u[i])
		}
		res.PerK[k] = col
		res.WithinBudget[k] = col.FractionBelow(HandoffBudgetMs)
	}
	return res, nil
}

// String renders the update-latency table.
func (r *UpdateResult) String() string {
	ks := make([]int, 0, len(r.PerK))
	for k := range r.PerK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %10s %10s %10s %16s\n", "K", "mean(ms)", "median(ms)", "p95(ms)", "within 500ms")
	for _, k := range ks {
		c := r.PerK[k]
		fmt.Fprintf(&b, "%-4d %10.1f %10.1f %10.1f %15.2f%%\n",
			k, c.Mean(), c.Median(), c.Percentile(95), 100*r.WithinBudget[k])
	}
	return b.String()
}
