package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// UpdateConfig drives the update-latency experiment: §III-A observes
// that "the update latency becomes the largest among the K ASs" because
// replicas are written in parallel, and §IV-B's handoff discussion
// requires updates to finish well inside typical 0.5–1 s WiFi/IP handoff
// times.
type UpdateConfig struct {
	// Ks lists replication factors to evaluate.
	Ks []int
	// NumUpdates is the number of (GUID, source AS) update events.
	NumUpdates int
	// Seed fixes the workload.
	Seed int64
}

// UpdateResult holds the per-K update-latency distributions (ms) and the
// per-K fraction of updates completing within the 500 ms handoff budget.
type UpdateResult struct {
	PerK         map[int]*stats.Collector
	WithinBudget map[int]float64
}

// HandoffBudgetMs is the conservative end of the paper's cited handoff
// latencies ("often on the order of 0.5–1 second", §IV-B2a).
const HandoffBudgetMs = 500.0

// RunUpdate measures insert/update completion latency: the maximum RTT
// over the K replicas of each GUID, evaluated grouped by source AS.
func RunUpdate(w *World, cfg UpdateConfig) (*UpdateResult, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: no K values")
	}
	if cfg.NumUpdates <= 0 {
		return nil, fmt.Errorf("experiments: NumUpdates must be positive")
	}
	maxK := 0
	for _, k := range cfg.Ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: K must be positive, got %d", k)
		}
		if k > maxK {
			maxK = k
		}
	}
	resolver, err := core.NewResolver(guid.MustHasher(maxK, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	src, err := workload.NewWeightedSampler(w.Graph.EndNodeWeights())
	if err != nil {
		return nil, err
	}

	// Each update i touches GUID i from a weighted-random source AS.
	type ev struct {
		guidIdx int
		src     int
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]ev, cfg.NumUpdates)
	for i := range events {
		events[i] = ev{guidIdx: i + 1, src: src.Sample(rng)}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].src < events[j].src })

	res := &UpdateResult{
		PerK:         make(map[int]*stats.Collector, len(cfg.Ks)),
		WithinBudget: make(map[int]float64, len(cfg.Ks)),
	}
	for _, k := range cfg.Ks {
		res.PerK[k] = stats.NewCollector(cfg.NumUpdates)
	}

	dist := make([]topology.Micros, w.NumAS())
	lastSrc := -1
	replicaAS := make([]int, maxK)
	for _, e := range events {
		if e.src != lastSrc {
			w.Graph.Dijkstra(e.src, dist)
			lastSrc = e.src
		}
		g := guid.FromUint64(uint64(e.guidIdx))
		for r := 0; r < maxK; r++ {
			p, err := resolver.PlaceReplica(g, r)
			if err != nil {
				return nil, err
			}
			replicaAS[r] = p.AS
		}
		for _, k := range cfg.Ks {
			var max topology.Micros
			for r := 0; r < k; r++ {
				if rtt := w.Graph.RTT(e.src, replicaAS[r], dist); rtt > max {
					max = rtt
				}
			}
			res.PerK[k].Add(max.Millis())
		}
	}
	for _, k := range cfg.Ks {
		res.WithinBudget[k] = res.PerK[k].FractionBelow(HandoffBudgetMs)
	}
	return res, nil
}

// String renders the update-latency table.
func (r *UpdateResult) String() string {
	ks := make([]int, 0, len(r.PerK))
	for k := range r.PerK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %10s %10s %10s %16s\n", "K", "mean(ms)", "median(ms)", "p95(ms)", "within 500ms")
	for _, k := range ks {
		c := r.PerK[k]
		fmt.Fprintf(&b, "%-4d %10.1f %10.1f %10.1f %15.2f%%\n",
			k, c.Mean(), c.Median(), c.Percentile(95), 100*r.WithinBudget[k])
	}
	return b.String()
}
