package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// UpdateConfig drives the update-latency experiment: §III-A observes
// that "the update latency becomes the largest among the K ASs" because
// replicas are written in parallel, and §IV-B's handoff discussion
// requires updates to finish well inside typical 0.5–1 s WiFi/IP handoff
// times.
type UpdateConfig struct {
	// Ks lists replication factors to evaluate.
	Ks []int
	// NumUpdates is the number of (GUID, source AS) update events.
	NumUpdates int
	// Seed fixes the workload.
	Seed int64
	// Workers bounds the evaluation parallelism (0 = GOMAXPROCS, 1 =
	// serial reference); results are identical for every setting.
	Workers int
	// Batch models the v2 batched wire protocol: updates from one
	// source AS to one replica AS share frames, up to Batch entries per
	// frame (wire.MaxBatch on the real path). ≤ 1 models the sequential
	// v1 protocol: one frame per (update, replica). Latency is
	// unaffected — replicas are still written in parallel — but the
	// frame count, the actual per-message cost §VI's update rates
	// multiply, drops by up to Batch×.
	Batch int
}

// UpdateResult holds the per-K update-latency distributions (ms), the
// per-K fraction of updates completing within the 500 ms handoff
// budget, and the per-K wire-frame counts under the configured batch
// size.
type UpdateResult struct {
	PerK         map[int]*stats.Collector
	WithinBudget map[int]float64
	// Frames is the number of wire frames the update stream costs per K:
	// Σ over (source AS, replica AS) pairs of ⌈updates/Batch⌉.
	Frames map[int]int64
	// Batch echoes the modeled batch size (1 = sequential v1).
	Batch int
}

// HandoffBudgetMs is the conservative end of the paper's cited handoff
// latencies ("often on the order of 0.5–1 second", §IV-B2a).
const HandoffBudgetMs = 500.0

// RunUpdate measures insert/update completion latency: the maximum RTT
// over the K replicas of each GUID, evaluated grouped by source AS on
// the parallel engine (one Dijkstra per distinct source per unit).
func RunUpdate(w *World, cfg UpdateConfig) (*UpdateResult, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: no K values")
	}
	if cfg.NumUpdates <= 0 {
		return nil, fmt.Errorf("experiments: NumUpdates must be positive")
	}
	maxK := 0
	for _, k := range cfg.Ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: K must be positive, got %d", k)
		}
		if k > maxK {
			maxK = k
		}
	}
	resolver, err := core.NewResolver(guid.MustHasher(maxK, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	src, err := workload.NewWeightedSampler(w.Graph.EndNodeWeights())
	if err != nil {
		return nil, err
	}

	// Each update i touches GUID i from a weighted-random source AS.
	// Group events by source — the engine's work units — preserving
	// GUID order within each group.
	rng := rand.New(rand.NewSource(cfg.Seed))
	bySrc := make(map[int][]int) // src → guid indices (1-based)
	for i := 0; i < cfg.NumUpdates; i++ {
		s := src.Sample(rng)
		bySrc[s] = append(bySrc[s], i+1)
	}
	sources := make([]int, 0, len(bySrc))
	for s := range bySrc {
		sources = append(sources, s)
	}
	sort.Ints(sources)

	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}

	type updateScratch struct {
		dist      []topology.Micros
		replicaAS []int
	}
	type updateUnit struct {
		cols   []*stats.Collector
		frames []int64 // per-K wire frames from this source
	}
	units, err := engine.Map(cfg.Workers, len(sources),
		func() *updateScratch {
			return &updateScratch{
				dist:      make([]topology.Micros, w.NumAS()),
				replicaAS: make([]int, maxK),
			}
		},
		func(u int, sc *updateScratch) (updateUnit, error) {
			s := sources[u]
			guids := bySrc[s]
			w.Graph.Dijkstra(s, sc.dist)
			out := updateUnit{
				cols:   make([]*stats.Collector, len(cfg.Ks)),
				frames: make([]int64, len(cfg.Ks)),
			}
			for i := range out.cols {
				out.cols[i] = stats.NewCollector(len(guids))
			}
			// perAS[i] counts updates from this source per replica AS at
			// K = cfg.Ks[i], for the batched frame model.
			perAS := make([]map[int]int, len(cfg.Ks))
			for i := range perAS {
				perAS[i] = make(map[int]int)
			}
			for _, gi := range guids {
				g := guid.FromUint64(uint64(gi))
				for r := 0; r < maxK; r++ {
					p, err := resolver.PlaceReplica(g, r)
					if err != nil {
						return updateUnit{}, err
					}
					sc.replicaAS[r] = p.AS
				}
				for i, k := range cfg.Ks {
					var max topology.Micros
					for r := 0; r < k; r++ {
						if rtt := w.Graph.RTT(s, sc.replicaAS[r], sc.dist); rtt > max {
							max = rtt
						}
						perAS[i][sc.replicaAS[r]]++
					}
					out.cols[i].Add(max.Millis())
				}
			}
			for i := range cfg.Ks {
				for _, n := range perAS[i] {
					out.frames[i] += int64((n + batch - 1) / batch)
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	res := &UpdateResult{
		PerK:         make(map[int]*stats.Collector, len(cfg.Ks)),
		WithinBudget: make(map[int]float64, len(cfg.Ks)),
		Frames:       make(map[int]int64, len(cfg.Ks)),
		Batch:        batch,
	}
	for i, k := range cfg.Ks {
		col := stats.NewCollector(cfg.NumUpdates)
		var frames int64
		for _, u := range units {
			col.Merge(u.cols[i])
			frames += u.frames[i]
		}
		res.PerK[k] = col
		res.WithinBudget[k] = col.FractionBelow(HandoffBudgetMs)
		res.Frames[k] = frames
	}
	return res, nil
}

// String renders the update-latency table. With Batch > 1 it adds the
// modeled wire-frame count per K; the Batch ≤ 1 rendering is unchanged
// from the sequential protocol's.
func (r *UpdateResult) String() string {
	ks := make([]int, 0, len(r.PerK))
	for k := range r.PerK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	var b strings.Builder
	if r.Batch > 1 {
		fmt.Fprintf(&b, "%-4s %10s %10s %10s %16s %12s\n", "K", "mean(ms)", "median(ms)", "p95(ms)", "within 500ms", fmt.Sprintf("frames(B=%d)", r.Batch))
		for _, k := range ks {
			c := r.PerK[k]
			fmt.Fprintf(&b, "%-4d %10.1f %10.1f %10.1f %15.2f%% %12d\n",
				k, c.Mean(), c.Median(), c.Percentile(95), 100*r.WithinBudget[k], r.Frames[k])
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-4s %10s %10s %10s %16s\n", "K", "mean(ms)", "median(ms)", "p95(ms)", "within 500ms")
	for _, k := range ks {
		c := r.PerK[k]
		fmt.Fprintf(&b, "%-4d %10.1f %10.1f %10.1f %15.2f%%\n",
			k, c.Mean(), c.Median(), c.Percentile(95), 100*r.WithinBudget[k])
	}
	return b.String()
}
