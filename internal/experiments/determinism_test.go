package experiments

import (
	"reflect"
	"testing"

	"dmap/internal/topology"
)

// The engine's contract is that worker count never changes results
// (internal/engine): work units are evaluated independently, PRNG
// streams are seeded per unit and the merge runs in input order. These
// tests hold every ported driver to that contract bit-for-bit —
// reflect.DeepEqual reaches the raw collector samples, not just
// summaries, so a float added in a different order fails the test.

// workerSweep runs f at several worker counts and requires each result
// to deep-equal the serial (Workers: 1) reference.
func workerSweep(t *testing.T, name string, f func(workers int) (any, error)) {
	t.Helper()
	ref, err := f(1)
	if err != nil {
		t.Fatalf("%s serial reference: %v", name, err)
	}
	for _, workers := range []int{0, 2, 3, 7} {
		got, err := f(workers)
		if err != nil {
			t.Fatalf("%s workers=%d: %v", name, workers, err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Errorf("%s: workers=%d diverged from the serial reference", name, workers)
		}
	}
}

func TestLatencyDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	// MissRate > 0 exercises the per-(K, source) seeded sampling, the
	// hardest part of the guarantee.
	workerSweep(t, "RunLatency", func(workers int) (any, error) {
		return RunLatency(w, LatencyConfig{
			Ks: []int{1, 3, 5}, NumGUIDs: 500, NumLookups: 5000,
			LocalReplica: true, MissRate: 0.05, Seed: 11, Workers: workers,
		})
	})
}

func TestUpdateDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	workerSweep(t, "RunUpdate", func(workers int) (any, error) {
		return RunUpdate(w, UpdateConfig{
			Ks: []int{1, 3, 5}, NumUpdates: 2000, Seed: 11, Workers: workers,
		})
	})
}

func TestCachingDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	workerSweep(t, "RunCaching", func(workers int) (any, error) {
		return RunCaching(w, CachingConfig{
			K: 3, NumGUIDs: 500, NumLookups: 5000,
			DurationSec:      3600,
			UpdateRatePerSec: 100.0 / 86400,
			TTLs:             []topology.Micros{0, 10_000_000, 600_000_000},
			CacheCapacity:    64,
			Seed:             11,
			Workers:          workers,
		})
	})
}

func TestQueryLoadDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	workerSweep(t, "RunQueryLoad", func(workers int) (any, error) {
		return RunQueryLoad(w, QueryLoadConfig{
			Ks: []int{1, 5}, NumGUIDs: 500, NumLookups: 5000,
			Seed: 11, Workers: workers,
		})
	})
}

func TestBaselinesDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	workerSweep(t, "RunBaselines", func(workers int) (any, error) {
		return RunBaselines(w, BaselinesConfig{
			K: 3, NumGUIDs: 100, NumLookups: 1000,
			CacheCapacity: 256, Seed: 11, Workers: workers,
		})
	})
}

func TestChurnSimDeterministicAcrossWorkers(t *testing.T) {
	// RunChurnSim applies withdrawals and announcements to the world's
	// live prefix table, so each run needs a fresh (small) world — the
	// shared fixture would drift between sweep iterations.
	workerSweep(t, "RunChurnSim", func(workers int) (any, error) {
		w, err := NewWorld(TestScale(500, 7))
		if err != nil {
			return nil, err
		}
		return RunChurnSim(w, ChurnSimConfig{
			K: 3, NumGUIDs: 300, NumLookups: 2000,
			DurationSec:    120,
			WithdrawPerSec: 0.1,
			AnnouncePerSec: 0.1,
			Seed:           11,
			Workers:        workers,
		})
	})
}

func TestAvailabilityDeterministicAcrossWorkers(t *testing.T) {
	w := testWorld(t)
	// Loss > 0 and several failure fractions make this the non-trivial
	// fault plan: every cell draws from its per-(K, failFrac, source)
	// seeded stream, the hardest part of the guarantee.
	workerSweep(t, "RunAvailability", func(workers int) (any, error) {
		return RunAvailability(w, availConfig(workers))
	})
}
