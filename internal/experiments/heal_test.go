package experiments

import (
	"reflect"
	"testing"

	"dmap/internal/simnet"
)

func healTestConfig() HealConfig {
	return HealConfig{
		NumAS:           80,
		K:               3,
		LocalReplica:    true,
		NumGUIDs:        15,
		StaleProbes:     120,
		GossipIntervals: []simnet.Time{100_000, 1_000_000}, // 100 ms, 1 s
		Seed:            7,
	}
}

func TestRunHealConverges(t *testing.T) {
	res, err := RunHeal(healTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Rounds < 1 {
			t.Errorf("interval %d: converged in %d rounds; the partition left nothing to repair",
				c.GossipInterval, c.Rounds)
		}
		if c.EntriesRepaired == 0 {
			t.Errorf("interval %d: no entries repaired", c.GossipInterval)
		}
		if c.ConvergenceTime < c.GossipInterval {
			t.Errorf("interval %d: convergence time %d shorter than one interval",
				c.GossipInterval, c.ConvergenceTime)
		}
		if c.StaleReads == 0 {
			t.Errorf("interval %d: post-heal probes saw no staleness; the divergence window is not being measured",
				c.GossipInterval)
		}
		if c.Probes != 120 {
			t.Errorf("interval %d: probes = %d", c.GossipInterval, c.Probes)
		}
	}
	// A longer gossip interval cannot converge faster: the same number
	// of rounds takes proportionally longer.
	if res.Cells[0].ConvergenceTime > res.Cells[1].ConvergenceTime {
		t.Errorf("convergence not monotone in interval: %d @%d vs %d @%d",
			res.Cells[0].ConvergenceTime, res.Cells[0].GossipInterval,
			res.Cells[1].ConvergenceTime, res.Cells[1].GossipInterval)
	}
	if testing.Verbose() {
		t.Logf("\n%s", res)
	}
}

func TestRunHealDeterministic(t *testing.T) {
	a, err := RunHeal(healTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunHeal(healTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("heal sweep not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestRunHealValidation(t *testing.T) {
	if _, err := RunHeal(HealConfig{}); err == nil {
		t.Error("empty interval sweep accepted")
	}
	if _, err := RunHeal(HealConfig{GossipIntervals: []simnet.Time{0}}); err == nil {
		t.Error("zero interval accepted")
	}
}
