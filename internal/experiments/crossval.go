package experiments

import (
	"fmt"
	"math"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/nodesim"
	"dmap/internal/simnet"
	"dmap/internal/stats"
	"dmap/internal/store"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// CrossValConfig drives the engine cross-validation: the same workload
// evaluated through (a) the closed-form grouped evaluator used for the
// figure-scale runs and (b) the message-level discrete-event engine. The
// two implementations share no latency code paths beyond the topology,
// so agreement validates both (DESIGN.md "Scale strategy").
type CrossValConfig struct {
	K          int
	NumGUIDs   int
	NumLookups int
	Seed       int64
}

// CrossValResult compares the two engines.
type CrossValResult struct {
	ClosedForm stats.Summary // ms
	EventSim   stats.Summary // ms
	// MaxAbsDiffMs is the largest per-query latency disagreement.
	MaxAbsDiffMs float64
	// Queries is the number of compared lookups.
	Queries int
}

// RunCrossVal executes the comparison. Failure-free lookups are used so
// both engines should agree exactly up to integer-microsecond rounding.
func RunCrossVal(w *World, cfg CrossValConfig) (*CrossValResult, error) {
	if cfg.K <= 0 || cfg.NumGUIDs <= 0 || cfg.NumLookups <= 0 {
		return nil, fmt.Errorf("experiments: invalid cross-validation config")
	}
	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	resolver, err := core.NewResolver(guid.MustHasher(cfg.K, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Resolver: resolver, NumAS: w.NumAS(), LocalReplica: false,
	})
	if err != nil {
		return nil, err
	}

	// Populate the stores once; both engines read the same state.
	for gi := 0; gi < cfg.NumGUIDs; gi++ {
		e := store.Entry{
			GUID:    guid.FromUint64(uint64(gi) + 1),
			NAs:     []store.NA{{AS: trace.HomeAS[gi], Addr: netaddr.Addr(gi)}},
			Version: 1,
		}
		if _, err := sys.Insert(e, trace.HomeAS[gi]); err != nil {
			return nil, err
		}
	}

	cache, err := topology.NewDistCache(w.Graph, w.NumAS())
	if err != nil {
		return nil, err
	}

	// (a) Closed-form: core.System.Lookup with the cached latency model.
	closed := stats.NewCollector(cfg.NumLookups)
	closedVals := make([]topology.Micros, cfg.NumLookups)
	for i, ev := range trace.Lookups {
		g := guid.FromUint64(uint64(ev.GUIDIndex) + 1)
		_, outcome, err := sys.Lookup(g, ev.SrcAS, cache, core.LookupOptions{})
		if err != nil {
			return nil, fmt.Errorf("closed-form lookup %d: %w", i, err)
		}
		closed.Add(outcome.RTT.Millis())
		closedVals[i] = outcome.RTT
	}

	// (b) Event-driven: the same lookups as scheduled messages.
	dep, err := nodesim.NewDeployment(sys, simnet.New(), cache, 0)
	if err != nil {
		return nil, err
	}
	eventVals := make([]topology.Micros, cfg.NumLookups)
	evCol := stats.NewCollector(cfg.NumLookups)
	for i, ev := range trace.Lookups {
		i, ev := i, ev
		g := guid.FromUint64(uint64(ev.GUIDIndex) + 1)
		// Space queries far apart so each completes in isolation.
		at := simnet.Time(i) * 10_000_000
		if err := dep.Sim().At(at, func() {
			err := dep.Lookup(ev.SrcAS, g, func(r nodesim.LookupResult) {
				if !r.Found {
					eventVals[i] = -1
					return
				}
				eventVals[i] = r.Latency
			})
			if err != nil {
				eventVals[i] = -1
			}
		}); err != nil {
			return nil, err
		}
	}
	dep.Sim().Run(0)

	maxDiff := 0.0
	for i := range eventVals {
		if eventVals[i] < 0 {
			return nil, fmt.Errorf("event-sim lookup %d failed", i)
		}
		evCol.Add(eventVals[i].Millis())
		if d := math.Abs(eventVals[i].Millis() - closedVals[i].Millis()); d > maxDiff {
			maxDiff = d
		}
	}
	return &CrossValResult{
		ClosedForm:   closed.Summarize(),
		EventSim:     evCol.Summarize(),
		MaxAbsDiffMs: maxDiff,
		Queries:      cfg.NumLookups,
	}, nil
}

// String renders the comparison.
func (r *CrossValResult) String() string {
	return fmt.Sprintf(
		"closed-form: %v\nevent-sim:   %v\nmax per-query |Δ| = %.3f ms over %d queries\n",
		r.ClosedForm, r.EventSim, r.MaxAbsDiffMs, r.Queries)
}
