package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// LatencyConfig drives the query-response-time experiments (Fig. 4,
// Table I, Fig. 5 and the selection/local-replica ablations).
type LatencyConfig struct {
	// Ks lists the replication factors to evaluate (Fig. 4: 1, 3, 5).
	Ks []int
	// NumGUIDs / NumLookups size the workload (paper: 10^5 / 10^6).
	NumGUIDs   int
	NumLookups int
	// MissRate is the per-replica probability of a "GUID missing" reply
	// caused by BGP-churn inconsistency (Fig. 5: 0, 0.05, 0.10).
	MissRate float64
	// LocalReplica stores an extra copy at each GUID's attachment AS and
	// lets same-AS queries resolve locally (§III-C). The paper's runs
	// keep it on.
	LocalReplica bool
	// Selection is the replica-choice policy; zero means lowest RTT.
	Selection core.SelectionPolicy
	// MaxRehash is Algorithm 1's M; zero selects the default (10).
	MaxRehash int
	// HashToASNumbers switches to the §VII variant placing GUIDs
	// uniformly over AS numbers instead of announced addresses.
	HashToASNumbers bool
	// Seed fixes workload generation and failure sampling.
	Seed int64
	// Workers bounds the evaluation parallelism: grouped-by-source work
	// units spread over this many engine workers. 0 means GOMAXPROCS; 1
	// is the serial reference path. Results are bit-identical for every
	// setting (see internal/engine).
	Workers int
}

// LatencyResult holds per-K round-trip-time distributions in
// milliseconds.
type LatencyResult struct {
	PerK map[int]*stats.Collector
	// LocalHits counts lookups answered by the local replica, per K.
	LocalHits map[int]int
	// Retries counts extra replica contacts forced by misses, per K.
	Retries map[int]int
}

// RunLatency evaluates DMap query response times on w.
//
// Queries are evaluated grouped by source AS — one Dijkstra per distinct
// source — which is exact for these experiments because lookups are
// mutually independent (DESIGN.md, "Scale strategy"). The groups are the
// engine's work units: they run on cfg.Workers workers with per-worker
// scratch vectors, per-(K, source) seeded miss sampling, and a merge in
// source order, so every worker count yields bit-identical results.
func RunLatency(w *World, cfg LatencyConfig) (*LatencyResult, error) {
	if len(cfg.Ks) == 0 {
		return nil, fmt.Errorf("experiments: no K values")
	}
	if cfg.MissRate < 0 || cfg.MissRate >= 1 {
		return nil, fmt.Errorf("experiments: miss rate %g out of [0,1)", cfg.MissRate)
	}
	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Group lookups by source AS.
	bySrc := make(map[int][]int)
	for i, ev := range trace.Lookups {
		bySrc[ev.SrcAS] = append(bySrc[ev.SrcAS], i)
	}
	sources := make([]int, 0, len(bySrc))
	for src := range bySrc {
		sources = append(sources, src)
	}
	sort.Ints(sources)

	res := &LatencyResult{
		PerK:      make(map[int]*stats.Collector, len(cfg.Ks)),
		LocalHits: make(map[int]int, len(cfg.Ks)),
		Retries:   make(map[int]int, len(cfg.Ks)),
	}

	// Placements per GUID per K, computed once. Because the hash family
	// is domain-separated on the replica index, the K=5 placements of a
	// GUID extend its K=3 placements; one resolver at max K serves all.
	maxK := 0
	for _, k := range cfg.Ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: K must be positive, got %d", k)
		}
		if k > maxK {
			maxK = k
		}
	}
	resolver, err := core.NewResolver(guid.MustHasher(maxK, 0), w.Table, cfg.MaxRehash)
	if err != nil {
		return nil, err
	}
	placements := make([][]int32, cfg.NumGUIDs)
	for gi := 0; gi < cfg.NumGUIDs; gi++ {
		g := guid.FromUint64(uint64(gi) + 1)
		ass := make([]int32, maxK)
		for r := 0; r < maxK; r++ {
			var p core.Placement
			var err error
			if cfg.HashToASNumbers {
				p, err = resolver.PlaceByASNumber(g, r, w.NumAS())
			} else {
				p, err = resolver.PlaceReplica(g, r)
			}
			if err != nil {
				return nil, err
			}
			ass[r] = int32(p.AS)
		}
		placements[gi] = ass
	}

	// One engine unit per distinct source: one Dijkstra serves every K.
	type unitK struct {
		col       *stats.Collector
		localHits int
		retries   int
	}
	type latencyScratch struct {
		dist    []topology.Micros
		hops    []int32
		replica []int
		cands   []lookupCand
	}
	needHops := cfg.Selection == core.SelectLeastHops
	units, err := engine.Map(cfg.Workers, len(sources),
		func() *latencyScratch {
			sc := &latencyScratch{
				dist:    make([]topology.Micros, w.NumAS()),
				replica: make([]int, maxK),
				cands:   make([]lookupCand, maxK),
			}
			if needHops {
				sc.hops = make([]int32, w.NumAS())
			}
			return sc
		},
		func(u int, sc *latencyScratch) ([]unitK, error) {
			src := sources[u]
			lookups := bySrc[src]
			w.Graph.Dijkstra(src, sc.dist)
			if sc.hops != nil {
				w.Graph.HopBFS(src, sc.hops)
			}
			out := make([]unitK, len(cfg.Ks))
			for i, k := range cfg.Ks {
				st := &out[i]
				st.col = stats.NewCollector(len(lookups))
				var rng *rand.Rand
				if cfg.MissRate > 0 {
					rng = rand.New(rand.NewSource(missSeed(cfg.Seed, k, src)))
				}
				for _, li := range lookups {
					ev := trace.Lookups[li]
					all := placements[ev.GUIDIndex]
					replicas := sc.replica[:k]
					for r := range replicas {
						replicas[r] = int(all[r])
					}
					rtt, usedLocal, extra := evalLookup(w.Graph, src, replicas, sc.dist, sc.hops, sc.cands, evalOpts{
						localAS:  localASFor(cfg, trace, ev.GUIDIndex),
						missRate: cfg.MissRate,
						rng:      rng,
					})
					st.col.Add(rtt.Millis())
					if usedLocal {
						st.localHits++
					}
					st.retries += extra
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	// Deterministic merge: per-unit collectors concatenate in source
	// order, so sample order — and every float statistic computed from
	// it — is independent of how workers interleaved.
	for i, k := range cfg.Ks {
		col := stats.NewCollector(cfg.NumLookups)
		localHits, retries := 0, 0
		for _, u := range units {
			col.Merge(u[i].col)
			localHits += u[i].localHits
			retries += u[i].retries
		}
		res.PerK[k] = col
		res.LocalHits[k] = localHits
		res.Retries[k] = retries
	}
	return res, nil
}

// missSeed derives the per-(K, source) miss-sampling seed. Seeding each
// unit independently — instead of drawing from one stream shared across
// sources — is what lets the engine evaluate sources in any order and
// still produce bit-identical results at every worker count.
func missSeed(seed int64, k, src int) int64 {
	return seed + int64(k)*7919 + int64(src)*104729 + 1
}

func localASFor(cfg LatencyConfig, trace *workload.Trace, guidIdx int) int {
	if !cfg.LocalReplica {
		return -1
	}
	return trace.HomeAS[guidIdx]
}

type evalOpts struct {
	// localAS is the GUID's attachment AS holding the §III-C local copy
	// (-1 when local replication is off).
	localAS  int
	missRate float64
	rng      *rand.Rand
}

// lookupCand is one replica candidate during closed-form evaluation.
type lookupCand struct {
	as   int
	rtt  topology.Micros
	cost int64
}

// evalLookup reproduces core.System.Lookup's latency semantics in closed
// form over a source-rooted distance vector: replicas are tried in
// selection-policy order; each churn miss costs its RTT; the parallel
// local lookup wins if it is faster than the eventual global answer.
// scratch must have capacity ≥ len(replicas); it keeps the hot loop
// allocation-free.
func evalLookup(g *topology.Graph, src int, replicas []int, dist []topology.Micros, hops []int32, scratch []lookupCand, o evalOpts) (topology.Micros, bool, int) {
	cands := scratch[:len(replicas)]
	for i, as := range replicas {
		c := lookupCand{as: as, rtt: g.RTT(src, as, dist)}
		if hops != nil {
			c.cost = int64(hops[as])
		} else {
			c.cost = int64(c.rtt)
		}
		cands[i] = c
	}
	// Insertion sort: K ≤ 20 and the slice is reused, so this beats
	// sort.Slice's closure allocation on the hottest loop in the repo.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && (cands[j].cost < cands[j-1].cost ||
			(cands[j].cost == cands[j-1].cost && cands[j].as < cands[j-1].as)); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}

	localRTT := topology.Micros(-1)
	if o.localAS == src {
		localRTT = 2 * g.Intra(src)
	}

	var elapsed topology.Micros
	retries := 0
	for i, c := range cands {
		if o.missRate > 0 && o.rng.Float64() < o.missRate {
			elapsed += c.rtt
			retries++
			// If every replica misses this round, the querier retries the
			// closest replica once more; churn inconsistency is transient
			// and a repeat attempt succeeds (cf. §III-D2's re-check).
			if i == len(cands)-1 {
				total := elapsed + cands[0].rtt
				if localRTT >= 0 && localRTT < total {
					return localRTT, true, retries
				}
				return total, false, retries
			}
			continue
		}
		total := elapsed + c.rtt
		if localRTT >= 0 && localRTT < total {
			return localRTT, true, retries
		}
		return total, false, retries
	}
	// Unreachable: the loop always returns.
	return elapsed, false, retries
}

// Table1 summarizes the Fig. 4 distributions the way Table I does.
type Table1Row struct {
	K      int
	Mean   float64
	Median float64
	P95    float64
}

// Table1 extracts Table I rows (mean / median / 95th percentile RTT in
// ms) from a latency result, in ascending K order.
func (r *LatencyResult) Table1() []Table1Row {
	ks := make([]int, 0, len(r.PerK))
	for k := range r.PerK {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	rows := make([]Table1Row, 0, len(ks))
	for _, k := range ks {
		c := r.PerK[k]
		rows = append(rows, Table1Row{
			K:      k,
			Mean:   c.Mean(),
			Median: c.Median(),
			P95:    c.Percentile(95),
		})
	}
	return rows
}

// String renders the result as a Table I-style text table plus CDF
// checkpoints for each K (the Fig. 4 series).
func (r *LatencyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %10s %10s %10s %10s %10s\n", "K", "mean(ms)", "median(ms)", "p95(ms)", "localHits", "retries")
	for _, row := range r.Table1() {
		fmt.Fprintf(&b, "%-4d %10.1f %10.1f %10.1f %10d %10d\n",
			row.K, row.Mean, row.Median, row.P95, r.LocalHits[row.K], r.Retries[row.K])
	}
	return b.String()
}

// CDFSeries returns the Fig. 4 / Fig. 5 plot series for one K: points of
// (RTT ms, cumulative fraction).
func (r *LatencyResult) CDFSeries(k, points int) []stats.CDFPoint {
	c, ok := r.PerK[k]
	if !ok {
		return nil
	}
	return c.CDF(points)
}
