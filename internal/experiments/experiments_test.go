package experiments

import (
	"strings"
	"sync"
	"testing"

	"dmap/internal/core"
)

var (
	worldOnce sync.Once
	worldVal  *World
	worldErr  error
)

// testWorld memoizes a 2000-AS world across tests in this package.
func testWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		worldVal, worldErr = NewWorld(TestScale(2000, 7))
	})
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return worldVal
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestWorldShape(t *testing.T) {
	w := testWorld(t)
	if w.NumAS() != 2000 {
		t.Errorf("NumAS = %d", w.NumAS())
	}
	frac := w.Table.AnnouncedFraction()
	if frac < 0.45 || frac > 0.60 {
		t.Errorf("announced fraction = %v", frac)
	}
}

func TestRunLatencyValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := RunLatency(w, LatencyConfig{}); err == nil {
		t.Error("no Ks should fail")
	}
	if _, err := RunLatency(w, LatencyConfig{Ks: []int{1}, NumGUIDs: 10, NumLookups: 10, MissRate: 1.0}); err == nil {
		t.Error("miss rate 1.0 should fail")
	}
}

func TestFig4ReplicationReducesLatency(t *testing.T) {
	w := testWorld(t)
	res, err := RunLatency(w, LatencyConfig{
		Ks:           []int{1, 3, 5},
		NumGUIDs:     2000,
		NumLookups:   20000,
		LocalReplica: true,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Table1()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fig. 4's leftward shift: every summary statistic improves with K.
	for i := 1; i < len(rows); i++ {
		if rows[i].Median >= rows[i-1].Median {
			t.Errorf("median did not improve: K=%d %.1f vs K=%d %.1f",
				rows[i].K, rows[i].Median, rows[i-1].K, rows[i-1].Median)
		}
		if rows[i].P95 >= rows[i-1].P95 {
			t.Errorf("p95 did not improve: K=%d %.1f vs K=%d %.1f",
				rows[i].K, rows[i].P95, rows[i-1].K, rows[i-1].P95)
		}
	}
	// Table I's headline ratio: K=5 roughly halves the 95th percentile
	// vs K=1 (paper: 172.8 → 86.1 ms). Accept a broad band.
	ratio := rows[2].P95 / rows[0].P95
	if ratio > 0.8 || ratio < 0.3 {
		t.Errorf("p95(K=5)/p95(K=1) = %.2f, want ≈0.5", ratio)
	}
	if !strings.Contains(res.String(), "median") {
		t.Error("String should render a table")
	}
	if pts := res.CDFSeries(5, 10); len(pts) != 10 {
		t.Errorf("CDF series length %d", len(pts))
	}
	if res.CDFSeries(99, 10) != nil {
		t.Error("unknown K should give nil series")
	}
}

func TestFig5ChurnIncreasesTail(t *testing.T) {
	w := testWorld(t)
	base, err := RunLatency(w, LatencyConfig{
		Ks: []int{5}, NumGUIDs: 1000, NumLookups: 10000, LocalReplica: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	churn, err := RunLatency(w, LatencyConfig{
		Ks: []int{5}, NumGUIDs: 1000, NumLookups: 10000, LocalReplica: true, Seed: 2,
		MissRate: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, c := base.PerK[5], churn.PerK[5]
	// Fig. 5: 5% failures barely move the median but fatten the tail.
	if c.Percentile(95) <= b.Percentile(95) {
		t.Errorf("p95 with churn %.1f ≤ baseline %.1f", c.Percentile(95), b.Percentile(95))
	}
	medianShift := c.Median() / b.Median()
	if medianShift > 1.25 {
		t.Errorf("median shifted %.2fx under 5%% churn, want small shift", medianShift)
	}
	if churn.Retries[5] == 0 {
		t.Error("5% churn should force retries")
	}
	if base.Retries[5] != 0 {
		t.Error("0% churn should not retry")
	}
}

func TestLocalReplicaAblation(t *testing.T) {
	w := testWorld(t)
	on, err := RunLatency(w, LatencyConfig{
		Ks: []int{5}, NumGUIDs: 1000, NumLookups: 10000, LocalReplica: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	off, err := RunLatency(w, LatencyConfig{
		Ks: []int{5}, NumGUIDs: 1000, NumLookups: 10000, LocalReplica: false, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if on.LocalHits[5] == 0 {
		t.Error("local replica on: expected some local hits (popular GUIDs live in populous ASs)")
	}
	if off.LocalHits[5] != 0 {
		t.Error("local replica off: no local hits possible")
	}
	if on.PerK[5].Mean() > off.PerK[5].Mean() {
		t.Errorf("local replica should not hurt: on %.2f vs off %.2f",
			on.PerK[5].Mean(), off.PerK[5].Mean())
	}
}

func TestHopSelectionClose(t *testing.T) {
	w := testWorld(t)
	rtt, err := RunLatency(w, LatencyConfig{
		Ks: []int{5}, NumGUIDs: 500, NumLookups: 5000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	hops, err := RunLatency(w, LatencyConfig{
		Ks: []int{5}, NumGUIDs: 500, NumLookups: 5000, Seed: 4,
		Selection: core.SelectLeastHops,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §IV-B2a: "similar results albeit with marginally increased
	// latencies".
	mR, mH := rtt.PerK[5].Mean(), hops.PerK[5].Mean()
	if mH < mR {
		t.Errorf("hop selection beat RTT selection: %.2f < %.2f", mH, mR)
	}
	if mH > 2.0*mR {
		t.Errorf("hop selection %.2f far worse than RTT %.2f, want marginal", mH, mR)
	}
}

func TestFig6LoadTightensWithScale(t *testing.T) {
	w := testWorld(t)
	res, err := RunLoad(w, LoadConfig{GUIDCounts: []int{5000, 200000}, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	small, big := res.PerCount[5000], res.PerCount[200000]
	if small == nil || big == nil {
		t.Fatal("missing collectors")
	}
	// The CDF sharpens around 1 as the population grows.
	spreadSmall := small.Percentile(95) - small.Percentile(5)
	spreadBig := big.Percentile(95) - big.Percentile(5)
	if spreadBig >= spreadSmall {
		t.Errorf("NLR spread did not tighten: %.2f → %.2f", spreadSmall, spreadBig)
	}
	if res.WithinBand[200000] < 0.75 {
		t.Errorf("only %.0f%% of ASs within [0.4,1.6], paper reports ≈93%%",
			100*res.WithinBand[200000])
	}
	med := big.Median()
	if med < 0.8 || med > 1.4 {
		t.Errorf("median NLR = %.2f, want ≈1 (paper: 1.16)", med)
	}
	if !strings.Contains(res.String(), "in[0.4,1.6]") {
		t.Error("String output")
	}
}

func TestRunLoadValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := RunLoad(w, LoadConfig{K: 5}); err == nil {
		t.Error("no counts should fail")
	}
	if _, err := RunLoad(w, LoadConfig{GUIDCounts: []int{10}, K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestASNumberVariantBalancesUniformly(t *testing.T) {
	w := testWorld(t)
	res, err := RunLoad(w, LoadConfig{GUIDCounts: []int{100000}, K: 5, HashToASNumbers: true})
	if err != nil {
		t.Fatal(err)
	}
	col := res.PerCount[100000]
	// Uniform-over-AS placement: NLR (vs uniform shares) concentrates
	// tightly at 1 regardless of announced share.
	if med := col.Median(); med < 0.9 || med > 1.1 {
		t.Errorf("AS-number variant median NLR = %.2f", med)
	}
}

func TestOverheadMatchesPaperArithmetic(t *testing.T) {
	res, err := RunOverhead(26424, 5e9, 5, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.EntryBits != 352 {
		t.Errorf("entry bits = %d, want 352", res.EntryBits)
	}
	// 5e9 × 5 × 352 / 26424 ≈ 333 Mbit — same order as the paper's
	// 173 Mbit (which appears to average over announced share).
	if res.StoragePerASMbit < 100 || res.StoragePerASMbit > 1000 {
		t.Errorf("storage per AS = %.0f Mbit", res.StoragePerASMbit)
	}
	// §IV-A: "the worldwide combined update traffic would be ∼10 Gb/s".
	if res.UpdateTrafficGbps < 5 || res.UpdateTrafficGbps > 20 {
		t.Errorf("update traffic = %.1f Gb/s, want ≈10", res.UpdateTrafficGbps)
	}
	if !strings.Contains(res.String(), "Gb/s") {
		t.Error("String output")
	}
	if _, err := RunOverhead(0, 1, 1, 1); err == nil {
		t.Error("invalid parameters should fail")
	}
}

func TestHolesMatchesPrediction(t *testing.T) {
	w := testWorld(t)
	res, err := RunHoles(w, 1, 10, 20000)
	if err != nil {
		t.Fatal(err)
	}
	// Depth-0 fraction must match the announced fraction.
	got := float64(res.Stats.DepthCounts[0]) / float64(res.Stats.Samples)
	if diff := got - res.AnnouncedFraction; diff > 0.02 || diff < -0.02 {
		t.Errorf("depth-0 rate %.3f vs announced %.3f", got, res.AnnouncedFraction)
	}
	// §III-B: fallback probability ≈ 0.034% at M=10 with 45% holes.
	if res.Stats.FallbackRate() > 0.005 {
		t.Errorf("fallback rate = %.4f", res.Stats.FallbackRate())
	}
	if res.PredictedFallback > 0.005 {
		t.Errorf("predicted fallback = %.6f", res.PredictedFallback)
	}
	if !strings.Contains(res.String(), "fallbacks") {
		t.Error("String output")
	}
}

func TestBaselinesOrdering(t *testing.T) {
	w := testWorld(t)
	res, err := RunBaselines(w, BaselinesConfig{
		K: 5, NumGUIDs: 500, NumLookups: 3000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]BaselineRow)
	for _, r := range res.Rows {
		byName[r.Scheme] = r
	}
	dmap := byName["DMap (K=5)"]
	chord := byName["Chord DHT"]
	oneHop := byName["One-hop DHT"]
	// The paper's claim: one-hop hashing beats multi-hop DHTs by a wide
	// margin (DHT-MAP: ~8 hops, ~900 ms vs DMap's ~50 ms one-hop).
	if chord.RTT.Mean < 3*dmap.RTT.Mean {
		t.Errorf("Chord %.1f ms not ≫ DMap %.1f ms", chord.RTT.Mean, dmap.RTT.Mean)
	}
	if chord.OverlayHops < 3 {
		t.Errorf("Chord hops = %.1f, want O(log N)", chord.OverlayHops)
	}
	// One-hop DHT has no replica choice: slower than DMap K=5, faster
	// than Chord.
	if !(dmap.RTT.Mean < oneHop.RTT.Mean && oneHop.RTT.Mean < chord.RTT.Mean) {
		t.Errorf("ordering violated: dmap %.1f, one-hop %.1f, chord %.1f",
			dmap.RTT.Mean, oneHop.RTT.Mean, chord.RTT.Mean)
	}
	if !strings.Contains(res.String(), "Chord") {
		t.Error("String output")
	}
}

func TestRunFig7(t *testing.T) {
	res, err := RunFig7(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for name, vals := range res.Series {
		if len(vals) != 20 {
			t.Fatalf("%s has %d points", name, len(vals))
		}
		for k := 1; k < 20; k++ {
			if vals[k] > vals[k-1]+1e-9 {
				t.Errorf("%s bound increases at K=%d", name, k+1)
			}
		}
	}
	if !strings.Contains(res.String(), "present-day") {
		t.Error("String output")
	}
}

func TestMeasuredJellyfishModel(t *testing.T) {
	w := testWorld(t)
	m, err := MeasuredJellyfishModel(w)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.ResponseTimeBoundMs(5)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v > 300 {
		t.Errorf("measured-topology bound = %.1f ms", v)
	}
}

func TestRunMSweep(t *testing.T) {
	w := testWorld(t)
	rows, err := RunMSweep(w, []int{1, 4, 10}, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Fallback rate decays geometrically in M.
	for i := 1; i < len(rows); i++ {
		if rows[i].FallbackRate > rows[i-1].FallbackRate {
			t.Errorf("fallback rate increased: M=%d %.4f → M=%d %.4f",
				rows[i-1].M, rows[i-1].FallbackRate, rows[i].M, rows[i].FallbackRate)
		}
	}
	if rows[0].FallbackRate < 0.2 {
		t.Errorf("M=1 fallback rate = %.3f, want ≈ hole fraction", rows[0].FallbackRate)
	}
	if rows[2].FallbackRate > 0.01 {
		t.Errorf("M=10 fallback rate = %.4f, want ≈0", rows[2].FallbackRate)
	}
	if _, err := RunMSweep(w, nil, 10); err == nil {
		t.Error("empty M list should fail")
	}
}

func TestCrossValidationEnginesAgree(t *testing.T) {
	w := testWorld(t)
	res, err := RunCrossVal(w, CrossValConfig{K: 5, NumGUIDs: 200, NumLookups: 500, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	// The closed-form evaluator and the message-level event simulator
	// share no latency arithmetic beyond the topology; they must agree
	// per query to within integer-microsecond rounding.
	if res.MaxAbsDiffMs > 0.01 {
		t.Errorf("engines disagree by up to %.3f ms", res.MaxAbsDiffMs)
	}
	if res.ClosedForm.N != res.EventSim.N {
		t.Errorf("sample counts differ: %d vs %d", res.ClosedForm.N, res.EventSim.N)
	}
	if res.String() == "" {
		t.Error("String output")
	}
}

func TestCrossValValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := RunCrossVal(w, CrossValConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}
