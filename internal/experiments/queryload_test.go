package experiments

import (
	"strings"
	"testing"
)

func TestQueryLoadValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := RunQueryLoad(w, QueryLoadConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestQueryLoadStructure(t *testing.T) {
	w := testWorld(t)
	res, err := RunQueryLoad(w, QueryLoadConfig{
		Ks: []int{1, 5}, NumGUIDs: 300, NumLookups: 30000, Seed: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Structural invariants only: the direction of concentration is a
	// genuine finding that depends on geography (closest-replica
	// selection can concentrate service at well-positioned ASs), so the
	// test pins consistency, not a direction; EXPERIMENTS.md reports the
	// measured direction.
	for _, row := range res.Rows {
		if row.MaxShare <= 0 || row.MaxShare > 1 {
			t.Errorf("K=%d max share %v out of (0,1]", row.K, row.MaxShare)
		}
		if row.Top10Share < row.MaxShare || row.Top10Share > 1 {
			t.Errorf("K=%d top-10 share %v inconsistent with max %v",
				row.K, row.Top10Share, row.MaxShare)
		}
		if row.NLRp99 < 0 {
			t.Errorf("K=%d NLR p99 %v negative", row.K, row.NLRp99)
		}
		// No single AS should ever carry the majority of global lookups.
		if row.MaxShare > 0.5 {
			t.Errorf("K=%d implausible concentration %.3f", row.K, row.MaxShare)
		}
	}
	if !strings.Contains(res.String(), "top-10") {
		t.Error("String output")
	}
}
