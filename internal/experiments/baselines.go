package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dmap/internal/analytical"
	"dmap/internal/core"
	"dmap/internal/dht"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// BaselinesConfig drives the DMap-vs-alternatives comparison (§II-B,
// §VI): the same workload resolved through DMap, a Chord DHT, a one-hop
// DHT and a MobileIP-style home agent.
type BaselinesConfig struct {
	// K is DMap's replication factor.
	K int
	// NumGUIDs / NumLookups size the workload.
	NumGUIDs   int
	NumLookups int
	// CacheCapacity bounds the Dijkstra cache used for multi-hop paths.
	CacheCapacity int
	// Seed fixes the workload.
	Seed int64
	// Workers bounds the evaluation parallelism (0 = GOMAXPROCS, 1 =
	// serial reference); results are identical for every setting.
	Workers int
}

// BaselineRow is one scheme's latency/hop digest.
type BaselineRow struct {
	Scheme      string
	RTT         stats.Summary // milliseconds
	OverlayHops float64       // mean overlay hops per lookup
}

// BaselinesResult compares resolution schemes on identical workloads.
type BaselinesResult struct {
	Rows []BaselineRow
}

// RunBaselines evaluates all four schemes. Multi-hop Chord paths need
// arbitrary pairwise distances, so this experiment favours moderate world
// sizes (≲5k ASs) where the distance cache covers every source.
func RunBaselines(w *World, cfg BaselinesConfig) (*BaselinesResult, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("experiments: K must be positive")
	}
	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	capacity := cfg.CacheCapacity
	if capacity <= 0 {
		capacity = w.NumAS()
	}
	cache, err := topology.NewDistCache(w.Graph, capacity)
	if err != nil {
		return nil, err
	}

	resolver, err := core.NewResolver(guid.MustHasher(cfg.K, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	chord, err := dht.NewChord(w.NumAS(), 1)
	if err != nil {
		return nil, err
	}
	oneHop, err := dht.NewOneHop(w.NumAS(), 2)
	if err != nil {
		return nil, err
	}
	home := dht.NewHomeAgent()

	// DMap placements and home registration share the GUID index space.
	placements := make([][]int, cfg.NumGUIDs)
	guids := make([]guid.GUID, cfg.NumGUIDs)
	for gi := 0; gi < cfg.NumGUIDs; gi++ {
		g := guid.FromUint64(uint64(gi) + 1)
		guids[gi] = g
		pls, err := resolver.Place(g)
		if err != nil {
			return nil, err
		}
		ass := make([]int, len(pls))
		for i, p := range pls {
			ass[i] = p.AS
		}
		placements[gi] = ass
		// The first insert AS is the permanent MobileIP home.
		home.Register(g, trace.HomeAS[gi])
	}

	// Group lookups by source AS: one engine unit per source. All four
	// schemes share the concurrent sharded DistCache — Chord's multi-hop
	// paths pull vectors for intermediate ASs, so the cache, not a
	// per-unit scratch vector, is the right distance oracle here. RTTs
	// are pure functions of the graph, so cache interleaving cannot
	// change any value, and hop counts are integers summed exactly in
	// float64, so the source-order merge is bit-identical at every
	// worker count.
	bySrc := make(map[int][]int)
	for i, ev := range trace.Lookups {
		bySrc[ev.SrcAS] = append(bySrc[ev.SrcAS], i)
	}
	srcs := make([]int, 0, len(bySrc))
	for s := range bySrc {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)

	type baselineUnit struct {
		dmap, chord, oneHop, home *stats.Collector
		chordHops, oneHopHops     float64
	}
	units, err := engine.MapNoScratch(cfg.Workers, len(srcs),
		func(u int) (baselineUnit, error) {
			src := srcs[u]
			lookups := bySrc[src]
			unit := baselineUnit{
				dmap:   stats.NewCollector(len(lookups)),
				chord:  stats.NewCollector(len(lookups)),
				oneHop: stats.NewCollector(len(lookups)),
				home:   stats.NewCollector(len(lookups)),
			}
			for _, li := range lookups {
				gi := trace.Lookups[li].GUIDIndex

				// DMap: closest of K replicas, single overlay hop.
				best := topology.InfMicros
				for _, as := range placements[gi] {
					if rtt := cache.RTT(src, as); rtt < best {
						best = rtt
					}
				}
				unit.dmap.Add(best.Millis())

				// Chord: recursive route to the owner, direct reply.
				path, err := chord.LookupPath(src, guids[gi])
				if err != nil {
					return baselineUnit{}, err
				}
				var lat topology.Micros
				for i := 1; i < len(path); i++ {
					lat += cache.OneWay(path[i-1], path[i])
				}
				lat += cache.OneWay(path[len(path)-1], src)
				unit.chord.Add(lat.Millis())
				unit.chordHops += float64(len(path) - 1)

				// One-hop DHT: direct to the single owner.
				opath, err := oneHop.LookupPath(src, guids[gi])
				if err != nil {
					return baselineUnit{}, err
				}
				unit.oneHop.Add(cache.RTT(src, opath[len(opath)-1]).Millis())
				unit.oneHopHops += float64(len(opath) - 1)

				// Home agent: always the fixed home AS.
				hpath, err := home.LookupPath(src, guids[gi])
				if err != nil {
					return baselineUnit{}, err
				}
				unit.home.Add(cache.RTT(src, hpath[len(hpath)-1]).Millis())
			}
			return unit, nil
		})
	if err != nil {
		return nil, err
	}

	dmapCol := stats.NewCollector(cfg.NumLookups)
	chordCol := stats.NewCollector(cfg.NumLookups)
	oneHopCol := stats.NewCollector(cfg.NumLookups)
	homeCol := stats.NewCollector(cfg.NumLookups)
	var chordHops, oneHopHops float64
	for _, u := range units {
		dmapCol.Merge(u.dmap)
		chordCol.Merge(u.chord)
		oneHopCol.Merge(u.oneHop)
		homeCol.Merge(u.home)
		chordHops += u.chordHops
		oneHopHops += u.oneHopHops
	}

	n := float64(cfg.NumLookups)
	return &BaselinesResult{Rows: []BaselineRow{
		{Scheme: fmt.Sprintf("DMap (K=%d)", cfg.K), RTT: dmapCol.Summarize(), OverlayHops: 1},
		{Scheme: "One-hop DHT", RTT: oneHopCol.Summarize(), OverlayHops: oneHopHops / n},
		{Scheme: "Home agent", RTT: homeCol.Summarize(), OverlayHops: 1},
		{Scheme: "Chord DHT", RTT: chordCol.Summarize(), OverlayHops: chordHops / n},
	}}, nil
}

// String renders the comparison table.
func (r *BaselinesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %10s %10s\n", "scheme", "mean(ms)", "median", "p95", "hops")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-14s %10.1f %10.1f %10.1f %10.2f\n",
			row.Scheme, row.RTT.Mean, row.RTT.Median, row.RTT.P95, row.OverlayHops)
	}
	return b.String()
}

// Fig7Result holds the analytical response-time upper bounds per
// scenario.
type Fig7Result struct {
	MaxK int
	// Series maps scenario name to bounds for K = 1..MaxK (ms).
	Series map[string][]float64
	Order  []string
}

// RunFig7 evaluates the §V bound for the three Internet-evolution
// scenarios (Figure 7).
func RunFig7(maxK int) (*Fig7Result, error) {
	res := &Fig7Result{MaxK: maxK, Series: make(map[string][]float64, 3)}
	for _, s := range []analytical.Scenario{
		analytical.PresentInternet,
		analytical.MediumTermInternet,
		analytical.LongTermInternet,
	} {
		m, err := analytical.ScenarioModel(s)
		if err != nil {
			return nil, err
		}
		vals, err := m.Sweep(maxK)
		if err != nil {
			return nil, err
		}
		res.Series[s.String()] = vals
		res.Order = append(res.Order, s.String())
	}
	return res, nil
}

// String renders Figure 7 as a series table.
func (r *Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s", "K")
	for _, name := range r.Order {
		fmt.Fprintf(&b, " %28s", name)
	}
	b.WriteByte('\n')
	for k := 1; k <= r.MaxK; k++ {
		fmt.Fprintf(&b, "%-4d", k)
		for _, name := range r.Order {
			fmt.Fprintf(&b, " %26.1f ms", r.Series[name][k-1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MeasuredJellyfishModel builds an analytical model from the generated
// topology's own layer decomposition, letting the measured world be
// compared against the paper's parametric scenarios.
func MeasuredJellyfishModel(w *World) (*analytical.Model, error) {
	jf := topology.DecomposeJellyfish(w.Graph)
	return analytical.NewModel(jf.LayerFractions, 0, 0)
}

// MSweepRow reports Algorithm 1 behaviour for one rehash bound.
type MSweepRow struct {
	M            int
	FallbackRate float64
	NLRp99       float64
}

// RunMSweep is ablation A3: how the rehash bound M trades deputy-AS
// fallbacks (which concentrate load near large holes) against hashing
// work. NLR tail is measured over numGUIDs placements with K=1.
func RunMSweep(w *World, ms []int, numGUIDs int) ([]MSweepRow, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("experiments: no M values")
	}
	rawShares := w.Table.ShareByAS()
	announced := w.Table.AnnouncedFraction()
	shares := make(map[int]float64, len(rawShares))
	for as, s := range rawShares {
		shares[as] = s / announced
	}

	rows := make([]MSweepRow, 0, len(ms))
	for _, m := range ms {
		resolver, err := core.NewResolver(guid.MustHasher(1, 0), w.Table, m)
		if err != nil {
			return nil, err
		}
		hosted := make(map[int]int)
		fallbacks := 0
		for gi := 1; gi <= numGUIDs; gi++ {
			p, err := resolver.PlaceReplica(guid.FromUint64(uint64(gi)), 0)
			if err != nil {
				return nil, err
			}
			hosted[p.AS]++
			if p.UsedNearest {
				fallbacks++
			}
		}
		col := stats.NormalizedLoadRatios(hosted, shares)
		rows = append(rows, MSweepRow{
			M:            m,
			FallbackRate: float64(fallbacks) / float64(numGUIDs),
			NLRp99:       col.Percentile(99),
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].M < rows[j].M })
	return rows, nil
}
