package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/stats"
)

// LoadConfig drives the storage-distribution experiment (Fig. 6).
type LoadConfig struct {
	// GUIDCounts are the population sizes to evaluate (paper: 10^5, 10^6,
	// 10^7).
	GUIDCounts []int
	// K is the replication factor (paper: 5).
	K int
	// MaxRehash is Algorithm 1's M; zero selects the default.
	MaxRehash int
	// HashToASNumbers evaluates the §VII AS-number variant instead.
	HashToASNumbers bool
}

// LoadResult holds the Normalized Load Ratio distribution per population
// size.
type LoadResult struct {
	// PerCount maps GUID count to the NLR distribution over announcing
	// ASs.
	PerCount map[int]*stats.Collector
	// WithinBand maps GUID count to the fraction of ASs with NLR in
	// [0.4, 1.6] (the paper reports 93% at 10^7).
	WithinBand map[int]float64
}

// RunLoad inserts the configured GUID populations and measures how
// hosting load tracks announced address share (§IV-B2c). Only placement
// counts are kept, so populations of 10^7 GUIDs fit easily.
func RunLoad(w *World, cfg LoadConfig) (*LoadResult, error) {
	if len(cfg.GUIDCounts) == 0 {
		return nil, fmt.Errorf("experiments: no GUID counts")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("experiments: K must be positive, got %d", cfg.K)
	}
	resolver, err := core.NewResolver(guid.MustHasher(cfg.K, 0), w.Table, cfg.MaxRehash)
	if err != nil {
		return nil, err
	}

	// Normalize per-AS shares to the announced space: an AS announcing
	// x% of all announced addresses should host x% of all replicas.
	rawShares := w.Table.ShareByAS()
	announced := w.Table.AnnouncedFraction()
	shares := make(map[int]float64, len(rawShares))
	for as, s := range rawShares {
		shares[as] = s / announced
	}
	if cfg.HashToASNumbers {
		// The AS-number variant spreads uniformly over all ASs, so the
		// fair share is 1/NumAS for every AS.
		shares = make(map[int]float64, w.NumAS())
		for as := 0; as < w.NumAS(); as++ {
			shares[as] = 1.0 / float64(w.NumAS())
		}
	}

	counts := append([]int(nil), cfg.GUIDCounts...)
	sort.Ints(counts)
	maxCount := counts[len(counts)-1]

	res := &LoadResult{
		PerCount:   make(map[int]*stats.Collector, len(counts)),
		WithinBand: make(map[int]float64, len(counts)),
	}
	hosted := make(map[int]int, w.NumAS())
	next := 0
	for gi := 1; gi <= maxCount; gi++ {
		g := guid.FromUint64(uint64(gi))
		for r := 0; r < cfg.K; r++ {
			var as int
			if cfg.HashToASNumbers {
				p, err := resolver.PlaceByASNumber(g, r, w.NumAS())
				if err != nil {
					return nil, err
				}
				as = p.AS
			} else {
				p, err := resolver.PlaceReplica(g, r)
				if err != nil {
					return nil, err
				}
				as = p.AS
			}
			hosted[as]++
		}
		if gi == counts[next] {
			col := stats.NormalizedLoadRatios(hosted, shares)
			res.PerCount[gi] = col
			res.WithinBand[gi] = bandFraction(col, 0.4, 1.6)
			next++
		}
	}
	return res, nil
}

func bandFraction(c *stats.Collector, lo, hi float64) float64 {
	if c.N() == 0 {
		return 0
	}
	return c.FractionBelow(hi) - c.FractionBelow(lo) + frontierAt(c, lo)
}

// frontierAt counts the mass exactly at lo (FractionBelow is inclusive).
func frontierAt(c *stats.Collector, lo float64) float64 {
	eps := lo * 1e-12
	return c.FractionBelow(lo) - c.FractionBelow(lo-eps)
}

// String renders Fig. 6 as summary rows.
func (r *LoadResult) String() string {
	counts := make([]int, 0, len(r.PerCount))
	for c := range r.PerCount {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %14s\n", "#GUIDs", "median", "mean", "p5", "p95", "in[0.4,1.6]")
	for _, c := range counts {
		col := r.PerCount[c]
		fmt.Fprintf(&b, "%-12d %8.2f %8.2f %8.2f %8.2f %13.1f%%\n",
			c, col.Median(), col.Mean(), col.Percentile(5), col.Percentile(95), 100*r.WithinBand[c])
	}
	return b.String()
}

// OverheadResult holds the §IV-A storage and traffic estimates.
type OverheadResult struct {
	// EntryBits is the per-mapping size (352 bits in the paper).
	EntryBits int
	// TotalGUIDs and K parameterize the estimate (5·10^9 and 5).
	TotalGUIDs int64
	K          int
	// StoragePerASMbit is the proportional-share storage requirement.
	StoragePerASMbit float64
	// UpdateTrafficGbps is the worldwide update traffic at the assumed
	// update rate.
	UpdateTrafficGbps float64
	// UpdatesPerDay is the assumed per-GUID mobility rate (100/day).
	UpdatesPerDay float64
	// NumAS is the AS population.
	NumAS int
}

// RunOverhead computes the §IV-A closed-form storage and update-traffic
// overheads for the given deployment assumptions.
func RunOverhead(numAS int, totalGUIDs int64, k int, updatesPerDay float64) (*OverheadResult, error) {
	if numAS <= 0 || totalGUIDs <= 0 || k <= 0 || updatesPerDay < 0 {
		return nil, fmt.Errorf("experiments: invalid overhead parameters")
	}
	// §IV-A: 160-bit GUID + 5 × 32-bit NAs + 32 bits of metadata.
	const entryBits = 160 + 5*32 + 32
	totalBits := float64(totalGUIDs) * float64(k) * entryBits
	perAS := totalBits / float64(numAS)
	updatesPerSec := float64(totalGUIDs) * updatesPerDay / 86400
	// Each update carries the entry to all K replicas.
	trafficBps := updatesPerSec * entryBits * float64(k)
	return &OverheadResult{
		EntryBits:         entryBits,
		TotalGUIDs:        totalGUIDs,
		K:                 k,
		StoragePerASMbit:  perAS / 1e6,
		UpdateTrafficGbps: trafficBps / 1e9,
		UpdatesPerDay:     updatesPerDay,
		NumAS:             numAS,
	}, nil
}

// String renders the overhead report.
func (r *OverheadResult) String() string {
	return fmt.Sprintf(
		"entry size: %d bits\nGUIDs: %d, K=%d, ASs: %d\nstorage per AS (proportional): %.0f Mbit\nupdate traffic at %.0f updates/GUID/day: %.1f Gb/s\n",
		r.EntryBits, r.TotalGUIDs, r.K, r.NumAS, r.StoragePerASMbit, r.UpdatesPerDay, r.UpdateTrafficGbps)
}

// HolesResult reports Algorithm 1's measured rehash behaviour (§III-B).
type HolesResult struct {
	AnnouncedFraction float64
	Stats             core.RehashStats
	// PredictedFallback is (1 − announced)^M.
	PredictedFallback float64
}

// RunHoles measures the hole-handling statistics over n GUIDs.
func RunHoles(w *World, k, maxRehash, n int) (*HolesResult, error) {
	resolver, err := core.NewResolver(guid.MustHasher(k, 0), w.Table, maxRehash)
	if err != nil {
		return nil, err
	}
	st, err := resolver.MeasureRehash(n)
	if err != nil {
		return nil, err
	}
	announced := w.Table.AnnouncedFraction()
	pred := 1.0
	for i := 0; i < resolver.MaxRehash(); i++ {
		pred *= 1 - announced
	}
	return &HolesResult{
		AnnouncedFraction: announced,
		Stats:             st,
		PredictedFallback: pred,
	}, nil
}

// String renders the hole report.
func (r *HolesResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "announced fraction: %.3f (hole probability %.3f per hash)\n",
		r.AnnouncedFraction, 1-r.AnnouncedFraction)
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "rehashes", "placements", "fraction")
	for d, c := range r.Stats.DepthCounts {
		if c == 0 && d > 3 {
			continue
		}
		fmt.Fprintf(&b, "%-8d %12d %9.4f%%\n", d, c, 100*float64(c)/float64(r.Stats.Samples))
	}
	fmt.Fprintf(&b, "nearest-prefix fallbacks: %d (%.4f%%, predicted %.4f%%)\n",
		r.Stats.NearestFallbacks, 100*r.Stats.FallbackRate(), 100*r.PredictedFallback)
	return b.String()
}
