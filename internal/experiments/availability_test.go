package experiments

import (
	"math"
	"reflect"
	"testing"
)

func availConfig(workers int) AvailabilityConfig {
	return AvailabilityConfig{
		Ks:        []int{1, 3, 5},
		FailFracs: []float64{0, 0.05, 0.10, 0.20},
		NumGUIDs:  500, NumLookups: 5000,
		Loss: 0.02, Retries: 1,
		Seed: 11, Workers: workers,
	}
}

func TestAvailabilityValidation(t *testing.T) {
	w := testWorld(t)
	bad := []AvailabilityConfig{
		{FailFracs: []float64{0.1}},                            // no Ks
		{Ks: []int{3}},                                         // no FailFracs
		{Ks: []int{0}, FailFracs: []float64{0.1}},              // K <= 0
		{Ks: []int{3}, FailFracs: []float64{1.0}},              // frac >= 1
		{Ks: []int{3}, FailFracs: []float64{-0.1}},             // frac < 0
		{Ks: []int{3}, FailFracs: []float64{0.1}, Loss: 1.0},   // loss >= 1
		{Ks: []int{3}, FailFracs: []float64{0.1}, Retries: -1}, // negative retries
	}
	for i, cfg := range bad {
		cfg.NumGUIDs, cfg.NumLookups = 10, 10
		if _, err := RunAvailability(w, cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

// With no failures and no loss every lookup must succeed at its
// best-replica RTT: zero added latency, zero timeouts.
func TestAvailabilityFaultFreeBaseline(t *testing.T) {
	w := testWorld(t)
	res, err := RunAvailability(w, AvailabilityConfig{
		Ks: []int{1, 5}, FailFracs: []float64{0},
		NumGUIDs: 300, NumLookups: 3000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Cells {
		if c.SuccessRate() != 1 {
			t.Errorf("K=%d fault-free success = %v, want 1", c.K, c.SuccessRate())
		}
		if c.Timeouts != 0 || c.Failovers != 0 {
			t.Errorf("K=%d fault-free timeouts=%d failovers=%d", c.K, c.Timeouts, c.Failovers)
		}
		if add := c.AddedLatencyMs(); math.Abs(add) > 1e-9 {
			t.Errorf("K=%d fault-free added latency = %v ms", c.K, add)
		}
	}
}

// The ISSUE acceptance criterion: with 10% of nodes failed, K=5
// replication keeps the lookup success rate above the K=1 baseline,
// and a fixed seed reproduces identical numbers across runs.
func TestAvailabilityReplicationBeatsBaseline(t *testing.T) {
	w := testWorld(t)
	res, err := RunAvailability(w, availConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	k1, ok1 := res.Cell(1, 0.10)
	k5, ok5 := res.Cell(5, 0.10)
	if !ok1 || !ok5 {
		t.Fatalf("missing cells: k1=%v k5=%v", ok1, ok5)
	}
	if k5.SuccessRate() <= k1.SuccessRate() {
		t.Errorf("K=5 success %v not above K=1 baseline %v at 10%% failed",
			k5.SuccessRate(), k1.SuccessRate())
	}
	// ~10% of single replicas land on a failed AS, so K=1 must visibly
	// suffer while K=5 stays near-perfect.
	if k1.SuccessRate() > 0.97 {
		t.Errorf("K=1 success %v suspiciously high at 10%% failed", k1.SuccessRate())
	}
	if k5.SuccessRate() < 0.999 {
		t.Errorf("K=5 success %v below 99.9%% at 10%% failed", k5.SuccessRate())
	}

	// Failures cost latency: the failed cells pay timeouts over the
	// fault-free baseline.
	if k5.AddedLatencyMs() <= 0 {
		t.Errorf("K=5 added latency %v ms, want > 0 under failures", k5.AddedLatencyMs())
	}

	// Same seed, fresh run → identical numbers.
	res2, err := RunAvailability(w, availConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Error("fixed seed did not reproduce the sweep")
	}
}

// More failures can only hurt: the failed sets nest by construction,
// so success rate is monotone non-increasing in the failure fraction.
func TestAvailabilityMonotoneInFailures(t *testing.T) {
	w := testWorld(t)
	res, err := RunAvailability(w, availConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	cfg := availConfig(0)
	for _, k := range cfg.Ks {
		prev := math.Inf(1)
		for _, frac := range cfg.FailFracs {
			c, ok := res.Cell(k, frac)
			if !ok {
				t.Fatalf("missing cell (%d, %v)", k, frac)
			}
			if c.SuccessRate() > prev {
				t.Errorf("K=%d success rose from %v to %v as failFrac grew to %v",
					k, prev, c.SuccessRate(), frac)
			}
			prev = c.SuccessRate()
		}
	}
}

func TestAvailabilityResultString(t *testing.T) {
	w := testWorld(t)
	res, err := RunAvailability(w, AvailabilityConfig{
		Ks: []int{1}, FailFracs: []float64{0.1},
		NumGUIDs: 50, NumLookups: 200, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); len(s) == 0 {
		t.Error("empty table")
	}
}
