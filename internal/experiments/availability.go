package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// AvailabilityConfig drives the failure-fraction × K availability sweep:
// the closed-form counterpart of §III-D3's failover story. A failed AS
// hosts a mapping node that never answers, so each attempt against it
// costs the querier a full timeout before the walk moves to the next
// hashed replica; optional message loss makes even live replicas cost
// retransmissions.
type AvailabilityConfig struct {
	// Ks lists replication factors to evaluate (e.g. 1, 3, 5).
	Ks []int
	// FailFracs lists the fractions of ASs whose mapping nodes are down
	// (e.g. 0, 0.05, 0.10, 0.20). The failed set is sampled once per
	// fraction from the seed and shared across Ks for comparability.
	FailFracs []float64
	// NumGUIDs / NumLookups size the workload.
	NumGUIDs   int
	NumLookups int
	// Timeout is the per-attempt timeout charged for a dead replica or
	// a lost message. ≤ 0 selects 2 s, the networked client's default.
	Timeout topology.Micros
	// Loss is the per-attempt probability that a request or its reply
	// is lost in transit (the attempt costs a timeout even though the
	// replica is alive).
	Loss float64
	// Retries is how many extra same-replica attempts follow a timeout
	// before the walk fails over — mirroring client.RetryPolicy
	// (MaxAttempts = Retries + 1).
	Retries int
	// Seed fixes the workload, the failed sets and the loss sampling.
	Seed int64
	// Workers bounds evaluation parallelism (0 = GOMAXPROCS, 1 = serial
	// reference); results are bit-identical at every setting.
	Workers int
}

// DefaultAvailabilityTimeout matches client.DefaultTimeout.
const DefaultAvailabilityTimeout = topology.Micros(2_000_000)

// AvailabilityCell is one (K, failure fraction) sweep point.
type AvailabilityCell struct {
	K        int
	FailFrac float64
	// Lookups and Successes count attempts and completions; a lookup
	// fails only when every replica stayed unreachable through all its
	// retries.
	Lookups   int
	Successes int
	// Timeouts counts individual timed-out attempts (dead replica or
	// lost message).
	Timeouts int
	// Failovers counts replica-to-replica moves.
	Failovers int
	// Latency collects completed-lookup response times (ms), timeout
	// costs included.
	Latency *stats.Collector
	// BaselineMean is the mean RTT (ms) of the same lookups with no
	// faults — the reference for AddedLatency.
	BaselineMean float64
}

// SuccessRate returns the fraction of lookups that completed.
func (c AvailabilityCell) SuccessRate() float64 {
	if c.Lookups == 0 {
		return 0
	}
	return float64(c.Successes) / float64(c.Lookups)
}

// AddedLatencyMs returns how much mean response time the faults added
// over the fault-free baseline.
func (c AvailabilityCell) AddedLatencyMs() float64 {
	return c.Latency.Mean() - c.BaselineMean
}

// AvailabilityResult holds the sweep grid.
type AvailabilityResult struct {
	Cells []AvailabilityCell // ordered by (FailFrac, K)
}

// Cell returns the sweep point for (k, failFrac), if present.
func (r *AvailabilityResult) Cell(k int, failFrac float64) (AvailabilityCell, bool) {
	for _, c := range r.Cells {
		if c.K == k && c.FailFrac == failFrac {
			return c, true
		}
	}
	return AvailabilityCell{}, false
}

// String renders the sweep as a success-rate / latency table.
func (r *AvailabilityResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-4s %9s %10s %10s %10s %10s\n",
		"failFrac", "K", "success", "mean(ms)", "added(ms)", "timeouts", "failovers")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-10.2f %-4d %8.3f%% %10.1f %10.1f %10d %10d\n",
			c.FailFrac, c.K, 100*c.SuccessRate(), c.Latency.Mean(), c.AddedLatencyMs(),
			c.Timeouts, c.Failovers)
	}
	return b.String()
}

// RunAvailability evaluates lookup availability and latency under node
// failures on w.
//
// Like RunLatency, lookups are grouped by source AS (one Dijkstra per
// distinct source) and the groups are engine work units: loss sampling
// is seeded per (K, failFrac, source), the failed sets are precomputed,
// and results merge in source order, so every worker count yields
// bit-identical results.
func RunAvailability(w *World, cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if len(cfg.Ks) == 0 || len(cfg.FailFracs) == 0 {
		return nil, fmt.Errorf("experiments: availability sweep needs Ks and FailFracs")
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return nil, fmt.Errorf("experiments: loss %g out of [0,1)", cfg.Loss)
	}
	if cfg.Retries < 0 {
		return nil, fmt.Errorf("experiments: negative retries")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = DefaultAvailabilityTimeout
	}
	maxK := 0
	for _, k := range cfg.Ks {
		if k <= 0 {
			return nil, fmt.Errorf("experiments: K must be positive, got %d", k)
		}
		if k > maxK {
			maxK = k
		}
	}
	for _, f := range cfg.FailFracs {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("experiments: failure fraction %g out of [0,1)", f)
		}
	}

	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	// Placements per GUID at max K; smaller Ks are prefixes (the hash
	// family is domain-separated on the replica index).
	resolver, err := core.NewResolver(guid.MustHasher(maxK, 0), w.Table, 0)
	if err != nil {
		return nil, err
	}
	placements := make([][]int32, cfg.NumGUIDs)
	for gi := 0; gi < cfg.NumGUIDs; gi++ {
		g := guid.FromUint64(uint64(gi) + 1)
		ass := make([]int32, maxK)
		for r := 0; r < maxK; r++ {
			p, err := resolver.PlaceReplica(g, r)
			if err != nil {
				return nil, err
			}
			ass[r] = int32(p.AS)
		}
		placements[gi] = ass
	}

	// One failed set per fraction, shared across Ks: sampled from the
	// seed via a shuffled AS permutation so fractions nest (10% failed ⊃
	// 5% failed), which makes the sweep monotone by construction.
	perm := rand.New(rand.NewSource(cfg.Seed + 777)).Perm(w.NumAS())
	failedSets := make([][]bool, len(cfg.FailFracs))
	for fi, frac := range cfg.FailFracs {
		failed := make([]bool, w.NumAS())
		n := int(frac * float64(w.NumAS()))
		for _, as := range perm[:n] {
			failed[as] = true
		}
		failedSets[fi] = failed
	}

	// Group lookups by source AS.
	bySrc := make(map[int][]int)
	for i, ev := range trace.Lookups {
		bySrc[ev.SrcAS] = append(bySrc[ev.SrcAS], i)
	}
	sources := make([]int, 0, len(bySrc))
	for src := range bySrc {
		sources = append(sources, src)
	}
	sort.Ints(sources)

	type unitCell struct {
		successes   int
		timeouts    int
		failovers   int
		col         *stats.Collector
		baselineSum float64
		baselineObs int
	}
	type availScratch struct {
		dist  []topology.Micros
		cands []lookupCand
	}
	numCells := len(cfg.FailFracs) * len(cfg.Ks)
	units, err := engine.Map(cfg.Workers, len(sources),
		func() *availScratch {
			return &availScratch{
				dist:  make([]topology.Micros, w.NumAS()),
				cands: make([]lookupCand, maxK),
			}
		},
		func(u int, sc *availScratch) ([]unitCell, error) {
			src := sources[u]
			lookups := bySrc[src]
			w.Graph.Dijkstra(src, sc.dist)
			out := make([]unitCell, numCells)
			for fi := range cfg.FailFracs {
				failed := failedSets[fi]
				for ki, k := range cfg.Ks {
					cell := &out[fi*len(cfg.Ks)+ki]
					cell.col = stats.NewCollector(len(lookups))
					var rng *rand.Rand
					if cfg.Loss > 0 {
						rng = rand.New(rand.NewSource(availSeed(cfg.Seed, k, fi, src)))
					}
					for _, li := range lookups {
						ev := trace.Lookups[li]
						all := placements[ev.GUIDIndex]
						// Candidate replicas in lowest-RTT-first order, the
						// client's selection policy.
						cands := sc.cands[:k]
						for r := 0; r < k; r++ {
							as := int(all[r])
							rtt := w.Graph.RTT(src, as, sc.dist)
							cands[r] = lookupCand{as: as, rtt: rtt, cost: int64(rtt)}
						}
						for i := 1; i < len(cands); i++ {
							for j := i; j > 0 && (cands[j].cost < cands[j-1].cost ||
								(cands[j].cost == cands[j-1].cost && cands[j].as < cands[j-1].as)); j-- {
								cands[j], cands[j-1] = cands[j-1], cands[j]
							}
						}
						cell.baselineSum += cands[0].rtt.Millis()
						cell.baselineObs++

						var elapsed topology.Micros
						ok := false
					walk:
						for ci, cand := range cands {
							alive := !failed[cand.as]
							for attempt := 0; attempt <= cfg.Retries; attempt++ {
								lost := false
								if alive && cfg.Loss > 0 {
									lost = rng.Float64() < cfg.Loss
								}
								if alive && !lost {
									elapsed += cand.rtt
									ok = true
									break walk
								}
								elapsed += timeout
								cell.timeouts++
							}
							if ci < len(cands)-1 {
								cell.failovers++
							}
						}
						if ok {
							cell.successes++
							cell.col.Add(elapsed.Millis())
						}
					}
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	// Deterministic merge in source order.
	res := &AvailabilityResult{}
	for fi, frac := range cfg.FailFracs {
		for ki, k := range cfg.Ks {
			cell := AvailabilityCell{
				K:        k,
				FailFrac: frac,
				Lookups:  cfg.NumLookups,
				Latency:  stats.NewCollector(cfg.NumLookups),
			}
			baselineSum := 0.0
			baselineObs := 0
			for _, u := range units {
				uc := u[fi*len(cfg.Ks)+ki]
				cell.Successes += uc.successes
				cell.Timeouts += uc.timeouts
				cell.Failovers += uc.failovers
				cell.Latency.Merge(uc.col)
				baselineSum += uc.baselineSum
				baselineObs += uc.baselineObs
			}
			if baselineObs > 0 {
				cell.BaselineMean = baselineSum / float64(baselineObs)
			}
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// availSeed derives the per-(K, failFrac, source) loss-sampling seed,
// keeping every engine unit's PRNG stream independent of worker
// interleaving.
func availSeed(seed int64, k, fi, src int) int64 {
	return seed + int64(k)*7919 + int64(fi)*15485863 + int64(src)*104729 + 3
}
