// Package experiments contains one driver per table and figure of the
// paper's evaluation (§IV–§V), plus the ablations listed in DESIGN.md.
// Each driver returns a typed result whose String method prints the same
// rows or series the paper reports; cmd/dmapsim and the repository
// benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"

	"dmap/internal/prefixtable"
	"dmap/internal/topology"
)

// World bundles the generated environment shared by all experiments: the
// AS-level topology and the announced-prefix table (the substitutes for
// the DIMES and APNIC datasets).
type World struct {
	Graph *topology.Graph
	Table *prefixtable.Table
}

// WorldConfig sizes a world. The zero value is invalid; use FullScale or
// TestScale.
type WorldConfig struct {
	NumAS             int
	NumLinks          int
	NumPrefixes       int
	AnnouncedFraction float64
	Seed              int64
}

// FullScale reproduces the paper's environment: 26,424 ASs, 90,267
// links, ≈330k prefixes spanning ≈52% of the IPv4 space.
func FullScale(seed int64) WorldConfig {
	return WorldConfig{
		NumAS:             26424,
		NumLinks:          90267,
		NumPrefixes:       330000,
		AnnouncedFraction: 0.52,
		Seed:              seed,
	}
}

// TestScale shrinks the world for unit tests and quick runs while keeping
// every distributional parameter.
func TestScale(numAS int, seed int64) WorldConfig {
	return WorldConfig{
		NumAS:             numAS,
		NumLinks:          int(float64(numAS) * 3.42),
		NumPrefixes:       numAS * 12,
		AnnouncedFraction: 0.52,
		Seed:              seed,
	}
}

// NewWorld generates a world.
func NewWorld(cfg WorldConfig) (*World, error) {
	tcfg := topology.DefaultGenConfig(cfg.Seed)
	tcfg.NumAS = cfg.NumAS
	tcfg.TargetLinks = cfg.NumLinks
	if tcfg.CoreSize > cfg.NumAS/4 {
		tcfg.CoreSize = cfg.NumAS / 4
		if tcfg.CoreSize < 2 {
			tcfg.CoreSize = 2
		}
	}
	g, err := topology.Generate(tcfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: topology: %w", err)
	}
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             cfg.NumAS,
		NumPrefixes:       cfg.NumPrefixes,
		AnnouncedFraction: cfg.AnnouncedFraction,
		Seed:              cfg.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: prefix table: %w", err)
	}
	return &World{Graph: g, Table: tbl}, nil
}

// NumAS returns the AS count.
func (w *World) NumAS() int { return w.Graph.NumAS() }
