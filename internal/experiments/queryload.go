package experiments

import (
	"fmt"
	"sort"
	"strings"

	"dmap/internal/core"
	"dmap/internal/engine"
	"dmap/internal/guid"
	"dmap/internal/stats"
	"dmap/internal/topology"
	"dmap/internal/workload"
)

// QueryLoadConfig drives the query-serving load experiment: Fig. 6
// measures *storage* balance; this companion measures how the *lookup
// traffic* itself spreads over ASs. Two forces compete: K replicas give
// every popular GUID K hosts (per-GUID relief), but closest-replica
// selection preferentially routes to whichever replica sits nearest the
// populous regions, concentrating service at well-positioned ASs — a
// traffic-engineering tension the storage NLR of Fig. 6 cannot see.
type QueryLoadConfig struct {
	// Ks lists the replication factors to compare.
	Ks []int
	// NumGUIDs / NumLookups size the Zipf workload.
	NumGUIDs   int
	NumLookups int
	Seed       int64
	// Workers bounds the evaluation parallelism (0 = GOMAXPROCS, 1 =
	// serial reference); results are identical for every setting.
	Workers int
	// Batch models the v2 batched wire protocol: lookups from one
	// source AS to one serving AS share frames, up to Batch GUIDs per
	// frame. ≤ 1 models the sequential v1 protocol (one frame per
	// lookup). Load *shares* are unchanged — batching moves bytes, not
	// placement — but the frame counts show what the serving ASs
	// actually field.
	Batch int
}

// QueryLoadRow summarizes one K.
type QueryLoadRow struct {
	K int
	// MaxShare is the largest fraction of all lookups served by a single
	// AS.
	MaxShare float64
	// Top10Share is the fraction served by the ten busiest ASs.
	Top10Share float64
	// NLRp99 is the 99th percentile of the per-AS query NLR (share of
	// queries ÷ share of announced space).
	NLRp99 float64
	// Frames is the wire-frame count under the configured batch size:
	// Σ over (source AS, serving AS) pairs of ⌈lookups/Batch⌉.
	Frames int64
}

// QueryLoadResult holds one row per K.
type QueryLoadResult struct {
	Rows []QueryLoadRow
	// Batch echoes the modeled batch size (1 = sequential v1).
	Batch int
}

// RunQueryLoad evaluates query-serving concentration.
func RunQueryLoad(w *World, cfg QueryLoadConfig) (*QueryLoadResult, error) {
	if len(cfg.Ks) == 0 || cfg.NumGUIDs <= 0 || cfg.NumLookups <= 0 {
		return nil, fmt.Errorf("experiments: invalid query-load config")
	}
	trace, err := workload.Generate(workload.TraceConfig{
		NumGUIDs:      cfg.NumGUIDs,
		NumLookups:    cfg.NumLookups,
		SourceWeights: w.Graph.EndNodeWeights(),
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	rawShares := w.Table.ShareByAS()
	announced := w.Table.AnnouncedFraction()
	shares := make(map[int]float64, len(rawShares))
	for as, s := range rawShares {
		shares[as] = s / announced
	}

	batch := cfg.Batch
	if batch < 1 {
		batch = 1
	}
	res := &QueryLoadResult{Rows: make([]QueryLoadRow, 0, len(cfg.Ks)), Batch: batch}

	for _, k := range cfg.Ks {
		resolver, err := core.NewResolver(guid.MustHasher(k, 0), w.Table, 0)
		if err != nil {
			return nil, err
		}
		placements := make([][]int32, cfg.NumGUIDs)
		for gi := 0; gi < cfg.NumGUIDs; gi++ {
			g := guid.FromUint64(uint64(gi) + 1)
			ass := make([]int32, k)
			for r := 0; r < k; r++ {
				p, err := resolver.PlaceReplica(g, r)
				if err != nil {
					return nil, err
				}
				ass[r] = int32(p.AS)
			}
			placements[gi] = ass
		}

		// Group by source so closest-replica selection reuses Dijkstra;
		// each source group is one engine work unit.
		bySrc := make(map[int][]int)
		for i, ev := range trace.Lookups {
			bySrc[ev.SrcAS] = append(bySrc[ev.SrcAS], i)
		}
		srcs := make([]int, 0, len(bySrc))
		for s := range bySrc {
			srcs = append(srcs, s)
		}
		sort.Ints(srcs)

		type queryUnit struct {
			served map[int]int
			frames int64
		}
		units, err := engine.Map(cfg.Workers, len(srcs),
			func() []topology.Micros { return make([]topology.Micros, w.NumAS()) },
			func(u int, dist []topology.Micros) (queryUnit, error) {
				src := srcs[u]
				w.Graph.Dijkstra(src, dist)
				served := make(map[int]int)
				for _, li := range bySrc[src] {
					gi := trace.Lookups[li].GUIDIndex
					best, bestRTT := -1, topology.InfMicros
					for _, as := range placements[gi] {
						if rtt := w.Graph.RTT(src, int(as), dist); rtt < bestRTT {
							best, bestRTT = int(as), rtt
						}
					}
					served[best]++
				}
				var frames int64
				for _, n := range served {
					frames += int64((n + batch - 1) / batch)
				}
				return queryUnit{served: served, frames: frames}, nil
			})
		if err != nil {
			return nil, err
		}
		served := make(map[int]int, w.NumAS())
		var frames int64
		for _, u := range units {
			for as, n := range u.served {
				served[as] += n
			}
			frames += u.frames
		}

		counts := make([]int, 0, len(served))
		for _, c := range served {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		total := float64(cfg.NumLookups)
		row := QueryLoadRow{K: k, MaxShare: float64(counts[0]) / total, Frames: frames}
		for i := 0; i < 10 && i < len(counts); i++ {
			row.Top10Share += float64(counts[i]) / total
		}
		row.NLRp99 = stats.NormalizedLoadRatios(served, shares).Percentile(99)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the query-load table. With Batch > 1 it adds the
// modeled wire-frame count per K; the Batch ≤ 1 rendering is unchanged
// from the sequential protocol's.
func (r *QueryLoadResult) String() string {
	var b strings.Builder
	if r.Batch > 1 {
		fmt.Fprintf(&b, "%-4s %12s %12s %12s %12s\n", "K", "maxAS share", "top-10 share", "queryNLR p99", fmt.Sprintf("frames(B=%d)", r.Batch))
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%-4d %11.2f%% %11.2f%% %12.1f %12d\n",
				row.K, 100*row.MaxShare, 100*row.Top10Share, row.NLRp99, row.Frames)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%-4s %12s %12s %12s\n", "K", "maxAS share", "top-10 share", "queryNLR p99")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-4d %11.2f%% %11.2f%% %12.1f\n",
			row.K, 100*row.MaxShare, 100*row.Top10Share, row.NLRp99)
	}
	return b.String()
}
