package experiments

import (
	"strings"
	"testing"
)

// TestUpdateBatchFrameModel checks the batched wire-frame accounting:
// Batch=1 must cost exactly NumUpdates×K frames (one per replica
// write), a large batch must cost dramatically fewer, and the latency
// numbers must be untouched by the batch size (batching moves bytes,
// not replicas).
func TestUpdateBatchFrameModel(t *testing.T) {
	w := testWorld(t)
	cfg := UpdateConfig{Ks: []int{1, 5}, NumUpdates: 5000, Seed: 8}
	seq, err := RunUpdate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = 512
	batched, err := RunUpdate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range cfg.Ks {
		want := int64(cfg.NumUpdates * k)
		if seq.Frames[k] != want {
			t.Errorf("K=%d sequential frames = %d, want %d", k, seq.Frames[k], want)
		}
		// Batching can only help, bounded below by perfect packing.
		if batched.Frames[k] >= seq.Frames[k] {
			t.Errorf("K=%d batched frames = %d, want below sequential %d", k, batched.Frames[k], seq.Frames[k])
		}
		if lower := (seq.Frames[k] + 511) / 512; batched.Frames[k] < lower {
			t.Errorf("K=%d batched frames = %d below the perfect-packing bound %d", k, batched.Frames[k], lower)
		}
		if batched.PerK[k].Mean() != seq.PerK[k].Mean() {
			t.Errorf("K=%d batching changed the latency distribution", k)
		}
	}
	if strings.Contains(seq.String(), "frames") {
		t.Error("Batch=1 rendering must stay byte-compatible with the sequential table")
	}
	if !strings.Contains(batched.String(), "frames(B=512)") {
		t.Error("batched rendering missing the frames column")
	}
}

// TestQueryLoadBatchFrameModel: same accounting on the read path, and
// the load-balance metrics must not move with the batch size.
func TestQueryLoadBatchFrameModel(t *testing.T) {
	w := testWorld(t)
	cfg := QueryLoadConfig{Ks: []int{5}, NumGUIDs: 400, NumLookups: 6000, Seed: 9}
	seq, err := RunQueryLoad(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Batch = 256
	batched, err := RunQueryLoad(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rows[0].Frames != int64(cfg.NumLookups) {
		t.Errorf("sequential frames = %d, want %d", seq.Rows[0].Frames, cfg.NumLookups)
	}
	if batched.Rows[0].Frames >= seq.Rows[0].Frames {
		t.Errorf("batched frames = %d, want below sequential %d", batched.Rows[0].Frames, seq.Rows[0].Frames)
	}
	if lower := (seq.Rows[0].Frames + 255) / 256; batched.Rows[0].Frames < lower {
		t.Errorf("batched frames = %d below the perfect-packing bound %d", batched.Rows[0].Frames, lower)
	}
	if batched.Rows[0].MaxShare != seq.Rows[0].MaxShare || batched.Rows[0].NLRp99 != seq.Rows[0].NLRp99 {
		t.Error("batch size changed the load-balance metrics")
	}
	if !strings.Contains(batched.String(), "frames(B=256)") {
		t.Error("batched rendering missing the frames column")
	}
}
