package experiments

import (
	"strings"
	"testing"

	"dmap/internal/topology"
)

func TestRunCachingValidation(t *testing.T) {
	w := testWorld(t)
	bad := []CachingConfig{
		{K: 0, NumGUIDs: 10, NumLookups: 10, DurationSec: 1, TTLs: []topology.Micros{0}},
		{K: 1, NumGUIDs: 0, NumLookups: 10, DurationSec: 1, TTLs: []topology.Micros{0}},
		{K: 1, NumGUIDs: 10, NumLookups: 10, DurationSec: 0, TTLs: []topology.Micros{0}},
		{K: 1, NumGUIDs: 10, NumLookups: 10, DurationSec: 1, UpdateRatePerSec: -1, TTLs: []topology.Micros{0}},
		{K: 1, NumGUIDs: 10, NumLookups: 10, DurationSec: 1},
	}
	for i, cfg := range bad {
		if _, err := RunCaching(w, cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestCachingTradeoff(t *testing.T) {
	w := testWorld(t)
	// A dense window: 40k lookups over 50 hot GUIDs in 10 minutes, so
	// per-source reuse actually occurs.
	res, err := RunCaching(w, CachingConfig{
		K:                5,
		NumGUIDs:         50,
		NumLookups:       40000,
		DurationSec:      600,
		UpdateRatePerSec: 100.0 / 86400,                                 // one move per ~14 min per GUID
		TTLs:             []topology.Micros{0, 10_000_000, 600_000_000}, // off, 10 s, 10 min
		Seed:             6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	off, short, long := res.Rows[0], res.Rows[1], res.Rows[2]

	if off.HitRate != 0 || off.StaleRate != 0 {
		t.Errorf("cache-off row = %+v", off)
	}
	// Longer TTL → more hits and lower mean latency...
	if long.HitRate <= short.HitRate {
		t.Errorf("hit rates: short %.3f, long %.3f", short.HitRate, long.HitRate)
	}
	if long.HitRate < 0.1 {
		t.Errorf("10-min TTL hit rate = %.3f, want substantial reuse", long.HitRate)
	}
	if long.Latency.Mean >= off.Latency.Mean {
		t.Errorf("caching did not reduce mean latency: %.1f vs %.1f",
			long.Latency.Mean, off.Latency.Mean)
	}
	// ...but also more staleness: at one move per ~14 min, 10-minute-old
	// answers are stale ~25% of the time — the §VII trade-off and the
	// reason the paper rejects DNS-style long-TTL caching for mobility.
	if long.StaleRate < short.StaleRate {
		t.Errorf("staleness should not shrink with TTL: short %.4f, long %.4f",
			short.StaleRate, long.StaleRate)
	}
	if long.StaleRate > long.HitRate {
		t.Errorf("stale %.4f cannot exceed hits %.4f", long.StaleRate, long.HitRate)
	}
	staleGivenHitShort := short.StaleRate / short.HitRate
	staleGivenHitLong := long.StaleRate / long.HitRate
	if staleGivenHitShort > 0.02 {
		t.Errorf("10-s TTL stale-per-hit = %.4f, want < 2%%", staleGivenHitShort)
	}
	if staleGivenHitLong < staleGivenHitShort {
		t.Errorf("stale-per-hit should grow with TTL: %.4f vs %.4f",
			staleGivenHitLong, staleGivenHitShort)
	}
	if !strings.Contains(res.String(), "stale%") {
		t.Error("String output")
	}
}

func TestRunUpdateLatency(t *testing.T) {
	w := testWorld(t)
	res, err := RunUpdate(w, UpdateConfig{Ks: []int{1, 5}, NumUpdates: 5000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c1, c5 := res.PerK[1], res.PerK[5]
	if c1.N() != 5000 || c5.N() != 5000 {
		t.Fatal("sample counts")
	}
	// Update latency is max-over-K: more replicas cannot be faster.
	if c5.Mean() < c1.Mean() {
		t.Errorf("K=5 update mean %.1f < K=1 %.1f", c5.Mean(), c1.Mean())
	}
	if c5.Median() < c1.Median() {
		t.Errorf("K=5 update median %.1f < K=1 %.1f", c5.Median(), c1.Median())
	}
	// §IV-B2a: updates must fit comfortably inside handoff times.
	if res.WithinBudget[5] < 0.95 {
		t.Errorf("only %.1f%% of K=5 updates within 500 ms", 100*res.WithinBudget[5])
	}
	if !strings.Contains(res.String(), "within 500ms") {
		t.Error("String output")
	}
}

func TestRunUpdateValidation(t *testing.T) {
	w := testWorld(t)
	if _, err := RunUpdate(w, UpdateConfig{NumUpdates: 5}); err == nil {
		t.Error("no Ks should fail")
	}
	if _, err := RunUpdate(w, UpdateConfig{Ks: []int{1}, NumUpdates: 0}); err == nil {
		t.Error("no updates should fail")
	}
	if _, err := RunUpdate(w, UpdateConfig{Ks: []int{0}, NumUpdates: 5}); err == nil {
		t.Error("K=0 should fail")
	}
}
