package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"dmap/internal/core"
	"dmap/internal/guid"
	"dmap/internal/netaddr"
	"dmap/internal/nodesim"
	"dmap/internal/prefixtable"
	"dmap/internal/simnet"
	"dmap/internal/store"
	"dmap/internal/topology"
)

// HealConfig drives the partition-heal convergence experiment: split the
// network, write divergent versions on both sides, heal, and measure how
// long anti-entropy gossip (DESIGN.md §12) takes to restore §III-D2
// agreement — and how many stale reads slip through before it does —
// as a function of the gossip interval.
type HealConfig struct {
	// NumAS sizes the topology (default 200).
	NumAS int
	// K is the replication factor (default 3).
	K int
	// LocalReplica enables the §III-C per-attachment-AS copies, which
	// the repair protocol must also converge.
	LocalReplica bool
	// NumGUIDs sizes the diverged population (default 50).
	NumGUIDs int
	// GossipIntervals lists the sweep points: simulated time between
	// gossip rounds after the heal.
	GossipIntervals []simnet.Time
	// StaleProbes is the number of post-heal, pre-convergence lookups
	// probed per cell for staleness (default 200).
	StaleProbes int
	// Seed fixes the topology, prefix table, write placement and probe
	// sampling.
	Seed int64
}

// HealCell is one gossip-interval sweep point.
type HealCell struct {
	GossipInterval simnet.Time
	// ConvergenceTime is the simulated time from the heal until every
	// replica (placements and local copies) holds the max version.
	ConvergenceTime simnet.Time
	// Rounds is how many gossip rounds that took.
	Rounds int
	// EntriesRepaired counts entries that actually advanced a store
	// (pulled + pushed).
	EntriesRepaired int
	// StaleReads of Probes lookups issued immediately after the heal
	// (before any gossip) returned a pre-partition or one-side version.
	StaleReads int
	Probes     int
}

// StaleRate returns the stale fraction of the post-heal probes.
func (c HealCell) StaleRate() float64 {
	if c.Probes == 0 {
		return 0
	}
	return float64(c.StaleReads) / float64(c.Probes)
}

// HealResult holds the sweep.
type HealResult struct {
	Cells []HealCell
}

// String renders the sweep as a convergence table.
func (r *HealResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %7s %9s %11s\n",
		"interval(ms)", "converge(ms)", "rounds", "repaired", "stale-rate")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-14.0f %14.1f %7d %9d %10.1f%%\n",
			float64(c.GossipInterval)/1000, float64(c.ConvergenceTime)/1000,
			c.Rounds, c.EntriesRepaired, 100*c.StaleRate())
	}
	return b.String()
}

// RunHeal runs the partition-heal sweep. Each cell builds its own
// deployment from the seed, so cells are independent and the whole sweep
// is deterministic.
func RunHeal(cfg HealConfig) (*HealResult, error) {
	if cfg.NumAS <= 0 {
		cfg.NumAS = 200
	}
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.NumGUIDs <= 0 {
		cfg.NumGUIDs = 50
	}
	if cfg.StaleProbes <= 0 {
		cfg.StaleProbes = 200
	}
	if len(cfg.GossipIntervals) == 0 {
		return nil, fmt.Errorf("experiments: heal sweep needs GossipIntervals")
	}
	res := &HealResult{}
	for _, interval := range cfg.GossipIntervals {
		if interval <= 0 {
			return nil, fmt.Errorf("experiments: non-positive gossip interval %d", interval)
		}
		cell, err := runHealCell(cfg, interval)
		if err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

func runHealCell(cfg HealConfig, interval simnet.Time) (HealCell, error) {
	cell := HealCell{GossipInterval: interval}
	g, err := topology.Generate(topology.SmallGenConfig(cfg.NumAS, cfg.Seed))
	if err != nil {
		return cell, err
	}
	tbl, err := prefixtable.Generate(prefixtable.GenConfig{
		NumAS:             g.NumAS(),
		NumPrefixes:       3000,
		AnnouncedFraction: 0.52,
		Seed:              cfg.Seed,
	})
	if err != nil {
		return cell, err
	}
	resolver, err := core.NewResolver(guid.MustHasher(cfg.K, 0), tbl, 0)
	if err != nil {
		return cell, err
	}
	sys, err := core.NewSystem(core.SystemConfig{
		Resolver: resolver, NumAS: g.NumAS(), LocalReplica: cfg.LocalReplica,
	})
	if err != nil {
		return cell, err
	}
	cache, err := topology.NewDistCache(g, 64)
	if err != nil {
		return cell, err
	}
	d, err := nodesim.NewDeployment(sys, simnet.New(), cache, 0)
	if err != nil {
		return cell, err
	}

	// Seed the population at v1 while the network is whole.
	rng := rand.New(rand.NewSource(cfg.Seed + 99))
	entries := make([]store.Entry, cfg.NumGUIDs)
	for i := range entries {
		entries[i] = store.Entry{
			GUID:    guid.FromUint64(uint64(i) + 1),
			NAs:     []store.NA{{AS: rng.Intn(g.NumAS()), Addr: netaddr.AddrFromOctets(10, 0, byte(i>>8), byte(i))}},
			Version: 1,
		}
		if err := d.Insert(entries[i].NAs[0].AS, entries[i], func(nodesim.InsertResult) {}); err != nil {
			return cell, err
		}
	}
	d.Sim().Run(0)

	// Partition the lower half from the upper half; write v2 from the
	// lower side, v3 from the upper, so every entry's replicas disagree
	// across the cut.
	group := make([]int, g.NumAS()/2)
	for as := range group {
		group[as] = as
	}
	if err := d.Network().SetFaults(&simnet.FaultPlan{
		Seed:       cfg.Seed,
		Partitions: []simnet.Partition{{From: d.Sim().Now(), Group: group}},
	}); err != nil {
		return cell, err
	}
	for i := range entries {
		v2 := entries[i]
		v2.Version = 2
		if err := d.Insert(0, v2, func(nodesim.InsertResult) {}); err != nil {
			return cell, err
		}
		v3 := entries[i]
		v3.Version = 3
		if err := d.Insert(g.NumAS()-1, v3, func(nodesim.InsertResult) {}); err != nil {
			return cell, err
		}
	}
	d.Sim().Run(0)
	if err := d.Network().SetFaults(nil); err != nil {
		return cell, err
	}

	// Stale-read probes right after the heal, before any repair: what a
	// client sees in the window gossip has not yet closed. Mobility
	// means a stale mapping routes traffic to a stale locator (§III-B).
	const maxVersion = 3
	probes := cfg.StaleProbes
	for p := 0; p < probes; p++ {
		i := rng.Intn(len(entries))
		src := rng.Intn(g.NumAS())
		if err := d.Lookup(src, entries[i].GUID, func(r nodesim.LookupResult) {
			if !r.Found || r.Entry.Version != maxVersion {
				cell.StaleReads++
			}
		}); err != nil {
			return cell, err
		}
	}
	d.Sim().Run(0)
	cell.Probes = probes
	// The probe phase drags the clock to its last armed (if unused)
	// timeout; gossip timing is measured from its own start.
	gossipStart := d.Sim().Now()

	// Gossip rounds spaced by the interval until every replica holds the
	// max version.
	replicas := func(e store.Entry) ([]int, error) {
		placements, err := resolver.Place(e.GUID)
		if err != nil {
			return nil, err
		}
		seen := map[int]bool{}
		var out []int
		for _, p := range placements {
			if !seen[p.AS] {
				seen[p.AS] = true
				out = append(out, p.AS)
			}
		}
		if cfg.LocalReplica {
			for _, na := range e.NAs {
				if !seen[na.AS] {
					seen[na.AS] = true
					out = append(out, na.AS)
				}
			}
		}
		return out, nil
	}
	converged := func() (bool, error) {
		for _, e := range entries {
			reps, err := replicas(e)
			if err != nil {
				return false, err
			}
			for _, as := range reps {
				st, err := sys.Store(as)
				if err != nil {
					return false, err
				}
				if v, _ := st.Version(e.GUID); v != maxVersion {
					return false, nil
				}
			}
		}
		return true, nil
	}

	before := d.GossipStats()
	const maxRounds = 16
	for {
		ok, err := converged()
		if err != nil {
			return cell, err
		}
		if ok {
			break
		}
		if cell.Rounds++; cell.Rounds > maxRounds {
			return cell, fmt.Errorf("experiments: no convergence after %d gossip rounds", maxRounds)
		}
		// Advance the clock to this round's tick, then run the round's
		// whole exchange.
		tick := gossipStart + simnet.Time(cell.Rounds)*interval
		if err := d.Sim().At(tick, func() {}); err != nil {
			return cell, err
		}
		d.Sim().RunUntil(tick)
		if err := d.GossipRound(); err != nil {
			return cell, err
		}
		d.Sim().Run(0)
	}
	after := d.GossipStats()
	cell.EntriesRepaired = (after.EntriesPulled + after.EntriesPushed) -
		(before.EntriesPulled + before.EntriesPushed)
	cell.ConvergenceTime = d.Sim().Now() - gossipStart
	return cell, nil
}
