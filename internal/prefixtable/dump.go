package prefixtable

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dmap/internal/netaddr"
)

// WriteDump serializes the table as one "prefix as" pair per line
// ("10.0.0.0/8 7018"), ordered by prefix, so synthetic and real tables
// interchange through the same plain-text format used by common BGP
// tooling.
func (t *Table) WriteDump(w io.Writer) error {
	entries := t.Entries()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Prefix.Addr() != entries[j].Prefix.Addr() {
			return entries[i].Prefix.Addr() < entries[j].Prefix.Addr()
		}
		return entries[i].Prefix.Bits() < entries[j].Prefix.Bits()
	})
	bw := bufio.NewWriter(w)
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%s %d\n", e.Prefix, e.AS); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadDump builds a table from WriteDump's format. Blank lines and
// '#'-prefixed comments are ignored; duplicate prefixes keep the last
// origin (as a re-announcement would).
func ReadDump(r io.Reader) (*Table, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("prefixtable: dump line %d: want 'prefix as', got %q", lineNo, line)
		}
		p, err := netaddr.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("prefixtable: dump line %d: %w", lineNo, err)
		}
		as, err := strconv.Atoi(fields[1])
		if err != nil || as < 0 {
			return nil, fmt.Errorf("prefixtable: dump line %d: bad AS %q", lineNo, fields[1])
		}
		if err := t.Announce(p, as); err != nil {
			return nil, fmt.Errorf("prefixtable: dump line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("prefixtable: read dump: %w", err)
	}
	return t, nil
}
