package prefixtable

import (
	"math/rand"
	"testing"

	"dmap/internal/netaddr"
)

func mustPfx(t *testing.T, s string) netaddr.Prefix {
	t.Helper()
	p, err := netaddr.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnnounceLookup(t *testing.T) {
	tbl := New()
	if err := tbl.Announce(mustPfx(t, "10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(mustPfx(t, "10.1.0.0/16"), 2); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(mustPfx(t, "192.168.0.0/16"), 3); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tbl.Len())
	}

	tests := []struct {
		addr   string
		wantAS int
		wantOK bool
	}{
		{"10.2.3.4", 1, true}, // covered by /8 only
		{"10.1.3.4", 2, true}, // most specific /16 wins
		{"192.168.9.9", 3, true},
		{"11.0.0.1", 0, false}, // hole
		{"172.16.0.1", 0, false},
	}
	for _, tt := range tests {
		a, err := netaddr.ParseAddr(tt.addr)
		if err != nil {
			t.Fatal(err)
		}
		e, ok := tbl.Lookup(a)
		if ok != tt.wantOK {
			t.Errorf("Lookup(%s) ok=%v, want %v", tt.addr, ok, tt.wantOK)
			continue
		}
		if ok && e.AS != tt.wantAS {
			t.Errorf("Lookup(%s) AS=%d, want %d", tt.addr, e.AS, tt.wantAS)
		}
	}
}

func TestAnnounceNegativeAS(t *testing.T) {
	tbl := New()
	if err := tbl.Announce(mustPfx(t, "10.0.0.0/8"), -1); err == nil {
		t.Error("negative AS should be rejected")
	}
}

func TestReannounceOverwritesOrigin(t *testing.T) {
	tbl := New()
	p := mustPfx(t, "8.0.0.0/8")
	if err := tbl.Announce(p, 5); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 9); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after re-announce", tbl.Len())
	}
	e, ok := tbl.Lookup(p.Addr())
	if !ok || e.AS != 9 {
		t.Errorf("Lookup = (%+v, %v), want AS 9", e, ok)
	}
}

func TestWithdraw(t *testing.T) {
	tbl := New()
	p8 := mustPfx(t, "10.0.0.0/8")
	p16 := mustPfx(t, "10.1.0.0/16")
	if err := tbl.Announce(p8, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p16, 2); err != nil {
		t.Fatal(err)
	}

	if !tbl.Withdraw(p16) {
		t.Fatal("Withdraw(/16) should succeed")
	}
	if tbl.Withdraw(p16) {
		t.Fatal("double Withdraw should report false")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	a, _ := netaddr.ParseAddr("10.1.3.4")
	e, ok := tbl.Lookup(a)
	if !ok || e.AS != 1 {
		t.Errorf("after withdrawal, Lookup falls back to /8: got (%+v, %v)", e, ok)
	}

	if !tbl.Withdraw(p8) {
		t.Fatal("Withdraw(/8) should succeed")
	}
	if tbl.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tbl.Len())
	}
	if _, ok := tbl.Lookup(a); ok {
		t.Error("empty table should not match")
	}
	if tbl.Withdraw(mustPfx(t, "99.0.0.0/8")) {
		t.Error("withdrawing never-announced prefix should report false")
	}
}

func TestWithdrawReusesStorage(t *testing.T) {
	tbl := New()
	p := mustPfx(t, "10.0.0.0/24")
	for i := 0; i < 100; i++ {
		if err := tbl.Announce(p, i); err != nil {
			t.Fatal(err)
		}
		if !tbl.Withdraw(p) {
			t.Fatal("withdraw failed")
		}
	}
	// 1 root + 24 path nodes is the steady-state allocation; churn must
	// not grow it unboundedly.
	if len(tbl.nodes) > 64 {
		t.Errorf("node arena grew to %d across announce/withdraw churn", len(tbl.nodes))
	}
}

func TestNearestEmptyTable(t *testing.T) {
	tbl := New()
	if _, _, ok := tbl.Nearest(0); ok {
		t.Error("Nearest on empty table must report !ok")
	}
}

func TestNearestExactWhenCovered(t *testing.T) {
	tbl := New()
	if err := tbl.Announce(mustPfx(t, "10.0.0.0/8"), 1); err != nil {
		t.Fatal(err)
	}
	a, _ := netaddr.ParseAddr("10.5.6.7")
	e, closest, ok := tbl.Nearest(a)
	if !ok || e.AS != 1 {
		t.Fatalf("Nearest = (%+v, %v)", e, ok)
	}
	if closest != a {
		t.Errorf("closest address inside covering prefix should be the address itself, got %v", closest)
	}
}

// bruteNearest scans every announced prefix for the true minimum IP
// distance.
func bruteNearest(tbl *Table, a netaddr.Addr) (Entry, uint32) {
	var best Entry
	bestDist := ^uint32(0)
	found := false
	for _, e := range tbl.Entries() {
		if d := e.Prefix.DistanceTo(a); !found || d < bestDist {
			best, bestDist, found = e, d, true
		}
	}
	return best, bestDist
}

func TestNearestMatchesBruteForceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl := New()
	for i := 0; i < 500; i++ {
		bits := 4 + rng.Intn(25) // /4../28
		p, err := netaddr.NewPrefix(netaddr.Addr(rng.Uint32()), bits)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Announce(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 2000; trial++ {
		a := netaddr.Addr(rng.Uint32())
		e, closest, ok := tbl.Nearest(a)
		if !ok {
			t.Fatal("Nearest !ok on non-empty table")
		}
		_, wantDist := bruteNearest(tbl, a)
		gotDist := e.Prefix.DistanceTo(a)
		if gotDist != wantDist {
			t.Fatalf("addr %v: Nearest dist %d (prefix %v), brute force %d",
				a, gotDist, e.Prefix, wantDist)
		}
		if !e.Prefix.Contains(closest) {
			t.Fatalf("closest %v not inside %v", closest, e.Prefix)
		}
		if a.Distance(closest) != gotDist {
			t.Fatalf("closest %v distance %d != prefix distance %d",
				closest, a.Distance(closest), gotDist)
		}
	}
}

func TestNearestAfterChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tbl := New()
	var live []netaddr.Prefix
	for round := 0; round < 300; round++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p, err := netaddr.NewPrefix(netaddr.Addr(rng.Uint32()), 6+rng.Intn(20))
			if err != nil {
				t.Fatal(err)
			}
			if err := tbl.Announce(p, round); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		} else {
			i := rng.Intn(len(live))
			tbl.Withdraw(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if len(live) == 0 {
			continue
		}
		a := netaddr.Addr(rng.Uint32())
		e, _, ok := tbl.Nearest(a)
		if !ok {
			t.Fatal("Nearest !ok with live prefixes")
		}
		if _, wantDist := bruteNearest(tbl, a); e.Prefix.DistanceTo(a) != wantDist {
			t.Fatalf("round %d: Nearest dist %d != brute %d", round, e.Prefix.DistanceTo(a), wantDist)
		}
	}
}

func TestAnnouncedFraction(t *testing.T) {
	tbl := New()
	if got := tbl.AnnouncedFraction(); got != 0 {
		t.Fatalf("empty fraction = %v", got)
	}
	if err := tbl.Announce(mustPfx(t, "0.0.0.0/1"), 1); err != nil {
		t.Fatal(err)
	}
	if got := tbl.AnnouncedFraction(); got != 0.5 {
		t.Fatalf("fraction = %v, want 0.5", got)
	}
	// Overlapping announcement must not double count.
	if err := tbl.Announce(mustPfx(t, "0.0.0.0/2"), 2); err != nil {
		t.Fatal(err)
	}
	if got := tbl.AnnouncedFraction(); got != 0.5 {
		t.Fatalf("fraction with nested prefix = %v, want 0.5", got)
	}
	if err := tbl.Announce(mustPfx(t, "128.0.0.0/2"), 3); err != nil {
		t.Fatal(err)
	}
	if got := tbl.AnnouncedFraction(); got != 0.75 {
		t.Fatalf("fraction = %v, want 0.75", got)
	}
}

func TestShareByAS(t *testing.T) {
	tbl := New()
	if err := tbl.Announce(mustPfx(t, "0.0.0.0/1"), 1); err != nil { // half the space
		t.Fatal(err)
	}
	if err := tbl.Announce(mustPfx(t, "0.0.0.0/2"), 2); err != nil { // quarter, carved out of AS 1
		t.Fatal(err)
	}
	shares := tbl.ShareByAS()
	if got := shares[1]; got != 0.25 {
		t.Errorf("AS 1 share = %v, want 0.25 (most-specific-wins carve-out)", got)
	}
	if got := shares[2]; got != 0.25 {
		t.Errorf("AS 2 share = %v, want 0.25", got)
	}
	if _, ok := shares[3]; ok {
		t.Error("AS 3 should be absent")
	}
}

func TestEntriesRoundTrip(t *testing.T) {
	tbl := New()
	want := map[string]int{
		"10.0.0.0/8":     1,
		"10.1.0.0/16":    2,
		"192.168.0.0/16": 3,
		"8.8.8.0/24":     4,
	}
	for s, as := range want {
		if err := tbl.Announce(mustPfx(t, s), as); err != nil {
			t.Fatal(err)
		}
	}
	got := tbl.Entries()
	if len(got) != len(want) {
		t.Fatalf("Entries len = %d, want %d", len(got), len(want))
	}
	for _, e := range got {
		if want[e.Prefix.String()] != e.AS {
			t.Errorf("entry %v AS=%d, want %d", e.Prefix, e.AS, want[e.Prefix.String()])
		}
	}
}

func TestLookupDefaultRoute(t *testing.T) {
	tbl := New()
	if err := tbl.Announce(mustPfx(t, "0.0.0.0/0"), 7); err != nil {
		t.Fatal(err)
	}
	for _, v := range []uint32{0, 1 << 31, ^uint32(0)} {
		e, ok := tbl.Lookup(netaddr.Addr(v))
		if !ok || e.AS != 7 {
			t.Errorf("default route should match %v", netaddr.Addr(v))
		}
	}
}

func TestSlash32(t *testing.T) {
	tbl := New()
	a, _ := netaddr.ParseAddr("1.2.3.4")
	p, err := netaddr.NewPrefix(a, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Announce(p, 1); err != nil {
		t.Fatal(err)
	}
	if e, ok := tbl.Lookup(a); !ok || e.AS != 1 {
		t.Error("/32 should match its own address")
	}
	if _, ok := tbl.Lookup(a + 1); ok {
		t.Error("/32 should not match the neighbour")
	}
	e, _, ok := tbl.Nearest(a + 1)
	if !ok || e.Prefix != p {
		t.Errorf("Nearest(neighbour) = %+v, want the /32", e)
	}
	if !tbl.Withdraw(p) {
		t.Error("withdraw /32 failed")
	}
}
