package prefixtable

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"dmap/internal/netaddr"
)

// GenConfig parameterizes the synthetic default-free-zone generator that
// substitutes for the APNIC DIX-IE BGP snapshot used in the paper (§IV-B1,
// [21]): roughly 330,000 prefixes spanning close to 52% of the 32-bit
// address space, announced by ~26k ASs with heavy-tailed per-AS shares.
type GenConfig struct {
	// NumAS is the number of autonomous systems that may announce
	// prefixes (indices [0, NumAS)).
	NumAS int
	// NumPrefixes is the approximate number of prefixes to announce.
	NumPrefixes int
	// AnnouncedFraction is the approximate share of the IPv4 space that
	// must end up announced (the paper measures 0.52–0.55; 1−fraction is
	// the per-hash hole probability).
	AnnouncedFraction float64
	// ShareSkew is the Pareto exponent of per-AS address share; larger
	// means a few ASs own most of the space. 0 selects the default (0.9),
	// which yields a realistic mix of /8-scale carriers and /24 stubs.
	ShareSkew float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig mirrors the paper's measured DFZ at full scale.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		NumAS:             26424,
		NumPrefixes:       330000,
		AnnouncedFraction: 0.52,
		Seed:              seed,
	}
}

// prefixLengthCDF approximates the real DFZ prefix-length distribution:
// /24s dominate the count while /8–/16 blocks dominate the coverage.
// Pairs of (prefix length, cumulative probability).
var prefixLengthCDF = []struct {
	bits int
	cum  float64
}{
	{8, 0.0001},
	{10, 0.0005},
	{12, 0.002},
	{13, 0.005},
	{14, 0.012},
	{15, 0.022},
	{16, 0.062},
	{17, 0.082},
	{18, 0.115},
	{19, 0.165},
	{20, 0.235},
	{21, 0.305},
	{22, 0.405},
	{23, 0.475},
	{24, 1.0},
}

func drawPrefixLength(rng *rand.Rand) int {
	u := rng.Float64()
	for _, p := range prefixLengthCDF {
		if u <= p.cum {
			return p.bits
		}
	}
	return 24
}

// Generate synthesizes a DFZ table per cfg. The resulting table has no
// overlapping announcements; holes appear both as large reserved ranges
// (multicast-style high /4s) and as scattered unallocated blocks, so that
// rehashing in Algorithm 1 sees a realistic hole structure.
func Generate(cfg GenConfig) (*Table, error) {
	if cfg.NumAS <= 0 {
		return nil, fmt.Errorf("prefixtable: NumAS must be positive, got %d", cfg.NumAS)
	}
	if cfg.NumPrefixes <= 0 {
		return nil, fmt.Errorf("prefixtable: NumPrefixes must be positive, got %d", cfg.NumPrefixes)
	}
	if cfg.AnnouncedFraction <= 0 || cfg.AnnouncedFraction > 1 {
		return nil, fmt.Errorf("prefixtable: AnnouncedFraction must be in (0,1], got %g", cfg.AnnouncedFraction)
	}
	skew := cfg.ShareSkew
	if skew == 0 {
		skew = 0.9
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	t := New()

	// Carve the space into /12 super-blocks (4096 of them) and announce a
	// fraction of them chosen to hit the coverage target. The top /4
	// (multicast + reserved, 224.0.0.0/4) is never announced, mirroring
	// the reserved ranges of the real space.
	const superBits = 12
	const numSuper = 1 << superBits

	candidates := make([]int, 0, numSuper)
	for i := 0; i < numSuper; i++ {
		if i>>(superBits-4) == 0xE || i>>(superBits-4) == 0xF {
			continue // 224/4 and 240/4 reserved (multicast etc.), 12.5% of space
		}
		candidates = append(candidates, i)
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})

	wantBlocks := int(cfg.AnnouncedFraction * numSuper)
	if wantBlocks > len(candidates) {
		return nil, fmt.Errorf("prefixtable: AnnouncedFraction %g exceeds non-reserved space (%g)",
			cfg.AnnouncedFraction, float64(len(candidates))/numSuper)
	}
	announced := candidates[:wantBlocks]
	sort.Ints(announced)

	// Per-AS Pareto weights turned into a sampling alias-free CDF.
	asCDF := paretoCDF(cfg.NumAS, skew, rng)

	// Aim the count: each super-block is carved into approximately
	// perBlock prefixes, adjusting lengths so packing stays exact.
	perBlock := cfg.NumPrefixes / len(announced)
	if perBlock < 1 {
		perBlock = 1
	}

	for _, blk := range announced {
		start := uint32(blk) << (32 - superBits)
		end := uint64(start) + (1 << (32 - superBits))
		cur := uint64(start)
		carved := 0
		for cur < end {
			var length int
			if carved < perBlock-1 {
				length = drawPrefixLength(rng)
			} else {
				// Fill the remainder with the largest aligned pieces so
				// the block is fully covered without exploding the count.
				length = superBits
			}
			if length < superBits {
				length = superBits
			}
			// The largest prefix starting at cur is limited by cur's
			// alignment and by the space left in the block.
			if cur != 0 {
				if align := 32 - bits.TrailingZeros32(uint32(cur)); length < align {
					length = align
				}
			}
			for uint64(1)<<(32-length) > end-cur {
				length++
			}
			p, err := netaddr.NewPrefix(netaddr.Addr(cur), length)
			if err != nil {
				return nil, fmt.Errorf("prefixtable: generator produced bad prefix: %w", err)
			}
			if err := t.Announce(p, sampleCDF(asCDF, rng)); err != nil {
				return nil, err
			}
			carved++
			cur += uint64(1) << (32 - length)
		}
	}
	return t, nil
}

// paretoCDF builds a cumulative distribution over n ASs with Pareto-like
// weights w_i = (i+1)^(-skew), randomly permuted so AS index carries no
// size information.
func paretoCDF(n int, skew float64, rng *rand.Rand) []float64 {
	weights := make([]float64, n)
	perm := rng.Perm(n)
	var total float64
	for i := 0; i < n; i++ {
		w := 1.0 / math.Pow(float64(i+1), skew)
		weights[perm[i]] = w
		total += w
	}
	cdf := make([]float64, n)
	var cum float64
	for i, w := range weights {
		cum += w / total
		cdf[i] = cum
	}
	cdf[n-1] = 1.0
	return cdf
}

func sampleCDF(cdf []float64, rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(cdf, u)
}
