package prefixtable

import (
	"math"
	"sort"
	"testing"

	"dmap/internal/netaddr"
)

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{NumAS: 0, NumPrefixes: 10, AnnouncedFraction: 0.5},
		{NumAS: 10, NumPrefixes: 0, AnnouncedFraction: 0.5},
		{NumAS: 10, NumPrefixes: 10, AnnouncedFraction: 0},
		{NumAS: 10, NumPrefixes: 10, AnnouncedFraction: 1.5},
		{NumAS: 10, NumPrefixes: 10, AnnouncedFraction: 0.95}, // exceeds non-reserved space
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestGenerateMeetsTargets(t *testing.T) {
	cfg := GenConfig{
		NumAS:             2000,
		NumPrefixes:       20000,
		AnnouncedFraction: 0.52,
		Seed:              1,
	}
	tbl, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}

	frac := tbl.AnnouncedFraction()
	if math.Abs(frac-0.52) > 0.02 {
		t.Errorf("announced fraction = %.4f, want ≈0.52", frac)
	}
	n := tbl.Len()
	if n < cfg.NumPrefixes/2 || n > cfg.NumPrefixes*2 {
		t.Errorf("prefix count = %d, want within 2x of %d", n, cfg.NumPrefixes)
	}

	// The reserved top eighth (224.0.0.0/3) must be hole.
	for _, s := range []string{"224.0.0.1", "239.1.2.3", "240.0.0.1", "255.255.255.255"} {
		a, _ := netaddr.ParseAddr(s)
		if tbl.Contains(a) {
			t.Errorf("reserved address %s should not be announced", s)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{NumAS: 500, NumPrefixes: 5000, AnnouncedFraction: 0.5, Seed: 42}
	t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := t1.Entries(), t2.Entries()
	if len(e1) != len(e2) {
		t.Fatalf("lengths differ: %d vs %d", len(e1), len(e2))
	}
	key := func(e Entry) string { return e.Prefix.String() }
	sort.Slice(e1, func(i, j int) bool { return key(e1[i]) < key(e1[j]) })
	sort.Slice(e2, func(i, j int) bool { return key(e2[i]) < key(e2[j]) })
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	cfg := GenConfig{NumAS: 500, NumPrefixes: 5000, AnnouncedFraction: 0.5}
	cfg.Seed = 1
	t1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	t2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not a strict requirement per-entry, but tables from different seeds
	// should not be identical.
	if t1.Len() == t2.Len() {
		same := true
		e1, e2 := t1.Entries(), t2.Entries()
		sort.Slice(e1, func(i, j int) bool { return e1[i].Prefix.String() < e1[j].Prefix.String() })
		sort.Slice(e2, func(i, j int) bool { return e2[i].Prefix.String() < e2[j].Prefix.String() })
		for i := range e1 {
			if e1[i] != e2[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical tables")
		}
	}
}

func TestGenerateNoOverlaps(t *testing.T) {
	tbl, err := Generate(GenConfig{NumAS: 300, NumPrefixes: 4000, AnnouncedFraction: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	entries := tbl.Entries()
	sort.Slice(entries, func(i, j int) bool { return entries[i].Prefix.Addr() < entries[j].Prefix.Addr() })
	for i := 1; i < len(entries); i++ {
		prev, cur := entries[i-1].Prefix, entries[i].Prefix
		if prev.Overlaps(cur) {
			t.Fatalf("overlapping prefixes generated: %v and %v", prev, cur)
		}
	}
	// With no overlaps, union coverage equals the sum of sizes, and the
	// per-AS shares must sum to the announced fraction.
	var sum float64
	for _, share := range tbl.ShareByAS() {
		sum += share
	}
	if math.Abs(sum-tbl.AnnouncedFraction()) > 1e-9 {
		t.Errorf("ShareByAS sums to %.6f, want announced fraction %.6f", sum, tbl.AnnouncedFraction())
	}
}

func TestGenerateHeavyTailedShares(t *testing.T) {
	tbl, err := Generate(GenConfig{NumAS: 1000, NumPrefixes: 10000, AnnouncedFraction: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	shares := tbl.ShareByAS()
	vals := make([]float64, 0, len(shares))
	var total float64
	for _, s := range shares {
		vals = append(vals, s)
		total += s
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	topN := len(vals) / 10
	var top float64
	for _, v := range vals[:topN] {
		top += v
	}
	// A heavy tail means the top decile owns well over its proportional
	// 10% — expect > 30%.
	if top/total < 0.3 {
		t.Errorf("top 10%% of ASs own %.1f%% of announced space, want > 30%%", 100*top/total)
	}
}

func TestDefaultGenConfig(t *testing.T) {
	cfg := DefaultGenConfig(7)
	if cfg.NumAS != 26424 {
		t.Errorf("NumAS = %d, want the paper's 26424", cfg.NumAS)
	}
	if cfg.NumPrefixes != 330000 {
		t.Errorf("NumPrefixes = %d, want the paper's 330000", cfg.NumPrefixes)
	}
	if cfg.AnnouncedFraction != 0.52 {
		t.Errorf("AnnouncedFraction = %v, want 0.52", cfg.AnnouncedFraction)
	}
}

func TestGenerateHoleProbability(t *testing.T) {
	// A uniformly hashed address must miss the table with probability
	// ≈ 1 − AnnouncedFraction (the §III-B hole probability).
	tbl, err := Generate(GenConfig{NumAS: 1000, NumPrefixes: 10000, AnnouncedFraction: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	const trials = 20000
	// Low-discrepancy scan of the space (golden-ratio stride).
	const stride = 2654435761
	a := uint32(12345)
	for i := 0; i < trials; i++ {
		a += stride
		if !tbl.Contains(netaddr.Addr(a)) {
			misses++
		}
	}
	got := float64(misses) / trials
	want := 1 - tbl.AnnouncedFraction()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("hole probability = %.4f, want ≈ %.4f", got, want)
	}
}

func TestGenerateChurn(t *testing.T) {
	tbl, err := Generate(GenConfig{NumAS: 200, NumPrefixes: 3000, AnnouncedFraction: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	events, err := GenerateChurn(tbl, ChurnConfig{
		WithdrawPerSec: 0.5,
		AnnouncePerSec: 0.5,
		DurationSec:    100,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no churn generated")
	}
	withdrawn := make(map[string]bool)
	var withdrawals, announcements int
	prev := -1.0
	for _, ev := range events {
		if ev.AtSec < prev {
			t.Fatal("events not time-ordered")
		}
		prev = ev.AtSec
		if ev.AtSec < 0 || ev.AtSec >= 100 {
			t.Fatalf("event time %v outside window", ev.AtSec)
		}
		switch ev.Kind {
		case ChurnWithdraw:
			key := ev.Prefix.Prefix.String()
			if withdrawn[key] {
				t.Fatalf("prefix %s withdrawn twice", key)
			}
			withdrawn[key] = true
			withdrawals++
		case ChurnAnnounce:
			if !withdrawn[ev.Prefix.Prefix.String()] {
				t.Fatal("announcement of a never-withdrawn prefix")
			}
			announcements++
		default:
			t.Fatalf("unknown kind %v", ev.Kind)
		}
	}
	// Expect roughly rate×duration withdrawals (Poisson, generous band).
	if withdrawals < 25 || withdrawals > 90 {
		t.Errorf("withdrawals = %d, want ≈50", withdrawals)
	}
	if announcements == 0 || announcements > withdrawals {
		t.Errorf("announcements = %d vs withdrawals %d", announcements, withdrawals)
	}
}

func TestGenerateChurnValidation(t *testing.T) {
	tbl := New()
	if _, err := GenerateChurn(tbl, ChurnConfig{DurationSec: 1}); err == nil {
		t.Error("empty table should fail")
	}
	if err := tbl.Announce(netaddr.MustPrefix(netaddr.AddrFromOctets(10, 0, 0, 0), 8), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateChurn(tbl, ChurnConfig{DurationSec: 0}); err == nil {
		t.Error("zero duration should fail")
	}
	if _, err := GenerateChurn(tbl, ChurnConfig{DurationSec: 1, WithdrawPerSec: -1}); err == nil {
		t.Error("negative rate should fail")
	}
}

func TestChurnKindString(t *testing.T) {
	if ChurnWithdraw.String() != "withdraw" || ChurnAnnounce.String() != "announce" {
		t.Error("kind names")
	}
	if ChurnKind(9).String() == "" {
		t.Error("unknown kind should format")
	}
}
