// Package prefixtable implements the BGP default-free-zone (DFZ) prefix
// table that DMap piggybacks on: a longest-prefix-match trie mapping
// announced IPv4 prefixes to the autonomous systems that announce them.
//
// Beyond ordinary LPM it provides the two operations DMap's hole-handling
// protocol (Algorithm 1, §III-B of the paper) needs:
//
//   - Lookup: does any AS announce this hashed address?
//   - Nearest: which announced prefix minimizes the IP (XOR) distance to
//     this address? — the "deputy AS" fallback after M failed rehashes.
//
// It also supports announce/withdraw churn (§III-D1) and the storage
// accounting (per-AS announced share) behind the Normalized Load Ratio
// metric of §IV-B2c.
//
// Throughout this package an AS is identified by a dense index in
// [0, NumAS); the same index space is used by internal/topology.
package prefixtable

import (
	"fmt"

	"dmap/internal/netaddr"
)

// Entry is one announced prefix and its announcing AS.
type Entry struct {
	Prefix netaddr.Prefix
	AS     int
}

const nilRef = int32(-1)

type node struct {
	child [2]int32 // trie children; nilRef if absent
	entry int32    // index into entries; nilRef if no announcement ends here
}

// Table is a binary-trie prefix table. The zero value is not usable; call
// New. Table is not safe for concurrent mutation; wrap it (as
// internal/server does) when sharing across goroutines.
type Table struct {
	nodes     []node
	entries   []Entry
	freeNodes []int32
	freeEnts  []int32
	count     int
}

// New returns an empty table.
func New() *Table {
	t := &Table{}
	t.nodes = append(t.nodes, node{child: [2]int32{nilRef, nilRef}, entry: nilRef}) // root
	return t
}

// Len returns the number of announced prefixes.
func (t *Table) Len() int { return t.count }

func (t *Table) newNode() int32 {
	if n := len(t.freeNodes); n > 0 {
		idx := t.freeNodes[n-1]
		t.freeNodes = t.freeNodes[:n-1]
		t.nodes[idx] = node{child: [2]int32{nilRef, nilRef}, entry: nilRef}
		return idx
	}
	t.nodes = append(t.nodes, node{child: [2]int32{nilRef, nilRef}, entry: nilRef})
	return int32(len(t.nodes) - 1)
}

func (t *Table) newEntry(e Entry) int32 {
	if n := len(t.freeEnts); n > 0 {
		idx := t.freeEnts[n-1]
		t.freeEnts = t.freeEnts[:n-1]
		t.entries[idx] = e
		return idx
	}
	t.entries = append(t.entries, e)
	return int32(len(t.entries) - 1)
}

// bitAt returns bit number (31-depth) of a: the bit consumed at the given
// trie depth, most-significant first.
func bitAt(a netaddr.Addr, depth int) int {
	return int(a>>(31-depth)) & 1
}

// Announce inserts (or re-announces, overwriting the origin AS of) the
// given prefix. as must be a non-negative AS index.
func (t *Table) Announce(p netaddr.Prefix, as int) error {
	if as < 0 {
		return fmt.Errorf("prefixtable: announce %v: negative AS index %d", p, as)
	}
	cur := int32(0)
	for depth := 0; depth < p.Bits(); depth++ {
		b := bitAt(p.Addr(), depth)
		next := t.nodes[cur].child[b]
		if next == nilRef {
			next = t.newNode()
			t.nodes[cur].child[b] = next
		}
		cur = next
	}
	if e := t.nodes[cur].entry; e != nilRef {
		t.entries[e].AS = as // re-announcement: origin change
		return nil
	}
	t.nodes[cur].entry = t.newEntry(Entry{Prefix: p, AS: as})
	t.count++
	return nil
}

// Withdraw removes the exact prefix p, pruning now-empty trie branches.
// It reports whether the prefix was announced.
func (t *Table) Withdraw(p netaddr.Prefix) bool {
	var path [33]int32
	cur := int32(0)
	path[0] = cur
	for depth := 0; depth < p.Bits(); depth++ {
		next := t.nodes[cur].child[bitAt(p.Addr(), depth)]
		if next == nilRef {
			return false
		}
		cur = next
		path[depth+1] = cur
	}
	e := t.nodes[cur].entry
	if e == nilRef {
		return false
	}
	t.freeEnts = append(t.freeEnts, e)
	t.nodes[cur].entry = nilRef
	t.count--
	// Prune childless, entryless nodes bottom-up (never the root).
	for depth := p.Bits(); depth > 0; depth-- {
		n := &t.nodes[path[depth]]
		if n.entry != nilRef || n.child[0] != nilRef || n.child[1] != nilRef {
			break
		}
		parent := &t.nodes[path[depth-1]]
		parent.child[bitAt(p.Addr(), depth-1)] = nilRef
		t.freeNodes = append(t.freeNodes, path[depth])
	}
	return true
}

// Lookup performs longest-prefix matching on a, returning the
// most-specific announced prefix containing it.
func (t *Table) Lookup(a netaddr.Addr) (Entry, bool) {
	best := nilRef
	cur := int32(0)
	for depth := 0; ; depth++ {
		if e := t.nodes[cur].entry; e != nilRef {
			best = e
		}
		if depth == 32 {
			break
		}
		next := t.nodes[cur].child[bitAt(a, depth)]
		if next == nilRef {
			break
		}
		cur = next
	}
	if best == nilRef {
		return Entry{}, false
	}
	return t.entries[best], true
}

// Contains reports whether any announced prefix covers a.
func (t *Table) Contains(a netaddr.Addr) bool {
	_, ok := t.Lookup(a)
	return ok
}

// Nearest returns the announced prefix with minimum IP distance to a (and
// the concrete address within it realizing that minimum), implementing the
// deputy-AS selection of Algorithm 1: "pick the deputy AS as the one that
// announces the IP address that has the minimum IP distance to the current
// hashed value". It returns ok=false only when the table is empty.
//
// Under the XOR metric the nearest prefix is found by walking a's bit
// path: every announced prefix on the path contains a (distance 0, equal
// to what Lookup finds); otherwise the subtree diverging from the path at
// the deepest possible bit dominates all shallower divergences, and within
// a subtree a greedy bit-matching descent finds the minimum.
func (t *Table) Nearest(a netaddr.Addr) (Entry, netaddr.Addr, bool) {
	if t.count == 0 {
		return Entry{}, 0, false
	}
	if e, ok := t.Lookup(a); ok {
		return e, e.Prefix.ClosestAddr(a), true
	}
	// No prefix on a's path. Record the path, then take the deepest
	// divergence whose sibling subtree is non-empty.
	var path [33]int32
	depthMax := 0
	cur := int32(0)
	path[0] = cur
	for depth := 0; depth < 32; depth++ {
		next := t.nodes[cur].child[bitAt(a, depth)]
		if next == nilRef {
			break
		}
		cur = next
		depthMax = depth + 1
		path[depthMax] = cur
	}
	for depth := depthMax; depth >= 0; depth-- {
		// Nodes on the path never carry entries here (Lookup failed), so
		// the candidate is the sibling of a's bit at this depth. Depth 32
		// nodes have no children (bits exhausted).
		if depth == 32 {
			continue
		}
		other := t.nodes[path[depth]].child[1-bitAt(a, depth)]
		if other == nilRef {
			continue
		}
		e := t.greedyNearest(other, depth+1, a)
		return e, e.Prefix.ClosestAddr(a), true
	}
	// Unreachable when count > 0: the root subtree holds some entry.
	return Entry{}, 0, false
}

// greedyNearest returns the minimum-XOR-distance entry within the subtree
// rooted at idx, which sits at the given trie depth. An entry stored at a
// node dominates every entry below it (descendants share its prefix bits
// and add non-negative lower-order distance), and the child matching a's
// next bit dominates its sibling (the sibling costs 2^(31-depth), more
// than everything below the match combined).
func (t *Table) greedyNearest(idx int32, depth int, a netaddr.Addr) Entry {
	for {
		n := t.nodes[idx]
		if n.entry != nilRef {
			return t.entries[n.entry]
		}
		b := bitAt(a, depth)
		switch {
		case n.child[b] != nilRef:
			idx = n.child[b]
		case n.child[1-b] != nilRef:
			idx = n.child[1-b]
		default:
			// Childless, entryless nodes are pruned on Withdraw, so this
			// branch is unreachable; fail loudly if the invariant breaks.
			panic("prefixtable: dead trie node reached in greedyNearest")
		}
		depth++
	}
}

// Entries returns all announced prefixes in unspecified order. The result
// is freshly allocated.
func (t *Table) Entries() []Entry {
	out := make([]Entry, 0, t.count)
	t.walk(0, func(e Entry) { out = append(out, e) })
	return out
}

func (t *Table) walk(idx int32, fn func(Entry)) {
	n := t.nodes[idx]
	if n.entry != nilRef {
		fn(t.entries[n.entry])
	}
	for _, c := range n.child {
		if c != nilRef {
			t.walk(c, fn)
		}
	}
}

// AnnouncedFraction returns the share of the 2^32 address space covered by
// the union of all announced prefixes (overlaps counted once). The paper
// measures ≈52–55% for the real DFZ; 1 − AnnouncedFraction is the per-hash
// IP-hole probability of §III-B.
func (t *Table) AnnouncedFraction() float64 {
	return float64(t.coveredSize(0, 0)) / float64(uint64(1)<<32)
}

func (t *Table) coveredSize(idx int32, depth int) uint64 {
	n := t.nodes[idx]
	if n.entry != nilRef {
		return 1 << (32 - depth) // whole subtree covered regardless of children
	}
	var sum uint64
	for _, c := range n.child {
		if c != nilRef {
			sum += t.coveredSize(c, depth+1)
		}
	}
	return sum
}

// ShareByAS returns, for each AS index, the fraction of the total IPv4
// space it effectively owns under most-specific-wins semantics. This is
// the denominator of the Normalized Load Ratio in §IV-B2c.
func (t *Table) ShareByAS() map[int]float64 {
	owned := make(map[int]uint64)
	t.accumulateShare(0, 0, -1, owned)
	out := make(map[int]float64, len(owned))
	for as, size := range owned {
		out[as] = float64(size) / float64(uint64(1)<<32)
	}
	return out
}

// accumulateShare credits each address to the most specific announcing AS
// covering it: a node's block belongs to the inherited owner except for
// the parts re-owned by descendants.
func (t *Table) accumulateShare(idx int32, depth, owner int, owned map[int]uint64) {
	n := t.nodes[idx]
	if n.entry != nilRef {
		owner = t.entries[n.entry].AS
	}
	var childrenSize uint64
	for _, c := range n.child {
		if c != nilRef {
			t.accumulateShare(c, depth+1, owner, owned)
			childrenSize += 1 << (31 - depth)
		}
	}
	if owner >= 0 {
		owned[owner] += (1 << (32 - depth)) - childrenSize
	}
}
