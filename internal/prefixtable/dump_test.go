package prefixtable

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestDumpRoundTrip(t *testing.T) {
	orig, err := Generate(GenConfig{NumAS: 100, NumPrefixes: 2000, AnnouncedFraction: 0.4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != orig.Len() {
		t.Fatalf("round trip length %d, want %d", back.Len(), orig.Len())
	}
	a, b := orig.Entries(), back.Entries()
	key := func(e Entry) string { return e.Prefix.String() }
	sort.Slice(a, func(i, j int) bool { return key(a[i]) < key(a[j]) })
	sort.Slice(b, func(i, j int) bool { return key(b[i]) < key(b[j]) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestReadDumpFormat(t *testing.T) {
	in := `# a comment

10.0.0.0/8 7018
10.0.0.0/8 3356
192.168.0.0/16 64512
`
	tbl, err := ReadDump(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicate keeps last)", tbl.Len())
	}
	e, ok := tbl.Lookup(mustPfx(t, "10.0.0.0/8").Addr())
	if !ok || e.AS != 3356 {
		t.Errorf("duplicate prefix: got %+v, want last origin 3356", e)
	}
}

func TestReadDumpErrors(t *testing.T) {
	cases := []string{
		"10.0.0.0/8",         // missing AS
		"10.0.0.0/8 x",       // bad AS
		"10.0.0.0/8 -5",      // negative AS
		"10.0.0.0/99 1",      // bad prefix
		"10.0.0.0/8 1 extra", // too many fields
	}
	for _, in := range cases {
		if _, err := ReadDump(strings.NewReader(in)); err == nil {
			t.Errorf("ReadDump(%q) should fail", in)
		}
	}
}

func TestWriteDumpDeterministicOrder(t *testing.T) {
	tbl := New()
	for _, s := range []string{"20.0.0.0/8", "10.0.0.0/8", "10.0.0.0/16"} {
		if err := tbl.Announce(mustPfx(t, s), 1); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := tbl.WriteDump(&buf); err != nil {
		t.Fatal(err)
	}
	want := "10.0.0.0/8 1\n10.0.0.0/16 1\n20.0.0.0/8 1\n"
	if buf.String() != want {
		t.Errorf("dump = %q, want %q", buf.String(), want)
	}
}

func FuzzReadDump(f *testing.F) {
	f.Add("10.0.0.0/8 1\n")
	f.Add("# comment\n\n10.0.0.0/8 1\n10.0.0.0/8 2\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		tbl, err := ReadDump(strings.NewReader(s))
		if err != nil {
			return
		}
		// Anything accepted must round-trip.
		var buf bytes.Buffer
		if err := tbl.WriteDump(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadDump(&buf)
		if err != nil {
			t.Fatalf("canonical dump does not re-parse: %v", err)
		}
		if back.Len() != tbl.Len() {
			t.Fatalf("round trip changed length %d to %d", tbl.Len(), back.Len())
		}
	})
}
