package prefixtable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmap/internal/netaddr"
)

// refModel is an oracle implementation of the prefix table: a flat slice
// scanned by brute force.
type refModel struct {
	entries map[string]Entry
}

func newRefModel() *refModel {
	return &refModel{entries: make(map[string]Entry)}
}

func (m *refModel) announce(p netaddr.Prefix, as int) {
	m.entries[p.String()] = Entry{Prefix: p, AS: as}
}

func (m *refModel) withdraw(p netaddr.Prefix) bool {
	if _, ok := m.entries[p.String()]; !ok {
		return false
	}
	delete(m.entries, p.String())
	return true
}

func (m *refModel) lookup(a netaddr.Addr) (Entry, bool) {
	best := Entry{}
	found := false
	for _, e := range m.entries {
		if e.Prefix.Contains(a) && (!found || e.Prefix.Bits() > best.Prefix.Bits()) {
			best, found = e, true
		}
	}
	return best, found
}

// TestTableMatchesModelRandomOps drives the trie and the oracle through
// the same random operation sequences (testing/quick generates the
// seeds) and checks LPM agreement on random probes after every step.
func TestTableMatchesModelRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := New()
		model := newRefModel()
		var live []netaddr.Prefix

		for step := 0; step < 120; step++ {
			switch {
			case len(live) == 0 || rng.Float64() < 0.55:
				p, err := netaddr.NewPrefix(netaddr.Addr(rng.Uint32()), rng.Intn(33))
				if err != nil {
					return false
				}
				as := rng.Intn(50)
				if err := tbl.Announce(p, as); err != nil {
					return false
				}
				model.announce(p, as)
				live = append(live, p)
			default:
				i := rng.Intn(len(live))
				got := tbl.Withdraw(live[i])
				want := model.withdraw(live[i])
				if got != want {
					t.Logf("seed %d: withdraw(%v) = %v, model %v", seed, live[i], got, want)
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			if tbl.Len() != len(model.entries) {
				t.Logf("seed %d: Len %d vs model %d", seed, tbl.Len(), len(model.entries))
				return false
			}
			for probe := 0; probe < 8; probe++ {
				a := netaddr.Addr(rng.Uint32())
				got, gok := tbl.Lookup(a)
				want, wok := model.lookup(a)
				if gok != wok {
					t.Logf("seed %d: Lookup(%v) ok=%v, model %v", seed, a, gok, wok)
					return false
				}
				if gok && (got.Prefix != want.Prefix || got.AS != want.AS) {
					t.Logf("seed %d: Lookup(%v) = %+v, model %+v", seed, a, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestCoverageMatchesSampling cross-checks AnnouncedFraction and
// ShareByAS against Monte-Carlo sampling of the live table.
func TestCoverageMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tbl := New()
	for i := 0; i < 300; i++ {
		p, err := netaddr.NewPrefix(netaddr.Addr(rng.Uint32()), 2+rng.Intn(16))
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Announce(p, i%20); err != nil {
			t.Fatal(err)
		}
	}

	const samples = 200000
	covered := 0
	hostedByAS := make(map[int]int)
	for i := 0; i < samples; i++ {
		a := netaddr.Addr(rng.Uint32())
		if e, ok := tbl.Lookup(a); ok {
			covered++
			hostedByAS[e.AS]++
		}
	}
	empirical := float64(covered) / samples
	if got := tbl.AnnouncedFraction(); got < empirical-0.01 || got > empirical+0.01 {
		t.Errorf("AnnouncedFraction = %.4f, sampling says %.4f", got, empirical)
	}

	shares := tbl.ShareByAS()
	for as, share := range shares {
		emp := float64(hostedByAS[as]) / samples
		if diff := share - emp; diff > 0.01 || diff < -0.01 {
			t.Errorf("AS %d share = %.4f, sampling says %.4f", as, share, emp)
		}
	}
}
