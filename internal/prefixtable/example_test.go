package prefixtable_test

import (
	"fmt"

	"dmap/internal/netaddr"
	"dmap/internal/prefixtable"
)

// Example shows longest-prefix matching and the deputy search that
// backs Algorithm 1's hole handling.
func Example() {
	t := prefixtable.New()
	_ = t.Announce(netaddr.MustPrefix(netaddr.AddrFromOctets(10, 0, 0, 0), 8), 100)
	_ = t.Announce(netaddr.MustPrefix(netaddr.AddrFromOctets(10, 42, 0, 0), 16), 200)

	a, _ := netaddr.ParseAddr("10.42.7.7")
	e, _ := t.Lookup(a)
	fmt.Println("LPM owner:", e.AS)

	// 11.0.0.1 is a hole; the deputy is the announced prefix nearest in
	// IP (XOR) distance.
	hole, _ := netaddr.ParseAddr("11.0.0.1")
	deputy, _, _ := t.Nearest(hole)
	fmt.Println("deputy owner:", deputy.AS)
	// Output:
	// LPM owner: 200
	// deputy owner: 100
}
