package prefixtable

import (
	"fmt"
	"math/rand"
	"sort"
)

// ChurnKind distinguishes BGP table changes (§III-D1: "changes in prefix
// announcements occur when an AS withdraws a previously announced prefix
// or announces a new prefix").
type ChurnKind int

// Churn kinds.
const (
	ChurnWithdraw ChurnKind = iota + 1
	ChurnAnnounce
)

// String names the kind.
func (k ChurnKind) String() string {
	switch k {
	case ChurnWithdraw:
		return "withdraw"
	case ChurnAnnounce:
		return "announce"
	default:
		return fmt.Sprintf("ChurnKind(%d)", int(k))
	}
}

// ChurnEvent is one timed BGP change. AtSec is seconds from the start of
// the churn window.
type ChurnEvent struct {
	AtSec  float64
	Kind   ChurnKind
	Prefix Entry
}

// ChurnConfig parameterizes GenerateChurn. Rates follow the long-term
// BGP churn study the paper cites [22]: small, with announcements
// dominating withdrawals.
type ChurnConfig struct {
	// WithdrawPerSec and AnnouncePerSec are Poisson event rates.
	WithdrawPerSec float64
	AnnouncePerSec float64
	// DurationSec is the churn window length.
	DurationSec float64
	// Seed fixes the sample.
	Seed int64
}

// GenerateChurn samples a timed churn schedule against the table's
// current announcements: withdrawals pick random live prefixes;
// announcements re-announce previously withdrawn prefixes (possibly by a
// different AS — an origin change). Events are returned in time order
// and do not mutate the table; the caller applies them.
func GenerateChurn(t *Table, cfg ChurnConfig) ([]ChurnEvent, error) {
	if cfg.DurationSec <= 0 {
		return nil, fmt.Errorf("prefixtable: churn duration must be positive")
	}
	if cfg.WithdrawPerSec < 0 || cfg.AnnouncePerSec < 0 {
		return nil, fmt.Errorf("prefixtable: negative churn rates")
	}
	live := t.Entries()
	if len(live) == 0 {
		return nil, fmt.Errorf("prefixtable: cannot churn an empty table")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })

	var events []ChurnEvent
	// Withdrawals: Poisson arrivals, each consuming a distinct prefix.
	next := 0
	for at := exp(rng, cfg.WithdrawPerSec); at < cfg.DurationSec && next < len(live)/2; at += exp(rng, cfg.WithdrawPerSec) {
		events = append(events, ChurnEvent{AtSec: at, Kind: ChurnWithdraw, Prefix: live[next]})
		next++
	}
	// Announcements: re-announce withdrawn prefixes after a lag, with a
	// 30% chance of an origin change.
	reannounced := 0
	for _, ev := range events {
		if ev.Kind != ChurnWithdraw {
			continue
		}
		if cfg.AnnouncePerSec == 0 {
			break
		}
		lag := exp(rng, cfg.AnnouncePerSec)
		at := ev.AtSec + lag
		if at >= cfg.DurationSec {
			continue
		}
		e := ev.Prefix
		if rng.Float64() < 0.3 {
			e.AS = int(rng.Int31n(int32(maxAS(live) + 1)))
		}
		events = append(events, ChurnEvent{AtSec: at, Kind: ChurnAnnounce, Prefix: e})
		reannounced++
	}
	sort.Slice(events, func(i, j int) bool { return events[i].AtSec < events[j].AtSec })
	return events, nil
}

func exp(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		return 1e18 // effectively never
	}
	return rng.ExpFloat64() / rate
}

func maxAS(entries []Entry) int {
	max := 0
	for _, e := range entries {
		if e.AS > max {
			max = e.AS
		}
	}
	return max
}
