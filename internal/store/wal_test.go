package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dmap/internal/guid"
)

func openTemp(t *testing.T, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func mustPut(t *testing.T, s *Store, e Entry) {
	t.Helper()
	applied, err := s.Put(e)
	if err != nil || !applied {
		t.Fatalf("Put(%s v%d) = (%v, %v)", e.GUID.Short(), e.Version, applied, err)
	}
}

func TestOpenEmptyDir(t *testing.T) {
	s := openTemp(t, Options{})
	if s.Len() != 0 {
		t.Fatalf("Len = %d", s.Len())
	}
	if rec := s.Recovery(); rec.SnapshotEntries != 0 || rec.ReplayedRecords != 0 || rec.TornBytes != 0 {
		t.Fatalf("Recovery = %+v", rec)
	}
}

func TestReopenRecoversWAL(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, SnapshotBytes: -1})
	var want []Entry
	for i := 0; i < 100; i++ {
		e := entry(fmt.Sprintf("g%d", i), uint64(i+1), i%5, (i+1)%7)
		mustPut(t, s, e)
		want = append(want, e)
	}
	// Overwrites and deletes must replay correctly too.
	up := want[10]
	up.Version = 1000
	up.Meta = 42
	mustPut(t, s, up)
	want[10] = up
	if !s.Delete(want[20].GUID) {
		t.Fatal("Delete missed")
	}
	want = append(want[:20], want[21:]...)
	wantBits := s.SizeBits()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := openTemp(t, Options{Dir: dir, SnapshotBytes: -1})
	if r.Len() != len(want) {
		t.Fatalf("recovered Len = %d, want %d", r.Len(), len(want))
	}
	if got := r.SizeBits(); got != wantBits {
		t.Fatalf("recovered SizeBits = %d, want %d", got, wantBits)
	}
	for _, e := range want {
		got, ok := r.Get(e.GUID)
		if !ok {
			t.Fatalf("entry %s lost", e.GUID.Short())
		}
		if got.Version != e.Version || got.Meta != e.Meta || len(got.NAs) != len(e.NAs) {
			t.Fatalf("entry %s = %+v, want %+v", e.GUID.Short(), got, e)
		}
	}
	rec := r.Recovery()
	if rec.ReplayedRecords != 102 { // 100 puts + 1 update + 1 delete
		t.Errorf("ReplayedRecords = %d, want 102", rec.ReplayedRecords)
	}
	if rec.TornBytes != 0 {
		t.Errorf("TornBytes = %d", rec.TornBytes)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, SnapshotBytes: -1})
	for i := 0; i < 50; i++ {
		mustPut(t, s, entry(fmt.Sprintf("g%d", i), 1, i))
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := range s.shards {
		if got := s.shards[i].log.walSize.Load(); got != walHeaderLen {
			t.Fatalf("shard %d WAL not truncated: size %d", i, got)
		}
	}
	// Post-snapshot writes land in the truncated log and must survive.
	mustPut(t, s, entry("after", 1, 9))
	s.Close()

	r := openTemp(t, Options{Dir: dir, SnapshotBytes: -1})
	if r.Len() != 51 {
		t.Fatalf("recovered Len = %d, want 51", r.Len())
	}
	rec := r.Recovery()
	if rec.SnapshotEntries != 50 || rec.ReplayedRecords != 1 {
		t.Fatalf("Recovery = %+v, want 50 snapshot entries + 1 replayed", rec)
	}
	if _, ok := r.Get(guid.New("after")); !ok {
		t.Fatal("post-snapshot entry lost")
	}
}

// A crash between snapshot rename and WAL truncation leaves the full
// log behind a snapshot that already contains it. Replaying those
// records must be a no-op (seq skip), including deletes that predate a
// later re-insert captured only by the snapshot.
func TestRecoverySkipsPreSnapshotRecords(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, SnapshotBytes: -1})
	g := entry("phoenix", 1, 3)
	mustPut(t, s, g)
	if !s.Delete(g.GUID) {
		t.Fatal("Delete missed")
	}
	g.Version = 2
	mustPut(t, s, g)

	// Snapshot, then undo the truncation by replaying the old log
	// bytes back into the file — simulating a crash mid-snapshot.
	sh := s.shardFor(g.GUID)
	idx := sh.log.index
	before, err := os.ReadFile(walPath(dir, idx))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := os.WriteFile(walPath(dir, idx), before, 0o644); err != nil {
		t.Fatal(err)
	}

	r := openTemp(t, Options{Dir: dir, SnapshotBytes: -1})
	got, ok := r.Get(g.GUID)
	if !ok {
		t.Fatal("entry deleted by stale pre-snapshot record")
	}
	if got.Version != 2 {
		t.Fatalf("Version = %d, want 2", got.Version)
	}
	if rec := r.Recovery(); rec.ReplayedRecords != 0 {
		t.Fatalf("ReplayedRecords = %d, want 0 (all records pre-snapshot)", rec.ReplayedRecords)
	}
}

// Torn-write property: truncating the WAL at every byte offset within
// the final record must recover the longest valid prefix — every entry
// but the last write, no error, no invented data.
func TestTornFinalRecordEveryOffset(t *testing.T) {
	base := t.TempDir()
	// Single shard so the record sequence lives in one file.
	build := func(dir string) {
		s, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			mustPut(t, s, entry(fmt.Sprintf("g%d", i), uint64(i+1), i, i+1))
		}
		s.Close()
	}
	ref := filepath.Join(base, "ref")
	build(ref)
	full, err := os.ReadFile(walPath(ref, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the final record by walking the frame lengths.
	off := walHeaderLen
	last := off
	for off < len(full) {
		last = off
		n := int(uint32(full[off+4])<<24 | uint32(full[off+5])<<16 | uint32(full[off+6])<<8 | uint32(full[off+7]))
		off += recHeaderLen + n
	}
	if off != len(full) {
		t.Fatalf("reference WAL does not parse cleanly: off %d, size %d", off, len(full))
	}

	for cut := last; cut < len(full); cut++ {
		dir := filepath.Join(base, fmt.Sprintf("cut%d", cut))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath(dir, 0), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		if s.Len() != 4 {
			t.Fatalf("cut %d: Len = %d, want 4 (last record torn)", cut, s.Len())
		}
		for i := 0; i < 4; i++ {
			e, ok := s.Get(guid.New(fmt.Sprintf("g%d", i)))
			if !ok || e.Version != uint64(i+1) {
				t.Fatalf("cut %d: entry g%d = (%+v, %v)", cut, i, e, ok)
			}
		}
		rec := s.Recovery()
		if want := int64(cut - last); rec.TornBytes != want {
			t.Fatalf("cut %d: TornBytes = %d, want %d", cut, rec.TornBytes, want)
		}
		// The torn tail must be gone from disk, and the log must accept
		// and persist new appends after the cut.
		if fi, err := os.Stat(walPath(dir, 0)); err != nil || fi.Size() != int64(last) {
			t.Fatalf("cut %d: file not truncated to %d: %v %v", cut, last, fi.Size(), err)
		}
		mustPut(t, s, entry("fresh", 9, 2))
		s.Close()
		r, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if r.Len() != 5 {
			t.Fatalf("cut %d: post-tear write lost: Len = %d", cut, r.Len())
		}
		r.Close()
	}
}

// A corrupt record in the middle of the log (not just the tail) must
// not be skipped over: recovery keeps the longest valid prefix and
// discards everything after the corruption.
func TestMidLogCorruptionKeepsPrefix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustPut(t, s, entry(fmt.Sprintf("g%d", i), 1, i))
	}
	s.Close()
	path := walPath(dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mid := walHeaderLen + (len(b)-walHeaderLen)/2
	b[mid] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() >= 10 {
		t.Fatalf("Len = %d, corruption not detected", r.Len())
	}
	if r.Recovery().TornBytes == 0 {
		t.Fatal("TornBytes = 0, corrupt tail not discarded")
	}
	// Whatever survived must be a prefix: g0..g(Len-1) present, rest gone.
	n := r.Len()
	for i := 0; i < 10; i++ {
		_, ok := r.Get(guid.New(fmt.Sprintf("g%d", i)))
		if ok != (i < n) {
			t.Fatalf("entry g%d present=%v with Len=%d: not a prefix", i, ok, n)
		}
	}
}

func TestCorruptSnapshotRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
	mustPut(t, s, entry("g", 1, 1))
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := snapPath(dir, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xFF
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1}); err == nil {
		t.Fatal("Open accepted a corrupt snapshot")
	}
}

func TestShardCountMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, Shards: 8})
	mustPut(t, s, entry("g", 1, 1))
	s.Close()
	if _, err := Open(Options{Dir: dir, Shards: 4}); err == nil {
		t.Fatal("Open accepted a shard-count change")
	}
	if _, err := Open(Options{Dir: dir, Shards: 16}); err == nil {
		t.Fatal("Open accepted a shard-count change")
	}
}

func TestAutomaticSnapshotByThreshold(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir, Shards: 1, SnapshotBytes: 1024})
	for i := 0; i < 200; i++ {
		mustPut(t, s, entry(fmt.Sprintf("g%d", i), 1, i%3))
	}
	// The compactor runs asynchronously; wait for it to truncate.
	truncated := false
	for i := 0; i < 5000 && !truncated; i++ {
		truncated = s.shards[0].log.walSize.Load() < 1024+walHeaderLen
		time.Sleep(time.Millisecond)
	}
	if !truncated {
		t.Fatal("compactor never truncated the log")
	}
	s.Close()
	snap, err := os.ReadFile(snapPath(dir, 0))
	if err != nil {
		t.Fatalf("no snapshot written by compactor: %v", err)
	}
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	r := openTemp(t, Options{Dir: dir, Shards: 1, SnapshotBytes: 1024})
	if r.Len() < 200 {
		t.Fatalf("recovered Len = %d, want >= 200", r.Len())
	}
	if r.Recovery().SnapshotEntries == 0 {
		t.Fatal("recovery used no snapshot entries")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir})
	mustPut(t, s, entry("g", 1, 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(entry("h", 1, 1)); err == nil {
		t.Fatal("Put succeeded on closed store")
	}
	if s.Delete(guid.New("g")) {
		t.Fatal("Delete succeeded on closed store")
	}
	// Reads still work.
	if _, ok := s.Get(guid.New("g")); !ok {
		t.Fatal("Get failed on closed store")
	}
	if err := s.Close(); err != nil {
		t.Fatal("second Close should be a no-op")
	}
}

func TestDurableExtractDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	s := openTemp(t, Options{Dir: dir})
	moved := entry("moved", 1, 1)
	kept := entry("kept", 1, 2)
	mustPut(t, s, moved)
	mustPut(t, s, kept)
	out := s.Extract(func(g guid.GUID) bool { return g == moved.GUID })
	if len(out) != 1 || out[0].GUID != moved.GUID {
		t.Fatalf("Extract = %+v", out)
	}
	s.Close()
	r := openTemp(t, Options{Dir: dir})
	if _, ok := r.Get(moved.GUID); ok {
		t.Fatal("extracted entry resurrected after restart")
	}
	if _, ok := r.Get(kept.GUID); !ok {
		t.Fatal("kept entry lost")
	}
}

func TestFsyncModes(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncOS, FsyncAlways, FsyncInterval} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			s := openTemp(t, Options{Dir: dir, Fsync: mode, SyncInterval: time.Millisecond})
			for i := 0; i < 20; i++ {
				mustPut(t, s, entry(fmt.Sprintf("g%d", i), 1, i))
			}
			if err := s.Sync(); err != nil {
				t.Fatal(err)
			}
			s.Close()
			r := openTemp(t, Options{Dir: dir, Fsync: mode})
			if r.Len() != 20 {
				t.Fatalf("Len = %d", r.Len())
			}
		})
	}
}

func TestParseFsyncMode(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncOS, FsyncAlways, FsyncInterval} {
		got, err := ParseFsyncMode(mode.String())
		if err != nil || got != mode {
			t.Errorf("ParseFsyncMode(%q) = (%v, %v)", mode.String(), got, err)
		}
	}
	if _, err := ParseFsyncMode("bogus"); err == nil {
		t.Error("ParseFsyncMode accepted bogus mode")
	}
}

// The dump must be byte-identical at any shard count: cross-shard
// iteration determinism.
func TestDumpDeterministicAcrossShardCounts(t *testing.T) {
	var ref []byte
	for _, shards := range []int{1, 2, 8, 64} {
		s, err := NewSharded(shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			mustPut(t, s, entry(fmt.Sprintf("g%d", i), uint64(i+1), i%5, (i*3)%11))
		}
		dump := s.AppendDump(nil)
		if ref == nil {
			ref = dump
			continue
		}
		if !bytes.Equal(ref, dump) {
			t.Fatalf("dump at %d shards differs from 1-shard dump", shards)
		}
	}
}

// Snapshot files themselves are deterministic for a given shard layout:
// entries are sorted before encoding.
func TestSnapshotDeterministic(t *testing.T) {
	var ref []byte
	for round := 0; round < 2; round++ {
		dir := t.TempDir()
		s := openTemp(t, Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
		// Insert in a different order each round.
		for i := 0; i < 100; i++ {
			j := i
			if round == 1 {
				j = 99 - i
			}
			mustPut(t, s, entry(fmt.Sprintf("g%d", j), uint64(j+1), j%4))
		}
		if err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
		s.Close()
		img, err := os.ReadFile(snapPath(dir, 0))
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = img
		} else if !bytes.Equal(ref, img) {
			t.Fatal("snapshot image depends on insertion order")
		}
	}
}

// Per-shard storage accounting must sum to the same NLR numbers the old
// single-map store reported (Σ Entry.SizeBits over a full scan).
func TestShardSizeBitsSumsToScan(t *testing.T) {
	for _, shards := range []int{1, 4, 32} {
		s, err := NewSharded(shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			mustPut(t, s, entry(fmt.Sprintf("g%d", i), 1, makeASes(i%MaxNAs+1)...))
		}
		// Updates that change NA counts, plus deletes, must keep the
		// incremental counters exact.
		for i := 0; i < 100; i++ {
			e := entry(fmt.Sprintf("g%d", i), 2, makeASes((i+2)%MaxNAs+1)...)
			mustPut(t, s, e)
		}
		for i := 0; i < 50; i++ {
			s.Delete(guid.New(fmt.Sprintf("g%d", i*7)))
		}
		var scan int64
		s.Range(func(e Entry) bool { scan += int64(e.SizeBits()); return true })
		var perShard int64
		for i := 0; i < s.ShardCount(); i++ {
			perShard += s.ShardSizeBits(i)
		}
		if s.SizeBits() != scan || perShard != scan {
			t.Fatalf("shards=%d: SizeBits=%d perShard=%d scan=%d", shards, s.SizeBits(), perShard, scan)
		}
	}
}

func makeASes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

func TestShardLenSumsToLen(t *testing.T) {
	s := New()
	for i := 0; i < 200; i++ {
		mustPut(t, s, entry(fmt.Sprintf("g%d", i), 1, 1))
	}
	total := 0
	for i := 0; i < s.ShardCount(); i++ {
		total += s.ShardLen(i)
	}
	if total != s.Len() || total != 200 {
		t.Fatalf("ShardLen sum = %d, Len = %d", total, s.Len())
	}
}

func TestNewShardedValidation(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, MaxShards * 2} {
		if _, err := NewSharded(n); err == nil {
			t.Errorf("NewSharded(%d) accepted", n)
		}
	}
	for _, n := range []int{1, 2, 64, MaxShards} {
		if _, err := NewSharded(n); err != nil {
			t.Errorf("NewSharded(%d) = %v", n, err)
		}
	}
}

func TestViewInto(t *testing.T) {
	s := New()
	e := entry("g", 7, 1, 2, 3)
	e.Meta = 99
	mustPut(t, s, e)
	var out Entry
	out.NAs = make([]NA, 0, MaxNAs)
	if !s.ViewInto(e.GUID, &out) {
		t.Fatal("ViewInto missed")
	}
	if out.GUID != e.GUID || out.Version != 7 || out.Meta != 99 || len(out.NAs) != 3 {
		t.Fatalf("ViewInto = %+v", out)
	}
	if s.ViewInto(guid.New("other"), &out) {
		t.Fatal("ViewInto hit a missing GUID")
	}
	// Mutating the copy must not alias store state.
	out.NAs[0].AS = 999
	got, _ := s.Get(e.GUID)
	if got.NAs[0].AS == 999 {
		t.Fatal("ViewInto aliased store memory")
	}
	// With capacity pre-grown, ViewInto allocates nothing.
	allocs := testing.AllocsPerRun(100, func() {
		if !s.ViewInto(e.GUID, &out) {
			t.Fatal("miss")
		}
	})
	if allocs != 0 {
		t.Fatalf("ViewInto allocs/op = %v, want 0", allocs)
	}
}
