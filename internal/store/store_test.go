package store

import (
	"sync"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
)

func entry(name string, version uint64, ases ...int) Entry {
	nas := make([]NA, len(ases))
	for i, as := range ases {
		nas[i] = NA{AS: as, Addr: netaddr.AddrFromOctets(10, 0, 0, byte(i))}
	}
	return Entry{GUID: guid.New(name), NAs: nas, Version: version}
}

func TestPutGet(t *testing.T) {
	s := New()
	e := entry("laptop", 1, 7)
	applied, err := s.Put(e)
	if err != nil || !applied {
		t.Fatalf("Put = (%v, %v)", applied, err)
	}
	got, ok := s.Get(e.GUID)
	if !ok {
		t.Fatal("Get missed")
	}
	if got.NAs[0].AS != 7 || got.Version != 1 {
		t.Errorf("Get = %+v", got)
	}
	if _, ok := s.Get(guid.New("other")); ok {
		t.Error("Get(other) should miss")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPutValidation(t *testing.T) {
	s := New()
	cases := []Entry{
		{},                              // zero GUID
		{GUID: guid.New("g")},           // no NAs
		entry("g", 1, 1, 2, 3, 4, 5, 6), // too many NAs
		{GUID: guid.New("g"), NAs: []NA{{AS: -1}}}, // negative AS
	}
	for i, e := range cases {
		if _, err := s.Put(e); err == nil {
			t.Errorf("case %d: Put(%+v) should fail", i, e)
		}
	}
	if s.Len() != 0 {
		t.Errorf("failed puts must not store: Len = %d", s.Len())
	}
}

func TestPutVersioning(t *testing.T) {
	s := New()
	g := guid.New("phone")
	if _, err := s.Put(entry("phone", 5, 1)); err != nil {
		t.Fatal(err)
	}
	// Stale update (lower version) rejected.
	applied, err := s.Put(entry("phone", 4, 2))
	if err != nil || applied {
		t.Fatalf("stale Put = (%v, %v), want (false, nil)", applied, err)
	}
	// Equal version also rejected (idempotent redelivery).
	if applied, _ := s.Put(entry("phone", 5, 2)); applied {
		t.Fatal("equal-version Put should not apply")
	}
	got, _ := s.Get(g)
	if got.NAs[0].AS != 1 {
		t.Errorf("stale update overwrote entry: %+v", got)
	}
	// Newer version applies.
	if applied, _ := s.Put(entry("phone", 6, 3)); !applied {
		t.Fatal("newer Put should apply")
	}
	got, _ = s.Get(g)
	if got.NAs[0].AS != 3 || got.Version != 6 {
		t.Errorf("after update: %+v", got)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	e := entry("x", 1, 1)
	if _, err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if !s.Delete(e.GUID) {
		t.Error("Delete should report true")
	}
	if s.Delete(e.GUID) {
		t.Error("second Delete should report false")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	e := entry("y", 1, 1, 2)
	if _, err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(e.GUID)
	got.NAs[0].AS = 999
	again, _ := s.Get(e.GUID)
	if again.NAs[0].AS == 999 {
		t.Error("Get must return a copy, not shared state")
	}
	// The caller's slice must not alias the store either.
	e.NAs[1].AS = 888
	again, _ = s.Get(e.GUID)
	if again.NAs[1].AS == 888 {
		t.Error("Put must copy the caller's NAs")
	}
}

func TestView(t *testing.T) {
	s := New()
	e := entry("view", 3, 1, 2)
	if _, err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	var seen Entry
	if !s.View(e.GUID, func(v Entry) { seen = v.clone() }) {
		t.Fatal("View missed an existing entry")
	}
	if seen.GUID != e.GUID || seen.Version != 3 || len(seen.NAs) != 2 {
		t.Fatalf("View observed %+v", seen)
	}
	// A miss must not invoke fn.
	if s.View(guid.New("absent"), func(Entry) { t.Error("fn called on a miss") }) {
		t.Fatal("View claimed a hit for an absent GUID")
	}
	// View hands out the stored entry without cloning, so — unlike Get —
	// the callback's view aliases the store; that is the point. What is
	// gated here is that the counters still track it like a read.
	reg := metrics.NewRegistry()
	s.Instrument(reg, "store")
	if !s.View(e.GUID, func(Entry) {}) {
		t.Fatal("View missed after instrumentation")
	}
	s.View(guid.New("absent"), func(Entry) {})
	snap := reg.Snapshot()
	if got := snap.Counters["store.gets"]; got != 2 {
		t.Errorf("store.gets = %d after two Views, want 2", got)
	}
	if got := snap.Counters["store.hits"]; got != 1 {
		t.Errorf("store.hits = %d, want 1", got)
	}
}

func TestSizeBits(t *testing.T) {
	// §IV-A: 160 + 32×5 + 32 = 352 bits with 5 NAs.
	e := entry("z", 1, 1, 2, 3, 4, 5)
	if got := e.SizeBits(); got != 352 {
		t.Errorf("SizeBits = %d, want 352", got)
	}
	s := New()
	if _, err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(entry("w", 1, 1)); err != nil { // 160+32+32 = 224
		t.Fatal(err)
	}
	if got := s.SizeBits(); got != 352+224 {
		t.Errorf("store SizeBits = %d, want %d", got, 352+224)
	}
}

func TestRange(t *testing.T) {
	s := New()
	names := []string{"a", "b", "c"}
	for _, n := range names {
		if _, err := s.Put(entry(n, 1, 1)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	s.Range(func(Entry) bool { count++; return true })
	if count != 3 {
		t.Errorf("Range visited %d, want 3", count)
	}
	count = 0
	s.Range(func(Entry) bool { count++; return false })
	if count != 1 {
		t.Errorf("early-stop Range visited %d, want 1", count)
	}
}

func TestExtract(t *testing.T) {
	s := New()
	keep := entry("keep", 1, 1)
	move1 := entry("move1", 1, 2)
	move2 := entry("move2", 1, 3)
	for _, e := range []Entry{keep, move1, move2} {
		if _, err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	moved := s.Extract(func(g guid.GUID) bool { return g != keep.GUID })
	if len(moved) != 2 {
		t.Fatalf("Extract returned %d entries, want 2", len(moved))
	}
	if s.Len() != 1 {
		t.Errorf("Len after Extract = %d, want 1", s.Len())
	}
	if _, ok := s.Get(keep.GUID); !ok {
		t.Error("kept entry missing")
	}
	if _, ok := s.Get(move1.GUID); ok {
		t.Error("extracted entry still present")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := string(rune('a' + (i % 26)))
				if _, err := s.Put(entry(name, uint64(w*1000+i), w)); err != nil {
					t.Error(err)
					return
				}
				s.Get(guid.New(name))
				s.Len()
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 26 {
		t.Errorf("Len = %d, want 26", s.Len())
	}
}

func TestInstrumentedCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New()
	s.Instrument(reg, "store")

	if _, err := s.Put(entry("a", 2, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(entry("a", 1, 1)); err != nil { // stale
		t.Fatal(err)
	}
	s.Get(entry("a", 1, 1).GUID) // hit
	s.Get(entry("b", 1, 1).GUID) // miss
	s.Delete(entry("a", 1, 1).GUID)

	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"store.puts":       2,
		"store.stale_puts": 1,
		"store.gets":       2,
		"store.hits":       1,
		"store.deletes":    1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["store.size"]; got != 0 {
		t.Errorf("store.size = %g after delete, want 0", got)
	}
	if _, err := s.Put(entry("c", 1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges["store.size"]; got != 1 {
		t.Errorf("store.size = %g, want 1", got)
	}
}
