// Package store implements the per-AS mapping store: the table of
// GUID→NA entries an autonomous system hosts on behalf of the global
// DMap service.
//
// Entries are versioned with a monotonically increasing sequence number so
// that delayed or reordered updates from a mobile host never roll a
// mapping back (§III-D2), and carry up to MaxNAs locators to support
// multi-homed devices (§IV-A). The store also does the §IV-A storage
// accounting used by the overhead experiment.
package store

import (
	"fmt"
	"sync"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
)

// MaxNAs is the maximum number of locators per mapping (paper §IV-A:
// "each associated with a maximum of 5 NAs, accounting for multi-homed
// devices").
const MaxNAs = 5

// NA is a network address (locator): the attachment point of a GUID. AS
// is the dense AS index hosting the attachment; Addr is the routable
// address within it.
type NA struct {
	AS   int
	Addr netaddr.Addr
}

// Entry is one GUID→NA mapping.
type Entry struct {
	GUID guid.GUID
	// NAs lists current attachment points, most preferred first.
	NAs []NA
	// Version is the host-issued sequence number; higher wins.
	Version uint64
	// Meta carries the paper's 32 bits of per-mapping metadata (type of
	// service, priority, ...).
	Meta uint32
}

// SizeBits returns the §IV-A wire/storage size of the entry:
// 160-bit GUID + 32 bits per NA + 32 bits of metadata.
func (e Entry) SizeBits() int {
	return guid.Size*8 + 32*len(e.NAs) + 32
}

// Validate checks structural constraints.
func (e Entry) Validate() error {
	if e.GUID.IsZero() {
		return fmt.Errorf("store: zero GUID")
	}
	if len(e.NAs) == 0 {
		return fmt.Errorf("store: entry for %s has no NAs", e.GUID.Short())
	}
	if len(e.NAs) > MaxNAs {
		return fmt.Errorf("store: entry for %s has %d NAs, max %d", e.GUID.Short(), len(e.NAs), MaxNAs)
	}
	for _, na := range e.NAs {
		if na.AS < 0 {
			return fmt.Errorf("store: entry for %s has negative AS index", e.GUID.Short())
		}
	}
	return nil
}

// clone deep-copies e so callers cannot alias internal state.
func (e Entry) clone() Entry {
	nas := make([]NA, len(e.NAs))
	copy(nas, e.NAs)
	e.NAs = nas
	return e
}

// Store is a thread-safe per-AS mapping table. The zero value is not
// usable; call New.
type Store struct {
	mu  sync.RWMutex
	m   map[guid.GUID]Entry
	ins *instruments // nil until Instrument; read under mu
}

// instruments are the store's optional metrics handles. An
// uninstrumented store pays one nil check per operation; an
// instrumented one a single uncontended atomic add.
type instruments struct {
	puts, stalePuts, gets, hits, deletes *metrics.Counter
}

// New returns an empty store.
func New() *Store {
	return &Store{m: make(map[guid.GUID]Entry)}
}

// Instrument registers the store's operation counters and size gauge
// on reg under prefix (e.g. "store" → "store.puts", "store.size").
// Call once, before serving traffic; re-instrumenting replaces the
// counters but leaves gauges registered on the previous registry.
func (s *Store) Instrument(reg *metrics.Registry, prefix string) {
	ins := &instruments{
		puts:      reg.Counter(prefix + ".puts"),
		stalePuts: reg.Counter(prefix + ".stale_puts"),
		gets:      reg.Counter(prefix + ".gets"),
		hits:      reg.Counter(prefix + ".hits"),
		deletes:   reg.Counter(prefix + ".deletes"),
	}
	reg.GaugeFunc(prefix+".size", func() float64 { return float64(s.Len()) })
	s.mu.Lock()
	s.ins = ins
	s.mu.Unlock()
}

// Put inserts or updates the mapping for e.GUID. An update with a version
// not greater than the stored one is ignored (stale), preserving
// freshest-wins semantics under reordered delivery. It reports whether
// the entry was applied.
func (s *Store) Put(e Entry) (bool, error) {
	if err := e.Validate(); err != nil {
		return false, err
	}
	e = e.clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ins != nil {
		s.ins.puts.Inc()
	}
	if old, ok := s.m[e.GUID]; ok && e.Version <= old.Version {
		if s.ins != nil {
			s.ins.stalePuts.Inc()
		}
		return false, nil
	}
	s.m[e.GUID] = e
	return true, nil
}

// Get returns a copy of the mapping for g.
func (s *Store) Get(g guid.GUID) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[g]
	if s.ins != nil {
		s.ins.gets.Inc()
		if ok {
			s.ins.hits.Inc()
		}
	}
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// View calls fn with the stored entry for g, without cloning, and
// reports whether the entry existed (fn is not called on a miss). The
// entry — including its NAs slice — is valid only for the duration of
// fn and must not be mutated or retained; copy out whatever must
// outlive the call. This is the zero-allocation read path: servers
// encode the entry to the wire inside fn, so the clone Get pays per
// call never happens.
func (s *Store) View(g guid.GUID, fn func(Entry)) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.m[g]
	if s.ins != nil {
		s.ins.gets.Inc()
		if ok {
			s.ins.hits.Inc()
		}
	}
	if !ok {
		return false
	}
	fn(e)
	return true
}

// Delete removes the mapping for g, reporting whether it existed.
func (s *Store) Delete(g guid.GUID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ins != nil {
		s.ins.deletes.Inc()
	}
	if _, ok := s.m[g]; !ok {
		return false
	}
	delete(s.m, g)
	return true
}

// Len returns the number of hosted mappings.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// SizeBits returns the total §IV-A storage footprint of the store.
func (s *Store) SizeBits() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, e := range s.m {
		total += int64(e.SizeBits())
	}
	return total
}

// Range calls fn on a copy of every entry until fn returns false.
// Mutating the store from fn deadlocks; collect first instead.
func (s *Store) Range(fn func(Entry) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, e := range s.m {
		if !fn(e.clone()) {
			return
		}
	}
}

// Extract removes and returns all entries whose GUID satisfies pred. It
// implements the orphan-mapping migration of §III-D1: when an AS
// withdraws a prefix, the entries hashed to it are extracted and shipped
// to the deputy AS.
func (s *Store) Extract(pred func(guid.GUID) bool) []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for g, e := range s.m {
		if pred(g) {
			out = append(out, e) // already isolated: removed below
			delete(s.m, g)
		}
	}
	return out
}
