// Package store implements the per-AS mapping store: the table of
// GUID→NA entries an autonomous system hosts on behalf of the global
// DMap service.
//
// Entries are versioned with a monotonically increasing sequence number so
// that delayed or reordered updates from a mobile host never roll a
// mapping back (§III-D2), and carry up to MaxNAs locators to support
// multi-homed devices (§IV-A). The store also does the §IV-A storage
// accounting used by the overhead experiment.
//
// The table is sharded by GUID prefix: a power-of-two number of shards,
// each with its own RWMutex, map and incremental storage accounting, so
// concurrent writers on a many-core node do not serialize on one lock
// and the NLR metric is the cheap sum of per-shard counters. A store
// built with New is memory-only; Open builds a durable store whose
// shards each keep a write-ahead log and periodic snapshot (wal.go).
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dmap/internal/guid"
	"dmap/internal/metrics"
	"dmap/internal/netaddr"
)

// MaxNAs is the maximum number of locators per mapping (paper §IV-A:
// "each associated with a maximum of 5 NAs, accounting for multi-homed
// devices").
const MaxNAs = 5

// NA is a network address (locator): the attachment point of a GUID. AS
// is the dense AS index hosting the attachment; Addr is the routable
// address within it.
type NA struct {
	AS   int
	Addr netaddr.Addr
}

// Entry is one GUID→NA mapping.
type Entry struct {
	GUID guid.GUID
	// NAs lists current attachment points, most preferred first.
	NAs []NA
	// Version is the host-issued sequence number; higher wins.
	Version uint64
	// Meta carries the paper's 32 bits of per-mapping metadata (type of
	// service, priority, ...).
	Meta uint32
}

// SizeBits returns the §IV-A wire/storage size of the entry:
// 160-bit GUID + 32 bits per NA + 32 bits of metadata.
func (e Entry) SizeBits() int {
	return guid.Size*8 + 32*len(e.NAs) + 32
}

// Validate checks structural constraints.
func (e Entry) Validate() error {
	if e.GUID.IsZero() {
		return fmt.Errorf("store: zero GUID")
	}
	if len(e.NAs) == 0 {
		return fmt.Errorf("store: entry for %s has no NAs", e.GUID.Short())
	}
	if len(e.NAs) > MaxNAs {
		return fmt.Errorf("store: entry for %s has %d NAs, max %d", e.GUID.Short(), len(e.NAs), MaxNAs)
	}
	for _, na := range e.NAs {
		if na.AS < 0 {
			return fmt.Errorf("store: entry for %s has negative AS index", e.GUID.Short())
		}
	}
	return nil
}

// clone deep-copies e so callers cannot alias internal state.
func (e Entry) clone() Entry {
	nas := make([]NA, len(e.NAs))
	copy(nas, e.NAs)
	e.NAs = nas
	return e
}

// DefaultShards is the shard count New uses: enough stripes that a
// GOMAXPROCS-wide write burst rarely collides, small enough that an
// idle per-AS store in a 26k-AS simulation stays cheap.
const DefaultShards = 8

// MaxShards bounds the shard count (the shard index is derived from the
// first 16 bits of the GUID).
const MaxShards = 1 << 16

// shard is one lock-striped slice of the table. The map is allocated on
// first write, so an empty shard costs only its header. sizeBits is
// maintained incrementally under mu — SizeBits never rescans the map.
// The pad keeps two hot shards off one cache line.
type shard struct {
	mu       sync.RWMutex
	m        map[guid.GUID]Entry
	sizeBits int64
	log      *shardLog // nil on a memory-only store
	_        [24]byte
}

// Store is a thread-safe per-AS mapping table. The zero value is not
// usable; call New (memory-only) or Open (durable, wal.go).
type Store struct {
	shards []shard
	// shift maps the first 16 GUID bits to a shard index:
	// idx = uint16(prefix) >> shift. len(shards) == 1 << (16 - shift).
	shift uint
	ins   atomic.Pointer[instruments] // nil until Instrument
	wal   *wal                        // nil on a memory-only store
	rec   RecoveryStats               // filled by Open, immutable after
}

// instruments are the store's optional metrics handles. An
// uninstrumented store pays one atomic load per operation; an
// instrumented one adds a single uncontended atomic add.
type instruments struct {
	puts, stalePuts, gets, hits, deletes *metrics.Counter
}

// New returns an empty memory-only store with DefaultShards shards.
func New() *Store {
	s, err := NewSharded(DefaultShards)
	if err != nil {
		panic(err) // DefaultShards is a valid power of two
	}
	return s
}

// NewSharded returns an empty memory-only store with the given shard
// count, which must be a power of two in [1, MaxShards].
func NewSharded(shards int) (*Store, error) {
	if shards < 1 || shards > MaxShards || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("store: shard count %d is not a power of two in [1, %d]", shards, MaxShards)
	}
	bits := uint(0)
	for 1<<bits < shards {
		bits++
	}
	return &Store{shards: make([]shard, shards), shift: 16 - bits}, nil
}

// ShardCount returns the number of shards.
func (s *Store) ShardCount() int { return len(s.shards) }

// shardFor returns the shard hosting g: the top bits of the GUID, so
// contiguous GUID-prefix ranges land on one shard.
func (s *Store) shardFor(g guid.GUID) *shard {
	idx := (uint32(g[0])<<8 | uint32(g[1])) >> s.shift
	return &s.shards[idx]
}

// Instrument registers the store's operation counters and size gauge
// on reg under prefix (e.g. "store" → "store.puts", "store.size").
// Call once, before serving traffic; re-instrumenting replaces the
// counters but leaves gauges registered on the previous registry.
func (s *Store) Instrument(reg *metrics.Registry, prefix string) {
	ins := &instruments{
		puts:      reg.Counter(prefix + ".puts"),
		stalePuts: reg.Counter(prefix + ".stale_puts"),
		gets:      reg.Counter(prefix + ".gets"),
		hits:      reg.Counter(prefix + ".hits"),
		deletes:   reg.Counter(prefix + ".deletes"),
	}
	reg.GaugeFunc(prefix+".size", func() float64 { return float64(s.Len()) })
	s.ins.Store(ins)
}

// Put inserts or updates the mapping for e.GUID. An update with a version
// not greater than the stored one is ignored (stale), preserving
// freshest-wins semantics under reordered delivery. It reports whether
// the entry was applied. On a durable store the WAL record is written
// before the in-memory apply: a Put that returned (true, nil) survives a
// crash of the process.
func (s *Store) Put(e Entry) (bool, error) {
	if err := e.Validate(); err != nil {
		return false, err
	}
	e = e.clone()
	ins := s.ins.Load()
	sh := s.shardFor(e.GUID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ins != nil {
		ins.puts.Inc()
	}
	old, existed := sh.m[e.GUID]
	if existed && e.Version <= old.Version {
		if ins != nil {
			ins.stalePuts.Inc()
		}
		return false, nil
	}
	if sh.log != nil {
		if err := sh.log.appendPut(e); err != nil {
			return false, err
		}
	}
	if sh.m == nil {
		sh.m = make(map[guid.GUID]Entry)
	}
	sh.m[e.GUID] = e
	sh.sizeBits += int64(e.SizeBits())
	if existed {
		sh.sizeBits -= int64(old.SizeBits())
	}
	s.maybeSnapshot(sh)
	return true, nil
}

// Get returns a copy of the mapping for g.
func (s *Store) Get(g guid.GUID) (Entry, bool) {
	ins := s.ins.Load()
	sh := s.shardFor(g)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.m[g]
	if ins != nil {
		ins.gets.Inc()
		if ok {
			ins.hits.Inc()
		}
	}
	if !ok {
		return Entry{}, false
	}
	return e.clone(), true
}

// ViewInto copies the mapping for g into e, reusing e's NAs capacity,
// and reports whether it existed (e is untouched on a miss). Unlike Get
// it allocates nothing once e's NAs buffer has grown to the entry's NA
// count (cap MaxNAs always suffices) — the caller-supplied-buffer read
// the client's LookupInto path is built on.
func (s *Store) ViewInto(g guid.GUID, e *Entry) bool {
	ins := s.ins.Load()
	sh := s.shardFor(g)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v, ok := sh.m[g]
	if ins != nil {
		ins.gets.Inc()
		if ok {
			ins.hits.Inc()
		}
	}
	if !ok {
		return false
	}
	e.GUID = v.GUID
	e.Version = v.Version
	e.Meta = v.Meta
	e.NAs = append(e.NAs[:0], v.NAs...)
	return true
}

// View calls fn with the stored entry for g, without cloning, and
// reports whether the entry existed (fn is not called on a miss). The
// entry — including its NAs slice — is valid only for the duration of
// fn and must not be mutated or retained; copy out whatever must
// outlive the call. This is the zero-allocation read path: servers
// encode the entry to the wire inside fn, under the entry's shard read
// lock, so the clone Get pays per call never happens.
func (s *Store) View(g guid.GUID, fn func(Entry)) bool {
	ins := s.ins.Load()
	sh := s.shardFor(g)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.m[g]
	if ins != nil {
		ins.gets.Inc()
		if ok {
			ins.hits.Inc()
		}
	}
	if !ok {
		return false
	}
	fn(e)
	return true
}

// Delete removes the mapping for g, reporting whether it existed. On a
// durable store the deletion is logged before it is applied.
func (s *Store) Delete(g guid.GUID) bool {
	ins := s.ins.Load()
	sh := s.shardFor(g)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ins != nil {
		ins.deletes.Inc()
	}
	old, ok := sh.m[g]
	if !ok {
		return false
	}
	if sh.log != nil {
		if err := sh.log.appendDelete(g); err != nil {
			// The removal could not be made durable; keep serving the
			// entry rather than resurrect it on the next restart.
			return false
		}
	}
	delete(sh.m, g)
	sh.sizeBits -= int64(old.SizeBits())
	s.maybeSnapshot(sh)
	return true
}

// Len returns the number of hosted mappings.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// ShardLen returns the number of mappings hosted by shard i.
func (s *Store) ShardLen(i int) int {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.m)
}

// SizeBits returns the total §IV-A storage footprint of the store: the
// sum of the per-shard incremental counters, so the NLR accounting is
// O(shards) regardless of how many mappings are hosted.
func (s *Store) SizeBits() int64 {
	var total int64
	for i := range s.shards {
		total += s.ShardSizeBits(i)
	}
	return total
}

// ShardSizeBits returns the §IV-A storage footprint of shard i.
func (s *Store) ShardSizeBits(i int) int64 {
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.sizeBits
}

// Range calls fn on a copy of every entry until fn returns false,
// walking shards in index order (iteration within a shard is Go map
// order). Mutating the store from fn deadlocks; collect first instead.
func (s *Store) Range(fn func(Entry) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		if !rangeShard(sh, fn) {
			return
		}
	}
}

func rangeShard(sh *shard, fn func(Entry) bool) bool {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, e := range sh.m {
		if !fn(e.clone()) {
			return false
		}
	}
	return true
}

// AppendDump appends a deterministic encoding of the whole table to dst
// and returns it: a uint64 count followed by every entry in ascending
// GUID order, in the on-disk entry codec. Two stores holding the same
// mappings produce byte-identical dumps at any shard count — the
// cross-shard iteration-determinism invariant the migration and
// anti-entropy machinery depend on.
func (s *Store) AppendDump(dst []byte) []byte {
	var all []Entry
	s.Range(func(e Entry) bool {
		all = append(all, e)
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		return string(all[i].GUID[:]) < string(all[j].GUID[:])
	})
	var cnt [8]byte
	for i := range cnt {
		cnt[7-i] = byte(uint64(len(all)) >> (8 * i))
	}
	dst = append(dst, cnt[:]...)
	for _, e := range all {
		dst = appendEntry(dst, e)
	}
	return dst
}

// Extract removes and returns all entries whose GUID satisfies pred. It
// implements the orphan-mapping migration of §III-D1: when an AS
// withdraws a prefix, the entries hashed to it are extracted and shipped
// to the deputy AS. On a durable store each removal is logged, so a
// restart after a migration does not resurrect the shipped entries.
func (s *Store) Extract(pred func(guid.GUID) bool) []Entry {
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for g, e := range sh.m {
			if !pred(g) {
				continue
			}
			if sh.log != nil {
				if err := sh.log.appendDelete(g); err != nil {
					continue // keep it: an unlogged removal would resurrect
				}
			}
			out = append(out, e) // already isolated: removed below
			delete(sh.m, g)
			sh.sizeBits -= int64(e.SizeBits())
		}
		sh.mu.Unlock()
	}
	return out
}
