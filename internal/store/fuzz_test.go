package store

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// walTail returns the record bytes (header stripped) of a freshly
// written single-shard WAL containing a few real puts and a delete.
func walTail(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
	if err != nil {
		f.Fatal(err)
	}
	e := entry("seed", 1, 3, 4)
	if _, err := s.Put(e); err != nil {
		f.Fatal(err)
	}
	e.Version = 2
	if _, err := s.Put(e); err != nil {
		f.Fatal(err)
	}
	s.Delete(e.GUID)
	s.Close()
	b, err := os.ReadFile(walPath(dir, 0))
	if err != nil {
		f.Fatal(err)
	}
	return b[walHeaderLen:]
}

// FuzzDecodeWALRecord hardens recovery against arbitrary log contents:
// replay must never panic, must report a valid prefix length within the
// input, and every entry it admits must pass Validate. Real record
// streams replay losslessly.
func FuzzDecodeWALRecord(f *testing.F) {
	tail := walTail(f)
	f.Add(tail)
	f.Add(tail[:len(tail)-3]) // torn final record
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := NewSharded(1)
		if err != nil {
			t.Fatal(err)
		}
		lg := &shardLog{path: "fuzz"}
		b := writeFileHeader(nil, walMagic, 0, 1)
		b = append(b, data...)
		valid, err := s.replayWAL(&s.shards[0], lg, b, 0, 1)
		if err != nil {
			t.Fatalf("replay of a well-headed log errored: %v", err)
		}
		if valid < walHeaderLen || valid > int64(len(b)) {
			t.Fatalf("valid prefix %d out of range [%d, %d]", valid, walHeaderLen, len(b))
		}
		bad := false
		s.Range(func(e Entry) bool {
			if e.Validate() != nil {
				bad = true
			}
			return !bad
		})
		if bad {
			t.Fatal("replay admitted an invalid entry")
		}
		var scan int64
		s.Range(func(e Entry) bool { scan += int64(e.SizeBits()); return true })
		if scan != s.SizeBits() {
			t.Fatalf("replay broke size accounting: %d != %d", s.SizeBits(), scan)
		}
	})
}

// FuzzLoadSnapshot hardens the snapshot decoder: it must never panic on
// arbitrary bytes, and anything it accepts is fully validated.
func FuzzLoadSnapshot(f *testing.F) {
	img := writeFileHeader(nil, snapMagic, 0, 1)
	img = binary.BigEndian.AppendUint64(img, 7) // seq
	img = binary.BigEndian.AppendUint64(img, 1) // count
	img = appendEntry(img, entry("seed", 7, 1))
	img = binary.BigEndian.AppendUint32(img, crc32.Checksum(img, castagnoli))
	f.Add(img)
	f.Add(img[:len(img)-5])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xA5}, 80))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, entries, err := decodeSnapshot(data, 0, 1, "fuzz")
		if err != nil {
			return
		}
		for _, e := range entries {
			if err := e.Validate(); err != nil {
				t.Fatalf("snapshot decoder admitted invalid entry: %v", err)
			}
		}
	})
}

// The seed WAL must replay exactly: no record lost, no record invented.
func TestFuzzSeedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Put(entry("g", uint64(i+1), i%3+1)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	r, err := Open(Options{Dir: dir, Shards: 1, SnapshotBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Recovery().ReplayedRecords != 10 || r.Len() != 1 {
		t.Fatalf("Recovery = %+v, Len = %d", r.Recovery(), r.Len())
	}
	if e, _ := r.Get(entry("g", 1, 1).GUID); e.Version != 10 {
		t.Fatalf("Version = %d, want 10", e.Version)
	}
}
