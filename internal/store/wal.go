// Durability for the sharded store: per-shard write-ahead logs,
// periodic snapshots with log truncation, and crash recovery that
// replays snapshot+tail and tolerates a torn final record.
//
// Layout under Options.Dir:
//
//	shard-%04x.wal   append-only log:   header ‖ record*
//	shard-%04x.snap  latest snapshot, replaced atomically (tmp+rename)
//
// WAL header:  "DWAL" ‖ version(1) ‖ shardCount(u32) ‖ shardIndex(u32)
// WAL record:  crc32c(u32, over body) ‖ bodyLen(u32) ‖ body
//
//	body:        seq(u64) ‖ op(1) ‖ payload
//	op opPut:    payload = entry (codec.go)
//	op opDelete: payload = GUID (20 bytes)
//
// Snapshot:    "DSNP" ‖ version(1) ‖ shardCount(u32) ‖ shardIndex(u32) ‖
//
//	seq(u64) ‖ count(u64) ‖ count × entry ‖ crc32c(u32, over
//	all preceding bytes)
//
// seq is per-shard and strictly monotonic; it never resets, even across
// snapshot truncation. Recovery loads the snapshot, then replays only
// WAL records with seq > snapshot seq — so a crash between snapshot
// rename and log truncation merely replays no-ops, and a stale delete
// in a pre-snapshot log tail can never undo a newer snapshotted entry.
//
// Records are appended under the shard write lock through a per-shard
// reusable scratch buffer (the PR-6 ownership discipline: one owner,
// zero per-record allocation) and a single write(2) on an O_APPEND
// handle. A record that fails to write is truncated away so the log
// never carries a half-record in the middle.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"dmap/internal/guid"
)

// FsyncMode selects when the WAL is flushed to stable storage.
type FsyncMode int

const (
	// FsyncOS leaves flushing to the kernel: every acked write has
	// completed its write(2), so it survives a process crash (SIGKILL),
	// but an OS crash or power loss can lose the tail. The default.
	FsyncOS FsyncMode = iota
	// FsyncAlways fsyncs after every record: acked writes survive power
	// loss, at a large per-op latency cost.
	FsyncAlways
	// FsyncInterval fsyncs dirty logs every Options.SyncInterval from a
	// background goroutine: bounded power-loss window, near-FsyncOS
	// throughput.
	FsyncInterval
)

func (m FsyncMode) String() string {
	switch m {
	case FsyncOS:
		return "os"
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	}
	return fmt.Sprintf("FsyncMode(%d)", int(m))
}

// ParseFsyncMode parses "os", "always" or "interval".
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "os":
		return FsyncOS, nil
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	}
	return 0, fmt.Errorf("store: unknown fsync mode %q (want os, always or interval)", s)
}

// Options configures a durable store opened with Open.
type Options struct {
	// Dir is the data directory; created if missing. Required.
	Dir string
	// Shards is the shard count (power of two). 0 means DefaultShards.
	// Must match the count the directory was written with.
	Shards int
	// Fsync selects the flush-to-stable-storage policy.
	Fsync FsyncMode
	// SyncInterval is the FsyncInterval flush period. 0 means 100ms.
	SyncInterval time.Duration
	// SnapshotBytes is the per-shard WAL growth that triggers a
	// background snapshot + log truncation. 0 means 4 MiB; negative
	// disables automatic snapshots (the log grows until Snapshot is
	// called).
	SnapshotBytes int64
}

// RecoveryStats describes what Open found on disk.
type RecoveryStats struct {
	// SnapshotEntries is the number of entries loaded from snapshots.
	SnapshotEntries int
	// ReplayedRecords is the number of WAL records applied (records at
	// or below their shard's snapshot seq are skipped, not counted).
	ReplayedRecords int
	// TornBytes is the length of the invalid log tail that was
	// discarded (a torn final record from a crash mid-append).
	TornBytes int64
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// ErrClosed reports a mutation on a closed durable store.
var ErrClosed = errors.New("store: closed")

const (
	walMagic     = "DWAL"
	snapMagic    = "DSNP"
	fileVersion  = 1
	walHeaderLen = 4 + 1 + 4 + 4
	recHeaderLen = 4 + 4 // crc ‖ bodyLen

	opPut    = 1
	opDelete = 2

	// maxRecordBody bounds one record body: seq ‖ op ‖ largest payload.
	maxRecordBody = 8 + 1 + maxEntryLen

	defaultSnapshotBytes = 4 << 20
	defaultSyncInterval  = 100 * time.Millisecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// shardLog is the durable side of one shard. All fields except walSize
// are guarded by the owning shard's mutex.
type shardLog struct {
	index   int
	path    string
	f       *os.File // O_APPEND write handle
	seq     uint64   // last seq written (or recovered)
	scratch []byte   // reusable record buffer; owned by the shard lock
	always  bool     // FsyncAlways: flush after every record
	dirty   atomic.Bool
	closed  bool
	// walSize is the validated file length; atomic so the compactor can
	// check thresholds without taking shard locks.
	walSize atomic.Int64
}

// wal is the store-wide durable state: options plus the background
// compactor/syncer machinery.
type wal struct {
	s      *Store
	dir    string
	fsync  FsyncMode
	snapB  int64
	notify chan struct{}
	stop   chan struct{}
	joined chan struct{}
	refs   atomic.Int32 // running background goroutines
	closed atomic.Bool
}

func walPath(dir string, i int) string  { return filepath.Join(dir, fmt.Sprintf("shard-%04x.wal", i)) }
func snapPath(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%04x.snap", i)) }

// Open opens (creating if needed) a durable store in opts.Dir,
// recovering any state a previous process left behind: per shard it
// loads the snapshot, replays the WAL tail, discards a torn final
// record, and reopens the log for appending. Recovery details are
// available via Recovery. The caller must Close the store to stop its
// background goroutines and flush the logs.
func Open(opts Options) (*Store, error) {
	start := time.Now()
	if opts.Dir == "" {
		return nil, fmt.Errorf("store: Open requires Options.Dir")
	}
	if opts.Shards == 0 {
		opts.Shards = DefaultShards
	}
	if opts.SnapshotBytes == 0 {
		opts.SnapshotBytes = defaultSnapshotBytes
	}
	if opts.SyncInterval == 0 {
		opts.SyncInterval = defaultSyncInterval
	}
	s, err := NewSharded(opts.Shards)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create data dir: %w", err)
	}
	if err := checkShardFiles(opts.Dir, opts.Shards); err != nil {
		return nil, err
	}
	w := &wal{
		s:      s,
		dir:    opts.Dir,
		fsync:  opts.Fsync,
		snapB:  opts.SnapshotBytes,
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
		joined: make(chan struct{}),
	}
	s.wal = w
	for i := range s.shards {
		if err := s.recoverShard(i, opts); err != nil {
			for j := 0; j < i; j++ {
				if lg := s.shards[j].log; lg != nil {
					lg.f.Close()
				}
			}
			return nil, err
		}
	}
	s.rec.Elapsed = time.Since(start)

	n := 0
	if w.snapB > 0 {
		n++
		go w.compactor()
	}
	if w.fsync == FsyncInterval {
		n++
		go w.syncer(opts.SyncInterval)
	}
	w.refs.Store(int32(n))
	if n == 0 {
		close(w.joined)
	}
	return s, nil
}

// checkShardFiles rejects a directory written with a different shard
// count: every file self-describes its count in its header, but a file
// whose index is out of range would otherwise be silently ignored.
func checkShardFiles(dir string, shards int) error {
	for _, pat := range []string{"shard-*.wal", "shard-*.snap"} {
		names, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return err
		}
		for _, name := range names {
			var idx int
			base := filepath.Base(name)
			if _, err := fmt.Sscanf(base, "shard-%04x", &idx); err != nil {
				continue
			}
			if idx >= shards {
				return fmt.Errorf("store: %s exists but store opened with %d shards; reopen with the original shard count", base, shards)
			}
		}
	}
	return nil
}

// Recovery returns what Open found on disk. Zero for a store built
// with New.
func (s *Store) Recovery() RecoveryStats { return s.rec }

// recoverShard loads shard i's snapshot, replays its WAL tail, and
// leaves an open append handle in place.
func (s *Store) recoverShard(i int, opts Options) error {
	sh := &s.shards[i]
	lg := &shardLog{index: i, path: walPath(opts.Dir, i), always: opts.Fsync == FsyncAlways}

	snapSeq, n, err := s.loadSnapshot(sh, snapPath(opts.Dir, i), i, opts.Shards)
	if err != nil {
		return err
	}
	s.rec.SnapshotEntries += n
	lg.seq = snapSeq

	b, err := os.ReadFile(lg.path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		b = nil
	case err != nil:
		return fmt.Errorf("store: read %s: %w", lg.path, err)
	}
	valid := int64(0)
	if len(b) > 0 {
		valid, err = s.replayWAL(sh, lg, b, i, opts.Shards)
		if err != nil {
			return err
		}
		if torn := int64(len(b)) - valid; torn > 0 {
			s.rec.TornBytes += torn
			if err := os.Truncate(lg.path, valid); err != nil {
				return fmt.Errorf("store: truncate torn tail of %s: %w", lg.path, err)
			}
		}
	}

	f, err := os.OpenFile(lg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: open %s: %w", lg.path, err)
	}
	if len(b) == 0 {
		var hdr [walHeaderLen]byte
		writeFileHeader(hdr[:0], walMagic, i, opts.Shards)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return fmt.Errorf("store: write %s header: %w", lg.path, err)
		}
		valid = walHeaderLen
	}
	lg.f = f
	lg.walSize.Store(valid)
	sh.log = lg
	return nil
}

func writeFileHeader(dst []byte, magic string, index, shards int) []byte {
	dst = append(dst, magic...)
	dst = append(dst, fileVersion)
	dst = binary.BigEndian.AppendUint32(dst, uint32(shards))
	dst = binary.BigEndian.AppendUint32(dst, uint32(index))
	return dst
}

func checkFileHeader(b []byte, magic string, index, shards int, path string) error {
	if len(b) < walHeaderLen {
		return fmt.Errorf("store: %s: short header", path)
	}
	if string(b[:4]) != magic {
		return fmt.Errorf("store: %s: bad magic", path)
	}
	if b[4] != fileVersion {
		return fmt.Errorf("store: %s: unsupported version %d", path, b[4])
	}
	if got := int(binary.BigEndian.Uint32(b[5:])); got != shards {
		return fmt.Errorf("store: %s written with %d shards, opened with %d; reopen with the original shard count", path, got, shards)
	}
	if got := int(binary.BigEndian.Uint32(b[9:])); got != index {
		return fmt.Errorf("store: %s: shard index %d does not match filename", path, got)
	}
	return nil
}

// replayWAL applies every valid record with seq > the snapshot seq and
// returns the length of the longest valid prefix. A torn or corrupt
// record ends the replay without error — that is the expected shape of
// a crash mid-append — and everything after it is discarded by the
// caller.
func (s *Store) replayWAL(sh *shard, lg *shardLog, b []byte, index, shards int) (int64, error) {
	if err := checkFileHeader(b, walMagic, index, shards, lg.path); err != nil {
		return 0, err
	}
	off := int64(walHeaderLen)
	rest := b[walHeaderLen:]
	var e Entry
	e.NAs = make([]NA, 0, MaxNAs)
	for len(rest) > 0 {
		if len(rest) < recHeaderLen {
			break // torn record header
		}
		crc := binary.BigEndian.Uint32(rest)
		n := int(binary.BigEndian.Uint32(rest[4:]))
		if n < 9 || n > maxRecordBody || len(rest) < recHeaderLen+n {
			break // torn or corrupt length
		}
		body := rest[recHeaderLen : recHeaderLen+n]
		if crc32.Checksum(body, castagnoli) != crc {
			break // corrupt body
		}
		seq := binary.BigEndian.Uint64(body)
		op := body[8]
		payload := body[9:]
		if seq > lg.seq {
			switch op {
			case opPut:
				tail, err := decodeEntry(&e, payload)
				if err != nil || len(tail) != 0 {
					return off, nil // corrupt payload: treat as torn
				}
				applyRecovered(sh, e.clone())
			case opDelete:
				if len(payload) != guid.Size {
					return off, nil
				}
				var g guid.GUID
				copy(g[:], payload)
				if old, ok := sh.m[g]; ok {
					delete(sh.m, g)
					sh.sizeBits -= int64(old.SizeBits())
				}
			default:
				return off, nil
			}
			lg.seq = seq
			s.rec.ReplayedRecords++
		}
		rest = rest[recHeaderLen+n:]
		off += int64(recHeaderLen + n)
	}
	return off, nil
}

// applyRecovered installs e during recovery (no locking: the store is
// not yet shared).
func applyRecovered(sh *shard, e Entry) {
	if sh.m == nil {
		sh.m = make(map[guid.GUID]Entry)
	}
	if old, ok := sh.m[e.GUID]; ok {
		sh.sizeBits -= int64(old.SizeBits())
	}
	sh.m[e.GUID] = e
	sh.sizeBits += int64(e.SizeBits())
}

// loadSnapshot reads a snapshot file into sh, returning the snapshot
// seq and entry count. A missing file is an empty shard; a corrupt file
// is an error (snapshots are written atomically, so corruption means
// the storage itself misbehaved — better to refuse than silently serve
// a partial table).
func (s *Store) loadSnapshot(sh *shard, path string, index, shards int) (uint64, int, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("store: read %s: %w", path, err)
	}
	seq, entries, err := decodeSnapshot(b, index, shards, path)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range entries {
		applyRecovered(sh, e)
	}
	return seq, len(entries), nil
}

// decodeSnapshot parses and fully validates a snapshot image.
func decodeSnapshot(b []byte, index, shards int, path string) (uint64, []Entry, error) {
	const fixed = walHeaderLen + 8 + 8 // header ‖ seq ‖ count
	if len(b) < fixed+4 {
		return 0, nil, fmt.Errorf("store: %s: short snapshot", path)
	}
	if err := checkFileHeader(b, snapMagic, index, shards, path); err != nil {
		return 0, nil, err
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.BigEndian.Uint32(tail) {
		return 0, nil, fmt.Errorf("store: %s: checksum mismatch", path)
	}
	seq := binary.BigEndian.Uint64(b[walHeaderLen:])
	count := binary.BigEndian.Uint64(b[walHeaderLen+8:])
	rest := body[fixed:]
	if count > uint64(len(rest))/entryFixedLen+1 {
		return 0, nil, fmt.Errorf("store: %s: entry count %d exceeds file size", path, count)
	}
	entries := make([]Entry, 0, count)
	for i := uint64(0); i < count; i++ {
		var e Entry
		var err error
		rest, err = decodeEntry(&e, rest)
		if err != nil {
			return 0, nil, fmt.Errorf("store: %s: entry %d: %w", path, i, err)
		}
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("store: %s: %d trailing bytes", path, len(rest))
	}
	return seq, entries, nil
}

// appendPut logs an applied Put. Called under the shard write lock.
func (lg *shardLog) appendPut(e Entry) error {
	return lg.appendRecord(opPut, func(dst []byte) []byte { return appendEntry(dst, e) })
}

// appendDelete logs an applied Delete. Called under the shard write lock.
func (lg *shardLog) appendDelete(g guid.GUID) error {
	return lg.appendRecord(opDelete, func(dst []byte) []byte { return append(dst, g[:]...) })
}

// appendRecord frames and writes one record through the shard's scratch
// buffer: a single write(2), no allocation once the scratch has grown
// to the maximum record size.
func (lg *shardLog) appendRecord(op byte, payload func([]byte) []byte) error {
	if lg.closed {
		return ErrClosed
	}
	seq := lg.seq + 1
	buf := append(lg.scratch[:0], 0, 0, 0, 0, 0, 0, 0, 0) // crc ‖ len placeholders
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = append(buf, op)
	buf = payload(buf)
	body := buf[recHeaderLen:]
	binary.BigEndian.PutUint32(buf, crc32.Checksum(body, castagnoli))
	binary.BigEndian.PutUint32(buf[4:], uint32(len(body)))
	lg.scratch = buf[:0]

	n, err := lg.f.Write(buf)
	if err != nil {
		// Cut the half-written record off so the log stays well-formed
		// in the middle; recovery only tolerates tears at the very end.
		if n > 0 {
			lg.f.Truncate(lg.walSize.Load())
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	lg.seq = seq
	lg.walSize.Add(int64(len(buf)))
	if lg.fsyncAlways() {
		if err := lg.f.Sync(); err != nil {
			return fmt.Errorf("store: wal fsync: %w", err)
		}
	} else {
		lg.dirty.Store(true)
	}
	return nil
}

// fsyncAlways reports whether this log flushes on every record. Set
// once at recovery via the store options; read under the shard lock.
func (lg *shardLog) fsyncAlways() bool { return lg.always }

// maybeSnapshot nudges the compactor when sh's log has outgrown the
// snapshot threshold. Called under the shard lock; never blocks.
func (s *Store) maybeSnapshot(sh *shard) {
	w := s.wal
	if w == nil || sh.log == nil || w.snapB <= 0 {
		return
	}
	if sh.log.walSize.Load()-walHeaderLen < w.snapB {
		return
	}
	select {
	case w.notify <- struct{}{}:
	default:
	}
}

// compactor snapshots shards whose logs have outgrown the threshold.
// Snapshot errors are non-fatal: the log keeps growing and keeps the
// data safe; the next nudge retries.
func (w *wal) compactor() {
	defer w.release()
	for {
		select {
		case <-w.stop:
			return
		case <-w.notify:
		}
		for i := range w.s.shards {
			sh := &w.s.shards[i]
			if sh.log != nil && sh.log.walSize.Load()-walHeaderLen >= w.snapB {
				w.s.snapshotShard(i)
			}
		}
	}
}

// syncer flushes dirty logs every interval (FsyncInterval mode).
func (w *wal) syncer(interval time.Duration) {
	defer w.release()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.syncDirty()
		}
	}
}

func (w *wal) syncDirty() {
	for i := range w.s.shards {
		lg := w.s.shards[i].log
		if lg != nil && lg.dirty.Swap(false) {
			lg.f.Sync() // *os.File is safe for concurrent Sync/Write
		}
	}
}

func (w *wal) release() {
	if w.refs.Add(-1) == 0 {
		close(w.joined)
	}
}

// Snapshot forces a snapshot (and log truncation) of every shard.
// Returns the first error; remaining shards are still attempted.
func (s *Store) Snapshot() error {
	if s.wal == nil {
		return nil
	}
	var first error
	for i := range s.shards {
		if err := s.snapshotShard(i); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// snapshotShard writes shard i's table to an atomically-replaced
// snapshot file and truncates its WAL, all under the shard write lock:
// no record can land between the snapshot image and the truncation, so
// the pair is equivalent to an instantaneous log rewrite. seq is
// preserved — it never moves backwards.
func (s *Store) snapshotShard(i int) error {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	lg := sh.log
	if lg == nil || lg.closed {
		return ErrClosed
	}

	entries := make([]Entry, 0, len(sh.m))
	for _, e := range sh.m {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool {
		return string(entries[a].GUID[:]) < string(entries[b].GUID[:])
	})
	img := writeFileHeader(nil, snapMagic, i, len(s.shards))
	img = binary.BigEndian.AppendUint64(img, lg.seq)
	img = binary.BigEndian.AppendUint64(img, uint64(len(entries)))
	for _, e := range entries {
		img = appendEntry(img, e)
	}
	img = binary.BigEndian.AppendUint32(img, crc32.Checksum(img, castagnoli))

	final := snapPath(s.wal.dir, i)
	tmp := final + ".tmp"
	if err := writeFileAtomic(tmp, final, img); err != nil {
		return err
	}
	if err := lg.f.Truncate(walHeaderLen); err != nil {
		return fmt.Errorf("store: truncate %s: %w", lg.path, err)
	}
	lg.walSize.Store(walHeaderLen)
	return nil
}

// writeFileAtomic writes data to tmp, fsyncs it, renames it over final
// and fsyncs the directory, so the file is either the old image or the
// complete new one — never a prefix.
func writeFileAtomic(tmp, final string, data []byte) error {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(final)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Sync flushes every shard's WAL to stable storage, regardless of the
// fsync policy. Drain calls this so a drained node is fully durable.
func (s *Store) Sync() error {
	if s.wal == nil {
		return nil
	}
	var first error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		lg := sh.log
		if lg != nil && !lg.closed {
			if err := lg.f.Sync(); err != nil && first == nil {
				first = err
			}
			lg.dirty.Store(false)
		}
		sh.mu.Unlock()
	}
	return first
}

// Close stops the background goroutines and flushes and closes every
// shard log. Mutations after Close fail with ErrClosed; reads keep
// working. Closing a memory-only store is a no-op.
func (s *Store) Close() error {
	w := s.wal
	if w == nil || !w.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(w.stop)
	<-w.joined
	var first error
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		lg := sh.log
		if lg != nil && !lg.closed {
			if err := lg.f.Sync(); err != nil && first == nil {
				first = err
			}
			if err := lg.f.Close(); err != nil && first == nil {
				first = err
			}
			lg.closed = true
		}
		sh.mu.Unlock()
	}
	return first
}
