package store

import (
	"fmt"
	"testing"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
)

func digestEntry(name string, version uint64) Entry {
	return Entry{
		GUID:    guid.New(name),
		NAs:     []NA{{AS: 1, Addr: netaddr.AddrFromOctets(10, 0, 0, 1)}},
		Version: version,
	}
}

// pageThroughShard walks one shard with the bounded cursor and returns
// every digest in page order.
func pageThroughShard(t *testing.T, s *Store, shard, pageSize int) []Digest {
	t.Helper()
	var out []Digest
	after, _ := s.ShardRange(shard)
	page := make([]Digest, 0, pageSize)
	for {
		var more bool
		page, more = s.ShardDigests(shard, after, pageSize, page[:0])
		out = append(out, page...)
		if len(page) == 0 {
			if more {
				t.Fatal("empty page reported more")
			}
			return out
		}
		after = page[len(page)-1].GUID
		if !more {
			return out
		}
	}
}

func TestShardDigestsPagesInOrder(t *testing.T) {
	s, err := NewSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	want := make(map[guid.GUID]uint64, n)
	for i := 0; i < n; i++ {
		e := digestEntry(fmt.Sprintf("g%d", i), uint64(i+1))
		if _, err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		want[e.GUID] = e.Version
	}
	for _, pageSize := range []int{1, 3, 7, 64, 1000} {
		got := make(map[guid.GUID]uint64)
		total := 0
		for shard := 0; shard < s.ShardCount(); shard++ {
			ds := pageThroughShard(t, s, shard, pageSize)
			for i, d := range ds {
				if i > 0 && guid.Compare(ds[i-1].GUID, d.GUID) >= 0 {
					t.Fatalf("pageSize %d shard %d: digests out of order at %d", pageSize, shard, i)
				}
				got[d.GUID] = d.Version
			}
			total += len(ds)
		}
		if total != n {
			t.Fatalf("pageSize %d: visited %d digests, want %d", pageSize, total, n)
		}
		for g, v := range want {
			if got[g] != v {
				t.Fatalf("pageSize %d: %s version %d, want %d", pageSize, g.Short(), got[g], v)
			}
		}
	}
}

func TestShardDigestsBoundedPage(t *testing.T) {
	s := New()
	for i := 0; i < 50; i++ {
		if _, err := s.Put(digestEntry(fmt.Sprintf("b%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	for shard := 0; shard < s.ShardCount(); shard++ {
		page, more := s.ShardDigests(shard, guid.GUID{}, 2, nil)
		if len(page) > 2 {
			t.Fatalf("shard %d: page size %d exceeds max 2", shard, len(page))
		}
		if s.ShardLen(shard) > 2 && !more {
			t.Fatalf("shard %d holds %d entries but a 2-digest page reported no more", shard, s.ShardLen(shard))
		}
	}
}

func TestShardRangePartitionsKeyspace(t *testing.T) {
	for _, shards := range []int{1, 2, 8, 256} {
		s, err := NewSharded(shards)
		if err != nil {
			t.Fatal(err)
		}
		prevThrough := guid.GUID{}
		for i := 0; i < s.ShardCount(); i++ {
			after, through := s.ShardRange(i)
			if i == 0 && !after.IsZero() {
				t.Fatalf("%d shards: shard 0 after = %s, want zero", shards, after)
			}
			if i > 0 && after != prevThrough {
				t.Fatalf("%d shards: shard %d after %s != shard %d through %s", shards, i, after, i-1, prevThrough)
			}
			if guid.Compare(after, through) >= 0 {
				t.Fatalf("%d shards: shard %d empty range (%s, %s]", shards, i, after, through)
			}
			prevThrough = through
		}
		if prevThrough != guid.Max() {
			t.Fatalf("%d shards: last through = %s, want max", shards, prevThrough)
		}
		// Every stored GUID falls inside its own shard's range.
		for i := 0; i < 64; i++ {
			g := guid.New(fmt.Sprintf("r%d", i))
			idx := (uint32(g[0])<<8 | uint32(g[1])) >> s.shift
			after, through := s.ShardRange(int(idx))
			if guid.Compare(g, after) <= 0 || guid.Compare(g, through) > 0 {
				t.Fatalf("%d shards: %s outside its shard range (%s, %s]", shards, g, after, through)
			}
		}
	}
}

func TestVersionAndRangeInterval(t *testing.T) {
	s := New()
	var all []guid.GUID
	for i := 0; i < 30; i++ {
		e := digestEntry(fmt.Sprintf("v%d", i), uint64(10+i))
		if _, err := s.Put(e); err != nil {
			t.Fatal(err)
		}
		all = append(all, e.GUID)
	}
	if v, ok := s.Version(all[3]); !ok || v != 13 {
		t.Fatalf("Version = %d,%v want 13,true", v, ok)
	}
	if _, ok := s.Version(guid.New("absent")); ok {
		t.Fatal("Version found an absent GUID")
	}

	// A full-keyspace interval visits everything exactly once.
	seen := make(map[guid.GUID]int)
	s.RangeInterval(guid.GUID{}, guid.Max(), func(e Entry) bool {
		seen[e.GUID]++
		return true
	})
	if len(seen) != len(all) {
		t.Fatalf("full interval visited %d entries, want %d", len(seen), len(all))
	}
	for g, c := range seen {
		if c != 1 {
			t.Fatalf("%s visited %d times", g.Short(), c)
		}
	}

	// A half-open sub-interval respects both bounds.
	pivot := all[0]
	in, out := 0, 0
	s.RangeInterval(pivot, guid.Max(), func(e Entry) bool {
		if guid.Compare(e.GUID, pivot) <= 0 {
			out++
		} else {
			in++
		}
		return true
	})
	if out != 0 {
		t.Fatalf("%d entries ≤ the exclusive lower bound leaked into the interval", out)
	}
	want := 0
	for _, g := range all {
		if guid.Compare(g, pivot) > 0 {
			want++
		}
	}
	if in != want {
		t.Fatalf("interval above pivot visited %d, want %d", in, want)
	}
}
