// On-disk entry codec shared by the WAL, the snapshot files and the
// deterministic dump. The layout deliberately mirrors the §IV-A storage
// accounting (and the wire protocol's entry encoding), but it is an
// independent format: the durable files version themselves and may
// evolve separately from what peers speak on the wire.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dmap/internal/guid"
	"dmap/internal/netaddr"
)

// ErrShortEntry reports a truncated on-disk entry encoding.
var ErrShortEntry = errors.New("store: truncated entry encoding")

// entryFixedLen is the fixed prefix of an encoded entry:
// GUID(20) ‖ version(8) ‖ meta(4) ‖ naCount(1).
const entryFixedLen = guid.Size + 8 + 4 + 1

// maxEntryLen bounds one encoded entry (5 NAs at 8 bytes each).
const maxEntryLen = entryFixedLen + 8*MaxNAs

// appendEntry encodes e:
// GUID(20) ‖ version(8) ‖ meta(4) ‖ naCount(1) ‖ naCount × (AS(4) ‖ addr(4)).
// The caller has validated e; appendEntry never fails.
func appendEntry(dst []byte, e Entry) []byte {
	dst = append(dst, e.GUID[:]...)
	dst = binary.BigEndian.AppendUint64(dst, e.Version)
	dst = binary.BigEndian.AppendUint32(dst, e.Meta)
	dst = append(dst, byte(len(e.NAs)))
	for _, na := range e.NAs {
		dst = binary.BigEndian.AppendUint32(dst, uint32(na.AS))
		dst = binary.BigEndian.AppendUint32(dst, uint32(na.Addr))
	}
	return dst
}

// decodeEntry decodes one entry into e, reusing e.NAs' capacity, and
// returns the remaining bytes. The decoded entry is validated, so a
// corrupt or hostile file cannot smuggle a structurally invalid entry
// into the store.
func decodeEntry(e *Entry, b []byte) ([]byte, error) {
	if len(b) < entryFixedLen {
		return nil, ErrShortEntry
	}
	copy(e.GUID[:], b[:guid.Size])
	b = b[guid.Size:]
	e.Version = binary.BigEndian.Uint64(b)
	e.Meta = binary.BigEndian.Uint32(b[8:])
	n := int(b[12])
	b = b[13:]
	if n == 0 || n > MaxNAs {
		return nil, fmt.Errorf("store: NA count %d out of range", n)
	}
	if len(b) < 8*n {
		return nil, ErrShortEntry
	}
	e.NAs = e.NAs[:0]
	for i := 0; i < n; i++ {
		e.NAs = append(e.NAs, NA{
			AS:   int(binary.BigEndian.Uint32(b)),
			Addr: netaddr.Addr(binary.BigEndian.Uint32(b[4:])),
		})
		b = b[8:]
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return b, nil
}
