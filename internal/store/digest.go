// Anti-entropy digest cursors: bounded, ordered views of a shard's
// (GUID, version) pairs plus the range scans a repair peer needs to
// compare a digest page against its own holdings. The cursor API is the
// store-side half of the background repair protocol (DESIGN.md §12):
// sweeps page through a shard in keyspace order without ever holding a
// lock across more than one bounded selection pass.
package store

import "dmap/internal/guid"

// Digest is the compact per-entry fingerprint exchanged by anti-entropy
// sweeps: enough to decide staleness under §III-D2 freshest-wins
// versioning without shipping the entry itself.
type Digest struct {
	GUID    guid.GUID
	Version uint64
}

// ShardDigests appends to dst up to max digests of shard i's entries
// whose GUID is strictly greater than after, in ascending keyspace
// order, and reports whether entries beyond the returned page remain in
// the shard. dst is the caller's reusable page buffer (its capacity is
// kept); max must be positive. The selection runs under the shard's
// read lock but never blocks writers for longer than one bounded pass
// over the shard map.
func (s *Store) ShardDigests(i int, after guid.GUID, max int, dst []Digest) ([]Digest, bool) {
	if max <= 0 {
		return dst, false
	}
	base := len(dst)
	more := false
	sh := &s.shards[i]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for g, e := range sh.m {
		if guid.Compare(g, after) <= 0 {
			continue
		}
		page := dst[base:]
		if len(page) == max && guid.Compare(g, page[len(page)-1].GUID) > 0 {
			more = true // beyond the page; a later cursor position covers it
			continue
		}
		// Insert in keyspace order, evicting the page's largest entry
		// when full — the page is always the max smallest GUIDs > after.
		pos := base + len(page)
		for pos > base && guid.Compare(dst[pos-1].GUID, g) > 0 {
			pos--
		}
		if len(page) == max {
			more = true
			copy(dst[pos+1:], dst[pos:len(dst)-1])
		} else {
			dst = append(dst, Digest{})
			copy(dst[pos+1:], dst[pos:len(dst)-1])
		}
		dst[pos] = Digest{GUID: g, Version: e.Version}
	}
	return dst, more
}

// ShardRange returns shard i's slice of the keyspace as an
// exclusive-left, inclusive-right interval (after, through]: every GUID
// the shard can host satisfies after < g ≤ through. Anti-entropy sweeps
// use it to seed the page cursor and to mark the final page of a shard
// as covering the whole remaining shard range.
func (s *Store) ShardRange(i int) (after, through guid.GUID) {
	if i > 0 {
		lo := uint16(i) << s.shift
		after[0] = byte((lo - 1) >> 8)
		after[1] = byte(lo - 1)
		for j := 2; j < guid.Size; j++ {
			after[j] = 0xff
		}
	}
	if i == len(s.shards)-1 {
		return after, guid.Max()
	}
	hi := uint16(i+1)<<s.shift - 1
	through[0] = byte(hi >> 8)
	through[1] = byte(hi)
	for j := 2; j < guid.Size; j++ {
		through[j] = 0xff
	}
	return after, through
}

// Version returns the stored version of g's mapping, without cloning
// the entry — the cheap staleness check the anti-entropy merge paths
// make once per digest.
func (s *Store) Version(g guid.GUID) (uint64, bool) {
	sh := s.shardFor(g)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	e, ok := sh.m[g]
	if !ok {
		return 0, false
	}
	return e.Version, true
}

// RangeInterval calls fn on a copy of every entry whose GUID lies in
// (after, through], until fn returns false. Only the shards overlapping
// the interval are visited; within a shard the order is map order, so
// callers needing determinism must collect and sort. Mutating the store
// from fn deadlocks.
func (s *Store) RangeInterval(after, through guid.GUID, fn func(Entry) bool) {
	if guid.Compare(after, through) >= 0 {
		return
	}
	lo := int((uint32(after[0])<<8 | uint32(after[1])) >> s.shift)
	hi := int((uint32(through[0])<<8 | uint32(through[1])) >> s.shift)
	for i := lo; i <= hi; i++ {
		ok := rangeShard(&s.shards[i], func(e Entry) bool {
			if guid.Compare(e.GUID, after) <= 0 || guid.Compare(e.GUID, through) > 0 {
				return true
			}
			return fn(e)
		})
		if !ok {
			return
		}
	}
}
