// Package guid implements DMap's flat, location-independent Globally
// Unique Identifiers (GUIDs) and the family of K independent consistent
// hash functions that map a GUID into the network address space.
//
// A GUID is a 160-bit opaque bit string (e.g. a public-key hash): long
// enough that collisions are infinitesimally unlikely, and deliberately
// free of any aggregatable structure. Every network-attached object — a
// phone, a laptop, a piece of content, a service — carries one.
package guid

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Size is the GUID length in bytes (160 bits, per §IV-A of the paper).
const Size = 20

// GUID is a flat 160-bit globally unique identifier.
type GUID [Size]byte

// FromBytes builds a GUID from exactly Size bytes.
func FromBytes(b []byte) (GUID, error) {
	var g GUID
	if len(b) != Size {
		return g, fmt.Errorf("guid: want %d bytes, got %d", Size, len(b))
	}
	copy(g[:], b)
	return g, nil
}

// Parse decodes a 40-character hexadecimal GUID string.
func Parse(s string) (GUID, error) {
	var g GUID
	if hex.DecodedLen(len(s)) != Size {
		return g, fmt.Errorf("guid: want %d hex chars, got %d", hex.EncodedLen(Size), len(s))
	}
	if _, err := hex.Decode(g[:], []byte(s)); err != nil {
		return g, fmt.Errorf("guid: parse %q: %w", s, err)
	}
	return g, nil
}

// New derives a GUID from an arbitrary name, mimicking self-certifying
// identifiers: the GUID is the (truncated) SHA-256 of the name, so the
// binding between name and identifier is verifiable by anyone.
func New(name string) GUID {
	sum := sha256.Sum256([]byte(name))
	var g GUID
	copy(g[:], sum[:Size])
	return g
}

// FromUint64 builds a GUID whose low 8 bytes hold v. It is a convenience
// for simulations that enumerate GUIDs densely; the hash family below
// diffuses the bits, so dense inputs still spread uniformly.
func FromUint64(v uint64) GUID {
	var g GUID
	binary.BigEndian.PutUint64(g[Size-8:], v)
	return g
}

// Verify reports whether g is the self-certifying GUID for name, i.e.
// whether New(name) == g. Flat self-certifying identifiers allow "direct
// verification of the binding between the name and an associated object"
// (§I) without consulting any authority.
func Verify(name string, g GUID) bool {
	return New(name) == g
}

// String returns the lowercase hexadecimal form of g.
func (g GUID) String() string { return hex.EncodeToString(g[:]) }

// Short returns an abbreviated display form (first 8 hex chars).
func (g GUID) Short() string { return hex.EncodeToString(g[:4]) }

// IsZero reports whether g is the all-zero GUID.
func (g GUID) IsZero() bool { return g == GUID{} }

// Compare orders GUIDs lexicographically — the global keyspace order
// the store's deterministic dumps and the anti-entropy range cursors
// are defined over. It returns -1, 0 or +1.
func Compare(a, b GUID) int { return bytes.Compare(a[:], b[:]) }

// Max returns the largest GUID in keyspace order (all bits set), the
// inclusive upper bound of a full-keyspace range scan.
func Max() GUID {
	var g GUID
	for i := range g {
		g[i] = 0xff
	}
	return g
}

// Hasher is the predefined consistent hash family shared by all routers
// participating in DMap (§III-A: "important DMap parameters, such as which
// hash functions to use and the value of K, will be agreed and distributed
// beforehand among the Internet routers").
//
// The i-th function of the family is
//
//	h_i(g) = first 32 bits of SHA-256(salt ‖ i ‖ g)
//
// Domain-separating on the replica index i makes the K functions
// independent while keeping every router's view identical. Rehashing for
// hole handling (Algorithm 1) feeds the previous 32-bit value back through
// the same function via Rehash.
type Hasher struct {
	k    int
	salt [8]byte
}

// DefaultK is the replication factor used in the paper's evaluation.
const DefaultK = 5

// NewHasher returns a hash family with k replica functions. The salt lets
// deployments (and tests) derive disjoint families; the zero salt is the
// global default. k must be at least 1.
func NewHasher(k int, salt uint64) (*Hasher, error) {
	if k < 1 {
		return nil, fmt.Errorf("guid: replication factor K must be >= 1, got %d", k)
	}
	h := &Hasher{k: k}
	binary.BigEndian.PutUint64(h.salt[:], salt)
	return h, nil
}

// MustHasher is NewHasher for statically valid arguments; it panics on
// error and is intended for tests and examples.
func MustHasher(k int, salt uint64) *Hasher {
	h, err := NewHasher(k, salt)
	if err != nil {
		panic(err)
	}
	return h
}

// K returns the number of replica hash functions in the family.
func (h *Hasher) K() int { return h.k }

// Hash returns h_replica(g) as a 32-bit value in the network address
// space. replica must be in [0, K).
func (h *Hasher) Hash(g GUID, replica int) uint32 {
	if replica < 0 || replica >= h.k {
		panic(fmt.Sprintf("guid: replica index %d out of range [0,%d)", replica, h.k))
	}
	var buf [8 + 4 + Size]byte
	copy(buf[:8], h.salt[:])
	binary.BigEndian.PutUint32(buf[8:12], uint32(replica))
	copy(buf[12:], g[:])
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint32(sum[:4])
}

// HashAll returns all K hashed addresses for g, in replica order.
func (h *Hasher) HashAll(g GUID) []uint32 {
	out := make([]uint32, h.k)
	for i := range out {
		out[i] = h.Hash(g, i)
	}
	return out
}

// Rehash is the re-hash step of Algorithm 1: when a hashed address falls
// into an IP hole, the 32-bit value itself is hashed again (still
// domain-separated on the replica index so replicas stay independent).
func (h *Hasher) Rehash(prev uint32, replica int) uint32 {
	var buf [8 + 4 + 4]byte
	copy(buf[:8], h.salt[:])
	binary.BigEndian.PutUint32(buf[8:12], uint32(replica))
	binary.BigEndian.PutUint32(buf[12:], prev)
	sum := sha256.Sum256(buf[:])
	return binary.BigEndian.Uint32(sum[:4])
}

// HashToRange maps h_replica(g) uniformly onto [0, n), used by the
// hash-to-AS-number variant of DMap (§VII future work) and by the sparse
// bucketing scheme. n must be positive.
func (h *Hasher) HashToRange(g GUID, replica int, n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("guid: HashToRange n must be positive, got %d", n))
	}
	// Use 64 bits of the digest to keep modulo bias negligible.
	var buf [8 + 4 + Size]byte
	copy(buf[:8], h.salt[:])
	binary.BigEndian.PutUint32(buf[8:12], uint32(replica)|0x80000000) // distinct domain
	copy(buf[12:], g[:])
	sum := sha256.Sum256(buf[:])
	return int(binary.BigEndian.Uint64(sum[:8]) % uint64(n))
}
