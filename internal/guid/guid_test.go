package guid

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseRoundTrip(t *testing.T) {
	g := New("laptop-A")
	back, err := Parse(g.String())
	if err != nil {
		t.Fatal(err)
	}
	if back != g {
		t.Errorf("round trip mismatch: %v != %v", back, g)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "abcd", strings.Repeat("z", 40), strings.Repeat("a", 41)} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestFromBytes(t *testing.T) {
	b := make([]byte, Size)
	b[0], b[Size-1] = 0xAB, 0xCD
	g, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if g[0] != 0xAB || g[Size-1] != 0xCD {
		t.Error("bytes not copied")
	}
	if _, err := FromBytes(b[:Size-1]); err == nil {
		t.Error("short input should fail")
	}
	if _, err := FromBytes(append(b, 0)); err == nil {
		t.Error("long input should fail")
	}
}

func TestNewIsDeterministicAndDistinct(t *testing.T) {
	if New("x") != New("x") {
		t.Error("New must be deterministic")
	}
	if New("x") == New("y") {
		t.Error("distinct names must give distinct GUIDs")
	}
}

func TestIsZero(t *testing.T) {
	var g GUID
	if !g.IsZero() {
		t.Error("zero GUID should report IsZero")
	}
	if New("a").IsZero() {
		t.Error("derived GUID should not be zero")
	}
}

func TestShort(t *testing.T) {
	g := New("thing")
	if len(g.Short()) != 8 {
		t.Errorf("Short() length = %d, want 8", len(g.Short()))
	}
	if !strings.HasPrefix(g.String(), g.Short()) {
		t.Error("Short() must be a prefix of String()")
	}
}

func TestNewHasherValidation(t *testing.T) {
	if _, err := NewHasher(0, 0); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := NewHasher(-3, 0); err == nil {
		t.Error("K<0 should fail")
	}
	h, err := NewHasher(5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.K() != 5 {
		t.Errorf("K() = %d, want 5", h.K())
	}
}

func TestHashDeterministicAcrossInstances(t *testing.T) {
	// Every router must derive the same addresses from the same agreed
	// parameters — two independently constructed hashers must agree.
	h1 := MustHasher(5, 42)
	h2 := MustHasher(5, 42)
	g := New("phone-X")
	for i := 0; i < 5; i++ {
		if h1.Hash(g, i) != h2.Hash(g, i) {
			t.Fatalf("replica %d: hashers disagree", i)
		}
	}
}

func TestHashReplicasIndependent(t *testing.T) {
	h := MustHasher(5, 0)
	g := New("content-B")
	seen := make(map[uint32]int)
	for i := 0; i < 5; i++ {
		v := h.Hash(g, i)
		if prev, dup := seen[v]; dup {
			t.Errorf("replicas %d and %d collide on %#x", prev, i, v)
		}
		seen[v] = i
	}
}

func TestHashSaltSeparation(t *testing.T) {
	g := New("g")
	if MustHasher(1, 1).Hash(g, 0) == MustHasher(1, 2).Hash(g, 0) {
		t.Error("different salts should give different hashes")
	}
}

func TestHashAllMatchesHash(t *testing.T) {
	h := MustHasher(4, 7)
	g := FromUint64(123456)
	all := h.HashAll(g)
	if len(all) != 4 {
		t.Fatalf("HashAll length = %d, want 4", len(all))
	}
	for i, v := range all {
		if v != h.Hash(g, i) {
			t.Errorf("HashAll[%d] = %#x, want %#x", i, v, h.Hash(g, i))
		}
	}
}

func TestHashPanicsOutOfRange(t *testing.T) {
	h := MustHasher(2, 0)
	for _, idx := range []int{-1, 2, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Hash(replica=%d) should panic", idx)
				}
			}()
			h.Hash(GUID{}, idx)
		}()
	}
}

func TestHashUniformity(t *testing.T) {
	// Chi-square over 256 buckets of the top byte; dense sequential GUIDs
	// must still spread uniformly. 99.9th percentile of chi2(255) ≈ 341.
	h := MustHasher(1, 0)
	const n = 100000
	var buckets [256]int
	for i := 0; i < n; i++ {
		buckets[h.Hash(FromUint64(uint64(i)), 0)>>24]++
	}
	expected := float64(n) / 256
	var chi2 float64
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 341 {
		t.Errorf("chi-square = %.1f, want < 341 (not uniform)", chi2)
	}
}

func TestRehashChangesValueAndIsDeterministic(t *testing.T) {
	h := MustHasher(3, 0)
	v := h.Hash(New("g"), 1)
	r1 := h.Rehash(v, 1)
	r2 := h.Rehash(v, 1)
	if r1 != r2 {
		t.Error("Rehash must be deterministic")
	}
	if r1 == v {
		t.Error("Rehash should (overwhelmingly) change the value")
	}
	if h.Rehash(v, 0) == h.Rehash(v, 1) {
		t.Error("Rehash must be domain-separated per replica")
	}
}

func TestHashToRange(t *testing.T) {
	h := MustHasher(2, 0)
	f := func(v uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		r := h.HashToRange(FromUint64(v), 0, n)
		return r >= 0 && r < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashToRangeUniform(t *testing.T) {
	h := MustHasher(1, 9)
	const n, draws = 64, 64000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[h.HashToRange(FromUint64(uint64(i)), 0, n)]++
	}
	expected := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 99.9th percentile of chi2(63) ≈ 103.
	if chi2 > 103 {
		t.Errorf("chi-square = %.1f, want < 103", chi2)
	}
}

func TestHashToRangePanics(t *testing.T) {
	h := MustHasher(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("HashToRange(n=0) should panic")
		}
	}()
	h.HashToRange(GUID{}, 0, 0)
}

func TestHashAvalanche(t *testing.T) {
	// Flipping one GUID bit should flip ~16 of 32 output bits on average.
	h := MustHasher(1, 0)
	var totalFlips, trials int
	for i := 0; i < 200; i++ {
		g := FromUint64(uint64(i))
		base := h.Hash(g, 0)
		for bit := 0; bit < 8; bit++ {
			g2 := g
			g2[Size-1] ^= 1 << bit
			diff := base ^ h.Hash(g2, 0)
			for ; diff != 0; diff &= diff - 1 {
				totalFlips++
			}
			trials++
		}
	}
	avg := float64(totalFlips) / float64(trials)
	if math.Abs(avg-16) > 2 {
		t.Errorf("avalanche average = %.2f bit flips, want ≈16", avg)
	}
}

func TestVerify(t *testing.T) {
	g := New("content:movie-trailer")
	if !Verify("content:movie-trailer", g) {
		t.Error("Verify must accept the matching name")
	}
	if Verify("content:other", g) {
		t.Error("Verify must reject a different name")
	}
	if Verify("content:movie-trailer", GUID{}) {
		t.Error("Verify must reject the zero GUID")
	}
}
