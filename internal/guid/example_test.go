package guid_test

import (
	"fmt"

	"dmap/internal/guid"
)

// Example shows self-certifying identifier derivation and the K-hash
// family every router shares.
func Example() {
	g := guid.New("content:launch-video")
	fmt.Println("verifies:", guid.Verify("content:launch-video", g))
	fmt.Println("forged:  ", guid.Verify("content:other", g))

	// The same GUID always hashes to the same K network addresses, on
	// every router, with no coordination.
	h := guid.MustHasher(3, 0)
	a := h.HashAll(g)
	b := h.HashAll(g)
	fmt.Println("replicas agree:", a[0] == b[0] && a[1] == b[1] && a[2] == b[2])
	// Output:
	// verifies: true
	// forged:   false
	// replicas agree: true
}
