// Package simnet is the discrete-event engine behind the paper's
// "detailed discrete-event simulation" (§IV-B1): a virtual clock, an
// event heap, and a message-passing network whose delivery delays come
// from the AS-level topology.
//
// The engine is deliberately single-threaded: handlers run one at a time
// in timestamp order, which makes protocol races (mobility updates vs.
// in-flight queries, churn vs. lookups) reproducible bit-for-bit.
package simnet

import (
	"fmt"

	"dmap/internal/topology"
)

// Time is simulated time in microseconds since the start of the run.
type Time = topology.Micros

// Sim is a discrete-event scheduler. The zero value is not usable; call
// New.
type Sim struct {
	now    Time
	events eventHeap
	seq    uint64 // tie-break: FIFO among same-timestamp events
}

// New returns an empty simulation at time zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Pending returns the number of scheduled events.
func (s *Sim) Pending() int { return len(s.events.items) }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error: the causality violation would silently reorder the run.
func (s *Sim) At(t Time, fn func()) error {
	if t < s.now {
		return fmt.Errorf("simnet: scheduling at %d before now %d", t, s.now)
	}
	s.seq++
	s.events.push(event{at: t, seq: s.seq, fn: fn})
	return nil
}

// After schedules fn to run d after the current time. Negative delays are
// rejected.
func (s *Sim) After(d Time, fn func()) error {
	return s.At(s.now+d, fn)
}

// Step runs the earliest pending event, reporting whether one existed.
func (s *Sim) Step() bool {
	if len(s.events.items) == 0 {
		return false
	}
	ev := s.events.pop()
	s.now = ev.at
	ev.fn()
	return true
}

// Run drains the event queue. maxEvents bounds runaway protocols
// (<= 0 means unlimited); it returns the number of events executed.
func (s *Sim) Run(maxEvents int) int {
	n := 0
	for s.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// RunUntil executes events with timestamps ≤ deadline, then advances the
// clock to the deadline. It returns the number of events executed.
func (s *Sim) RunUntil(deadline Time) int {
	n := 0
	for len(s.events.items) > 0 && s.events.items[0].at <= deadline {
		s.Step()
		n++
	}
	if s.now < deadline {
		s.now = deadline
	}
	return n
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is a typed binary min-heap ordered by (at, seq): earliest
// timestamp first, FIFO among equal timestamps. Hand-rolled to keep the
// event loop free of container/heap's per-push interface allocation.
type eventHeap struct {
	items []event
}

func (h *eventHeap) less(i, j int) bool {
	if h.items[i].at != h.items[j].at {
		return h.items[i].at < h.items[j].at
	}
	return h.items[i].seq < h.items[j].seq
}

func (h *eventHeap) push(ev event) {
	h.items = append(h.items, ev)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = event{} // release the closure for GC
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.less(l, smallest) {
			smallest = l
		}
		if r < last && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// LatencyOracle supplies one-way message latencies between ASs.
// topology.DistCache satisfies it.
type LatencyOracle interface {
	OneWay(src, dst int) topology.Micros
}

// Handler consumes messages addressed to one AS-node.
type Handler interface {
	HandleMessage(net *Network, msg Message)
}

// HandlerFunc adapts a function to Handler.
type HandlerFunc func(net *Network, msg Message)

// HandleMessage calls f.
func (f HandlerFunc) HandleMessage(net *Network, msg Message) { f(net, msg) }

// Message is a network datagram between AS-nodes.
type Message struct {
	From    int
	To      int
	Payload interface{}
}

// Network delivers messages between registered handlers with
// topology-derived delays on a Sim clock.
type Network struct {
	sim     *Sim
	oracle  LatencyOracle
	nodes   []Handler
	dropped int
	faults  *faultState // nil = fault-free (see faults.go)
}

// NewNetwork wires a network of n AS-nodes onto sim.
func NewNetwork(sim *Sim, oracle LatencyOracle, n int) (*Network, error) {
	if sim == nil || oracle == nil {
		return nil, fmt.Errorf("simnet: nil sim or oracle")
	}
	if n <= 0 {
		return nil, fmt.Errorf("simnet: node count must be positive, got %d", n)
	}
	return &Network{sim: sim, oracle: oracle, nodes: make([]Handler, n)}, nil
}

// Bind installs the handler for AS-node id.
func (n *Network) Bind(id int, h Handler) error {
	if id < 0 || id >= len(n.nodes) {
		return fmt.Errorf("simnet: node id %d out of range [0,%d)", id, len(n.nodes))
	}
	n.nodes[id] = h
	return nil
}

// Sim returns the underlying scheduler (for timeouts and custom events).
func (n *Network) Sim() *Sim { return n.sim }

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Dropped returns how many messages were addressed to unbound nodes.
func (n *Network) Dropped() int { return n.dropped }

// Send schedules delivery of payload from AS from to AS to after the
// topology's one-way latency. Messages to unbound nodes are counted and
// dropped (a crashed router, §III-D3). With a fault plan installed
// (SetFaults), loss, partitions and a crashed sender kill the message at
// send time, extra delay and jitter stretch the latency, and a crashed
// receiver loses it at delivery time.
func (n *Network) Send(from, to int, payload interface{}) error {
	if from < 0 || from >= len(n.nodes) || to < 0 || to >= len(n.nodes) {
		return fmt.Errorf("simnet: send %d→%d out of range", from, to)
	}
	delay := n.oracle.OneWay(from, to)
	if n.faults != nil {
		extra, drop := n.faults.outcome(n.sim.now, from, to)
		if drop {
			return nil
		}
		delay += extra
	}
	return n.sim.After(delay, func() {
		if n.faults != nil && n.faults.down(to, n.sim.now) {
			n.faults.stats.CrashDrops++
			return
		}
		h := n.nodes[to]
		if h == nil {
			n.dropped++
			return
		}
		h.HandleMessage(n, Message{From: from, To: to, Payload: payload})
	})
}
