// Fault injection for the discrete-event network: a declarative,
// seedable plan of packet loss, added delay and jitter, node crash
// windows, and AS-level partitions. The plan is compiled once and
// consulted on every Send, so a run with a fixed seed and fixed event
// order stays bit-reproducible — the property every determinism test in
// internal/experiments leans on.
//
// The fault model follows §III-D3 of the paper: a crashed mapping node
// consumes requests without answering (the querier's timeout is its only
// signal), a lossy or partitioned link looks identical to a crash from
// the sender's side, and recovery is silent (late messages to a revived
// node are delivered).
package simnet

import (
	"fmt"
	"math/rand"
	"sort"

	"dmap/internal/metrics"
)

// CrashWindow takes one node down for [From, Until). Until ≤ From means
// the node never recovers. Messages already in flight toward the node
// are lost if they would arrive inside the window (delivery-time check);
// messages sent by a crashed node are suppressed at send time.
type CrashWindow struct {
	Node  int
	From  Time
	Until Time
}

// Partition splits the network for [From, Until): nodes in Group cannot
// exchange messages with nodes outside it while the window is open.
// Until ≤ From means the partition never heals.
type Partition struct {
	From  Time
	Until Time
	Group []int
}

// LinkFault overrides the plan's global loss/delay parameters for the
// directed link From→To.
type LinkFault struct {
	From, To   int
	Loss       float64
	ExtraDelay Time
	Jitter     Time
}

// FaultPlan declares every fault a run injects. The zero value injects
// nothing. Plans are compiled by Network.SetFaults; mutate and re-set to
// change faults mid-run (rarely needed — windows already express
// schedules).
type FaultPlan struct {
	// Seed feeds the loss and jitter PRNG. Two runs with equal plans,
	// equal seeds and equal send orders draw identical samples.
	Seed int64
	// Loss is the global per-message drop probability in [0, 1).
	Loss float64
	// ExtraDelay is added to every message's one-way latency.
	ExtraDelay Time
	// Jitter adds a uniform draw from [0, Jitter] per message.
	Jitter Time
	// Links lists per-link overrides (loss/delay/jitter replace the
	// globals for that directed link).
	Links []LinkFault
	// Crashes schedules node downtime.
	Crashes []CrashWindow
	// Partitions schedules connectivity splits.
	Partitions []Partition
}

// Validate rejects structurally impossible plans early, before a
// long run silently misbehaves.
func (p *FaultPlan) Validate(numNodes int) error {
	if p.Loss < 0 || p.Loss >= 1 {
		return fmt.Errorf("simnet: loss %g out of [0,1)", p.Loss)
	}
	if p.ExtraDelay < 0 || p.Jitter < 0 {
		return fmt.Errorf("simnet: negative delay or jitter")
	}
	for _, l := range p.Links {
		if l.From < 0 || l.From >= numNodes || l.To < 0 || l.To >= numNodes {
			return fmt.Errorf("simnet: link fault %d→%d out of range", l.From, l.To)
		}
		if l.Loss < 0 || l.Loss >= 1 || l.ExtraDelay < 0 || l.Jitter < 0 {
			return fmt.Errorf("simnet: link fault %d→%d has invalid parameters", l.From, l.To)
		}
	}
	for _, c := range p.Crashes {
		if c.Node < 0 || c.Node >= numNodes {
			return fmt.Errorf("simnet: crash window for node %d out of range", c.Node)
		}
	}
	for _, part := range p.Partitions {
		for _, n := range part.Group {
			if n < 0 || n >= numNodes {
				return fmt.Errorf("simnet: partition member %d out of range", n)
			}
		}
	}
	return nil
}

// FaultStats counts messages the fault plan destroyed, by cause.
type FaultStats struct {
	// Lost counts random per-message loss (global or per-link).
	Lost int
	// CrashDrops counts messages suppressed because the sender was down
	// at send time or the receiver was down at delivery time.
	CrashDrops int
	// PartitionDrops counts messages cut by an open partition.
	PartitionDrops int
}

// Total returns all fault-induced drops.
func (s FaultStats) Total() int { return s.Lost + s.CrashDrops + s.PartitionDrops }

// faultState is a compiled FaultPlan: crash windows sorted per node,
// partition membership as bitsets, and one PRNG stream drawn in event
// order (the sim is single-threaded, so the order is deterministic).
type faultState struct {
	plan    FaultPlan
	rng     *rand.Rand
	link    map[[2]int]LinkFault
	crashes map[int][]CrashWindow
	parts   []compiledPartition
	stats   FaultStats
}

type compiledPartition struct {
	from, until Time
	member      map[int]bool
}

func compileFaults(p FaultPlan) *faultState {
	st := &faultState{
		plan:    p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		link:    make(map[[2]int]LinkFault, len(p.Links)),
		crashes: make(map[int][]CrashWindow),
	}
	for _, l := range p.Links {
		st.link[[2]int{l.From, l.To}] = l
	}
	for _, c := range p.Crashes {
		st.crashes[c.Node] = append(st.crashes[c.Node], c)
	}
	for _, ws := range st.crashes {
		sort.Slice(ws, func(i, j int) bool { return ws[i].From < ws[j].From })
	}
	for _, part := range p.Partitions {
		cp := compiledPartition{from: part.From, until: part.Until, member: make(map[int]bool, len(part.Group))}
		for _, n := range part.Group {
			cp.member[n] = true
		}
		st.parts = append(st.parts, cp)
	}
	return st
}

// down reports whether node is inside a crash window at time t.
func (st *faultState) down(node int, t Time) bool {
	for _, w := range st.crashes[node] {
		if t < w.From {
			return false // windows sorted by start; later ones cannot cover t
		}
		if w.Until <= w.From || t < w.Until {
			return true
		}
	}
	return false
}

// severed reports whether an open partition separates from and to at t.
func (st *faultState) severed(from, to int, t Time) bool {
	for _, p := range st.parts {
		if t < p.from || (p.until > p.from && t >= p.until) {
			continue
		}
		if p.member[from] != p.member[to] {
			return true
		}
	}
	return false
}

// outcome is evaluated at send time: whether the message dies before
// scheduling and, if not, how much extra delay it picks up. The PRNG is
// always advanced in the same pattern (one draw per configured loss, one
// per configured jitter) so outcomes depend only on the plan and the
// deterministic send order.
func (st *faultState) outcome(now Time, from, to int) (extra Time, drop bool) {
	loss, extraDelay, jitter := st.plan.Loss, st.plan.ExtraDelay, st.plan.Jitter
	if lf, ok := st.link[[2]int{from, to}]; ok {
		loss, extraDelay, jitter = lf.Loss, lf.ExtraDelay, lf.Jitter
	}
	if st.down(from, now) {
		st.stats.CrashDrops++
		return 0, true
	}
	if st.severed(from, to, now) {
		st.stats.PartitionDrops++
		return 0, true
	}
	if loss > 0 && st.rng.Float64() < loss {
		st.stats.Lost++
		return 0, true
	}
	extra = extraDelay
	if jitter > 0 {
		extra += Time(st.rng.Int63n(int64(jitter) + 1))
	}
	return extra, false
}

// SetFaults installs (or, with nil, removes) a fault plan. The plan is
// copied and compiled; later mutation of the caller's value has no
// effect. Installing a plan resets fault statistics.
func (n *Network) SetFaults(p *FaultPlan) error {
	if p == nil {
		n.faults = nil
		return nil
	}
	if err := p.Validate(len(n.nodes)); err != nil {
		return err
	}
	n.faults = compileFaults(*p)
	return nil
}

// FaultStats returns drop counts by cause (zero value when no plan is
// installed).
func (n *Network) FaultStats() FaultStats {
	if n.faults == nil {
		return FaultStats{}
	}
	return n.faults.stats
}

// PublishMetrics copies the current fault statistics (and the unbound-
// node drop count) into reg as gauges under prefix (e.g. "simnet" →
// "simnet.lost"). The sim is single-threaded, so this snapshot-style
// publication — from the driving goroutine, typically after Run — is
// how fault accounting reaches a concurrently scraped registry.
func (n *Network) PublishMetrics(reg *metrics.Registry, prefix string) {
	st := n.FaultStats()
	reg.Gauge(prefix + ".lost").Set(float64(st.Lost))
	reg.Gauge(prefix + ".crash_drops").Set(float64(st.CrashDrops))
	reg.Gauge(prefix + ".partition_drops").Set(float64(st.PartitionDrops))
	reg.Gauge(prefix + ".fault_drops").Set(float64(st.Total()))
	reg.Gauge(prefix + ".unbound_drops").Set(float64(n.Dropped()))
}

// NodeDown reports whether the installed fault plan has node inside a
// crash window at time t. Protocol layers use it to model a crashed
// process (no local reads either), not just a dead NIC.
func (n *Network) NodeDown(node int, t Time) bool {
	if n.faults == nil || node < 0 || node >= len(n.nodes) {
		return false
	}
	return n.faults.down(node, t)
}
