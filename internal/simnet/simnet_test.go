package simnet

import (
	"testing"

	"dmap/internal/topology"
)

func TestSchedulingOrder(t *testing.T) {
	s := New()
	var got []int
	if err := s.At(30, func() { got = append(got, 3) }); err != nil {
		t.Fatal(err)
	}
	if err := s.At(10, func() { got = append(got, 1) }); err != nil {
		t.Fatal(err)
	}
	if err := s.At(20, func() { got = append(got, 2) }); err != nil {
		t.Fatal(err)
	}
	if n := s.Run(0); n != 3 {
		t.Fatalf("Run executed %d events", n)
	}
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order %v", got)
	}
	if s.Now() != 30 {
		t.Errorf("Now = %d, want 30", s.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.At(5, func() { got = append(got, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events reordered: %v", got)
		}
	}
}

func TestSchedulingInPastRejected(t *testing.T) {
	s := New()
	if err := s.At(10, func() {}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if err := s.At(5, func() {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
	if err := s.After(-1, func() {}); err == nil {
		t.Error("negative delay should fail")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired []Time
	if err := s.At(10, func() {
		fired = append(fired, s.Now())
		if err := s.After(5, func() { fired = append(fired, s.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := New()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		_ = s.After(1, reschedule)
	}
	_ = s.After(1, reschedule)
	if n := s.Run(100); n != 100 {
		t.Errorf("Run(100) executed %d", n)
	}
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if s.Pending() == 0 {
		t.Error("reschedule chain should still be pending")
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		_ = s.At(at, func() { fired = append(fired, at) })
	}
	if n := s.RunUntil(12); n != 2 {
		t.Errorf("RunUntil executed %d, want 2", n)
	}
	if s.Now() != 12 {
		t.Errorf("Now = %d, want 12 (clock advanced to deadline)", s.Now())
	}
	s.Run(0)
	if len(fired) != 4 {
		t.Errorf("fired %v", fired)
	}
}

// pairOracle returns fixed latencies: 100 µs between distinct nodes,
// 10 µs within a node.
type pairOracle struct{}

func (pairOracle) OneWay(src, dst int) topology.Micros {
	if src == dst {
		return 10
	}
	return 100
}

func TestNetworkDelivery(t *testing.T) {
	s := New()
	net, err := NewNetwork(s, pairOracle{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	type rx struct {
		at  Time
		msg Message
	}
	var got []rx
	for i := 0; i < 3; i++ {
		if err := net.Bind(i, HandlerFunc(func(n *Network, m Message) {
			got = append(got, rx{at: s.Now(), msg: m})
		})); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.Send(0, 1, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(2, 2, "self"); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if len(got) != 2 {
		t.Fatalf("received %d messages", len(got))
	}
	// Self-message (10 µs) arrives before the remote one (100 µs).
	if got[0].msg.Payload != "self" || got[0].at != 10 {
		t.Errorf("first delivery = %+v", got[0])
	}
	if got[1].msg.Payload != "hello" || got[1].at != 100 {
		t.Errorf("second delivery = %+v", got[1])
	}
	if got[1].msg.From != 0 || got[1].msg.To != 1 {
		t.Errorf("message metadata = %+v", got[1].msg)
	}
}

func TestNetworkValidation(t *testing.T) {
	s := New()
	if _, err := NewNetwork(nil, pairOracle{}, 1); err == nil {
		t.Error("nil sim should fail")
	}
	if _, err := NewNetwork(s, nil, 1); err == nil {
		t.Error("nil oracle should fail")
	}
	if _, err := NewNetwork(s, pairOracle{}, 0); err == nil {
		t.Error("0 nodes should fail")
	}
	net, err := NewNetwork(s, pairOracle{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Bind(5, nil); err == nil {
		t.Error("out-of-range bind should fail")
	}
	if err := net.Send(0, 7, nil); err == nil {
		t.Error("out-of-range send should fail")
	}
}

func TestNetworkDropsToUnbound(t *testing.T) {
	s := New()
	net, err := NewNetwork(s, pairOracle{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "void"); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if net.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", net.Dropped())
	}
}
