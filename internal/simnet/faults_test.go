package simnet

import (
	"testing"

	"dmap/internal/metrics"
)

// deliverAll binds counting handlers on every node of a fresh network.
func faultNet(t *testing.T, n int) (*Sim, *Network, []int) {
	t.Helper()
	s := New()
	net, err := NewNetwork(s, pairOracle{}, n)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		if err := net.Bind(i, HandlerFunc(func(*Network, Message) { got[i]++ })); err != nil {
			t.Fatal(err)
		}
	}
	return s, net, got
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []FaultPlan{
		{Loss: -0.1},
		{Loss: 1.0},
		{ExtraDelay: -1},
		{Jitter: -1},
		{Links: []LinkFault{{From: 0, To: 9}}},
		{Links: []LinkFault{{From: 0, To: 1, Loss: 2}}},
		{Crashes: []CrashWindow{{Node: -1}}},
		{Partitions: []Partition{{Group: []int{7}}}},
	}
	_, net, _ := faultNet(t, 3)
	for i, p := range cases {
		p := p
		if err := net.SetFaults(&p); err == nil {
			t.Errorf("case %d: invalid plan accepted: %+v", i, p)
		}
	}
	if err := net.SetFaults(&FaultPlan{Loss: 0.5, Jitter: 10}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if err := net.SetFaults(nil); err != nil {
		t.Fatalf("removing plan: %v", err)
	}
}

func TestLossIsSeededAndDeterministic(t *testing.T) {
	run := func(seed int64) (delivered int, stats FaultStats) {
		s, net, got := faultNet(t, 2)
		if err := net.SetFaults(&FaultPlan{Seed: seed, Loss: 0.3}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if err := net.Send(0, 1, i); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(0)
		return got[1], net.FaultStats()
	}
	d1, st1 := run(42)
	d2, st2 := run(42)
	if d1 != d2 || st1 != st2 {
		t.Errorf("same seed diverged: %d/%+v vs %d/%+v", d1, st1, d2, st2)
	}
	if st1.Lost == 0 || d1 == 0 {
		t.Errorf("expected both losses and deliveries, got lost=%d delivered=%d", st1.Lost, d1)
	}
	if d1+st1.Lost != 1000 {
		t.Errorf("delivered %d + lost %d != 1000", d1, st1.Lost)
	}
	// A 30% loss rate over 1000 sends lands nowhere near the tails.
	if st1.Lost < 200 || st1.Lost > 400 {
		t.Errorf("lost %d of 1000 at p=0.3", st1.Lost)
	}
	d3, _ := run(43)
	if d3 == d1 {
		t.Log("different seeds happened to deliver the same count (possible but unlikely)")
	}
}

func TestExtraDelayAndJitterStretchLatency(t *testing.T) {
	s, net, got := faultNet(t, 2)
	if err := net.SetFaults(&FaultPlan{Seed: 7, ExtraDelay: 500, Jitter: 100}); err != nil {
		t.Fatal(err)
	}
	var arrival Time
	if err := net.Bind(1, HandlerFunc(func(*Network, Message) { arrival = s.Now() })); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 1, "x"); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	_ = got
	// Base pairOracle latency is 100 µs; the plan adds 500 + [0, 100].
	if arrival < 600 || arrival > 700 {
		t.Errorf("arrival at %d, want within [600, 700]", arrival)
	}
}

func TestCrashWindowDropsAndRecovers(t *testing.T) {
	s, net, got := faultNet(t, 2)
	if err := net.SetFaults(&FaultPlan{
		Crashes: []CrashWindow{{Node: 1, From: 1000, Until: 5000}},
	}); err != nil {
		t.Fatal(err)
	}
	// Delivered before the window opens (sent at 0, arrives at 100).
	if err := net.Send(0, 1, "early"); err != nil {
		t.Fatal(err)
	}
	// Sent before the window but arriving inside it: lost in flight.
	if err := s.At(950, func() { _ = net.Send(0, 1, "in-flight") }); err != nil {
		t.Fatal(err)
	}
	// Sent inside the window: receiver down at delivery too.
	if err := s.At(2000, func() { _ = net.Send(0, 1, "down") }); err != nil {
		t.Fatal(err)
	}
	// Sent by the crashed node: suppressed at send time.
	if err := s.At(2000, func() { _ = net.Send(1, 0, "from-dead") }); err != nil {
		t.Fatal(err)
	}
	// After recovery: delivered again.
	if err := s.At(5000, func() { _ = net.Send(0, 1, "late") }); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if got[1] != 2 {
		t.Errorf("node 1 received %d messages, want 2 (early + late)", got[1])
	}
	if got[0] != 0 {
		t.Errorf("node 0 received %d messages from a crashed sender", got[0])
	}
	if st := net.FaultStats(); st.CrashDrops != 3 {
		t.Errorf("crash drops = %d, want 3", st.CrashDrops)
	}
	if !net.NodeDown(1, 1000) || net.NodeDown(1, 5000) || net.NodeDown(1, 999) {
		t.Error("NodeDown window edges wrong")
	}
}

func TestCrashWindowForever(t *testing.T) {
	_, net, _ := faultNet(t, 2)
	if err := net.SetFaults(&FaultPlan{Crashes: []CrashWindow{{Node: 0, From: 10}}}); err != nil {
		t.Fatal(err)
	}
	if net.NodeDown(0, 9) {
		t.Error("down before window")
	}
	if !net.NodeDown(0, 1<<40) {
		t.Error("Until ≤ From should mean forever")
	}
}

func TestPartitionSeversGroups(t *testing.T) {
	s, net, got := faultNet(t, 4)
	if err := net.SetFaults(&FaultPlan{
		Partitions: []Partition{{From: 0, Until: 1000, Group: []int{0, 1}}},
	}); err != nil {
		t.Fatal(err)
	}
	// Within a side: delivered. Across sides: dropped.
	if err := net.Send(0, 1, "same-side"); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(2, 3, "other-side"); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(0, 2, "cross"); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(3, 1, "cross-back"); err != nil {
		t.Fatal(err)
	}
	// After healing, cross traffic flows.
	if err := s.At(1000, func() { _ = net.Send(0, 2, "healed") }); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if got[1] != 1 || got[3] != 1 || got[2] != 1 {
		t.Errorf("deliveries = %v, want node1=1 node2=1 node3=1", got)
	}
	if st := net.FaultStats(); st.PartitionDrops != 2 {
		t.Errorf("partition drops = %d, want 2", st.PartitionDrops)
	}
}

func TestPerLinkFaultOverridesGlobals(t *testing.T) {
	s, net, got := faultNet(t, 3)
	// Global: lossless. Link 0→1: always... p<1 required, so 0.999
	// effectively kills it with the chosen seed; instead use delay to
	// verify the override path deterministically.
	if err := net.SetFaults(&FaultPlan{
		ExtraDelay: 10,
		Links:      []LinkFault{{From: 0, To: 1, ExtraDelay: 9000}},
	}); err != nil {
		t.Fatal(err)
	}
	var at1, at2 Time
	_ = net.Bind(1, HandlerFunc(func(*Network, Message) { at1 = s.Now() }))
	_ = net.Bind(2, HandlerFunc(func(*Network, Message) { at2 = s.Now() }))
	_ = net.Send(0, 1, "slow")
	_ = net.Send(0, 2, "fast")
	s.Run(0)
	_ = got
	if at1 != 9100 {
		t.Errorf("overridden link arrived at %d, want 9100", at1)
	}
	if at2 != 110 {
		t.Errorf("global link arrived at %d, want 110", at2)
	}
}

func TestSetFaultsResetsStats(t *testing.T) {
	s, net, _ := faultNet(t, 2)
	if err := net.SetFaults(&FaultPlan{Crashes: []CrashWindow{{Node: 1, From: 0}}}); err != nil {
		t.Fatal(err)
	}
	_ = net.Send(0, 1, "x")
	s.Run(0)
	if st := net.FaultStats(); st.CrashDrops != 1 {
		t.Fatalf("crash drops = %d", st.CrashDrops)
	}
	if err := net.SetFaults(&FaultPlan{}); err != nil {
		t.Fatal(err)
	}
	if st := net.FaultStats(); st != (FaultStats{}) {
		t.Errorf("stats not reset: %+v", st)
	}
}

func TestPublishMetrics(t *testing.T) {
	sim, net, _ := faultNet(t, 3)
	if err := net.SetFaults(&FaultPlan{
		Crashes: []CrashWindow{{Node: 1, From: 0, Until: 10_000}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(1, 0, "dropped: sender down"); err != nil {
		t.Fatal(err)
	}
	sim.Run(1000)

	reg := metrics.NewRegistry()
	net.PublishMetrics(reg, "simnet")
	snap := reg.Snapshot()
	if got := snap.Gauges["simnet.crash_drops"]; got != 1 {
		t.Errorf("simnet.crash_drops = %g, want 1", got)
	}
	if got := snap.Gauges["simnet.fault_drops"]; got != 1 {
		t.Errorf("simnet.fault_drops = %g, want 1", got)
	}
	if got := snap.Gauges["simnet.lost"]; got != 0 {
		t.Errorf("simnet.lost = %g, want 0", got)
	}
}
