package topology

import (
	"fmt"
	"sort"
	"strings"
)

// GraphStats summarizes a generated topology against the aggregates of
// the DIMES dataset it substitutes for (§IV-B1), so any run can document
// how faithful its world is.
type GraphStats struct {
	NumAS    int
	NumLinks int

	// Degree distribution.
	MeanDegree   float64
	MaxDegree    int
	Degree1Count int // Jellyfish "hang" nodes

	// Latency distributions in milliseconds.
	MedianLinkMs  float64
	P95LinkMs     float64
	MedianIntraMs float64
	P95IntraMs    float64
	MaxIntraMs    float64

	// Jellyfish decomposition.
	CoreSize       int
	NumLayers      int
	LayerFractions []float64

	// Geography.
	NumRegions          int
	SameRegionLinkShare float64
}

// ComputeStats gathers the summary (O(V + E) plus the layer
// decomposition's BFS).
func ComputeStats(g *Graph) GraphStats {
	st := GraphStats{
		NumAS:    g.NumAS(),
		NumLinks: g.NumLinks(),
	}

	linkLats := make([]float64, 0, g.NumLinks())
	intraLats := make([]float64, 0, g.NumAS())
	regions := make(map[int]bool)
	sameRegion := 0
	for as := 0; as < g.NumAS(); as++ {
		deg := g.Degree(as)
		if deg > st.MaxDegree {
			st.MaxDegree = deg
		}
		if deg == 1 {
			st.Degree1Count++
		}
		intraLats = append(intraLats, g.Intra(as).Millis())
		regions[g.Region(as)] = true
		g.Neighbors(as, func(to int, lat Micros) {
			if to < as {
				return
			}
			linkLats = append(linkLats, lat.Millis())
			if g.Region(as) == g.Region(to) {
				sameRegion++
			}
		})
	}
	st.MeanDegree = 2 * float64(g.NumLinks()) / float64(g.NumAS())
	st.NumRegions = len(regions)
	if g.NumLinks() > 0 {
		st.SameRegionLinkShare = float64(sameRegion) / float64(g.NumLinks())
	}

	sort.Float64s(linkLats)
	sort.Float64s(intraLats)
	st.MedianLinkMs = percentileOf(linkLats, 50)
	st.P95LinkMs = percentileOf(linkLats, 95)
	st.MedianIntraMs = percentileOf(intraLats, 50)
	st.P95IntraMs = percentileOf(intraLats, 95)
	if n := len(intraLats); n > 0 {
		st.MaxIntraMs = intraLats[n-1]
	}

	jf := DecomposeJellyfish(g)
	st.CoreSize = len(jf.Core)
	st.NumLayers = jf.NumLayers()
	st.LayerFractions = jf.LayerFractions
	return st
}

// percentileOf reads the p-th percentile from a sorted slice.
func percentileOf(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// String renders the summary next to the DIMES reference values.
func (s GraphStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ASs: %d (paper: 26424), links: %d (paper: 90267)\n", s.NumAS, s.NumLinks)
	fmt.Fprintf(&b, "degree: mean %.2f, max %d, degree-1 hangs %d (%.1f%%)\n",
		s.MeanDegree, s.MaxDegree, s.Degree1Count, 100*float64(s.Degree1Count)/float64(s.NumAS))
	fmt.Fprintf(&b, "link latency: median %.1f ms, p95 %.1f ms\n", s.MedianLinkMs, s.P95LinkMs)
	fmt.Fprintf(&b, "intra-AS latency: median %.1f ms (paper: 3.5), p95 %.1f ms, max %.0f ms (paper tail: 2300)\n",
		s.MedianIntraMs, s.P95IntraMs, s.MaxIntraMs)
	fmt.Fprintf(&b, "jellyfish: core %d, %d layers, fractions", s.CoreSize, s.NumLayers)
	for _, r := range s.LayerFractions {
		fmt.Fprintf(&b, " %.3f", r)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "regions: %d, same-region links %.1f%%\n", s.NumRegions, 100*s.SameRegionLinkShare)
	return b.String()
}
