package topology

import (
	"testing"
)

func TestRegionsAssigned(t *testing.T) {
	g := testGraph(t, 3000, 12)
	cfg := SmallGenConfig(3000, 12)
	counts := make(map[int]int)
	for i := 0; i < g.NumAS(); i++ {
		r := g.Region(i)
		if r < 0 || r >= cfg.NumRegions {
			t.Fatalf("AS %d region %d out of range", i, r)
		}
		counts[r]++
	}
	if len(counts) != cfg.NumRegions {
		t.Errorf("only %d/%d regions populated", len(counts), cfg.NumRegions)
	}
	// Region weights are 1/(i+1)-skewed: region 0 must dominate region
	// NumRegions-1.
	if counts[0] <= counts[cfg.NumRegions-1] {
		t.Errorf("region sizes not skewed: %v", counts)
	}
}

func TestRegionalAttachmentBias(t *testing.T) {
	g := testGraph(t, 3000, 13)
	same, cross := 0, 0
	for as := 0; as < g.NumAS(); as++ {
		g.Neighbors(as, func(to int, _ Micros) {
			if to < as {
				return // count each undirected link once
			}
			if g.Region(as) == g.Region(to) {
				same++
			} else {
				cross++
			}
		})
	}
	total := same + cross
	// With SameRegionBias = 0.75, intra-region links must clearly
	// dominate what region sizes alone would produce. A null model with
	// the skewed region weights gives ≈26% same-region link endpoints;
	// require well above that.
	if frac := float64(same) / float64(total); frac < 0.5 {
		t.Errorf("same-region link fraction = %.2f, want > 0.5 (bias active)", frac)
	}
}

func TestCrossRegionLinksPayPropagation(t *testing.T) {
	g := testGraph(t, 3000, 14)
	intraCol := NewLatencySampler()
	crossCol := NewLatencySampler()
	for as := 0; as < g.NumAS(); as++ {
		g.Neighbors(as, func(to int, lat Micros) {
			if to < as {
				return
			}
			if g.Region(as) == g.Region(to) {
				intraCol.add(lat)
			} else {
				crossCol.add(lat)
			}
		})
	}
	if crossCol.n == 0 || intraCol.n == 0 {
		t.Fatal("need both link kinds")
	}
	if crossCol.mean() < 1.5*intraCol.mean() {
		t.Errorf("cross-region links (%.1f ms) not clearly slower than intra (%.1f ms)",
			crossCol.mean()/1000, intraCol.mean()/1000)
	}
}

// NewLatencySampler is a minimal mean accumulator for tests.
type latencySampler struct {
	sum Micros
	n   int
}

func NewLatencySampler() *latencySampler { return &latencySampler{} }

func (s *latencySampler) add(v Micros) {
	s.sum += v
	s.n++
}

func (s *latencySampler) mean() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

func TestMinOfKReplicasBenefitsFromGeography(t *testing.T) {
	// The property the regions exist for: picking the best of 5 random
	// ASs beats 1 random AS by a wide margin at the tail.
	g := testGraph(t, 2000, 15)
	dist := make([]Micros, g.NumAS())
	g.Dijkstra(100, dist)

	var single, best5 float64
	const trials = 500
	rngIdx := 0
	next := func() int {
		rngIdx = (rngIdx*1103515245 + 12345) & 0x7FFFFFFF
		return rngIdx % g.NumAS()
	}
	for i := 0; i < trials; i++ {
		t1 := g.RTT(100, next(), dist)
		single += t1.Millis()
		min := InfMicros
		for j := 0; j < 5; j++ {
			if r := g.RTT(100, next(), dist); r < min {
				min = r
			}
		}
		best5 += min.Millis()
	}
	if best5 >= single*0.85 {
		t.Errorf("min-of-5 (%.1f) should beat single (%.1f) clearly",
			best5/trials, single/trials)
	}
}
