// Package topology models the AS-level Internet that DMap runs over: a
// graph of autonomous systems with per-link inter-AS latencies, per-AS
// intra-AS latencies, and per-AS end-node populations.
//
// It substitutes for the DIMES measurement dataset used in the paper
// (§IV-B1, [25]): a connectivity graph of 26,424 ASs and 90,267 links,
// median intra-AS latency 3.5 ms with a heavy tail (including rare stubs
// with multi-second access latency, like the paper's AS 23951), and
// end-node counts used to weight where inserts and queries originate.
//
// Latencies are carried as integer microseconds to keep arithmetic exact
// and allocation-free on the simulator hot path.
package topology

import (
	"fmt"
	"math"
	"time"
)

// Micros is a latency in integer microseconds.
type Micros int64

// Duration converts m to a time.Duration.
func (m Micros) Duration() time.Duration { return time.Duration(m) * time.Microsecond }

// Millis returns m in floating-point milliseconds (for reporting).
func (m Micros) Millis() float64 { return float64(m) / 1000 }

// MicrosFromMillis converts floating-point milliseconds to Micros.
func MicrosFromMillis(ms float64) Micros { return Micros(math.Round(ms * 1000)) }

type edge struct {
	to  int32
	lat Micros
}

// Graph is an undirected AS-level topology. AS indices are dense in
// [0, NumAS), shared with internal/prefixtable. Graph is immutable after
// construction and safe for concurrent readers.
type Graph struct {
	adj      [][]edge
	intra    []Micros  // per-AS intra-AS one-way latency
	endNodes []float64 // per-AS end-node population (sampling weight)
	region   []int16   // per-AS geographic region
	numLinks int
}

// NewGraph builds an empty graph with n ASs; links are added by the
// generator. intra latencies default to zero.
func newGraph(n int) *Graph {
	return &Graph{
		adj:      make([][]edge, n),
		intra:    make([]Micros, n),
		endNodes: make([]float64, n),
		region:   make([]int16, n),
	}
}

// Region returns the geographic region index of as.
func (g *Graph) Region(as int) int { return int(g.region[as]) }

// NumAS returns the number of autonomous systems.
func (g *Graph) NumAS() int { return len(g.adj) }

// NumLinks returns the number of undirected inter-AS links.
func (g *Graph) NumLinks() int { return g.numLinks }

// Degree returns the number of inter-AS links at as.
func (g *Graph) Degree(as int) int { return len(g.adj[as]) }

// Intra returns the one-way intra-AS latency of as.
func (g *Graph) Intra(as int) Micros { return g.intra[as] }

// EndNodes returns the end-node population weight of as.
func (g *Graph) EndNodes(as int) float64 { return g.endNodes[as] }

// EndNodeWeights returns the per-AS end-node weights (shared slice; do not
// modify).
func (g *Graph) EndNodeWeights() []float64 { return g.endNodes }

// Neighbors calls fn for every link incident to as.
func (g *Graph) Neighbors(as int, fn func(to int, lat Micros)) {
	for _, e := range g.adj[as] {
		fn(int(e.to), e.lat)
	}
}

// hasEdge reports whether an a–b link exists (scan is fine: degrees are
// small except in the core, and this is generator-side only).
func (g *Graph) hasEdge(a, b int) bool {
	x, y := a, b
	if len(g.adj[a]) > len(g.adj[b]) {
		x, y = b, a
	}
	for _, e := range g.adj[x] {
		if int(e.to) == y {
			return true
		}
	}
	return false
}

// addEdge inserts an undirected link; duplicate and self links are
// rejected with an error.
func (g *Graph) addEdge(a, b int, lat Micros) error {
	if a == b {
		return fmt.Errorf("topology: self link at AS %d", a)
	}
	if g.hasEdge(a, b) {
		return fmt.Errorf("topology: duplicate link %d–%d", a, b)
	}
	g.adj[a] = append(g.adj[a], edge{to: int32(b), lat: lat})
	g.adj[b] = append(g.adj[b], edge{to: int32(a), lat: lat})
	g.numLinks++
	return nil
}

// InfMicros marks an unreachable AS in distance vectors.
const InfMicros = Micros(math.MaxInt64)

// Dijkstra fills dist with the minimum inter-AS path latency (sum of link
// latencies, excluding endpoint intra-AS terms) from src to every AS.
// dist must have length NumAS. Unreachable ASs get InfMicros.
func (g *Graph) Dijkstra(src int, dist []Micros) {
	if len(dist) != g.NumAS() {
		panic(fmt.Sprintf("topology: Dijkstra dist length %d, want %d", len(dist), g.NumAS()))
	}
	for i := range dist {
		dist[i] = InfMicros
	}
	dist[src] = 0
	// Hand-rolled binary heap: container/heap's interface{} boxing would
	// allocate per push, and Dijkstra dominates every figure-scale run.
	pq := distHeap{items: []distItem{{as: int32(src), d: 0}}}
	for len(pq.items) > 0 {
		top := pq.pop()
		if top.d > dist[top.as] {
			continue // stale entry
		}
		for _, e := range g.adj[top.as] {
			if nd := top.d + e.lat; nd < dist[e.to] {
				dist[e.to] = nd
				pq.push(distItem{as: e.to, d: nd})
			}
		}
	}
}

// HopBFS fills hops with the minimum AS-hop count from src to every AS
// (least-hop-count replica selection, §IV-B2a). hops must have length
// NumAS. Unreachable ASs get -1.
func (g *Graph) HopBFS(src int, hops []int32) {
	if len(hops) != g.NumAS() {
		panic(fmt.Sprintf("topology: HopBFS hops length %d, want %d", len(hops), g.NumAS()))
	}
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[cur] {
			if hops[e.to] < 0 {
				hops[e.to] = hops[cur] + 1
				queue = append(queue, e.to)
			}
		}
	}
}

// OneWay returns the end-to-end one-way latency from a requester in AS s
// to a server in AS t: half the intra-AS latency at each end plus the
// inter-AS path, matching the latency model in DESIGN.md. dist must be a
// Dijkstra vector computed from s (or from t; the metric is symmetric).
func (g *Graph) OneWay(s, t int, dist []Micros) Micros {
	if s == t {
		return g.intra[s]
	}
	d := dist[t]
	if d == InfMicros {
		return InfMicros
	}
	return d + g.intra[s]/2 + g.intra[t]/2
}

// RTT returns the round-trip time for a request from AS s served at AS t.
func (g *Graph) RTT(s, t int, dist []Micros) Micros {
	ow := g.OneWay(s, t, dist)
	if ow == InfMicros {
		return InfMicros
	}
	return 2 * ow
}

type distItem struct {
	as int32
	d  Micros
}

// distHeap is a minimal typed binary min-heap on d.
type distHeap struct {
	items []distItem
}

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].d <= h.items[i].d {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.items[l].d < h.items[smallest].d {
			smallest = l
		}
		if r < last && h.items[r].d < h.items[smallest].d {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
