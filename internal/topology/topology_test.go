package topology

import (
	"math"
	"sort"
	"testing"
)

func testGraph(t *testing.T, numAS int, seed int64) *Graph {
	t.Helper()
	g, err := Generate(SmallGenConfig(numAS, seed))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGenerateValidation(t *testing.T) {
	bad := []GenConfig{
		{NumAS: 1, CoreSize: 2, TargetLinks: 100},
		{NumAS: 100, CoreSize: 1, TargetLinks: 400},
		{NumAS: 100, CoreSize: 200, TargetLinks: 400},
		{NumAS: 100, CoreSize: 4, TargetLinks: 10},                      // below connectivity minimum
		{NumAS: 100, CoreSize: 4, TargetLinks: 400, StubFraction: 1.0},  // stub fraction out of range
		{NumAS: 100, CoreSize: 4, TargetLinks: 400, StubFraction: -0.1}, // negative
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected: %+v", i, cfg)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	const n = 2000
	g := testGraph(t, n, 1)
	if g.NumAS() != n {
		t.Fatalf("NumAS = %d, want %d", g.NumAS(), n)
	}
	target := SmallGenConfig(n, 1).TargetLinks
	if got := g.NumLinks(); got < target*8/10 || got > target*12/10 {
		t.Errorf("NumLinks = %d, want within 20%% of %d", got, target)
	}
	// Degrees: positive everywhere (connected), heavy-tailed at the top.
	maxDeg := 0
	for i := 0; i < n; i++ {
		d := g.Degree(i)
		if d == 0 {
			t.Fatalf("AS %d has degree 0", i)
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	avgDeg := 2 * float64(g.NumLinks()) / float64(n)
	if float64(maxDeg) < 8*avgDeg {
		t.Errorf("max degree %d not heavy-tailed vs average %.1f", maxDeg, avgDeg)
	}
}

func TestGenerateConnected(t *testing.T) {
	g := testGraph(t, 1000, 2)
	hops := make([]int32, g.NumAS())
	g.HopBFS(0, hops)
	for i, h := range hops {
		if h < 0 {
			t.Fatalf("AS %d unreachable from AS 0", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g1 := testGraph(t, 500, 7)
	g2 := testGraph(t, 500, 7)
	if g1.NumLinks() != g2.NumLinks() {
		t.Fatalf("link counts differ: %d vs %d", g1.NumLinks(), g2.NumLinks())
	}
	for i := 0; i < g1.NumAS(); i++ {
		if g1.Intra(i) != g2.Intra(i) {
			t.Fatalf("intra latency differs at AS %d", i)
		}
		if g1.Degree(i) != g2.Degree(i) {
			t.Fatalf("degree differs at AS %d", i)
		}
	}
}

func TestIntraLatencyDistribution(t *testing.T) {
	g := testGraph(t, 5000, 3)
	lat := make([]float64, g.NumAS())
	for i := range lat {
		lat[i] = g.Intra(i).Millis()
	}
	sort.Float64s(lat)
	median := lat[len(lat)/2]
	if math.Abs(median-3.5) > 1.0 {
		t.Errorf("median intra-AS latency = %.2f ms, want ≈3.5 ms", median)
	}
	if lat[0] <= 0 {
		t.Errorf("non-positive intra latency %v", lat[0])
	}
}

func TestDijkstraSmallKnownGraph(t *testing.T) {
	// Hand-built diamond: 0–1 (10ms), 0–2 (1ms), 2–1 (2ms), 1–3 (1ms).
	g := newGraph(4)
	mustAdd := func(a, b int, ms float64) {
		t.Helper()
		if err := g.addEdge(a, b, MicrosFromMillis(ms)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(0, 1, 10)
	mustAdd(0, 2, 1)
	mustAdd(2, 1, 2)
	mustAdd(1, 3, 1)

	dist := make([]Micros, 4)
	g.Dijkstra(0, dist)
	want := []float64{0, 3, 1, 4} // via 0–2–1(–3)
	for i, w := range want {
		if dist[i].Millis() != w {
			t.Errorf("dist[%d] = %v ms, want %v", i, dist[i].Millis(), w)
		}
	}

	hops := make([]int32, 4)
	g.HopBFS(0, hops)
	wantHops := []int32{0, 1, 1, 2}
	for i, w := range wantHops {
		if hops[i] != w {
			t.Errorf("hops[%d] = %d, want %d", i, hops[i], w)
		}
	}
}

func TestDijkstraSymmetry(t *testing.T) {
	g := testGraph(t, 300, 5)
	d0 := make([]Micros, g.NumAS())
	d1 := make([]Micros, g.NumAS())
	for _, pair := range [][2]int{{0, 100}, {5, 250}, {42, 43}} {
		g.Dijkstra(pair[0], d0)
		g.Dijkstra(pair[1], d1)
		if d0[pair[1]] != d1[pair[0]] {
			t.Errorf("asymmetric distance %d↔%d: %v vs %v", pair[0], pair[1], d0[pair[1]], d1[pair[0]])
		}
	}
}

func TestDijkstraTriangleInequality(t *testing.T) {
	g := testGraph(t, 200, 6)
	n := g.NumAS()
	da := make([]Micros, n)
	db := make([]Micros, n)
	g.Dijkstra(10, da)
	g.Dijkstra(20, db)
	for v := 0; v < n; v++ {
		if da[v] > da[20]+db[v] {
			t.Fatalf("triangle violated: d(10,%d)=%v > d(10,20)+d(20,%d)=%v",
				v, da[v], v, da[20]+db[v])
		}
	}
}

func TestOneWayAndRTT(t *testing.T) {
	g := newGraph(2)
	if err := g.addEdge(0, 1, MicrosFromMillis(10)); err != nil {
		t.Fatal(err)
	}
	g.intra[0] = MicrosFromMillis(2)
	g.intra[1] = MicrosFromMillis(4)
	dist := make([]Micros, 2)
	g.Dijkstra(0, dist)

	if got := g.OneWay(0, 1, dist); got.Millis() != 13 { // 1 + 10 + 2
		t.Errorf("OneWay = %v ms, want 13", got.Millis())
	}
	if got := g.RTT(0, 1, dist); got.Millis() != 26 {
		t.Errorf("RTT = %v ms, want 26", got.Millis())
	}
	if got := g.OneWay(0, 0, dist); got != g.Intra(0) {
		t.Errorf("same-AS OneWay = %v, want intra %v", got, g.Intra(0))
	}
}

func TestEndNodeWeights(t *testing.T) {
	g := testGraph(t, 1000, 8)
	w := g.EndNodeWeights()
	if len(w) != g.NumAS() {
		t.Fatalf("weights length %d", len(w))
	}
	var max float64
	var sum float64
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("AS %d weight %v", i, v)
		}
		if v > max {
			max = v
		}
		sum += v
	}
	// High-degree ASs should dwarf the average (population skew).
	if max < 20*sum/float64(len(w)) {
		t.Errorf("end-node weights not skewed: max=%v avg=%v", max, sum/float64(len(w)))
	}
}

func TestJellyfishDecomposition(t *testing.T) {
	g := testGraph(t, 2000, 4)
	jf := DecomposeJellyfish(g)

	if len(jf.Core) < 2 {
		t.Fatalf("core size %d, want >= 2", len(jf.Core))
	}
	// Core must be a clique.
	for i := 0; i < len(jf.Core); i++ {
		for j := i + 1; j < len(jf.Core); j++ {
			if !g.hasEdge(jf.Core[i], jf.Core[j]) {
				t.Fatalf("core members %d and %d not adjacent", jf.Core[i], jf.Core[j])
			}
		}
	}
	// Fractions sum to 1 (graph is connected) and layer 0 matches core.
	var sum float64
	for _, f := range jf.LayerFractions {
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("layer fractions sum to %v, want 1", sum)
	}
	if got := jf.LayerFractions[0]; got != float64(len(jf.Core))/float64(g.NumAS()) {
		t.Errorf("layer 0 fraction %v inconsistent with core size %d", got, len(jf.Core))
	}
	for i, l := range jf.LayerOf {
		if l < 0 || l >= jf.NumLayers() {
			t.Fatalf("AS %d layer %d out of range", i, l)
		}
	}
	// The Internet-like graph should be shallow: a handful of layers.
	if jf.NumLayers() > 12 {
		t.Errorf("NumLayers = %d, implausibly deep", jf.NumLayers())
	}
}

func TestDistCache(t *testing.T) {
	g := testGraph(t, 300, 9)
	c, err := NewDistCache(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dist := make([]Micros, g.NumAS())
	g.Dijkstra(5, dist)
	want := g.RTT(5, 200, dist)
	if got := c.RTT(5, 200); got != want {
		t.Errorf("cache RTT = %v, want %v", got, want)
	}
	if got := c.RTT(5, 200); got != want { // hit path
		t.Errorf("cached RTT = %v, want %v", got, want)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	// Evict: fill beyond capacity, then re-query the first source.
	c.OneWay(6, 1)
	c.OneWay(7, 1)
	c.OneWay(5, 1)
	_, misses = c.Stats()
	if misses != 4 {
		t.Errorf("misses = %d, want 4 (LRU evicted source 5)", misses)
	}
	if got := c.RTT(5, 5); got != 2*g.Intra(5) {
		t.Errorf("same-AS RTT = %v, want %v", got, 2*g.Intra(5))
	}
}

func TestDistCacheValidation(t *testing.T) {
	g := testGraph(t, 50, 1)
	if _, err := NewDistCache(g, 0); err == nil {
		t.Error("capacity 0 should be rejected")
	}
}

func TestMicrosConversions(t *testing.T) {
	m := MicrosFromMillis(12.5)
	if m != 12500 {
		t.Errorf("MicrosFromMillis(12.5) = %d", m)
	}
	if m.Millis() != 12.5 {
		t.Errorf("Millis() = %v", m.Millis())
	}
	if m.Duration().Milliseconds() != 12 {
		t.Errorf("Duration() = %v", m.Duration())
	}
}

func TestComputeStats(t *testing.T) {
	g := testGraph(t, 2000, 16)
	st := ComputeStats(g)
	if st.NumAS != 2000 || st.NumLinks != g.NumLinks() {
		t.Errorf("counts: %+v", st)
	}
	wantMean := 2 * float64(g.NumLinks()) / 2000
	if st.MeanDegree != wantMean {
		t.Errorf("mean degree %v, want %v", st.MeanDegree, wantMean)
	}
	if st.Degree1Count == 0 {
		t.Error("expected some degree-1 hangs")
	}
	if st.MedianIntraMs < 2 || st.MedianIntraMs > 5 {
		t.Errorf("median intra %v, want ≈3.5", st.MedianIntraMs)
	}
	if st.P95LinkMs <= st.MedianLinkMs {
		t.Error("p95 link latency must exceed median")
	}
	if st.CoreSize < 2 || st.NumLayers < 2 {
		t.Errorf("jellyfish: %+v", st)
	}
	var fracSum float64
	for _, f := range st.LayerFractions {
		fracSum += f
	}
	if fracSum < 0.999 || fracSum > 1.001 {
		t.Errorf("layer fractions sum %v", fracSum)
	}
	if st.NumRegions != SmallGenConfig(2000, 16).NumRegions {
		t.Errorf("regions = %d", st.NumRegions)
	}
	if st.SameRegionLinkShare < 0.4 {
		t.Errorf("same-region share %v, bias not visible", st.SameRegionLinkShare)
	}
	if st.String() == "" {
		t.Error("String output")
	}
}
