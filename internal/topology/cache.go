package topology

import (
	"container/list"
	"fmt"
	"sync"
)

// DistCache memoizes Dijkstra distance vectors per source AS with LRU
// eviction, bounding memory while serving out-of-order latency queries
// from the event-driven simulator and the parallel evaluation engine.
//
// The cache is sharded by source AS: each shard has its own lock, LRU
// list and slice of the total capacity, so concurrent workers resolving
// different sources never contend on a single mutex (the old
// single-lock design was the hot-path contention point of every
// multi-hop baseline run). It is safe for concurrent use.
type DistCache struct {
	g      *Graph
	shards []distShard
}

// maxDistShards bounds the shard count; capacities smaller than this
// get one slot per shard.
const maxDistShards = 16

type distShard struct {
	mu  sync.Mutex
	cap int
	lru *list.List // of *cacheEntry, front = most recent
	m   map[int]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	src  int
	dist []Micros
}

// NewDistCache returns a cache holding up to capacity distance vectors
// (each NumAS × 8 bytes), split evenly across the shards. capacity must
// be positive.
func NewDistCache(g *Graph, capacity int) (*DistCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("topology: cache capacity must be positive, got %d", capacity)
	}
	numShards := maxDistShards
	if capacity < numShards {
		numShards = capacity
	}
	c := &DistCache{g: g, shards: make([]distShard, numShards)}
	for i := range c.shards {
		// Distribute the capacity exactly: the first capacity%numShards
		// shards take one extra slot.
		sc := capacity / numShards
		if i < capacity%numShards {
			sc++
		}
		c.shards[i] = distShard{
			cap: sc,
			lru: list.New(),
			m:   make(map[int]*list.Element, sc),
		}
	}
	return c, nil
}

// vector returns the Dijkstra vector from src, computing it on miss.
func (c *DistCache) vector(src int) []Micros {
	sh := &c.shards[src%len(c.shards)]
	sh.mu.Lock()
	if el, ok := sh.m[src]; ok {
		sh.lru.MoveToFront(el)
		sh.hits++
		dist := el.Value.(*cacheEntry).dist
		sh.mu.Unlock()
		return dist
	}
	sh.misses++
	sh.mu.Unlock()

	// Compute outside the lock; duplicate work on a race is harmless.
	dist := make([]Micros, c.g.NumAS())
	c.g.Dijkstra(src, dist)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.m[src]; ok { // raced with another filler
		return el.Value.(*cacheEntry).dist
	}
	if sh.lru.Len() >= sh.cap {
		oldest := sh.lru.Back()
		sh.lru.Remove(oldest)
		delete(sh.m, oldest.Value.(*cacheEntry).src)
	}
	sh.m[src] = sh.lru.PushFront(&cacheEntry{src: src, dist: dist})
	return dist
}

// OneWay returns the end-to-end one-way latency from AS s to AS t.
func (c *DistCache) OneWay(s, t int) Micros {
	if s == t {
		return c.g.Intra(s)
	}
	return c.g.OneWay(s, t, c.vector(s))
}

// RTT returns the round-trip latency between AS s and AS t.
func (c *DistCache) RTT(s, t int) Micros {
	ow := c.OneWay(s, t)
	if ow == InfMicros {
		return InfMicros
	}
	return 2 * ow
}

// Stats returns cumulative hit and miss counts summed over all shards.
func (c *DistCache) Stats() (hits, misses int64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}
