package topology

import (
	"container/list"
	"fmt"
	"sync"
)

// DistCache memoizes Dijkstra distance vectors per source AS with LRU
// eviction, bounding memory while serving the event-driven simulator's
// out-of-order latency queries. It is safe for concurrent use.
type DistCache struct {
	g   *Graph
	cap int

	mu  sync.Mutex
	lru *list.List // of *cacheEntry, front = most recent
	m   map[int]*list.Element

	hits, misses int64
}

type cacheEntry struct {
	src  int
	dist []Micros
}

// NewDistCache returns a cache holding up to capacity distance vectors
// (each NumAS × 8 bytes). capacity must be positive.
func NewDistCache(g *Graph, capacity int) (*DistCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("topology: cache capacity must be positive, got %d", capacity)
	}
	return &DistCache{
		g:   g,
		cap: capacity,
		lru: list.New(),
		m:   make(map[int]*list.Element, capacity),
	}, nil
}

// vector returns the Dijkstra vector from src, computing it on miss.
func (c *DistCache) vector(src int) []Micros {
	c.mu.Lock()
	if el, ok := c.m[src]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		dist := el.Value.(*cacheEntry).dist
		c.mu.Unlock()
		return dist
	}
	c.misses++
	c.mu.Unlock()

	// Compute outside the lock; duplicate work on a race is harmless.
	dist := make([]Micros, c.g.NumAS())
	c.g.Dijkstra(src, dist)

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[src]; ok { // raced with another filler
		return el.Value.(*cacheEntry).dist
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).src)
	}
	c.m[src] = c.lru.PushFront(&cacheEntry{src: src, dist: dist})
	return dist
}

// OneWay returns the end-to-end one-way latency from AS s to AS t.
func (c *DistCache) OneWay(s, t int) Micros {
	if s == t {
		return c.g.Intra(s)
	}
	return c.g.OneWay(s, t, c.vector(s))
}

// RTT returns the round-trip latency between AS s and AS t.
func (c *DistCache) RTT(s, t int) Micros {
	ow := c.OneWay(s, t)
	if ow == InfMicros {
		return InfMicros
	}
	return 2 * ow
}

// Stats returns cumulative hit and miss counts.
func (c *DistCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
