package topology

import "sort"

// Jellyfish is the layer decomposition of §V-A: the core is the maximal
// clique around the highest-degree node; Shell-j holds intermediate nodes
// (degree > 1) at core distance j; Hang-j holds leaf nodes (degree 1) at
// core distance j+1; Layer(j) = Shell-j ∪ Hang-(j−1).
type Jellyfish struct {
	// Core lists the AS indices of Shell-0 (the maximal clique).
	Core []int
	// LayerOf maps each AS to its layer index; -1 if unreachable.
	LayerOf []int
	// LayerFractions is r_j = |Layer(j)| / n, the input to the §V bound.
	LayerFractions []float64
}

// NumLayers returns N, the number of layers.
func (j *Jellyfish) NumLayers() int { return len(j.LayerFractions) }

// DecomposeJellyfish computes the Jellyfish layering of g.
func DecomposeJellyfish(g *Graph) *Jellyfish {
	n := g.NumAS()
	// Root: the highest-degree node.
	root := 0
	for i := 1; i < n; i++ {
		if g.Degree(i) > g.Degree(root) {
			root = i
		}
	}

	// Greedy maximal clique containing the root: consider the root's
	// neighbours in decreasing degree order, adding each that is adjacent
	// to every current member. (Finding the maximum clique is NP-hard;
	// the greedy maximal clique is the standard Jellyfish construction.)
	neigh := make([]int, 0, g.Degree(root))
	g.Neighbors(root, func(to int, _ Micros) { neigh = append(neigh, to) })
	sort.Slice(neigh, func(a, b int) bool {
		if g.Degree(neigh[a]) != g.Degree(neigh[b]) {
			return g.Degree(neigh[a]) > g.Degree(neigh[b])
		}
		return neigh[a] < neigh[b]
	})
	core := []int{root}
	for _, cand := range neigh {
		ok := true
		for _, member := range core {
			if !g.hasEdge(cand, member) {
				ok = false
				break
			}
		}
		if ok {
			core = append(core, cand)
		}
	}

	// BFS distance-to-core.
	distToCore := make([]int, n)
	for i := range distToCore {
		distToCore[i] = -1
	}
	queue := make([]int, 0, n)
	for _, c := range core {
		distToCore[c] = 0
		queue = append(queue, c)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		g.Neighbors(cur, func(to int, _ Micros) {
			if distToCore[to] < 0 {
				distToCore[to] = distToCore[cur] + 1
				queue = append(queue, to)
			}
		})
	}

	// Layer assignment: Shell-j = degree>1 at distance j; Hang-j =
	// degree 1 at distance j+1; Layer(j) = Shell-j ∪ Hang-(j−1);
	// Layer(0) = Shell-0 (the core itself).
	layerOf := make([]int, n)
	maxLayer := 0
	for i := 0; i < n; i++ {
		d := distToCore[i]
		if d < 0 {
			layerOf[i] = -1
			continue
		}
		var layer int
		switch {
		case d == 0:
			layer = 0
		case g.Degree(i) > 1:
			layer = d // Shell-d ⊂ Layer(d)
		default:
			layer = d - 1 + 1 // Hang-(d−1) ⊂ Layer(d−1+1) = Layer(d)
		}
		layerOf[i] = layer
		if layer > maxLayer {
			maxLayer = layer
		}
	}

	fractions := make([]float64, maxLayer+1)
	for _, l := range layerOf {
		if l >= 0 {
			fractions[l]++
		}
	}
	for i := range fractions {
		fractions[i] /= float64(n)
	}

	sort.Ints(core)
	return &Jellyfish{Core: core, LayerOf: layerOf, LayerFractions: fractions}
}
