package topology

import (
	"sync"
	"testing"
)

// TestDistCacheConcurrent hammers the sharded cache from many goroutines
// and then checks every returned RTT against a directly computed
// distance vector. Run under -race it exercises shard locking, the
// compute-outside-lock fill path and the raced-filler re-check.
func TestDistCacheConcurrent(t *testing.T) {
	g := testGraph(t, 300, 9)
	// Tight capacity forces concurrent eviction alongside the hits.
	c, err := NewDistCache(g, 8)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const queries = 300
	got := make([][]Micros, goroutines)
	var wg sync.WaitGroup
	for gr := 0; gr < goroutines; gr++ {
		gr := gr
		got[gr] = make([]Micros, queries)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				// Sources overlap across goroutines; destinations stay
				// disjoint from sources because same-AS queries answer
				// from Intra without touching the cache.
				src := (gr*7 + i) % 20
				dst := 20 + (i*13)%(g.NumAS()-20)
				got[gr][i] = c.RTT(src, dst)
			}
		}()
	}
	wg.Wait()

	// RTTs are pure functions of the graph: whatever the interleaving,
	// eviction and refill did, every answer must equal the direct one.
	dist := make([]Micros, g.NumAS())
	for gr := 0; gr < goroutines; gr++ {
		for i := 0; i < queries; i++ {
			src := (gr*7 + i) % 20
			dst := 20 + (i*13)%(g.NumAS()-20)
			g.Dijkstra(src, dist)
			if want := g.RTT(src, dst, dist); got[gr][i] != want {
				t.Fatalf("RTT(%d,%d) = %v under concurrency, want %v", src, dst, got[gr][i], want)
			}
		}
	}

	hits, misses := c.Stats()
	if hits+misses != goroutines*queries {
		t.Errorf("stats account for %d queries, want %d", hits+misses, goroutines*queries)
	}
	if misses == 0 {
		t.Error("expected misses with capacity below the working set")
	}
}

// TestDistCacheShardCapacity checks the exact capacity split across
// shards: total slots must equal the requested capacity even when it
// does not divide evenly.
func TestDistCacheShardCapacity(t *testing.T) {
	g := testGraph(t, 50, 1)
	for _, capacity := range []int{1, 2, 3, 15, 16, 17, 100} {
		c, err := NewDistCache(g, capacity)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := range c.shards {
			if c.shards[i].cap <= 0 {
				t.Fatalf("capacity %d: shard %d has cap %d", capacity, i, c.shards[i].cap)
			}
			total += c.shards[i].cap
		}
		if total != capacity {
			t.Errorf("capacity %d split into %d total slots", capacity, total)
		}
	}
}
