package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig parameterizes the synthetic Internet generator. Defaults
// reproduce the aggregates of the DIMES dataset used in the paper.
type GenConfig struct {
	// NumAS is the number of autonomous systems (paper: 26,424).
	NumAS int
	// TargetLinks is the approximate number of inter-AS links
	// (paper: 90,267). The generator tunes attachment arity to hit it.
	TargetLinks int
	// CoreSize is the size of the fully meshed bootstrap clique, which
	// becomes the Jellyfish core (Shell-0).
	CoreSize int
	// StubFraction is the probability that a new AS attaches with a
	// single link, producing the degree-1 "hang" nodes of the Jellyfish
	// model.
	StubFraction float64
	// PeerLinkFraction is the share of TargetLinks added as random
	// peering links after growth (the peer links §V's analysis ignores
	// but the simulation includes).
	PeerLinkFraction float64

	// MedianLinkMs / LinkSigma shape the lognormal inter-AS link latency
	// (the per-hop cost excluding geographic propagation).
	MedianLinkMs float64
	LinkSigma    float64
	// NumRegions splits the ASs into geographic regions (continents).
	// Inter-region links additionally pay a propagation delay given by
	// the distance between region centers, which is what makes replica
	// choice matter: a nearby replica saves an ocean crossing.
	NumRegions int
	// RegionRadiusMs is the radius (in one-way milliseconds) of the disk
	// region centers are placed on; diametral regions pay up to
	// 2×RegionRadiusMs of propagation per crossing.
	RegionRadiusMs float64
	// SameRegionBias is the probability that a growing AS's links attach
	// within its own region.
	SameRegionBias float64
	// MedianIntraMs / IntraSigma shape the lognormal intra-AS latency
	// (paper: median 3.5 ms).
	MedianIntraMs float64
	IntraSigma    float64
	// SlowStubFraction of ASs get pathological multi-second intra-AS
	// latency (1–2.5 s), reproducing the long tail the paper traces to
	// AS 23951 in Indonesia.
	SlowStubFraction float64

	// EndNodeExponent couples end-node population to degree:
	// endNodes ∝ degree^exponent × lognormal noise.
	EndNodeExponent float64

	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig mirrors the paper's topology at full scale.
func DefaultGenConfig(seed int64) GenConfig {
	return GenConfig{
		NumAS:            26424,
		TargetLinks:      90267,
		CoreSize:         16,
		StubFraction:     0.30,
		PeerLinkFraction: 0.05,
		MedianLinkMs:     4.5,
		LinkSigma:        0.8,
		NumRegions:       6,
		RegionRadiusMs:   21,
		SameRegionBias:   0.75,
		MedianIntraMs:    3.5,
		IntraSigma:       1.1,
		SlowStubFraction: 0.0005,
		EndNodeExponent:  1.3,
		Seed:             seed,
	}
}

// SmallGenConfig scales the topology down for tests and examples while
// keeping the same structural and latency parameters.
func SmallGenConfig(numAS int, seed int64) GenConfig {
	cfg := DefaultGenConfig(seed)
	cfg.NumAS = numAS
	cfg.TargetLinks = int(float64(numAS) * 3.42)
	if cfg.CoreSize > numAS/4 {
		cfg.CoreSize = numAS / 4
		if cfg.CoreSize < 2 {
			cfg.CoreSize = 2
		}
	}
	return cfg
}

// Generate builds a Jellyfish-structured AS graph by preferential
// attachment around a fully meshed core, then adds peering links and
// assigns latencies and end-node populations.
func Generate(cfg GenConfig) (*Graph, error) {
	if cfg.NumAS < 2 {
		return nil, fmt.Errorf("topology: NumAS must be >= 2, got %d", cfg.NumAS)
	}
	if cfg.CoreSize < 2 || cfg.CoreSize > cfg.NumAS {
		return nil, fmt.Errorf("topology: CoreSize %d out of range [2,%d]", cfg.CoreSize, cfg.NumAS)
	}
	if cfg.StubFraction < 0 || cfg.StubFraction >= 1 {
		return nil, fmt.Errorf("topology: StubFraction %g out of range [0,1)", cfg.StubFraction)
	}
	minLinks := cfg.CoreSize*(cfg.CoreSize-1)/2 + (cfg.NumAS - cfg.CoreSize)
	if cfg.TargetLinks < minLinks {
		return nil, fmt.Errorf("topology: TargetLinks %d below connectivity minimum %d", cfg.TargetLinks, minLinks)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	g := newGraph(cfg.NumAS)

	// Geography: region centers on a disk; each AS samples a region with
	// population-skewed weights. Propagation between regions is the
	// Euclidean distance between centers (in one-way milliseconds).
	numRegions := cfg.NumRegions
	if numRegions <= 0 {
		numRegions = 1
	}
	type point struct{ x, y float64 }
	centers := make([]point, numRegions)
	for i := range centers {
		// Rejection-sample the unit disk, then scale.
		for {
			x, y := 2*rng.Float64()-1, 2*rng.Float64()-1
			if x*x+y*y <= 1 {
				centers[i] = point{x * cfg.RegionRadiusMs, y * cfg.RegionRadiusMs}
				break
			}
		}
	}
	regionDist := make([][]float64, numRegions)
	for i := range regionDist {
		regionDist[i] = make([]float64, numRegions)
		for j := range regionDist[i] {
			dx, dy := centers[i].x-centers[j].x, centers[i].y-centers[j].y
			regionDist[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	regionCDF := make([]float64, numRegions)
	{
		var sum float64
		for i := 0; i < numRegions; i++ {
			regionCDF[i] = 1 / float64(i+1)
			sum += regionCDF[i]
		}
		var cum float64
		for i := range regionCDF {
			cum += regionCDF[i] / sum
			regionCDF[i] = cum
		}
		regionCDF[numRegions-1] = 1
	}
	sampleRegion := func() int16 {
		u := rng.Float64()
		for i, c := range regionCDF {
			if u <= c {
				return int16(i)
			}
		}
		return int16(numRegions - 1)
	}
	for i := 0; i < cfg.NumAS; i++ {
		g.region[i] = sampleRegion()
	}

	linkLat := func(a, b int) Micros {
		ms := cfg.MedianLinkMs * math.Exp(rng.NormFloat64()*cfg.LinkSigma)
		ms += regionDist[g.region[a]][g.region[b]]
		return MicrosFromMillis(ms)
	}

	// Bootstrap core clique.
	for i := 0; i < cfg.CoreSize; i++ {
		for j := i + 1; j < cfg.CoreSize; j++ {
			if err := g.addEdge(i, j, linkLat(i, j)); err != nil {
				return nil, err
			}
		}
	}

	// endpointBag holds each AS once per incident link, so uniform
	// sampling from it is degree-proportional (preferential attachment).
	bag := make([]int32, 0, 2*cfg.TargetLinks)
	for i := 0; i < cfg.CoreSize; i++ {
		for range g.adj[i] {
			bag = append(bag, int32(i))
		}
	}

	// Growth arity: stubs take 1 link; others take enough on average to
	// land on TargetLinks after reserving PeerLinkFraction.
	growthLinks := float64(cfg.TargetLinks)*(1-cfg.PeerLinkFraction) - float64(g.numLinks)
	grown := cfg.NumAS - cfg.CoreSize
	meanNonStub := 1.0
	if grown > 0 {
		mean := growthLinks / float64(grown)
		meanNonStub = (mean - cfg.StubFraction) / (1 - cfg.StubFraction)
		if meanNonStub < 1 {
			meanNonStub = 1
		}
	}

	for v := cfg.CoreSize; v < cfg.NumAS; v++ {
		m := 1
		if rng.Float64() >= cfg.StubFraction {
			// Spread around meanNonStub: uniform on [2, 2*meanNonStub-2].
			lo, hi := 2, int(math.Round(2*meanNonStub))-2
			if hi < lo {
				hi = lo
			}
			m = lo + rng.Intn(hi-lo+1)
		}
		added := 0
		for attempt := 0; added < m && attempt < 40*m; attempt++ {
			target := int(bag[rng.Intn(len(bag))])
			if target == v || g.hasEdge(v, target) {
				continue
			}
			// Geographic attachment bias: most provider links stay in
			// region (real ASs buy transit locally).
			if g.region[target] != g.region[v] && rng.Float64() < cfg.SameRegionBias {
				continue
			}
			if err := g.addEdge(v, target, linkLat(v, target)); err != nil {
				return nil, err
			}
			bag = append(bag, int32(v), int32(target))
			added++
		}
		if added == 0 {
			// Degenerate fallback (tiny graphs or isolated regions):
			// attach to some core node we are not yet linked to; the core
			// clique guarantees one exists while v has fewer than
			// CoreSize links.
			for c := 0; c < cfg.CoreSize; c++ {
				if !g.hasEdge(v, c) {
					if err := g.addEdge(v, c, linkLat(v, c)); err != nil {
						return nil, err
					}
					bag = append(bag, int32(v), int32(c))
					break
				}
			}
		}
	}

	// Random peering links, with the same regional bias (IXPs are local).
	wantPeers := cfg.TargetLinks - g.numLinks
	for added, attempt := 0, 0; added < wantPeers && attempt < 50*wantPeers+100; attempt++ {
		a := int(bag[rng.Intn(len(bag))])
		b := int(bag[rng.Intn(len(bag))])
		if a == b || g.hasEdge(a, b) {
			continue
		}
		if g.region[a] != g.region[b] && rng.Float64() < cfg.SameRegionBias {
			continue
		}
		if err := g.addEdge(a, b, linkLat(a, b)); err != nil {
			return nil, err
		}
		added++
	}

	// Intra-AS latencies: lognormal around the median, with rare
	// pathological stubs.
	for i := 0; i < cfg.NumAS; i++ {
		ms := cfg.MedianIntraMs * math.Exp(rng.NormFloat64()*cfg.IntraSigma)
		if i >= cfg.CoreSize && g.Degree(i) <= 2 && rng.Float64() < cfg.SlowStubFraction/math.Max(cfg.StubFraction, 0.01) {
			ms = 1000 + rng.Float64()*1500 // 1–2.5 s one-way, the AS-23951 tail
		}
		g.intra[i] = MicrosFromMillis(ms)
	}

	// End-node populations, coupled to degree.
	for i := 0; i < cfg.NumAS; i++ {
		noise := math.Exp(rng.NormFloat64() * 0.7)
		g.endNodes[i] = math.Pow(float64(g.Degree(i)), cfg.EndNodeExponent) * noise
	}

	return g, nil
}
